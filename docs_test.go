package elearncloud_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCheckDocs executes scripts/check-docs.sh from the repo root with
// the given KEY=value overrides (CATALOG= or ARCHDOC=), returning
// combined output and the error (nil on exit 0).
func runCheckDocs(t *testing.T, overrides ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("sh", filepath.Join("scripts", "check-docs.sh"))
	cmd.Env = append(os.Environ(), overrides...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestCheckDocsCatalogCrossCheck is the negative test for the scenario
// catalog gate: scripts/check-docs.sh must pass on the committed
// docs/SCENARIOS.md, fail when a registered experiment is missing from
// the catalog, and fail when the catalog names an id the registry does
// not have. Skipped under -short: each run shells out to
// `go run ./cmd/elbench -list`.
func TestCheckDocsCatalogCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go toolchain; skipped in -short mode")
	}
	committed, err := os.ReadFile(filepath.Join("docs", "SCENARIOS.md"))
	if err != nil {
		t.Fatal(err)
	}

	// The committed catalog must be in sync with the registry.
	if out, err := runCheckDocs(t, "CATALOG="+filepath.Join("docs", "SCENARIOS.md")); err != nil {
		t.Fatalf("check-docs fails on the committed catalog: %v\n%s", err, out)
	}

	dir := t.TempDir()

	// Direction one: drop a registered id from the catalog.
	var kept []string
	for _, line := range strings.Split(string(committed), "\n") {
		if strings.Contains(line, "`table9`") {
			continue
		}
		kept = append(kept, line)
	}
	missing := filepath.Join(dir, "missing.md")
	if err := os.WriteFile(missing, []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCheckDocs(t, "CATALOG="+missing)
	if err == nil {
		t.Fatalf("catalog without table9 accepted:\n%s", out)
	}
	if !strings.Contains(out, "table9") || !strings.Contains(out, "missing from") {
		t.Fatalf("missing-id failure does not name the id:\n%s", out)
	}

	// Direction two: add a row for an id the registry does not have.
	extra := filepath.Join(dir, "extra.md")
	doctored := string(committed) + "\n| `table99` | bogus | bogus | bogus | 0s | bogus |\n"
	if err := os.WriteFile(extra, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = runCheckDocs(t, "CATALOG="+extra)
	if err == nil {
		t.Fatalf("catalog with unknown table99 accepted:\n%s", out)
	}
	if !strings.Contains(out, "table99") || !strings.Contains(out, "no such experiment") {
		t.Fatalf("unknown-id failure does not name the id:\n%s", out)
	}
}

// TestCheckDocsTagCrossCheck is the negative test for the tag layer of
// the catalog gate: a registry entry with no tags must fail the docs
// check, and a catalog row whose tags column disagrees with the
// registered tags must fail naming both sides. The registry side is
// fed through the LISTCMD= override (a canned listing file) so the
// tagless case can be exercised without doctoring the real registry.
func TestCheckDocsTagCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go toolchain; skipped in -short mode")
	}
	dir := t.TempDir()

	// A tagless registry entry is a docs failure even when the id
	// itself is catalogued. The canned listing keeps table1's real tags
	// (its catalog row must still cross-check) and strips figure10's.
	listing := filepath.Join(dir, "listing.txt")
	canned := "table1\tMerits\t@paper @des @cost\nfigure10\tStorm\t\n"
	if err := os.WriteFile(listing, []byte(canned), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCheckDocs(t, "LISTCMD=cat "+listing)
	if err == nil {
		t.Fatalf("tagless figure10 accepted:\n%s", out)
	}
	if !strings.Contains(out, "figure10") || !strings.Contains(out, "without any tags") {
		t.Fatalf("tagless failure does not name the entry:\n%s", out)
	}

	// A catalog/registry tag mismatch fails and reports both tag sets.
	listing2 := filepath.Join(dir, "listing2.txt")
	canned2 := "table1\tMerits\t@paper @des @security\n"
	if err := os.WriteFile(listing2, []byte(canned2), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = runCheckDocs(t, "LISTCMD=cat "+listing2)
	if err == nil {
		t.Fatalf("mismatched table1 tags accepted:\n%s", out)
	}
	if !strings.Contains(out, "tags for table1") ||
		!strings.Contains(out, "@paper @des @security") ||
		!strings.Contains(out, "@paper @des @cost") {
		t.Fatalf("tag-mismatch failure does not show both sides:\n%s", out)
	}

	// The committed registry and catalog must agree (the real listing).
	if out, err := runCheckDocs(t); err != nil {
		t.Fatalf("check-docs fails on the committed tag layer: %v\n%s", err, out)
	}
}

// TestCheckDocsAnalyzerCrossCheck is the negative test for the
// determinism-analyzer gate: scripts/check-docs.sh must pass on the
// committed ARCHITECTURE.md, fail when a registered analyzer's row is
// dropped from the invariants table, and fail when the table documents
// an analyzer elvet does not register. Skipped under -short: each run
// shells out to `go run ./cmd/elvet -list` (and elbench for the
// catalog half).
func TestCheckDocsAnalyzerCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go toolchain; skipped in -short mode")
	}
	committed, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}

	if out, err := runCheckDocs(t, "ARCHDOC=ARCHITECTURE.md"); err != nil {
		t.Fatalf("check-docs fails on the committed ARCHITECTURE.md: %v\n%s", err, out)
	}

	dir := t.TempDir()

	// Direction one: drop a registered analyzer's table row.
	var kept []string
	for _, line := range strings.Split(string(committed), "\n") {
		if strings.HasPrefix(line, "| `maporder` |") {
			continue
		}
		kept = append(kept, line)
	}
	missing := filepath.Join(dir, "missing.md")
	if err := os.WriteFile(missing, []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCheckDocs(t, "ARCHDOC="+missing)
	if err == nil {
		t.Fatalf("invariants table without maporder accepted:\n%s", out)
	}
	if !strings.Contains(out, "maporder") || !strings.Contains(out, "missing from") {
		t.Fatalf("missing-analyzer failure does not name the analyzer:\n%s", out)
	}

	// Direction two: document an analyzer the registry does not have.
	doctored := strings.Replace(string(committed),
		"| `maporder` |",
		"| `mapdisorder` | bogus | bogus |\n| `maporder` |", 1)
	extra := filepath.Join(dir, "extra.md")
	if err := os.WriteFile(extra, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = runCheckDocs(t, "ARCHDOC="+extra)
	if err == nil {
		t.Fatalf("invariants table with unknown mapdisorder accepted:\n%s", out)
	}
	if !strings.Contains(out, "mapdisorder") || !strings.Contains(out, "does not register") {
		t.Fatalf("unknown-analyzer failure does not name the analyzer:\n%s", out)
	}
}
