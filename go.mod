module elearncloud

go 1.24
