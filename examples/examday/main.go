// Examday: a whole cohort sits a scheduled online exam at once — a 10x
// flash crowd — and each deployment model has to survive it. This is the
// scalability claim of the paper's §IV.A, measured.
//
//	go run ./examples/examday
package main

import (
	"fmt"
	"log"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/metrics"
	"elearncloud/internal/scenario"
	"elearncloud/internal/workload"
)

func main() {
	fmt.Println("exam day: 1500 students, 10x crowd from 09:30 to 11:00")
	fmt.Println()
	tbl := metrics.NewTable("", "model", "p95", "p99", "errors", "peak servers", "run cost")
	for _, kind := range deploy.Kinds() {
		res, err := scenario.Run(scenario.Config{
			Seed:              7,
			Kind:              kind,
			Students:          1500,
			ReqPerStudentHour: 50,
			Duration:          12 * time.Hour,
			Crowds: []workload.FlashCrowd{{
				Start: 9*time.Hour + 30*time.Minute,
				End:   11 * time.Hour,
				Mult:  10, ExamTraffic: true,
			}},
		})
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(kind.String(),
			metrics.FmtMillis(res.Latency.P95()),
			metrics.FmtMillis(res.Latency.P99()),
			metrics.FmtPercent(res.ErrorRate()),
			res.PeakServers,
			metrics.FmtDollars(res.Cost.Total()))
	}
	fmt.Println(tbl.String())
	fmt.Println("the private fleet is peak-sized and calm; the public fleet")
	fmt.Println("scales reactively and pays only for what it used; the hybrid")
	fmt.Println("pins sensitive quiz traffic in-house and bursts the rest.")
}
