// Federation: the paper's §IV.C aside — "hybrid cloud model provides an
// environment to build a national private cloud system" — as a study.
// Regional institutions with staggered exam calendars pool one
// government-run datacenter and split the bill by usage.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"

	"elearncloud/internal/federate"
)

func main() {
	res, err := federate.Study(federate.Config{Members: []federate.Member{
		{Name: "capital-university", Students: 12000, CalendarShiftWeeks: 0},
		{Name: "coastal-college", Students: 4000, CalendarShiftWeeks: 2},
		{Name: "inland-college", Students: 3000, CalendarShiftWeeks: 4},
		{Name: "rural-schools-consortium", Students: 2000, CalendarShiftWeeks: 6},
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table("a national shared private cloud vs going it alone").String())
	fmt.Printf("shared fleet: %d hosts (standalone total: %d)\n",
		res.SharedHosts, res.SumStandaloneHosts)
	fmt.Printf("peak multiplexing gain from staggered exams: %.2fx\n",
		res.MultiplexingGain())
	fmt.Println("\nevery member saves: smaller institutions escape the")
	fmt.Println("minimum-staffing floor, larger ones shed peak capacity.")
}
