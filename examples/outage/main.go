// Outage: rural learners on flaky DSL work against a cloud LMS for a
// day. Every disconnect destroys unsaved work — the paper's §III network
// risk ("users may lose time, work, or even unsaved data"), measured,
// and the effect of a tighter autosave interval.
//
//	go run ./examples/outage
package main

import (
	"fmt"
	"log"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/metrics"
	"elearncloud/internal/network"
	"elearncloud/internal/scenario"
)

func main() {
	fmt.Println("three days of rural DSL (MTBF 2d, MTTR 30m), 300 students, public cloud")
	fmt.Println()
	tbl := metrics.NewTable("", "autosave every", "availability", "disconnects",
		"lost work per session", "failed requests")
	for _, autosave := range []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute} {
		res, err := scenario.Run(scenario.Config{
			Seed:              99,
			Kind:              deploy.Public,
			Students:          300,
			ReqPerStudentHour: 15,
			Duration:          72 * time.Hour,
			Access:            network.RuralDSL,
			AutosaveEvery:     autosave,
			TrackedSessions:   100,
		})
		if err != nil {
			log.Fatal(err)
		}
		perSession := res.LostWork / 100
		tbl.AddRow(autosave.String(),
			metrics.FmtPercent(res.NetAvailability),
			res.Disconnects,
			perSession.Round(time.Second).String(),
			metrics.FmtPercent(res.ErrorRate()))
	}
	fmt.Println(tbl.String())
	fmt.Println("autosave interval bounds the blast radius of a disconnect;")
	fmt.Println("the connection itself is the one thing the cloud cannot fix.")
}
