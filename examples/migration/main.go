// Migration: the institution decides to leave its public cloud provider
// and bring the LMS back in-house — the §III portability risk and
// §IV.C's claim that hybrids make repatriation easier, executed on the
// simulation clock.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/lms"
	"elearncloud/internal/metrics"
	"elearncloud/internal/migrate"
	"elearncloud/internal/sim"
)

func main() {
	fmt.Println("repatriation study: 2000-student college leaves its provider")
	fmt.Println()
	tbl := metrics.NewTable("", "starting point", "components to port",
		"re-engineering", "egress", "calendar time", "downtime")

	for _, kind := range []deploy.Kind{deploy.Public, deploy.Hybrid} {
		assets := lms.NewAssetStore(80, 2000)
		if kind == deploy.Public {
			assets.PlaceAll(lms.OnPublic)
		} else {
			assets.PlaceSensitive(lms.OnPrivate, lms.OnPublic)
		}
		plan, err := migrate.NewPlan(migrate.LockinProfile{
			Index:      kind.DefaultLockinIndex(),
			Components: 12,
			DataBytes:  assets.BytesAt(lms.OnPublic),
		}, migrate.DefaultCostModel())
		if err != nil {
			log.Fatal(err)
		}

		// Execute the migration on a simulation engine to get the
		// realized timeline.
		eng := sim.NewEngine(1)
		var result migrate.Result
		migrate.Execute(eng, plan, func(r migrate.Result) { result = r })
		if err := eng.Run(0); err != nil {
			log.Fatal(err)
		}

		tbl.AddRow(kind.String(),
			plan.ComponentsToPort,
			metrics.FmtDollars(plan.ReengineerUSD),
			metrics.FmtDollars(plan.EgressUSD),
			result.Duration().Round(time.Hour).String(),
			plan.Downtime.String())
	}
	fmt.Println(tbl.String())
	fmt.Println("the hybrid kept sensitive data and standard interfaces in-house,")
	fmt.Println("so leaving costs a fraction of the all-public exit (paper §IV.C).")
}
