// Semester: an 18-week term for a 2000-student college under each
// deployment model — the cost and utilization trade-off (paper §IV.B,
// §V) over a realistic academic calendar.
//
//	go run ./examples/semester
package main

import (
	"fmt"
	"log"

	"elearncloud/internal/deploy"
	"elearncloud/internal/metrics"
	"elearncloud/internal/scenario"
	"elearncloud/internal/workload"
)

func main() {
	sem := workload.StandardSemester()
	fmt.Printf("standard semester: %d weeks, 2000 students\n\n", sem.Len())

	tbl := metrics.NewTable("", "model", "$/student/mo", "VM-hours", "peak servers",
		"private util", "egress GB", "semester total")
	for _, kind := range []deploy.Kind{deploy.Public, deploy.Private, deploy.Hybrid, deploy.Desktop} {
		res, err := scenario.FluidRun(scenario.Config{
			Seed:     1,
			Kind:     kind,
			Students: 2000,
			Duration: sem.Duration(),
			Calendar: sem,
		})
		if err != nil {
			log.Fatal(err)
		}
		util := "-"
		if res.MeanPrivateUtil > 0 {
			util = metrics.FmtPercent(res.MeanPrivateUtil)
		}
		tbl.AddRow(kind.String(),
			fmt.Sprintf("%.2f", res.CostPerStudentMonth(2000)),
			fmt.Sprintf("%.0f", res.VMHoursPublic+res.VMHoursPrivate),
			res.PeakServers,
			util,
			fmt.Sprintf("%.0f", res.EgressGB),
			metrics.FmtDollars(res.Cost.Total()))
	}
	fmt.Println(tbl.String())
	fmt.Println("the private fleet idles outside exam weeks (the paper's §IV.B")
	fmt.Println("underutilization argument); the public bill is dominated by")
	fmt.Println("video egress at 2013 transfer prices.")
}
