// Quickstart: simulate one morning of a 500-student college LMS on the
// public cloud and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/metrics"
	"elearncloud/internal/scenario"
)

func main() {
	res, err := scenario.Run(scenario.Config{
		Seed:     42,
		Kind:     deploy.Public,
		Students: 500,
		Duration: 4 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("elearncloud quickstart — 500 students, public cloud, 4h")
	fmt.Printf("  requests served:   %d (error rate %s)\n",
		res.Served, metrics.FmtPercent(res.ErrorRate()))
	fmt.Printf("  latency:           p50=%s p95=%s p99=%s\n",
		metrics.FmtMillis(res.Latency.P50()),
		metrics.FmtMillis(res.Latency.P95()),
		metrics.FmtMillis(res.Latency.P99()))
	fmt.Printf("  fleet:             peak %d servers, %.1f VM-hours\n",
		res.PeakServers, res.VMHoursPublic)
	fmt.Printf("  egress:            %.2f GB\n", res.EgressGB)
	fmt.Printf("  bill for the run:  %s\n", metrics.FmtDollars(res.Cost.Total()))
}
