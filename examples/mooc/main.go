// Mooc: a course that outgrows its campus — enrollment climbs 50k→500k
// while a worldwide cohort spreads the day and a graded deadline
// stampedes the finish (paper §IV.A at MOOC scale; cf. Beştaş on MOOCs
// and cloud computing). Exercises the internal/workload MOOC family:
// growth curves, timezone superposition, deadline storms, and the
// piecewise NHPP envelope that keeps generating all of it O(arrivals).
//
//	go run ./examples/mooc
package main

import (
	"fmt"
	"log"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/metrics"
	"elearncloud/internal/scenario"
	"elearncloud/internal/sim"
	"elearncloud/internal/workload"
)

func main() {
	week := 7 * 24 * time.Hour
	growth := workload.LogisticGrowth(50000, 500000, 4*week)
	fmt.Printf("viral course: %s over a 10-week run\n", growth)
	for _, w := range []int{0, 2, 4, 6, 9} {
		fmt.Printf("  week %d: %7.0f active students\n", w+1, growth.At(time.Duration(w)*week))
	}

	// A global cohort flattens the campus evening peak: four regional
	// bands, each living its own day.
	campus, global := workload.CampusDiurnal(), workload.GlobalCohort()
	fmt.Printf("\nday-shape peak: campus %.1fx -> global cohort %.2fx (overnight floor %.2fx -> %.2fx)\n",
		campus.Peak(), global.Peak(), campus.At(3*time.Hour), global.At(3*time.Hour))

	// The whole course at fluid fidelity, per deployment model.
	fmt.Println("\nthe 10-week course under each deployment model (fluid fidelity):")
	tbl := metrics.NewTable("", "model", "$/student/mo", "VM-hours", "peak servers", "private util")
	for _, kind := range []deploy.Kind{deploy.Public, deploy.Private, deploy.Hybrid} {
		res, err := scenario.FluidRun(scenario.Config{
			Seed:              1,
			Kind:              kind,
			Growth:            growth,
			ReqPerStudentHour: 8,
			Duration:          10 * week,
			Diurnal:           workload.GlobalCohort(),
		})
		if err != nil {
			log.Fatal(err)
		}
		util := "-"
		if res.MeanPrivateUtil > 0 {
			util = metrics.FmtPercent(res.MeanPrivateUtil)
		}
		tbl.AddRow(kind.String(),
			fmt.Sprintf("%.2f", res.CostPerStudentMonth(500000)),
			fmt.Sprintf("%.0f", res.VMHoursPublic+res.VMHoursPrivate),
			res.PeakServers, util)
	}
	fmt.Println(tbl.String())

	// A deadline storm, generated directly: the procrastination ramp
	// multiplies the rate 10x at the cliff, and the piecewise envelope
	// keeps thinning acceptance high the whole way.
	gen, err := workload.NewGenerator(workload.Config{
		Students:          20000,
		ReqPerStudentHour: 2,
		Diurnal:           workload.FlatDiurnal(),
		Storms: []workload.DeadlineStorm{{
			Deadline: 12 * time.Hour, Ramp: 6 * time.Hour, PeakMult: 10,
			Tau: time.Hour, ExamTraffic: true,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	s := gen.Stream(sim.NewRNG(1), 0)
	perHour := make([]int, 13)
	for {
		a, ok := s.Next(13 * time.Hour)
		if !ok {
			break
		}
		if h := int(a.At / time.Hour); h < len(perHour) {
			perHour[h]++
		}
	}
	proposed, accepted := s.Thinning()
	fmt.Println("deadline storm, 20k students, 2 req/student-h, deadline at hour 12:")
	for h, n := range perHour {
		bar := ""
		for i := 0; i < n/4000; i++ {
			bar += "#"
		}
		fmt.Printf("  h%02d %7d %s\n", h, n, bar)
	}
	fmt.Printf("thinning acceptance %.1f%% (%d of %d candidates) — the piecewise\n",
		float64(accepted)/float64(proposed)*100, accepted, proposed)
	fmt.Println("envelope re-bounds each segment instead of paying the 10x peak all day.")
}
