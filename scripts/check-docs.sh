#!/bin/sh
# check-docs.sh — fail on markdown links that point at files missing
# from the repo. Run from the repository root; CI's docs job runs it on
# every push. External (http/https/mailto) links and pure #anchors are
# skipped; relative targets are resolved against the linking file's
# directory and checked for existence, so a doc rename that strands a
# reference breaks the build instead of rotting quietly.
#
# The docs also cite golden artifacts by path (ARCHITECTURE.md's
# Telemetry section, README's -verify workflow), usually in backticks
# rather than markdown links — so every testdata/golden/... path
# mentioned anywhere in the scanned docs is additionally checked
# against the store, and a renamed or deleted golden file breaks the
# build too.
set -eu

files="README.md ARCHITECTURE.md ROADMAP.md"
fail=0

for f in $files; do
    if [ ! -f "$f" ]; then
        echo "check-docs: missing doc file: $f" >&2
        fail=1
        continue
    fi
    dir=$(dirname "$f")
    # Markdown inline links: capture the (target) of every ](target).
    for link in $(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//'); do
        case "$link" in
        http://* | https://* | mailto:*) continue ;;
        '#'*) continue ;;
        esac
        target=${link%%#*} # strip any section anchor
        [ -n "$target" ] || continue
        if [ ! -e "$dir/$target" ]; then
            echo "check-docs: $f links to nonexistent repo file: $target" >&2
            fail=1
        fi
    done
done

# Golden-store citations: any testdata/golden/... path a doc mentions
# (linked or in backticks) must exist. Placeholder forms like
# testdata/golden/<id>.txt are skipped by the character class.
for f in $files; do
    [ -f "$f" ] || continue
    for path in $(grep -oE 'testdata/golden/[A-Za-z0-9._-]+' "$f" | sort -u); do
        if [ ! -e "$path" ]; then
            echo "check-docs: $f cites nonexistent golden artifact: $path" >&2
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "check-docs: FAILED" >&2
    exit 1
fi
echo "check-docs: all markdown links resolve"
