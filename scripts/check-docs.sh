#!/bin/sh
# check-docs.sh — fail on markdown links that point at files missing
# from the repo. Run from the repository root; CI's docs job runs it on
# every push. External (http/https/mailto) links and pure #anchors are
# skipped; relative targets are resolved against the linking file's
# directory and checked for existence, so a doc rename that strands a
# reference breaks the build instead of rotting quietly.
#
# The docs also cite golden artifacts by path (ARCHITECTURE.md's
# Telemetry section, README's -verify workflow), usually in backticks
# rather than markdown links — so every testdata/golden/... path
# mentioned anywhere in the scanned docs is additionally checked
# against the store, and a renamed or deleted golden file breaks the
# build too.
#
# Every internal/ package must carry a godoc package comment
# ("// Package <name> ...") in at least one non-test file, so the doc
# surface brought up in PR 4 cannot silently regress when a package is
# added or its doc.go is deleted.
#
# The scenario catalog (docs/SCENARIOS.md, overridable via
# CATALOG= for the negative tests) must list exactly the experiment ids
# the registry knows — enumerated with `elbench -list` — in both
# directions: a registered id missing from the catalog fails, and a
# catalog row naming an unknown id fails, so the table can never rot.
# The listing command itself is overridable via LISTCMD= so the
# negative tests can feed a canned registry without building elbench.
#
# The same pass enforces the tag layer both ways: every registry entry
# must carry at least one tag (a tagless experiment is a docs failure,
# per the Experiment.Tags contract), and each catalog row's `tags`
# column must equal that experiment's registered tags exactly, so
# re-tagging an experiment without updating the catalog (or vice
# versa) breaks the build.
#
# Finally, the determinism-analyzer table in ARCHITECTURE.md's
# "Determinism invariants, statically enforced" section (overridable
# via ARCHDOC= for the negative tests) must name exactly the analyzers
# `elvet -list` registers, both directions, so the linter's documented
# contract can never drift from its registry either.
set -eu

files="README.md ARCHITECTURE.md ROADMAP.md examples/README.md docs/SCENARIOS.md"
fail=0

for f in $files; do
    if [ ! -f "$f" ]; then
        echo "check-docs: missing doc file: $f" >&2
        fail=1
        continue
    fi
    dir=$(dirname "$f")
    # Markdown inline links: capture the (target) of every ](target).
    for link in $(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//'); do
        case "$link" in
        http://* | https://* | mailto:*) continue ;;
        '#'*) continue ;;
        esac
        target=${link%%#*} # strip any section anchor
        [ -n "$target" ] || continue
        if [ ! -e "$dir/$target" ]; then
            echo "check-docs: $f links to nonexistent repo file: $target" >&2
            fail=1
        fi
    done
done

# Golden-store citations: any testdata/golden/... path a doc mentions
# (linked or in backticks) must exist. Placeholder forms like
# testdata/golden/<id>.txt are skipped by the character class.
for f in $files; do
    [ -f "$f" ] || continue
    for path in $(grep -oE 'testdata/golden/[A-Za-z0-9._-]+' "$f" | sort -u); do
        if [ ! -e "$path" ]; then
            echo "check-docs: $f cites nonexistent golden artifact: $path" >&2
            fail=1
        fi
    done
done

# Package doc comments: each internal package needs "// Package <pkg>"
# in some non-test .go file (conventionally doc.go). The grep is a
# shape check, not a position check — gofmt keeps doc comments glued to
# the package clause, so shape is the part that can rot.
for dir in internal/*/; do
    pkg=$(basename "$dir")
    found=0
    for g in "$dir"*.go; do
        [ -f "$g" ] || continue
        case "$g" in *_test.go) continue ;; esac
        if grep -q "^// Package $pkg " "$g"; then
            found=1
            break
        fi
    done
    if [ "$found" -eq 0 ]; then
        echo "check-docs: internal/$pkg has no package doc comment (// Package $pkg ... above the package clause)" >&2
        fail=1
    fi
done

# Scenario catalog cross-check: the ids in docs/SCENARIOS.md's table
# must be exactly the registry's ids. `elbench -list` is the
# authoritative enumeration (it reads the registry and runs nothing);
# the catalog side is the first column of its markdown table.
catalog="${CATALOG:-docs/SCENARIOS.md}"
if [ ! -f "$catalog" ]; then
    echo "check-docs: missing scenario catalog: $catalog" >&2
    fail=1
elif [ -z "${LISTCMD:-}" ] && ! command -v go >/dev/null 2>&1; then
    echo "check-docs: go toolchain unavailable; skipping the registry/catalog cross-check" >&2
else
    listing=$(eval "${LISTCMD:-go run ./cmd/elbench -list}")
    registry=$(printf '%s\n' "$listing" | cut -f1)
    # Tag contract: every registry entry carries at least one tag.
    # `|| true`: no untagged entries is the healthy case under set -e.
    untagged=$(printf '%s\n' "$listing" | awk -F'\t' 'NF < 3 || $3 == "" {print $1}' || true)
    for id in $untagged; do
        echo "check-docs: experiment $id is registered without any tags (Experiment.Tags must be non-empty)" >&2
        fail=1
    done
    # `|| true`: zero catalog rows must fall through to the loops below
    # (every registered id reported missing), not abort under set -e.
    listed=$(grep -oE '^\| *`?(table|figure)[0-9]+`? *\|' "$catalog" | tr -d '|` ' || true)
    for id in $registry; do
        case " $(echo $listed) " in
        *" $id "*) ;;
        *)
            echo "check-docs: experiment $id is registered but missing from $catalog" >&2
            fail=1
            continue
            ;;
        esac
        # The catalog row's `tags` column (second table column) must
        # match the registered tags exactly, order included — both are
        # meant to read as the same vocabulary in the same order.
        rtags=$(printf '%s\n' "$listing" | awk -F'\t' -v id="$id" '$1 == id {print $3}')
        dtags=$(awk -F'|' -v id="$id" '{
            col2 = $2; gsub(/[` ]/, "", col2)
            if (col2 == id) { print $3 }
        }' "$catalog")
        if [ "$(echo $rtags)" != "$(echo $dtags)" ]; then
            echo "check-docs: $catalog tags for $id are [$(echo $dtags)] but the registry says [$(echo $rtags)]" >&2
            fail=1
        fi
    done
    for id in $listed; do
        case " $(echo $registry) " in
        *" $id "*) ;;
        *)
            echo "check-docs: $catalog lists $id but the registry has no such experiment (see elbench -list)" >&2
            fail=1
            ;;
        esac
    done
fi

# Analyzer cross-check: the first column of the analyzer table inside
# the "Determinism invariants, statically enforced" section must match
# `elvet -list` exactly. The section is sliced out with awk so other
# backticked first-column tables elsewhere in the doc cannot
# contaminate the comparison.
archdoc="${ARCHDOC:-ARCHITECTURE.md}"
if [ ! -f "$archdoc" ]; then
    echo "check-docs: missing architecture doc: $archdoc" >&2
    fail=1
elif ! command -v go >/dev/null 2>&1; then
    echo "check-docs: go toolchain unavailable; skipping the analyzer cross-check" >&2
else
    registered=$(go run ./cmd/elvet -list | cut -f1)
    # `|| true`: a doc with no analyzer rows must fall through to the
    # loops (every registered analyzer reported missing), not abort.
    documented=$(awk '/^## Determinism invariants, statically enforced/,/^## The shared/' "$archdoc" |
        grep -oE '^\| *`[a-z0-9]+` *\|' | tr -d '|` ' || true)
    for a in $registered; do
        case " $(echo $documented) " in
        *" $a "*) ;;
        *)
            echo "check-docs: analyzer $a is registered in elvet but missing from $archdoc's invariants table" >&2
            fail=1
            ;;
        esac
    done
    for a in $documented; do
        case " $(echo $registered) " in
        *" $a "*) ;;
        *)
            echo "check-docs: $archdoc documents analyzer $a but elvet does not register it (see elvet -list)" >&2
            fail=1
            ;;
        esac
    done
fi

if [ "$fail" -ne 0 ]; then
    echo "check-docs: FAILED" >&2
    exit 1
fi
echo "check-docs: links, golden citations, package doc comments, the scenario catalog and the analyzer registry all check out"
