// Package elearncloud_test is the reproduction's benchmark harness: one
// benchmark per table and figure in ARCHITECTURE.md's experiment index, each
// printing the regenerated artifact, plus micro-benchmarks of the hot
// substrates. Run with:
//
//	go test -bench=. -benchmem
//
// and compare the printed tables against a previous run (or regenerate
// them with cmd/elbench; the artifacts are deterministic per seed).
package elearncloud_test

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"elearncloud/internal/cloud"
	"elearncloud/internal/deploy"
	"elearncloud/internal/experiments"
	"elearncloud/internal/lms"
	"elearncloud/internal/metrics"
	"elearncloud/internal/scenario"
	"elearncloud/internal/sim"
	"elearncloud/internal/workload"
)

// benchSeed keeps every benchmark's artifact identical run to run.
const benchSeed = 1

var printOnce sync.Map

// runExperiment executes one registered experiment per iteration and
// prints its table a single time per process. Experiments run with a
// one-off default worker pool (one worker per CPU); their artifacts are
// byte-identical to a serial run.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	var tbl *metrics.Table
	for i := 0; i < b.N; i++ {
		tbl, err = exp.Run(benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, done := printOnce.LoadOrStore(id, true); !done && tbl != nil {
		fmt.Fprintf(os.Stdout, "\n%s\n", tbl.String())
	}
}

// --- one benchmark per table/figure (ARCHITECTURE.md experiment index) --

func BenchmarkTable1Merits(b *testing.B)         { runExperiment(b, "table1") }
func BenchmarkTable2Risks(b *testing.B)          { runExperiment(b, "table2") }
func BenchmarkTable3Matrix(b *testing.B)         { runExperiment(b, "table3") }
func BenchmarkTable4HybridAblation(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkTable5Autoscalers(b *testing.B)    { runExperiment(b, "table5") }
func BenchmarkTable6Advisor(b *testing.B)        { runExperiment(b, "table6") }
func BenchmarkFigure1Workload(b *testing.B)      { runExperiment(b, "figure1") }
func BenchmarkFigure2ExamSpike(b *testing.B)     { runExperiment(b, "figure2") }
func BenchmarkFigure3CostCrossover(b *testing.B) { runExperiment(b, "figure3") }
func BenchmarkFigure4Utilization(b *testing.B)   { runExperiment(b, "figure4") }
func BenchmarkFigure5NetworkRisk(b *testing.B)   { runExperiment(b, "figure5") }
func BenchmarkFigure6Security(b *testing.B)      { runExperiment(b, "figure6") }
func BenchmarkFigure7Lockin(b *testing.B)        { runExperiment(b, "figure7") }

// Extension experiments (see ARCHITECTURE.md):
func BenchmarkTable7Federation(b *testing.B)   { runExperiment(b, "table7") }
func BenchmarkTable8PurchaseMix(b *testing.B)  { runExperiment(b, "table8") }
func BenchmarkFigure8CDN(b *testing.B)         { runExperiment(b, "figure8") }
func BenchmarkFigure9HostFailure(b *testing.B) { runExperiment(b, "figure9") }

// MOOC-scale experiments (enrollment growth, deadline storms):
func BenchmarkTable9GrowthModels(b *testing.B)    { runExperiment(b, "table9") }
func BenchmarkFigure10DeadlineStorm(b *testing.B) { runExperiment(b, "figure10") }

// --- substrate micro-benchmarks ----------------------------------------

// BenchmarkEngineEvents measures raw event throughput of the DES kernel.
func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Schedule(time.Microsecond, "e", func() {})
		eng.Step()
	}
}

// BenchmarkHistogramObserve measures the latency histogram hot path.
func BenchmarkHistogramObserve(b *testing.B) {
	h := metrics.DefaultLatency()
	rng := sim.NewRNG(1)
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.LogNormal(-3, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(vals[i&1023])
	}
}

// BenchmarkAppServerThroughput measures processor-sharing queue ops.
func BenchmarkAppServerThroughput(b *testing.B) {
	eng := sim.NewEngine(1)
	dc := cloud.NewDatacenter(eng, cloud.Config{
		Name: "b", Hosts: 1,
		HostCapacity: cloud.Resources{CPU: 64, Mem: 256, Disk: 4000},
	})
	vm, err := dc.Provision(cloud.InstanceSpec{
		Name: "m", Res: cloud.Resources{CPU: 4, Mem: 8, Disk: 100},
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	eng.Step() // boot
	srv := lms.NewAppServer(eng, vm, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Submit(0.001, nil)
		if srv.Active() > 64 {
			for eng.Pending() > 0 && srv.Active() > 32 {
				eng.Step()
			}
		}
	}
}

// BenchmarkWorkloadGeneration measures arrival generation for one campus
// day.
func BenchmarkWorkloadGeneration(b *testing.B) {
	gen, err := workload.NewGenerator(workload.Config{
		Students:          2000,
		ReqPerStudentHour: 50,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		n += gen.Generate(sim.NewRNG(uint64(i)), 0, time.Hour, func(workload.Arrival) {})
	}
	if n == 0 {
		b.Fatal("no arrivals")
	}
}

// BenchmarkScenarioSteadyHour measures a full request-level simulated
// hour end to end (the unit of cost for every DES experiment).
func BenchmarkScenarioSteadyHour(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(scenario.Config{
			Seed:              benchSeed,
			Kind:              deploy.Public,
			Students:          500,
			ReqPerStudentHour: 50,
			Duration:          time.Hour,
			Diurnal:           workload.FlatDiurnal(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Served == 0 {
			b.Fatal("no requests served")
		}
	}
}

// BenchmarkFluidSemester measures the flow-level semester integration.
func BenchmarkFluidSemester(b *testing.B) {
	sem := workload.StandardSemester()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := scenario.FluidRun(scenario.Config{
			Seed:     benchSeed,
			Kind:     deploy.Hybrid,
			Students: 2000,
			Duration: sem.Duration(),
			Calendar: sem,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Cost.Total() <= 0 {
			b.Fatal("no cost")
		}
	}
}
