package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// maporder guards the invariant that broke in PR 5's
// cloud.Datacenter.VMHours: Go randomizes map iteration order per run,
// so any `for range` over a map whose body does order-sensitive work
// makes the result depend on the run, not the seed. Four body shapes
// are order-sensitive:
//
//   - float (or complex) accumulation into a variable that outlives the
//     loop: float addition is not associative, so the rounded total
//     depends on visit order — the VMHours class exactly;
//   - string accumulation, where order is the output;
//   - appends to a slice that outlives the loop, unless the append
//     collects only the range key (the standard collect-then-sort
//     idiom) or the slice is passed to a sort.*/slices.Sort* call later
//     in the same function;
//   - writes to an output sink: fmt print/Fprint calls, io.WriteString,
//     Write*/AddRow/AddNote/Observe methods, or TimeSeries.Add.
//
// Integer accumulation, counting, min/max folds and other commutative
// reductions are deliberately not flagged. The fix is always the same:
// range over sorted keys.
var maporder = &Analyzer{
	Name: "maporder",
	Doc:  "order-sensitive reduction or output inside for-range over a map",
	Run:  runMaporder,
}

// writerMethods are method names that emit or record ordered data; a
// call on a receiver declared outside a map-range body is a finding.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true, "AddNote": true, "Observe": true,
}

func runMaporder(p *Pass) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(p, file, rs)
			return true
		})
	}
}

func checkMapRangeBody(p *Pass, file *ast.File, rs *ast.RangeStmt) {
	body := rs.Body
	keyObj := rangeVarObj(p.Info, rs.Key)

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkAccumulation(p, body, st)
		case *ast.CallExpr:
			checkCallSink(p, file, rs, body, st, keyObj)
		}
		return true
	})
}

func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// checkAccumulation flags float/string reductions into variables that
// outlive the loop body: s += x, s -= x, s *= x, s /= x, and the
// spelled-out s = s + x form.
func checkAccumulation(p *Pass, body *ast.BlockStmt, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lhs := as.Lhs[0]
	t := p.Info.TypeOf(lhs)
	if t == nil || !(isFloat(t) || isString(t)) {
		return
	}
	obj := rootObj(p.Info, lhs)

	accumulates := false
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		accumulates = true
	case token.ASSIGN:
		// s = s + x (or any binary expression that re-reads s).
		if be, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr); ok && obj != nil {
			accumulates = mentionsObj(p.Info, be, obj)
		}
	}
	if !accumulates || !declaredOutside(obj, body.Pos(), body.End()) {
		return
	}
	kind := "float"
	if isString(t) {
		kind = "string"
	}
	p.Reportf(as.Pos(),
		"%s accumulation inside for-range over a map depends on iteration order; range over sorted keys (the cloud.Datacenter.VMHours bug class)", kind)
}

// checkCallSink flags appends that escape the loop and calls that write
// ordered output from inside the loop body.
func checkCallSink(p *Pass, file *ast.File, rs *ast.RangeStmt, body *ast.BlockStmt, call *ast.CallExpr, keyObj types.Object) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if isBuiltinAppend(p.Info, fun) {
			checkAppend(p, file, rs, body, call, keyObj)
		}
	case *ast.SelectorExpr:
		switch pkg := pkgNameOf(p.Info, fun); {
		case pkg == "fmt":
			name := fun.Sel.Name
			if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
				p.Reportf(call.Pos(),
					"fmt.%s inside for-range over a map emits output in random iteration order; range over sorted keys", name)
			}
		case pkg == "io" && fun.Sel.Name == "WriteString":
			p.Reportf(call.Pos(),
				"io.WriteString inside for-range over a map emits output in random iteration order; range over sorted keys")
		case pkg == "":
			checkMethodSink(p, body, call, fun)
		}
	}
}

func isBuiltinAppend(info *types.Info, id *ast.Ident) bool {
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// checkMethodSink flags writer-method calls on receivers that outlive
// the loop: strings.Builder/bytes.Buffer writes, metrics.Table rows,
// histogram observations, and TimeSeries points are all ordered.
func checkMethodSink(p *Pass, body *ast.BlockStmt, call *ast.CallExpr, fun *ast.SelectorExpr) {
	name := fun.Sel.Name
	isSink := writerMethods[name]
	if !isSink && name == "Add" {
		// Add is too generic to flag wholesale (Counter.Add commutes);
		// only the point-appending TimeSeries.Add is order-sensitive.
		isSink = namedTypeIs(p.Info.TypeOf(fun.X), "TimeSeries")
	}
	if !isSink {
		return
	}
	obj := rootObj(p.Info, fun.X)
	if !declaredOutside(obj, body.Pos(), body.End()) {
		return
	}
	p.Reportf(call.Pos(),
		"%s call inside for-range over a map records data in random iteration order; range over sorted keys", name)
}

func namedTypeIs(t types.Type, name string) bool {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Named:
			return v.Obj().Name() == name
		default:
			return false
		}
	}
}

// checkAppend flags `s = append(s, ...)` where s outlives the loop,
// with two idiomatic escapes: appending only the range key (the
// collect-then-sort idiom's first half) and slices that are passed to a
// sort call later in the same function.
func checkAppend(p *Pass, file *ast.File, rs *ast.RangeStmt, body *ast.BlockStmt, call *ast.CallExpr, keyObj types.Object) {
	if len(call.Args) == 0 {
		return
	}
	obj := rootObj(p.Info, call.Args[0])
	if obj == nil || !declaredOutside(obj, body.Pos(), body.End()) {
		return
	}
	// Escape 1: the appended elements mention no variable beyond the
	// range key — collecting keys is exactly how the fix starts.
	allowed := map[types.Object]bool{keyObj: true}
	keyOnly := true
	for _, arg := range call.Args[1:] {
		if !onlyMentions(p.Info, arg, allowed) {
			keyOnly = false
			break
		}
	}
	if keyOnly {
		return
	}
	// Escape 2: the slice is sorted after the loop, so iteration order
	// is erased before anyone reads it.
	if sortedAfter(p, file, rs, obj) {
		return
	}
	p.Reportf(call.Pos(),
		"append to %s inside for-range over a map builds a slice in random iteration order; range over sorted keys or sort the result", obj.Name())
}

// sortedAfter reports whether obj is passed to a sort.* or slices.Sort*
// call after the range statement, within the function enclosing it.
func sortedAfter(p *Pass, file *ast.File, rs *ast.RangeStmt, obj types.Object) bool {
	fn := enclosingFuncBody(file, rs.Pos())
	if fn == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := pkgNameOf(p.Info, sel)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObj(p.Info, arg, obj) {
				sorted = true
			}
		}
		return true
	})
	return sorted
}
