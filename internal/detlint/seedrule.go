package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// seedrule enforces the repository's RNG discipline: all randomness is
// rooted at sim.SeedFor(seed, name) or an explicit Config.Seed, so a
// run is a pure function of its seed. Three ways code can break that:
//
//   - importing math/rand (v1 or v2): its global functions draw from a
//     process-wide source the (seed, name) rule cannot reach — the
//     repo's own sim.RNG is the only sanctioned generator;
//   - constructing a generator (NewRNG, NewEngine, rand.New*) from a
//     seed expression not rooted in SeedFor/Stream, a .Seed field, a
//     seed-named variable, or a compile-time constant;
//   - reading the wall clock (time.Now) inside internal/ packages:
//     simulated time comes from the engine, and a wall-clock read that
//     leaks into results breaks re-run identity. Genuine telemetry
//     sites carry a //detlint:allow seedrule directive saying why.
var seedrule = &Analyzer{
	Name: "seedrule",
	Doc:  "RNG roots not derived from sim.SeedFor/Config.Seed; math/rand imports; wall-clock reads in internal/",
	Run:  runSeedrule,
}

// rngConstructors are the generator-building callees whose first
// argument is a seed (or seed source) subject to the rooting rule.
var rngConstructors = map[string]bool{
	"NewRNG": true, "NewEngine": true,
	"New":       false, // rand.New takes a Source; its NewSource call is what carries the seed
	"NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func runSeedrule(p *Pass) {
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			path, _ := strconv.Unquote(spec.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(spec.Pos(),
					"import of %s: its global source cannot be rooted at sim.SeedFor; use internal/sim's RNG", path)
			}
		}
		// First pass: constructor seed arguments. Their spans are
		// remembered so a time.Now inside one reports once, at seed
		// level, not again as a bare wall-clock read.
		type span struct{ lo, hi token.Pos }
		var seedArgs []span
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if seeded, isCtor := rngConstructors[name]; isCtor && seeded && len(call.Args) > 0 {
				seedArgs = append(seedArgs, span{call.Args[0].Pos(), call.Args[0].End()})
				checkSeedArg(p, call, name)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isWallClock(p.Info, call) {
				return true
			}
			for _, s := range seedArgs {
				if call.Pos() >= s.lo && call.Pos() < s.hi {
					return true
				}
			}
			if p.inInternal() {
				p.Reportf(call.Pos(),
					"time.Now in simulation code: wall-clock reads break re-run identity (telemetry sites need a //detlint:allow seedrule reason)")
			}
			return true
		})
	}
}

// isWallClock reports a call to time.Now (resolved through the import,
// so a local func Now() does not count).
func isWallClock(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Now" {
		return false
	}
	return pkgNameOf(info, sel) == "time"
}

// checkSeedArg applies the rooting rule to a constructor's seed
// expression: it must not read the wall clock, and it must mention one
// of the sanctioned roots.
func checkSeedArg(p *Pass, call *ast.CallExpr, ctor string) {
	seed := call.Args[0]
	wallClock := false
	ast.Inspect(seed, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && isWallClock(p.Info, c) {
			wallClock = true
		}
		return !wallClock
	})
	if wallClock {
		p.Reportf(call.Pos(),
			"%s seeded from time.Now: wall-clock seeds make every run unreproducible; derive the seed with sim.SeedFor", ctor)
		return
	}
	if !seedRooted(p.Info, seed) {
		// Sharded runs have their own derivation rule: when the unrooted
		// expression is built from a shard index, name it, so the fix
		// (SeedFor(seed, "shard/<k>")) is in the message.
		if mentionsShard(seed) {
			p.Reportf(call.Pos(),
				"%s seed is derived from a shard index without sim.SeedFor; root per-shard RNGs at SeedFor(seed, \"shard/<k>\")", ctor)
			return
		}
		p.Reportf(call.Pos(),
			"%s seed is not rooted in sim.SeedFor, a Config.Seed, or a constant; results will not be a pure function of the run's seed", ctor)
	}
}

// mentionsShard reports whether the seed expression references a
// shard-ish identifier (shard, shardIdx, numShards, ...).
func mentionsShard(seed ast.Expr) bool {
	found := false
	ast.Inspect(seed, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "shard") {
			found = true
		}
		return !found
	})
	return found
}

// seedRooted reports whether the seed expression's subtree reaches one
// of the sanctioned determinism roots:
//
//   - a call to SeedFor or Stream (the (seed, name) derivation rule),
//   - a .Seed field selection (Config.Seed and friends),
//   - a variable or field whose name contains "seed",
//   - a compile-time constant (fixed seeds are reproducible by nature).
func seedRooted(info *types.Info, seed ast.Expr) bool {
	if tv, ok := info.Types[seed]; ok && tv.Value != nil {
		return true
	}
	rooted := false
	ast.Inspect(seed, func(n ast.Node) bool {
		if rooted {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			name := calleeName(v)
			if name == "SeedFor" || name == "Stream" {
				rooted = true
			}
		case *ast.SelectorExpr:
			if v.Sel.Name == "Seed" {
				rooted = true
			}
		case *ast.Ident:
			if strings.Contains(strings.ToLower(v.Name), "seed") {
				rooted = true
			}
		}
		return !rooted
	})
	return rooted
}
