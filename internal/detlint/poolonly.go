package detlint

import (
	"go/ast"
	"strings"
)

// poolonly guards the global -parallel contract: scenario.Pool is the
// one concurrency primitive in the tree, so its token count is a true
// global cap and the determinism tests' serial reference path
// (workers=1) exercises every scheduling decision. A bare go statement
// anywhere else in internal/ would run outside the cap, and any result
// it influences could depend on scheduling the pool never sees.
// internal/scenario itself is exempt — it is the pool's implementation
// — as are cmd/ and examples/ (no simulation state of their own) and
// all test files.
var poolonly = &Analyzer{
	Name: "poolonly",
	Doc:  "bare go statements in internal/ outside internal/scenario; concurrency must flow through scenario.Pool",
	Run:  runPoolonly,
}

func runPoolonly(p *Pass) {
	if !p.inInternal() || strings.HasSuffix(p.Path, "internal/scenario") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(),
					"bare go statement outside internal/scenario runs outside the global -parallel cap; run it through scenario.Pool")
			}
			return true
		})
	}
}
