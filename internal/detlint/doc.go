// Package detlint statically enforces the repository's determinism
// invariants: every artifact must be byte-identical across -parallel
// values and re-runs, so the bug classes that silently break that
// promise — order-sensitive reductions over map iteration, RNG roots
// not derived from the (seed, name) rule, wall-clock reads in
// simulation code, goroutines that bypass the shared scenario.Pool,
// and maps formatted directly into artifact output — are caught at
// vet-time instead of golden-time.
//
// Four analyzers are registered (see Analyzers):
//
//   - maporder: order-sensitive work inside `for range` over a map —
//     float or string accumulation, escaping appends, output writes —
//     the class of the PR 5 cloud.Datacenter.VMHours bug.
//   - seedrule: RNG construction whose seed is not rooted in
//     sim.SeedFor, a Config.Seed, or a constant; math/rand imports;
//     wall-clock (time.Now) reads inside internal/ simulation code.
//   - poolonly: bare go statements in internal/ packages other than
//     internal/scenario, which owns the global -parallel cap.
//   - mapprint: a map value passed straight to a fmt formatting or
//     printing call, which renders in random iteration order.
//
// Findings are suppressed, one site at a time, with a mandatory-reason
// comment on the offending line or the line above:
//
//	//detlint:allow <analyzer> <reason>
//
// A directive without a reason is itself a finding, as is a stale
// directive with no matching finding underneath — suppressions cannot
// rot silently. Test files are never analyzed: the invariants guard
// artifact-producing code, and tests are free to use wall clocks and
// ad-hoc goroutines.
//
// The suite is dependency-free: packages are enumerated with
// `go list -export`, parsed with go/parser, and type-checked with
// go/types against the build cache's export data, so elvet (cmd/elvet)
// runs anywhere the go toolchain does.
package detlint
