package detlint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The corpus harness: each testdata/<dir> is one loose package run
// against a chosen analyzer set, and its `want` comments are the
// expected-diagnostic spec. `// want "re" ...` expects one finding per
// quoted regexp on its own line; `// want-above "re" ...` expects them
// on the previous line (for findings that land on comment-only lines,
// like the suppression mechanism's own diagnostics). Expectations are
// exact in both directions: an unexpected finding fails, and so does an
// expected one that never fires.

var wantRE = regexp.MustCompile(`//\s*want(-above)?((?:\s+"[^"]*")+)`)
var wantArgRE = regexp.MustCompile(`"([^"]*)"`)

// wantsFromDir parses expectations from every corpus file in dir,
// keyed by "file:line".
func wantsFromDir(t *testing.T, dir string) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			lineNo := i + 1
			if m[1] == "-above" {
				lineNo--
			}
			key := fmt.Sprintf("%s:%d", path, lineNo)
			for _, arg := range wantArgRE.FindAllStringSubmatch(m[2], -1) {
				wants[key] = append(wants[key], arg[1])
			}
		}
	}
	return wants
}

// runCorpus loads testdata/<name> and checks the analyzers' findings
// against the corpus's want comments.
func runCorpus(t *testing.T, name string, analyzers []*Analyzer) []Finding {
	t.Helper()
	dir := filepath.Join("testdata", name)
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", name, err)
	}
	findings := Check([]*Package{pkg}, analyzers)

	wants := wantsFromDir(t, dir)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		res := wants[key]
		matched := -1
		for i, re := range res {
			if regexp.MustCompile(re).MatchString(f.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		wants[key] = append(res[:matched], res[matched+1:]...)
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s: expected finding matching %q never fired", key, re)
		}
	}
	return findings
}

func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

func TestMaporderCorpus(t *testing.T) {
	fs := runCorpus(t, "maporder", []*Analyzer{analyzerByName(t, "maporder")})
	if len(fs) == 0 {
		t.Fatal("negative corpus produced no findings")
	}
}

func TestSeedruleCorpus(t *testing.T) {
	fs := runCorpus(t, "seedrule", []*Analyzer{analyzerByName(t, "seedrule")})
	if len(fs) == 0 {
		t.Fatal("negative corpus produced no findings")
	}
}

func TestPoolonlyCorpus(t *testing.T) {
	fs := runCorpus(t, "poolonly", []*Analyzer{analyzerByName(t, "poolonly")})
	if len(fs) == 0 {
		t.Fatal("negative corpus produced no findings")
	}
}

// TestPoolonlyScenarioExemption: the same go statements are legal under
// the internal/scenario path, which owns the pool.
func TestPoolonlyScenarioExemption(t *testing.T) {
	fs := runCorpus(t, "poolscenario", []*Analyzer{analyzerByName(t, "poolonly")})
	if len(fs) != 0 {
		t.Fatalf("internal/scenario path must be exempt, got %v", fs)
	}
}

func TestMapprintCorpus(t *testing.T) {
	fs := runCorpus(t, "mapprint", []*Analyzer{analyzerByName(t, "mapprint")})
	if len(fs) == 0 {
		t.Fatal("negative corpus produced no findings")
	}
}

// TestSuppressCorpus covers the //detlint:allow mechanism end to end:
// with-reason suppressions (above and inline) silence findings, a
// reasonless directive both fails to suppress and is reported, a stale
// directive is reported, and an unknown analyzer name is reported.
func TestSuppressCorpus(t *testing.T) {
	fs := runCorpus(t, "suppress", []*Analyzer{analyzerByName(t, "poolonly")})
	var meta, poolonly int
	for _, f := range fs {
		switch f.Analyzer {
		case MetaAnalyzer:
			meta++
		case "poolonly":
			poolonly++
		}
	}
	if meta != 3 {
		t.Errorf("want 3 meta findings (malformed, stale, unknown), got %d:\n%v", meta, fs)
	}
	if poolonly != 1 {
		t.Errorf("want exactly 1 unsuppressed poolonly finding, got %d:\n%v", poolonly, fs)
	}
}
