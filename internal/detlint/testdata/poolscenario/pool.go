// Positive corpus for the poolonly analyzer's exemption: bare go
// statements are legal inside internal/scenario, the package that owns
// the global -parallel cap. No findings expected.
//
//detlint:path elearncloud/internal/scenario
package corpus

func recruit(run func()) {
	done := make(chan struct{})
	go func() {
		run()
		close(done)
	}()
	<-done
}
