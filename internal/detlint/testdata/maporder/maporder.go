// Negative corpus for the maporder analyzer: every line carrying a
// `want` comment must produce a finding whose message matches the
// quoted regexp.
package corpus

import (
	"fmt"
	"sort"
	"strings"
)

// floatSum is the VMHours bug class verbatim: a float reduction whose
// rounded total depends on map visit order.
func floatSum(hours map[int]float64) float64 {
	total := 0.0
	for _, h := range hours {
		total += h // want "float accumulation inside for-range over a map"
	}
	return total
}

// spelledOut catches the non-compound spelling of the same reduction.
func spelledOut(hours map[int]float64) float64 {
	total := 0.0
	for _, h := range hours {
		total = total + h // want "float accumulation inside for-range over a map"
	}
	return total
}

// stringConcat: order is the output.
func stringConcat(names map[string]bool) string {
	s := ""
	for n := range names {
		s += n // want "string accumulation inside for-range over a map"
	}
	return s
}

// intSum is commutative and exact: not flagged.
func intSum(counts map[string]int) int {
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// localFloat accumulates into a variable scoped to the body: each
// iteration starts fresh, so order cannot leak.
func localFloat(m map[string][]float64) {
	for _, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		_ = s
	}
}

// escapingAppend builds a value slice in map order and never sorts it.
func escapingAppend(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // want "append to out inside for-range over a map"
	}
	return out
}

// keyCollect is the first half of the canonical fix: allowed.
func keyCollect(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedLater appends pairs but erases map order with a sort before
// anyone reads the slice: allowed.
func sortedLater(m map[string]float64) []string {
	var rows []string
	for k, v := range m {
		rows = append(rows, fmt.Sprintf("%s=%g", k, v))
	}
	sort.Strings(rows)
	return rows
}

// printing emits artifact bytes in map order.
func printing(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf inside for-range over a map"
	}
}

// building writes into a builder that outlives the loop.
func building(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "WriteString call inside for-range over a map"
	}
	return b.String()
}
