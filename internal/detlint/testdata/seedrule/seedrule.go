// Negative corpus for the seedrule analyzer. The path directive plants
// this package under internal/ so the wall-clock check applies, exactly
// as it does to the real simulation packages.
//
//detlint:path elearncloud/internal/corpus
package corpus

import (
	"math/rand" // want "import of math/rand"
	"time"
)

// RNG stands in for sim.RNG; seedrule matches constructors by name.
type RNG struct{ state uint64 }

// NewRNG mirrors sim.NewRNG's shape.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// SeedFor mirrors sim.SeedFor's shape.
func SeedFor(seed uint64, name string) uint64 { return seed + uint64(len(name)) }

type config struct{ Seed uint64 }

// rooted constructions: derived, explicit, field-carried, or constant.
func rooted(cfg config) {
	seed := uint64(7)
	_ = NewRNG(seed)
	_ = NewRNG(SeedFor(1, "job"))
	_ = NewRNG(cfg.Seed)
	_ = NewRNG(42)
	_ = NewRNG(shardSeed(3))
}

func shardSeed(i int) uint64 { return uint64(i) }

// unrooted: an arbitrary variable is not a seed.
func unrooted(workers uint64) {
	_ = NewRNG(workers) // want "NewRNG seed is not rooted"
}

// perShardRooted follows the sharded-run derivation rule: each shard's
// engine RNG is rooted at SeedFor(seed, "shard/<k>").
func perShardRooted(seed uint64) {
	for k := 0; k < 4; k++ {
		_ = NewRNG(SeedFor(seed, "shard/k"))
	}
}

// perShardUnrooted seeds a per-shard RNG from the raw shard index —
// shards would collide with each other and with any other stream; the
// message must point at the shard derivation rule.
func perShardUnrooted(shard int) {
	_ = NewRNG(uint64(shard)) // want "NewRNG seed is derived from a shard index"
}

// wallClockSeed is the classic crime: every run gets a different world.
func wallClockSeed() {
	_ = NewRNG(uint64(time.Now().UnixNano())) // want "NewRNG seeded from time.Now"
}

// globalRand uses the process-wide source the (seed, name) rule cannot
// reach; the import line above is the finding.
func globalRand() int {
	src := rand.NewSource(time.Now().UnixNano()) // want "NewSource seeded from time.Now"
	return rand.New(src).Int()
}

// wallClock reads the clock inside internal/ simulation code.
func wallClock() time.Time {
	return time.Now() // want "time.Now in simulation code"
}
