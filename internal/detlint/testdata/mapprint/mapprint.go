// Negative corpus for the mapprint analyzer: map values must never be
// handed to fmt directly on an artifact path.
package corpus

import (
	"fmt"
	"sort"
)

func direct(shares map[string]float64) string {
	return fmt.Sprintf("shares: %v", shares) // want "map value passed to fmt.Sprintf"
}

func printed(counts map[int]int) {
	fmt.Println(counts) // want "map value passed to fmt.Println"
}

func inError(missing map[string]bool) error {
	return fmt.Errorf("missing ids: %v", missing) // want "map value passed to fmt.Errorf"
}

// sortedRender is the sanctioned shape: explicit sorted-key iteration.
func sortedRender(shares map[string]float64) string {
	keys := make([]string, 0, len(shares))
	for k := range shares {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%g ", k, shares[k])
	}
	return out
}
