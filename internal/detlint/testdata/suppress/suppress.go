// Corpus for the //detlint:allow suppression mechanism, exercised
// against poolonly findings (syntactic, so the file stays small).
// `want` expects findings on its own line; `want-above` expects them on
// the line above (needed when the finding sits on a comment-only or
// directive-carrying line).
//
//detlint:path elearncloud/internal/corpus
package corpus

// suppressedAbove: a well-formed directive on the line above silences
// the finding. No want comment — nothing may be reported.
func suppressedAbove(f func()) {
	//detlint:allow poolonly corpus demonstration of a justified escape
	go f()
}

// suppressedInline: trailing form on the offending line.
func suppressedInline(f func()) {
	go f() //detlint:allow poolonly corpus demonstration of a justified escape
}

// missingReason: a directive without a reason suppresses nothing and is
// itself reported — the go statement fires alongside it.
func missingReason(f func()) {
	go f() //detlint:allow poolonly
	// want-above "bare go statement" "malformed //detlint:allow"
}

// staleDirective covers no finding at all: the code was fixed, the
// excuse must go.
func staleDirective(f func()) {
	f() //detlint:allow poolonly nothing underneath anymore
	// want-above "stale //detlint:allow"
}

// unknownAnalyzer names a check elvet does not register.
func unknownAnalyzer(f func()) {
	f() //detlint:allow determinizer typo of a real analyzer name
	// want-above "unknown analyzer"
}
