// Negative corpus for the poolonly analyzer: this package is planted
// under internal/ (outside internal/scenario), where bare go statements
// escape the global -parallel cap.
//
//detlint:path elearncloud/internal/corpus
package corpus

func fanOut(jobs []func()) {
	done := make(chan struct{})
	for _, j := range jobs {
		go func() { // want "bare go statement outside internal/scenario"
			j()
			done <- struct{}{}
		}()
	}
	for range jobs {
		<-done
	}
}

func fireAndForget(f func()) {
	go f() // want "bare go statement outside internal/scenario"
}
