package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one determinism check. Run inspects a type-checked
// package through its Pass and reports findings; it must not retain the
// Pass after returning.
type Analyzer struct {
	// Name is the identifier used in elvet output, `elvet -list`, and
	// //detlint:allow directives.
	Name string
	// Doc is the one-line description shown by `elvet -list` and
	// cross-checked against ARCHITECTURE.md by scripts/check-docs.sh.
	Doc string
	// Run reports this analyzer's findings on one package.
	Run func(*Pass)
}

// Analyzers returns the registered determinism analyzers in the fixed
// order elvet runs and lists them.
func Analyzers() []*Analyzer {
	return []*Analyzer{maporder, seedrule, poolonly, mapprint}
}

// MetaAnalyzer is the pseudo-analyzer name under which the suppression
// mechanism's own findings (malformed, unknown-analyzer, and stale
// //detlint:allow directives) are reported. It is not a registered
// analyzer and its findings cannot themselves be suppressed.
const MetaAnalyzer = "detlint"

// A Finding is one diagnostic at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	// analyzer is the check currently running, set by Check before
	// each Run; Reportf attributes findings to it.
	analyzer *Analyzer

	// Path is the package's import path. Corpus files may override it
	// with a //detlint:path directive so path-scoped analyzers
	// (poolonly, seedrule's wall-clock check) can be exercised from
	// testdata.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	report func(Finding)
}

// Reportf records a finding at pos, attributed to the running
// analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// inInternal reports whether the pass's package lives under internal/,
// the scope of the repository's simulation-determinism rules (cmd/ and
// examples/ may read wall clocks for CLI telemetry, for instance).
func (p *Pass) inInternal() bool {
	return strings.Contains(p.Path, "internal/")
}

// Check runs the given analyzers over each package, applies
// //detlint:allow suppressions, reports the suppression mechanism's own
// findings, and returns everything sorted by position. A nil analyzers
// slice means Analyzers().
func Check(pkgs []*Package, analyzers []*Analyzer) []Finding {
	if analyzers == nil {
		analyzers = Analyzers()
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	var out []Finding
	for _, pkg := range pkgs {
		dirs := collectDirectives(pkg.Fset, pkg.Files)

		var raw []Finding
		pass := &Pass{
			Path:   pkg.Path,
			Fset:   pkg.Fset,
			Files:  pkg.Files,
			Pkg:    pkg.Pkg,
			Info:   pkg.Info,
			report: func(f Finding) { raw = append(raw, f) },
		}
		for _, a := range analyzers {
			pass.analyzer = a
			a.Run(pass)
		}

		out = append(out, applyDirectives(raw, dirs, known, ran)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}
