package detlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// mapprint catches the quiet cousin of the maporder bug: handing a map
// value straight to a fmt formatting or printing call. fmt renders maps
// in key-sorted order since Go 1.12, which hides the hazard in simple
// cases — but %v of a struct containing a map, maps with NaN keys, and
// any future formatter change still make the byte output a function of
// something other than the seed. Artifact output must come from
// explicit sorted-key iteration, never from formatting the map itself.
var mapprint = &Analyzer{
	Name: "mapprint",
	Doc:  "map value formatted directly by a fmt call; artifact bytes must come from sorted-key iteration",
	Run:  runMapprint,
}

// fmtVerbFuncs are the fmt functions whose non-writer arguments are
// formatted into output.
func isFmtFormatter(name string) bool {
	for _, prefix := range []string{"Print", "Fprint", "Sprint", "Append", "Errorf"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func runMapprint(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || pkgNameOf(p.Info, sel) != "fmt" || !isFmtFormatter(sel.Sel.Name) {
				return true
			}
			for _, arg := range call.Args {
				t := p.Info.TypeOf(arg)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					p.Reportf(arg.Pos(),
						"map value passed to fmt.%s formats in iteration-dependent order; print sorted keys explicitly", sel.Sel.Name)
				}
			}
			return true
		})
	}
}
