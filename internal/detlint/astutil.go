package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shared AST/type helpers for the analyzers.

// pkgNameOf resolves a selector's qualifier to the import path of the
// package it names ("" when X is not a package qualifier).
func pkgNameOf(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// calleeName returns the bare name a call resolves to syntactically:
// the identifier for f(...), the selector's Sel for x.f(...).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// rootObj walks to the leftmost identifier of an lvalue-ish expression
// (x, x.f, x[i], *x, (x)) and returns its object, or nil.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj is declared outside [lo, hi) —
// i.e. the mutation target outlives the loop body, so iteration order
// can leak into it.
func declaredOutside(obj types.Object, lo, hi token.Pos) bool {
	if obj == nil {
		// Unresolvable roots (e.g. a call's result) are treated as
		// outside: flagging a false negative here would hide real
		// escapes behind method-chained receivers.
		return true
	}
	return obj.Pos() < lo || obj.Pos() >= hi
}

// mentionsObj reports whether the expression subtree references obj.
func mentionsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// onlyMentions reports whether every identifier in the subtree that
// resolves to a variable is one of the allowed objects (constants,
// types, and functions are ignored).
func onlyMentions(info *types.Info, e ast.Expr, allowed map[types.Object]bool) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return ok
		}
		if v, isVar := info.ObjectOf(id).(*types.Var); isVar && !allowed[v] {
			ok = false
		}
		return ok
	})
	return ok
}

// enclosingFuncBody returns the body of the innermost function
// declaration or literal in file whose body encloses pos, or nil.
func enclosingFuncBody(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil && body.Pos() <= pos && pos < body.End() {
			best = body // keep descending: innermost wins
		}
		return true
	})
	return best
}

// isFloat and isString classify the underlying basic kind of t.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
