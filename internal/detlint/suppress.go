package detlint

import (
	"go/ast"
	"go/token"
	"strings"
)

// This file implements the //detlint:allow suppression mechanism. A
// finding is silenced by a directive on the finding's own line (a
// trailing comment) or on the line directly above it:
//
//	//detlint:allow seedrule token timestamps are telemetry, not sim state
//
// The first field after the directive names the analyzer being
// silenced; everything after it is the mandatory reason. Three ways a
// directive can rot are themselves findings, reported under the
// MetaAnalyzer name and never suppressible:
//
//   - no reason given (suppressions must say why),
//   - an analyzer name elvet does not register (typo or removed check),
//   - a stale directive whose analyzer ran but produced no finding on
//     the covered lines (the code was fixed; the excuse must go too).

const allowPrefix = "detlint:allow"

// A directive is one parsed //detlint:allow comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// collectDirectives extracts every //detlint:allow comment from the
// package's files. Malformed directives are kept (with empty analyzer
// or reason) so applyDirectives can report them.
func collectDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var dirs []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				d := &directive{pos: fset.Position(c.Pos())}
				if len(fields) > 0 {
					d.analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// applyDirectives filters raw findings through the directives and
// appends the suppression mechanism's own findings. known is the full
// registered-analyzer set (for the unknown-name check); ran is the set
// that actually executed this run (staleness is only decidable for
// analyzers that ran).
func applyDirectives(raw []Finding, dirs []*directive, known, ran map[string]bool) []Finding {
	var out []Finding
	for _, f := range raw {
		if d := matchDirective(dirs, f); d != nil {
			d.used = true
			continue
		}
		out = append(out, f)
	}
	for _, d := range dirs {
		switch {
		case d.analyzer == "" || d.reason == "":
			out = append(out, Finding{
				Pos:      d.pos,
				Analyzer: MetaAnalyzer,
				Message:  "malformed //detlint:allow directive: need an analyzer name and a reason (//detlint:allow <analyzer> <reason>)",
			})
		case !known[d.analyzer]:
			out = append(out, Finding{
				Pos:      d.pos,
				Analyzer: MetaAnalyzer,
				Message:  "//detlint:allow names unknown analyzer \"" + d.analyzer + "\"; see elvet -list",
			})
		case ran[d.analyzer] && !d.used:
			out = append(out, Finding{
				Pos:      d.pos,
				Analyzer: MetaAnalyzer,
				Message:  "stale //detlint:allow: no " + d.analyzer + " finding on this line or the next; delete the directive",
			})
		}
	}
	return out
}

// matchDirective returns the first well-formed directive that covers
// the finding: same file, same analyzer, on the finding's line or the
// line above. Malformed directives (missing reason) never match, so an
// excuse-free suppression cannot silence anything.
func matchDirective(dirs []*directive, f Finding) *directive {
	if f.Analyzer == MetaAnalyzer {
		return nil
	}
	for _, d := range dirs {
		if d.analyzer != f.Analyzer || d.reason == "" {
			continue
		}
		if d.pos.Filename != f.Pos.Filename {
			continue
		}
		if d.pos.Line == f.Pos.Line || d.pos.Line == f.Pos.Line-1 {
			return d
		}
	}
	return nil
}
