package detlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file loads type-checked packages without any dependency beyond
// the go toolchain itself: `go list -export -deps` enumerates the
// packages matching the caller's patterns and materializes gc export
// data for every import in the build cache, go/parser reads the target
// sources, and go/types checks them against that export data through
// the stdlib gc importer. This is the issue's stdlib fallback for
// golang.org/x/tools/go/analysis — the module stays dependency-free.

// A Package is one parsed, type-checked package ready for Check.
type Package struct {
	// Path is the import path analyzers scope on (see Pass.Path).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` on the patterns in dir
// and returns the decoded package stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies go/types through the stdlib gc importer,
// resolving each import path to the export-data file `go list -export`
// reported for it.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("detlint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// Load enumerates the packages matching patterns (resolved in dir, ""
// meaning the current directory), parses their non-test sources, and
// type-checks them against build-cache export data. Test files are
// deliberately excluded: the determinism invariants guard
// artifact-producing code, and tests may use wall clocks, ad-hoc
// goroutines, and throwaway seeds freely.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listedPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("detlint: %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("detlint: type-checking %s: %v", t.ImportPath, err)
		}
		out = append(out, &Package{Path: t.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info})
	}
	return out, nil
}

// pathDirective is the corpus-only override that assigns a loose
// directory an effective import path, so path-scoped analyzers can be
// exercised from testdata:
//
//	//detlint:path elearncloud/internal/example
const pathDirective = "detlint:path"

// LoadDir parses every non-test .go file in dir as one loose package —
// the corpus form used by the analyzer testdata and `elvet -dir`. The
// files may import the standard library only; the effective import
// path defaults to "corpus/<dirname>" unless a //detlint:path
// directive in any file overrides it.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := make(map[string]bool)
	path := "corpus/" + filepath.Base(dir)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		for _, spec := range f.Imports {
			p, _ := strconv.Unquote(spec.Path.Value)
			imports[p] = true
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if text, ok := strings.CutPrefix(c.Text, "//"+pathDirective); ok {
					if fields := strings.Fields(text); len(fields) == 1 {
						path = fields[0]
					}
				}
			}
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("detlint: no Go files in %s", dir)
	}

	exports := make(map[string]string)
	if len(imports) > 0 {
		var pats []string
		for p := range imports {
			pats = append(pats, p)
		}
		sort.Strings(pats)
		listed, err := goList("", pats)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("detlint: type-checking %s: %v", dir, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
