package migrate

import (
	"math"
	"testing"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/sim"
)

func TestPlanScalesWithLockin(t *testing.T) {
	model := DefaultCostModel()
	base := LockinProfile{Components: 10, DataBytes: 500e9}

	var prev float64 = -1
	for _, idx := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		p := base
		p.Index = idx
		plan, err := NewPlan(p, model)
		if err != nil {
			t.Fatal(err)
		}
		if plan.TotalUSD() < prev {
			t.Fatalf("migration cost not monotone in lock-in at %v", idx)
		}
		prev = plan.TotalUSD()
	}
}

func TestPlanComponents(t *testing.T) {
	model := DefaultCostModel()
	plan, err := NewPlan(LockinProfile{Index: 0.7, Components: 10, DataBytes: 100e9}, model)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ComponentsToPort != 7 {
		t.Fatalf("ComponentsToPort = %d, want 7", plan.ComponentsToPort)
	}
	// 7 ports * 12000 * 1.35 testing.
	want := 7 * 12000 * 1.35
	if math.Abs(plan.ReengineerUSD-want) > 1e-6 {
		t.Fatalf("ReengineerUSD = %v, want %v", plan.ReengineerUSD, want)
	}
	// 100 GB * $0.12.
	if math.Abs(plan.EgressUSD-12.0) > 1e-9 {
		t.Fatalf("EgressUSD = %v, want 12", plan.EgressUSD)
	}
	// 100e9 bytes * 8 / 500e6 bps = 1600 s.
	if plan.TransferTime != 1600*time.Second {
		t.Fatalf("TransferTime = %v, want 1600s", plan.TransferTime)
	}
	if plan.Downtime != 8*time.Hour {
		t.Fatalf("Downtime = %v", plan.Downtime)
	}
}

func TestPlanCalendarTimeOverlapsTransferAndEngineering(t *testing.T) {
	p := Plan{
		TransferTime:    10 * time.Hour,
		EngineeringTime: 40 * time.Hour,
		Downtime:        2 * time.Hour,
	}
	if p.CalendarTime() != 42*time.Hour {
		t.Fatalf("CalendarTime = %v, want 42h (max(10,40)+2)", p.CalendarTime())
	}
}

func TestPaperOrderingPublicWorstHybridBetter(t *testing.T) {
	// §IV: public accumulates the most lock-in; hybrid decreases platform
	// dependence; private barely locks in. Same data volume for fairness.
	model := DefaultCostModel()
	costFor := func(k deploy.Kind) float64 {
		plan, err := NewPlan(LockinProfile{
			Index:      k.DefaultLockinIndex(),
			Components: 12,
			DataBytes:  1e12,
		}, model)
		if err != nil {
			t.Fatal(err)
		}
		return plan.TotalUSD()
	}
	pub, hyb, priv := costFor(deploy.Public), costFor(deploy.Hybrid), costFor(deploy.Private)
	if !(pub > hyb && hyb > priv) {
		t.Fatalf("migration cost ordering wrong: public=%v hybrid=%v private=%v", pub, hyb, priv)
	}
}

func TestPlanValidation(t *testing.T) {
	model := DefaultCostModel()
	bad := []LockinProfile{
		{Index: -0.1, Components: 5},
		{Index: 1.1, Components: 5},
		{Index: 0.5, Components: 0},
		{Index: 0.5, Components: 5, DataBytes: -1},
	}
	for i, p := range bad {
		if _, err := NewPlan(p, model); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	model.TransferMbps = 0
	if _, err := NewPlan(LockinProfile{Index: 0.5, Components: 5}, model); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestExecuteFiresAtCalendarTime(t *testing.T) {
	eng := sim.NewEngine(1)
	plan, err := NewPlan(LockinProfile{Index: 0.5, Components: 4, DataBytes: 10e9}, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	fired := false
	finish := Execute(eng, plan, func(r Result) { res = r; fired = true })
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("done never fired")
	}
	if res.FinishedAt != finish {
		t.Fatalf("FinishedAt = %v, want %v", res.FinishedAt, finish)
	}
	if res.Duration() != plan.CalendarTime() {
		t.Fatalf("Duration = %v, want %v", res.Duration(), plan.CalendarTime())
	}
}

func TestExecuteNilEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Execute(nil, Plan{}, nil)
}

func TestZeroLockinStillPaysEgressAndCutover(t *testing.T) {
	plan, err := NewPlan(LockinProfile{Index: 0, Components: 10, DataBytes: 1e12}, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if plan.ReengineerUSD != 0 {
		t.Fatal("zero lock-in should need no porting")
	}
	if plan.EgressUSD <= 0 {
		t.Fatal("data still costs egress")
	}
	if plan.Downtime <= 0 {
		t.Fatal("cutover freeze still applies")
	}
}
