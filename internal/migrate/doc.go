// Package migrate models the paper's portability risk: "the ability to
// bring systems back in-house or choose another cloud provider will be
// limited by proprietary interfaces" (§III), §IV.A's warning that
// repatriating a public-cloud system is "relatively difficult and
// expensive", and §IV.C's claim that the hybrid model "provides an
// ease for bringing the e-learning system back in-house or
// transferring to another cloud provider by decreasing platform
// dependence".
//
// A migration has three cost drivers: re-engineering the components
// that were written against proprietary interfaces, paying egress to
// move the data out, and the cutover freeze while the switch happens.
// All three scale with the lock-in index, which is the quantity
// figure7 sweeps (examples/migration walks one repatriation
// end-to-end).
//
// Entry points: describe where the institution stands as a
// LockinProfile (proprietary components, data volume, lock-in index)
// and price it with a CostModel (DefaultCostModel for the 2013
// defaults); NewPlan validates the pair into a Plan, and Execute runs
// the Plan on a sim.Engine — the phases advance on the virtual clock
// and the done callback receives the Result (cost breakdown, calendar
// time, downtime). Plan costing alone needs no engine; Execute exists
// so migrations can overlap live traffic in a scenario run.
package migrate
