package migrate

import (
	"fmt"
	"math"
	"time"

	"elearncloud/internal/sim"
)

// LockinProfile describes how entangled a deployment is with its current
// provider.
type LockinProfile struct {
	// Index in [0,1] is the fraction of the system built against
	// proprietary interfaces (deploy.Kind.DefaultLockinIndex provides
	// per-model defaults).
	Index float64
	// Components is the number of deployable system components (LMS
	// core, video pipeline, auth, grade book, forums, ...).
	Components int
	// DataBytes is the volume held at the provider that must move.
	DataBytes float64
}

// Validate rejects out-of-range profiles.
func (p LockinProfile) Validate() error {
	if p.Index < 0 || p.Index > 1 {
		return fmt.Errorf("migrate: lock-in index %v outside [0,1]", p.Index)
	}
	if p.Components <= 0 {
		return fmt.Errorf("migrate: components = %d, need > 0", p.Components)
	}
	if p.DataBytes < 0 {
		return fmt.Errorf("migrate: negative data volume")
	}
	return nil
}

// CostModel prices migration work.
type CostModel struct {
	// ReengineerUSDPerComponent is the cost to port one
	// proprietary-entangled component to a standard interface.
	ReengineerUSDPerComponent float64
	// EngineerUSDPerWeek converts effort to calendar time (one team).
	EngineerUSDPerWeek float64
	// EgressPerGB is the provider's data-transfer-out price.
	EgressPerGB float64
	// TransferMbps is the sustained export bandwidth.
	TransferMbps float64
	// CutoverHours is the service freeze for the final switchover.
	CutoverHours float64
	// TestingFraction adds integration-testing effort proportional to
	// the re-engineering bill.
	TestingFraction float64
}

// DefaultCostModel returns 2013-era consulting prices: a component port
// is about three person-weeks at ~$4k/week.
func DefaultCostModel() CostModel {
	return CostModel{
		ReengineerUSDPerComponent: 12000,
		EngineerUSDPerWeek:        4000,
		EgressPerGB:               0.12,
		TransferMbps:              500,
		CutoverHours:              8,
		TestingFraction:           0.35,
	}
}

// Plan is a priced migration.
type Plan struct {
	// ComponentsToPort is how many components need re-engineering
	// (lock-in index × component count, rounded up).
	ComponentsToPort int
	// ReengineerUSD is the porting bill including testing.
	ReengineerUSD float64
	// EgressUSD is the data-export bill.
	EgressUSD float64
	// TransferTime is how long the data export takes.
	TransferTime time.Duration
	// EngineeringTime is the porting calendar time (one team, serial).
	EngineeringTime time.Duration
	// Downtime is the user-visible freeze.
	Downtime time.Duration
}

// TotalUSD sums the money components.
func (p Plan) TotalUSD() float64 { return p.ReengineerUSD + p.EgressUSD }

// CalendarTime is the end-to-end migration duration: engineering and the
// bulk transfer overlap; the cutover is serial at the end.
func (p Plan) CalendarTime() time.Duration {
	m := p.EngineeringTime
	if p.TransferTime > m {
		m = p.TransferTime
	}
	return m + p.Downtime
}

// NewPlan prices a migration for a profile under a cost model.
func NewPlan(profile LockinProfile, model CostModel) (Plan, error) {
	if err := profile.Validate(); err != nil {
		return Plan{}, err
	}
	if model.TransferMbps <= 0 {
		return Plan{}, fmt.Errorf("migrate: non-positive transfer bandwidth")
	}
	ports := int(math.Ceil(profile.Index * float64(profile.Components)))
	reeng := float64(ports) * model.ReengineerUSDPerComponent * (1 + model.TestingFraction)

	gb := profile.DataBytes / 1e9
	egress := gb * model.EgressPerGB

	transferSec := profile.DataBytes * 8 / (model.TransferMbps * 1e6)

	engWeeks := 0.0
	if model.EngineerUSDPerWeek > 0 {
		engWeeks = reeng / model.EngineerUSDPerWeek
	}

	return Plan{
		ComponentsToPort: ports,
		ReengineerUSD:    reeng,
		EgressUSD:        egress,
		TransferTime:     sim.Seconds(transferSec),
		EngineeringTime:  time.Duration(engWeeks * float64(7*24*time.Hour)),
		Downtime:         time.Duration(model.CutoverHours * float64(time.Hour)),
	}, nil
}

// Result reports an executed migration.
type Result struct {
	// StartedAt / FinishedAt bracket the migration on the virtual clock.
	StartedAt, FinishedAt time.Duration
	// Plan echoes what was executed.
	Plan Plan
}

// Duration returns the realized calendar time.
func (r Result) Duration() time.Duration { return r.FinishedAt - r.StartedAt }

// Execute runs a plan on the engine: engineering and transfer proceed in
// parallel, then the cutover freeze, then done fires. It returns the
// scheduled completion time.
func Execute(eng *sim.Engine, plan Plan, done func(Result)) time.Duration {
	if eng == nil {
		panic("migrate: Execute with nil engine")
	}
	start := eng.Now()
	finish := start + plan.CalendarTime()
	eng.ScheduleAt(finish, "migrate/complete", func() {
		if done != nil {
			done(Result{StartedAt: start, FinishedAt: eng.Now(), Plan: plan})
		}
	})
	return finish
}
