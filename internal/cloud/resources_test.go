package cloud

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{CPU: 4, Mem: 16, Disk: 100}
	b := Resources{CPU: 1, Mem: 2, Disk: 10}
	sum := a.Add(b)
	if sum != (Resources{CPU: 5, Mem: 18, Disk: 110}) {
		t.Fatalf("Add = %v", sum)
	}
	diff := a.Sub(b)
	if diff != (Resources{CPU: 3, Mem: 14, Disk: 90}) {
		t.Fatalf("Sub = %v", diff)
	}
	if !b.Fits(a) {
		t.Fatal("b should fit in a")
	}
	if a.Fits(b) {
		t.Fatal("a should not fit in b")
	}
}

func TestResourcesAddSubRoundTrip(t *testing.T) {
	f := func(ac, am, ad, bc, bm, bd uint8) bool {
		a := Resources{CPU: float64(ac), Mem: float64(am), Disk: float64(ad)}
		b := Resources{CPU: float64(bc), Mem: float64(bm), Disk: float64(bd)}
		return a.Add(b).Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResourcesFlags(t *testing.T) {
	if !(Resources{}).IsZero() {
		t.Fatal("zero value not IsZero")
	}
	if (Resources{CPU: 1}).IsZero() {
		t.Fatal("nonzero reported IsZero")
	}
	if !(Resources{CPU: 1}).Valid() {
		t.Fatal("valid reported invalid")
	}
	if (Resources{CPU: -1}).Valid() {
		t.Fatal("negative reported valid")
	}
}

func TestResourcesScale(t *testing.T) {
	r := Resources{CPU: 2, Mem: 4, Disk: 8}.Scale(0.5)
	if r != (Resources{CPU: 1, Mem: 2, Disk: 4}) {
		t.Fatalf("Scale = %v", r)
	}
}

func TestResourcesDominant(t *testing.T) {
	cap := Resources{CPU: 10, Mem: 100, Disk: 1000}
	used := Resources{CPU: 5, Mem: 90, Disk: 100}
	if got := used.Dominant(cap); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("Dominant = %v, want 0.9 (memory bound)", got)
	}
	// Demand on a zero-capacity dimension saturates.
	if got := (Resources{Disk: 1}).Dominant(Resources{CPU: 1, Mem: 1}); got != 1 {
		t.Fatalf("zero-capacity Dominant = %v, want 1", got)
	}
	if got := (Resources{}).Dominant(cap); got != 0 {
		t.Fatalf("empty Dominant = %v, want 0", got)
	}
}

func TestResourcesString(t *testing.T) {
	s := Resources{CPU: 2, Mem: 8, Disk: 50}.String()
	if s != "{cpu=2 mem=8GB disk=50GB}" {
		t.Fatalf("String = %q", s)
	}
}
