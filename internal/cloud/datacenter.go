package cloud

import (
	"fmt"
	"time"

	"elearncloud/internal/sim"
)

// Config configures a Datacenter.
type Config struct {
	// Name labels the datacenter in reports ("public-east", "campus-dc").
	Name string
	// Hosts is the number of physical hosts.
	Hosts int
	// HostCapacity is each host's resource capacity.
	HostCapacity Resources
	// Placer chooses hosts for new VMs. Defaults to FirstFit.
	Placer Placer
	// MultiTenant enables noisy-neighbor interference: co-tenant load on
	// shared hosts periodically steals CPU from placed VMs. Public clouds
	// set this; private clouds do not.
	MultiTenant bool
	// InterferenceDist samples the fraction of CPU stolen per VM per
	// resample interval when MultiTenant is set. Defaults to a mild
	// LogNormal around 5%.
	InterferenceDist sim.Dist
	// InterferenceEvery is the resample period (default 5 minutes).
	InterferenceEvery time.Duration
	// Elastic datacenters (public clouds) add phantom hosts on demand, so
	// provisioning never fails for capacity reasons; the institution pays
	// per VM-hour. Non-elastic (private) datacenters return ErrNoCapacity
	// when full — the paper's fixed-capacity drawback.
	Elastic bool
}

// Datacenter owns a pool of hosts and manages the VM lifecycle on top of a
// simulation engine.
type Datacenter struct {
	cfg    Config
	eng    *sim.Engine
	rng    *sim.RNG
	hosts  []*Host
	nextID int
	vms    map[int]*VM

	vmHours    float64 // accumulated at termination
	peakVMs    int
	stopResamp func()
}

// NewDatacenter builds a datacenter and, for multi-tenant configurations,
// starts the periodic interference resampler on the engine.
func NewDatacenter(eng *sim.Engine, cfg Config) *Datacenter {
	if eng == nil {
		panic("cloud: NewDatacenter with nil engine")
	}
	if cfg.Hosts <= 0 {
		panic("cloud: NewDatacenter needs at least one host")
	}
	if cfg.Placer == nil {
		cfg.Placer = FirstFit{}
	}
	if cfg.InterferenceDist == nil {
		cfg.InterferenceDist = sim.LogNormal(0.05, 0.8)
	}
	if cfg.InterferenceEvery <= 0 {
		cfg.InterferenceEvery = 5 * time.Minute
	}
	dc := &Datacenter{
		cfg: cfg,
		eng: eng,
		rng: eng.Stream("cloud/" + cfg.Name),
		vms: make(map[int]*VM),
	}
	for i := 0; i < cfg.Hosts; i++ {
		dc.hosts = append(dc.hosts, NewHost(i, cfg.HostCapacity))
	}
	if cfg.MultiTenant {
		dc.stopResamp = eng.Every(cfg.InterferenceEvery, cfg.Name+"/interference", dc.resampleInterference)
	}
	return dc
}

// Name returns the datacenter's configured name.
func (dc *Datacenter) Name() string { return dc.cfg.Name }

// Hosts returns the host list (the slice is shared; callers must not
// mutate it).
func (dc *Datacenter) Hosts() []*Host { return dc.hosts }

// NumRunning returns the count of VMs not yet terminated.
func (dc *Datacenter) NumRunning() int { return len(dc.vms) }

// PeakVMs returns the maximum simultaneous VM count observed.
func (dc *Datacenter) PeakVMs() int { return dc.peakVMs }

// Provision places and boots a VM of the given spec. The ready callback
// (optional) fires when the VM finishes booting. If capacity is exhausted
// and the datacenter is not elastic, it returns ErrNoCapacity.
func (dc *Datacenter) Provision(spec InstanceSpec, ready func(*VM)) (*VM, error) {
	if !spec.Res.Valid() || spec.Res.IsZero() {
		return nil, fmt.Errorf("cloud: provision %q with invalid resources %v", spec.Name, spec.Res)
	}
	host, err := dc.cfg.Placer.Place(spec.Res, dc.hosts)
	if err != nil {
		if !dc.cfg.Elastic {
			return nil, fmt.Errorf("datacenter %s: %w", dc.cfg.Name, err)
		}
		// Elastic overflow: the provider brings another host online.
		host = NewHost(len(dc.hosts), dc.cfg.HostCapacity)
		dc.hosts = append(dc.hosts, host)
		if !spec.Res.Fits(host.Capacity) {
			return nil, fmt.Errorf("cloud: spec %q exceeds host capacity", spec.Name)
		}
	}
	vm := &VM{
		ID:          dc.nextID,
		Spec:        spec,
		state:       VMProvisioning,
		provisioned: dc.eng.Now(),
	}
	dc.nextID++
	host.place(vm)
	dc.vms[vm.ID] = vm
	if n := len(dc.vms); n > dc.peakVMs {
		dc.peakVMs = n
	}
	boot := sim.Time(0)
	if spec.BootDelay != nil {
		boot = sim.Seconds(spec.BootDelay.Sample(dc.rng))
	}
	dc.eng.Schedule(boot, dc.cfg.Name+"/boot", func() {
		if vm.state != VMProvisioning {
			return // terminated while booting
		}
		vm.state = VMRunning
		vm.bootComplete = dc.eng.Now()
		if dc.cfg.MultiTenant {
			vm.setInterference(dc.cfg.InterferenceDist.Sample(dc.rng))
		}
		if ready != nil {
			ready(vm)
		}
	})
	return vm, nil
}

// Terminate releases a VM. Terminating an already terminated VM is a
// no-op. Billable hours accumulate at termination.
func (dc *Datacenter) Terminate(vm *VM) {
	if vm == nil || vm.state == VMTerminated {
		return
	}
	vm.terminated = dc.eng.Now()
	dc.vmHours += vm.RunningHours(dc.eng.Now())
	if vm.host != nil {
		vm.host.release(vm)
	}
	vm.state = VMTerminated
	delete(dc.vms, vm.ID)
}

// Shutdown terminates all VMs and stops background activity. The
// datacenter cannot be used afterward.
func (dc *Datacenter) Shutdown() {
	for _, vm := range dc.RunningVMs() {
		dc.Terminate(vm)
	}
	if dc.stopResamp != nil {
		dc.stopResamp()
		dc.stopResamp = nil
	}
}

// RunningVMs returns non-terminated VMs ordered by ID (deterministic).
func (dc *Datacenter) RunningVMs() []*VM {
	out := make([]*VM, 0, len(dc.vms))
	for id := 0; id < dc.nextID; id++ {
		if vm, ok := dc.vms[id]; ok {
			out = append(out, vm)
		}
	}
	return out
}

// VMHours returns total billable VM-hours: hours of terminated VMs plus
// running time of live VMs up to now. Live VMs are summed in ID order:
// float addition is order-sensitive at the ulp, and a map-order sum can
// land on either side of a rendering boundary (table9's scheduled ramp
// sits exactly on a %.1f half), which would make artifact bytes depend
// on map iteration.
func (dc *Datacenter) VMHours() float64 {
	total := dc.vmHours
	for _, vm := range dc.RunningVMs() {
		total += vm.RunningHours(dc.eng.Now())
	}
	return total
}

// Utilization returns the mean bottleneck utilization across hosts.
func (dc *Datacenter) Utilization() float64 {
	if len(dc.hosts) == 0 {
		return 0
	}
	sum := 0.0
	for _, h := range dc.hosts {
		sum += h.Utilization()
	}
	return sum / float64(len(dc.hosts))
}

// FailHost marks a host failed and terminates its VMs, modeling the
// paper's "physical damage of the unit" risk for on-premise hardware. It
// returns the terminated VMs so callers can count lost capacity.
func (dc *Datacenter) FailHost(id int) []*VM {
	if id < 0 || id >= len(dc.hosts) {
		return nil
	}
	h := dc.hosts[id]
	h.failed = true
	victims := h.VMs() // already in ID order — the determinism contract
	for _, vm := range victims {
		dc.Terminate(vm)
	}
	return victims
}

// RepairHost returns a failed host to service; new provisions may use it
// again. Repairing a healthy or unknown host is a no-op.
func (dc *Datacenter) RepairHost(id int) {
	if id < 0 || id >= len(dc.hosts) {
		return
	}
	dc.hosts[id].failed = false
}

// resampleInterference refreshes each running VM's noisy-neighbor level.
// Iteration is in VM-ID order: the VMs share one RNG stream, so a stable
// order is required for the determinism contract.
func (dc *Datacenter) resampleInterference() {
	for _, vm := range dc.RunningVMs() {
		if vm.State() == VMRunning {
			vm.setInterference(dc.cfg.InterferenceDist.Sample(dc.rng))
		}
	}
}
