package cloud

import "errors"

// ErrNoCapacity is returned when no host can accommodate a VM demand.
var ErrNoCapacity = errors.New("cloud: no host with sufficient capacity")

// Placer chooses a host for a resource demand. Implementations must be
// deterministic given the same host list and demand (ties broken by host
// ID), which keeps simulations reproducible.
type Placer interface {
	// Place returns the chosen host or ErrNoCapacity.
	Place(demand Resources, hosts []*Host) (*Host, error)
	// Name identifies the strategy in reports.
	Name() string
}

// FirstFit places on the lowest-ID host with room: fast, fragments little
// under homogeneous demands, the classic default.
type FirstFit struct{}

// Place implements Placer.
func (FirstFit) Place(demand Resources, hosts []*Host) (*Host, error) {
	for _, h := range hosts {
		if h.CanFit(demand) {
			return h, nil
		}
	}
	return nil, ErrNoCapacity
}

// Name implements Placer.
func (FirstFit) Name() string { return "first-fit" }

// BestFit places on the feasible host with the least remaining bottleneck
// capacity, consolidating load onto few hosts (good for powering down
// spares in a private cloud).
type BestFit struct{}

// Place implements Placer.
func (BestFit) Place(demand Resources, hosts []*Host) (*Host, error) {
	var best *Host
	bestFree := 2.0
	for _, h := range hosts {
		if !h.CanFit(demand) {
			continue
		}
		free := 1 - h.Utilization()
		if free < bestFree || (free == bestFree && best != nil && h.ID < best.ID) {
			best, bestFree = h, free
		}
	}
	if best == nil {
		return nil, ErrNoCapacity
	}
	return best, nil
}

// Name implements Placer.
func (BestFit) Name() string { return "best-fit" }

// Spread places on the feasible host with the most remaining bottleneck
// capacity, spreading load to minimize interference and blast radius
// (typical for latency-sensitive public-cloud tenants).
type Spread struct{}

// Place implements Placer.
func (Spread) Place(demand Resources, hosts []*Host) (*Host, error) {
	var best *Host
	bestFree := -1.0
	for _, h := range hosts {
		if !h.CanFit(demand) {
			continue
		}
		free := 1 - h.Utilization()
		if free > bestFree || (free == bestFree && best != nil && h.ID < best.ID) {
			best, bestFree = h, free
		}
	}
	if best == nil {
		return nil, ErrNoCapacity
	}
	return best, nil
}

// Name implements Placer.
func (Spread) Name() string { return "spread" }
