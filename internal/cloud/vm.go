package cloud

import (
	"fmt"

	"elearncloud/internal/sim"
)

// VMState is the lifecycle state of a virtual machine.
type VMState int

// VM lifecycle states, in order.
const (
	VMProvisioning VMState = iota + 1 // placed, waiting for boot
	VMRunning                         // serving
	VMTerminated                      // released
)

// String returns the state name.
func (s VMState) String() string {
	switch s {
	case VMProvisioning:
		return "provisioning"
	case VMRunning:
		return "running"
	case VMTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("VMState(%d)", int(s))
	}
}

// InstanceSpec describes a VM flavor to provision. Prices live in the
// deploy/cost packages; the cloud package needs only sizing and boot
// behavior.
type InstanceSpec struct {
	// Name identifies the flavor (e.g. "m.large").
	Name string
	// Res is the resource demand the VM places on its host.
	Res Resources
	// BootDelay is the provisioning-to-running latency distribution, in
	// seconds. Nil means instant boot.
	BootDelay sim.Dist
}

// VM is one provisioned virtual machine.
type VM struct {
	// ID is unique within a Datacenter.
	ID int
	// Spec is the flavor this VM was provisioned from.
	Spec InstanceSpec

	state        VMState
	host         *Host
	provisioned  sim.Time
	bootComplete sim.Time
	terminated   sim.Time
	interference float64 // [0,1): fraction of CPU stolen by co-tenants
}

// State returns the current lifecycle state.
func (v *VM) State() VMState { return v.state }

// Host returns the host the VM is placed on (nil after termination).
func (v *VM) Host() *Host { return v.host }

// ProvisionedAt returns when provisioning began.
func (v *VM) ProvisionedAt() sim.Time { return v.provisioned }

// ReadyAt returns when the VM finished booting (zero until then).
func (v *VM) ReadyAt() sim.Time { return v.bootComplete }

// TerminatedAt returns when the VM was released (zero until then).
func (v *VM) TerminatedAt() sim.Time { return v.terminated }

// RunningHours returns the billable wall-clock hours between provisioning
// and termination (or now, if still running). Partial hours are fractional
// here; billing granularity is applied by the cost package.
func (v *VM) RunningHours(now sim.Time) float64 {
	end := v.terminated
	if v.state != VMTerminated {
		end = now
	}
	if end < v.provisioned {
		return 0
	}
	return (end - v.provisioned).Hours()
}

// SpeedFactor returns the fraction of nominal CPU speed the VM currently
// receives: 1.0 on an interference-free host, less when co-tenants steal
// cycles. Service times scale by 1/SpeedFactor.
func (v *VM) SpeedFactor() float64 {
	f := 1 - v.interference
	if f < 0.05 {
		f = 0.05 // a VM is never starved below 5% in practice
	}
	return f
}

// setInterference records the current noisy-neighbor level.
func (v *VM) setInterference(x float64) {
	if x < 0 {
		x = 0
	}
	if x > 0.95 {
		x = 0.95
	}
	v.interference = x
}
