// Package cloud models the infrastructure substrate of a deployment:
// datacenters, physical hosts, virtual machines with a provisioning
// lifecycle, placement strategies, and multi-tenant interference
// ("noisy neighbors") for shared public-cloud hosts. It is the
// mechanical layer under every deployment model the paper compares —
// §IV.A's "quickest solution" public cloud is this package with
// effectively unbounded hosts; §IV.B's capital-bound private cloud is
// the same package with a fixed host fleet.
//
// Entry points:
//
//   - NewDatacenter(engine, Config) builds a Datacenter of Hosts on a
//     sim.Engine; Datacenter provisioning drives the VM lifecycle
//     (VMState: provisioning → running → terminated) on the virtual
//     clock, so public-cloud boot latency is a measurable quantity,
//     not an assumption.
//   - Placer decides which Host receives a VM: FirstFit, BestFit and
//     Spread are provided; ErrNoCapacity is the full-fleet signal the
//     private model surfaces during exam crowds.
//   - Resources / InstanceSpec describe CPU, memory and disk; VMsPerHost
//     style sizing lives in the deploy package.
//
// The package is deliberately application-agnostic: it knows about
// CPU, memory and disk, but nothing about e-learning. The lms package
// layers request processing on top of VMs, and the deploy package
// decides how many datacenters of which kind a deployment model gets.
package cloud
