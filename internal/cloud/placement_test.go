package cloud

import (
	"errors"
	"testing"
	"testing/quick"
)

func hostsForPlacement() []*Host {
	cap := Resources{CPU: 8, Mem: 32, Disk: 200}
	hs := []*Host{NewHost(0, cap), NewHost(1, cap), NewHost(2, cap)}
	// Host 0: 75% full. Host 1: 25% full. Host 2: empty.
	h0vm := &VM{ID: 100, Spec: InstanceSpec{Res: Resources{CPU: 6, Mem: 6, Disk: 6}}}
	h1vm := &VM{ID: 101, Spec: InstanceSpec{Res: Resources{CPU: 2, Mem: 2, Disk: 2}}}
	hs[0].place(h0vm)
	hs[1].place(h1vm)
	return hs
}

func TestFirstFitPicksLowestID(t *testing.T) {
	hs := hostsForPlacement()
	h, err := FirstFit{}.Place(Resources{CPU: 1, Mem: 1, Disk: 1}, hs)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID != 0 {
		t.Fatalf("FirstFit chose host %d, want 0", h.ID)
	}
	// A demand that does not fit host 0 falls through to host 1.
	h, err = FirstFit{}.Place(Resources{CPU: 4, Mem: 4, Disk: 4}, hs)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID != 1 {
		t.Fatalf("FirstFit chose host %d, want 1", h.ID)
	}
}

func TestBestFitConsolidates(t *testing.T) {
	hs := hostsForPlacement()
	h, err := BestFit{}.Place(Resources{CPU: 1, Mem: 1, Disk: 1}, hs)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID != 0 {
		t.Fatalf("BestFit chose host %d, want fullest feasible host 0", h.ID)
	}
}

func TestSpreadPicksEmptiest(t *testing.T) {
	hs := hostsForPlacement()
	h, err := Spread{}.Place(Resources{CPU: 1, Mem: 1, Disk: 1}, hs)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID != 2 {
		t.Fatalf("Spread chose host %d, want emptiest host 2", h.ID)
	}
}

func TestPlacersReportNoCapacity(t *testing.T) {
	hs := hostsForPlacement()
	huge := Resources{CPU: 100, Mem: 100, Disk: 100}
	for _, p := range []Placer{FirstFit{}, BestFit{}, Spread{}} {
		if _, err := p.Place(huge, hs); !errors.Is(err, ErrNoCapacity) {
			t.Errorf("%s: err = %v, want ErrNoCapacity", p.Name(), err)
		}
	}
}

func TestPlacersSkipFailedHosts(t *testing.T) {
	hs := hostsForPlacement()
	hs[2].failed = true
	h, err := Spread{}.Place(Resources{CPU: 1, Mem: 1, Disk: 1}, hs)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID == 2 {
		t.Fatal("placed on a failed host")
	}
}

func TestPlacerNames(t *testing.T) {
	names := map[string]bool{}
	for _, p := range []Placer{FirstFit{}, BestFit{}, Spread{}} {
		names[p.Name()] = true
	}
	for _, want := range []string{"first-fit", "best-fit", "spread"} {
		if !names[want] {
			t.Errorf("missing placer name %q", want)
		}
	}
}

// Property: any host returned by any placer can actually fit the demand.
func TestPlacementFeasibilityProperty(t *testing.T) {
	placers := []Placer{FirstFit{}, BestFit{}, Spread{}}
	f := func(loads []uint8, dc, dm uint8) bool {
		cap := Resources{CPU: 16, Mem: 64, Disk: 500}
		var hs []*Host
		for i, l := range loads {
			if i >= 8 {
				break
			}
			h := NewHost(i, cap)
			used := cap.Scale(float64(l%100) / 100)
			h.allocated = used
			hs = append(hs, h)
		}
		if len(hs) == 0 {
			return true
		}
		demand := Resources{CPU: float64(dc%16) + 1, Mem: float64(dm%64) + 1, Disk: 1}
		for _, p := range placers {
			h, err := p.Place(demand, hs)
			if err != nil {
				continue
			}
			if !h.CanFit(demand) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
