package cloud

import (
	"fmt"
	"sort"
)

// Host is one physical machine in a datacenter.
type Host struct {
	// ID is unique within a Datacenter.
	ID int
	// Capacity is the host's total resources.
	Capacity Resources

	allocated Resources
	vms       map[int]*VM
	failed    bool
}

// NewHost returns an empty host with the given capacity.
func NewHost(id int, capacity Resources) *Host {
	if !capacity.Valid() || capacity.IsZero() {
		panic(fmt.Sprintf("cloud: NewHost with invalid capacity %v", capacity))
	}
	return &Host{ID: id, Capacity: capacity, vms: make(map[int]*VM)}
}

// Allocated returns the resources currently reserved by placed VMs.
func (h *Host) Allocated() Resources { return h.allocated }

// Free returns remaining capacity.
func (h *Host) Free() Resources { return h.Capacity.Sub(h.allocated) }

// Utilization returns the bottleneck utilization fraction in [0, 1].
func (h *Host) Utilization() float64 { return h.allocated.Dominant(h.Capacity) }

// NumVMs returns the count of VMs placed on this host.
func (h *Host) NumVMs() int { return len(h.vms) }

// Failed reports whether the host is marked failed (e.g. physical damage).
func (h *Host) Failed() bool { return h.failed }

// CanFit reports whether a demand fits in the remaining capacity of a
// healthy host.
func (h *Host) CanFit(demand Resources) bool {
	return !h.failed && demand.Fits(h.Free())
}

// place reserves resources for vm. Caller must have checked CanFit.
func (h *Host) place(vm *VM) {
	h.allocated = h.allocated.Add(vm.Spec.Res)
	h.vms[vm.ID] = vm
	vm.host = h
}

// release frees the resources held by vm.
func (h *Host) release(vm *VM) {
	if _, ok := h.vms[vm.ID]; !ok {
		return
	}
	delete(h.vms, vm.ID)
	h.allocated = h.allocated.Sub(vm.Spec.Res)
	if !h.allocated.Valid() {
		panic(fmt.Sprintf("cloud: host %d allocation went negative: %v", h.ID, h.allocated))
	}
	vm.host = nil
}

// VMs returns the VMs currently placed on the host, in ascending ID
// order. The order is part of the determinism contract: callers feed
// these VMs into work that shares RNG streams (FailHost terminates
// them one by one), so a map-order slice would leak iteration order
// into results.
func (h *Host) VMs() []*VM {
	out := make([]*VM, 0, len(h.vms))
	for _, vm := range h.vms {
		out = append(out, vm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
