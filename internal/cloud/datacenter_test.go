package cloud

import (
	"errors"
	"math"
	"testing"
	"time"

	"elearncloud/internal/sim"
)

func testSpec() InstanceSpec {
	return InstanceSpec{
		Name:      "m.test",
		Res:       Resources{CPU: 2, Mem: 8, Disk: 50},
		BootDelay: sim.Constant(60), // 60s boot
	}
}

func newTestDC(eng *sim.Engine, hosts int, elastic bool) *Datacenter {
	return NewDatacenter(eng, Config{
		Name:         "dc",
		Hosts:        hosts,
		HostCapacity: Resources{CPU: 8, Mem: 32, Disk: 200},
		Elastic:      elastic,
	})
}

func TestProvisionLifecycle(t *testing.T) {
	eng := sim.NewEngine(1)
	dc := newTestDC(eng, 2, false)
	var readyVM *VM
	vm, err := dc.Provision(testSpec(), func(v *VM) { readyVM = v })
	if err != nil {
		t.Fatal(err)
	}
	if vm.State() != VMProvisioning {
		t.Fatalf("state = %v, want provisioning", vm.State())
	}
	if err := eng.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if readyVM != vm {
		t.Fatal("ready callback did not fire with the VM")
	}
	if vm.State() != VMRunning {
		t.Fatalf("state = %v, want running", vm.State())
	}
	if vm.ReadyAt() != time.Minute {
		t.Fatalf("ReadyAt = %v, want 1m", vm.ReadyAt())
	}
	dc.Terminate(vm)
	if vm.State() != VMTerminated {
		t.Fatalf("state = %v, want terminated", vm.State())
	}
	if dc.NumRunning() != 0 {
		t.Fatalf("NumRunning = %d", dc.NumRunning())
	}
}

func TestProvisionFixedCapacityExhausts(t *testing.T) {
	eng := sim.NewEngine(1)
	dc := newTestDC(eng, 1, false) // one host: 8 CPU => 4 VMs of 2 CPU
	for i := 0; i < 4; i++ {
		if _, err := dc.Provision(testSpec(), nil); err != nil {
			t.Fatalf("VM %d: %v", i, err)
		}
	}
	_, err := dc.Provision(testSpec(), nil)
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
}

func TestProvisionElasticGrowsHosts(t *testing.T) {
	eng := sim.NewEngine(1)
	dc := newTestDC(eng, 1, true)
	for i := 0; i < 12; i++ {
		if _, err := dc.Provision(testSpec(), nil); err != nil {
			t.Fatalf("VM %d: %v", i, err)
		}
	}
	if len(dc.Hosts()) < 3 {
		t.Fatalf("hosts = %d, want >= 3 after elastic growth", len(dc.Hosts()))
	}
	if dc.NumRunning() != 12 {
		t.Fatalf("NumRunning = %d", dc.NumRunning())
	}
	if dc.PeakVMs() != 12 {
		t.Fatalf("PeakVMs = %d", dc.PeakVMs())
	}
}

func TestProvisionRejectsBadSpec(t *testing.T) {
	eng := sim.NewEngine(1)
	dc := newTestDC(eng, 1, false)
	if _, err := dc.Provision(InstanceSpec{Name: "empty"}, nil); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestTerminateWhileBootingSuppressesReady(t *testing.T) {
	eng := sim.NewEngine(1)
	dc := newTestDC(eng, 1, false)
	fired := false
	vm, err := dc.Provision(testSpec(), func(*VM) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(10*time.Second, "kill", func() { dc.Terminate(vm) })
	if err := eng.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("ready fired for a VM terminated mid-boot")
	}
	// Double-terminate is a no-op.
	dc.Terminate(vm)
}

func TestVMHoursAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	dc := newTestDC(eng, 2, false)
	vm, err := dc.Provision(testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(2*time.Hour, "stop", func() { dc.Terminate(vm) })
	if err := eng.Run(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := dc.VMHours(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("VMHours = %v, want 2", got)
	}
	// A still-running VM accrues hours up to now.
	if _, err := dc.Provision(testSpec(), nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := dc.VMHours(); math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("VMHours = %v, want 3 (2 + 1 running)", got)
	}
}

func TestUtilizationTracksPlacement(t *testing.T) {
	eng := sim.NewEngine(1)
	dc := newTestDC(eng, 2, false)
	if dc.Utilization() != 0 {
		t.Fatal("fresh DC should be idle")
	}
	if _, err := dc.Provision(testSpec(), nil); err != nil { // 8 GB of 32 => mem dominant 0.25 on host 0
		t.Fatal(err)
	}
	got := dc.Utilization()
	if math.Abs(got-0.125) > 1e-9 { // (0.25 + 0) / 2
		t.Fatalf("Utilization = %v, want 0.125", got)
	}
}

func TestFailHostTerminatesVictims(t *testing.T) {
	eng := sim.NewEngine(1)
	dc := newTestDC(eng, 2, false)
	var vms []*VM
	for i := 0; i < 4; i++ {
		vm, err := dc.Provision(testSpec(), nil)
		if err != nil {
			t.Fatal(err)
		}
		vms = append(vms, vm)
	}
	if err := eng.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	victims := dc.FailHost(0)
	if len(victims) != 4 {
		t.Fatalf("victims = %d, want 4 (first-fit packs one host)", len(victims))
	}
	for i := 1; i < len(victims); i++ {
		if victims[i-1].ID >= victims[i].ID {
			t.Fatal("victims not in deterministic ID order")
		}
	}
	if dc.Hosts()[0].Failed() != true {
		t.Fatal("host not marked failed")
	}
	// New provisions avoid the failed host.
	vm, err := dc.Provision(testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Host().ID != 1 {
		t.Fatalf("placed on host %d, want 1", vm.Host().ID)
	}
	if out := dc.FailHost(99); out != nil {
		t.Fatal("FailHost out of range should return nil")
	}
}

func TestRepairHostRestoresCapacity(t *testing.T) {
	eng := sim.NewEngine(1)
	dc := newTestDC(eng, 1, false)
	if _, err := dc.Provision(testSpec(), nil); err != nil {
		t.Fatal(err)
	}
	dc.FailHost(0)
	if _, err := dc.Provision(testSpec(), nil); err == nil {
		t.Fatal("provisioned on failed host")
	}
	dc.RepairHost(0)
	if _, err := dc.Provision(testSpec(), nil); err != nil {
		t.Fatalf("repaired host rejected provision: %v", err)
	}
	dc.RepairHost(42) // out of range: no-op
}

func TestMultiTenantInterference(t *testing.T) {
	eng := sim.NewEngine(7)
	dc := NewDatacenter(eng, Config{
		Name:         "pub",
		Hosts:        1,
		HostCapacity: Resources{CPU: 64, Mem: 256, Disk: 2000},
		MultiTenant:  true,
		Elastic:      true,
	})
	vm, err := dc.Provision(testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if vm.SpeedFactor() >= 1 {
		t.Fatalf("SpeedFactor = %v, want < 1 under multi-tenancy", vm.SpeedFactor())
	}
	if vm.SpeedFactor() < 0.05 {
		t.Fatalf("SpeedFactor = %v, below floor", vm.SpeedFactor())
	}
	dc.Shutdown()
	if dc.NumRunning() != 0 {
		t.Fatal("Shutdown left VMs running")
	}
}

func TestSingleTenantFullSpeed(t *testing.T) {
	eng := sim.NewEngine(7)
	dc := newTestDC(eng, 1, false)
	vm, err := dc.Provision(testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if vm.SpeedFactor() != 1 {
		t.Fatalf("SpeedFactor = %v, want 1 on private host", vm.SpeedFactor())
	}
}

func TestDatacenterDeterminism(t *testing.T) {
	run := func() []float64 {
		eng := sim.NewEngine(99)
		dc := NewDatacenter(eng, Config{
			Name:         "pub",
			Hosts:        2,
			HostCapacity: Resources{CPU: 16, Mem: 64, Disk: 500},
			MultiTenant:  true,
			Elastic:      true,
		})
		var vms []*VM
		for i := 0; i < 6; i++ {
			vm, err := dc.Provision(testSpec(), nil)
			if err != nil {
				t.Fatal(err)
			}
			vms = append(vms, vm)
		}
		if err := eng.Run(time.Hour); err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, vm := range vms {
			out = append(out, vm.SpeedFactor())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interference diverged at VM %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestVMStateString(t *testing.T) {
	if VMProvisioning.String() != "provisioning" ||
		VMRunning.String() != "running" ||
		VMTerminated.String() != "terminated" {
		t.Fatal("state strings wrong")
	}
	if VMState(42).String() != "VMState(42)" {
		t.Fatal("unknown state string wrong")
	}
}

func TestHostReleaseUnknownVMIsNoOp(t *testing.T) {
	h := NewHost(0, Resources{CPU: 4, Mem: 4, Disk: 4})
	vm := &VM{ID: 7, Spec: InstanceSpec{Res: Resources{CPU: 1, Mem: 1, Disk: 1}}}
	h.release(vm) // not placed: must not corrupt accounting
	if !h.Allocated().IsZero() {
		t.Fatal("release of unknown VM changed allocation")
	}
}
