package cloud

import "fmt"

// Resources is a vector of machine resources. Units: CPU in cores, Mem in
// GB, Disk in GB.
type Resources struct {
	CPU  float64
	Mem  float64
	Disk float64
}

// Add returns r + o.
func (r Resources) Add(o Resources) Resources {
	return Resources{CPU: r.CPU + o.CPU, Mem: r.Mem + o.Mem, Disk: r.Disk + o.Disk}
}

// Sub returns r - o.
func (r Resources) Sub(o Resources) Resources {
	return Resources{CPU: r.CPU - o.CPU, Mem: r.Mem - o.Mem, Disk: r.Disk - o.Disk}
}

// Fits reports whether r fits within capacity c.
func (r Resources) Fits(c Resources) bool {
	return r.CPU <= c.CPU && r.Mem <= c.Mem && r.Disk <= c.Disk
}

// IsZero reports whether all components are zero.
func (r Resources) IsZero() bool { return r == Resources{} }

// Valid reports whether all components are non-negative.
func (r Resources) Valid() bool { return r.CPU >= 0 && r.Mem >= 0 && r.Disk >= 0 }

// Scale returns r with every component multiplied by f.
func (r Resources) Scale(f float64) Resources {
	return Resources{CPU: r.CPU * f, Mem: r.Mem * f, Disk: r.Disk * f}
}

// Dominant returns the largest utilization fraction of r relative to
// capacity c (the bottleneck dimension). Zero-capacity dimensions with
// nonzero demand report 1.
func (r Resources) Dominant(c Resources) float64 {
	frac := func(used, cap float64) float64 {
		if cap <= 0 {
			if used > 0 {
				return 1
			}
			return 0
		}
		return used / cap
	}
	m := frac(r.CPU, c.CPU)
	if v := frac(r.Mem, c.Mem); v > m {
		m = v
	}
	if v := frac(r.Disk, c.Disk); v > m {
		m = v
	}
	return m
}

// String renders the vector compactly.
func (r Resources) String() string {
	return fmt.Sprintf("{cpu=%g mem=%gGB disk=%gGB}", r.CPU, r.Mem, r.Disk)
}
