package metrics

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// randomHistogram fills a DefaultLatency-shaped histogram with n
// observations spanning under-floor, mid-range, and heavy-tail values.
func randomHistogram(rng *rand.Rand, n int) *Histogram {
	h := DefaultLatency()
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			h.Observe(rng.Float64() * 50e-6) // below the 100µs floor
		case 9:
			h.Observe(rng.Float64() * 100) // tail
		default:
			h.Observe(rng.Float64() * 0.5)
		}
	}
	return h
}

func sameDigest(t *testing.T, label string, a, b *Histogram, sumTol float64) {
	t.Helper()
	if a.Count() != b.Count() {
		t.Fatalf("%s: counts %d vs %d", label, a.Count(), b.Count())
	}
	if math.Abs(a.Sum()-b.Sum()) > sumTol*math.Abs(a.Sum()) {
		t.Fatalf("%s: sums %v vs %v", label, a.Sum(), b.Sum())
	}
	if a.Min() != b.Min() || a.Max() != b.Max() {
		t.Fatalf("%s: min/max (%v,%v) vs (%v,%v)", label, a.Min(), a.Max(), b.Min(), b.Max())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.95, 0.99, 1} {
		if aq, bq := a.Quantile(q), b.Quantile(q); aq != bq {
			t.Fatalf("%s: q%.2f %v vs %v", label, q, aq, bq)
		}
	}
}

// TestHistogramMergeCommutative checks A+B == B+A: bucket counts and
// quantiles exactly, the float sum too (two-operand float addition is
// commutative).
func TestHistogramMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		a1, b1 := randomHistogram(rng, 5000), randomHistogram(rng, 3000)
		a2 := DefaultLatency()
		a2.Merge(b1) // B first...
		a2.Merge(a1) // ...then A
		ab := DefaultLatency()
		ab.Merge(a1)
		ab.Merge(b1)
		sameDigest(t, "commutativity", ab, a2, 0)
	}
}

// TestHistogramMergeAssociative checks (A+B)+C == A+(B+C): exact for
// counts and quantiles; the sum is compared within a relative tolerance
// because float addition itself is not associative.
func TestHistogramMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		mk := func() (*Histogram, *Histogram, *Histogram) {
			return randomHistogram(rng, 4000), randomHistogram(rng, 2000), randomHistogram(rng, 1000)
		}
		a, b, c := mk()
		left := DefaultLatency()
		left.Merge(a)
		left.Merge(b)
		left.Merge(c)
		bc := DefaultLatency()
		bc.Merge(b)
		bc.Merge(c)
		right := DefaultLatency()
		right.Merge(a)
		right.Merge(bc)
		sameDigest(t, "associativity", left, right, 1e-12)
	}
}

// TestHistogramMergeMatchesDirect checks the sharding use case end to
// end: observations split across K histograms and merged in shard order
// give the same digest as observing everything in one histogram.
func TestHistogramMergeMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	direct := DefaultLatency()
	const K = 8
	parts := make([]*Histogram, K)
	for k := range parts {
		parts[k] = DefaultLatency()
	}
	for i := 0; i < 50000; i++ {
		v := rng.ExpFloat64() * 0.2
		direct.Observe(v)
		parts[i%K].Observe(v)
	}
	merged := DefaultLatency()
	for _, p := range parts {
		merged.Merge(p)
	}
	sameDigest(t, "split-vs-direct", direct, merged, 1e-9)
}

// TestHistogramMergeConfigMismatch checks differently configured
// histograms refuse to merge instead of silently mixing bucket layouts.
func TestHistogramMergeConfigMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Merge of differently configured histograms did not panic")
		}
	}()
	DefaultLatency().Merge(NewHistogram(1e-3, 1.1))
}

// TestMergeSeries checks point-wise combination and alignment
// enforcement.
func TestMergeSeries(t *testing.T) {
	a, b := NewTimeSeries("a"), NewTimeSeries("b")
	for i := 0; i < 5; i++ {
		at := time.Duration(i) * time.Minute
		a.Add(at, float64(i))
		b.Add(at, float64(10*i))
	}
	sum := MergeSeries("sum", func(vals []float64) float64 {
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s
	}, a, b)
	if sum.Len() != 5 {
		t.Fatalf("merged length %d", sum.Len())
	}
	for i, p := range sum.Points() {
		if want := float64(11 * i); p.Value != want || p.At != time.Duration(i)*time.Minute {
			t.Fatalf("point %d = %+v, want value %v", i, p, want)
		}
	}
	short := NewTimeSeries("short")
	short.Add(0, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MergeSeries with misaligned lengths did not panic")
			}
		}()
		MergeSeries("bad", func(v []float64) float64 { return 0 }, a, short)
	}()
}
