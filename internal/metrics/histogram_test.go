package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"elearncloud/internal/sim"
)

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram(0.001, 1.1)
	for _, v := range []float64{0.01, 0.02, 0.03, 0.04} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if math.Abs(h.Mean()-0.025) > 1e-12 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Max() != 0.04 || h.Min() != 0.01 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := DefaultLatency()
	if h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramIgnoresBadValues(t *testing.T) {
	h := DefaultLatency()
	h.Observe(math.NaN())
	h.Observe(-1)
	if h.Count() != 0 {
		t.Fatalf("Count = %d, want 0", h.Count())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	// Quantile approximation must be within one growth factor of exact.
	rng := sim.NewRNG(101)
	h := NewHistogram(1e-4, 1.05)
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := rng.LogNormal(-3, 1)
		h.Observe(v)
		samples = append(samples, v)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := ExactQuantile(samples, q)
		approx := h.Quantile(q)
		if approx < exact/1.06 || approx > exact*1.06 {
			t.Fatalf("q=%v approx=%v exact=%v outside 5%% band", q, approx, exact)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram(0.001, 1.1)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if got := h.Quantile(0); got != h.Min() {
		t.Fatalf("Q(0) = %v, want min %v", got, h.Min())
	}
	if got := h.Quantile(1); got != h.Max() {
		t.Fatalf("Q(1) = %v, want max %v", got, h.Max())
	}
	if h.P50() > h.P95() || h.P95() > h.P99() {
		t.Fatal("quantiles not monotone")
	}
}

func TestHistogramUnderflowBucket(t *testing.T) {
	h := NewHistogram(1.0, 1.5)
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // below min
	}
	if h.Count() != 10 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Quantile(0.5); got != 1.0 {
		t.Fatalf("underflow quantile = %v, want clamped to min 1.0", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0.001, 1.1)
	b := NewHistogram(0.001, 1.1)
	for i := 0; i < 100; i++ {
		a.Observe(0.01)
		b.Observe(0.1)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged Count = %d", a.Count())
	}
	if a.Max() != b.Max() {
		t.Fatalf("merged Max = %v", a.Max())
	}
	// Below the 50% rank all mass is 0.01; above it all mass is 0.1.
	lo, hi := a.Quantile(0.45), a.Quantile(0.55)
	if lo < 0.009 || lo > 0.012 {
		t.Fatalf("Q(0.45) = %v, want ~0.01", lo)
	}
	if hi < 0.09 || hi > 0.12 {
		t.Fatalf("Q(0.55) = %v, want ~0.1", hi)
	}
	a.Merge(nil) // no-op
	if a.Count() != 200 {
		t.Fatal("Merge(nil) changed the histogram")
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched merge")
		}
	}()
	NewHistogram(0.001, 1.1).Merge(NewHistogram(0.01, 1.1))
}

func TestHistogramReset(t *testing.T) {
	h := DefaultLatency()
	h.Observe(0.5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
	h.Observe(0.25)
	if h.Count() != 1 || h.Max() != 0.25 {
		t.Fatal("histogram unusable after Reset")
	}
}

func TestHistogramConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero min":   func() { NewHistogram(0, 1.1) },
		"growth <=1": func() { NewHistogram(0.001, 1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: mean is always between min and max, and count equals the
// number of valid observations.
func TestHistogramInvariantProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h := DefaultLatency()
		valid := 0
		for _, v := range raw {
			v = math.Abs(v)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			v = math.Mod(v, 1e6) // latencies are bounded; avoid sum overflow
			h.Observe(v)
			valid++
		}
		if h.Count() != uint64(valid) {
			return false
		}
		if valid == 0 {
			return true
		}
		return h.Mean() >= h.Min()-1e-12 && h.Mean() <= h.Max()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	h := DefaultLatency()
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	s := h.Summarize()
	if s.Count != 1000 {
		t.Fatalf("Summary.Count = %d", s.Count)
	}
	if s.P50 <= 0 || s.P95 < s.P50 || s.P99 < s.P95 || s.Max < s.P99 {
		t.Fatalf("summary not monotone: %+v", s)
	}
}

func TestExactQuantile(t *testing.T) {
	samples := []float64{5, 1, 3, 2, 4}
	if got := ExactQuantile(samples, 0); got != 1 {
		t.Fatalf("Q0 = %v", got)
	}
	if got := ExactQuantile(samples, 1); got != 5 {
		t.Fatalf("Q1 = %v", got)
	}
	if got := ExactQuantile(samples, 0.5); got != 3 {
		t.Fatalf("Q0.5 = %v", got)
	}
	if got := ExactQuantile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	// Input must not be reordered.
	if samples[0] != 5 {
		t.Fatal("ExactQuantile mutated input")
	}
}
