package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram records float64 observations (typically latencies in seconds)
// in exponentially sized buckets, supporting approximate quantiles with a
// bounded relative error set by the bucket growth factor.
//
// The zero value is not usable; construct with NewHistogram.
type Histogram struct {
	min     float64 // smallest representable observation
	growth  float64 // bucket width growth factor (>1)
	logG    float64
	counts  []uint64
	under   uint64 // observations below min
	total   uint64
	sum     float64
	maxSeen float64
	minSeen float64
}

// NewHistogram returns a histogram covering [min, +inf) with buckets whose
// upper bounds grow by factor growth (e.g. 1.1 for <=10% quantile error).
func NewHistogram(min, growth float64) *Histogram {
	if min <= 0 {
		panic("metrics: NewHistogram min must be positive")
	}
	if growth <= 1 {
		panic("metrics: NewHistogram growth must exceed 1")
	}
	return &Histogram{
		min:     min,
		growth:  growth,
		logG:    math.Log(growth),
		minSeen: math.Inf(1),
	}
}

// DefaultLatency returns a histogram tuned for request latencies: 100 µs
// floor with 5% bucket growth.
func DefaultLatency() *Histogram { return NewHistogram(100e-6, 1.05) }

// maxBuckets bounds the bucket array so that pathological observations
// (e.g. 1e300 seconds) cannot exhaust memory; anything beyond the last
// bucket is counted there, and Max still reports the true value.
const maxBuckets = 1 << 14

// Observe records one observation. Negative, NaN and +Inf values are
// ignored (they indicate a caller bug but must not corrupt the histogram).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return
	}
	h.total++
	h.sum += v
	if v > h.maxSeen {
		h.maxSeen = v
	}
	if v < h.minSeen {
		h.minSeen = v
	}
	if v < h.min {
		h.under++
		return
	}
	idx := int(math.Log(v/h.min) / h.logG)
	if idx < 0 {
		idx = 0
	}
	if idx >= maxBuckets {
		idx = maxBuckets - 1
	}
	if idx >= len(h.counts) {
		grown := make([]uint64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest observation, or 0 with no observations.
func (h *Histogram) Max() float64 {
	if h.total == 0 {
		return 0
	}
	return h.maxSeen
}

// Min returns the smallest observation, or 0 with no observations.
func (h *Histogram) Min() float64 {
	if h.total == 0 {
		return 0
	}
	return h.minSeen
}

// Quantile returns the approximate q-quantile (q in [0,1]). The result is
// the upper bound of the bucket containing the target rank, so it
// overestimates by at most the growth factor. Returns 0 with no
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.minSeen
	}
	if q >= 1 {
		return h.maxSeen
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	if rank < h.under {
		return h.min
	}
	cum := h.under
	for i, c := range h.counts {
		cum += c
		if rank < cum {
			ub := h.min * math.Pow(h.growth, float64(i+1))
			if ub > h.maxSeen {
				ub = h.maxSeen
			}
			return ub
		}
	}
	return h.maxSeen
}

// P50, P95 and P99 are common quantile shorthands.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P95 returns the 95th percentile.
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }

// P99 returns the 99th percentile.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Merge adds all observations from other into h. Both histograms must
// share min and growth; Merge panics otherwise.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	if h.min != other.min || h.growth != other.growth {
		panic("metrics: Merge of differently configured histograms")
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]uint64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.under += other.under
	h.total += other.total
	h.sum += other.sum
	if other.maxSeen > h.maxSeen {
		h.maxSeen = other.maxSeen
	}
	if other.minSeen < h.minSeen {
		h.minSeen = other.minSeen
	}
}

// Reset clears all recorded observations, keeping the configuration.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.under, h.total, h.sum, h.maxSeen = 0, 0, 0, 0
	h.minSeen = math.Inf(1)
}

// String summarizes the distribution for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		h.total, h.Mean(), h.P50(), h.P95(), h.P99(), h.Max())
}

// Summary bundles the standard digest of a histogram for reports.
type Summary struct {
	Count         uint64
	Mean, P50     float64
	P95, P99, Max float64
}

// Summarize extracts a Summary snapshot.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.total, Mean: h.Mean(), P50: h.P50(),
		P95: h.P95(), P99: h.P99(), Max: h.Max(),
	}
}

// ExactQuantile computes an exact quantile over a raw sample slice. It is
// used by tests to bound the histogram's approximation error and by small
// analyses where keeping raw samples is fine. The input is not modified.
func ExactQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	cp := make([]float64, len(samples))
	copy(cp, samples)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	idx := int(q * float64(len(cp)))
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}
