// Package metrics provides the measurement substrate for elearncloud
// simulations: latency histograms with percentile queries, counters,
// time series, an availability tracker, and plain-text/CSV table
// rendering used by the benchmark harness to print the paper's tables
// and figures.
//
// Entry points:
//
//   - Histogram (NewHistogram; DefaultLatency for the standard
//     request-latency bucketing) records samples into geometric
//     buckets and answers Summarize → Summary (P50/P95/P99/Max — the
//     figure2 columns); ExactQuantile is the unbucketed companion for
//     small sample sets.
//   - Counter, TimeSeries (of Point) and Availability accumulate the
//     scalar, windowed and uptime views a scenario run reports.
//   - Table (NewTable → AddRow / AddNote → String or CSV) is the one
//     renderer every artifact goes through: aligned plain text for the
//     golden store, CSV under elbench -csv. Byte-stability of
//     Table.String is what the whole golden-verify machinery leans on,
//     so changes here are output drift by definition.
//   - Fmt, FmtMillis, FmtPercent, FmtDollars are the shared formatters
//     that keep units consistent across artifacts and CLIs.
//
// Everything in the package is deterministic and allocation-light; no
// substrate imports anything above sim.
package metrics
