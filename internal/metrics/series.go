package metrics

import (
	"fmt"
	"math"
	"time"
)

// Point is one sample of a time series: a virtual timestamp and a value.
type Point struct {
	At    time.Duration
	Value float64
}

// TimeSeries accumulates (time, value) samples, e.g. arrival rate per
// minute or active VM count over a simulated day. Samples must be appended
// in nondecreasing time order.
type TimeSeries struct {
	name   string
	points []Point
}

// NewTimeSeries returns an empty series with a display name.
func NewTimeSeries(name string) *TimeSeries {
	return &TimeSeries{name: name}
}

// Name returns the display name.
func (ts *TimeSeries) Name() string { return ts.name }

// Add appends a sample. It panics if t precedes the latest sample, which
// would indicate a simulation ordering bug.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	if n := len(ts.points); n > 0 && t < ts.points[n-1].At {
		panic(fmt.Sprintf("metrics: TimeSeries %q sample at %v before last %v",
			ts.name, t, ts.points[n-1].At))
	}
	ts.points = append(ts.points, Point{At: t, Value: v})
}

// Len returns the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// Points returns a copy of the samples.
func (ts *TimeSeries) Points() []Point {
	out := make([]Point, len(ts.points))
	copy(out, ts.points)
	return out
}

// Last returns the latest sample value, or 0 if empty.
func (ts *TimeSeries) Last() float64 {
	if len(ts.points) == 0 {
		return 0
	}
	return ts.points[len(ts.points)-1].Value
}

// Max returns the largest sample value, or 0 if empty.
func (ts *TimeSeries) Max() float64 {
	max := math.Inf(-1)
	for _, p := range ts.points {
		if p.Value > max {
			max = p.Value
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// Mean returns the arithmetic mean of sample values, or 0 if empty.
func (ts *TimeSeries) Mean() float64 {
	if len(ts.points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range ts.points {
		sum += p.Value
	}
	return sum / float64(len(ts.points))
}

// TimeMean returns the time-weighted mean of the series, treating each
// sample value as holding until the next sample (step interpolation). It
// returns the plain mean when fewer than two samples exist.
func (ts *TimeSeries) TimeMean() float64 {
	if len(ts.points) < 2 {
		return ts.Mean()
	}
	var weighted, total float64
	for i := 0; i < len(ts.points)-1; i++ {
		dt := ts.points[i+1].At - ts.points[i].At
		weighted += ts.points[i].Value * dt.Seconds()
		total += dt.Seconds()
	}
	if total == 0 {
		return ts.Mean()
	}
	return weighted / total
}

// Downsample returns a new series with one point per bucket of width w,
// each holding the mean of the source values in that bucket. Used to turn
// dense simulation traces into plot-sized figure series.
func (ts *TimeSeries) Downsample(w time.Duration) *TimeSeries {
	if w <= 0 {
		panic("metrics: Downsample with non-positive width")
	}
	out := NewTimeSeries(ts.name)
	if len(ts.points) == 0 {
		return out
	}
	bucket := ts.points[0].At / w
	sum, n := 0.0, 0
	flush := func(b time.Duration) {
		if n > 0 {
			out.Add(b*w, sum/float64(n))
		}
	}
	for _, p := range ts.points {
		b := p.At / w
		if b != bucket {
			flush(bucket)
			bucket, sum, n = b, 0, 0
		}
		sum += p.Value
		n++
	}
	flush(bucket)
	return out
}

// MergeSeries combines sample-aligned series point-wise into a new
// series named name: combine receives the values at one instant in
// input order and returns the merged value. All inputs must have
// identical lengths and sample times (shard series sampled on the same
// cadence are aligned by construction); MergeSeries panics otherwise,
// because misalignment means the inputs measured different instants and
// no point-wise combination is meaningful.
func MergeSeries(name string, combine func(vals []float64) float64, series ...*TimeSeries) *TimeSeries {
	out := NewTimeSeries(name)
	if len(series) == 0 {
		return out
	}
	n := series[0].Len()
	for _, ts := range series[1:] {
		if ts.Len() != n {
			panic(fmt.Sprintf("metrics: MergeSeries %q inputs have %d and %d samples",
				name, n, ts.Len()))
		}
	}
	vals := make([]float64, len(series))
	for i := 0; i < n; i++ {
		at := series[0].points[i].At
		for j, ts := range series {
			if ts.points[i].At != at {
				panic(fmt.Sprintf("metrics: MergeSeries %q sample %d at %v vs %v",
					name, i, ts.points[i].At, at))
			}
			vals[j] = ts.points[i].Value
		}
		out.Add(at, combine(vals))
	}
	return out
}

// Counter is a monotonically increasing count with a name.
type Counter struct {
	name string
	n    uint64
}

// NewCounter returns a zeroed counter.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta; negative deltas panic (counters are monotone).
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Name returns the counter's name.
func (c *Counter) Name() string { return c.name }

// Availability tracks up/down intervals of a component over virtual time
// and reports the availability ratio and downtime.
type Availability struct {
	up        bool
	since     time.Duration
	upTotal   time.Duration
	downTotal time.Duration
	outages   int
	started   bool
}

// NewAvailability returns a tracker that is initially up from time zero.
func NewAvailability() *Availability {
	return &Availability{up: true, started: true}
}

// SetState records a state transition at virtual time t. Repeated calls
// with the same state are ignored. Calls must have nondecreasing t.
func (a *Availability) SetState(t time.Duration, up bool) {
	if t < a.since {
		panic("metrics: Availability state change in the past")
	}
	if up == a.up {
		return
	}
	a.accumulate(t)
	a.up = up
	if !up {
		a.outages++
	}
}

func (a *Availability) accumulate(t time.Duration) {
	d := t - a.since
	if a.up {
		a.upTotal += d
	} else {
		a.downTotal += d
	}
	a.since = t
}

// Finish closes the current interval at time t and returns the tracker for
// chaining. Call once at the end of a simulation.
func (a *Availability) Finish(t time.Duration) *Availability {
	a.accumulate(t)
	return a
}

// Ratio returns uptime / (uptime + downtime), or 1 when nothing elapsed.
func (a *Availability) Ratio() float64 {
	total := a.upTotal + a.downTotal
	if total == 0 {
		return 1
	}
	return float64(a.upTotal) / float64(total)
}

// Downtime returns the accumulated down duration.
func (a *Availability) Downtime() time.Duration { return a.downTotal }

// Outages returns the number of up->down transitions.
func (a *Availability) Outages() int { return a.outages }
