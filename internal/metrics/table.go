package metrics

import (
	"fmt"
	"strings"
)

// Table renders experiment results as aligned plain text (the form printed
// by the benchmark harness and CLIs) and as CSV (for plotting).
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Title returns the table's title.
func (t *Table) Title() string { return t.title }

// AddRow appends a row. Cells are formatted with %v; use Fmt for floats.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = Fmt(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-text footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the row data.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Cell returns the cell at (row, col); it panics on out-of-range indices.
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 && i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	for _, n := range t.notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quoting cells that contain
// commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Fmt formats a float compactly for table cells: integers print without
// decimals, small magnitudes keep three significant decimals.
func Fmt(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v == float64(int64(v)) && v < 1e12 && v > -1e12:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.1f", v)
	case v >= 1 || v <= -1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// FmtDollars renders a dollar amount with thousands separators for report
// readability (e.g. 12345.678 -> "$12,345.68").
func FmtDollars(v float64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	whole := int64(v)
	frac := int64((v-float64(whole))*100 + 0.5)
	if frac >= 100 {
		whole++
		frac -= 100
	}
	s := fmt.Sprintf("%d", whole)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts[0:]...)
	out := fmt.Sprintf("$%s.%02d", strings.Join(parts, ","), frac)
	if neg {
		return "-" + out
	}
	return out
}

// FmtPercent renders a ratio in [0,1] as a percentage with one decimal.
func FmtPercent(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// FmtMillis renders seconds as milliseconds with one decimal.
func FmtMillis(seconds float64) string { return fmt.Sprintf("%.1fms", seconds*1000) }
