package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestTimeSeriesBasics(t *testing.T) {
	ts := NewTimeSeries("vms")
	if ts.Name() != "vms" {
		t.Fatalf("Name = %q", ts.Name())
	}
	ts.Add(0, 1)
	ts.Add(time.Minute, 3)
	ts.Add(2*time.Minute, 5)
	if ts.Len() != 3 {
		t.Fatalf("Len = %d", ts.Len())
	}
	if ts.Last() != 5 || ts.Max() != 5 {
		t.Fatalf("Last/Max = %v/%v", ts.Last(), ts.Max())
	}
	if ts.Mean() != 3 {
		t.Fatalf("Mean = %v", ts.Mean())
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	ts := NewTimeSeries("empty")
	if ts.Last() != 0 || ts.Max() != 0 || ts.Mean() != 0 || ts.TimeMean() != 0 {
		t.Fatal("empty series must report zeros")
	}
}

func TestTimeSeriesOutOfOrderPanics(t *testing.T) {
	ts := NewTimeSeries("x")
	ts.Add(time.Minute, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-order Add")
		}
	}()
	ts.Add(time.Second, 2)
}

func TestTimeSeriesTimeMean(t *testing.T) {
	// Value 10 for 1s, then value 0 for 9s: time mean = 1.0.
	ts := NewTimeSeries("tw")
	ts.Add(0, 10)
	ts.Add(time.Second, 0)
	ts.Add(10*time.Second, 0)
	got := ts.TimeMean()
	if math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("TimeMean = %v, want 1.0", got)
	}
}

func TestTimeSeriesDownsample(t *testing.T) {
	ts := NewTimeSeries("dense")
	for i := 0; i < 120; i++ {
		ts.Add(time.Duration(i)*time.Second, float64(i%2)) // 0,1,0,1...
	}
	ds := ts.Downsample(time.Minute)
	if ds.Len() != 2 {
		t.Fatalf("Downsample Len = %d, want 2", ds.Len())
	}
	for _, p := range ds.Points() {
		if math.Abs(p.Value-0.5) > 1e-9 {
			t.Fatalf("bucket mean = %v, want 0.5", p.Value)
		}
	}
}

func TestTimeSeriesPointsIsCopy(t *testing.T) {
	ts := NewTimeSeries("c")
	ts.Add(0, 1)
	pts := ts.Points()
	pts[0].Value = 99
	if ts.Points()[0].Value != 1 {
		t.Fatal("Points exposed internal state")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter("requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d", c.Value())
	}
	if c.Name() != "requests" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestAvailability(t *testing.T) {
	a := NewAvailability()
	a.SetState(10*time.Second, false) // up 10s
	a.SetState(15*time.Second, true)  // down 5s
	a.Finish(20 * time.Second)        // up 5s more
	if got := a.Ratio(); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("Ratio = %v, want 0.75", got)
	}
	if a.Downtime() != 5*time.Second {
		t.Fatalf("Downtime = %v", a.Downtime())
	}
	if a.Outages() != 1 {
		t.Fatalf("Outages = %d", a.Outages())
	}
}

func TestAvailabilityRepeatedStateIgnored(t *testing.T) {
	a := NewAvailability()
	a.SetState(time.Second, true) // already up: no-op
	a.SetState(2*time.Second, false)
	a.SetState(3*time.Second, false) // already down: no-op
	a.Finish(4 * time.Second)
	if a.Outages() != 1 {
		t.Fatalf("Outages = %d, want 1", a.Outages())
	}
	if got := a.Ratio(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Ratio = %v, want 0.5", got)
	}
}

func TestAvailabilityAllUp(t *testing.T) {
	a := NewAvailability().Finish(time.Hour)
	if a.Ratio() != 1 || a.Outages() != 0 {
		t.Fatal("untouched tracker must be fully available")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X: demo", "model", "cost", "p95")
	tb.AddRow("public", 123.456, "0.21s")
	tb.AddRow("private", 7890.0, "0.09s")
	tb.AddNote("seed=%d", 42)
	s := tb.String()
	for _, want := range []string{"Table X: demo", "model", "public", "private", "note: seed=42"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	if tb.Cell(0, 0) != "public" {
		t.Fatalf("Cell(0,0) = %q", tb.Cell(0, 0))
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow(`has "quote"`, "x,y")
	csv := tb.CSV()
	if !strings.Contains(csv, `"has ""quote"""`) {
		t.Fatalf("quote escaping wrong:\n%s", csv)
	}
	if !strings.Contains(csv, `"x,y"`) {
		t.Fatalf("comma quoting wrong:\n%s", csv)
	}
}

func TestTableRowsIsCopy(t *testing.T) {
	tb := NewTable("t", "a")
	tb.AddRow("v")
	rows := tb.Rows()
	rows[0][0] = "mutated"
	if tb.Cell(0, 0) != "v" {
		t.Fatal("Rows exposed internal state")
	}
}

func TestFmtHelpers(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{Fmt(0), "0"},
		{Fmt(5), "5"},
		{Fmt(123.46), "123.5"},
		{Fmt(2.345), "2.35"},
		{Fmt(0.1234), "0.1234"},
		{FmtDollars(12345.678), "$12,345.68"},
		{FmtDollars(0.994), "$0.99"},
		{FmtDollars(-3.5), "-$3.50"},
		{FmtDollars(1234567.0), "$1,234,567.00"},
		{FmtPercent(0.1234), "12.3%"},
		{FmtMillis(0.0125), "12.5ms"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("got %q, want %q", tt.got, tt.want)
		}
	}
}
