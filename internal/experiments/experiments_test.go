package experiments

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"

	"elearncloud/internal/metrics"
)

// cell parses a numeric cell, stripping units the renderers add.
func cell(t *testing.T, tbl *metrics.Table, row, col int) float64 {
	t.Helper()
	s := tbl.Cell(row, col)
	s = strings.TrimSuffix(s, "ms")
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "/yr")
	s = strings.TrimPrefix(s, "$")
	s = strings.ReplaceAll(s, ",", "")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tbl.Cell(row, col), err)
	}
	return v
}

func TestRegistryCoversDesignIndex(t *testing.T) {
	all := All()
	if len(all) != 22 {
		t.Fatalf("registry has %d experiments, want 22 (12 tables + 10 figures)", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Run == nil || e.ID == "" || e.Title == "" {
			t.Fatalf("incomplete experiment: %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := Find("table3"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestRegistryTags: every experiment carries at least one well-formed
// tag, exactly one provenance tag (@paper/@extension/@mooc), and the
// tag helpers behave (KnownTags sorted-unique, HasTag @-optional).
func TestRegistryTags(t *testing.T) {
	provenance := map[string]bool{"@paper": true, "@extension": true, "@mooc": true}
	for _, e := range All() {
		if len(e.Tags) == 0 {
			t.Errorf("%s: no tags", e.ID)
		}
		prov := 0
		for _, tag := range e.Tags {
			if !strings.HasPrefix(tag, "@") || strings.ContainsAny(tag[1:], "@ \t") || len(tag) < 2 {
				t.Errorf("%s: malformed tag %q", e.ID, tag)
			}
			if provenance[tag] {
				prov++
			}
		}
		if prov != 1 {
			t.Errorf("%s: %d provenance tags in %v, want exactly one of @paper/@extension/@mooc",
				e.ID, prov, e.Tags)
		}
	}

	known := KnownTags()
	if !sort.StringsAreSorted(known) {
		t.Errorf("KnownTags not sorted: %v", known)
	}
	for i := 1; i < len(known); i++ {
		if known[i] == known[i-1] {
			t.Errorf("KnownTags has duplicate %q", known[i])
		}
	}

	e, _ := Find("table9")
	if !e.HasTag("@mooc") || !e.HasTag("mooc") {
		t.Error("HasTag must accept the tag with and without the leading @")
	}
	if e.HasTag("paper") {
		t.Error("table9 is not a @paper experiment")
	}
}

// TestAllExperimentsRegenerate end-to-ends the experiments that have no
// dedicated shape test (the rest are exercised — and their content
// checked — by the Test<Table|Figure>* functions in this file): each
// must produce a non-empty table with consistent row widths. Skipped
// under -short (these sweep tens of simulated model-hours).
func TestAllExperimentsRegenerate(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("heavy experiment sweep skipped in -short mode")
	}
	covered := map[string]bool{
		"table1": true, "table2": true, "table5": true, "table7": true,
		"table8": true, "figure1": true, "figure3": true, "figure5": true,
		"figure7": true, "figure8": true, "figure9": true,
	}
	for _, e := range All() {
		if covered[e.ID] {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(11, nil)
			if err != nil {
				t.Fatal(err)
			}
			if tbl.NumRows() == 0 {
				t.Fatalf("%s produced an empty table", e.ID)
			}
			if tbl.Title() == "" {
				t.Fatalf("%s has no title", e.ID)
			}
			width := -1
			for _, row := range tbl.Rows() {
				if width == -1 {
					width = len(row)
				}
				if len(row) != width {
					t.Fatalf("%s has ragged rows", e.ID)
				}
			}
			if tbl.CSV() == "" {
				t.Fatalf("%s CSV empty", e.ID)
			}
		})
	}
}

func TestTable1MeritsShape(t *testing.T) {
	t.Parallel()
	tbl, err := Table1Merits(11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 7 {
		t.Fatalf("rows = %d, want 7 merit rows", tbl.NumRows())
	}
	wins := 0
	for i := 0; i < tbl.NumRows(); i++ {
		if tbl.Cell(i, 3) == "yes" {
			wins++
		}
	}
	// The paper claims cloud wins every merit; our measured reproduction
	// must confirm at least 5 of 7 rows (cost at college scale and raw
	// request latency legitimately depend on parameters).
	if wins < 5 {
		t.Fatalf("cloud wins only %d/7 merit rows:\n%s", wins, tbl)
	}
}

func TestTable2RisksShape(t *testing.T) {
	t.Parallel()
	tbl, err := Table2Risks(11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4 risk rows", tbl.NumRows())
	}
	// Security row: public risk > hybrid risk >= private-order checks.
	pub := cell(t, tbl, 2, 1)
	priv := cell(t, tbl, 2, 2)
	hyb := cell(t, tbl, 2, 3)
	if !(pub > hyb && hyb >= priv*0.5) {
		t.Fatalf("security ordering wrong: pub=%v priv=%v hyb=%v", pub, priv, hyb)
	}
	// Portability row: public exit most expensive.
	pubExit := cell(t, tbl, 3, 1)
	privExit := cell(t, tbl, 3, 2)
	hybExit := cell(t, tbl, 3, 3)
	if !(pubExit > hybExit && hybExit > privExit) {
		t.Fatalf("portability ordering wrong: %v %v %v", pubExit, privExit, hybExit)
	}
}

func TestTable5AutoscalerOrdering(t *testing.T) {
	t.Parallel()
	tbl, err := Table5Autoscalers(11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 4 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	// Fixed (peak-sized) burns the most VM-hours; reactive burns fewer.
	var fixedHours, reactiveHours float64
	for i := 0; i < tbl.NumRows(); i++ {
		switch tbl.Cell(i, 0) {
		case "fixed":
			fixedHours = cell(t, tbl, i, 5)
		case "reactive":
			reactiveHours = cell(t, tbl, i, 5)
		}
	}
	if reactiveHours >= fixedHours {
		t.Fatalf("reactive VM-hours %v >= fixed %v — elasticity saved nothing:\n%s",
			reactiveHours, fixedHours, tbl)
	}
}

func TestFigure3CrossoverShape(t *testing.T) {
	t.Parallel()
	tbl, err := Figure3CostCrossover(11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 8 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	// Public wins at the smallest scale; private wins at the largest.
	if tbl.Cell(0, 5) != "public" {
		t.Fatalf("cheapest at 200 students = %s, want public:\n%s", tbl.Cell(0, 5), tbl)
	}
	last := tbl.NumRows() - 1
	if tbl.Cell(last, 5) != "private" {
		t.Fatalf("cheapest at 20000 students = %s, want private:\n%s", tbl.Cell(last, 5), tbl)
	}
	// Private cost per student decreases monotonically with scale.
	prev := cell(t, tbl, 0, 2)
	for i := 1; i < tbl.NumRows(); i++ {
		cur := cell(t, tbl, i, 2)
		if cur > prev*1.05 {
			t.Fatalf("private $/student rose with scale at row %d: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
}

func TestFigure5ReliabilityMonotone(t *testing.T) {
	t.Parallel()
	tbl, err := Figure5NetworkRisk(11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 7 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	// Availability improves as MTBF grows.
	worst := cell(t, tbl, 0, 1)
	best := cell(t, tbl, 5, 1)
	if best <= worst {
		t.Fatalf("availability not improving with MTBF: %v vs %v\n%s", worst, best, tbl)
	}
	// The LAN row never disconnects.
	lan := tbl.NumRows() - 1
	if tbl.Cell(lan, 2) != "0" {
		t.Fatalf("campus LAN disconnected: %s", tbl.Cell(lan, 2))
	}
}

func TestFigure7LockinMonotone(t *testing.T) {
	t.Parallel()
	tbl, err := Figure7Lockin(11, nil)
	if err != nil {
		t.Fatal(err)
	}
	prevTotal := -1.0
	typicals := map[string]bool{}
	for i := 0; i < tbl.NumRows(); i++ {
		total := cell(t, tbl, i, 3)
		if total < prevTotal {
			t.Fatalf("migration cost not monotone in lock-in at row %d", i)
		}
		prevTotal = total
		if m := tbl.Cell(i, 5); m != "" {
			typicals[m] = true
		}
	}
	// The three models' typical adoption levels are all marked on the
	// curve, and their order on the curve is private < hybrid < public.
	for _, want := range []string{"private", "hybrid", "public"} {
		if !typicals[want] {
			t.Fatalf("typical marker for %s missing:\n%s", want, tbl)
		}
	}
}

func TestFigure8CDNShiftsCrossover(t *testing.T) {
	t.Parallel()
	tbl, err := Figure8CDN(11, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tbl.NumRows(); i++ {
		pub := cell(t, tbl, i, 1)
		withCDN := cell(t, tbl, i, 2)
		if withCDN >= pub {
			t.Fatalf("row %d: CDN made public dearer (%v vs %v)\n%s", i, withCDN, pub, tbl)
		}
	}
}

func TestFigure9HostFailureShape(t *testing.T) {
	t.Parallel()
	tbl, err := Figure9HostFailure(11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 4 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	// The failing private run kills jobs; the reference and public runs
	// kill none.
	if cell(t, tbl, 0, 1) <= 0 {
		t.Fatalf("private failure killed no jobs:\n%s", tbl)
	}
	if cell(t, tbl, 2, 1) != 0 || cell(t, tbl, 3, 1) != 0 {
		t.Fatalf("reference runs killed jobs:\n%s", tbl)
	}
	// Damaged private must look worse than its undisturbed reference.
	if cell(t, tbl, 0, 2) <= cell(t, tbl, 2, 2) && cell(t, tbl, 0, 3) <= cell(t, tbl, 2, 3) {
		t.Fatalf("host failure left no visible damage:\n%s", tbl)
	}
}

func TestTable8PurchaseMixShape(t *testing.T) {
	t.Parallel()
	tbl, err := Table8PurchaseMix(11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	onDemand := cell(t, tbl, 0, 2)
	optimal := cell(t, tbl, 1, 2)
	allReserved := cell(t, tbl, 2, 2)
	// The optimum never loses to either pure strategy.
	if optimal > onDemand || optimal > allReserved {
		t.Fatalf("optimal mix %v beaten by pure strategy (%v / %v):\n%s",
			optimal, onDemand, allReserved, tbl)
	}
	// Reserving everything for a bursty semester overpays.
	if allReserved <= onDemand {
		t.Fatalf("all-reserved %v should overpay vs on-demand %v for bursty load",
			allReserved, onDemand)
	}
}

func TestTable7FederationShape(t *testing.T) {
	t.Parallel()
	tbl, err := Table7Federation(11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 4 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	for i := 0; i < tbl.NumRows(); i++ {
		if saving := cell(t, tbl, i, 5); saving <= 0 {
			t.Fatalf("member row %d does not save by federating:\n%s", i, tbl)
		}
	}
}

// TestTable12ForecastAcceptance pins the experiment's claims at the
// golden seed: growth-fit must beat reactive on BOTH rejected mass and
// $ per served request through the deadline storm, land within 15% of
// the oracle's VM-hours, and the oracle must hold the best tail. These
// are the relations the table exists to demonstrate — if a change
// breaks one, the experiment's story is gone even if the run succeeds.
func TestTable12ForecastAcceptance(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("four deadline-storm DES runs skipped in -short mode")
	}
	tbl, err := Table12ForecastPolicies(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4 policies", tbl.NumRows())
	}
	type row struct{ p95, rejected, vmHours, perServed float64 }
	byPolicy := map[string]row{}
	for i := 0; i < tbl.NumRows(); i++ {
		byPolicy[tbl.Cell(i, 0)] = row{
			p95:       cell(t, tbl, i, 1),
			rejected:  cell(t, tbl, i, 2),
			vmHours:   cell(t, tbl, i, 4),
			perServed: cell(t, tbl, i, 5),
		}
	}
	gf, re, or := byPolicy["growth-fit"], byPolicy["reactive"], byPolicy["oracle"]
	if gf.rejected >= re.rejected {
		t.Errorf("growth-fit rejected %v, not under reactive's %v:\n%s", gf.rejected, re.rejected, tbl)
	}
	if gf.perServed >= re.perServed {
		t.Errorf("growth-fit $/1k served %v, not under reactive's %v:\n%s", gf.perServed, re.perServed, tbl)
	}
	if diff := math.Abs(gf.vmHours-or.vmHours) / or.vmHours; diff > 0.15 {
		t.Errorf("growth-fit VM-hours %v vs oracle %v — %.1f%% apart, want <= 15%%:\n%s",
			gf.vmHours, or.vmHours, diff*100, tbl)
	}
	for name, r := range byPolicy {
		if name != "oracle" && r.p95 < or.p95 {
			t.Errorf("%s P95 %vms beat the oracle's %vms — the yardstick is broken:\n%s",
				name, r.p95, or.p95, tbl)
		}
		if name != "oracle" && r.rejected < or.rejected {
			t.Errorf("%s rejected %v under the oracle's %v:\n%s", name, r.rejected, or.rejected, tbl)
		}
	}
}

func TestFigure1WorkloadShape(t *testing.T) {
	t.Parallel()
	tbl, err := Figure1Workload(11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 24 {
		t.Fatalf("rows = %d, want 24 hours", tbl.NumRows())
	}
	// 20:00 is the homework peak; 03:00 the trough.
	if cell(t, tbl, 20, 1) <= cell(t, tbl, 3, 1) {
		t.Fatal("diurnal peak/trough inverted")
	}
}
