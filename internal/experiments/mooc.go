package experiments

import (
	"fmt"
	"time"

	"elearncloud/internal/cost"
	"elearncloud/internal/deploy"
	"elearncloud/internal/metrics"
	"elearncloud/internal/network"
	"elearncloud/internal/scenario"
	"elearncloud/internal/workload"
)

// This file holds the MOOC-scale experiments: the paper's §IV.A
// scalability claim stressed by workloads no campus deployment faces —
// a course whose enrollment grows 10x while it runs (table9) and a
// graded deadline whose procrastination ramp dwarfs an exam flash
// crowd (figure10). Both build on the internal/workload MOOC family.

// moocStudentsStart/Cap bound the table9 course: a 50k-seat launch that
// goes viral and saturates at half a million learners.
const (
	moocStudentsStart = 50000
	moocStudentsCap   = 500000
)

// moocCourseWeeks is the course length; the logistic midpoint sits at
// week 4, so enrollment is still climbing through the midterm.
const moocCourseWeeks = 10

// moocCourse returns the fluid-fidelity MOOC configuration: logistic
// 50k→500k enrollment, a multi-timezone cohort day shape, and a lower
// per-student rate than campus LMS usage (MOOC learners drop in; they
// do not sit in mandatory lectures).
func moocCourse(seed uint64, kind deploy.Kind) scenario.Config {
	week := 7 * 24 * time.Hour
	return scenario.Config{
		Seed:              seed,
		Kind:              kind,
		Growth:            workload.LogisticGrowth(moocStudentsStart, moocStudentsCap, 4*week),
		ReqPerStudentHour: 8,
		Duration:          moocCourseWeeks * week,
		Diurnal:           workload.GlobalCohort(),
	}
}

// onboardingRamp returns the DES-fidelity growth configuration for the
// autoscaler rows: a cohort ramp at request-level scale (1000→8000
// students over 90 minutes, then half an hour at full strength), small
// enough to queue-simulate but steep enough to stress every scaler's
// reaction to a rate floor that keeps rising.
func onboardingRamp(seed uint64, scaler scenario.ScalerKind) scenario.Config {
	return scenario.Config{
		Seed:              seed,
		Kind:              deploy.Public,
		Growth:            workload.LinearGrowth(1000, 8000, 90*time.Minute),
		ReqPerStudentHour: 50,
		Duration:          2 * time.Hour,
		Diurnal:           workload.FlatDiurnal(),
		Scaler:            scaler,
		Access:            network.UrbanBroadband,
	}
}

// Table9GrowthModels studies deployment models under enrollment growth
// — the MOOC version of the paper's §IV.A "quickest solution to deploy"
// claim. Three sections share the table: the deployment models over the
// whole 50k→500k course (fluid fidelity), the public purchase-mix
// ablation on the same duration curve (which reservations survive a
// moving baseline), and the autoscaler ablation on a request-level
// onboarding ramp (which policies track a rising floor).
func Table9GrowthModels(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	kinds := []deploy.Kind{deploy.Public, deploy.Private, deploy.Hybrid}
	scalers := []scenario.ScalerKind{
		scenario.ScalerFixed, scenario.ScalerReactive,
		scenario.ScalerScheduled, scenario.ScalerPredictive,
	}
	batch := scenario.NewBatch(seed)
	for _, kind := range kinds {
		batch.AddFluid("course/"+kind.String(), moocCourse(seed, kind))
	}
	for _, sk := range scalers {
		batch.Add("ramp/"+sk.String(), onboardingRamp(seed, sk))
	}
	runs, err := batch.RunOn(pool)
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable(
		fmt.Sprintf("Table 9: deployment models under enrollment growth — a %dk→%dk MOOC (§IV.A)",
			moocStudentsStart/1000, moocStudentsCap/1000),
		"configuration", "peak servers", "VM-hours", "$/st/mo", "vs on-demand", "p95", "errors")

	// Section 1 — the whole course, per deployment model.
	var pub *scenario.FluidResult
	for _, kind := range kinds {
		res := runs.Fluid("course/" + kind.String())
		if kind == deploy.Public {
			pub = res
		}
		t.AddRow("course, "+kind.String(),
			res.PeakServers,
			fmt.Sprintf("%.0f", res.VMHoursPublic+res.VMHoursPrivate),
			fmt.Sprintf("%.2f", res.CostPerStudentMonth(moocStudentsCap)),
			"", "", "")
	}

	// Section 2 — the public purchase mix on the course's utilization
	// duration curve: under growth, most server ranks only run in the
	// final weeks, so reserving for the end-state loses money.
	rates := costRates()
	months := pub.Duration.Hours() / 730
	base := cost.AllOnDemandMix(pub.ServerRankHours)
	baseUSD := base.ComputeUSD(rates.Public)
	for _, s := range []struct {
		name string
		mix  cost.PurchaseMix
	}{
		{"all on-demand", base},
		{"optimal reserved mix", cost.OptimizeReservedMix(pub.ServerRankHours, months, rates.Public)},
		{"all reserved", cost.AllReservedMix(pub.ServerRankHours, months)},
	} {
		c := s.mix.ComputeUSD(rates.Public)
		delta := "-"
		if s.name != "all on-demand" && baseUSD > 0 {
			delta = metrics.FmtPercent((c - baseUSD) / baseUSD)
		}
		t.AddRow(fmt.Sprintf("public compute, %s (%d reserved)", s.name, s.mix.Reserved),
			"", "",
			fmt.Sprintf("%.2f", cost.PerStudentMonth(cost.Report{Compute: c}, moocStudentsCap, months)),
			delta, "", "")
	}

	// Section 3 — autoscalers against a rising floor (DES fidelity).
	for _, sk := range scalers {
		res := runs.Result("ramp/" + sk.String())
		t.AddRow("onboarding ramp, "+sk.String()+" scaler",
			res.PeakServers,
			fmt.Sprintf("%.1f", res.VMHoursPublic),
			"", "",
			metrics.FmtMillis(res.Latency.P95()),
			metrics.FmtPercent(res.ErrorRate()))
	}

	priv := runs.Fluid("course/" + deploy.Private.String())
	t.AddNote("seed=%d; course rows: %d-week fluid run, logistic growth (midpoint week 4), global multi-timezone cohort, 8 req/student-h",
		seed, moocCourseWeeks)
	t.AddNote("private fleet is capacity-sized on day one and idles at %.0f%% mean utilization while enrollment catches up (§IV.B at MOOC scale)",
		priv.MeanPrivateUtil*100)
	t.AddNote("purchase rows: compute only, on the course's server-rank duration curve; growth keeps most ranks short-lived, so the optimal mix reserves only the early base")
	t.AddNote("ramp rows: request-level 1000→8000-student onboarding over 90m at 50 req/student-h; the scheduled plan cannot see growth, so it provisions for the final enrollment from minute one")
	return t, nil
}

// deadlineStorm returns figure10's storm course parameterized by the
// scaling policy: a live revision lecture's join spike, then a 90-minute
// procrastination ramp into a submission cliff at 02:30. The shape is
// shared with table12, which runs the forecasting policies through the
// identical storm.
func deadlineStorm(seed uint64, scaler scenario.ScalerKind) scenario.Config {
	return scenario.Config{
		Seed:              seed,
		Kind:              deploy.Public,
		Students:          desStudents,
		ReqPerStudentHour: 50,
		Duration:          3 * time.Hour,
		Diurnal:           workload.FlatDiurnal(),
		Scaler:            scaler,
		Access:            network.UrbanBroadband,
		// The live revision session's join spike ends before the
		// procrastination ramp begins: the spike is the step input a
		// reactive scaler must absorb cold (mirroring figure2's crowd
		// step), the ramp the build-up it can ride. Disjoint windows also
		// keep MaxRate — and with it the bootstrap fleet — at the crowd
		// track's scale, so figure10's two columns compare like for like.
		Joins: []workload.JoinStorm{{
			Start: 30 * time.Minute, Window: 30 * time.Minute,
			PeakMult: 6, Decay: 5 * time.Minute, ExamTraffic: true,
		}},
		Storms: []workload.DeadlineStorm{{
			Deadline: 150 * time.Minute, Ramp: 90 * time.Minute,
			PeakMult: 10, Tau: 30 * time.Minute, ExamTraffic: true,
		}},
	}
}

// Figure10DeadlineStorm renders per-5-minute P95 latency through a
// deadline storm — a live revision lecture's join spike followed by a
// procrastination ramp into a submission cliff — side by side with
// figure2's 10x exam flash crowd, both on the public model with the
// reactive scaler. The storm's build-up is exactly what a reactive
// policy can ride and the crowd's step function is not.
func Figure10DeadlineStorm(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	stormCfg := deadlineStorm(seed, scenario.ScalerReactive)
	runs, err := scenario.NewBatch(seed).
		Add("deadline-storm", stormCfg).
		Add("exam-crowd", examDay(seed, deploy.Public, scenario.ScalerReactive)).
		RunOn(pool)
	if err != nil {
		return nil, err
	}
	storm := runs.Result("deadline-storm")
	crowd := runs.Result("exam-crowd")
	stormP95 := storm.P95Series.Downsample(5 * time.Minute).Points()
	crowdP95 := crowd.P95Series.Downsample(5 * time.Minute).Points()
	stormSrv := storm.Servers.Downsample(5 * time.Minute).Points()
	crowdSrv := crowd.Servers.Downsample(5 * time.Minute).Points()

	t := metrics.NewTable(
		"Figure 10: P95 latency through a deadline storm vs the figure2 exam crowd (public, reactive)",
		"t", "storm p95", "crowd p95", "storm servers", "crowd servers")
	for i := range stormP95 {
		row := []any{stormP95[i].At.Round(time.Minute).String(),
			metrics.FmtMillis(stormP95[i].Value)}
		if i < len(crowdP95) {
			row = append(row, metrics.FmtMillis(crowdP95[i].Value))
		} else {
			row = append(row, "")
		}
		if i < len(stormSrv) {
			row = append(row, fmt.Sprintf("%.0f", stormSrv[i].Value))
		} else {
			row = append(row, "")
		}
		if i < len(crowdSrv) {
			row = append(row, fmt.Sprintf("%.0f", crowdSrv[i].Value))
		} else {
			row = append(row, "")
		}
		t.AddRow(row...)
	}
	t.AddNote("seed=%d; storm: join spike x6 at 00:30 (5m decay), then a 90m procrastination ramp to x10 at the 02:30 deadline (tau 30m); crowd: flat 10x from 00:30 to 01:30",
		seed)
	t.AddNote("same %d students and exam-heavy mix in both; the ramp hands the reactive scaler lead time the crowd's step never does",
		desStudents)
	return t, nil
}
