package experiments

import (
	"fmt"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/metrics"
	"elearncloud/internal/scenario"
	"elearncloud/internal/workload"
)

// This file holds the hybrid-fidelity experiment: table9's 10-week
// 50k→500k MOOC course re-run under scenario.HybridRun, which
// integrates the quiet weeks with the fluid model and drops into
// request-level DES only inside the course's burst windows (a launch
// join spike and two assignment deadline storms). The table puts the
// hybrid artifact next to the whole-horizon fluid run and a pure-DES
// spot-check of one planned window, so the agreement error and the
// event-count speedup are both in the committed golden.

// table11Fidelities are the `elbench -fidelity` values.
const (
	FidelityAuto  = "auto"
	FidelityFluid = "fluid"
	FidelityDES   = "des"
)

// moocStormCourse is table9's course with the bursts that force DES
// windows: a live launch session early in week 1 and assignment
// deadlines on days 3 and 5, while enrollment is still in the logistic
// foothills — the regime where request-level fidelity is affordable
// and the fluid model's storm response is least trustworthy.
func moocStormCourse(seed uint64) scenario.Config {
	day := 24 * time.Hour
	cfg := moocCourse(scenario.SeedFor(seed, "hybrid/course"), deploy.Public)
	cfg.Scaler = scenario.ScalerReactive
	cfg.Joins = []workload.JoinStorm{{
		Start: 2*day + 18*time.Hour, Window: 30 * time.Minute, PeakMult: 5,
	}}
	cfg.Storms = []workload.DeadlineStorm{
		{Deadline: 3*day + 20*time.Hour, Ramp: 75 * time.Minute, PeakMult: 4},
		{Deadline: 5*day + 20*time.Hour, Ramp: 75 * time.Minute, PeakMult: 4},
	}
	// Windows ride the sharded engine: each one is a 4-shard merge.
	cfg.Shards = 4
	// Pin the planner knobs explicitly (these are the defaults) so the
	// golden's plan provenance is in the config, not in defaults().
	cfg.HybridIntensity = 1.5
	cfg.HybridGuard = 10 * time.Minute
	return cfg
}

// Table11HybridCourse renders the default artifact: hybrid vs fluid vs
// a DES spot-check window on the storm-augmented MOOC course.
func Table11HybridCourse(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	return Table11HybridCourseAt(seed, pool, FidelityAuto)
}

// Table11HybridCourseAt renders the course at one explicit fidelity —
// the `elbench -fidelity` entry point. "auto" is the full three-row
// comparison; "fluid" renders the flow-level row alone; "des" renders
// the pure request-level spot-check window alone (the whole 10-week
// horizon is not feasible at full DES — that asymmetry is the point of
// the experiment).
func Table11HybridCourseAt(seed uint64, pool *scenario.Pool, fidelity string) (*metrics.Table, error) {
	cfg := moocStormCourse(seed)
	plan, err := scenario.PlanFidelity(cfg)
	if err != nil {
		return nil, err
	}
	if len(plan.Windows) == 0 {
		return nil, fmt.Errorf("table11: storm course planned no DES windows")
	}

	t := metrics.NewTable(
		fmt.Sprintf("Table 11: auto-fidelity hybrid on the %dk→%dk MOOC course (%d weeks)",
			moocStudentsStart/1000, moocStudentsCap/1000, moocCourseWeeks),
		"configuration", "plan", "peak servers", "VM-hours", "$/st/mo", "p95", "served", "events")

	var hybrid *scenario.Result
	var fluid *scenario.FluidResult
	var spot *scenario.Result

	switch fidelity {
	case FidelityAuto:
		if hybrid, err = scenario.HybridRun(cfg, pool); err != nil {
			return nil, fmt.Errorf("table11 hybrid: %w", err)
		}
		if fluid, err = scenario.FluidRun(cfg); err != nil {
			return nil, fmt.Errorf("table11 fluid: %w", err)
		}
		if spot, err = scenario.HybridSpotCheck(cfg, pool, 0); err != nil {
			return nil, fmt.Errorf("table11 spot-check: %w", err)
		}
	case FidelityFluid:
		if fluid, err = scenario.FluidRun(cfg); err != nil {
			return nil, fmt.Errorf("table11 fluid: %w", err)
		}
	case FidelityDES:
		if spot, err = scenario.HybridSpotCheck(cfg, pool, 0); err != nil {
			return nil, fmt.Errorf("table11 spot-check: %w", err)
		}
	default:
		return nil, fmt.Errorf("experiments: unknown fidelity %q (want %s, %s or %s)",
			fidelity, FidelityAuto, FidelityFluid, FidelityDES)
	}

	if hybrid != nil {
		t.AddRow("hybrid (auto fidelity)",
			fmt.Sprintf("%d win / %.1fh des / %.0fh fluid",
				len(plan.Windows), hybrid.DESSimHours, hybrid.FluidSimHours),
			hybrid.PeakServers,
			fmt.Sprintf("%.0f", hybrid.VMHoursPublic),
			fmt.Sprintf("%.2f", hybrid.CostPerStudentMonth(moocStudentsCap)),
			metrics.FmtMillis(hybrid.Latency.P95()),
			fmt.Sprintf("%d", hybrid.Served),
			fmt.Sprintf("%d", hybrid.Events))
	}
	if fluid != nil {
		t.AddRow("fluid (whole horizon)",
			fmt.Sprintf("0 win / 0.0h des / %.0fh fluid", fluid.Duration.Hours()),
			fluid.PeakServers,
			fmt.Sprintf("%.0f", fluid.VMHoursPublic),
			fmt.Sprintf("%.2f", fluid.CostPerStudentMonth(moocStudentsCap)),
			"-",
			fmt.Sprintf("%.0f", fluid.OfferedRequests),
			"0")
	}
	if spot != nil {
		w := plan.Windows[0]
		t.AddRow("des spot-check, window 0",
			fmt.Sprintf("[%s,%s)", fmtDay(w.Start), fmtDay(w.End)),
			spot.PeakServers,
			fmt.Sprintf("%.0f", spot.VMHoursPublic),
			"-",
			metrics.FmtMillis(spot.Latency.P95()),
			fmt.Sprintf("%d", spot.Served),
			fmt.Sprintf("%d", spot.Events))
	}

	t.AddNote("seed=%d; table9's logistic %dk→%dk course with a launch join spike (day 2, x5) and deadline storms (days 3 and 5, x4); intensity threshold %.1f, guard %s, windows as 4-shard merges",
		seed, moocStudentsStart/1000, moocStudentsCap/1000, cfg.HybridIntensity, cfg.HybridGuard)
	for _, w := range plan.Windows {
		t.AddNote("planned DES window [%s, %s) — peak envelope bound %.0f rps", fmtDay(w.Start), fmtDay(w.End), w.PeakBound)
	}
	if hybrid != nil && fluid != nil {
		servedDelta := (float64(hybrid.Served) - fluid.OfferedRequests) / fluid.OfferedRequests
		vmRatio := hybrid.VMHoursPublic / fluid.VMHoursPublic
		t.AddNote("agreement vs fluid: served mass %+.3f%%, VM-hours ratio %.3f (bands: the DES windows admit, reject and carry real requests where the fluid model assumes all offered load completes at idealized capacity)",
			servedDelta*100, vmRatio)
	}
	if hybrid != nil && spot != nil && spot.Arrivals > 0 {
		// Speedup via deterministic event counts, never wall-clock: the
		// spot-check window's events-per-arrival ratio, extrapolated to
		// the whole horizon's offered mass, estimates what full-horizon
		// DES would cost.
		perReq := float64(spot.Events) / float64(spot.Arrivals)
		estFull := perReq * float64(hybrid.Served+hybrid.Rejected+hybrid.Offline)
		t.AddNote("speedup proxy: full-horizon DES at the spot-check's %.1f events/request over %d offered requests ≈ %.2g events; the hybrid executed %d — %.0fx fewer",
			perReq, hybrid.Served+hybrid.Rejected+hybrid.Offline, estFull, hybrid.Events,
			estFull/float64(hybrid.Events))
	}
	return t, nil
}

// fmtDay renders an offset into the course as "dayN hh:mm".
func fmtDay(d time.Duration) string {
	day := 24 * time.Hour
	return fmt.Sprintf("day%d %02d:%02d", d/day, d%day/time.Hour, d%time.Hour/time.Minute)
}

// FidelityVariant returns experiment id's fidelity-parameterized
// runner, or ok=false when the experiment has no fidelity switch.
// cmd/elbench maps its -fidelity flag through this.
func FidelityVariant(id string) (func(seed uint64, pool *scenario.Pool, fidelity string) (*metrics.Table, error), bool) {
	switch id {
	case "table11":
		return Table11HybridCourseAt, true
	}
	return nil, false
}
