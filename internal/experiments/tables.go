package experiments

import (
	"fmt"
	"time"

	"elearncloud/internal/core"
	"elearncloud/internal/deploy"
	"elearncloud/internal/lms"
	"elearncloud/internal/metrics"
	"elearncloud/internal/migrate"
	"elearncloud/internal/network"
	"elearncloud/internal/scenario"
	"elearncloud/internal/security"
)

// Table1Merits quantifies the paper's §III merits 1-6 of cloud-based
// e-learning against the on-premise desktop baseline.
func Table1Merits(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	runs, err := scenario.NewBatch(seed).
		AddFluid("cloud-semester", semester(seed, deploy.Public, collegeStudents)).
		AddFluid("desktop-semester", semester(seed, deploy.Desktop, collegeStudents)).
		Add("cloud-steady", steadyTeaching(seed, deploy.Public)).
		Add("desktop-steady", steadyTeaching(seed, deploy.Desktop)).
		RunOn(pool)
	if err != nil {
		return nil, err
	}
	cloudFluid := runs.Fluid("cloud-semester")
	deskFluid := runs.Fluid("desktop-semester")
	cloudRun := runs.Result("cloud-steady")
	deskRun := runs.Result("desktop-steady")

	// §III.6 improbability: annual sensitive-asset risk.
	cloudAssets := lms.NewAssetStore(collegeStudents/25, collegeStudents)
	cloudAssets.PlaceAll(lms.OnPublic)
	deskAssets := lms.NewAssetStore(collegeStudents/25, collegeStudents)
	cloudRisk := security.ConfigFor(deploy.Public).AnnualSensitiveRisk(cloudAssets)
	deskRisk := security.ConfigFor(deploy.Desktop).AnnualSensitiveRisk(deskAssets)

	t := metrics.NewTable(
		"Table 1: cloud e-learning merits vs desktop baseline (paper §III, 2000 students)",
		"merit (paper §)", "desktop labs", "cloud (public)", "cloud wins?")
	row := func(name, desk, cloud string, wins bool) {
		verdict := "yes"
		if !wins {
			verdict = "no"
		}
		t.AddRow(name, desk, cloud, verdict)
	}
	cd := deskFluid.CostPerStudentMonth(collegeStudents)
	cc := cloudFluid.CostPerStudentMonth(collegeStudents)
	row("1 lower costs ($/student/mo)",
		fmt.Sprintf("%.2f", cd), fmt.Sprintf("%.2f", cc), cc < cd)
	row("2 improved performance (session start)",
		core.SessionStartTime(deploy.Desktop).String(),
		core.SessionStartTime(deploy.Public).String(),
		core.SessionStartTime(deploy.Public) < core.SessionStartTime(deploy.Desktop))
	row("2 improved performance (p95 request)",
		metrics.FmtMillis(deskRun.Latency.P95()),
		metrics.FmtMillis(cloudRun.Latency.P95()),
		cloudRun.Latency.P95() < deskRun.Latency.P95())
	row("3 instant software updates (fleet refresh)",
		core.UpdatePropagation(deploy.Desktop, collegeStudents, 2).Round(time.Hour).String(),
		core.UpdatePropagation(deploy.Public, collegeStudents, 2).String(),
		true)
	row("4 increased data reliability (loss per crash)",
		core.ExpectedCrashLoss(deploy.Desktop).String(),
		core.ExpectedCrashLoss(deploy.Public).String(),
		core.ExpectedCrashLoss(deploy.Public) < core.ExpectedCrashLoss(deploy.Desktop))
	row("5 device independence (continuity)",
		metrics.FmtPercent(core.DeviceContinuity(deploy.Desktop)),
		metrics.FmtPercent(core.DeviceContinuity(deploy.Public)),
		true)
	row("6 improved improbability (asset risk/yr)",
		fmt.Sprintf("%.2f", deskRisk), fmt.Sprintf("%.2f", cloudRisk), cloudRisk < deskRisk)
	t.AddNote("seed=%d; desktop=locally installed LMS on lab PCs; request p95 includes WAN for cloud", seed)
	t.AddNote("merit 1 reflects 2013 egress pricing: at this scale video egress dominates the cloud bill")
	return t, nil
}

// Table2Risks quantifies the paper's §III risks: network dependence,
// security exposure, and portability lock-in, per deployment model.
func Table2Risks(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	t := metrics.NewTable(
		"Table 2: cloud e-learning risks by deployment model (paper §III)",
		"risk", "public", "private", "hybrid")

	// Risk 1 — network: a week on flaky rural DSL (long enough that the
	// MTBF-2d failure process actually fires). One job per model.
	const trackedSessions = 100
	batch := scenario.NewBatch(seed)
	for _, kind := range deploy.Kinds() {
		batch.Add("rural-week/"+kind.String(), scenario.Config{
			Seed:              seed,
			Kind:              kind,
			Students:          300,
			ReqPerStudentHour: 15,
			Duration:          7 * 24 * time.Hour,
			Access:            network.RuralDSL,
			TrackedSessions:   trackedSessions,
		})
	}
	runs, err := batch.RunOn(pool)
	if err != nil {
		return nil, err
	}
	lost := make(map[deploy.Kind]string)
	offline := make(map[deploy.Kind]string)
	for _, kind := range deploy.Kinds() {
		res := runs.Result("rural-week/" + kind.String())
		perSession := res.LostWork / trackedSessions / 7 // per day
		lost[kind] = perSession.Round(time.Second).String()
		offline[kind] = metrics.FmtPercent(res.ErrorRate())
	}
	t.AddRow("network: lost work /session/day (rural DSL)",
		lost[deploy.Public], lost[deploy.Private], lost[deploy.Hybrid])
	t.AddRow("network: failed requests (rural DSL)",
		offline[deploy.Public], offline[deploy.Private], offline[deploy.Hybrid])

	// Risk 2 — security: analytic annual sensitive risk.
	risk := make(map[deploy.Kind]string)
	for _, kind := range deploy.Kinds() {
		assets := lms.NewAssetStore(collegeStudents/25, collegeStudents)
		switch kind {
		case deploy.Public:
			assets.PlaceAll(lms.OnPublic)
		case deploy.Private:
			assets.PlaceAll(lms.OnPrivate)
		case deploy.Hybrid:
			assets.PlaceSensitive(lms.OnPrivate, lms.OnPublic)
		}
		risk[kind] = fmt.Sprintf("%.2f/yr", security.ConfigFor(kind).AnnualSensitiveRisk(assets))
	}
	t.AddRow("security: sensitive-asset compromise rate",
		risk[deploy.Public], risk[deploy.Private], risk[deploy.Hybrid])

	// Risk 3 — portability: cost of leaving the current arrangement.
	mig := make(map[deploy.Kind]string)
	for _, kind := range deploy.Kinds() {
		assets := lms.NewAssetStore(collegeStudents/25, collegeStudents)
		switch kind {
		case deploy.Public:
			assets.PlaceAll(lms.OnPublic)
		case deploy.Hybrid:
			assets.PlaceSensitive(lms.OnPrivate, lms.OnPublic)
		}
		plan, err := migrate.NewPlan(migrate.LockinProfile{
			Index:      kind.DefaultLockinIndex(),
			Components: 12,
			DataBytes:  assets.BytesAt(lms.OnPublic) + 0.2*assets.BytesAt(lms.OnPrivate),
		}, migrate.DefaultCostModel())
		if err != nil {
			return nil, err
		}
		mig[kind] = metrics.FmtDollars(plan.TotalUSD())
	}
	t.AddRow("portability: cost to exit provider",
		mig[deploy.Public], mig[deploy.Private], mig[deploy.Hybrid])
	t.AddNote("seed=%d; network rows simulate 7 days of rural DSL (MTBF 2d, MTTR 30m)", seed)
	t.AddNote("network risk is model-independent: every cloud model needs the same last mile")
	return t, nil
}

// Table3Matrix reproduces the paper's central artifact: the deployment
// comparison matrix "articulated exhaustively" (§V), at college scale.
func Table3Matrix(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	in, err := core.MeasureInputs(core.MeasureConfig{
		Seed: seed, Students: collegeStudents, DESStudents: desStudents,
		Pool: pool,
	})
	if err != nil {
		return nil, err
	}
	sc, err := core.BuildScorecard(in)
	if err != nil {
		return nil, err
	}
	t := sc.Table()
	t.AddNote("seed=%d; measured at %d students; raw: cost $/st/mo pub=%.2f priv=%.2f hyb=%.2f",
		seed, collegeStudents,
		in.CostPerStudentMonth[deploy.Public],
		in.CostPerStudentMonth[deploy.Private],
		in.CostPerStudentMonth[deploy.Hybrid])
	t.AddNote("raw risk/yr pub=%.2f priv=%.2f hyb=%.2f; raw migration $ pub=%.0f priv=%.0f hyb=%.0f",
		in.AnnualSensitiveRisk[deploy.Public],
		in.AnnualSensitiveRisk[deploy.Private],
		in.AnnualSensitiveRisk[deploy.Hybrid],
		in.MigrationUSD[deploy.Public],
		in.MigrationUSD[deploy.Private],
		in.MigrationUSD[deploy.Hybrid])
	return t, nil
}

// Table4HybridAblation sweeps the hybrid "distribution of units" policy
// (§IV.C): private share and pinning strictness, under an exam crowd.
func Table4HybridAblation(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	t := metrics.NewTable(
		"Table 4: hybrid unit-distribution ablation under a 10x exam crowd (paper §IV.C)",
		"policy", "p99 latency", "error rate", "pinning violations", "sensitive risk/yr")
	type variant struct {
		name   string
		share  float64
		strict bool
	}
	variants := []variant{
		{"strict pin, 25% private", 0.25, true},
		{"strict pin, 50% private", 0.50, true},
		{"strict pin, 75% private", 0.75, true},
		{"relaxed pin, 50% private", 0.50, false},
		{"relaxed pin, 25% private", 0.25, false},
	}
	batch := scenario.NewBatch(seed)
	for _, v := range variants {
		cfg := examDay(seed, deploy.Hybrid, scenario.ScalerReactive)
		cfg.HybridPolicy = deploy.HybridPolicy{SensitivePrivate: true, PrivateBaseShare: v.share}
		cfg.StrictPinning = v.strict
		batch.Add(v.name, cfg)
	}
	runs, err := batch.RunOn(pool)
	if err != nil {
		return nil, err
	}
	for _, v := range variants {
		res := runs.Result(v.name)
		// Risk grows with the share of sensitive traffic that ever
		// touches the public side: approximate by realized violations.
		assets := lms.NewAssetStore(desStudents/25, desStudents)
		assets.PlaceSensitive(lms.OnPrivate, lms.OnPublic)
		baseRisk := security.ConfigFor(deploy.Hybrid).AnnualSensitiveRisk(assets)
		violShare := 0.0
		if res.Served > 0 {
			violShare = float64(res.PolicyViolations) / float64(res.Served)
		}
		pubAssets := lms.NewAssetStore(desStudents/25, desStudents)
		pubAssets.PlaceAll(lms.OnPublic)
		pubRisk := security.ConfigFor(deploy.Public).AnnualSensitiveRisk(pubAssets)
		risk := baseRisk + violShare*(pubRisk-baseRisk)

		t.AddRow(v.name,
			metrics.FmtMillis(res.Latency.P99()),
			metrics.FmtPercent(res.ErrorRate()),
			fmt.Sprintf("%d", res.PolicyViolations),
			fmt.Sprintf("%.2f", risk))
	}
	t.AddNote("seed=%d; %d students, exam mix is ~78%% sensitive traffic", seed, desStudents)
	t.AddNote("strict pinning trades availability (errors) for confidentiality; relaxed trades the reverse")
	return t, nil
}

// Table5Autoscalers ablates elasticity policies on the exam crowd
// (§III.2 improved performance / §IV.A quickest solution).
func Table5Autoscalers(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	t := metrics.NewTable(
		"Table 5: autoscaler ablation under a 10x exam crowd (public model)",
		"policy", "p95", "p99", "error rate", "peak servers", "VM-hours")
	scalers := []scenario.ScalerKind{
		scenario.ScalerFixed, scenario.ScalerReactive,
		scenario.ScalerScheduled, scenario.ScalerPredictive,
	}
	batch := scenario.NewBatch(seed)
	for _, sk := range scalers {
		batch.Add(sk.String(), examDay(seed, deploy.Public, sk))
	}
	runs, err := batch.RunOn(pool)
	if err != nil {
		return nil, err
	}
	for _, sk := range scalers {
		res := runs.Result(sk.String())
		t.AddRow(sk.String(),
			metrics.FmtMillis(res.Latency.P95()),
			metrics.FmtMillis(res.Latency.P99()),
			metrics.FmtPercent(res.ErrorRate()),
			res.PeakServers,
			fmt.Sprintf("%.1f", res.VMHoursPublic))
	}
	t.AddNote("seed=%d; fixed = fleet sized for peak up front (private-cloud style)", seed)
	t.AddNote("scheduled follows the timetable but cannot see the crowd multiplier")
	return t, nil
}

// Table6Advisor reproduces §II's "customers can choose one of cloud
// deployment models, depending on their requirements": rankings per
// institution profile, each measured at its own scale.
func Table6Advisor(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	t := metrics.NewTable(
		"Table 6: advisor recommendations per institution profile",
		"profile", "students", "1st", "2nd", "3rd", "top score")
	profiles := []core.Profile{core.RuralSchool, core.MidCollege, core.NationalPlatform}
	// Each profile is measured at its own scale — independent work, so
	// fan the profiles out and let each measurement batch nest on the
	// same pool: the pool's tokens span both levels, so a core freed
	// when the profile loop drains is claimed by a still-running
	// measurement batch. Normalize a nil pool here, not per level —
	// otherwise each nested MeasureInputs would build its own one-off
	// pool and multiply the two levels' concurrency instead of sharing
	// one cap.
	if pool == nil {
		pool = scenario.NewPool(0)
	}
	recs := make([][]core.Recommendation, len(profiles))
	err := pool.ForEach(len(profiles), func(i int) error {
		p := profiles[i]
		in, err := core.MeasureInputs(core.MeasureConfig{
			Seed: seed, Students: p.Students, DESStudents: min(p.Students, desStudents),
			Pool: pool,
		})
		if err != nil {
			return err
		}
		sc, err := core.BuildScorecard(in)
		if err != nil {
			return err
		}
		recs[i], err = sc.Recommend(p)
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, p := range profiles {
		t.AddRow(p.Name, p.Students,
			recs[i][0].Kind.String(), recs[i][1].Kind.String(), recs[i][2].Kind.String(),
			fmt.Sprintf("%.1f", recs[i][0].Total))
	}
	t.AddNote("seed=%d; each profile measured at its own scale (cost ordering is scale-dependent)", seed)
	return t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
