package experiments

import (
	"fmt"
	"sort"
	"strings"

	"elearncloud/internal/metrics"
	"elearncloud/internal/scenario"
)

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID is the experiment identifier from ARCHITECTURE.md's experiment
	// index ("table1", "figure3", ...).
	ID string
	// Title is a human-readable one-liner.
	Title string
	// Tags classify the experiment for `elbench -list -tag` filtering
	// and the docs/SCENARIOS.md catalog ("@paper", "@mooc", "@storm",
	// ...). Every experiment must carry at least one; check-docs.sh
	// fails the build on a tagless entry.
	Tags []string
	// Run regenerates the artifact. pool is the shared worker pool its
	// independent scenario jobs fan out on — typically the suite-wide
	// pool cmd/elbench threads through every experiment, so a core
	// freed by any experiment is claimed by any other (nil means a
	// one-off scenario.DefaultWorkers pool). The rendered table is
	// byte-identical for every pool, because each job's randomness is
	// fixed at submission (rooted at its Config.Seed, set from the
	// experiment seed) and results are collected in submission order.
	Run func(seed uint64, pool *scenario.Pool) (*metrics.Table, error)
}

// tags splits a space-separated tag literal, keeping the registry
// entries on one line each.
func tags(s string) []string { return strings.Fields(s) }

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Merits of cloud e-learning vs desktop (§III)", tags("@paper @des @cost"), Table1Merits},
		{"table2", "Risks by deployment model (§III)", tags("@paper @des @network @security"), Table2Risks},
		{"table3", "Deployment comparison matrix (§IV-§V)", tags("@paper @des @fluid @cost"), Table3Matrix},
		{"table4", "Hybrid unit-distribution ablation (§IV.C)", tags("@paper @des @security"), Table4HybridAblation},
		{"table5", "Autoscaler ablation (exam crowd)", tags("@paper @des @crowd @scaling"), Table5Autoscalers},
		{"table6", "Advisor recommendations per profile (§II)", tags("@paper @analytic"), Table6Advisor},
		{"figure1", "Workload shape: diurnal and semester", tags("@paper @analytic"), Figure1Workload},
		{"figure2", "P95 latency through an exam crowd", tags("@paper @des @crowd @scaling"), Figure2ExamSpike},
		{"figure3", "TCO per student vs institution size", tags("@paper @fluid @cost"), Figure3CostCrossover},
		{"figure4", "Private utilization vs elastic fleet", tags("@paper @fluid @scaling"), Figure4Utilization},
		{"figure5", "Lost work vs last-mile reliability", tags("@paper @des @network @chaos"), Figure5NetworkRisk},
		{"figure6", "Security incidents over 10 years", tags("@paper @security @chaos"), Figure6Security},
		{"figure7", "Migration cost vs lock-in index", tags("@paper @analytic @cost"), Figure7Lockin},
		// Extension experiments ("future work the paper gestures at";
		// see ARCHITECTURE.md).
		{"table7", "National shared private cloud (§IV.C/§V)", tags("@extension @analytic @cost"), Table7Federation},
		{"table8", "Reserved vs on-demand purchase mix", tags("@extension @fluid @cost"), Table8PurchaseMix},
		{"figure8", "CDN ablation on the cost crossover", tags("@extension @fluid @cdn @cost"), Figure8CDN},
		{"figure9", "Physical damage to the on-premise unit", tags("@extension @des @chaos"), Figure9HostFailure},
		// MOOC-scale experiments (enrollment growth, deadline storms;
		// see internal/workload's MOOC family and docs/SCENARIOS.md).
		{"table9", "Deployment models under enrollment growth", tags("@mooc @growth @fluid @des @scaling @cost"), Table9GrowthModels},
		{"figure10", "P95 latency through a deadline storm", tags("@mooc @storm @des @scaling"), Figure10DeadlineStorm},
		// Scale experiments (sharded DES; see internal/scenario/sharded.go).
		{"table10", "Sharded DES onboarding ramp at 10^5 students", tags("@mooc @growth @des @scaling @sharded"), Table10ShardedRamp},
		// Hybrid-fidelity experiments (fluid ⇄ DES; see internal/scenario/hybrid.go).
		{"table11", "Auto-fidelity hybrid on the 500k MOOC course", tags("@mooc @growth @fluid @des @scaling"), Table11HybridCourse},
		// Forecasting experiments (growth-fit scaler, oracle yardstick;
		// see internal/scale/growthfit.go).
		{"table12", "Forecasting policies through the deadline storm", tags("@mooc @storm @des @scaling @cost"), Table12ForecastPolicies},
	}
}

// KnownTags returns the union of every registered tag, sorted.
func KnownTags() []string {
	set := map[string]bool{}
	for _, e := range All() {
		for _, t := range e.Tags {
			set[t] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// HasTag reports whether the experiment carries tag (with or without
// the leading @).
func (e Experiment) HasTag(tag string) bool {
	if !strings.HasPrefix(tag, "@") {
		tag = "@" + tag
	}
	for _, t := range e.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
