package experiments

import (
	"fmt"

	"elearncloud/internal/metrics"
	"elearncloud/internal/scenario"
)

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID is the experiment identifier from ARCHITECTURE.md's experiment
	// index ("table1", "figure3", ...).
	ID string
	// Title is a human-readable one-liner.
	Title string
	// Run regenerates the artifact. pool is the shared worker pool its
	// independent scenario jobs fan out on — typically the suite-wide
	// pool cmd/elbench threads through every experiment, so a core
	// freed by any experiment is claimed by any other (nil means a
	// one-off scenario.DefaultWorkers pool). The rendered table is
	// byte-identical for every pool, because each job's randomness is
	// fixed at submission (rooted at its Config.Seed, set from the
	// experiment seed) and results are collected in submission order.
	Run func(seed uint64, pool *scenario.Pool) (*metrics.Table, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Merits of cloud e-learning vs desktop (§III)", Table1Merits},
		{"table2", "Risks by deployment model (§III)", Table2Risks},
		{"table3", "Deployment comparison matrix (§IV-§V)", Table3Matrix},
		{"table4", "Hybrid unit-distribution ablation (§IV.C)", Table4HybridAblation},
		{"table5", "Autoscaler ablation (exam crowd)", Table5Autoscalers},
		{"table6", "Advisor recommendations per profile (§II)", Table6Advisor},
		{"figure1", "Workload shape: diurnal and semester", Figure1Workload},
		{"figure2", "P95 latency through an exam crowd", Figure2ExamSpike},
		{"figure3", "TCO per student vs institution size", Figure3CostCrossover},
		{"figure4", "Private utilization vs elastic fleet", Figure4Utilization},
		{"figure5", "Lost work vs last-mile reliability", Figure5NetworkRisk},
		{"figure6", "Security incidents over 10 years", Figure6Security},
		{"figure7", "Migration cost vs lock-in index", Figure7Lockin},
		// Extension experiments ("future work the paper gestures at";
		// see ARCHITECTURE.md).
		{"table7", "National shared private cloud (§IV.C/§V)", Table7Federation},
		{"table8", "Reserved vs on-demand purchase mix", Table8PurchaseMix},
		{"figure8", "CDN ablation on the cost crossover", Figure8CDN},
		{"figure9", "Physical damage to the on-premise unit", Figure9HostFailure},
		// MOOC-scale experiments (enrollment growth, deadline storms;
		// see internal/workload's MOOC family and docs/SCENARIOS.md).
		{"table9", "Deployment models under enrollment growth", Table9GrowthModels},
		{"figure10", "P95 latency through a deadline storm", Figure10DeadlineStorm},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
