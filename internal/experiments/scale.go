package experiments

import (
	"fmt"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/metrics"
	"elearncloud/internal/network"
	"elearncloud/internal/scenario"
	"elearncloud/internal/workload"
)

// This file holds the scale experiment: the onboarding ramp of table9,
// but at 10^5 students in full request-level DES — the regime the
// paper's elasticity argument actually lives in, runnable natively now
// that scenario.ShardedRun splits the event loop across per-shard
// engines. The table compares shard counts on the identical scenario
// seed, so the rows differ only by the documented fleet-split
// approximation, never by workload.

// scaleStudentsStart/Cap bound the table10 ramp: a 10k-seat launch
// climbing to 10^5 enrolled students while the course runs.
const (
	scaleStudentsStart = 10000
	scaleStudentsCap   = 100000
	scaleReqPerHour    = 30
)

// scaleRamp returns the 10^5-student DES onboarding configuration. The
// scenario seed is fixed by the experiment seed alone — every shard
// count runs the same scenario, and each shard re-derives its own
// engine seed from it via the (seed, "shard/<k>") rule.
func scaleRamp(seed uint64) scenario.Config {
	return scenario.Config{
		Seed:              scenario.SeedFor(seed, "scale/ramp"),
		Kind:              deploy.Public,
		Growth:            workload.LinearGrowth(scaleStudentsStart, scaleStudentsCap, 90*time.Minute),
		ReqPerStudentHour: scaleReqPerHour,
		Duration:          2 * time.Hour,
		Diurnal:           workload.FlatDiurnal(),
		Scaler:            scenario.ScalerReactive,
		Access:            network.UrbanBroadband,
	}
}

// Table10ShardedRamp renders the default artifact: the 10^5-student
// onboarding ramp at shards=1 and shards=8. The shards=1 row executes
// the sharded path end to end and is byte-identical to a direct Run;
// the shards=8 row is the same workload split across eight engines.
func Table10ShardedRamp(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	return tableForShards(seed, pool, []int{1, 8})
}

// Table10ShardedRampAt renders the ramp at one explicit shard count —
// the `elbench -shards` entry point the CI scale lane drives to pin
// that a fixed-K merged artifact is byte-identical across -parallel
// values.
func Table10ShardedRampAt(seed uint64, pool *scenario.Pool, shards int) (*metrics.Table, error) {
	if shards < 1 {
		return nil, fmt.Errorf("experiments: table10 shards = %d, need >= 1", shards)
	}
	return tableForShards(seed, pool, []int{shards})
}

// ShardedVariant returns experiment id's shards-parameterized runner,
// or ok=false when the experiment has no sharded path. cmd/elbench maps
// its -shards flag through this.
func ShardedVariant(id string) (func(seed uint64, pool *scenario.Pool, shards int) (*metrics.Table, error), bool) {
	switch id {
	case "table10":
		return Table10ShardedRampAt, true
	}
	return nil, false
}

func tableForShards(seed uint64, pool *scenario.Pool, shardCounts []int) (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("Table 10: sharded DES onboarding ramp at %dk students", scaleStudentsCap/1000),
		"shards", "peak servers", "VM-hours", "p95", "served", "errors", "events")
	for _, shards := range shardCounts {
		cfg := scaleRamp(seed)
		cfg.Shards = shards
		res, err := scenario.ShardedRun(cfg, pool)
		if err != nil {
			return nil, fmt.Errorf("table10 shards=%d: %w", shards, err)
		}
		t.AddRow(fmt.Sprintf("%d", shards),
			res.PeakServers,
			fmt.Sprintf("%.1f", res.VMHoursPublic),
			metrics.FmtMillis(res.Latency.P95()),
			fmt.Sprintf("%d", res.Served),
			metrics.FmtPercent(res.ErrorRate()),
			fmt.Sprintf("%d", res.Events))
		if shards > 1 {
			t.AddNote("shards=%d per-shard events: %v", shards, res.ShardEvents)
		}
	}
	t.AddNote("seed=%d; request-level %dk→%dk-student onboarding over 90m at %d req/student-h, public reactive",
		seed, scaleStudentsStart/1000, scaleStudentsCap/1000, scaleReqPerHour)
	t.AddNote("rows share one scenario seed: shard counts differ only by the proportional fleet split (capacity divided by shard population share), the approximation ARCHITECTURE.md's sharding section bounds")
	return t, nil
}
