// Package experiments regenerates every table and figure of the
// reproduction — the experiment index in ARCHITECTURE.md. Each function
// is deterministic given its seed, returns a rendered metrics.Table, and
// is invoked both by cmd/elbench and by the root-level benchmark
// harness.
//
// The paper itself prints no tables or figures; this package defines the
// canonical set — one experiment per qualitative claim in §III-§V, plus
// extension experiments for questions the paper raises but does not
// answer.
//
// Every experiment takes a *scenario.Pool and runs its independent
// scenario jobs on it. cmd/elbench threads one shared pool through the
// across-experiments loop and every experiment here, so the -parallel
// worker budget is a single global cap rather than a static split:
// cores freed when one level drains are claimed by whichever batch
// still holds work. The rendered artifacts are byte-identical for every
// pool, pinned by TestCrossModeDeterminism and TestSharedPoolDeterminism.
package experiments
