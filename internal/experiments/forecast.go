package experiments

import (
	"fmt"

	"elearncloud/internal/metrics"
	"elearncloud/internal/scenario"
)

// This file holds the forecasting-policy experiment: the deadline storm
// of figure10 rerun under every scaling policy that claims to see the
// future, bracketed by the reactive baseline below and the oracle
// above. The question it answers is the autoscaling half of the
// advisor's -forecast mode: how much of the oracle's headroom can an
// online forecaster actually capture when the demand curve is a
// procrastination ramp into a cliff?

// table12Policies lists the policies in presentation order: the
// reactive floor, the two forecasters, then the oracle ceiling.
func table12Policies() []scenario.ScalerKind {
	return []scenario.ScalerKind{
		scenario.ScalerReactive,
		scenario.ScalerPredictive,
		scenario.ScalerGrowthFit,
		scenario.ScalerOracle,
	}
}

// Table12ForecastPolicies runs figure10's deadline storm — join spike,
// procrastination ramp, submission cliff — under reactive, predictive
// (Holt), growth-fit and oracle scaling, and reports what each policy
// paid and what it dropped. Reactive and oracle bracket the achievable
// range; the forecasters land in between, and the gap to the oracle is
// the price of having to learn the curve online.
func Table12ForecastPolicies(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	batch := scenario.NewBatch(seed)
	for _, sk := range table12Policies() {
		batch.Add("storm/"+sk.String(), deadlineStorm(seed, sk))
	}
	runs, err := batch.RunOn(pool)
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable(
		"Table 12: forecasting policies through the deadline storm (public; reactive vs predictive vs growth-fit vs oracle)",
		"policy", "p95", "rejected", "% of arrivals", "VM-hours", "$/1k served", "peak servers")

	var fitNote string
	for _, sk := range table12Policies() {
		res := runs.Result("storm/" + sk.String())
		perServed := 0.0
		if res.Served > 0 {
			perServed = res.Cost.Total() / float64(res.Served) * 1000
		}
		rejFrac := 0.0
		if res.Arrivals > 0 {
			rejFrac = float64(res.Rejected) / float64(res.Arrivals)
		}
		t.AddRow(sk.String(),
			metrics.FmtMillis(res.Latency.P95()),
			res.Rejected,
			metrics.FmtPercent(rejFrac),
			fmt.Sprintf("%.1f", res.VMHoursPublic),
			fmt.Sprintf("%.4f", perServed),
			res.PeakServers)
		if sk == scenario.ScalerGrowthFit && res.Fit != nil {
			fitNote = res.Fit.String()
		}
	}

	t.AddNote("seed=%d; identical storm in every row: %d students at 50 req/student-h, join spike x6 at 00:30, 90m procrastination ramp to x10 at the 02:30 deadline",
		seed, desStudents)
	t.AddNote("growth-fit final fit: %s", fitNote)
	t.AddNote("oracle provisions from the true rate curve a boot-time ahead — the ceiling any online forecaster is chasing; reactive is the floor that only moves after the queue hurts")
	return t, nil
}
