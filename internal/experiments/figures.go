package experiments

import (
	"fmt"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/lms"
	"elearncloud/internal/metrics"
	"elearncloud/internal/migrate"
	"elearncloud/internal/network"
	"elearncloud/internal/scenario"
	"elearncloud/internal/security"
	"elearncloud/internal/sim"
	"elearncloud/internal/workload"
)

// Figure1Workload renders the workload generator's shape: the diurnal
// arrival-rate curve (hourly) and the semester week multipliers.
func Figure1Workload(seed uint64, _ *scenario.Pool) (*metrics.Table, error) {
	gen, err := workload.NewGenerator(workload.Config{
		Students:          collegeStudents,
		ReqPerStudentHour: 50,
	})
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		"Figure 1: e-learning load shape (2000 students, 50 req/student-h)",
		"hour", "arrival rate (req/s)", "| week", "kind", "multiplier")
	sem := workload.StandardSemester()
	for h := 0; h < 24; h++ {
		weekCol, kindCol, multCol := "", "", ""
		if h < sem.Len() {
			w := sem.WeekAt(time.Duration(h) * 7 * 24 * time.Hour)
			weekCol = fmt.Sprintf("%d", h+1)
			kindCol = w.Kind.String()
			multCol = fmt.Sprintf("%.2f", w.Mult)
		}
		t.AddRow(
			fmt.Sprintf("%02d:00", h),
			fmt.Sprintf("%.1f", gen.Rate(time.Duration(h)*time.Hour)),
			weekCol, kindCol, multCol)
	}
	t.AddNote("seed=%d (shape is deterministic); peak hour 20:00, peak week = finals (2.4x)", seed)
	// Empirical check: generated arrivals match the analytic volume
	// (students x req/student-hour x 24h, diurnal mean ~1).
	n := gen.Generate(sim.NewRNG(seed), 0, 24*time.Hour, func(workload.Arrival) {})
	want := float64(collegeStudents) * 50 * 24 * workload.CampusDiurnal().Mean()
	t.AddNote("generated %d arrivals over one day (analytic expectation ~%.0f)", n, want)
	return t, nil
}

// Figure2ExamSpike renders per-minute P95 latency through an exam flash
// crowd for the three models (§IV.A scalability).
func Figure2ExamSpike(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	batch := scenario.NewBatch(seed)
	for _, kind := range deploy.Kinds() {
		batch.Add("exam/"+kind.String(), examDay(seed, kind, scenario.ScalerReactive))
	}
	runs, err := batch.RunOn(pool)
	if err != nil {
		return nil, err
	}
	series := make(map[deploy.Kind][]metrics.Point)
	servers := make(map[deploy.Kind][]metrics.Point)
	for _, kind := range deploy.Kinds() {
		res := runs.Result("exam/" + kind.String())
		series[kind] = res.P95Series.Downsample(5 * time.Minute).Points()
		servers[kind] = res.Servers.Downsample(5 * time.Minute).Points()
	}
	t := metrics.NewTable(
		"Figure 2: P95 latency through a 10x exam crowd (crowd 00:30-01:30)",
		"t", "public p95", "private p95", "hybrid p95", "public servers", "hybrid servers")
	n := len(series[deploy.Public])
	for i := 0; i < n; i++ {
		row := []any{series[deploy.Public][i].At.Round(time.Minute).String()}
		for _, kind := range deploy.Kinds() {
			if i < len(series[kind]) {
				row = append(row, metrics.FmtMillis(series[kind][i].Value))
			} else {
				row = append(row, "")
			}
		}
		for _, kind := range []deploy.Kind{deploy.Public, deploy.Hybrid} {
			if i < len(servers[kind]) {
				row = append(row, fmt.Sprintf("%.0f", servers[kind][i].Value))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	t.AddNote("seed=%d; private fleet is peak-sized and flat; public/hybrid scale reactively", seed)
	return t, nil
}

// Figure3CostCrossover sweeps institution size and reports monthly cost
// per student per model — the paper's §V cost trade-off, with the
// public/private crossover located.
func Figure3CostCrossover(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	t := metrics.NewTable(
		"Figure 3: semester TCO per student vs institution size",
		"students", "public $/st/mo", "private $/st/mo", "hybrid $/st/mo", "desktop $/st/mo", "cheapest")
	populations := []int{200, 400, 600, 1000, 2000, 5000, 10000, 20000}
	allKinds := []deploy.Kind{deploy.Public, deploy.Private, deploy.Hybrid, deploy.Desktop}
	// 8 sizes x 4 models = 32 independent fluid runs: one job each.
	batch := scenario.NewBatch(seed)
	for _, n := range populations {
		for _, kind := range allKinds {
			batch.AddFluid(fmt.Sprintf("%d/%s", n, kind), semester(seed, kind, n))
		}
	}
	runs, err := batch.RunOn(pool)
	if err != nil {
		return nil, err
	}
	var crossover int
	for _, n := range populations {
		costs := make(map[deploy.Kind]float64, 4)
		for _, kind := range allKinds {
			res := runs.Fluid(fmt.Sprintf("%d/%s", n, kind))
			costs[kind] = res.CostPerStudentMonth(n)
		}
		cheapest := deploy.Public
		for _, kind := range []deploy.Kind{deploy.Private, deploy.Hybrid, deploy.Desktop} {
			if costs[kind] < costs[cheapest] {
				cheapest = kind
			}
		}
		if crossover == 0 && costs[deploy.Private] < costs[deploy.Public] {
			crossover = n
		}
		t.AddRow(n,
			fmt.Sprintf("%.2f", costs[deploy.Public]),
			fmt.Sprintf("%.2f", costs[deploy.Private]),
			fmt.Sprintf("%.2f", costs[deploy.Hybrid]),
			fmt.Sprintf("%.2f", costs[deploy.Desktop]),
			cheapest.String())
	}
	if crossover > 0 {
		t.AddNote("public/private crossover at ~%d students (2013 egress pricing makes video-heavy e-learning expensive to rent at scale)", crossover)
	}
	t.AddNote("seed=%d; standard 18-week semester; desktop row = lab PCs, no LMS hosting at all", seed)
	return t, nil
}

// Figure4Utilization renders the §IV.B underutilization argument: weekly
// private-fleet utilization vs the elastic fleet's size across a
// semester.
func Figure4Utilization(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	runs, err := scenario.NewBatch(seed).
		AddFluid("private-semester", semester(seed, deploy.Private, collegeStudents)).
		AddFluid("public-semester", semester(seed, deploy.Public, collegeStudents)).
		RunOn(pool)
	if err != nil {
		return nil, err
	}
	priv := runs.Fluid("private-semester")
	pub := runs.Fluid("public-semester")
	week := 7 * 24 * time.Hour
	privSeries := priv.Rate.Downsample(week).Points()
	pubServers := pub.Servers.Downsample(week).Points()
	privCap := float64(priv.PeakServers)
	meanSvc := lms.TeachingMix().MeanService(lms.DefaultCatalog())

	t := metrics.NewTable(
		"Figure 4: private fleet utilization vs elastic fleet size, by semester week",
		"week", "offered load (req/s)", "private util", "public servers (mean)")
	sem := workload.StandardSemester()
	for i, p := range privSeries {
		util := 0.0
		if privCap > 0 {
			// Utilization = servers' worth of offered work over the
			// fixed fleet (same sizing arithmetic as the fluid model).
			util = p.Value * meanSvc / 0.6 / privCap
			if util > 1 {
				util = 1
			}
		}
		pubMean := ""
		if i < len(pubServers) {
			pubMean = fmt.Sprintf("%.1f", pubServers[i].Value)
		}
		t.AddRow(
			fmt.Sprintf("%d (%s)", i+1, sem.WeekAt(time.Duration(i)*week).Kind),
			fmt.Sprintf("%.1f", p.Value),
			metrics.FmtPercent(util),
			pubMean)
	}
	t.AddNote("seed=%d; private fleet fixed at %d servers (peak-sized); mean private util %.0f%%",
		seed, priv.PeakServers, priv.MeanPrivateUtil*100)
	return t, nil
}

// Figure5NetworkRisk sweeps last-mile reliability over a simulated week
// and reports lost work and failed requests (§III risk 1).
func Figure5NetworkRisk(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	const horizon = 7 * 24 * time.Hour
	const trackedSessions = 100
	t := metrics.NewTable(
		"Figure 5: lost work vs last-mile reliability (public cloud, one week)",
		"last-mile MTBF", "availability", "disconnects", "lost work /session/day", "failed requests")
	profiles := []struct {
		name string
		mtbf float64 // hours
	}{
		{"6h", 6}, {"12h", 12}, {"1d", 24}, {"2d", 48}, {"7d", 168}, {"30d", 720},
	}
	batch := scenario.NewBatch(seed)
	for _, p := range profiles {
		batch.Add("sweep-"+p.name, scenario.Config{
			Seed:              seed,
			Kind:              deploy.Public,
			Students:          300,
			ReqPerStudentHour: 15,
			Duration:          horizon,
			TrackedSessions:   trackedSessions,
			Access: network.AccessProfile{
				Name: "sweep-" + p.name, LatencyMean: 0.03, LatencySigma: 0.4,
				Mbps: 10, MTBF: p.mtbf * 3600, MTTR: 1800,
			},
		})
	}
	// The on-premise LAN reference: immune to last-mile weather.
	batch.Add("campus-lan", scenario.Config{
		Seed:              seed,
		Kind:              deploy.Private,
		Students:          300,
		ReqPerStudentHour: 15,
		Duration:          horizon,
		TrackedSessions:   trackedSessions,
		Access:            network.CampusLAN,
	})
	runs, err := batch.RunOn(pool)
	if err != nil {
		return nil, err
	}
	for _, p := range profiles {
		res := runs.Result("sweep-" + p.name)
		perSessionDay := res.LostWork / trackedSessions / 7
		t.AddRow(p.name,
			metrics.FmtPercent(res.NetAvailability),
			res.Disconnects,
			perSessionDay.Round(time.Second).String(),
			metrics.FmtPercent(res.ErrorRate()))
	}
	res := runs.Result("campus-lan")
	t.AddRow("campus LAN (private)", metrics.FmtPercent(res.NetAvailability),
		res.Disconnects, "0s", metrics.FmtPercent(res.ErrorRate()))
	t.AddNote("seed=%d; MTTR fixed at 30m; autosave every 5m bounds per-disconnect loss", seed)
	return t, nil
}

// Figure6Security sweeps the threat environment: breach exposure versus
// shared-infrastructure attack surface, and data loss versus physical
// damage rate (§III risk 2, §IV.B).
func Figure6Security(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	t := metrics.NewTable(
		"Figure 6: security incidents over 10 simulated years (2000 students)",
		"scenario", "model", "breaches", "sensitive exposures", "loss events", "TB lost")
	horizon := 10 * 365 * 24 * time.Hour

	// These are threat-model engine runs, not scenario.Run jobs, so they
	// fan out through ForEach: each spec owns one row slot and builds its
	// engine locally, keeping results independent of scheduling.
	type spec struct {
		label string
		kind  deploy.Kind
		cfg   security.Config
	}
	var specs []spec
	for _, kind := range deploy.Kinds() {
		specs = append(specs, spec{"baseline threat env", kind, security.ConfigFor(kind)})
	}
	// Hostile environment: 3x attack rate and double breach probability.
	for _, kind := range deploy.Kinds() {
		cfg := security.ConfigFor(kind)
		cfg.AttackRatePerMonth *= 3
		cfg.PublicBreachProb *= 2
		specs = append(specs, spec{"hostile threat env", kind, cfg})
	}
	// Fragile campus: flood-prone server room, no offsite backup.
	fragile := security.ConfigFor(deploy.Private)
	fragile.PhysicalMTBFYears = 4
	specs = append(specs, spec{"fragile server room", deploy.Private, fragile})
	// Same room, with offsite backup.
	backed := fragile
	backed.OffsiteBackup = true
	specs = append(specs, spec{"fragile room + offsite backup", deploy.Private, backed})

	rows := make([][]any, len(specs))
	err := pool.ForEach(len(specs), func(i int) error {
		s := specs[i]
		eng := sim.NewEngine(seed)
		assets := lms.NewAssetStore(collegeStudents/25, collegeStudents)
		switch s.kind {
		case deploy.Public:
			assets.PlaceAll(lms.OnPublic)
		case deploy.Private:
			assets.PlaceAll(lms.OnPrivate)
		case deploy.Hybrid:
			assets.PlaceSensitive(lms.OnPrivate, lms.OnPublic)
		}
		m, err := security.NewThreatModel(eng, eng.Stream("threat"), s.cfg, assets)
		if err != nil {
			return err
		}
		stop := m.Start()
		defer stop()
		if err := eng.Run(horizon); err != nil {
			return err
		}
		rows[i] = []any{s.label, s.kind.String(), m.Breaches(), m.SensitiveExposures(),
			m.DataLossEvents(), fmt.Sprintf("%.1f", m.BytesLost()/1e12)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("seed=%d; exposures = sensitive assets touched by breaches; private never breaches publicly but can burn down", seed)
	t.AddNote("counts are one 10-year realization; hybrid records more (harmless) breach events than public because attacks probe both locations")
	return t, nil
}

// Figure7Lockin sweeps proprietary-interface adoption and reports the
// migration bill (§III risk 3, §IV.A/§IV.C). The rightmost column marks
// where each model's typical adoption lands on the curve: that position,
// not the data footprint, is what makes public exits expensive and
// hybrid exits tolerable.
func Figure7Lockin(seed uint64, _ *scenario.Pool) (*metrics.Table, error) {
	t := metrics.NewTable(
		"Figure 7: cost to bring the system back in-house vs lock-in index",
		"lock-in index", "re-engineering", "egress", "total", "calendar time", "typical for")
	assets := lms.NewAssetStore(collegeStudents/25, collegeStudents)
	assets.PlaceAll(lms.OnPublic)
	model := migrate.DefaultCostModel()
	typical := map[float64]string{
		deploy.Private.DefaultLockinIndex(): "private",
		deploy.Hybrid.DefaultLockinIndex():  "hybrid",
		deploy.Public.DefaultLockinIndex():  "public",
	}
	for _, idx := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		plan, err := migrate.NewPlan(migrate.LockinProfile{
			Index: idx, Components: 12, DataBytes: assets.BytesAt(lms.OnPublic),
		}, model)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.1f", idx),
			metrics.FmtDollars(plan.ReengineerUSD),
			metrics.FmtDollars(plan.EgressUSD),
			metrics.FmtDollars(plan.TotalUSD()),
			plan.CalendarTime().Round(time.Hour).String(),
			typical[idx])
	}
	t.AddNote("seed=%d (analytic); 12 components, %.1f TB at the provider",
		seed, assets.BytesAt(lms.OnPublic)/1e12)
	t.AddNote("re-engineering dominates egress: lock-in is a software debt, not a data-gravity problem at this scale")
	return t, nil
}
