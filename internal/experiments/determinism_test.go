package experiments

import (
	"testing"

	"elearncloud/internal/scenario"
)

// TestCrossModeDeterminism is the cross-mode regression test for the
// batch runner's contract: for a fixed seed, the serial path (a
// one-worker pool) and the parallel path (a four-worker pool) must
// render byte-identical artifacts, because every scenario job's RNG
// streams derive from (seed, job name) and results are collected in
// submission order. It covers one multi-fidelity table (table1), one
// DES ablation (table5), one time-series figure (figure2), the
// MOOC growth table (table9 — the experiment whose scheduled-scaler
// row once exposed a map-iteration-order float sum in cloud.VMHours)
// and the forecasting-policy table (table12 — the growth-fit scaler's
// online fitter runs on its own named timer, which must stay a pure
// function of (seed, job name)).
func TestCrossModeDeterminism(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("runs each experiment twice; skipped in -short mode")
	}
	const seed = 11
	for _, id := range []string{"table1", "table5", "figure2", "table9", "table12"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := Find(id)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := e.Run(seed, scenario.NewPool(1))
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			parallel, err := e.Run(seed, scenario.NewPool(4))
			if err != nil {
				t.Fatalf("workers=4: %v", err)
			}
			if s, p := serial.String(), parallel.String(); s != p {
				t.Errorf("%s rendered text differs between workers=1 and workers=4:\n--- serial ---\n%s\n--- parallel ---\n%s", id, s, p)
			}
			if s, p := serial.CSV(), parallel.CSV(); s != p {
				t.Errorf("%s CSV differs between workers=1 and workers=4", id)
			}
		})
	}
}

// TestSharedPoolDeterminism pins the tentpole property down one level
// up: when ONE pool spans both the across-experiments loop and every
// experiment's internal batch — exactly how cmd/elbench runs — the
// rendered artifacts must still be byte-identical to the serial path.
// Sharing tokens across nesting levels may change when a job starts,
// never its RNG or its result slot. table6 is the deepest nesting in
// the registry (profile loop → MeasureInputs batch), so it rides along
// with a flat DES experiment.
func TestSharedPoolDeterminism(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("runs two experiments three times; skipped in -short mode")
	}
	const seed = 11
	ids := []string{"table5", "table6"}
	render := func(workers int) []string {
		t.Helper()
		pool := scenario.NewPool(workers)
		out := make([]string, len(ids))
		err := pool.ForEach(len(ids), func(i int) error {
			e, err := Find(ids[i])
			if err != nil {
				return err
			}
			tbl, err := e.Run(seed, pool)
			if err != nil {
				return err
			}
			out[i] = tbl.String() + "\n" + tbl.CSV()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	serial := render(1)
	for _, workers := range []int{4, 16} {
		got := render(workers)
		for i := range ids {
			if got[i] != serial[i] {
				t.Errorf("%s differs between a shared %d-worker pool and the serial path:\n--- serial ---\n%s\n--- shared pool ---\n%s",
					ids[i], workers, serial[i], got[i])
			}
		}
	}
}
