package experiments

import (
	"testing"
)

// TestCrossModeDeterminism is the cross-mode regression test for the
// batch runner's contract: for a fixed seed, the serial path
// (workers=1) and the parallel batch path (workers=4) must render
// byte-identical artifacts, because every scenario job's RNG streams
// derive from (seed, job name) and results are collected in submission
// order. It covers one multi-fidelity table (table1), one DES ablation
// (table5) and one time-series figure (figure2).
func TestCrossModeDeterminism(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("runs each experiment twice; skipped in -short mode")
	}
	const seed = 11
	for _, id := range []string{"table1", "table5", "figure2"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := Find(id)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := e.Run(seed, 1)
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			parallel, err := e.Run(seed, 4)
			if err != nil {
				t.Fatalf("workers=4: %v", err)
			}
			if s, p := serial.String(), parallel.String(); s != p {
				t.Errorf("%s rendered text differs between workers=1 and workers=4:\n--- serial ---\n%s\n--- parallel ---\n%s", id, s, p)
			}
			if s, p := serial.CSV(), parallel.CSV(); s != p {
				t.Errorf("%s CSV differs between workers=1 and workers=4", id)
			}
		})
	}
}
