package experiments

// This file holds the shared scenario-configuration helpers the
// experiment functions compose; see doc.go for the package story.

import (
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/network"
	"elearncloud/internal/scenario"
	"elearncloud/internal/workload"
)

// collegeStudents is the default institution scale for single-model
// experiments: a mid-size college.
const collegeStudents = 2000

// desStudents caps request-level runs so benches stay laptop-fast while
// keeping queueing behavior intact.
const desStudents = 1000

// examDay returns the standard exam-day configuration: flat diurnal (the
// crowd is the story), a 10x flash crowd from 00:30 to 01:30 of the run.
func examDay(seed uint64, kind deploy.Kind, scaler scenario.ScalerKind) scenario.Config {
	return scenario.Config{
		Seed:              seed,
		Kind:              kind,
		Students:          desStudents,
		ReqPerStudentHour: 50,
		Duration:          2 * time.Hour,
		Diurnal:           workload.FlatDiurnal(),
		Scaler:            scaler,
		Access:            network.UrbanBroadband,
		Crowds: []workload.FlashCrowd{{
			Start: 30 * time.Minute, End: 90 * time.Minute,
			Mult: 10, ExamTraffic: true,
		}},
	}
}

// steadyTeaching returns a 2h steady-load configuration.
func steadyTeaching(seed uint64, kind deploy.Kind) scenario.Config {
	return scenario.Config{
		Seed:              seed,
		Kind:              kind,
		Students:          desStudents,
		ReqPerStudentHour: 50,
		Duration:          2 * time.Hour,
		Diurnal:           workload.FlatDiurnal(),
		Access:            network.UrbanBroadband,
	}
}

// semester returns the standard-semester fluid configuration.
func semester(seed uint64, kind deploy.Kind, students int) scenario.Config {
	sem := workload.StandardSemester()
	return scenario.Config{
		Seed:     seed,
		Kind:     kind,
		Students: students,
		Duration: sem.Duration(),
		Calendar: sem,
	}
}
