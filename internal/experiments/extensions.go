package experiments

import (
	"fmt"
	"time"

	"elearncloud/internal/cost"
	"elearncloud/internal/deploy"
	"elearncloud/internal/federate"
	"elearncloud/internal/metrics"
	"elearncloud/internal/scenario"
	"elearncloud/internal/workload"
)

// This file holds the reproduction's extension experiments: questions
// the paper raises but does not answer, built on the same substrates.
//
//   - Table 7:  the "national private cloud system" (§IV.C/§V) as a
//     federation of institutions sharing one datacenter.
//   - Figure 8: a CDN in front of the public model — the period-correct
//     answer to Figure 3's egress-dominated public bill.
//   - Figure 9: physical damage to the on-premise unit (§IV.B), injected
//     live into a running private deployment.

// Table7Federation studies a national shared private cloud for staggered
// member institutions.
func Table7Federation(seed uint64, _ *scenario.Pool) (*metrics.Table, error) {
	res, err := federate.Study(federate.Config{Members: []federate.Member{
		{Name: "capital-university", Students: 12000, CalendarShiftWeeks: 0},
		{Name: "coastal-college", Students: 4000, CalendarShiftWeeks: 2},
		{Name: "inland-college", Students: 3000, CalendarShiftWeeks: 4},
		{Name: "rural-schools-consortium", Students: 2000, CalendarShiftWeeks: 6},
	}})
	if err != nil {
		return nil, err
	}
	t := res.Table("Table 7: national shared private cloud vs standalone deployments (§IV.C/§V)")
	t.AddNote("seed=%d (analytic); calendars staggered by region so exam peaks do not coincide", seed)
	return t, nil
}

// Figure8CDN reprices the public model with an edge CDN across
// institution sizes and reports how far the Figure 3 crossover moves.
func Figure8CDN(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	t := metrics.NewTable(
		"Figure 8: CDN ablation — semester TCO per student (extension of Figure 3)",
		"students", "public $/st/mo", "public+CDN $/st/mo", "private $/st/mo", "cheapest")
	populations := []int{200, 600, 2000, 5000, 20000}
	batch := scenario.NewBatch(seed)
	for _, n := range populations {
		batch.AddFluid(fmt.Sprintf("public/%d", n), semester(seed, deploy.Public, n))
		cfgCDN := semester(seed, deploy.Public, n)
		cfgCDN.EnableCDN = true
		batch.AddFluid(fmt.Sprintf("public-cdn/%d", n), cfgCDN)
		batch.AddFluid(fmt.Sprintf("private/%d", n), semester(seed, deploy.Private, n))
	}
	runs, err := batch.RunOn(pool)
	if err != nil {
		return nil, err
	}
	var hitRatio float64
	var crossover int
	for _, n := range populations {
		pub := runs.Fluid(fmt.Sprintf("public/%d", n))
		pubCDN := runs.Fluid(fmt.Sprintf("public-cdn/%d", n))
		priv := runs.Fluid(fmt.Sprintf("private/%d", n))
		hitRatio = pubCDN.CDNHitRatio
		costs := map[string]float64{
			"public":     pub.CostPerStudentMonth(n),
			"public+cdn": pubCDN.CostPerStudentMonth(n),
			"private":    priv.CostPerStudentMonth(n),
		}
		cheapest := "public"
		for name, c := range costs {
			if c < costs[cheapest] {
				cheapest = name
			}
		}
		if crossover == 0 && costs["private"] < costs["public+cdn"] {
			crossover = n
		}
		t.AddRow(n,
			fmt.Sprintf("%.2f", costs["public"]),
			fmt.Sprintf("%.2f", costs["public+cdn"]),
			fmt.Sprintf("%.2f", costs["private"]),
			cheapest)
	}
	t.AddNote("seed=%d; analytic edge hit ratio %.0f%% (Zipf-1 popularity, quarter-catalog cache)",
		seed, hitRatio*100)
	if crossover > 0 {
		t.AddNote("with the CDN the public/private crossover moves from ~600 to ~%d students", crossover)
	}
	t.AddNote("this is how 2013 platforms actually shipped video: CDN delivery at ~half raw egress price")
	return t, nil
}

// Table8PurchaseMix ablates the public model's purchase strategy:
// all on-demand, the breakeven-optimal reserved mix, and all reserved,
// over a standard semester — the purchase-mix design decision the
// public-cost model leaves open (see ARCHITECTURE.md).
func Table8PurchaseMix(seed uint64, _ *scenario.Pool) (*metrics.Table, error) {
	res, err := scenario.FluidRun(semester(seed, deploy.Public, collegeStudents))
	if err != nil {
		return nil, err
	}
	rates := costRates()
	months := res.Duration.Hours() / 730
	strategies := []struct {
		name string
		mix  cost.PurchaseMix
	}{
		{"all on-demand", cost.AllOnDemandMix(res.ServerRankHours)},
		{"optimal mix", cost.OptimizeReservedMix(res.ServerRankHours, months, rates.Public)},
		{"all reserved", cost.AllReservedMix(res.ServerRankHours, months)},
	}
	t := metrics.NewTable(
		"Table 8: reserved vs on-demand purchase mix (public model, one semester)",
		"strategy", "reserved slots", "compute cost", "vs on-demand")
	base := strategies[0].mix.ComputeUSD(rates.Public)
	for _, s := range strategies {
		c := s.mix.ComputeUSD(rates.Public)
		delta := "-"
		if base > 0 {
			delta = metrics.FmtPercent((c - base) / base)
		}
		t.AddRow(s.name, s.mix.Reserved, metrics.FmtDollars(c), delta)
	}
	t.AddNote("seed=%d; breakeven at %.0f h/month; duration curve from the semester fluid run",
		seed, cost.BreakevenMonthlyHours(rates.Public))
	t.AddNote("reserve the base that runs all semester, burst the exam peaks on demand")
	return t, nil
}

func costRates() cost.Rates { return cost.DefaultRates() }

// Figure9HostFailure destroys private host 0 in the middle of an exam
// crowd — the §IV.B "physical damage of the unit", at the worst possible
// moment — and measures the user-visible damage for private and hybrid
// deployments against undisturbed references.
func Figure9HostFailure(seed uint64, pool *scenario.Pool) (*metrics.Table, error) {
	t := metrics.NewTable(
		"Figure 9: the server room dies mid-finals (§IV.B physical damage)",
		"model", "killed jobs", "error rate", "p99", "note")
	baseCfg := func(kind deploy.Kind, fail bool) scenario.Config {
		cfg := scenario.Config{
			Seed:              seed,
			Kind:              kind,
			Students:          desStudents,
			ReqPerStudentHour: 50,
			Duration:          3 * time.Hour,
			Diurnal:           workload.FlatDiurnal(),
			Crowds: []workload.FlashCrowd{{
				Start: 1 * time.Hour, End: 2 * time.Hour,
				Mult: 10, ExamTraffic: true,
			}},
		}
		if fail {
			// The flood hits 30 minutes into the exam; repair takes an
			// hour.
			cfg.HostFailureAt = 90 * time.Minute
			cfg.HostRecoveryAfter = time.Hour
		}
		return cfg
	}
	rows := []struct {
		name string
		kind deploy.Kind
		fail bool
		note string
	}{
		{"private-fail", deploy.Private, true, "loses its main host mid-exam"},
		{"hybrid-fail", deploy.Hybrid, true, "loses a host; bursts to public"},
		{"private-ref", deploy.Private, false, "undisturbed reference"},
		{"public-ref", deploy.Public, false, "provider absorbs hardware loss"},
	}
	batch := scenario.NewBatch(seed)
	for _, r := range rows {
		batch.Add(r.name, baseCfg(r.kind, r.fail))
	}
	runs, err := batch.RunOn(pool)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		res := runs.Result(r.name)
		t.AddRow(res.Kind.String(),
			res.KilledJobs,
			metrics.FmtPercent(res.ErrorRate()),
			metrics.FmtMillis(res.Latency.P99()),
			r.note)
	}
	t.AddNote("seed=%d; 10x exam crowd 1h-2h; host 0 fails at 1h30m, repaired at 2h30m; %d students",
		seed, desStudents)
	return t, nil
}
