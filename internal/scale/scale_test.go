package scale

import (
	"testing"
	"time"

	"elearncloud/internal/sim"
)

// fakeTarget is a controllable Target for scaler tests.
type fakeTarget struct {
	desired int
	load    float64
	calls   []int
}

func (f *fakeTarget) Desired() int  { return f.desired }
func (f *fakeTarget) Load() float64 { return f.load }
func (f *fakeTarget) ScaleTo(n int) { f.desired = n; f.calls = append(f.calls, n) }

func TestFixedDoesNothing(t *testing.T) {
	eng := sim.NewEngine(1)
	var fx Fixed
	stop := fx.Start(eng)
	if err := eng.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	stop()
	if fx.Name() != "fixed" {
		t.Fatal("name wrong")
	}
}

func TestReactiveScalesOutUnderLoad(t *testing.T) {
	eng := sim.NewEngine(1)
	ft := &fakeTarget{desired: 2, load: 20}
	r := NewReactive(ft, ReactiveConfig{Interval: time.Minute, UpThreshold: 8, Step: 2, Max: 10})
	stop := r.Start(eng)
	defer stop()
	if err := eng.Run(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ft.desired != 4 {
		t.Fatalf("desired = %d, want 4 after one scale-out", ft.desired)
	}
}

func TestReactiveCooldownLimitsScaleOuts(t *testing.T) {
	eng := sim.NewEngine(1)
	ft := &fakeTarget{desired: 2, load: 50}
	r := NewReactive(ft, ReactiveConfig{
		Interval: time.Minute, UpThreshold: 8, Step: 2, Cooldown: 10 * time.Minute, Max: 100,
	})
	stop := r.Start(eng)
	defer stop()
	if err := eng.Run(9 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(ft.calls) != 1 {
		t.Fatalf("scale-outs = %d, want 1 within cooldown", len(ft.calls))
	}
}

func TestReactiveScalesInWhenCold(t *testing.T) {
	eng := sim.NewEngine(1)
	ft := &fakeTarget{desired: 5, load: 0.5}
	r := NewReactive(ft, ReactiveConfig{Interval: time.Minute, DownThreshold: 2, Min: 2})
	stop := r.Start(eng)
	defer stop()
	if err := eng.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if ft.desired != 2 {
		t.Fatalf("desired = %d, want scale-in to Min=2", ft.desired)
	}
}

func TestReactiveRespectsMax(t *testing.T) {
	eng := sim.NewEngine(1)
	ft := &fakeTarget{desired: 3, load: 100}
	r := NewReactive(ft, ReactiveConfig{
		Interval: time.Minute, UpThreshold: 1, Step: 10, Max: 5, Cooldown: time.Minute,
	})
	stop := r.Start(eng)
	defer stop()
	if err := eng.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if ft.desired != 5 {
		t.Fatalf("desired = %d, want clamped to 5", ft.desired)
	}
}

func TestReactiveIdleBandHolds(t *testing.T) {
	eng := sim.NewEngine(1)
	ft := &fakeTarget{desired: 3, load: 5} // between thresholds
	r := NewReactive(ft, ReactiveConfig{Interval: time.Minute, UpThreshold: 8, DownThreshold: 2})
	stop := r.Start(eng)
	defer stop()
	if err := eng.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(ft.calls) != 0 {
		t.Fatalf("scaler acted %d times in the dead band", len(ft.calls))
	}
}

func TestScheduledFollowsPlan(t *testing.T) {
	eng := sim.NewEngine(1)
	ft := &fakeTarget{desired: 1}
	plan := func(tod time.Duration) int {
		if tod >= 9*time.Hour && tod < 17*time.Hour {
			return 8
		}
		return 2
	}
	s := NewScheduled(ft, plan, 30*time.Minute, 1, 0)
	stop := s.Start(eng)
	defer stop()
	if err := eng.Run(10 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if ft.desired != 8 {
		t.Fatalf("desired at 10:00 = %d, want 8", ft.desired)
	}
	if err := eng.Run(20 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if ft.desired != 2 {
		t.Fatalf("desired at 20:00 = %d, want 2", ft.desired)
	}
	if s.Name() != "scheduled" {
		t.Fatal("name wrong")
	}
}

func TestPredictiveTracksRamp(t *testing.T) {
	eng := sim.NewEngine(1)
	ft := &fakeTarget{desired: 1, load: 1}
	p := NewPredictive(ft, PredictiveConfig{
		Interval: time.Minute, Lead: 5 * time.Minute, PerServer: 6, Max: 100,
	})
	stop := p.Start(eng)
	defer stop()
	// Demand doubles every few minutes: per-server load stays high as the
	// fake target's load does not decrease with more servers, modeling a
	// steep ramp.
	rampStop := eng.Every(time.Minute, "ramp", func() { ft.load *= 1.5 })
	defer rampStop()
	if err := eng.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if ft.desired <= 1 {
		t.Fatalf("predictive never scaled out (desired=%d)", ft.desired)
	}
	if p.Forecast() <= 0 {
		t.Fatal("forecast not positive under growth")
	}
	if p.Name() != "predictive" {
		t.Fatal("name wrong")
	}
}

func TestPredictiveScalesInAfterPeak(t *testing.T) {
	eng := sim.NewEngine(1)
	ft := &fakeTarget{desired: 10, load: 12}
	p := NewPredictive(ft, PredictiveConfig{
		Interval: time.Minute, Lead: 2 * time.Minute, PerServer: 6, Min: 2, Max: 50,
	})
	stop := p.Start(eng)
	defer stop()
	eng.Schedule(5*time.Minute, "quiet", func() { ft.load = 0.1 })
	if err := eng.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if ft.desired > 3 {
		t.Fatalf("desired = %d, want scale-in toward Min after load vanished", ft.desired)
	}
}

func TestConstructorsPanicOnNil(t *testing.T) {
	for name, fn := range map[string]func(){
		"reactive":        func() { NewReactive(nil, ReactiveConfig{}) },
		"scheduled nil t": func() { NewScheduled(nil, func(time.Duration) int { return 1 }, 0, 0, 0) },
		"scheduled nil p": func() { NewScheduled(&fakeTarget{}, nil, 0, 0, 0) },
		"predictive":      func() { NewPredictive(nil, PredictiveConfig{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDescribe(t *testing.T) {
	if Describe(Fixed{}) != "autoscaler=fixed" {
		t.Fatal("Describe wrong")
	}
}

func TestReactiveConfigDefaults(t *testing.T) {
	var cfg ReactiveConfig
	cfg.defaults()
	if cfg.Interval <= 0 || cfg.UpThreshold <= cfg.DownThreshold || cfg.Step <= 0 || cfg.Min < 1 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
	// Inverted thresholds are repaired.
	cfg = ReactiveConfig{UpThreshold: 2, DownThreshold: 5}
	cfg.defaults()
	if cfg.DownThreshold >= cfg.UpThreshold {
		t.Fatalf("thresholds not repaired: %+v", cfg)
	}
}
