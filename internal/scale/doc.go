// Package scale provides the elasticity substrate: autoscaling
// policies that grow and shrink an application-server fleet in
// response to load. The paper credits cloud e-learning with "improved
// performance" and the public model with being the "quickest
// solution"; these scalers are the mechanism behind that claim, and
// table5 ablates them against a fixed fleet through an exam flash
// crowd (figure4 shows the utilization consequence of not scaling).
//
// Entry points: an Autoscaler observes a Target (the fleet's current
// size and load — the scenario package's cluster satisfies it) and
// decides the next fleet size. Four policies are provided:
//
//   - Fixed — the non-elastic baseline, a fleet sized once.
//   - NewReactive — follow measured utilization up and down with
//     configurable headroom and cooldown (ReactiveConfig).
//   - NewScheduled — a clock-driven plan (capacity by time of day),
//     the "we know when lectures are" policy.
//   - NewPredictive — trend extrapolation with a reactive fallback
//     (PredictiveConfig); it provisions ahead of the ramp but still
//     overshoots a cliff-shaped crowd, which table5 makes visible.
//
// Describe(a) names a policy for table rendering. Scalers only decide
// sizes; provisioning latency and cost live in cloud and cost.
package scale
