package scale

import (
	"fmt"
	"math"
	"time"

	"elearncloud/internal/sim"
)

// Target abstracts the fleet a scaler controls. The scenario package
// implements it by provisioning/retiring app servers on datacenters.
type Target interface {
	// Desired returns the currently requested server count (including
	// servers still booting).
	Desired() int
	// ScaleTo requests a fleet size; implementations clamp to their own
	// capacity limits (a private datacenter may be full).
	ScaleTo(n int)
	// Load returns the mean in-flight requests per accepting server —
	// the utilization signal scalers act on.
	Load() float64
}

// Autoscaler periodically adjusts a Target.
type Autoscaler interface {
	// Name identifies the policy in reports.
	Name() string
	// Start begins periodic control on the engine and returns a stop
	// function.
	Start(eng *sim.Engine) (stop func())
}

// clamp bounds n to [min, max] (max <= 0 means unbounded above).
func clamp(n, min, max int) int {
	if n < min {
		n = min
	}
	if max > 0 && n > max {
		n = max
	}
	return n
}

// Fixed is the no-op policy: the fleet stays at its bootstrap size. It is
// the paper's private-cloud reality — capacity procured up front.
type Fixed struct{}

// Name implements Autoscaler.
func (Fixed) Name() string { return "fixed" }

// Start implements Autoscaler; it does nothing and returns a no-op stop.
func (Fixed) Start(*sim.Engine) func() { return func() {} }

// ReactiveConfig parameterizes the threshold scaler.
type ReactiveConfig struct {
	// Interval between control decisions (default 1 minute).
	Interval time.Duration
	// UpThreshold: scale out when Load exceeds it (default 8).
	UpThreshold float64
	// DownThreshold: scale in when Load falls below it (default 2).
	DownThreshold float64
	// Step servers added per scale-out (default 2); scale-in removes one
	// server at a time (conservative, avoids oscillation).
	Step int
	// Min/Max fleet bounds (Min default 1; Max 0 = unbounded).
	Min, Max int
	// Cooldown after a scale-out before the next one (default 2m).
	Cooldown time.Duration
}

func (c *ReactiveConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = time.Minute
	}
	if c.UpThreshold <= 0 {
		c.UpThreshold = 8
	}
	if c.DownThreshold <= 0 {
		c.DownThreshold = 2
	}
	if c.DownThreshold >= c.UpThreshold {
		c.DownThreshold = c.UpThreshold / 4
	}
	if c.Step <= 0 {
		c.Step = 2
	}
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Minute
	}
}

// Reactive is a threshold autoscaler: scale out fast when hot, scale in
// slowly when cold — the classic public-cloud control loop.
type Reactive struct {
	target       Target
	cfg          ReactiveConfig
	lastScaleOut sim.Time
}

// NewReactive builds a reactive scaler around target.
func NewReactive(target Target, cfg ReactiveConfig) *Reactive {
	if target == nil {
		panic("scale: NewReactive with nil target")
	}
	cfg.defaults()
	return &Reactive{target: target, cfg: cfg, lastScaleOut: -1 << 60}
}

// Name implements Autoscaler.
func (r *Reactive) Name() string { return "reactive" }

// Start implements Autoscaler.
func (r *Reactive) Start(eng *sim.Engine) func() {
	return eng.Every(r.cfg.Interval, "scale/reactive", func() { r.tick(eng) })
}

// tick is one control decision. GrowthFit delegates here verbatim while
// its fit is unstable, which is what makes the fallback contract
// byte-identical to a plain Reactive run.
func (r *Reactive) tick(eng *sim.Engine) {
	load := r.target.Load()
	cur := r.target.Desired()
	switch {
	case load > r.cfg.UpThreshold:
		if eng.Now()-r.lastScaleOut < r.cfg.Cooldown {
			return
		}
		r.target.ScaleTo(clamp(cur+r.cfg.Step, r.cfg.Min, r.cfg.Max))
		r.lastScaleOut = eng.Now()
	case load < r.cfg.DownThreshold && cur > r.cfg.Min:
		r.target.ScaleTo(clamp(cur-1, r.cfg.Min, r.cfg.Max))
	}
}

// Scheduled scales to a time-of-day plan: capacity follows the timetable
// (lectures at 10:00, homework at 20:00) regardless of observed load.
type Scheduled struct {
	target Target
	// plan maps a time-of-day to the desired fleet size.
	plan     func(sinceMidnight time.Duration) int
	interval time.Duration
	min, max int
}

// NewScheduled builds a plan-following scaler. plan must not be nil.
func NewScheduled(target Target, plan func(sinceMidnight time.Duration) int, interval time.Duration, min, max int) *Scheduled {
	if target == nil || plan == nil {
		panic("scale: NewScheduled with nil target or plan")
	}
	if interval <= 0 {
		interval = 5 * time.Minute
	}
	if min <= 0 {
		min = 1
	}
	return &Scheduled{target: target, plan: plan, interval: interval, min: min, max: max}
}

// Name implements Autoscaler.
func (s *Scheduled) Name() string { return "scheduled" }

// Start implements Autoscaler.
func (s *Scheduled) Start(eng *sim.Engine) func() {
	const day = 24 * time.Hour
	return eng.Every(s.interval, "scale/scheduled", func() {
		want := clamp(s.plan(eng.Now()%day), s.min, s.max)
		if want != s.target.Desired() {
			s.target.ScaleTo(want)
		}
	})
}

// PredictiveConfig parameterizes the forecasting scaler.
type PredictiveConfig struct {
	// Interval between observations (default 1 minute).
	Interval time.Duration
	// Alpha and Beta are Holt's smoothing constants for level and trend
	// (defaults 0.5 / 0.2).
	Alpha, Beta float64
	// Lead is how far ahead to provision for (default 5 minutes — about
	// one VM boot time ahead, which is the point of predicting).
	Lead time.Duration
	// PerServer is the in-flight requests one server should carry at the
	// provisioning target (default 6).
	PerServer float64
	// Min/Max fleet bounds.
	Min, Max int
}

func (c *PredictiveConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = time.Minute
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.Beta <= 0 || c.Beta > 1 {
		c.Beta = 0.2
	}
	if c.Lead <= 0 {
		c.Lead = 5 * time.Minute
	}
	if c.PerServer <= 0 {
		c.PerServer = 6
	}
	if c.Min <= 0 {
		c.Min = 1
	}
}

// Predictive forecasts total in-flight demand with Holt's linear
// exponential smoothing and provisions ahead of the trend, absorbing VM
// boot latency.
type Predictive struct {
	target Target
	cfg    PredictiveConfig

	level, trend float64
	initialized  bool
}

// NewPredictive builds a forecasting scaler around target.
func NewPredictive(target Target, cfg PredictiveConfig) *Predictive {
	if target == nil {
		panic("scale: NewPredictive with nil target")
	}
	cfg.defaults()
	return &Predictive{target: target, cfg: cfg}
}

// Name implements Autoscaler.
func (p *Predictive) Name() string { return "predictive" }

// Forecast returns the current demand forecast at the configured lead
// (exported for tests and reports).
func (p *Predictive) Forecast() float64 {
	steps := float64(p.cfg.Lead) / float64(p.cfg.Interval)
	return p.level + p.trend*steps
}

// Start implements Autoscaler.
func (p *Predictive) Start(eng *sim.Engine) func() {
	return eng.Every(p.cfg.Interval, "scale/predictive", func() {
		// Observed total demand: per-server load times fleet size.
		observed := p.target.Load() * float64(maxInt(p.target.Desired(), 1))
		if !p.initialized {
			p.level, p.trend, p.initialized = observed, 0, true
			return
		}
		prevLevel := p.level
		p.level = p.cfg.Alpha*observed + (1-p.cfg.Alpha)*(p.level+p.trend)
		p.trend = p.cfg.Beta*(p.level-prevLevel) + (1-p.cfg.Beta)*p.trend
		forecast := p.Forecast()
		if forecast < 0 {
			forecast = 0
		}
		want := clamp(int(math.Ceil(forecast/p.cfg.PerServer)), p.cfg.Min, p.cfg.Max)
		if want != p.target.Desired() {
			p.target.ScaleTo(want)
		}
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String renders a short description for experiment notes.
func Describe(a Autoscaler) string {
	return fmt.Sprintf("autoscaler=%s", a.Name())
}
