package scale

import (
	"math"
	"testing"
	"time"

	"elearncloud/internal/sim"
	"elearncloud/internal/workload"
)

// nhppRates Poisson-samples an arrival-count series from the growth
// curve: rate(t) = curve.At(t)·perStudentHour/3600, binned per minute,
// observed as counts/60s — exactly what an ArrivalMeter-backed fitter
// sees. Deterministic per seed via the repo's splitmix64 RNG.
func nhppRates(seed uint64, g *workload.Growth, perStudentHour float64, bins int) (times, rates []float64) {
	rng := sim.NewRNG(sim.SeedFor(seed, "growthfit/nhpp"))
	for i := 0; i < bins; i++ {
		t := float64(i+1) * 60
		lambda := g.At(time.Duration(t)*time.Second) * perStudentHour / 3600
		n := rng.Poisson(lambda * 60)
		times = append(times, t)
		rates = append(rates, float64(n)/60)
	}
	return times, rates
}

// propertySeeds is the seed sweep for the recovery properties: 20
// distinct NHPP sample paths per shape.
func propertySeeds() []uint64 {
	seeds := make([]uint64, 20)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

// TestFitRecoversLogisticParams: across 20 NHPP sample paths of a
// logistic enrollment curve (500→4000 students, midpoint 40m, observed
// for 80m at 50 req/student-h), the fitter must pick the logistic
// shape and recover the plateau rate within 15% and the midpoint
// within 15% on every path. The bins hold thousands of arrivals, so
// Poisson noise is ~2% — the bound is dominated by the plateau grid's
// resolution, not the sampling.
func TestFitRecoversLogisticParams(t *testing.T) {
	curve := workload.LogisticGrowth(500, 4000, 40*time.Minute)
	const perStudentHour = 50
	trueFinal := 4000 * perStudentHour / 3600.0
	trueMid := (40 * time.Minute).Seconds()

	for _, seed := range propertySeeds() {
		times, rates := nhppRates(seed, curve, perStudentHour, 80)
		fit := FitGrowth(times, rates)
		if fit.Shape != FitLogistic {
			t.Fatalf("seed %d: shape = %v, want logistic (fit %v)", seed, fit.Shape, fit)
		}
		if relErr := math.Abs(fit.Final-trueFinal) / trueFinal; relErr > 0.15 {
			t.Errorf("seed %d: plateau rate %.2f vs true %.2f (rel err %.3f > 0.15)",
				seed, fit.Final, trueFinal, relErr)
		}
		if relErr := math.Abs(fit.Midpoint.Seconds()-trueMid) / trueMid; relErr > 0.15 {
			t.Errorf("seed %d: midpoint %v vs true 40m (rel err %.3f > 0.15)",
				seed, fit.Midpoint, relErr)
		}
		if !(fit.Residual < 0.15) {
			t.Errorf("seed %d: residual %.3f not under the stability threshold", seed, fit.Residual)
		}
	}
}

// TestFitRecoversLinearParams: across 20 NHPP sample paths of a cohort
// ramp (1000→8000 students over 2h, observed for 90m), the recovered
// curve must track the true rate within 10% at every probe point. The
// shape itself is allowed to come out logistic on some paths — a
// logistic with a distant plateau is locally a line, and the extra
// parameter can win the residual by luck — but when the linear shape
// is chosen its slope must be within 10% of the truth, and the linear
// choice must win on at least 15 of the 20 paths.
func TestFitRecoversLinearParams(t *testing.T) {
	curve := workload.LinearGrowth(1000, 8000, 2*time.Hour)
	const perStudentHour = 50
	trueSlope := (8000 - 1000) * perStudentHour / 3600.0 / (2 * time.Hour).Seconds()

	linearWins := 0
	for _, seed := range propertySeeds() {
		times, rates := nhppRates(seed, curve, perStudentHour, 90)
		fit := FitGrowth(times, rates)
		if fit.Shape == FitLinear {
			linearWins++
			if relErr := math.Abs(fit.Slope-trueSlope) / trueSlope; relErr > 0.10 {
				t.Errorf("seed %d: slope %.5f vs true %.5f (rel err %.3f > 0.10)",
					seed, fit.Slope, trueSlope, relErr)
			}
		}
		for _, probe := range []float64{10 * 60, 45 * 60, 85 * 60} {
			trueRate := curve.At(time.Duration(probe)*time.Second) * perStudentHour / 3600
			if relErr := math.Abs(fit.Rate(probe)-trueRate) / trueRate; relErr > 0.10 {
				t.Errorf("seed %d: rate(%.0fs) = %.2f vs true %.2f (rel err %.3f > 0.10, shape %v)",
					seed, probe, fit.Rate(probe), trueRate, relErr, fit.Shape)
			}
		}
	}
	if linearWins < 15 {
		t.Errorf("linear shape chosen on %d/20 paths, want >= 15", linearWins)
	}
}

// TestFitMidpointConvergesBeforeHalfCapacity pins the property the
// scaler's lead time depends on: feeding the fitter its observations
// online (45-sample window, the scaler's defaults), the logistic fit
// stabilizes with a midpoint estimate within 20% of the truth before
// the curve actually crosses half capacity — i.e. the cliff is
// projected while there is still time to boot for it.
func TestFitMidpointConvergesBeforeHalfCapacity(t *testing.T) {
	curve := workload.LogisticGrowth(500, 4000, 40*time.Minute)
	const perStudentHour = 50
	trueMid := (40 * time.Minute).Seconds()

	for _, seed := range propertySeeds() {
		times, rates := nhppRates(seed, curve, perStudentHour, 80)
		converged := math.Inf(1)
		for i := 10; i <= len(times); i++ {
			lo := 0
			if i > 45 {
				lo = i - 45
			}
			fit := FitGrowth(times[lo:i], rates[lo:i])
			if fit.Shape != FitLogistic || fit.Residual > 0.15 {
				continue
			}
			if math.Abs(fit.Midpoint.Seconds()-trueMid)/trueMid <= 0.20 {
				converged = times[i-1]
				break
			}
		}
		if converged >= trueMid {
			t.Errorf("seed %d: midpoint estimate converged at t=%.0fs, not before the true crossing at %.0fs",
				seed, converged, trueMid)
		}
	}
}

// erraticScript is a load sequence no growth shape describes: bursts
// alternating with idle, keeping the fit's relative residual far above
// the stability threshold.
func erraticScript() []float64 {
	rng := sim.NewRNG(sim.SeedFor(7, "growthfit/erratic"))
	script := make([]float64, 64)
	for i := range script {
		if rng.Bernoulli(0.5) {
			script[i] = 20 + 10*rng.Float64()
		} else {
			script[i] = 0.2 * rng.Float64()
		}
	}
	return script
}

// TestGrowthFitFallbackByteIdentical pins the fallback contract: on a
// workload the shapes cannot describe (residual stays above threshold)
// GrowthFit must issue the exact ScaleTo sequence a plain Reactive
// with the same knobs issues — not similar, identical.
func TestGrowthFitFallbackByteIdentical(t *testing.T) {
	cfg := ReactiveConfig{
		Interval: time.Minute, UpThreshold: 8, DownThreshold: 2,
		Step: 2, Min: 1, Max: 40, Cooldown: 2 * time.Minute,
	}
	script := erraticScript()

	run := func(build func(tgt Target) Autoscaler) []int {
		eng := sim.NewEngine(1)
		tgt := &fakeTarget{desired: 3}
		// The script drives the load per minute, as a fleet's state would;
		// Load() itself is idempotent within a tick, matching the real
		// Target contract (GrowthFit reads it twice per decision).
		i := 0
		drive := eng.Every(time.Minute, "script", func() {
			tgt.load = script[i%len(script)]
			i++
		})
		defer drive()
		s := build(tgt)
		stop := s.Start(eng)
		defer stop()
		if err := eng.Run(3 * time.Hour); err != nil {
			t.Fatal(err)
		}
		return tgt.calls
	}

	reactive := run(func(tgt Target) Autoscaler { return NewReactive(tgt, cfg) })
	growthfit := run(func(tgt Target) Autoscaler {
		return NewGrowthFit(tgt, GrowthFitConfig{
			Interval: cfg.Interval, MeanService: 0.1, Min: cfg.Min, Max: cfg.Max,
			Fallback: cfg,
		})
	})

	if len(reactive) != len(growthfit) {
		t.Fatalf("action counts differ: reactive %d, growth-fit %d", len(reactive), len(growthfit))
	}
	for i := range reactive {
		if reactive[i] != growthfit[i] {
			t.Fatalf("action %d differs: reactive ScaleTo(%d), growth-fit ScaleTo(%d)",
				i, reactive[i], growthfit[i])
		}
	}
}

// meteredTarget gives GrowthFit an ArrivalMeter whose counter follows a
// deterministic rate function, for testing the metered observation
// path without a cluster.
type meteredTarget struct {
	fakeTarget
	count uint64
}

func (m *meteredTarget) Arrivals() uint64 { return m.count }

// TestGrowthFitProvisionsAheadOfRamp drives the metered path: arrivals
// accelerate along a linear ramp, and once the fit stabilizes the
// scaler must provision for the projected rate a lead ahead — strictly
// more than the current rate needs.
func TestGrowthFitProvisionsAheadOfRamp(t *testing.T) {
	eng := sim.NewEngine(1)
	tgt := &meteredTarget{}
	tgt.desired = 1
	const meanSvc = 0.1
	g := NewGrowthFit(tgt, GrowthFitConfig{
		Interval: time.Minute, Lead: 10 * time.Minute, MeanService: meanSvc,
		Util: 0.6, Min: 1, Max: 1000,
	})
	stop := g.Start(eng)
	defer stop()
	// rate(t) = 10 + t/60 req/s: feed the counter just before each tick.
	feed := eng.Every(time.Minute, "feed", func() {
		rate := 10 + sim.ToSeconds(eng.Now())/60
		tgt.count += uint64(rate * 60)
	})
	defer feed()
	if err := eng.Run(40 * time.Minute); err != nil {
		t.Fatal(err)
	}
	fit := g.Fit()
	if !fit.Stable || fit.Shape != FitLinear {
		t.Fatalf("fit did not stabilize on the ramp: %+v", fit)
	}
	nowRate := 10 + sim.ToSeconds(eng.Now())/60
	nowNeed := int(math.Ceil(nowRate * meanSvc / 0.6))
	if tgt.desired <= nowNeed {
		t.Fatalf("desired = %d, want > %d (provisioned ahead of the ramp)", tgt.desired, nowNeed)
	}
	if g.LastStable().Shape != FitLinear {
		t.Fatalf("LastStable = %+v, want the linear fit", g.LastStable())
	}
	if g.Name() != "growth-fit" {
		t.Fatal("name wrong")
	}
}

// TestGrowthFitClampsMeterDip pins the defensive clamp on the metered
// path: the ArrivalMeter contract is monotone, but if a meter ever dips
// (the bug class: a counter derived from served+rejected+active sums
// while servers drain), the unsigned difference must degrade to a zero
// rate observation — not wrap to ~1.8e19 and poison the fit window.
func TestGrowthFitClampsMeterDip(t *testing.T) {
	eng := sim.NewEngine(1)
	tgt := &meteredTarget{}
	tgt.desired = 1
	g := NewGrowthFit(tgt, GrowthFitConfig{
		Interval: time.Minute, MeanService: 0.1, Min: 1, Max: 1000,
	})
	stop := g.Start(eng)
	defer stop()
	// Grow the counter, then dip it mid-run (a scale-in drain), then
	// resume growing.
	counts := []uint64{600, 1200, 1800, 1500, 2100, 2700}
	i := 0
	feed := eng.Every(time.Minute, "feed", func() {
		if i < len(counts) {
			tgt.count = counts[i]
			i++
		}
	})
	defer feed()
	if err := eng.Run(time.Duration(len(counts)) * time.Minute); err != nil {
		t.Fatal(err)
	}
	for j, r := range g.rates {
		if r < 0 || r > 1e6 {
			t.Fatalf("rate observation %d = %g; a meter dip wrapped the unsigned delta", j, r)
		}
	}
	if min := minFloat(g.rates); min != 0 {
		t.Fatalf("dip tick observed rate %g, want clamped 0", min)
	}
}

func minFloat(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// TestOracleBootsBeforePlanRise pins the oracle's lead semantics: a
// step in the plan at t=30m must be provisioned a full lead early, and
// scale-in must wait until the demand has passed — the max over
// [now, now+lead], not the value at now+lead.
func TestOracleBootsBeforePlanRise(t *testing.T) {
	eng := sim.NewEngine(1)
	tgt := &fakeTarget{desired: 1}
	plan := func(at time.Duration) int {
		if at >= 30*time.Minute && at < 60*time.Minute {
			return 9
		}
		return 2
	}
	o := NewOracle(tgt, plan, time.Minute, 5*time.Minute, 1, 0)
	stop := o.Start(eng)
	defer stop()

	if err := eng.Run(26 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if tgt.desired != 9 {
		t.Fatalf("desired at 26m = %d, want 9 (booted a lead before the 30m rise)", tgt.desired)
	}
	// At 56m the window [56m, 61m] still overlaps the demand plateau's
	// final minutes... it ends at 60m, so the max keeps 9 until 59m.
	if err := eng.Run(58 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if tgt.desired != 9 {
		t.Fatalf("desired at 58m = %d, want 9 (scale-in must wait for the demand to pass)", tgt.desired)
	}
	if err := eng.Run(65 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if tgt.desired != 2 {
		t.Fatalf("desired at 65m = %d, want 2 after the plateau", tgt.desired)
	}
	if o.Name() != "oracle" {
		t.Fatal("name wrong")
	}
}

func TestFitGrowthDegenerateInputs(t *testing.T) {
	if fit := FitGrowth(nil, nil); !math.IsInf(fit.Residual, 1) || fit.Shape != FitNone {
		t.Fatalf("empty input: %+v", fit)
	}
	if fit := FitGrowth([]float64{1, 2}, []float64{1, 2}); !math.IsInf(fit.Residual, 1) {
		t.Fatalf("two points: %+v", fit)
	}
	if fit := FitGrowth([]float64{1, 2, 3}, []float64{0, 0, 0}); !math.IsInf(fit.Residual, 1) {
		t.Fatalf("all-zero rates: %+v", fit)
	}
	if s := (FitReport{}).String(); s != "no fit" {
		t.Fatalf("zero report renders %q", s)
	}
	if FitNone.String() != "none" || FitLinear.String() != "linear" || FitLogistic.String() != "logistic" {
		t.Fatal("shape names wrong")
	}
}

func TestGrowthFitConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil target":      func() { NewGrowthFit(nil, GrowthFitConfig{MeanService: 0.1}) },
		"no mean service": func() { NewGrowthFit(&fakeTarget{}, GrowthFitConfig{}) },
		"oracle nil plan": func() { NewOracle(&fakeTarget{}, nil, 0, 0, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
