package scale

// This file holds the forecasting policies: GrowthFit, which estimates
// the enrollment/demand curve online from its own windowed arrival-rate
// observations and provisions ahead of the projected cliff, and Oracle,
// which is handed the true curve and provisions from it — the upper
// bound any estimator can be judged against.

import (
	"fmt"
	"math"
	"time"

	"elearncloud/internal/sim"
)

// FitShape identifies the growth family the online fitter chose.
type FitShape int

// Fit shapes, mirroring workload's Growth constructors.
const (
	// FitNone means no model has cleared the residual threshold yet.
	FitNone FitShape = iota
	// FitLinear is a cohort ramp: rate(t) = Start + Slope·t.
	FitLinear
	// FitLogistic is a viral course: rate(t) = Final/(1+exp(-K(t-mid))).
	FitLogistic
)

// String names the shape for reports.
func (s FitShape) String() string {
	switch s {
	case FitLinear:
		return "linear"
	case FitLogistic:
		return "logistic"
	default:
		return "none"
	}
}

// FitReport is the fitter's current estimate: the chosen shape, its
// parameters in rate space (requests/second), and the goodness of fit.
type FitReport struct {
	// Shape is the chosen model (FitNone until a fit stabilizes).
	Shape FitShape
	// Start is the fitted rate at the window's origin; Final is the
	// projected plateau (logistic) — zero for linear fits.
	Start, Final float64
	// Slope is the linear model's rate increase per second (zero for
	// logistic fits).
	Slope float64
	// Midpoint is the fitted half-capacity crossing, measured from the
	// observation origin (logistic only).
	Midpoint time.Duration
	// K is the logistic steepness in 1/seconds.
	K float64
	// Residual is the RMS residual of the chosen fit, relative to the
	// window's mean observed rate.
	Residual float64
	// Observations is how many windowed samples the fit saw.
	Observations int
	// Stable reports whether the fit cleared the residual threshold with
	// enough observations to act on.
	Stable bool
}

// Rate evaluates the fitted model at t seconds past the observation
// origin (negative values clamp to the curve's left limit).
func (f FitReport) Rate(t float64) float64 {
	switch f.Shape {
	case FitLinear:
		r := f.Start + f.Slope*t
		if r < 0 {
			return 0
		}
		return r
	case FitLogistic:
		return f.Final / (1 + math.Exp(-f.K*(t-f.Midpoint.Seconds())))
	default:
		return 0
	}
}

// String renders the fit for experiment notes.
func (f FitReport) String() string {
	switch f.Shape {
	case FitLinear:
		return fmt.Sprintf("linear rate %.3f+%.6f/s (residual %.3f)", f.Start, f.Slope, f.Residual)
	case FitLogistic:
		return fmt.Sprintf("logistic rate →%.3f (midpoint %v, residual %.3f)", f.Final, f.Midpoint.Round(time.Second), f.Residual)
	default:
		return "no fit"
	}
}

// ArrivalMeter is an optional Target refinement: a cumulative count of
// request submissions at the fleet, accepted or rejected, counted once
// at submission time. When the target provides it, GrowthFit differences
// the counter into its rate observations — a signal that stays honest
// under saturation, where Little's law on the in-flight count divides
// queue depth by service time and overestimates the offered rate by the
// queue length. The count must be monotone: implementations should keep
// a dedicated counter rather than derive it from served/rejected/active
// sums, which dip while retired servers drain their in-flight jobs.
type ArrivalMeter interface {
	// Arrivals returns the cumulative submission count (monotone).
	Arrivals() uint64
}

// logisticCapGrid is the candidate-plateau search grid, as multiples of
// the largest observed rate. The logit transform below is linear in t
// once the plateau is fixed, so the one nonlinear parameter is searched
// and the rest solved in closed form — deterministic, no iterative
// optimizer to seed.
var logisticCapGrid = []float64{
	1.02, 1.05, 1.1, 1.15, 1.25, 1.4, 1.6, 2, 2.5, 3, 4, 6, 8, 12, 16,
}

// FitGrowth least-squares-fits rate observations against the two
// workload.Growth families and returns the better model by relative RMS
// residual. times are seconds (monotone increasing), rates the observed
// arrival rates at those instants. Exported so the property tests can
// drive the fitter on NHPP-sampled series without an engine.
func FitGrowth(times, rates []float64) FitReport {
	n := len(times)
	if n != len(rates) || n < 3 {
		return FitReport{Observations: n, Residual: math.Inf(1)}
	}
	mean := 0.0
	for _, y := range rates {
		mean += y
	}
	mean /= float64(n)
	if mean <= 0 {
		return FitReport{Observations: n, Residual: math.Inf(1)}
	}

	lin := fitLinear(times, rates, mean)
	log := fitLogistic(times, rates, mean)
	best := lin
	if log.Residual < lin.Residual {
		best = log
	}
	best.Observations = n
	return best
}

// fitLinear is closed-form OLS of rate on time.
func fitLinear(times, rates []float64, mean float64) FitReport {
	n := float64(len(times))
	var st, sy, stt, sty float64
	for i, t := range times {
		st += t
		sy += rates[i]
		stt += t * t
		sty += t * rates[i]
	}
	den := n*stt - st*st
	if den == 0 {
		return FitReport{Residual: math.Inf(1)}
	}
	slope := (n*sty - st*sy) / den
	intercept := (sy - slope*st) / n
	rep := FitReport{Shape: FitLinear, Start: intercept, Slope: slope}
	rep.Residual = relResidual(times, rates, mean, rep)
	return rep
}

// fitLogistic grid-searches the plateau and solves the rest by OLS on
// the logit transform: with L fixed, ln(y/(L-y)) = K·(t-mid) is linear
// in t. Only growing fits (K > 0) are admitted — the fitter models
// enrollment curves, which never shrink.
func fitLogistic(times, rates []float64, mean float64) FitReport {
	ymax := 0.0
	for _, y := range rates {
		if y > ymax {
			ymax = y
		}
	}
	if ymax <= 0 {
		return FitReport{Residual: math.Inf(1)}
	}
	best := FitReport{Residual: math.Inf(1)}
	for _, c := range logisticCapGrid {
		L := ymax * c
		n := 0.0
		var st, sz, stt, stz float64
		for i, y := range rates {
			if y <= 0 || y >= L {
				continue
			}
			z := math.Log(y / (L - y))
			t := times[i]
			n++
			st += t
			sz += z
			stt += t * t
			stz += t * z
		}
		if n < 3 {
			continue
		}
		den := n*stt - st*st
		if den == 0 {
			continue
		}
		k := (n*stz - st*sz) / den
		if k <= 0 {
			continue
		}
		mid := -((sz - k*st) / n) / k
		rep := FitReport{
			Shape:    FitLogistic,
			Start:    L / (1 + math.Exp(k*mid)),
			Final:    L,
			Midpoint: time.Duration(mid * float64(time.Second)),
			K:        k,
		}
		rep.Residual = relResidual(times, rates, mean, rep)
		if rep.Residual < best.Residual {
			best = rep
		}
	}
	return best
}

// relResidual is the RMS residual of the model over the observations,
// normalized by the window's mean rate.
func relResidual(times, rates []float64, mean float64, f FitReport) float64 {
	sum := 0.0
	for i, t := range times {
		d := rates[i] - f.Rate(t)
		sum += d * d
	}
	return math.Sqrt(sum/float64(len(times))) / mean
}

// GrowthFitConfig parameterizes the growth-fitting scaler.
type GrowthFitConfig struct {
	// Interval between observations (default 1 minute).
	Interval time.Duration
	// Window is how many observations the fitter retains (default 45 —
	// enough history to separate a logistic knee from a line).
	Window int
	// MinObservations gates acting on a fit (default 10).
	MinObservations int
	// MaxResidual is the stability threshold: a fit whose relative RMS
	// residual exceeds it is distrusted and the scaler stays reactive
	// (default 0.15).
	MaxResidual float64
	// Lead is how far ahead to provision — one VM boot plus a guard
	// margin, so capacity is running before the projected demand lands
	// (default 8 minutes).
	Lead time.Duration
	// MeanService converts observed in-flight demand to an arrival rate
	// via Little's law (seconds; required, no useful default exists —
	// zero panics in NewGrowthFit).
	MeanService float64
	// Util is the per-server utilization the provisioning target aims at
	// (default 0.6, matching deploy.ServersForPeak's default).
	Util float64
	// Min/Max fleet bounds.
	Min, Max int
	// Fallback parameterizes the reactive behavior used until the fit
	// stabilizes; its Interval/Min/Max are overridden to match.
	Fallback ReactiveConfig
}

func (c *GrowthFitConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = time.Minute
	}
	if c.Window <= 0 {
		c.Window = 45
	}
	if c.MinObservations <= 0 {
		c.MinObservations = 10
	}
	if c.MinObservations > c.Window {
		c.MinObservations = c.Window
	}
	if c.MaxResidual <= 0 {
		c.MaxResidual = 0.15
	}
	if c.Lead <= 0 {
		c.Lead = 8 * time.Minute
	}
	if c.Util <= 0 || c.Util > 1 {
		c.Util = 0.6
	}
	if c.Min <= 0 {
		c.Min = 1
	}
	c.Fallback.Interval = c.Interval
	c.Fallback.Min = c.Min
	c.Fallback.Max = c.Max
}

// GrowthFit estimates the demand curve online — least squares over a
// window of its own arrival-rate observations against the logistic and
// linear growth shapes, model chosen by residual — and provisions ahead
// of the projected cliff. Until the fit stabilizes (enough observations,
// residual under threshold) it behaves exactly as Reactive, so a
// workload the models cannot describe costs nothing over the classic
// control loop.
type GrowthFit struct {
	target   Target
	cfg      GrowthFitConfig
	fallback *Reactive

	times, rates []float64
	lastCount    uint64
	fit          FitReport
	stable       FitReport
}

// NewGrowthFit builds a growth-fitting scaler around target.
func NewGrowthFit(target Target, cfg GrowthFitConfig) *GrowthFit {
	if target == nil {
		panic("scale: NewGrowthFit with nil target")
	}
	if cfg.MeanService <= 0 {
		panic("scale: NewGrowthFit needs a positive MeanService to convert load to arrival rate")
	}
	cfg.defaults()
	return &GrowthFit{
		target:   target,
		cfg:      cfg,
		fallback: NewReactive(target, cfg.Fallback),
	}
}

// Name implements Autoscaler.
func (g *GrowthFit) Name() string { return "growth-fit" }

// Fit returns the current fit report (shape, parameters, residual) for
// tests and experiment notes.
func (g *GrowthFit) Fit() FitReport { return g.fit }

// LastStable returns the most recent fit that cleared the stability
// gate — the estimate the policy last provisioned from. A storm's decay
// phase destabilizes the trailing window (no growing shape describes
// it), so at end of run this is the representative report, not Fit().
// Its Stable flag is false if no fit ever stabilized.
func (g *GrowthFit) LastStable() FitReport { return g.stable }

// Start implements Autoscaler. The observation timer follows the
// (seed, job name) rule: all randomness it touches is the engine's,
// rooted at the run seed, so results are byte-identical at any pool
// width.
func (g *GrowthFit) Start(eng *sim.Engine) func() {
	return eng.Every(g.cfg.Interval, "scale/growthfit", func() { g.tick(eng) })
}

// tick observes, refits, and either provisions from the projection or
// falls back to the reactive step.
func (g *GrowthFit) tick(eng *sim.Engine) {
	// Observed arrival rate. A target that meters arrivals gives the
	// exact offered rate over the last interval — rejections included, so
	// the signal survives saturation. Bare targets fall back to Little's
	// law (in-flight demand over mean service time), which is only honest
	// while queues stay short.
	var rate float64
	if m, ok := g.target.(ArrivalMeter); ok {
		count := m.Arrivals()
		// The meter contract is monotone, but a dip must degrade to a
		// zero-rate sample, not wrap the unsigned difference into a
		// ~1.8e19 observation that poisons the whole fit window.
		delta := int64(count - g.lastCount)
		if delta < 0 {
			delta = 0
		}
		rate = float64(delta) / sim.ToSeconds(g.cfg.Interval)
		g.lastCount = count
	} else {
		demand := g.target.Load() * float64(maxInt(g.target.Desired(), 1))
		rate = demand / g.cfg.MeanService
	}
	g.observe(sim.ToSeconds(eng.Now()), rate)

	g.fit = FitGrowth(g.times, g.rates)
	g.fit.Stable = g.fit.Observations >= g.cfg.MinObservations &&
		g.fit.Residual <= g.cfg.MaxResidual
	if !g.fit.Stable {
		g.fallback.tick(eng)
		return
	}
	g.stable = g.fit

	// Provision for the projected rate a lead ahead at the target
	// utilization. No headroom server on top: the utilization target is
	// the headroom, and the lead has already paid for the boot.
	projected := g.fit.Rate(sim.ToSeconds(eng.Now() + g.cfg.Lead))
	want := clamp(int(math.Ceil(projected*g.cfg.MeanService/g.cfg.Util)), g.cfg.Min, g.cfg.Max)
	cur := g.target.Desired()
	// The projection never fights observed saturation: if the fleet is
	// already hot and the model says shrink or hold, the reactive step
	// decides instead — the fit may be a good description of yesterday's
	// window and still miss a storm the shapes cannot express.
	if want <= cur && g.target.Load() > g.cfg.Fallback.UpThreshold {
		g.fallback.tick(eng)
		return
	}
	if want != cur {
		g.target.ScaleTo(want)
	}
}

// observe appends one (t, rate) sample, evicting beyond the window.
func (g *GrowthFit) observe(t, rate float64) {
	g.times = append(g.times, t)
	g.rates = append(g.rates, rate)
	if over := len(g.times) - g.cfg.Window; over > 0 {
		g.times = g.times[over:]
		g.rates = g.rates[over:]
	}
}

// Oracle is the scheduled-from-truth policy: it is handed the true
// demand plan (the workload curve the generator will realize, storms
// included) and provisions plan(now+lead), so capacity is booted before
// the demand that needs it arrives. No estimator can beat it on average
// — table12 uses it as the yardstick the growth fitter is judged
// against.
type Oracle struct {
	target   Target
	plan     func(at time.Duration) int
	interval time.Duration
	lead     time.Duration
	min, max int
}

// NewOracle builds an oracle scaler. plan maps an absolute virtual time
// to the fleet the true curve needs then; it must not be nil. Each tick
// provisions for the largest need anywhere in [now, now+lead]: rises
// are booted a lead early, while scale-in waits until the demand has
// actually passed — looking only at plan(now+lead) would shed the fleet
// a lead before the cliff's peak.
func NewOracle(target Target, plan func(at time.Duration) int, interval, lead time.Duration, min, max int) *Oracle {
	if target == nil || plan == nil {
		panic("scale: NewOracle with nil target or plan")
	}
	if interval <= 0 {
		interval = time.Minute
	}
	if lead < 0 {
		lead = 0
	}
	if min <= 0 {
		min = 1
	}
	return &Oracle{target: target, plan: plan, interval: interval, lead: lead, min: min, max: max}
}

// Name implements Autoscaler.
func (o *Oracle) Name() string { return "oracle" }

// Start implements Autoscaler.
func (o *Oracle) Start(eng *sim.Engine) func() {
	return eng.Every(o.interval, "scale/oracle", func() {
		need := 0
		// Sample the plan across the lead window at interval granularity
		// (endpoints included) and take the peak.
		for at := eng.Now(); ; at += o.interval {
			if at > eng.Now()+o.lead {
				at = eng.Now() + o.lead
			}
			if n := o.plan(at); n > need {
				need = n
			}
			if at >= eng.Now()+o.lead {
				break
			}
		}
		want := clamp(need, o.min, o.max)
		if want != o.target.Desired() {
			o.target.ScaleTo(want)
		}
	})
}
