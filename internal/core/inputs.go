package core

import (
	"fmt"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/lms"
	"elearncloud/internal/migrate"
	"elearncloud/internal/scenario"
	"elearncloud/internal/security"
	"elearncloud/internal/workload"
)

// Inputs are the raw per-model measurements the scorecard normalizes.
// Lower is better for every metric.
type Inputs struct {
	// Students sizes the institution measured.
	Students int
	// CostPerStudentMonth is semester TCO normalized per student-month
	// (fluid run over a standard semester).
	CostPerStudentMonth map[deploy.Kind]float64
	// P95LatencySec is steady teaching-load tail latency (request-level
	// run).
	P95LatencySec map[deploy.Kind]float64
	// ExamP99Sec is tail latency during an exam flash crowd.
	ExamP99Sec map[deploy.Kind]float64
	// ExamErrorRate is the rejected+offline fraction during the crowd.
	ExamErrorRate map[deploy.Kind]float64
	// AnnualSensitiveRisk is the analytic expected sensitive-asset
	// compromise events per year.
	AnnualSensitiveRisk map[deploy.Kind]float64
	// MigrationUSD is the cost of leaving the current provider.
	MigrationUSD map[deploy.Kind]float64
	// OpsBurdenUSDMonth is monthly staff + integration overhead.
	OpsBurdenUSDMonth map[deploy.Kind]float64
}

// MeasureConfig tunes MeasureInputs.
type MeasureConfig struct {
	// Seed drives all component simulations.
	Seed uint64
	// Students sizes the institution (default 2000).
	Students int
	// DESStudents caps the request-level runs for speed (default 1000).
	DESStudents int
	// ExamMult is the flash-crowd multiplier (default 10).
	ExamMult float64
	// Pool is the shared worker pool the component simulations fan out
	// on. Passing the caller's pool keeps nested measurement batches
	// work-conserving: the nine component jobs claim any token the
	// outer level frees. nil means a one-off scenario.DefaultWorkers
	// pool. Results are identical for every pool.
	Pool *scenario.Pool
}

func (c *MeasureConfig) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Students <= 0 {
		c.Students = 2000
	}
	if c.DESStudents <= 0 {
		c.DESStudents = 1000
	}
	if c.DESStudents > c.Students {
		c.DESStudents = c.Students
	}
	if c.ExamMult <= 0 {
		c.ExamMult = 10
	}
}

// MeasureInputs runs the standard component-experiment recipe for the
// three cloud models and returns the raw metric table. Deterministic
// given cfg.
func MeasureInputs(cfg MeasureConfig) (*Inputs, error) {
	cfg.defaults()
	in := &Inputs{
		Students:            cfg.Students,
		CostPerStudentMonth: make(map[deploy.Kind]float64),
		P95LatencySec:       make(map[deploy.Kind]float64),
		ExamP99Sec:          make(map[deploy.Kind]float64),
		ExamErrorRate:       make(map[deploy.Kind]float64),
		AnnualSensitiveRisk: make(map[deploy.Kind]float64),
		MigrationUSD:        make(map[deploy.Kind]float64),
		OpsBurdenUSDMonth:   make(map[deploy.Kind]float64),
	}
	sem := workload.StandardSemester()

	// The nine component simulations (three per model) are independent;
	// declare them as named jobs and fan them out on the batch runner.
	batch := scenario.NewBatch(cfg.Seed)
	for _, kind := range deploy.Kinds() {
		batch.AddFluid("fluid/"+kind.String(), scenario.Config{
			Seed:     cfg.Seed,
			Kind:     kind,
			Students: cfg.Students,
			Duration: sem.Duration(),
			Calendar: sem,
		})
		batch.Add("steady/"+kind.String(), scenario.Config{
			Seed:              cfg.Seed,
			Kind:              kind,
			Students:          cfg.DESStudents,
			ReqPerStudentHour: 50,
			Duration:          2 * time.Hour,
			Diurnal:           workload.FlatDiurnal(),
		})
		batch.Add("exam/"+kind.String(), scenario.Config{
			Seed:              cfg.Seed,
			Kind:              kind,
			Students:          cfg.DESStudents,
			ReqPerStudentHour: 50,
			Duration:          2 * time.Hour,
			Diurnal:           workload.FlatDiurnal(),
			Crowds: []workload.FlashCrowd{{
				Start: 30 * time.Minute, End: 90 * time.Minute,
				Mult: cfg.ExamMult, ExamTraffic: true,
			}},
		})
	}
	runs, err := batch.RunOn(cfg.Pool)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	for _, kind := range deploy.Kinds() {
		// Cost: fluid semester.
		fluid := runs.Fluid("fluid/" + kind.String())
		in.CostPerStudentMonth[kind] = fluid.CostPerStudentMonth(cfg.Students)

		// Performance: 2h of steady teaching load.
		in.P95LatencySec[kind] = runs.Result("steady/" + kind.String()).Latency.P95()

		// Scalability: exam flash crowd.
		exam := runs.Result("exam/" + kind.String())
		in.ExamP99Sec[kind] = exam.Latency.P99()
		in.ExamErrorRate[kind] = exam.ErrorRate()

		// Security: analytic risk for the model's asset placement.
		assets := lms.NewAssetStore(cfg.Students/25+1, cfg.Students)
		switch kind {
		case deploy.Public:
			assets.PlaceAll(lms.OnPublic)
		case deploy.Private:
			assets.PlaceAll(lms.OnPrivate)
		case deploy.Hybrid:
			assets.PlaceSensitive(lms.OnPrivate, lms.OnPublic)
		}
		in.AnnualSensitiveRisk[kind] = security.ConfigFor(kind).AnnualSensitiveRisk(assets)

		// Portability: cost of leaving.
		plan, err := migrate.NewPlan(migrate.LockinProfile{
			Index:      kind.DefaultLockinIndex(),
			Components: 12,
			DataBytes:  assets.BytesAt(lms.OnPublic) + 0.2*assets.BytesAt(lms.OnPrivate),
		}, migrate.DefaultCostModel())
		if err != nil {
			return nil, fmt.Errorf("core: migrate %v: %w", kind, err)
		}
		in.MigrationUSD[kind] = plan.TotalUSD()

		// Manageability: monthly staff + integration burden.
		months := sem.Duration().Hours() / 730
		in.OpsBurdenUSDMonth[kind] = (fluid.Cost.Staff + fluid.Cost.Integration) / months
	}
	return in, nil
}
