package core

import (
	"strings"
	"testing"
	"time"

	"elearncloud/internal/deploy"
)

// measured caches the expensive measurement pass across tests.
var measured *Inputs

func getInputs(t *testing.T) *Inputs {
	t.Helper()
	if measured == nil {
		in, err := MeasureInputs(MeasureConfig{Seed: 3, Students: 2000, DESStudents: 600})
		if err != nil {
			t.Fatal(err)
		}
		measured = in
	}
	return measured
}

func TestRequirementStrings(t *testing.T) {
	want := map[Requirement]string{
		Cost: "cost", Performance: "performance", Scalability: "scalability",
		Security: "security", Portability: "portability", Manageability: "manageability",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
	if Requirement(99).String() != "Requirement(99)" {
		t.Error("unknown requirement string wrong")
	}
	if len(Requirements()) != 6 {
		t.Error("Requirements() incomplete")
	}
}

func TestMeasureInputsCoversAllModelsAndMetrics(t *testing.T) {
	in := getInputs(t)
	for _, k := range deploy.Kinds() {
		for name, m := range map[string]map[deploy.Kind]float64{
			"cost":    in.CostPerStudentMonth,
			"p95":     in.P95LatencySec,
			"examP99": in.ExamP99Sec,
			"examErr": in.ExamErrorRate,
			"risk":    in.AnnualSensitiveRisk,
			"migrate": in.MigrationUSD,
			"ops":     in.OpsBurdenUSDMonth,
		} {
			v, ok := m[k]
			if !ok {
				t.Fatalf("%s missing for %v", name, k)
			}
			if v < 0 {
				t.Fatalf("%s negative for %v: %v", name, k, v)
			}
		}
	}
}

// The paper's qualitative orderings (§IV) must hold in the measurements.
func TestMeasurementsMatchPaperOrderings(t *testing.T) {
	in := getInputs(t)

	// §IV.B: private is the expensive model *below* the Figure 3
	// crossover. At small scale public must win cost; by 2000 students
	// the 2013 egress pricing has flipped the ordering (scale economies).
	small, err := MeasureInputs(MeasureConfig{Seed: 3, Students: 300, DESStudents: 300})
	if err != nil {
		t.Fatal(err)
	}
	if small.CostPerStudentMonth[deploy.Private] <= small.CostPerStudentMonth[deploy.Public] {
		t.Errorf("small scale: private cost %v should exceed public %v",
			small.CostPerStudentMonth[deploy.Private], small.CostPerStudentMonth[deploy.Public])
	}
	if in.CostPerStudentMonth[deploy.Private] >= in.CostPerStudentMonth[deploy.Public] {
		t.Errorf("college scale: private cost %v should undercut public %v past the crossover",
			in.CostPerStudentMonth[deploy.Private], in.CostPerStudentMonth[deploy.Public])
	}
	// §IV.A: public has the highest security exposure; §IV.C hybrid
	// increases security over public.
	if !(in.AnnualSensitiveRisk[deploy.Public] > in.AnnualSensitiveRisk[deploy.Hybrid]) {
		t.Errorf("risk: public %v should exceed hybrid %v",
			in.AnnualSensitiveRisk[deploy.Public], in.AnnualSensitiveRisk[deploy.Hybrid])
	}
	// §III risk 3 / §IV.A: leaving the public cloud is the most
	// expensive; hybrid decreases platform dependence.
	if !(in.MigrationUSD[deploy.Public] > in.MigrationUSD[deploy.Hybrid] &&
		in.MigrationUSD[deploy.Hybrid] > in.MigrationUSD[deploy.Private]) {
		t.Errorf("migration ordering wrong: %v", in.MigrationUSD)
	}
	// §IV.C: hybrid carries the largest governance burden; public the
	// smallest.
	if !(in.OpsBurdenUSDMonth[deploy.Hybrid] > in.OpsBurdenUSDMonth[deploy.Private]) {
		t.Errorf("ops burden: hybrid %v should exceed private %v",
			in.OpsBurdenUSDMonth[deploy.Hybrid], in.OpsBurdenUSDMonth[deploy.Private])
	}
	if !(in.OpsBurdenUSDMonth[deploy.Public] < in.OpsBurdenUSDMonth[deploy.Private]) {
		t.Errorf("ops burden: public %v should undercut private %v",
			in.OpsBurdenUSDMonth[deploy.Public], in.OpsBurdenUSDMonth[deploy.Private])
	}
}

func TestBuildScorecardNormalization(t *testing.T) {
	in := getInputs(t)
	sc, err := BuildScorecard(in)
	if err != nil {
		t.Fatal(err)
	}
	metricFor := map[Requirement]map[deploy.Kind]float64{
		Cost:          in.CostPerStudentMonth,
		Performance:   in.P95LatencySec,
		Security:      in.AnnualSensitiveRisk,
		Portability:   in.MigrationUSD,
		Manageability: in.OpsBurdenUSDMonth,
	}
	for _, req := range Requirements() {
		sawBest := false
		for _, k := range deploy.Kinds() {
			s := sc.Score(k, req)
			if s <= 0 || s > 10 {
				t.Fatalf("score %v/%v = %v outside (0,10]", k, req, s)
			}
			if s == 10 {
				sawBest = true
			}
		}
		if !sawBest {
			t.Fatalf("requirement %v has no best-scoring model", req)
		}
		// Scores are antitone in the raw metric: cheaper/safer/faster
		// models never score lower.
		vals, ok := metricFor[req]
		if !ok {
			continue
		}
		for _, a := range deploy.Kinds() {
			for _, b := range deploy.Kinds() {
				if vals[a] < vals[b] && sc.Score(a, req) < sc.Score(b, req) {
					t.Fatalf("%v: %v (raw %v) scores below %v (raw %v)",
						req, a, vals[a], b, vals[b])
				}
			}
		}
	}
	if sc.Raw() != in {
		t.Fatal("Raw() lost the inputs")
	}
}

func TestScorecardPaperWinners(t *testing.T) {
	sc, err := BuildScorecard(getInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	// §IV.A: public is the easiest model to run.
	if sc.Score(deploy.Public, Manageability) <= sc.Score(deploy.Hybrid, Manageability) {
		t.Error("public should beat hybrid on manageability")
	}
	// §IV.B: private wins security.
	if sc.Score(deploy.Private, Security) <= sc.Score(deploy.Public, Security) {
		t.Error("private should beat public on security")
	}
	// §IV.C: hybrid beats public on portability.
	if sc.Score(deploy.Hybrid, Portability) <= sc.Score(deploy.Public, Portability) {
		t.Error("hybrid should beat public on portability")
	}
}

func TestScorecardTableRendering(t *testing.T) {
	sc, err := BuildScorecard(getInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	tbl := sc.Table()
	if tbl.NumRows() != len(Requirements()) {
		t.Fatalf("table rows = %d", tbl.NumRows())
	}
	s := tbl.String()
	for _, want := range []string{"cost", "security", "public", "hybrid"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}

func TestRecommendProfiles(t *testing.T) {
	sc, err := BuildScorecard(getInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Profile{RuralSchool, MidCollege, NationalPlatform} {
		recs, err := sc.Recommend(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 3 {
			t.Fatalf("%s: %d recommendations", p.Name, len(recs))
		}
		for i := 1; i < len(recs); i++ {
			if recs[i-1].Total < recs[i].Total {
				t.Fatalf("%s: ranking not sorted", p.Name)
			}
		}
		if out := Explain(p, recs); !strings.Contains(out, p.Name) {
			t.Fatalf("Explain output wrong: %q", out)
		}
	}
	// A cash-strapped school with no IT staff should not be told to run
	// its own datacenter — measured at ITS scale, not the college's.
	smallIn, err := MeasureInputs(MeasureConfig{Seed: 3, Students: RuralSchool.Students, DESStudents: 300})
	if err != nil {
		t.Fatal(err)
	}
	smallSc, err := BuildScorecard(smallIn)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := smallSc.Recommend(RuralSchool)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Kind == deploy.Private {
		t.Error("rural school recommended a private cloud")
	}
	// A sovereignty-first national platform should not be sent to the
	// public cloud (college-scale scorecard is already conservative: at
	// national scale public only gets worse on cost).
	recs, err = sc.Recommend(NationalPlatform)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Kind == deploy.Public {
		t.Error("national platform recommended public cloud")
	}
}

func TestRecommendValidation(t *testing.T) {
	sc, err := BuildScorecard(getInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Recommend(Profile{Name: "empty"}); err == nil {
		t.Fatal("empty profile accepted")
	}
	if _, err := sc.Recommend(Profile{Name: "neg", Weights: map[Requirement]float64{Cost: -1}}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestBuildScorecardNilInputs(t *testing.T) {
	if _, err := BuildScorecard(nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
}

func TestMeritModels(t *testing.T) {
	// §III.2: cloud sessions start much faster.
	if SessionStartTime(deploy.Public) >= SessionStartTime(deploy.Desktop) {
		t.Error("cloud session start should beat desktop")
	}
	if SessionStartTime(deploy.Desktop) != 95*time.Second {
		t.Errorf("desktop start = %v", SessionStartTime(deploy.Desktop))
	}
	// §III.3: updates propagate orders of magnitude faster.
	cloudProp := UpdatePropagation(deploy.Public, 2000, 2)
	deskProp := UpdatePropagation(deploy.Desktop, 2000, 2)
	if cloudProp*10 >= deskProp {
		t.Errorf("update propagation: cloud %v should be <<10x desktop %v", cloudProp, deskProp)
	}
	// Zero technicians is repaired to one.
	if UpdatePropagation(deploy.Desktop, 100, 0) <= 0 {
		t.Error("technician floor broken")
	}
	// §III.4: crashes lose less work in the cloud.
	if ExpectedCrashLoss(deploy.Public) >= ExpectedCrashLoss(deploy.Desktop) {
		t.Error("cloud crash loss should be below desktop")
	}
	// §III.5: device independence.
	if DeviceContinuity(deploy.Hybrid) != 1.0 || DeviceContinuity(deploy.Desktop) >= 1.0 {
		t.Error("device continuity wrong")
	}
}
