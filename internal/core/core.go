package core

import (
	"fmt"
)

// Requirement is one axis of the paper's comparison.
type Requirement int

// The six e-learning requirements the scorecard covers. The paper's
// abstract names scalability, portability and security explicitly; cost,
// performance and manageability carry the rest of its argument.
const (
	Cost Requirement = iota + 1
	Performance
	Scalability
	Security
	Portability
	Manageability
)

// String returns the requirement name.
func (r Requirement) String() string {
	switch r {
	case Cost:
		return "cost"
	case Performance:
		return "performance"
	case Scalability:
		return "scalability"
	case Security:
		return "security"
	case Portability:
		return "portability"
	case Manageability:
		return "manageability"
	default:
		return fmt.Sprintf("Requirement(%d)", int(r))
	}
}

// Requirements lists all axes in display order.
func Requirements() []Requirement {
	return []Requirement{Cost, Performance, Scalability, Security, Portability, Manageability}
}
