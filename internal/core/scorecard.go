package core

import (
	"fmt"
	"sort"
	"strings"

	"elearncloud/internal/deploy"
	"elearncloud/internal/metrics"
)

// Scorecard holds normalized 0-10 scores (higher is better) for each
// model on each requirement — the paper's comparison matrix.
type Scorecard struct {
	scores map[deploy.Kind]map[Requirement]float64
	raw    *Inputs
}

// BuildScorecard normalizes raw measurements into scores. Every metric
// is lower-is-better; the best model scores 10 and the others decay with
// their deficit relative to the metric's mean:
//
//	score = 10 · mean / (mean + (v − best))
//
// Unlike min-max scaling, this keeps near-ties near 10 (a 0.2 s p99 gap
// is not a 10-vs-0 verdict) while still separating order-of-magnitude
// differences, and it degrades gracefully when a metric's best value is
// zero.
func BuildScorecard(in *Inputs) (*Scorecard, error) {
	if in == nil {
		return nil, fmt.Errorf("core: BuildScorecard with nil inputs")
	}
	sc := &Scorecard{scores: make(map[deploy.Kind]map[Requirement]float64), raw: in}
	for _, k := range deploy.Kinds() {
		sc.scores[k] = make(map[Requirement]float64)
	}
	metricsByReq := map[Requirement]map[deploy.Kind]float64{
		Cost:          in.CostPerStudentMonth,
		Performance:   in.P95LatencySec,
		Scalability:   combineExam(in),
		Security:      in.AnnualSensitiveRisk,
		Portability:   in.MigrationUSD,
		Manageability: in.OpsBurdenUSDMonth,
	}
	for req, vals := range metricsByReq {
		if len(vals) == 0 {
			return nil, fmt.Errorf("core: no measurements for %v", req)
		}
		best, _ := minMax(vals)
		// Sum in sorted-key order: float addition is order-sensitive at
		// the ulp, and these means reach %.1f-rendered artifact cells.
		kinds := make([]deploy.Kind, 0, len(vals))
		for k := range vals {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		mean := 0.0
		for _, k := range kinds {
			mean += vals[k]
		}
		mean /= float64(len(vals))
		for _, k := range deploy.Kinds() {
			v, ok := vals[k]
			if !ok {
				return nil, fmt.Errorf("core: %v missing measurement for %v", req, k)
			}
			deficit := v - best
			if mean <= 0 || deficit <= 0 {
				sc.scores[k][req] = 10
				continue
			}
			sc.scores[k][req] = 10 * mean / (mean + deficit)
		}
	}
	return sc, nil
}

// combineExam folds exam error rate and exam tail latency into one
// scalability metric: errors dominate (an error is worse than a slow
// answer), latency breaks ties.
func combineExam(in *Inputs) map[deploy.Kind]float64 {
	out := make(map[deploy.Kind]float64, len(in.ExamErrorRate))
	for k, e := range in.ExamErrorRate {
		out[k] = e*100 + in.ExamP99Sec[k]
	}
	return out
}

func minMax(vals map[deploy.Kind]float64) (lo, hi float64) {
	first := true
	for _, v := range vals {
		if first {
			lo, hi, first = v, v, false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Score returns the normalized score for (kind, requirement).
func (sc *Scorecard) Score(k deploy.Kind, r Requirement) float64 {
	return sc.scores[k][r]
}

// Raw returns the measurements behind the scores.
func (sc *Scorecard) Raw() *Inputs { return sc.raw }

// Table renders the matrix as a metrics.Table (the paper's Table 3).
func (sc *Scorecard) Table() *metrics.Table {
	headers := []string{"requirement"}
	for _, k := range deploy.Kinds() {
		headers = append(headers, k.String())
	}
	t := metrics.NewTable("Deployment-model comparison matrix (0-10, higher is better)", headers...)
	for _, req := range Requirements() {
		row := []any{req.String()}
		for _, k := range deploy.Kinds() {
			row = append(row, fmt.Sprintf("%.1f", sc.Score(k, req)))
		}
		t.AddRow(row...)
	}
	return t
}

// Profile is an institution's requirement weighting and scale. Scale
// matters as much as the weights: the public/private cost ordering flips
// with population (Figure 3), so recommendations must be computed from
// inputs measured at the institution's own size.
type Profile struct {
	// Name labels the profile.
	Name string
	// Students is the institution's population; MeasureForProfile sizes
	// the component experiments with it.
	Students int
	// Weights must be positive and are normalized internally.
	Weights map[Requirement]float64
}

// Validate checks the profile has usable weights.
func (p Profile) Validate() error {
	if len(p.Weights) == 0 {
		return fmt.Errorf("core: profile %q has no weights", p.Name)
	}
	total := 0.0
	for _, r := range sortedRequirements(p.Weights) {
		w := p.Weights[r]
		if w < 0 {
			return fmt.Errorf("core: profile %q has negative weight for %v", p.Name, r)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("core: profile %q weights sum to zero", p.Name)
	}
	return nil
}

// Standard institution profiles used by Table 6.
var (
	// RuralSchool has no IT staff, little money, and modest scale — the
	// paper's rural learners.
	RuralSchool = Profile{Name: "rural-school", Students: 300, Weights: map[Requirement]float64{
		Cost: 0.35, Performance: 0.10, Scalability: 0.05,
		Security: 0.10, Portability: 0.10, Manageability: 0.30,
	}}
	// MidCollege balances everything.
	MidCollege = Profile{Name: "mid-college", Students: 2000, Weights: map[Requirement]float64{
		Cost: 0.20, Performance: 0.15, Scalability: 0.20,
		Security: 0.20, Portability: 0.10, Manageability: 0.15,
	}}
	// NationalPlatform is the paper's "national private cloud system":
	// sovereignty and scale first.
	NationalPlatform = Profile{Name: "national-platform", Students: 20000, Weights: map[Requirement]float64{
		Cost: 0.10, Performance: 0.10, Scalability: 0.25,
		Security: 0.30, Portability: 0.20, Manageability: 0.05,
	}}
)

// sortedRequirements returns the weight map's keys in ascending order,
// the stable iteration order every float reduction over weights uses.
func sortedRequirements(weights map[Requirement]float64) []Requirement {
	reqs := make([]Requirement, 0, len(weights))
	for r := range weights {
		reqs = append(reqs, r)
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i] < reqs[j] })
	return reqs
}

// MeasureForProfile measures inputs at the profile's own scale, which is
// how Recommend should be fed: the cost axis is scale-dependent.
func MeasureForProfile(p Profile, seed uint64) (*Inputs, error) {
	return MeasureInputs(MeasureConfig{Seed: seed, Students: p.Students})
}

// Recommendation is one ranked model with its weighted total.
type Recommendation struct {
	Kind  deploy.Kind
	Total float64
}

// Recommend ranks the models for a profile, best first.
func (sc *Scorecard) Recommend(p Profile) ([]Recommendation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Weighted totals are rendered to %.1f in Table 6, so both sums run
	// in sorted-requirement order — map-order float addition could land
	// either side of a rounding boundary (the VMHours bug class).
	reqs := sortedRequirements(p.Weights)
	total := 0.0
	for _, r := range reqs {
		total += p.Weights[r]
	}
	out := make([]Recommendation, 0, len(sc.scores))
	for _, k := range deploy.Kinds() {
		sum := 0.0
		for _, r := range reqs {
			sum += p.Weights[r] / total * sc.Score(k, r)
		}
		out = append(out, Recommendation{Kind: k, Total: sum})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Kind < out[j].Kind
	})
	return out, nil
}

// Explain renders a ranking as a sentence for CLI output.
func Explain(p Profile, recs []Recommendation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: ", p.Name)
	for i, r := range recs {
		if i > 0 {
			b.WriteString(" > ")
		}
		fmt.Fprintf(&b, "%s (%.1f)", r.Kind, r.Total)
	}
	return b.String()
}
