package core

import (
	"fmt"
	"time"

	"elearncloud/internal/cost"
	"elearncloud/internal/deploy"
	"elearncloud/internal/metrics"
	"elearncloud/internal/scenario"
	"elearncloud/internal/workload"
)

// This file is the advisor's forecasting mode: given a projected
// enrollment growth curve, evaluate a grid of deployment plans —
// deployment model × scaling policy × purchase mix — through a
// simulation of that curve, and return the evaluated points for
// cost.ParetoSearch and cost.CheapestCompliant to answer "the cheapest
// P95-compliant plan is X".

// forecastScalers are the elasticity policies the plan grid evaluates
// on elastic models. The oracle is deliberately absent: the advisor
// recommends plans an institution can actually run, and nobody is
// handed the true demand curve in production.
func forecastScalers() []scenario.ScalerKind {
	return []scenario.ScalerKind{
		scenario.ScalerReactive,
		scenario.ScalerPredictive,
		scenario.ScalerGrowthFit,
	}
}

// ForecastConfig parameterizes the plan-grid evaluation.
type ForecastConfig struct {
	// Seed drives all component simulations.
	Seed uint64
	// Growth is the projected enrollment curve (required).
	Growth *workload.Growth
	// ReqPerStudentHour is mean per-student demand (default 50).
	ReqPerStudentHour float64
	// Duration is the simulated horizon (default 2h).
	Duration time.Duration
	// Diurnal shapes the day (default flat: a forecast answers "what
	// does the growth curve cost", not "when during the day").
	Diurnal *workload.DiurnalProfile
	// EnableCDN serves video through an edge CDN on the public-facing
	// plans, a knob that moves egress cost but not the queue.
	EnableCDN bool
	// Pool is the shared worker pool the grid fans out on (nil means a
	// one-off pool). Results are identical for every pool.
	Pool *scenario.Pool
}

func (c *ForecastConfig) defaults() error {
	if c.Growth == nil {
		return fmt.Errorf("core: forecast needs a growth curve")
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ReqPerStudentHour == 0 {
		c.ReqPerStudentHour = 50
	}
	if c.ReqPerStudentHour < 0 {
		return fmt.Errorf("core: negative ReqPerStudentHour")
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Hour
	}
	if c.Diurnal == nil {
		c.Diurnal = workload.FlatDiurnal()
	}
	return nil
}

// ForecastFrontier runs the plan grid through the growth curve and
// returns every evaluated plan point: the public model under each
// forecasting-capable scaler and each purchase mix, the hybrid model
// under the same scalers (billed on-demand — its public side is the
// burst tier, which is what on-demand is for), and the private model's
// fixed fleet. Deterministic given cfg; feed the points to
// cost.ParetoSearch for the frontier or cost.CheapestCompliant for a
// recommendation.
func ForecastFrontier(cfg ForecastConfig) ([]cost.PlanPoint, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}

	batch := scenario.NewBatch(cfg.Seed)
	add := func(kind deploy.Kind, sk scenario.ScalerKind) string {
		name := kind.String() + "/" + sk.String()
		batch.Add(name, scenario.Config{
			Seed:              cfg.Seed,
			Kind:              kind,
			Growth:            cfg.Growth,
			ReqPerStudentHour: cfg.ReqPerStudentHour,
			Duration:          cfg.Duration,
			Diurnal:           cfg.Diurnal,
			EnableCDN:         cfg.EnableCDN,
			Scaler:            sk,
		})
		return name
	}
	for _, kind := range []deploy.Kind{deploy.Public, deploy.Hybrid} {
		for _, sk := range forecastScalers() {
			add(kind, sk)
		}
	}
	add(deploy.Private, scenario.ScalerFixed)

	runs, err := batch.RunOn(cfg.Pool)
	if err != nil {
		return nil, fmt.Errorf("core: forecast grid: %w", err)
	}

	rates := cost.DefaultRates()
	months := cfg.Duration.Hours() / 730
	var points []cost.PlanPoint

	point := func(kind deploy.Kind, sk scenario.ScalerKind, res *scenario.Result) cost.PlanPoint {
		return cost.PlanPoint{
			Model:     kind.String(),
			Scaler:    sk.String(),
			Mix:       "on-demand",
			USD:       res.Cost.Total(),
			P95:       res.Latency.P95(),
			ErrorRate: res.ErrorRate(),
			VMHours:   res.VMHoursPublic + res.VMHoursPrivate,
		}
	}

	// Public: three purchase mixes per scaler. The run bills on-demand;
	// a mix swaps only the compute component, latency untouched — the
	// purchase knob is invisible to the queue.
	for _, sk := range forecastScalers() {
		res := runs.Result(deploy.Public.String() + "/" + sk.String())
		rank := billedRankHours(res, rates.Public)
		base := point(deploy.Public, sk, res)
		nonCompute := res.Cost.Total() - res.Cost.Compute
		for _, m := range []struct {
			name string
			mix  cost.PurchaseMix
		}{
			{"on-demand", cost.AllOnDemandMix(rank)},
			{"reserved-mix", cost.OptimizeReservedMix(rank, months, rates.Public)},
			{"all-reserved", cost.AllReservedMix(rank, months)},
		} {
			p := base
			p.Mix = m.name
			p.Reserved = m.mix.Reserved
			p.USD = nonCompute + m.mix.ComputeUSD(rates.Public)
			points = append(points, p)
		}
	}
	for _, sk := range forecastScalers() {
		res := runs.Result(deploy.Hybrid.String() + "/" + sk.String())
		points = append(points, point(deploy.Hybrid, sk, res))
	}
	res := runs.Result(deploy.Private.String() + "/" + scenario.ScalerFixed.String())
	points = append(points, point(deploy.Private, scenario.ScalerFixed, res))
	return points, nil
}

// billedRankHours converts the sampled fleet-size series into a
// utilization duration curve — rank[k] is how many hours at least k+1
// servers were running, the shape OptimizeReservedMix prices — and
// normalizes it so that pricing the whole curve on-demand reproduces the
// run's billed compute exactly. The normalization keeps the frontier on
// one pricing method: without it the sampled reconstruction diverges
// from the continuously-integrated bill (sampling granularity, boot
// edges), and the public rows would be priced differently from the
// hybrid/private rows that use res.Cost.Total() directly.
func billedRankHours(res *scenario.Result, p cost.PublicRates) []float64 {
	rank := rankHoursFromServers(res.Servers)
	if od := cost.AllOnDemandMix(rank).ComputeUSD(p); od > 0 && res.Cost.Compute > 0 {
		scale := res.Cost.Compute / od
		for k := range rank {
			rank[k] *= scale
		}
	}
	return rank
}

// rankHoursFromServers builds the raw duration curve from the fleet-size
// series. Each sample's fleet size holds until the next sample; the per-
// point duration comes from the timestamps, not an assumed cadence, so
// the curve's shape survives a change to the runner's sample timer. The
// final sample is extended by the preceding gap (the sampler is
// periodic); a single-sample series spans no measurable time.
func rankHoursFromServers(ts *metrics.TimeSeries) []float64 {
	pts := ts.Points()
	var rank []float64
	for i, p := range pts {
		var dt time.Duration
		switch {
		case i+1 < len(pts):
			dt = pts[i+1].At - p.At
		case i > 0:
			dt = p.At - pts[i-1].At
		default:
			return nil
		}
		n := int(p.Value)
		for len(rank) < n {
			rank = append(rank, 0)
		}
		for k := 0; k < n; k++ {
			rank[k] += dt.Hours()
		}
	}
	return rank
}
