package core

import (
	"time"

	"elearncloud/internal/deploy"
)

// This file models the paper's §III merit claims that are about client
// devices and software logistics rather than server load, so Table 1 can
// put a number next to every claim. Parameters are stated assumptions
// (documented per constant), not measurements; what matters is the
// cloud/desktop contrast, which is robust to the exact values.

const (
	// desktopBootSec: cold boot of a 2013 lab PC plus login scripts.
	desktopBootSec = 75
	// desktopAppLaunchSec: launching the locally installed LMS client.
	desktopAppLaunchSec = 20
	// cloudPageLoadSec: browser to a warmed cloud LMS ("boot and run
	// faster because they have fewer programs and processes loaded into
	// device memory", §III.2).
	cloudPageLoadSec = 2.5

	// techPCsPerDay: lab PCs one technician re-images in a day.
	techPCsPerDay = 25
	// cloudDeploySec: one rolling deploy updates every user ("updates
	// occur automatically and are available the next time you log on",
	// §III.3).
	cloudDeploySec = 1800

	// desktopManualSaveSec: how often users save locally (15 minutes).
	desktopManualSaveSec = 900
	// cloudAutosaveSec: cloud LMS autosave interval (1 minute for
	// document-style editing).
	cloudAutosaveSec = 60

	// deviceContinuity: probability that switching devices mid-course
	// keeps all work available ("your existing applications and
	// documents follow you through the cloud", §III.5).
	cloudDeviceContinuity   = 1.0
	desktopDeviceContinuity = 0.25
)

// SessionStartTime returns how long a learner waits from sitting down to
// working, per model (§III.2 "improved performance").
func SessionStartTime(kind deploy.Kind) time.Duration {
	if kind == deploy.Desktop {
		return time.Duration((desktopBootSec + desktopAppLaunchSec) * float64(time.Second))
	}
	return time.Duration(cloudPageLoadSec * float64(time.Second))
}

// UpdatePropagation returns how long a software update takes to reach
// every user (§III.3 "instant software updates"). Desktop fleets are
// re-imaged machine by machine; cloud deployments update once.
func UpdatePropagation(kind deploy.Kind, students, technicians int) time.Duration {
	if kind != deploy.Desktop {
		return time.Duration(cloudDeploySec * float64(time.Second))
	}
	if technicians < 1 {
		technicians = 1
	}
	pcs := (students + 3) / 4 // lab sharing ratio from cost.DesktopRates
	days := float64(pcs) / float64(techPCsPerDay*technicians)
	return time.Duration(days * 24 * float64(time.Hour))
}

// ExpectedCrashLoss returns the expected work lost when the learner's
// own computer crashes mid-session (§III.4 "increased data reliability":
// "even if the personal computer crashes, all data is still intact in
// the cloud"). Uniform crash timing loses half the save interval on
// average.
func ExpectedCrashLoss(kind deploy.Kind) time.Duration {
	if kind == deploy.Desktop {
		return time.Duration(desktopManualSaveSec / 2 * float64(time.Second))
	}
	return time.Duration(cloudAutosaveSec / 2 * float64(time.Second))
}

// DeviceContinuity returns the probability that a learner switching
// devices continues with all work intact (§III.5 "device independence").
func DeviceContinuity(kind deploy.Kind) float64 {
	if kind == deploy.Desktop {
		return desktopDeviceContinuity
	}
	return cloudDeviceContinuity
}
