// Package core is the paper's contribution made executable: the
// exhaustive comparison of cloud deployment models against e-learning
// requirements (Leloğlu, Ayav & Aslan 2013, §IV-§V). It measures each
// model with the simulation substrates, normalizes the measurements
// into a requirement scorecard, and recommends a model for an
// institution profile — the "customers can choose one of cloud
// deployment models, depending on their requirements" sentence, turned
// into a function.
//
// The pipeline, in call order:
//
//   - MeasureInputs(MeasureConfig) runs every deployment model through
//     the same scenario workload (on a shared scenario.Pool when
//     MeasureConfig.Pool is set — the batch is parallel-safe) and
//     returns raw Inputs; MeasureForProfile wraps it for a named
//     Profile.
//   - BuildScorecard(Inputs) normalizes the raw measurements into a
//     0–1 Scorecard over the paper's Requirements (Cost, Scalability,
//     Security, ... — see Requirements()).
//   - Scorecard.Recommend(Profile) weights the scorecard with the
//     profile's priorities and ranks the models; Explain renders the
//     recommendation as the sentence table6 prints.
//
// RuralSchool, MidCollege and NationalPlatform are the three built-in
// profiles (cmd/eladvisor exposes them as -profile); the deterministic
// latency helpers (SessionStartTime, UpdatePropagation, DeviceContinuity,
// ExpectedCrashLoss) supply the requirement inputs that need no
// simulation. table3 and table6 are this package's artifacts.
package core
