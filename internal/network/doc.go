// Package network models the connectivity substrate between e-learning
// users and the datacenters that serve them: links with latency and
// bandwidth, multi-hop paths, and stochastic failure processes for the
// "stable Internet connections are often essential" risk the paper
// lists in §III (figure5 measures the lost-work consequence).
//
// The model is intentionally flow-level, not packet-level: a request
// experiences the sum of per-link latencies plus a size/bandwidth
// transfer term inflated by current link concurrency. That is the
// right fidelity for comparing deployment models, where what matters
// is WAN vs LAN latency, last-mile outages, and congestion — not TCP
// dynamics.
//
// Entry points:
//
//   - AccessProfile presets (CampusLAN, UrbanBroadband, RuralDSL) name
//     the three last-mile situations the experiments sweep; cmd/elsim
//     exposes them as -access.
//   - BuildTopology(engine, profile) assembles the user→datacenter
//     Topology for a scenario run from Links (NewLink: latency
//     distribution + bandwidth) joined into Paths (NewPath).
//   - NewFailureProcess(engine, rng, mtbf, mttr) drives a link's
//     up/down process on the virtual clock; Steady() is the
//     never-fails instance for experiments that isolate other risks.
package network
