package network

import (
	"time"

	"elearncloud/internal/metrics"
	"elearncloud/internal/sim"
)

// FailureProcess drives a component through alternating up/down periods:
// up durations are Exp(MTBF), down durations Exp(MTTR). It is the model
// behind the paper's risk that "if a Cloud connection gets terminated
// during a session, users may lose time, work, or even unsaved data".
type FailureProcess struct {
	eng  *sim.Engine
	rng  *sim.RNG
	mtbf float64 // mean seconds between failures
	mttr float64 // mean seconds to repair

	up        bool
	avail     *metrics.Availability
	listeners []func(up bool)
	next      *sim.Event
	stopped   bool
}

// NewFailureProcess starts a process that is up at creation and schedules
// its first failure. mtbf and mttr are in seconds and must be positive.
// A process with mtbf = +Inf never fails; use Steady for that.
func NewFailureProcess(eng *sim.Engine, rng *sim.RNG, mtbf, mttr float64) *FailureProcess {
	if eng == nil || rng == nil {
		panic("network: NewFailureProcess with nil engine or rng")
	}
	if mtbf <= 0 || mttr <= 0 {
		panic("network: NewFailureProcess with non-positive MTBF/MTTR")
	}
	f := &FailureProcess{
		eng:   eng,
		rng:   rng,
		mtbf:  mtbf,
		mttr:  mttr,
		up:    true,
		avail: metrics.NewAvailability(),
	}
	f.scheduleTransition()
	return f
}

// Steady returns a process that never fails: it reports Up forever. It
// models campus LAN availability in baselines where outages are out of
// scope.
func Steady() *FailureProcess {
	return &FailureProcess{up: true, avail: metrics.NewAvailability(), stopped: true}
}

// Up reports the current state.
func (f *FailureProcess) Up() bool { return f.up }

// OnChange registers a callback invoked after every state transition.
func (f *FailureProcess) OnChange(fn func(up bool)) {
	if fn != nil {
		f.listeners = append(f.listeners, fn)
	}
}

// Stop halts future transitions (the process stays in its current state).
func (f *FailureProcess) Stop() {
	f.stopped = true
	if f.next != nil {
		f.eng.Cancel(f.next)
		f.next = nil
	}
}

// Availability finalizes and returns the availability tracker as of now.
func (f *FailureProcess) Availability() *metrics.Availability {
	if f.eng != nil {
		f.avail.Finish(f.eng.Now())
	}
	return f.avail
}

// ExpectedAvailability returns the analytic steady-state availability
// MTBF/(MTBF+MTTR); tests compare the simulated ratio against it.
func (f *FailureProcess) ExpectedAvailability() float64 {
	if f.mtbf <= 0 {
		return 1
	}
	return f.mtbf / (f.mtbf + f.mttr)
}

func (f *FailureProcess) scheduleTransition() {
	if f.stopped {
		return
	}
	var wait time.Duration
	if f.up {
		wait = sim.Seconds(f.rng.Exp(f.mtbf))
	} else {
		wait = sim.Seconds(f.rng.Exp(f.mttr))
	}
	f.next = f.eng.Schedule(wait, "failure-transition", func() {
		f.up = !f.up
		f.avail.SetState(f.eng.Now(), f.up)
		for _, fn := range f.listeners {
			fn(f.up)
		}
		f.scheduleTransition()
	})
}
