package network

import (
	"elearncloud/internal/sim"
)

// AccessProfile parameterizes the client side of a topology: how good the
// users' Internet is. The paper motivates rural deployments, so profiles
// range from campus LAN to poor rural DSL.
type AccessProfile struct {
	// Name labels the profile ("campus-lan", "urban-broadband", "rural").
	Name string
	// LatencyMean and LatencySigma parameterize a LogNormal one-way
	// last-mile latency, in seconds.
	LatencyMean  float64
	LatencySigma float64
	// Mbps is the last-mile bandwidth.
	Mbps float64
	// MTBF / MTTR, in seconds, of the last-mile connection; zero MTBF
	// means the connection never fails.
	MTBF float64
	MTTR float64
}

// Standard access profiles used across experiments.
var (
	// CampusLAN is the on-premise baseline: sub-millisecond, reliable.
	CampusLAN = AccessProfile{
		Name: "campus-lan", LatencyMean: 0.0005, LatencySigma: 0.2, Mbps: 1000,
	}
	// UrbanBroadband is a good home connection.
	UrbanBroadband = AccessProfile{
		Name: "urban-broadband", LatencyMean: 0.015, LatencySigma: 0.4, Mbps: 50,
		MTBF: 14 * 24 * 3600, MTTR: 600,
	}
	// RuralDSL is the paper's motivating rural learner: slow and flaky.
	RuralDSL = AccessProfile{
		Name: "rural-dsl", LatencyMean: 0.045, LatencySigma: 0.6, Mbps: 4,
		MTBF: 2 * 24 * 3600, MTTR: 1800,
	}
)

// Topology bundles the paths from a user population to each deployment
// target. Build one per scenario with BuildTopology.
type Topology struct {
	// ToCloud reaches a public-cloud region over the Internet.
	ToCloud *Path
	// ToCampus reaches the on-premise/private datacenter.
	ToCampus *Path
	// ToEdge reaches the nearest CDN edge: the last mile plus a short
	// metro hop, skipping the backbone entirely.
	ToEdge *Path
	// LastMile is the shared access link (nil for pure-LAN profiles).
	LastMile *Link
}

// BuildTopology constructs the standard three-segment topology:
//
//	client --last-mile--> internet backbone --> provider edge   (ToCloud)
//	client --last-mile--> campus core                           (ToCampus)
//
// For the CampusLAN profile the last mile *is* the campus network, so
// ToCampus skips the backbone and never fails.
func BuildTopology(eng *sim.Engine, access AccessProfile) *Topology {
	rng := eng.Stream("network/" + access.Name)

	lastMile := NewLink("last-mile/"+access.Name,
		sim.LogNormal(access.LatencyMean, access.LatencySigma), access.Mbps)
	// The last mile stands for every user's own access line: bandwidth
	// is per-subscriber (no cross-user sharing), but outages hit the
	// region at once.
	lastMile.Dedicated = true
	if access.MTBF > 0 && access.MTTR > 0 {
		lastMile.AttachFailure(NewFailureProcess(eng, rng.Stream("fail"), access.MTBF, access.MTTR))
	}

	backbone := NewLink("internet-backbone",
		sim.LogNormal(0.02, 0.3), 10_000)
	providerEdge := NewLink("provider-edge",
		sim.LogNormal(0.002, 0.3), 10_000)
	campusCore := NewLink("campus-core",
		sim.LogNormal(0.0005, 0.2), 10_000)
	cdnEdge := NewLink("cdn-edge",
		sim.LogNormal(0.008, 0.3), 40_000)

	t := &Topology{LastMile: lastMile}
	t.ToCloud = NewPath("to-cloud/"+access.Name, lastMile, backbone, providerEdge)
	t.ToEdge = NewPath("to-edge/"+access.Name, lastMile, cdnEdge)
	if access.Name == CampusLAN.Name {
		t.ToCampus = NewPath("to-campus/"+access.Name, lastMile, campusCore)
	} else {
		// Off-campus users still traverse the Internet to reach the
		// campus datacenter.
		t.ToCampus = NewPath("to-campus/"+access.Name, lastMile, backbone, campusCore)
	}
	return t
}
