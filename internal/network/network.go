package network

import (
	"fmt"

	"elearncloud/internal/sim"
)

// Link is one network segment (last-mile DSL, Internet backbone, campus
// LAN, provider edge).
type Link struct {
	// Name labels the link in reports.
	Name string
	// Latency is the one-way propagation+queueing latency in seconds.
	Latency sim.Dist
	// Mbps is the nominal bandwidth in megabits per second.
	Mbps float64
	// Dedicated marks per-user capacity: a last-mile line belongs to one
	// subscriber, so flows of *different* users do not share it and
	// EffectiveMbps never degrades with concurrency. Shared backbone and
	// campus links leave this false.
	Dedicated bool

	fail      *FailureProcess
	transfers int // active flows sharing the link
}

// NewLink builds a link. Latency must be non-nil and Mbps positive.
func NewLink(name string, latency sim.Dist, mbps float64) *Link {
	if latency == nil {
		panic("network: NewLink with nil latency")
	}
	if mbps <= 0 {
		panic("network: NewLink with non-positive bandwidth")
	}
	return &Link{Name: name, Latency: latency, Mbps: mbps}
}

// AttachFailure associates a failure process with the link; while the
// process is down the link is down.
func (l *Link) AttachFailure(f *FailureProcess) { l.fail = f }

// Up reports whether the link is currently usable.
func (l *Link) Up() bool { return l.fail == nil || l.fail.Up() }

// Failure returns the attached failure process, or nil.
func (l *Link) Failure() *FailureProcess { return l.fail }

// BeginTransfer registers a flow on the link and returns a release
// function. Concurrency degrades effective bandwidth for everyone
// (fair-share approximation).
func (l *Link) BeginTransfer() (release func()) {
	l.transfers++
	released := false
	return func() {
		if released {
			return
		}
		released = true
		l.transfers--
		if l.transfers < 0 {
			panic(fmt.Sprintf("network: link %q transfer count went negative", l.Name))
		}
	}
}

// ActiveTransfers returns the number of flows currently on the link.
func (l *Link) ActiveTransfers() int { return l.transfers }

// EffectiveMbps returns the per-flow bandwidth a new flow would get now.
// Dedicated links always grant full line rate (concurrency on them comes
// from different users' private lines, not contention).
func (l *Link) EffectiveMbps() float64 {
	if l.Dedicated {
		return l.Mbps
	}
	n := l.transfers
	if n < 1 {
		n = 1
	}
	return l.Mbps / float64(n)
}

// Path is an ordered sequence of links from a client to a service.
type Path struct {
	// Name labels the path ("student->public-cloud").
	Name string

	links []*Link
}

// NewPath builds a path over links. At least one link is required.
func NewPath(name string, links ...*Link) *Path {
	if len(links) == 0 {
		panic("network: NewPath with no links")
	}
	return &Path{Name: name, links: links}
}

// Links returns the path's links in order (shared slice; do not mutate).
func (p *Path) Links() []*Link { return p.links }

// Up reports whether every link on the path is up.
func (p *Path) Up() bool {
	for _, l := range p.links {
		if !l.Up() {
			return false
		}
	}
	return true
}

// Latency samples the one-way path latency in seconds.
func (p *Path) Latency(rng *sim.RNG) float64 {
	sum := 0.0
	for _, l := range p.links {
		sum += l.Latency.Sample(rng)
	}
	return sum
}

// BottleneckMbps returns the smallest effective per-flow bandwidth along
// the path given current concurrency.
func (p *Path) BottleneckMbps() float64 {
	min := p.links[0].EffectiveMbps()
	for _, l := range p.links[1:] {
		if v := l.EffectiveMbps(); v < min {
			min = v
		}
	}
	return min
}

// TransferTime samples the total time in seconds to move payloadBytes
// over the path: round-trip setup latency plus the serialized transfer at
// the bottleneck's effective bandwidth.
func (p *Path) TransferTime(rng *sim.RNG, payloadBytes float64) float64 {
	lat := p.Latency(rng) * 2 // request + response
	if payloadBytes <= 0 {
		return lat
	}
	bits := payloadBytes * 8
	return lat + bits/(p.BottleneckMbps()*1e6)
}

// BeginTransfer registers a flow on every link of the path; the returned
// release frees all of them.
func (p *Path) BeginTransfer() (release func()) {
	releases := make([]func(), len(p.links))
	for i, l := range p.links {
		releases[i] = l.BeginTransfer()
	}
	return func() {
		for _, r := range releases {
			r()
		}
	}
}
