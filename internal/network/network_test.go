package network

import (
	"math"
	"testing"
	"time"

	"elearncloud/internal/sim"
)

func TestLinkBasics(t *testing.T) {
	l := NewLink("dsl", sim.Constant(0.01), 10)
	if !l.Up() {
		t.Fatal("link without failure process must be up")
	}
	if l.EffectiveMbps() != 10 {
		t.Fatalf("EffectiveMbps = %v", l.EffectiveMbps())
	}
}

func TestLinkConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil latency": func() { NewLink("x", nil, 10) },
		"zero mbps":   func() { NewLink("x", sim.Constant(0.01), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLinkBandwidthSharing(t *testing.T) {
	l := NewLink("shared", sim.Constant(0.001), 100)
	r1 := l.BeginTransfer()
	r2 := l.BeginTransfer()
	if l.ActiveTransfers() != 2 {
		t.Fatalf("ActiveTransfers = %d", l.ActiveTransfers())
	}
	if l.EffectiveMbps() != 50 {
		t.Fatalf("EffectiveMbps = %v, want 50 with 2 flows", l.EffectiveMbps())
	}
	r1()
	r1() // double release is a no-op
	if l.ActiveTransfers() != 1 {
		t.Fatalf("ActiveTransfers = %d after release", l.ActiveTransfers())
	}
	r2()
	if l.EffectiveMbps() != 100 {
		t.Fatalf("EffectiveMbps = %v after all released", l.EffectiveMbps())
	}
}

func TestDedicatedLinkIgnoresConcurrency(t *testing.T) {
	l := NewLink("dsl", sim.Constant(0.01), 20)
	l.Dedicated = true
	r1 := l.BeginTransfer()
	r2 := l.BeginTransfer()
	if l.EffectiveMbps() != 20 {
		t.Fatalf("dedicated EffectiveMbps = %v, want full 20", l.EffectiveMbps())
	}
	r1()
	r2()
}

func TestBuildTopologyLastMileIsDedicated(t *testing.T) {
	eng := sim.NewEngine(1)
	topo := BuildTopology(eng, UrbanBroadband)
	if !topo.LastMile.Dedicated {
		t.Fatal("last mile must be per-subscriber")
	}
	for _, l := range topo.ToCloud.Links()[1:] {
		if l.Dedicated {
			t.Fatalf("shared link %s marked dedicated", l.Name)
		}
	}
}

func TestPathLatencyAndTransfer(t *testing.T) {
	rng := sim.NewRNG(1)
	a := NewLink("a", sim.Constant(0.010), 100)
	b := NewLink("b", sim.Constant(0.020), 10)
	p := NewPath("p", a, b)
	if got := p.Latency(rng); math.Abs(got-0.030) > 1e-12 {
		t.Fatalf("Latency = %v, want 0.030", got)
	}
	if got := p.BottleneckMbps(); got != 10 {
		t.Fatalf("Bottleneck = %v, want 10", got)
	}
	// 1 MB over 10 Mbps = 0.8 s + 2*30ms latency.
	got := p.TransferTime(rng, 1e6)
	want := 0.06 + 8e6/10e6
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
	// Zero payload is pure round-trip latency.
	if got := p.TransferTime(rng, 0); math.Abs(got-0.06) > 1e-12 {
		t.Fatalf("empty TransferTime = %v", got)
	}
}

func TestPathBeginTransferTouchesAllLinks(t *testing.T) {
	a := NewLink("a", sim.Constant(0.01), 100)
	b := NewLink("b", sim.Constant(0.01), 100)
	p := NewPath("p", a, b)
	release := p.BeginTransfer()
	if a.ActiveTransfers() != 1 || b.ActiveTransfers() != 1 {
		t.Fatal("BeginTransfer missed a link")
	}
	release()
	if a.ActiveTransfers() != 0 || b.ActiveTransfers() != 0 {
		t.Fatal("release missed a link")
	}
}

func TestPathUpReflectsLinkFailures(t *testing.T) {
	eng := sim.NewEngine(3)
	l := NewLink("flaky", sim.Constant(0.01), 10)
	f := NewFailureProcess(eng, eng.Stream("f"), 60, 30)
	l.AttachFailure(f)
	p := NewPath("p", l)
	downSeen := false
	f.OnChange(func(up bool) {
		if !up {
			downSeen = true
			if p.Up() {
				t.Error("path up while link down")
			}
		}
	})
	if err := eng.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if !downSeen {
		t.Fatal("no failure observed in an hour with 60s MTBF")
	}
}

func TestFailureProcessAvailabilityMatchesAnalytic(t *testing.T) {
	eng := sim.NewEngine(11)
	f := NewFailureProcess(eng, eng.Stream("f"), 3600, 400)
	if err := eng.Run(5000 * time.Hour); err != nil {
		t.Fatal(err)
	}
	got := f.Availability().Ratio()
	want := f.ExpectedAvailability()
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("availability = %v, want ~%v", got, want)
	}
	if f.Availability().Outages() == 0 {
		t.Fatal("no outages recorded")
	}
}

func TestFailureProcessStop(t *testing.T) {
	eng := sim.NewEngine(13)
	f := NewFailureProcess(eng, eng.Stream("f"), 10, 5)
	f.Stop()
	if err := eng.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if !f.Up() {
		t.Fatal("stopped process changed state")
	}
}

func TestSteadyNeverFails(t *testing.T) {
	f := Steady()
	if !f.Up() {
		t.Fatal("Steady must be up")
	}
	if f.ExpectedAvailability() < 1 {
		t.Fatalf("Steady expected availability = %v", f.ExpectedAvailability())
	}
}

func TestFailureProcessPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	for name, fn := range map[string]func(){
		"nil engine": func() { NewFailureProcess(nil, sim.NewRNG(1), 10, 10) },
		"nil rng":    func() { NewFailureProcess(eng, nil, 10, 10) },
		"zero mtbf":  func() { NewFailureProcess(eng, sim.NewRNG(1), 0, 10) },
		"zero mttr":  func() { NewFailureProcess(eng, sim.NewRNG(1), 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBuildTopologyLANvsWAN(t *testing.T) {
	eng := sim.NewEngine(17)
	rng := eng.Stream("probe")

	lan := BuildTopology(eng, CampusLAN)
	wan := BuildTopology(eng, RuralDSL)

	// LAN to campus must be much faster than rural to cloud.
	lanLat := avgLatency(lan.ToCampus, rng, 200)
	cloudLat := avgLatency(wan.ToCloud, rng, 200)
	if lanLat >= cloudLat {
		t.Fatalf("LAN latency %v >= rural cloud latency %v", lanLat, cloudLat)
	}
	if lanLat > 0.005 {
		t.Fatalf("LAN campus latency %v too high", lanLat)
	}
	if cloudLat < 0.05 {
		t.Fatalf("rural cloud latency %v suspiciously low", cloudLat)
	}

	// Rural last mile has a failure process; campus LAN does not.
	if wan.LastMile.Failure() == nil {
		t.Fatal("rural last mile must have a failure process")
	}
	if lan.LastMile.Failure() != nil {
		t.Fatal("campus LAN must not have a failure process")
	}

	// Off-campus users reach campus through the backbone: 3 links.
	if got := len(wan.ToCampus.Links()); got != 3 {
		t.Fatalf("rural ToCampus links = %d, want 3", got)
	}
	if got := len(lan.ToCampus.Links()); got != 2 {
		t.Fatalf("lan ToCampus links = %d, want 2", got)
	}
}

func avgLatency(p *Path, rng *sim.RNG, n int) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += p.Latency(rng)
	}
	return sum / float64(n)
}

func TestAccessProfilesDistinct(t *testing.T) {
	if CampusLAN.Mbps <= RuralDSL.Mbps {
		t.Fatal("LAN must outrun rural DSL")
	}
	if UrbanBroadband.MTBF <= RuralDSL.MTBF {
		t.Fatal("urban connections must fail less often than rural")
	}
}
