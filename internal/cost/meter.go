package cost

import (
	"fmt"
	"math"
)

// Usage is the raw consumption a simulation measured over a period.
type Usage struct {
	// Months is the accounting period length.
	Months float64
	// VMHoursOnDemand and VMHoursReserved are public-cloud compute hours
	// billed at the respective rates.
	VMHoursOnDemand float64
	VMHoursReserved float64
	// EgressGB is data transferred out of the public cloud.
	EgressGB float64
	// CDNGB is data delivered through the provider's CDN.
	CDNGB float64
	// StorageGBMonths is public object storage (GB × months).
	StorageGBMonths float64
	// PrivateHosts is the owned fleet size (constant over the period).
	PrivateHosts int
	// HybridMonths bills dual-platform governance plus the amortized
	// setup engagement for this many months (0 for non-hybrid).
	HybridMonths float64
	// DesktopStudents sizes the lab fleet for the desktop baseline.
	DesktopStudents int
}

// Validate rejects negative consumption.
func (u Usage) Validate() error {
	switch {
	case u.Months < 0, u.VMHoursOnDemand < 0, u.VMHoursReserved < 0,
		u.EgressGB < 0, u.CDNGB < 0, u.StorageGBMonths < 0, u.PrivateHosts < 0,
		u.HybridMonths < 0, u.DesktopStudents < 0:
		return fmt.Errorf("cost: negative usage component: %+v", u)
	}
	return nil
}

// Report is an itemized cost breakdown in USD for a Usage period.
type Report struct {
	// Compute is rented VM-hours (on-demand + reserved).
	Compute float64
	// Egress is public data-transfer-out.
	Egress float64
	// CDN is content-delivery traffic.
	CDN float64
	// Storage is public object storage.
	Storage float64
	// Capex is the amortized share of owned hardware for the period.
	Capex float64
	// Power is electricity including PUE overhead.
	Power float64
	// Staff is administration labor.
	Staff float64
	// Maintenance is parts/warranty/incidents on owned hardware.
	Maintenance float64
	// Integration is hybrid setup + governance overhead.
	Integration float64
	// Desktop is the lab-PC baseline bundle (capex+license+support).
	Desktop float64
}

// Total sums all components.
func (r Report) Total() float64 {
	return r.Compute + r.Egress + r.CDN + r.Storage + r.Capex + r.Power +
		r.Staff + r.Maintenance + r.Integration + r.Desktop
}

// Add returns the component-wise sum of two reports.
func (r Report) Add(o Report) Report {
	return Report{
		Compute:     r.Compute + o.Compute,
		Egress:      r.Egress + o.Egress,
		CDN:         r.CDN + o.CDN,
		Storage:     r.Storage + o.Storage,
		Capex:       r.Capex + o.Capex,
		Power:       r.Power + o.Power,
		Staff:       r.Staff + o.Staff,
		Maintenance: r.Maintenance + o.Maintenance,
		Integration: r.Integration + o.Integration,
		Desktop:     r.Desktop + o.Desktop,
	}
}

// String renders the breakdown compactly.
func (r Report) String() string {
	return fmt.Sprintf(
		"total=$%.2f (compute=%.2f egress=%.2f cdn=%.2f storage=%.2f capex=%.2f power=%.2f staff=%.2f maint=%.2f integ=%.2f desktop=%.2f)",
		r.Total(), r.Compute, r.Egress, r.CDN, r.Storage, r.Capex, r.Power,
		r.Staff, r.Maintenance, r.Integration, r.Desktop)
}

// Rates bundles every price sheet a deployment might touch.
type Rates struct {
	Public  PublicRates
	Private PrivateRates
	Hybrid  HybridOverhead
	Desktop DesktopRates
}

// DefaultRates returns all default price sheets.
func DefaultRates() Rates {
	return Rates{
		Public:  DefaultPublicRates(),
		Private: DefaultPrivateRates(),
		Hybrid:  DefaultHybridOverhead(),
		Desktop: DefaultDesktopRates(),
	}
}

// Bill prices a Usage under the given rates.
func Bill(u Usage, rates Rates) (Report, error) {
	if err := u.Validate(); err != nil {
		return Report{}, err
	}
	var r Report

	// Public side.
	r.Compute = u.VMHoursOnDemand*rates.Public.OnDemandHourly +
		u.VMHoursReserved*rates.Public.ReservedHourly
	r.Egress = u.EgressGB * rates.Public.EgressPerGB
	r.CDN = u.CDNGB * rates.Public.CDNPerGB
	r.Storage = u.StorageGBMonths * rates.Public.StoragePerGBMonth

	// Private side.
	if u.PrivateHosts > 0 && u.Months > 0 {
		hosts := float64(u.PrivateHosts)
		monthlyCapex := rates.Private.HostCapexUSD / (rates.Private.AmortizationYears * 12)
		r.Capex = hosts * monthlyCapex * u.Months

		kw := rates.Private.HostPowerWatts / 1000 * rates.Private.PUE
		hours := u.Months * 730 // mean hours per month
		r.Power = hosts * kw * hours * rates.Private.PowerPerKWh

		fte := hosts / rates.Private.AdminHostsPerFTE
		if fte < rates.Private.MinAdminFTE {
			fte = rates.Private.MinAdminFTE
		}
		r.Staff = fte * rates.Private.AdminSalaryYear / 12 * u.Months

		r.Maintenance = hosts * rates.Private.MaintenancePerHostYear / 12 * u.Months
	}

	// Hybrid overhead: governance plus the amortized setup engagement.
	if u.HybridMonths > 0 {
		amort := rates.Hybrid.SetupAmortMonths
		if amort <= 0 {
			amort = 36
		}
		r.Integration = u.HybridMonths * (rates.Hybrid.MonthlyUSD + rates.Hybrid.SetupUSD/amort)
	}

	// Desktop baseline.
	if u.DesktopStudents > 0 && u.Months > 0 {
		pcs := math.Ceil(float64(u.DesktopStudents) / rates.Desktop.StudentsPerPC)
		monthlyPC := rates.Desktop.PCCapexUSD/(rates.Desktop.AmortizationYears*12) +
			(rates.Desktop.LicensePerPCYear+rates.Desktop.SupportPerPCYear)/12
		r.Desktop = pcs * monthlyPC * u.Months
	}
	return r, nil
}

// PerStudentMonth normalizes a report to USD per student per month.
func PerStudentMonth(r Report, students int, months float64) float64 {
	if students <= 0 || months <= 0 {
		return 0
	}
	return r.Total() / float64(students) / months
}

// BreakevenMonthlyHours returns the running hours per month above which
// a reserved instance undercuts on-demand for the same capacity: the
// reservation's effective hourly price is charged around the clock, so
// it pays off once utilization exceeds the price ratio.
func BreakevenMonthlyHours(p PublicRates) float64 {
	if p.OnDemandHourly <= 0 {
		return math.Inf(1)
	}
	return 730 * p.ReservedHourly / p.OnDemandHourly
}

// PurchaseMix is the result of optimizing the reserved/on-demand split
// for an elastic fleet.
type PurchaseMix struct {
	// Reserved is how many instance slots to reserve.
	Reserved int
	// ReservedHours bills at the reserved rate: every reserved slot is
	// paid for around the clock whether used or not.
	ReservedHours float64
	// OnDemandHours is the remaining burst capacity billed hourly.
	OnDemandHours float64
}

// ComputeUSD prices the mix.
func (m PurchaseMix) ComputeUSD(p PublicRates) float64 {
	return m.ReservedHours*p.ReservedHourly + m.OnDemandHours*p.OnDemandHourly
}

// OptimizeReservedMix chooses how many slots to reserve given the
// fleet's utilization duration curve: rankHours[k] is how many hours the
// (k+1)-th server was running over the period of `months` months. Slots
// that run longer than the breakeven are reserved (and then billed for
// the full period); the rest stay on-demand. The duration curve is
// nonincreasing by construction, so the split is a prefix.
func OptimizeReservedMix(rankHours []float64, months float64, p PublicRates) PurchaseMix {
	if months <= 0 {
		return PurchaseMix{}
	}
	breakeven := BreakevenMonthlyHours(p) * months
	var mix PurchaseMix
	for _, h := range rankHours {
		if h > breakeven {
			mix.Reserved++
			mix.ReservedHours += 730 * months
			continue
		}
		mix.OnDemandHours += h
	}
	return mix
}

// AllOnDemandMix prices the same curve with no reservations.
func AllOnDemandMix(rankHours []float64) PurchaseMix {
	var mix PurchaseMix
	for _, h := range rankHours {
		mix.OnDemandHours += h
	}
	return mix
}

// AllReservedMix reserves a slot for every rank that ever ran.
func AllReservedMix(rankHours []float64, months float64) PurchaseMix {
	var mix PurchaseMix
	for _, h := range rankHours {
		if h > 0 {
			mix.Reserved++
			mix.ReservedHours += 730 * months
		}
	}
	return mix
}
