// Package cost provides the accounting substrate: what each deployment
// model actually costs. Public clouds bill VM-hours, egress and
// storage; private clouds amortize capital hardware and pay for power,
// cooling, staff and maintenance ("the organization needs to provide
// adequate power, cooling, and general maintenance" — paper §IV.B);
// hybrids pay both plus the integration and consultancy overhead §IV.C
// warns about. A desktop baseline prices the pre-cloud computer-lab
// alternative for the paper's §III merit comparison.
//
// Entry points:
//
//   - Bill(Usage, Rates) is the single metering call: a scenario run
//     accumulates Usage (VM-hours by location, egress, storage, staff
//     time) and Bill turns it into an itemized Report; Report.Total and
//     PerStudentMonth are what the TCO artifacts (figure3, table7)
//     plot.
//   - DefaultRates bundles the 2013-era price book: DefaultPublicRates,
//     DefaultPrivateRates, DefaultDesktopRates and
//     DefaultHybridOverhead, each overridable per experiment.
//   - PurchaseMix models §IV.A's purchasing lever: AllOnDemandMix,
//     AllReservedMix and OptimizeReservedMix pick reserved-instance
//     coverage from a ranked VM-hours curve — the ablation table8
//     sweeps. BreakevenMonthlyHours is the closed-form crossover.
package cost
