package cost

// PublicRates prices rented infrastructure (2013-era list prices).
type PublicRates struct {
	// OnDemandHourly is the pay-as-you-go VM price in USD/hour.
	OnDemandHourly float64
	// ReservedHourly is the effective hourly price for reserved VMs.
	ReservedHourly float64
	// EgressPerGB prices data transfer out in USD/GB.
	EgressPerGB float64
	// CDNPerGB prices content-delivery-network traffic in USD/GB
	// (volume CDN rates undercut raw egress).
	CDNPerGB float64
	// StoragePerGBMonth prices object storage in USD/GB-month.
	StoragePerGBMonth float64
}

// DefaultPublicRates matches the deploy.DefaultProvider "m.large" flavor.
func DefaultPublicRates() PublicRates {
	return PublicRates{
		OnDemandHourly:    0.24,
		ReservedHourly:    0.136,
		EgressPerGB:       0.12,
		CDNPerGB:          0.06,
		StoragePerGBMonth: 0.095,
	}
}

// PrivateRates prices owned infrastructure.
type PrivateRates struct {
	// HostCapexUSD is the purchase price of one host.
	HostCapexUSD float64
	// AmortizationYears spreads capex straight-line.
	AmortizationYears float64
	// HostPowerWatts is the average draw per host under load.
	HostPowerWatts float64
	// PUE is the power-usage-effectiveness multiplier (cooling and
	// distribution overhead; 2013 campus server rooms ran ~1.8).
	PUE float64
	// PowerPerKWh is the electricity tariff in USD/kWh.
	PowerPerKWh float64
	// AdminHostsPerFTE is how many hosts one administrator runs.
	AdminHostsPerFTE float64
	// AdminSalaryYear is the loaded annual cost of that administrator.
	AdminSalaryYear float64
	// MinAdminFTE is the floor: owning any hardware costs at least this
	// much attention (a quarter of a person, realistically).
	MinAdminFTE float64
	// MaintenancePerHostYear covers parts, warranty and incidents.
	MaintenancePerHostYear float64
}

// DefaultPrivateRates returns 2013-era campus figures.
func DefaultPrivateRates() PrivateRates {
	return PrivateRates{
		HostCapexUSD:           8000,
		AmortizationYears:      4,
		HostPowerWatts:         400,
		PUE:                    1.8,
		PowerPerKWh:            0.10,
		AdminHostsPerFTE:       20,
		AdminSalaryYear:        60000,
		MinAdminFTE:            0.25,
		MaintenancePerHostYear: 800,
	}
}

// HybridOverhead prices what §IV.C calls "more expertise and increased
// consultancy costs ... to install and maintain the system".
type HybridOverhead struct {
	// SetupUSD is the one-time integration/consultancy engagement,
	// amortized over SetupAmortMonths like any capital outlay.
	SetupUSD float64
	// SetupAmortMonths spreads the engagement (default 36).
	SetupAmortMonths float64
	// MonthlyUSD is ongoing governance across two platforms.
	MonthlyUSD float64
}

// DefaultHybridOverhead returns a modest integration engagement.
func DefaultHybridOverhead() HybridOverhead {
	return HybridOverhead{SetupUSD: 15000, SetupAmortMonths: 36, MonthlyUSD: 1500}
}

// DesktopRates prices the pre-cloud baseline: locally installed software
// in computer labs.
type DesktopRates struct {
	// PCCapexUSD is the price of one lab PC.
	PCCapexUSD float64
	// AmortizationYears spreads PC capex.
	AmortizationYears float64
	// StudentsPerPC is the sharing ratio in labs.
	StudentsPerPC float64
	// LicensePerPCYear is the locally installed software license.
	LicensePerPCYear float64
	// SupportPerPCYear covers imaging, repairs and upgrades — the
	// "high-powered and high-priced computer" burden §III.1 removes.
	SupportPerPCYear float64
}

// DefaultDesktopRates returns 2013-era lab figures.
func DefaultDesktopRates() DesktopRates {
	return DesktopRates{
		PCCapexUSD:        700,
		AmortizationYears: 4,
		StudentsPerPC:     4,
		LicensePerPCYear:  90,
		SupportPerPCYear:  150,
	}
}
