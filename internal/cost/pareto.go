package cost

import "sort"

// This file generalizes OptimizeReservedMix — one purchase knob, one
// objective — into a Pareto search over whole deployment plans: a
// deployment model, a scaling policy and a purchase mix evaluated
// together, with cost and tail latency as the two objectives. The
// advisor's -forecast mode runs a plan grid through a simulated growth
// curve, hands the evaluated points here, and reads the answer off the
// frontier.

// PlanPoint is one evaluated deployment plan: the knob settings and the
// simulated outcome. The knobs are labels, not live objects, so the
// package stays free of simulation dependencies and a frontier can be
// rendered or diffed as plain data.
type PlanPoint struct {
	// Model is the deployment model ("public", "private", "hybrid").
	Model string
	// Scaler is the elasticity policy the plan runs.
	Scaler string
	// Mix names the purchase strategy ("on-demand", "reserved-mix",
	// "all-reserved"); Reserved is its reserved-slot count.
	Mix      string
	Reserved int
	// USD is the total bill over the evaluated horizon.
	USD float64
	// P95 is the achieved tail latency in seconds.
	P95 float64
	// ErrorRate is the rejected+offline fraction, carried for reports.
	ErrorRate float64
	// VMHours is rented compute consumption, carried for reports.
	VMHours float64
}

// dominates reports whether a beats b on both objectives, strictly on
// at least one.
func dominates(a, b PlanPoint) bool {
	if a.USD > b.USD || a.P95 > b.P95 {
		return false
	}
	return a.USD < b.USD || a.P95 < b.P95
}

// SortPlans orders points in place by (USD, P95, Model, Scaler, Mix) —
// a total order over the fields that identify a plan, so every consumer
// renders the same sequence whatever order the grid was evaluated in.
func SortPlans(points []PlanPoint) {
	sort.Slice(points, func(i, j int) bool {
		a, b := points[i], points[j]
		if a.USD != b.USD {
			return a.USD < b.USD
		}
		if a.P95 != b.P95 {
			return a.P95 < b.P95
		}
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Scaler != b.Scaler {
			return a.Scaler < b.Scaler
		}
		return a.Mix < b.Mix
	})
}

// ParetoSearch returns the nondominated subset of the evaluated plans —
// the cost/latency frontier, cheapest first. A plan survives unless
// some other plan is at least as good on both objectives and strictly
// better on one; duplicates of a surviving outcome all survive, so
// equally-priced equally-fast plans stay visible to the caller.
func ParetoSearch(points []PlanPoint) []PlanPoint {
	var frontier []PlanPoint
	for _, p := range points {
		dominated := false
		for _, q := range points {
			if dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, p)
		}
	}
	SortPlans(frontier)
	return frontier
}

// CheapestCompliant returns the cheapest plan whose P95 meets the SLO
// (seconds), and whether any does. Ties break by the SortPlans order.
func CheapestCompliant(points []PlanPoint, sloP95 float64) (PlanPoint, bool) {
	var compliant []PlanPoint
	for _, p := range points {
		if p.P95 <= sloP95 {
			compliant = append(compliant, p)
		}
	}
	if len(compliant) == 0 {
		return PlanPoint{}, false
	}
	SortPlans(compliant)
	return compliant[0], true
}

// BestUnderBudget returns the lowest-latency plan costing at most
// budget USD, and whether any fits. Latency ties break cheaper-first
// (then the SortPlans order), so relaxing the budget never makes the
// recommendation worse — the weak monotonicity the advisor invariant
// checks.
func BestUnderBudget(points []PlanPoint, budget float64) (PlanPoint, bool) {
	var affordable []PlanPoint
	for _, p := range points {
		if p.USD <= budget {
			affordable = append(affordable, p)
		}
	}
	if len(affordable) == 0 {
		return PlanPoint{}, false
	}
	sort.Slice(affordable, func(i, j int) bool {
		a, b := affordable[i], affordable[j]
		if a.P95 != b.P95 {
			return a.P95 < b.P95
		}
		if a.USD != b.USD {
			return a.USD < b.USD
		}
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Scaler != b.Scaler {
			return a.Scaler < b.Scaler
		}
		return a.Mix < b.Mix
	})
	return affordable[0], true
}
