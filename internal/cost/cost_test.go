package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBillPublicOnly(t *testing.T) {
	u := Usage{
		Months:          1,
		VMHoursOnDemand: 100,
		VMHoursReserved: 200,
		EgressGB:        50,
		StorageGBMonths: 1000,
	}
	r, err := Bill(u, DefaultRates())
	if err != nil {
		t.Fatal(err)
	}
	wantCompute := 100*0.24 + 200*0.136
	if math.Abs(r.Compute-wantCompute) > 1e-9 {
		t.Fatalf("Compute = %v, want %v", r.Compute, wantCompute)
	}
	if math.Abs(r.Egress-6.0) > 1e-9 {
		t.Fatalf("Egress = %v, want 6", r.Egress)
	}
	if math.Abs(r.Storage-95.0) > 1e-9 {
		t.Fatalf("Storage = %v, want 95", r.Storage)
	}
	if r.Capex != 0 || r.Staff != 0 || r.Integration != 0 || r.Desktop != 0 {
		t.Fatalf("public-only bill has private components: %v", r)
	}
}

func TestBillPrivateOnly(t *testing.T) {
	u := Usage{Months: 12, PrivateHosts: 10}
	r, err := Bill(u, DefaultRates())
	if err != nil {
		t.Fatal(err)
	}
	// Capex: 10 hosts * $8000/48 months * 12 = $20,000.
	if math.Abs(r.Capex-20000) > 1e-6 {
		t.Fatalf("Capex = %v, want 20000", r.Capex)
	}
	// Power: 10 * 0.4kW * 1.8 * 730h * 12 * $0.10 = $6307.2.
	if math.Abs(r.Power-6307.2) > 1e-6 {
		t.Fatalf("Power = %v, want 6307.2", r.Power)
	}
	// Staff: 10/20 FTE = 0.5 * 60000 = $30,000/yr.
	if math.Abs(r.Staff-30000) > 1e-6 {
		t.Fatalf("Staff = %v, want 30000", r.Staff)
	}
	// Maintenance: 10 * 800 = $8000/yr.
	if math.Abs(r.Maintenance-8000) > 1e-6 {
		t.Fatalf("Maintenance = %v, want 8000", r.Maintenance)
	}
	if r.Compute != 0 || r.Desktop != 0 {
		t.Fatalf("private-only bill has rented components: %v", r)
	}
}

func TestBillMinAdminFloor(t *testing.T) {
	u := Usage{Months: 12, PrivateHosts: 1}
	r, err := Bill(u, DefaultRates())
	if err != nil {
		t.Fatal(err)
	}
	// 1 host would be 0.05 FTE; the floor is 0.25 FTE = $15,000/yr.
	if math.Abs(r.Staff-15000) > 1e-6 {
		t.Fatalf("Staff = %v, want floor 15000", r.Staff)
	}
}

func TestBillHybridOverhead(t *testing.T) {
	u := Usage{Months: 12, HybridMonths: 12}
	r, err := Bill(u, DefaultRates())
	if err != nil {
		t.Fatal(err)
	}
	// 12 months of governance plus 12/36 of the setup engagement.
	want := 12*1500.0 + 15000.0/36*12
	if math.Abs(r.Integration-want) > 1e-9 {
		t.Fatalf("Integration = %v, want %v", r.Integration, want)
	}
}

func TestBillDesktopBaseline(t *testing.T) {
	u := Usage{Months: 12, DesktopStudents: 400}
	r, err := Bill(u, DefaultRates())
	if err != nil {
		t.Fatal(err)
	}
	// 100 PCs: capex 700/48*12 = 175/yr each; license+support 240/yr.
	want := 100 * (175.0 + 240.0)
	if math.Abs(r.Desktop-want) > 1e-6 {
		t.Fatalf("Desktop = %v, want %v", r.Desktop, want)
	}
}

func TestBillRejectsNegativeUsage(t *testing.T) {
	if _, err := Bill(Usage{Months: -1}, DefaultRates()); err == nil {
		t.Fatal("negative months accepted")
	}
	if _, err := Bill(Usage{EgressGB: -5}, DefaultRates()); err == nil {
		t.Fatal("negative egress accepted")
	}
}

func TestReportTotalAndAdd(t *testing.T) {
	a := Report{Compute: 1, Egress: 2, Storage: 3, Capex: 4, Power: 5,
		Staff: 6, Maintenance: 7, Integration: 8, Desktop: 9}
	if a.Total() != 45 {
		t.Fatalf("Total = %v", a.Total())
	}
	b := a.Add(a)
	if b.Total() != 90 {
		t.Fatalf("Add Total = %v", b.Total())
	}
	if s := a.String(); len(s) == 0 {
		t.Fatal("empty String")
	}
}

// Property: billing is additive — Bill(u1) + Bill(u2) == Bill(u1+u2)
// for usages without the nonlinear components (admin floor, setup fee,
// desktop ceil).
func TestBillAdditivityProperty(t *testing.T) {
	rates := DefaultRates()
	f := func(h1, h2, e1, e2, s1, s2 uint16) bool {
		u1 := Usage{Months: 1, VMHoursOnDemand: float64(h1), EgressGB: float64(e1), StorageGBMonths: float64(s1)}
		u2 := Usage{Months: 1, VMHoursOnDemand: float64(h2), EgressGB: float64(e2), StorageGBMonths: float64(s2)}
		sum := Usage{Months: 1,
			VMHoursOnDemand: u1.VMHoursOnDemand + u2.VMHoursOnDemand,
			EgressGB:        u1.EgressGB + u2.EgressGB,
			StorageGBMonths: u1.StorageGBMonths + u2.StorageGBMonths,
		}
		r1, err1 := Bill(u1, rates)
		r2, err2 := Bill(u2, rates)
		rs, err3 := Bill(sum, rates)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return math.Abs(r1.Total()+r2.Total()-rs.Total()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The paper's cost trade-off: at low sustained utilization public wins;
// at high sustained utilization private wins. Verify the crossover
// exists under default rates.
func TestPublicPrivateCrossoverExists(t *testing.T) {
	rates := DefaultRates()
	monthly := func(servers float64, hosts int) (pub, priv float64) {
		uPub := Usage{Months: 1, VMHoursOnDemand: servers * 730}
		uPriv := Usage{Months: 1, PrivateHosts: hosts}
		rp, err := Bill(uPub, rates)
		if err != nil {
			t.Fatal(err)
		}
		rv, err := Bill(uPriv, rates)
		if err != nil {
			t.Fatal(err)
		}
		return rp.Total(), rv.Total()
	}
	// Tiny school: 1 server average -> public should be far cheaper than
	// owning a host + a quarter admin.
	pub, priv := monthly(1, 1)
	if pub >= priv {
		t.Fatalf("small scale: public %v >= private %v", pub, priv)
	}
	// Large university: 64 steady servers on 8 hosts -> private wins.
	pub, priv = monthly(64, 8)
	if pub <= priv {
		t.Fatalf("large scale: public %v <= private %v", pub, priv)
	}
}

func TestPerStudentMonth(t *testing.T) {
	r := Report{Compute: 1200}
	if got := PerStudentMonth(r, 100, 12); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("PerStudentMonth = %v, want 1", got)
	}
	if PerStudentMonth(r, 0, 12) != 0 || PerStudentMonth(r, 100, 0) != 0 {
		t.Fatal("degenerate inputs must yield 0")
	}
}

func TestReservedCheaperThanOnDemand(t *testing.T) {
	rates := DefaultRates()
	od, err := Bill(Usage{Months: 1, VMHoursOnDemand: 730}, rates)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Bill(Usage{Months: 1, VMHoursReserved: 730}, rates)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Total() >= od.Total() {
		t.Fatalf("reserved %v >= on-demand %v", rs.Total(), od.Total())
	}
}

func TestBreakevenMonthlyHours(t *testing.T) {
	p := DefaultPublicRates()
	h := BreakevenMonthlyHours(p)
	// 730 * 0.136/0.24 ≈ 413.7 hours.
	if math.Abs(h-730*p.ReservedHourly/p.OnDemandHourly) > 1e-9 {
		t.Fatalf("breakeven = %v", h)
	}
	if !math.IsInf(BreakevenMonthlyHours(PublicRates{}), 1) {
		t.Fatal("zero on-demand price should mean never breakeven")
	}
}

func TestOptimizeReservedMix(t *testing.T) {
	p := DefaultPublicRates()
	// One always-on slot (730h), one half-time (365h), one rare (50h),
	// over one month. Breakeven ≈ 414h: only the first is reserved.
	curve := []float64{730, 365, 50}
	mix := OptimizeReservedMix(curve, 1, p)
	if mix.Reserved != 1 {
		t.Fatalf("Reserved = %d, want 1", mix.Reserved)
	}
	if mix.ReservedHours != 730 || mix.OnDemandHours != 415 {
		t.Fatalf("hours = %v reserved / %v on-demand", mix.ReservedHours, mix.OnDemandHours)
	}
	// The optimum beats both pure strategies for this curve.
	opt := mix.ComputeUSD(p)
	od := AllOnDemandMix(curve).ComputeUSD(p)
	ar := AllReservedMix(curve, 1).ComputeUSD(p)
	if opt > od || opt > ar {
		t.Fatalf("optimal %v beaten by pure (%v / %v)", opt, od, ar)
	}
	// Degenerate months.
	if m := OptimizeReservedMix(curve, 0, p); m.Reserved != 0 || m.OnDemandHours != 0 {
		t.Fatal("zero-months mix not empty")
	}
}

func TestAllReservedSkipsUnusedRanks(t *testing.T) {
	mix := AllReservedMix([]float64{100, 0, 0}, 1)
	if mix.Reserved != 1 {
		t.Fatalf("Reserved = %d, want 1 (unused ranks skipped)", mix.Reserved)
	}
}

// Property: the optimized mix never costs more than either pure
// strategy, for any nonincreasing duration curve.
func TestOptimizeReservedMixOptimalProperty(t *testing.T) {
	p := DefaultPublicRates()
	f := func(raw []uint16) bool {
		// Build a nonincreasing curve within one month's hours.
		curve := make([]float64, 0, len(raw))
		prev := 730.0
		for _, r := range raw {
			h := float64(r % 731)
			if h > prev {
				h = prev
			}
			curve = append(curve, h)
			prev = h
		}
		opt := OptimizeReservedMix(curve, 1, p).ComputeUSD(p)
		od := AllOnDemandMix(curve).ComputeUSD(p)
		ar := AllReservedMix(curve, 1).ComputeUSD(p)
		return opt <= od+1e-9 && opt <= ar+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultRatesSane(t *testing.T) {
	r := DefaultRates()
	if r.Private.PUE < 1 {
		t.Fatal("PUE below 1 is thermodynamically optimistic")
	}
	if r.Public.ReservedHourly >= r.Public.OnDemandHourly {
		t.Fatal("reservations must discount")
	}
	if r.Hybrid.SetupUSD <= 0 || r.Hybrid.MonthlyUSD <= 0 {
		t.Fatal("hybrid overhead must be positive (paper §IV.C)")
	}
	if r.Desktop.StudentsPerPC <= 0 {
		t.Fatal("lab sharing ratio must be positive")
	}
}
