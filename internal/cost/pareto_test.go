package cost

import (
	"reflect"
	"testing"
)

func planGrid() []PlanPoint {
	return []PlanPoint{
		{Model: "public", Scaler: "reactive", Mix: "on-demand", USD: 30, P95: 2.0},
		{Model: "public", Scaler: "growth-fit", Mix: "on-demand", USD: 32, P95: 0.5},
		{Model: "public", Scaler: "growth-fit", Mix: "reserved-mix", USD: 28, P95: 0.5},
		{Model: "private", Scaler: "fixed", Mix: "on-demand", USD: 10, P95: 0.8},
		{Model: "hybrid", Scaler: "growth-fit", Mix: "on-demand", USD: 45, P95: 0.4},
		{Model: "public", Scaler: "predictive", Mix: "on-demand", USD: 35, P95: 3.0},
	}
}

func TestParetoSearchFrontier(t *testing.T) {
	frontier := ParetoSearch(planGrid())
	want := []PlanPoint{
		{Model: "private", Scaler: "fixed", Mix: "on-demand", USD: 10, P95: 0.8},
		{Model: "public", Scaler: "growth-fit", Mix: "reserved-mix", USD: 28, P95: 0.5},
		{Model: "hybrid", Scaler: "growth-fit", Mix: "on-demand", USD: 45, P95: 0.4},
	}
	if !reflect.DeepEqual(frontier, want) {
		t.Fatalf("frontier = %+v\nwant %+v", frontier, want)
	}
}

func TestParetoSearchKeepsDuplicateOutcomes(t *testing.T) {
	points := []PlanPoint{
		{Model: "a", USD: 10, P95: 1},
		{Model: "b", USD: 10, P95: 1},
		{Model: "c", USD: 20, P95: 2},
	}
	frontier := ParetoSearch(points)
	if len(frontier) != 2 || frontier[0].Model != "a" || frontier[1].Model != "b" {
		t.Fatalf("duplicate-outcome plans must both survive: %+v", frontier)
	}
}

func TestParetoSearchEmpty(t *testing.T) {
	if f := ParetoSearch(nil); len(f) != 0 {
		t.Fatalf("empty input gave %+v", f)
	}
}

func TestCheapestCompliant(t *testing.T) {
	grid := planGrid()
	best, ok := CheapestCompliant(grid, 0.6)
	if !ok || best.Scaler != "growth-fit" || best.Mix != "reserved-mix" {
		t.Fatalf("slo 0.6: %+v ok=%v", best, ok)
	}
	// A looser SLO admits the cheaper private point.
	best, ok = CheapestCompliant(grid, 1.0)
	if !ok || best.Model != "private" {
		t.Fatalf("slo 1.0: %+v ok=%v", best, ok)
	}
	if _, ok := CheapestCompliant(grid, 0.1); ok {
		t.Fatal("impossible SLO reported compliant plan")
	}
}

func TestBestUnderBudget(t *testing.T) {
	grid := planGrid()
	best, ok := BestUnderBudget(grid, 30)
	if !ok || best.P95 != 0.5 || best.Mix != "reserved-mix" {
		t.Fatalf("budget 30: %+v ok=%v", best, ok)
	}
	best, ok = BestUnderBudget(grid, 100)
	if !ok || best.Model != "hybrid" {
		t.Fatalf("budget 100: %+v ok=%v", best, ok)
	}
	if _, ok := BestUnderBudget(grid, 1); ok {
		t.Fatal("impossible budget reported affordable plan")
	}
}

// TestBestUnderBudgetWeaklyMonotone is the unit form of the advisor
// invariant: raising the budget must never yield a slower
// recommendation.
func TestBestUnderBudgetWeaklyMonotone(t *testing.T) {
	grid := planGrid()
	prev := -1.0
	for b := 5.0; b <= 60; b += 5 {
		best, ok := BestUnderBudget(grid, b)
		if !ok {
			continue
		}
		if prev >= 0 && best.P95 > prev {
			t.Fatalf("budget %.0f recommends P95 %.2f, worse than the tighter budget's %.2f",
				b, best.P95, prev)
		}
		prev = best.P95
	}
}

func TestSortPlansTotalOrder(t *testing.T) {
	a := []PlanPoint{
		{Model: "b", Scaler: "x", Mix: "m", USD: 10, P95: 1},
		{Model: "a", Scaler: "x", Mix: "m", USD: 10, P95: 1},
		{Model: "a", Scaler: "x", Mix: "l", USD: 10, P95: 1},
	}
	SortPlans(a)
	if a[0].Mix != "l" || a[1].Model != "a" || a[2].Model != "b" {
		t.Fatalf("tie-break order wrong: %+v", a)
	}
}
