package deploy

import "fmt"

// Kind is a deployment model.
type Kind int

// Deployment models. Desktop is the pre-cloud baseline: locally installed
// software on lab PCs, no datacenter at all.
const (
	Public Kind = iota + 1
	Private
	Hybrid
	Desktop
)

// String returns the model name as used in the paper.
func (k Kind) String() string {
	switch k {
	case Public:
		return "public"
	case Private:
		return "private"
	case Hybrid:
		return "hybrid"
	case Desktop:
		return "desktop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists the three cloud models in the paper's order.
func Kinds() []Kind { return []Kind{Public, Private, Hybrid} }

// DefaultLockinIndex returns the model's typical proprietary-interface
// adoption in [0,1] — how much of the system is built against provider-
// specific APIs. It parameterizes the migration-cost model; Section IV.A
// of the paper argues public-cloud systems accrete the most lock-in,
// hybrids are built portable by necessity, and private clouds use
// standard stacks.
func (k Kind) DefaultLockinIndex() float64 {
	switch k {
	case Public:
		return 0.7
	case Hybrid:
		return 0.3
	case Private:
		return 0.1
	default:
		return 0
	}
}
