package deploy

import (
	"strings"
	"testing"

	"elearncloud/internal/cloud"
	"elearncloud/internal/lms"
	"elearncloud/internal/sim"
)

func TestKindStringsAndList(t *testing.T) {
	want := map[Kind]string{
		Public: "public", Private: "private", Hybrid: "hybrid", Desktop: "desktop",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%v.String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string wrong")
	}
	ks := Kinds()
	if len(ks) != 3 || ks[0] != Public || ks[2] != Hybrid {
		t.Errorf("Kinds() = %v", ks)
	}
}

func TestLockinOrdering(t *testing.T) {
	if !(Public.DefaultLockinIndex() > Hybrid.DefaultLockinIndex() &&
		Hybrid.DefaultLockinIndex() > Private.DefaultLockinIndex()) {
		t.Fatal("lock-in must order public > hybrid > private (paper §IV)")
	}
	if Desktop.DefaultLockinIndex() != 0 {
		t.Fatal("desktop baseline has no cloud lock-in")
	}
}

func TestDefaultProviderCatalog(t *testing.T) {
	c := DefaultProvider()
	if len(c.Types) < 3 {
		t.Fatalf("too few instance types: %d", len(c.Types))
	}
	for _, it := range c.Types {
		if it.OnDemandHourly <= 0 || it.ReservedHourly <= 0 {
			t.Errorf("%s: non-positive price", it.Name)
		}
		if it.ReservedHourly >= it.OnDemandHourly {
			t.Errorf("%s: reserved (%v) must undercut on-demand (%v)",
				it.Name, it.ReservedHourly, it.OnDemandHourly)
		}
		if it.Res.IsZero() || !it.Res.Valid() {
			t.Errorf("%s: bad resources %v", it.Name, it.Res)
		}
		spec := it.Spec()
		if spec.BootDelay == nil {
			t.Errorf("%s: nil boot delay", it.Name)
		}
	}
	if c.EgressPerGB <= 0 || c.StoragePerGBMonth <= 0 {
		t.Fatal("non-positive transfer/storage prices")
	}
}

func TestCatalogLookup(t *testing.T) {
	c := DefaultProvider()
	it, err := c.Type("m.large")
	if err != nil {
		t.Fatal(err)
	}
	if it.Res.CPU != 4 {
		t.Fatalf("m.large CPU = %v", it.Res.CPU)
	}
	if _, err := c.Type("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("bad-type error = %v", err)
	}
}

func TestCatalogCheapest(t *testing.T) {
	c := DefaultProvider()
	it, err := c.Cheapest(cloud.Resources{CPU: 2, Mem: 3, Disk: 100})
	if err != nil {
		t.Fatal(err)
	}
	if it.Name != "m.medium" {
		t.Fatalf("Cheapest = %s, want m.medium", it.Name)
	}
	if _, err := c.Cheapest(cloud.Resources{CPU: 999}); err == nil {
		t.Fatal("impossible demand satisfied")
	}
}

func TestServersForPeak(t *testing.T) {
	tests := []struct {
		rps, svc, util float64
		want           int
	}{
		{100, 0.03, 0.6, 5}, // 3 busy -> 5 at 60%
		{0, 0.03, 0.6, 1},   // degenerate
		{100, 0.03, 0, 5},   // default util
		{1, 0.001, 0.6, 1},  // tiny load -> floor 1
		{1000, 0.03, 0.5, 60},
	}
	for _, tt := range tests {
		if got := ServersForPeak(tt.rps, tt.svc, tt.util); got != tt.want {
			t.Errorf("ServersForPeak(%v,%v,%v) = %d, want %d",
				tt.rps, tt.svc, tt.util, got, tt.want)
		}
	}
}

func TestVMsPerHost(t *testing.T) {
	host := cloud.Resources{CPU: 16, Mem: 64, Disk: 8000}
	tests := []struct {
		vm   cloud.Resources
		want int
	}{
		{cloud.Resources{CPU: 4, Mem: 7.5, Disk: 850}, 4},   // CPU-bound
		{cloud.Resources{CPU: 1, Mem: 32, Disk: 10}, 2},     // memory-bound
		{cloud.Resources{CPU: 1, Mem: 1, Disk: 4000}, 2},    // disk-bound
		{cloud.Resources{CPU: 32, Mem: 1, Disk: 1}, 1},      // bigger than host
		{cloud.Resources{CPU: 0, Mem: 0, Disk: 0}, 1 << 20}, // degenerate
	}
	for _, tt := range tests {
		if got := VMsPerHost(host, tt.vm); got != tt.want {
			t.Errorf("VMsPerHost(%v) = %d, want %d", tt.vm, got, tt.want)
		}
	}
}

// Sizing regression: the private fleet deploy.Build plans must actually
// fit on the hosts it allocates — for every dimension, not just CPU.
func TestPrivateFleetCapacityMatchesPlan(t *testing.T) {
	eng := sim.NewEngine(1)
	spec := baseSpec(Private)
	spec.ExpectedPeakRPS = 300 // 300*0.03/0.6 = 15 servers
	d, err := Build(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.ServersAtPeak; i++ {
		if _, err := d.PrivateDC.Provision(d.PrivateSpec, nil); err != nil {
			t.Fatalf("server %d/%d did not fit the planned hosts: %v",
				i+1, d.ServersAtPeak, err)
		}
	}
}

func baseSpec(kind Kind) Spec {
	return Spec{
		Kind:            kind,
		Students:        500,
		Courses:         20,
		ExpectedPeakRPS: 50,
		MeanServiceSec:  0.03,
	}
}

func TestBuildPublic(t *testing.T) {
	eng := sim.NewEngine(1)
	d, err := Build(eng, baseSpec(Public))
	if err != nil {
		t.Fatal(err)
	}
	if d.PublicDC == nil || d.PrivateDC != nil {
		t.Fatal("public deployment shape wrong")
	}
	if d.Assets.Count(lms.OnPrivate) != 0 {
		t.Fatal("public deployment left assets in-house")
	}
	if d.ServersAtPeak != 3 { // 50*0.03/0.6 = 2.5 -> 3
		t.Fatalf("ServersAtPeak = %d, want 3", d.ServersAtPeak)
	}
	if len(d.Datacenters()) != 1 {
		t.Fatal("Datacenters() wrong")
	}
	d.Shutdown()
}

func TestBuildPrivate(t *testing.T) {
	eng := sim.NewEngine(1)
	d, err := Build(eng, baseSpec(Private))
	if err != nil {
		t.Fatal(err)
	}
	if d.PrivateDC == nil || d.PublicDC != nil {
		t.Fatal("private deployment shape wrong")
	}
	if d.Assets.Count(lms.OnPublic) != 0 {
		t.Fatal("private deployment put assets on public cloud")
	}
	if d.PrivateHosts < 1 {
		t.Fatal("no private hosts sized")
	}
	// Fixed capacity: the DC must not be elastic.
	vmSpec := d.PrivateSpec
	var provisioned int
	for {
		if _, err := d.PrivateDC.Provision(vmSpec, nil); err != nil {
			break
		}
		provisioned++
		if provisioned > 1000 {
			t.Fatal("private datacenter appears elastic")
		}
	}
	if provisioned == 0 {
		t.Fatal("could not provision anything on private DC")
	}
}

func TestBuildHybrid(t *testing.T) {
	eng := sim.NewEngine(1)
	spec := baseSpec(Hybrid)
	spec.Policy = DefaultHybridPolicy()
	d, err := Build(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.PublicDC == nil || d.PrivateDC == nil {
		t.Fatal("hybrid needs both sides")
	}
	// Sensitive assets pinned in-house, bulk content public.
	if d.Assets.SensitiveCount(lms.OnPublic) != 0 {
		t.Fatal("hybrid leaked sensitive assets to public")
	}
	if d.Assets.Count(lms.OnPublic) == 0 {
		t.Fatal("hybrid placed nothing on public side")
	}
	if len(d.Datacenters()) != 2 {
		t.Fatal("Datacenters() wrong")
	}
}

func TestBuildHybridWithoutPinning(t *testing.T) {
	eng := sim.NewEngine(1)
	spec := baseSpec(Hybrid)
	spec.Policy = HybridPolicy{SensitivePrivate: false, PrivateBaseShare: 0.3}
	d, err := Build(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.Assets.SensitiveCount(lms.OnPublic) == 0 {
		t.Fatal("unpinned hybrid should place sensitive assets publicly")
	}
}

func TestBuildDesktop(t *testing.T) {
	eng := sim.NewEngine(1)
	d, err := Build(eng, baseSpec(Desktop))
	if err != nil {
		t.Fatal(err)
	}
	if d.PublicDC != nil || d.PrivateDC != nil {
		t.Fatal("desktop baseline must have no datacenters")
	}
	if len(d.Datacenters()) != 0 {
		t.Fatal("Datacenters() wrong")
	}
}

func TestBuildValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	cases := map[string]Spec{
		"zero students": {Kind: Public, Students: 0},
		"neg courses":   {Kind: Public, Students: 10, Courses: -1},
		"bad policy":    {Kind: Hybrid, Students: 10, Policy: HybridPolicy{PrivateBaseShare: 2}},
		"bad kind":      {Kind: Kind(42), Students: 10},
		"bad itype":     {Kind: Public, Students: 10, InstanceTypeName: "nope"},
	}
	for name, spec := range cases {
		if _, err := Build(eng, spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := Build(nil, baseSpec(Public)); err == nil {
		t.Error("nil engine accepted")
	}
}

func TestHybridPrivateSizedToShare(t *testing.T) {
	eng := sim.NewEngine(1)
	full := baseSpec(Private)
	full.ExpectedPeakRPS = 400 // 400*0.03/0.6 = 20 servers
	dFull, err := Build(eng, full)
	if err != nil {
		t.Fatal(err)
	}
	half := baseSpec(Hybrid)
	half.ExpectedPeakRPS = 400
	half.Policy = HybridPolicy{SensitivePrivate: true, PrivateBaseShare: 0.5}
	dHalf, err := Build(sim.NewEngine(1), half)
	if err != nil {
		t.Fatal(err)
	}
	if dHalf.PrivateHosts >= dFull.PrivateHosts {
		t.Fatalf("hybrid private side (%d hosts) should be smaller than full private (%d)",
			dHalf.PrivateHosts, dFull.PrivateHosts)
	}
}
