package deploy

import (
	"fmt"

	"elearncloud/internal/cloud"
	"elearncloud/internal/sim"
)

// InstanceType is a purchasable VM flavor with its 2013-era list prices.
type InstanceType struct {
	// Name is the flavor name ("m.small").
	Name string
	// Res is the flavor's resource footprint.
	Res cloud.Resources
	// OnDemandHourly is the pay-as-you-go price in USD per hour.
	OnDemandHourly float64
	// ReservedHourly is the effective hourly price with a 1-year
	// reservation (upfront amortized in).
	ReservedHourly float64
	// BootMeanSec is the mean provisioning latency in seconds.
	BootMeanSec float64
}

// Spec converts the type into a cloud.InstanceSpec with a log-normal boot
// delay around BootMeanSec.
func (it InstanceType) Spec() cloud.InstanceSpec {
	return cloud.InstanceSpec{
		Name:      it.Name,
		Res:       it.Res,
		BootDelay: sim.LogNormal(it.BootMeanSec, 0.3),
	}
}

// ProviderCatalog is a public cloud provider's price sheet.
type ProviderCatalog struct {
	// Provider names the vendor ("generic-2013", standing in for the
	// Amazon/Google/Microsoft offerings the paper cites).
	Provider string
	// Types are the purchasable flavors.
	Types []InstanceType
	// EgressPerGB is the data-transfer-out price in USD per GB.
	EgressPerGB float64
	// StoragePerGBMonth is object-storage pricing in USD per GB-month.
	StoragePerGBMonth float64
}

// DefaultProvider returns a catalog with early-2013 list prices (rounded):
// the era the paper surveys. Absolute figures matter less than their
// structure — small instances cheap, egress expensive enough to make
// repatriation hurt.
func DefaultProvider() *ProviderCatalog {
	return &ProviderCatalog{
		Provider: "generic-2013",
		Types: []InstanceType{
			{
				Name:           "m.small",
				Res:            cloud.Resources{CPU: 1, Mem: 1.7, Disk: 160},
				OnDemandHourly: 0.06, ReservedHourly: 0.034, BootMeanSec: 90,
			},
			{
				Name:           "m.medium",
				Res:            cloud.Resources{CPU: 2, Mem: 3.75, Disk: 410},
				OnDemandHourly: 0.12, ReservedHourly: 0.068, BootMeanSec: 90,
			},
			{
				Name:           "m.large",
				Res:            cloud.Resources{CPU: 4, Mem: 7.5, Disk: 850},
				OnDemandHourly: 0.24, ReservedHourly: 0.136, BootMeanSec: 100,
			},
			{
				Name:           "m.xlarge",
				Res:            cloud.Resources{CPU: 8, Mem: 15, Disk: 1690},
				OnDemandHourly: 0.48, ReservedHourly: 0.272, BootMeanSec: 110,
			},
		},
		EgressPerGB:       0.12,
		StoragePerGBMonth: 0.095,
	}
}

// Type returns the named flavor.
func (c *ProviderCatalog) Type(name string) (InstanceType, error) {
	for _, t := range c.Types {
		if t.Name == name {
			return t, nil
		}
	}
	return InstanceType{}, fmt.Errorf("deploy: provider %q has no instance type %q", c.Provider, name)
}

// Cheapest returns the lowest-price flavor that fits demand.
func (c *ProviderCatalog) Cheapest(demand cloud.Resources) (InstanceType, error) {
	var best InstanceType
	found := false
	for _, t := range c.Types {
		if !demand.Fits(t.Res) {
			continue
		}
		if !found || t.OnDemandHourly < best.OnDemandHourly {
			best, found = t, true
		}
	}
	if !found {
		return InstanceType{}, fmt.Errorf("deploy: no instance type fits %v", demand)
	}
	return best, nil
}
