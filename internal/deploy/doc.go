// Package deploy describes the three cloud deployment models the paper
// compares — public, private and hybrid — plus the on-premise desktop
// baseline its Section III merits are measured against. It provides a
// 2013-era public-provider price catalog, capacity sizing helpers, the
// hybrid "distribution of units" policy, and a builder that turns a
// declarative Spec into running datacenters on a simulation engine.
//
// Entry points:
//
//   - Kind enumerates the models (Public, Private, Hybrid, Desktop;
//     Kinds() in presentation order) and is the axis every comparison
//     artifact sweeps.
//   - Build(engine, Spec) constructs a Deployment: the cloud.Datacenter
//     set a model of that Kind gets, sized for the Spec's population.
//   - DefaultProvider is the 2013 public-cloud catalog (InstanceType
//     prices the scenario runs bill against); DefaultHybridPolicy is
//     §IV.C's "distribution of units" — which request classes stay on
//     the private side and which burst to public, the policy table4
//     ablates.
//   - ServersForPeak and VMsPerHost are the shared sizing arithmetic
//     (peak RPS → server count, host resources → VM packing) used by
//     both the builder and the fluid cost studies.
package deploy
