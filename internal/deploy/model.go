package deploy

import (
	"fmt"
	"math"

	"elearncloud/internal/cloud"
	"elearncloud/internal/lms"
	"elearncloud/internal/sim"
)

// HybridPolicy is the paper's §IV.C "distribution of units between these
// models": which side holds sensitive assets and how much steady capacity
// stays in-house.
type HybridPolicy struct {
	// SensitivePrivate pins exam questions and grades to the private
	// side. This is the policy the paper's security argument assumes.
	SensitivePrivate bool
	// PrivateBaseShare is the fraction of steady-state capacity served
	// from the private side; the remainder — and all burst — goes public.
	PrivateBaseShare float64
}

// DefaultHybridPolicy pins sensitive data private and serves half the
// steady load in-house.
func DefaultHybridPolicy() HybridPolicy {
	return HybridPolicy{SensitivePrivate: true, PrivateBaseShare: 0.5}
}

// Validate checks policy ranges.
func (p HybridPolicy) Validate() error {
	if p.PrivateBaseShare < 0 || p.PrivateBaseShare > 1 {
		return fmt.Errorf("deploy: PrivateBaseShare %v outside [0,1]", p.PrivateBaseShare)
	}
	return nil
}

// Spec declaratively describes a deployment to build.
type Spec struct {
	// Kind is the deployment model.
	Kind Kind
	// Students and Courses size the institution (and its asset store).
	Students int
	Courses  int
	// ExpectedPeakRPS is the sizing target: the peak aggregate request
	// rate the deployment must absorb.
	ExpectedPeakRPS float64
	// MeanServiceSec is the mean request CPU demand, used with
	// ExpectedPeakRPS to size server counts.
	MeanServiceSec float64
	// TargetUtil is the sizing headroom (default 0.6: size so peak load
	// uses 60% of capacity).
	TargetUtil float64
	// Provider is the public catalog (default DefaultProvider) and
	// InstanceTypeName the flavor to rent (default "m.large").
	Provider         *ProviderCatalog
	InstanceTypeName string
	// Policy applies to Hybrid deployments.
	Policy HybridPolicy
	// PrivateHostCapacity sizes on-premise hosts (default 16 cores /
	// 64 GB / 2 TB).
	PrivateHostCapacity cloud.Resources
}

// Deployment is a built deployment: datacenters on an engine plus the
// asset placement the model implies.
type Deployment struct {
	// Kind is the model this deployment realizes.
	Kind Kind
	// PublicDC is the rented, elastic, multi-tenant side (nil for
	// private-only and desktop).
	PublicDC *cloud.Datacenter
	// PrivateDC is the owned, fixed-capacity side (nil for public-only
	// and desktop).
	PrivateDC *cloud.Datacenter
	// Assets is the institution's inventory, placed per the model.
	Assets *lms.AssetStore
	// InstanceType is the public flavor rented.
	InstanceType InstanceType
	// PrivateSpec is the VM flavor carved out of private hosts.
	PrivateSpec cloud.InstanceSpec
	// Policy echoes the hybrid policy in force.
	Policy HybridPolicy
	// Provider echoes the catalog used.
	Provider *ProviderCatalog
	// ServersAtPeak is the sizing result: app servers needed at peak.
	ServersAtPeak int
	// PrivateHosts is the number of owned hosts (0 unless private side
	// exists).
	PrivateHosts int
}

// VMsPerHost returns how many VMs of the given flavor fit on one host,
// limited by the scarcest resource dimension. It never returns less
// than 1 (a flavor larger than the host still gets a dedicated host).
func VMsPerHost(host, vm cloud.Resources) int {
	fit := func(capacity, demand float64) int {
		if demand <= 0 {
			return 1 << 20
		}
		return int(capacity / demand)
	}
	per := fit(host.CPU, vm.CPU)
	if v := fit(host.Mem, vm.Mem); v < per {
		per = v
	}
	if v := fit(host.Disk, vm.Disk); v < per {
		per = v
	}
	if per < 1 {
		per = 1
	}
	return per
}

// ServersForPeak returns the number of single-VM app servers needed to
// absorb peakRPS of meanServiceSec work at targetUtil utilization. Each
// app server is modeled as one processor-sharing unit.
func ServersForPeak(peakRPS, meanServiceSec, targetUtil float64) int {
	if peakRPS <= 0 || meanServiceSec <= 0 {
		return 1
	}
	if targetUtil <= 0 || targetUtil > 1 {
		targetUtil = 0.6
	}
	n := int(math.Ceil(peakRPS * meanServiceSec / targetUtil))
	if n < 1 {
		n = 1
	}
	return n
}

// Build realizes a Spec on the engine. It creates datacenters but does
// not provision VMs — the autoscaler (or fixed-fleet bootstrap) in the
// scenario package does that, because VM counts are a runtime concern.
func Build(eng *sim.Engine, spec Spec) (*Deployment, error) {
	if eng == nil {
		return nil, fmt.Errorf("deploy: Build with nil engine")
	}
	if spec.Students <= 0 {
		return nil, fmt.Errorf("deploy: Students = %d, need > 0", spec.Students)
	}
	if spec.Courses < 0 {
		return nil, fmt.Errorf("deploy: Courses = %d, need >= 0", spec.Courses)
	}
	if err := spec.Policy.Validate(); err != nil {
		return nil, err
	}
	if spec.Provider == nil {
		spec.Provider = DefaultProvider()
	}
	if spec.InstanceTypeName == "" {
		spec.InstanceTypeName = "m.large"
	}
	if spec.TargetUtil == 0 {
		spec.TargetUtil = 0.6
	}
	if spec.PrivateHostCapacity.IsZero() {
		// Campus hosts hang off a storage array: disk is never the
		// packing bottleneck, CPU is.
		spec.PrivateHostCapacity = cloud.Resources{CPU: 16, Mem: 64, Disk: 8000}
	}
	itype, err := spec.Provider.Type(spec.InstanceTypeName)
	if err != nil {
		return nil, err
	}

	d := &Deployment{
		Kind:         spec.Kind,
		Assets:       lms.NewAssetStore(spec.Courses, spec.Students),
		InstanceType: itype,
		Provider:     spec.Provider,
		Policy:       spec.Policy,
		// The private side carves VMs of the same shape as the rented
		// flavor so comparisons are apples-to-apples; on-premise VMs
		// boot faster (no remote API, image is local).
		PrivateSpec: cloud.InstanceSpec{
			Name:      "pvt." + itype.Name,
			Res:       itype.Res,
			BootDelay: sim.LogNormal(40, 0.3),
		},
		ServersAtPeak: ServersForPeak(spec.ExpectedPeakRPS, spec.MeanServiceSec, spec.TargetUtil),
	}

	newPublic := func() *cloud.Datacenter {
		return cloud.NewDatacenter(eng, cloud.Config{
			Name:         "public",
			Hosts:        4, // grows elastically
			HostCapacity: cloud.Resources{CPU: 32, Mem: 128, Disk: 4000},
			Placer:       cloud.Spread{},
			MultiTenant:  true,
			Elastic:      true,
		})
	}
	hostsFor := func(servers int) int {
		// Pack by the bottleneck dimension, not just CPU: a flavor with
		// outsized disk or memory demands must not oversubscribe hosts,
		// or the "peak-sized" fleet silently comes up short.
		perHost := VMsPerHost(spec.PrivateHostCapacity, itype.Res)
		h := (servers + perHost - 1) / perHost
		if h < 1 {
			h = 1
		}
		return h
	}
	newPrivate := func(servers int) *cloud.Datacenter {
		d.PrivateHosts = hostsFor(servers)
		return cloud.NewDatacenter(eng, cloud.Config{
			Name:         "private",
			Hosts:        d.PrivateHosts,
			HostCapacity: spec.PrivateHostCapacity,
			Placer:       cloud.BestFit{},
			MultiTenant:  false,
			Elastic:      false,
		})
	}

	switch spec.Kind {
	case Public:
		d.PublicDC = newPublic()
		d.Assets.PlaceAll(lms.OnPublic)
	case Private:
		d.PrivateDC = newPrivate(d.ServersAtPeak)
		d.Assets.PlaceAll(lms.OnPrivate)
	case Hybrid:
		d.PublicDC = newPublic()
		// The private side is sized for its steady share only; bursts
		// ride the public cloud.
		privServers := int(math.Ceil(float64(d.ServersAtPeak) * spec.Policy.PrivateBaseShare))
		if privServers < 1 {
			privServers = 1
		}
		d.PrivateDC = newPrivate(privServers)
		if spec.Policy.SensitivePrivate {
			d.Assets.PlaceSensitive(lms.OnPrivate, lms.OnPublic)
		} else {
			d.Assets.PlaceAll(lms.OnPublic)
		}
	case Desktop:
		// No datacenters: locally installed software. Assets live on
		// campus machines (private).
		d.Assets.PlaceAll(lms.OnPrivate)
	default:
		return nil, fmt.Errorf("deploy: unknown kind %v", spec.Kind)
	}
	return d, nil
}

// Shutdown tears down both datacenters.
func (d *Deployment) Shutdown() {
	if d.PublicDC != nil {
		d.PublicDC.Shutdown()
	}
	if d.PrivateDC != nil {
		d.PrivateDC.Shutdown()
	}
}

// Datacenters returns the non-nil datacenters, public first.
func (d *Deployment) Datacenters() []*cloud.Datacenter {
	var out []*cloud.Datacenter
	if d.PublicDC != nil {
		out = append(out, d.PublicDC)
	}
	if d.PrivateDC != nil {
		out = append(out, d.PrivateDC)
	}
	return out
}
