package cdn

import (
	"math"
	"testing"
	"testing/quick"

	"elearncloud/internal/sim"
)

func TestCacheBasicsLRU(t *testing.T) {
	c := NewCache(2)
	if c.Access(1) {
		t.Fatal("empty cache hit")
	}
	if !c.Access(1) {
		t.Fatal("repeat access missed")
	}
	c.Access(2) // cache: [2,1]
	c.Access(1) // refresh 1: [1,2]
	c.Access(3) // evicts 2: [3,1]
	if c.Access(2) {
		t.Fatal("evicted entry still cached") // inserts 2, evicts 1: [2,3]
	}
	if !c.Access(3) {
		t.Fatal("recently inserted entry evicted")
	}
	if c.Access(1) {
		t.Fatal("LRU victim still cached")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCacheZeroCapacity(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < 10; i++ {
		if c.Access(1) {
			t.Fatal("zero-capacity cache hit")
		}
	}
	if c.HitRatio() != 0 {
		t.Fatal("hit ratio should be 0")
	}
	if c.Misses() != 10 {
		t.Fatalf("Misses = %d", c.Misses())
	}
}

func TestCacheCountersAndRatio(t *testing.T) {
	c := NewCache(4)
	c.Access(1)
	c.Access(1)
	c.Access(1)
	c.Access(2)
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
	if c.HitRatio() != 0.5 {
		t.Fatalf("HitRatio = %v", c.HitRatio())
	}
}

// Property: the cache never exceeds capacity and Len matches the map.
func TestCacheCapacityInvariant(t *testing.T) {
	f := func(ids []uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		c := NewCache(capacity)
		for _, id := range ids {
			c.Access(int(id))
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyticHitRatioProperties(t *testing.T) {
	if got := AnalyticHitRatio(100, 100, 1); got != 1 {
		t.Fatalf("full cache ratio = %v", got)
	}
	if got := AnalyticHitRatio(100, 0, 1); got != 0 {
		t.Fatalf("empty cache ratio = %v", got)
	}
	// Monotone in cache size.
	prev := 0.0
	for _, k := range []int{1, 5, 10, 25, 50, 75, 100} {
		r := AnalyticHitRatio(100, k, 1)
		if r < prev {
			t.Fatalf("hit ratio not monotone at K=%d", k)
		}
		prev = r
	}
	// Zipf(1), K=N/4: the top quarter carries well over half the mass.
	if r := AnalyticHitRatio(1000, 250, 1); r < 0.7 {
		t.Fatalf("quarter cache ratio = %v, want > 0.7", r)
	}
}

func TestLRUSimulatedMatchesAnalytic(t *testing.T) {
	cfg := Config{
		CatalogObjects: 1000, ObjectBytes: 2e6, CacheObjects: 250,
		ZipfS: 1.0, PricePerGB: 0.06, EdgeLatency: 0.008,
	}
	edge, err := NewEdge(cfg, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	for i := 0; i < n; i++ {
		edge.Serve(0)
	}
	analytic := AnalyticHitRatio(cfg.CatalogObjects, cfg.CacheObjects, cfg.ZipfS)
	got := edge.Cache().HitRatio()
	// LRU under Zipf(1) tracks ideal LFU within a few points.
	if math.Abs(got-analytic) > 0.08 {
		t.Fatalf("LRU ratio %v vs analytic %v", got, analytic)
	}
}

func TestEdgeAccounting(t *testing.T) {
	cfg := Config{
		CatalogObjects: 100, ObjectBytes: 1e6, CacheObjects: 100, // everything fits
		ZipfS: 1.0, PricePerGB: 0.06, EdgeLatency: 0.008,
	}
	edge, err := NewEdge(cfg, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		edge.Serve(0)
	}
	if edge.ServedGB() <= 0 {
		t.Fatal("no served bytes")
	}
	// With a cache that fits the catalog, origin traffic is bounded by
	// cold misses: at most catalog * objectBytes.
	maxOrigin := float64(cfg.CatalogObjects) * cfg.ObjectBytes / 1e9
	if edge.OriginGB() > maxOrigin {
		t.Fatalf("OriginGB %v exceeds cold-miss bound %v", edge.OriginGB(), maxOrigin)
	}
	// Delivery must be cheaper than raw egress of the same bytes.
	cdnCost := edge.DeliveryCostUSD(0.12)
	rawEgress := edge.ServedGB() * 0.12
	if cdnCost >= rawEgress {
		t.Fatalf("CDN %v >= raw egress %v", cdnCost, rawEgress)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{CatalogObjects: 0, ObjectBytes: 1, ZipfS: 1},
		{CatalogObjects: 10, CacheObjects: -1, ObjectBytes: 1, ZipfS: 1},
		{CatalogObjects: 10, ObjectBytes: 1, ZipfS: 0},
		{CatalogObjects: 10, ObjectBytes: 0, ZipfS: 1},
		{CatalogObjects: 10, ObjectBytes: 1, ZipfS: 1, PricePerGB: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("case %d validated", i)
		}
	}
	if err := DefaultConfig(80).Validate(); err != nil {
		t.Fatal(err)
	}
	if DefaultConfig(0).CatalogObjects <= 0 {
		t.Fatal("zero-course default broken")
	}
}

func TestNewEdgeRejectsBadConfig(t *testing.T) {
	if _, err := NewEdge(Config{}, sim.NewRNG(1)); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestEdgeDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		edge, err := NewEdge(DefaultConfig(40), sim.NewRNG(11))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50000; i++ {
			edge.Serve(0)
		}
		return edge.ServedGB(), edge.Cache().HitRatio()
	}
	s1, h1 := run()
	s2, h2 := run()
	if s1 != s2 || h1 != h2 {
		t.Fatal("edge not deterministic")
	}
}
