// Package cdn models an edge content-delivery network for the video
// side of the e-learning workload. It is the reproduction's first
// extension experiment: the headline Figure 3 finding — 2013 egress
// pricing makes video-heavy e-learning expensive to rent — is exactly
// why real 2013 platforms (Coursera, edX, Khan Academy) served video
// through CDNs. The cdn package quantifies how much of the public
// model's cost disadvantage a CDN recovers, which is what figure8
// (the CDN ablation on the cost crossover, §V) sweeps.
//
// Two fidelities, matching the scenario package:
//
//   - Edge (NewEdge, configured by Config / DefaultConfig) fronts the
//     request-level simulation with an exact LRU cache (Cache,
//     NewCache): every video request either hits at the edge or falls
//     through to origin egress.
//   - AnalyticHitRatio(catalogN, cacheK, s) is the closed-form
//     companion for fluid cost studies: the expected hit ratio of
//     caching the top-K items of a Zipf(s) popularity curve, so
//     semester-scale TCO sweeps never have to replay requests.
//
// scenario.Config.EnableCDN wires an Edge into an end-to-end run; the
// examples and figure8 show both fidelities in use.
package cdn
