package cdn

import (
	"fmt"
	"math"

	"elearncloud/internal/sim"
)

// Config describes an edge deployment for a course-video catalog.
type Config struct {
	// CatalogObjects is the number of distinct video segments across
	// all courses.
	CatalogObjects int
	// ObjectBytes is the mean segment size.
	ObjectBytes float64
	// CacheObjects is the edge cache capacity in objects.
	CacheObjects int
	// ZipfS is the popularity skew (≈1 for course content: everyone
	// watches this week's lectures).
	ZipfS float64
	// PricePerGB is the CDN delivery price (2013: ~$0.06/GB at volume,
	// versus $0.12/GB raw egress).
	PricePerGB float64
	// EdgeLatency is the user-to-edge one-way latency in seconds
	// (edges sit close; the origin round trip is what a miss adds).
	EdgeLatency float64
}

// DefaultConfig sizes a CDN for an institution's course catalog: one
// semester's videos, an edge cache holding a quarter of them.
func DefaultConfig(courses int) Config {
	if courses < 1 {
		courses = 1
	}
	catalog := courses * 200 // ~200 segments per course
	return Config{
		CatalogObjects: catalog,
		ObjectBytes:    2e6,
		CacheObjects:   catalog / 4,
		ZipfS:          1.0,
		PricePerGB:     0.06,
		EdgeLatency:    0.008,
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.CatalogObjects <= 0 {
		return fmt.Errorf("cdn: catalog must be positive")
	}
	if c.CacheObjects < 0 {
		return fmt.Errorf("cdn: negative cache size")
	}
	if c.ZipfS <= 0 {
		return fmt.Errorf("cdn: Zipf exponent must be positive")
	}
	if c.PricePerGB < 0 || c.ObjectBytes <= 0 || c.EdgeLatency < 0 {
		return fmt.Errorf("cdn: bad price, object size or latency")
	}
	return nil
}

// AnalyticHitRatio returns the steady-state hit ratio of a cache that
// holds the K most popular of N objects under Zipf(s) popularity:
// H_K(s)/H_N(s) with H the generalized harmonic number. This is the
// ideal (LFU) ratio; LRU under Zipf tracks it closely for s near 1.
func AnalyticHitRatio(catalogN, cacheK int, s float64) float64 {
	if catalogN <= 0 || cacheK <= 0 {
		return 0
	}
	if cacheK >= catalogN {
		return 1
	}
	return harmonic(cacheK, s) / harmonic(catalogN, s)
}

func harmonic(n int, s float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
	}
	return sum
}

// Cache is an exact LRU cache over object IDs for request-level
// simulation.
type Cache struct {
	capacity int
	entries  map[int]*lruNode
	head     *lruNode // most recent
	tail     *lruNode // least recent

	hits, misses uint64
}

type lruNode struct {
	id         int
	prev, next *lruNode
}

// NewCache returns an LRU cache holding at most capacity objects; zero
// capacity caches miss everything.
func NewCache(capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{capacity: capacity, entries: make(map[int]*lruNode, capacity)}
}

// Len returns the number of cached objects.
func (c *Cache) Len() int { return len(c.entries) }

// Hits and Misses return the access counters.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the miss counter.
func (c *Cache) Misses() uint64 { return c.misses }

// HitRatio returns hits/(hits+misses), 0 before any access.
func (c *Cache) HitRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Touch inserts or refreshes an object without counting a hit or a
// miss. It is the warm-up primitive: a hybrid run stitching into a DES
// window uses it to pre-populate the cache to the occupancy the fluid
// model predicts, without polluting the hit-ratio statistics the window
// will report.
func (c *Cache) Touch(id int) {
	if n, ok := c.entries[id]; ok {
		c.moveToFront(n)
		return
	}
	if c.capacity == 0 {
		return
	}
	if len(c.entries) >= c.capacity {
		c.evict()
	}
	n := &lruNode{id: id}
	c.entries[id] = n
	c.pushFront(n)
}

// Access looks up an object, inserting it on miss (evicting the least
// recently used entry if full). It reports whether the access was a hit.
func (c *Cache) Access(id int) bool {
	if n, ok := c.entries[id]; ok {
		c.hits++
		c.moveToFront(n)
		return true
	}
	c.misses++
	if c.capacity == 0 {
		return false
	}
	if len(c.entries) >= c.capacity {
		c.evict()
	}
	n := &lruNode{id: id}
	c.entries[id] = n
	c.pushFront(n)
	return false
}

func (c *Cache) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *Cache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if c.head == n {
		c.head = n.next
	}
	if c.tail == n {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Cache) evict() {
	lru := c.tail
	if lru == nil {
		return
	}
	c.unlink(lru)
	delete(c.entries, lru.id)
}

// Edge binds a Config, a Cache and a popularity sampler into the object
// the scenario consults per video request.
type Edge struct {
	cfg   Config
	cache *Cache
	zipf  *sim.ZipfGen

	servedBytes float64 // all bytes delivered via the CDN
	originBytes float64 // miss bytes fetched from the origin (egress)
}

// NewEdge builds an edge for cfg; rng drives popularity sampling.
func NewEdge(cfg Config, rng *sim.RNG) (*Edge, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Edge{
		cfg:   cfg,
		cache: NewCache(cfg.CacheObjects),
		zipf:  sim.NewZipfGen(rng, cfg.CatalogObjects, cfg.ZipfS),
	}, nil
}

// Config returns the edge's configuration.
func (e *Edge) Config() Config { return e.cfg }

// Cache exposes the underlying cache for inspection.
func (e *Edge) Cache() *Cache { return e.cache }

// Warm pre-populates the cache with n popularity-sampled objects
// without touching the hit/miss counters, approximating the steady
// state an edge reaches after serving traffic for a while. A hybrid
// run calls it when a DES window opens mid-horizon, so the window
// starts from the warm cache the fluid model's analytic hit ratio
// assumed rather than from an empty (all-miss) edge. Sampling draws
// from the edge's popularity stream, so warming is deterministic for a
// given (seed, n) and the warmed set skews toward the objects real
// traffic would have cached.
func (e *Edge) Warm(n int) {
	for i := 0; i < n; i++ {
		e.cache.Touch(e.zipf.Sample())
	}
}

// Serve resolves one video request of the given size: a popular object
// is sampled, the cache consulted, and byte accounting updated. It
// reports whether the request hit the edge. Non-positive sizes fall back
// to the configured mean object size.
func (e *Edge) Serve(bytes float64) (hit bool) {
	if bytes <= 0 {
		bytes = e.cfg.ObjectBytes
	}
	id := e.zipf.Sample()
	hit = e.cache.Access(id)
	e.servedBytes += bytes
	if !hit {
		e.originBytes += bytes
	}
	return hit
}

// ServedGB returns all CDN-delivered gigabytes (billed at PricePerGB).
func (e *Edge) ServedGB() float64 { return e.servedBytes / 1e9 }

// OriginGB returns origin-fetched gigabytes (billed as provider egress).
func (e *Edge) OriginGB() float64 { return e.originBytes / 1e9 }

// DeliveryCostUSD prices the edge's traffic: CDN delivery plus origin
// egress on misses.
func (e *Edge) DeliveryCostUSD(egressPerGB float64) float64 {
	return e.ServedGB()*e.cfg.PricePerGB + e.OriginGB()*egressPerGB
}
