package cdn

import (
	"testing"

	"elearncloud/internal/sim"
)

func TestTouchDoesNotCount(t *testing.T) {
	c := NewCache(2)
	c.Touch(1)
	c.Touch(2)
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatalf("Touch counted: hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d after two touches, want 2", c.Len())
	}
	if !c.Access(1) || !c.Access(2) {
		t.Fatal("touched objects should hit")
	}
}

func TestTouchRefreshesRecency(t *testing.T) {
	c := NewCache(2)
	c.Touch(1)
	c.Touch(2)
	c.Touch(1) // 1 becomes most recent
	c.Touch(3) // evicts 2, the LRU
	if !c.Access(1) {
		t.Fatal("refreshed object missed")
	}
	if c.Access(2) {
		t.Fatal("evicted object hit")
	}
}

func TestTouchZeroCapacityNoop(t *testing.T) {
	c := NewCache(0)
	c.Touch(1)
	if c.Len() != 0 {
		t.Fatalf("Len = %d on zero-capacity cache", c.Len())
	}
}

func TestTouchRespectsCapacity(t *testing.T) {
	c := NewCache(3)
	for id := 0; id < 10; id++ {
		c.Touch(id)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", c.Len())
	}
}

func TestWarmApproachesAnalyticHitRatio(t *testing.T) {
	cfg := DefaultConfig(10) // catalog 2000, cache 500
	edge, err := NewEdge(cfg, sim.NewRNG(42))
	if err != nil {
		t.Fatalf("NewEdge: %v", err)
	}
	edge.Warm(3 * cfg.CacheObjects)
	if edge.Cache().Hits() != 0 || edge.Cache().Misses() != 0 {
		t.Fatal("Warm polluted the hit/miss counters")
	}
	if edge.Cache().Len() != cfg.CacheObjects {
		t.Fatalf("warm cache holds %d of %d", edge.Cache().Len(), cfg.CacheObjects)
	}
	// A warmed edge's early hit ratio should sit near the analytic
	// steady state rather than near zero (the cold-start regime the
	// chaos fuzzer pinned as a divergence seed).
	for i := 0; i < 5000; i++ {
		edge.Serve(0)
	}
	want := AnalyticHitRatio(cfg.CatalogObjects, cfg.CacheObjects, cfg.ZipfS)
	got := edge.Cache().HitRatio()
	if got < want-0.1 {
		t.Fatalf("warmed hit ratio %.3f far below analytic %.3f", got, want)
	}
}

func TestWarmDeterminism(t *testing.T) {
	build := func() *Edge {
		e, err := NewEdge(DefaultConfig(5), sim.NewRNG(7))
		if err != nil {
			t.Fatalf("NewEdge: %v", err)
		}
		e.Warm(100)
		return e
	}
	a, b := build(), build()
	for i := 0; i < 1000; i++ {
		if a.Serve(0) != b.Serve(0) {
			t.Fatalf("warmed edges diverge at request %d", i)
		}
	}
}
