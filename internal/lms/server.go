package lms

import (
	"container/heap"

	"elearncloud/internal/cloud"
	"elearncloud/internal/sim"
)

// AppServer is one LMS application server running on a VM, modeled as an
// egalitarian processor-sharing queue: all admitted jobs progress
// simultaneously, each receiving speed/n of the VM's capacity. Processor
// sharing is the standard model for threaded web application servers and
// produces the right overload behavior for exam-spike experiments.
//
// The implementation uses the virtual-time formulation: a per-job
// progress accumulator advances at speed/n; a job with service demand s
// admitted at accumulator value P completes when the accumulator reaches
// P+s. Completions therefore pop from a min-heap in threshold order,
// making every operation O(log n) even with hundreds of concurrent jobs.
type AppServer struct {
	eng *sim.Engine
	vm  *cloud.VM

	maxJobs int // admission limit; further arrivals are rejected
	jobs    jobHeap
	nextJob int

	progress   float64 // per-job work delivered since server start
	lastUpdate sim.Time
	lastSpeed  float64
	completion *sim.Event

	retired bool
	onIdle  func()

	served   uint64
	rejected uint64
}

type psJob struct {
	id        int
	threshold float64 // progress value at which the job completes
	done      func()
}

// jobHeap is a min-heap on (threshold, id).
type jobHeap []*psJob

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].threshold != h[j].threshold {
		return h[i].threshold < h[j].threshold
	}
	return h[i].id < h[j].id
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*psJob)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// NewAppServer attaches a server to a VM. maxJobs bounds concurrent
// admitted requests (the server's thread pool); non-positive means 256.
func NewAppServer(eng *sim.Engine, vm *cloud.VM, maxJobs int) *AppServer {
	if eng == nil || vm == nil {
		panic("lms: NewAppServer with nil engine or vm")
	}
	if maxJobs <= 0 {
		maxJobs = 256
	}
	return &AppServer{
		eng:        eng,
		vm:         vm,
		maxJobs:    maxJobs,
		lastUpdate: eng.Now(),
		lastSpeed:  vm.SpeedFactor(),
	}
}

// VM returns the server's virtual machine.
func (s *AppServer) VM() *cloud.VM { return s.vm }

// Active returns the number of in-flight jobs.
func (s *AppServer) Active() int { return len(s.jobs) }

// Served returns the number of completed jobs.
func (s *AppServer) Served() uint64 { return s.served }

// Rejected returns the number of admission-rejected jobs.
func (s *AppServer) Rejected() uint64 { return s.rejected }

// Retired reports whether the server has stopped accepting work.
func (s *AppServer) Retired() bool { return s.retired }

// Accepting reports whether a new job would be admitted right now.
func (s *AppServer) Accepting() bool {
	return !s.retired && s.vm.State() == cloud.VMRunning && len(s.jobs) < s.maxJobs
}

// Submit admits a job with the given CPU service demand (seconds at
// nominal speed) and returns true, or returns false if the server is
// retired, its VM is not running, or the admission limit is reached.
// done fires when the job completes.
func (s *AppServer) Submit(service float64, done func()) bool {
	if !s.Accepting() {
		s.rejected++
		return false
	}
	if service <= 0 {
		service = 1e-6
	}
	s.advance()
	j := &psJob{id: s.nextJob, threshold: s.progress + service, done: done}
	s.nextJob++
	heap.Push(&s.jobs, j)
	s.reschedule()
	return true
}

// Retire stops the server from accepting new jobs. onIdle (optional)
// fires once the last in-flight job completes — immediately if the server
// is already idle. The autoscaler uses this for graceful scale-down.
func (s *AppServer) Retire(onIdle func()) {
	s.retired = true
	s.onIdle = onIdle
	if len(s.jobs) == 0 && s.onIdle != nil {
		cb := s.onIdle
		s.onIdle = nil
		cb()
	}
}

// advance applies elapsed processor-sharing progress using the speed
// captured at the last update.
func (s *AppServer) advance() {
	now := s.eng.Now()
	if now > s.lastUpdate && len(s.jobs) > 0 {
		elapsed := sim.ToSeconds(now - s.lastUpdate)
		s.progress += elapsed * s.lastSpeed / float64(len(s.jobs))
	}
	s.lastUpdate = now
	s.lastSpeed = s.vm.SpeedFactor()
}

// reschedule cancels any pending completion event and schedules the next
// one for the head of the threshold heap.
func (s *AppServer) reschedule() {
	if s.completion != nil {
		s.eng.Cancel(s.completion)
		s.completion = nil
	}
	if len(s.jobs) == 0 {
		if s.retired && s.onIdle != nil {
			cb := s.onIdle
			s.onIdle = nil
			cb()
		}
		return
	}
	speed := s.lastSpeed
	if speed <= 0 {
		speed = 0.05
	}
	remaining := s.jobs[0].threshold - s.progress
	if remaining < 0 {
		remaining = 0
	}
	wait := sim.Seconds(remaining * float64(len(s.jobs)) / speed)
	s.completion = s.eng.Schedule(wait, "lms/complete", func() {
		s.completion = nil
		s.advance()
		j := heap.Pop(&s.jobs).(*psJob)
		s.served++
		if j.done != nil {
			j.done()
		}
		s.reschedule()
	})
}

// Kill aborts all in-flight jobs without invoking their callbacks and
// returns how many were aborted. Used when a VM dies under the server
// (host failure) — clients see these as errors.
func (s *AppServer) Kill() int {
	if s.completion != nil {
		s.eng.Cancel(s.completion)
		s.completion = nil
	}
	n := len(s.jobs)
	s.jobs = nil
	s.retired = true
	if s.onIdle != nil {
		cb := s.onIdle
		s.onIdle = nil
		cb()
	}
	return n
}
