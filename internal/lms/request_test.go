package lms

import (
	"math"
	"testing"

	"elearncloud/internal/sim"
)

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		Login: "login", PageView: "page-view", VideoChunk: "video-chunk",
		QuizFetch: "quiz-fetch", QuizSubmit: "quiz-submit",
		Upload: "upload", ForumPost: "forum-post",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if Class(99).String() != "Class(99)" {
		t.Error("unknown class string wrong")
	}
}

func TestClassesCoversAll(t *testing.T) {
	cs := Classes()
	if len(cs) != 7 {
		t.Fatalf("Classes len = %d, want 7", len(cs))
	}
	if cs[0] != Login || cs[6] != ForumPost {
		t.Fatalf("Classes order wrong: %v", cs)
	}
}

func TestDefaultCatalogSpecs(t *testing.T) {
	cat := DefaultCatalog()
	for _, c := range Classes() {
		spec := cat.Spec(c)
		if spec.Service == nil || spec.Payload == nil {
			t.Fatalf("class %v has nil dists", c)
		}
		if spec.Service.Mean() <= 0 || spec.Service.Mean() > 1 {
			t.Fatalf("class %v service mean %v implausible", c, spec.Service.Mean())
		}
	}
	if !cat.Spec(QuizFetch).Sensitive || !cat.Spec(QuizSubmit).Sensitive {
		t.Fatal("quiz classes must be sensitive")
	}
	if cat.Spec(PageView).Sensitive {
		t.Fatal("page views must not be sensitive")
	}
}

func TestCatalogUnknownClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DefaultCatalog().Spec(Class(99))
}

func TestMixSampleFollowsWeights(t *testing.T) {
	rng := sim.NewRNG(5)
	m := NewMix(map[Class]float64{PageView: 9, Upload: 1})
	pages := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Sample(rng) == PageView {
			pages++
		}
	}
	share := float64(pages) / n
	if math.Abs(share-0.9) > 0.01 {
		t.Fatalf("PageView share = %v, want ~0.9", share)
	}
}

func TestMixPanicsWithNoWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewMix(map[Class]float64{PageView: 0})
}

func TestMixMeans(t *testing.T) {
	cat := DefaultCatalog()
	m := NewMix(map[Class]float64{PageView: 1, VideoChunk: 1})
	wantSvc := (0.020 + 0.005) / 2
	if got := m.MeanService(cat); math.Abs(got-wantSvc) > 1e-12 {
		t.Fatalf("MeanService = %v, want %v", got, wantSvc)
	}
	wantPay := (150e3 + 2e6) / 2
	if got := m.MeanPayload(cat); math.Abs(got-wantPay) > 1e-6 {
		t.Fatalf("MeanPayload = %v, want %v", got, wantPay)
	}
	// Video-heavy mixes move more bytes than page-heavy ones.
	pages := NewMix(map[Class]float64{PageView: 1})
	if m.MeanPayload(cat) <= pages.MeanPayload(cat) {
		t.Fatal("video mix should be heavier")
	}
}

func TestExamMixIsQuizHeavy(t *testing.T) {
	cat := DefaultCatalog()
	teaching := TeachingMix().SensitiveShare(cat)
	exam := ExamMix().SensitiveShare(cat)
	if exam <= teaching {
		t.Fatalf("exam sensitive share %v <= teaching %v", exam, teaching)
	}
	if exam < 0.5 {
		t.Fatalf("exam sensitive share %v, want majority", exam)
	}
}
