package lms

import (
	"fmt"

	"elearncloud/internal/sim"
)

// Class identifies a request type in the LMS workload mix.
type Class int

// Request classes in the canonical e-learning mix.
const (
	Login Class = iota + 1
	PageView
	VideoChunk
	QuizFetch
	QuizSubmit
	Upload
	ForumPost
	numClasses = ForumPost
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Login:
		return "login"
	case PageView:
		return "page-view"
	case VideoChunk:
		return "video-chunk"
	case QuizFetch:
		return "quiz-fetch"
	case QuizSubmit:
		return "quiz-submit"
	case Upload:
		return "upload"
	case ForumPost:
		return "forum-post"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists every class in declaration order.
func Classes() []Class {
	out := make([]Class, 0, numClasses)
	for c := Login; c <= ForumPost; c++ {
		out = append(out, c)
	}
	return out
}

// ClassSpec describes one request class's resource behavior.
type ClassSpec struct {
	// Service is the CPU service demand distribution in seconds at
	// nominal VM speed.
	Service sim.Dist
	// Payload is the response payload size distribution in bytes.
	Payload sim.Dist
	// Sensitive marks classes that touch protected digital assets (exam
	// questions, grades) — the hybrid policy pins these to the private
	// side, and the security model scores their exposure.
	Sensitive bool
}

// Catalog maps classes to their specs. A catalog is immutable after
// construction and safe to share.
type Catalog struct {
	specs map[Class]ClassSpec
}

// DefaultCatalog returns the canonical e-learning request catalog. Service
// demands are log-normal around typical LMS handler costs; payloads are
// log-normal for HTML/JSON and Pareto for user uploads (heavy-tailed
// assignment files).
func DefaultCatalog() *Catalog {
	return &Catalog{specs: map[Class]ClassSpec{
		Login:      {Service: sim.LogNormal(0.030, 0.4), Payload: sim.LogNormal(20e3, 0.3)},
		PageView:   {Service: sim.LogNormal(0.020, 0.4), Payload: sim.LogNormal(150e3, 0.5)},
		VideoChunk: {Service: sim.LogNormal(0.005, 0.3), Payload: sim.LogNormal(2e6, 0.4)},
		QuizFetch:  {Service: sim.LogNormal(0.025, 0.4), Payload: sim.LogNormal(50e3, 0.3), Sensitive: true},
		QuizSubmit: {Service: sim.LogNormal(0.040, 0.4), Payload: sim.LogNormal(10e3, 0.3), Sensitive: true},
		Upload:     {Service: sim.LogNormal(0.050, 0.5), Payload: sim.Pareto(1.5, 200e3)},
		ForumPost:  {Service: sim.LogNormal(0.030, 0.4), Payload: sim.LogNormal(30e3, 0.4)},
	}}
}

// Spec returns the spec for a class; it panics on unknown classes, which
// indicate a programming error in workload construction.
func (cat *Catalog) Spec(c Class) ClassSpec {
	s, ok := cat.specs[c]
	if !ok {
		panic(fmt.Sprintf("lms: unknown class %v", c))
	}
	return s
}

// Mix is a probability distribution over request classes, describing what
// a session does: mostly pages and video during teaching, quiz-heavy
// during exams.
type Mix struct {
	classes []Class
	weights []float64
}

// NewMix builds a mix from class weights; weights need not sum to one.
func NewMix(weights map[Class]float64) *Mix {
	m := &Mix{}
	for c := Login; c <= ForumPost; c++ {
		if w, ok := weights[c]; ok && w > 0 {
			m.classes = append(m.classes, c)
			m.weights = append(m.weights, w)
		}
	}
	if len(m.classes) == 0 {
		panic("lms: NewMix with no positive weights")
	}
	return m
}

// TeachingMix is the steady-semester request mix.
func TeachingMix() *Mix {
	return NewMix(map[Class]float64{
		Login: 4, PageView: 50, VideoChunk: 25, QuizFetch: 6,
		QuizSubmit: 4, Upload: 4, ForumPost: 7,
	})
}

// ExamMix is the exam-window request mix: quiz traffic dominates and it
// is nearly all sensitive.
func ExamMix() *Mix {
	return NewMix(map[Class]float64{
		Login: 8, PageView: 12, QuizFetch: 40, QuizSubmit: 38, ForumPost: 2,
	})
}

// Sample draws a class according to the weights.
func (m *Mix) Sample(rng *sim.RNG) Class {
	return m.classes[rng.Pick(m.weights)]
}

// MeanService returns the weight-averaged mean CPU demand (seconds) of
// the mix under a catalog — the number capacity sizing runs on.
func (m *Mix) MeanService(cat *Catalog) float64 {
	var total, acc float64
	for i, c := range m.classes {
		total += m.weights[i]
		acc += m.weights[i] * cat.Spec(c).Service.Mean()
	}
	if total == 0 {
		return 0
	}
	return acc / total
}

// MeanPayload returns the weight-averaged mean response payload (bytes)
// of the mix under a catalog — the number egress estimation runs on.
func (m *Mix) MeanPayload(cat *Catalog) float64 {
	var total, acc float64
	for i, c := range m.classes {
		total += m.weights[i]
		acc += m.weights[i] * cat.Spec(c).Payload.Mean()
	}
	if total == 0 {
		return 0
	}
	return acc / total
}

// PayloadShare returns the fraction of the mix's delivered bytes that a
// single class accounts for (weight × mean payload over the total). The
// CDN cost model uses it to split video traffic from the rest.
func (m *Mix) PayloadShare(cat *Catalog, class Class) float64 {
	var total, classBytes float64
	for i, c := range m.classes {
		b := m.weights[i] * cat.Spec(c).Payload.Mean()
		total += b
		if c == class {
			classBytes += b
		}
	}
	if total == 0 {
		return 0
	}
	return classBytes / total
}

// SensitiveShare returns the weight fraction on sensitive classes given a
// catalog; the security model uses it to size asset exposure.
func (m *Mix) SensitiveShare(cat *Catalog) float64 {
	var total, sensitive float64
	for i, c := range m.classes {
		total += m.weights[i]
		if cat.Spec(c).Sensitive {
			sensitive += m.weights[i]
		}
	}
	if total == 0 {
		return 0
	}
	return sensitive / total
}
