package lms

import (
	"time"

	"elearncloud/internal/sim"
)

// Session models one learner's working session and the unsaved work at
// stake when connectivity drops — the paper's "users may lose time, work,
// or even unsaved data" risk.
//
// Work accumulates continuously while the session is active. A cloud LMS
// autosaves over the network every autosave interval (only when the
// network is up); a desktop application saves locally regardless. The
// difference between "now" and the last successful save is what a
// disconnect destroys.
type Session struct {
	// UserID identifies the learner.
	UserID int

	started   sim.Time
	lastSave  sim.Time
	lostWork  time.Duration
	saves     int
	connected bool
}

// NewSession starts a session at virtual time now, in the connected
// state, with a savepoint taken at start.
func NewSession(userID int, now sim.Time) *Session {
	return &Session{UserID: userID, started: now, lastSave: now, connected: true}
}

// Started returns the session start time.
func (s *Session) Started() sim.Time { return s.started }

// Saves returns the number of successful savepoints.
func (s *Session) Saves() int { return s.saves }

// LostWork returns the cumulative work destroyed by disconnects.
func (s *Session) LostWork() time.Duration { return s.lostWork }

// Connected reports the session's view of connectivity.
func (s *Session) Connected() bool { return s.connected }

// Autosave records a successful savepoint at time now. It returns false
// (no save) while disconnected: saving requires the network.
func (s *Session) Autosave(now sim.Time) bool {
	if !s.connected {
		return false
	}
	s.lastSave = now
	s.saves++
	return true
}

// UnsavedWork returns the work accumulated since the last savepoint.
func (s *Session) UnsavedWork(now sim.Time) time.Duration {
	if now < s.lastSave {
		return 0
	}
	return now - s.lastSave
}

// Disconnect marks the connection lost at time now; everything since the
// last savepoint is destroyed and accumulates into LostWork.
func (s *Session) Disconnect(now sim.Time) time.Duration {
	if !s.connected {
		return 0
	}
	lost := s.UnsavedWork(now)
	s.lostWork += lost
	s.connected = false
	return lost
}

// Reconnect marks connectivity restored at now; work resumes from a fresh
// savepoint (the client reloads server state).
func (s *Session) Reconnect(now sim.Time) {
	if s.connected {
		return
	}
	s.connected = true
	s.lastSave = now
}
