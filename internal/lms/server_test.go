package lms

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"elearncloud/internal/cloud"
	"elearncloud/internal/sim"
)

// bootServer provisions one running VM with an app server on it.
func bootServer(t *testing.T, eng *sim.Engine, maxJobs int) *AppServer {
	t.Helper()
	dc := cloud.NewDatacenter(eng, cloud.Config{
		Name:         "t",
		Hosts:        1,
		HostCapacity: cloud.Resources{CPU: 16, Mem: 64, Disk: 500},
	})
	vm, err := dc.Provision(cloud.InstanceSpec{
		Name: "m", Res: cloud.Resources{CPU: 2, Mem: 4, Disk: 10},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(eng.Now()); err != nil { // instant boot (nil BootDelay)
		t.Fatal(err)
	}
	if vm.State() != cloud.VMRunning {
		// Drain the boot event scheduled at now.
		if !eng.Step() {
			t.Fatal("no boot event pending")
		}
	}
	return NewAppServer(eng, vm, maxJobs)
}

func TestSingleJobTakesServiceTime(t *testing.T) {
	eng := sim.NewEngine(1)
	s := bootServer(t, eng, 0)
	var doneAt sim.Time
	if !s.Submit(2.0, func() { doneAt = eng.Now() }) {
		t.Fatal("Submit rejected")
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := sim.ToSeconds(doneAt); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("single job finished at %vs, want 2s", got)
	}
	if s.Served() != 1 {
		t.Fatalf("Served = %d", s.Served())
	}
}

func TestProcessorSharingSlowsConcurrentJobs(t *testing.T) {
	eng := sim.NewEngine(1)
	s := bootServer(t, eng, 0)
	var t1, t2 sim.Time
	s.Submit(1.0, func() { t1 = eng.Now() })
	s.Submit(1.0, func() { t2 = eng.Now() })
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	// Two equal jobs sharing the processor both finish at ~2s.
	if math.Abs(sim.ToSeconds(t1)-2.0) > 1e-6 || math.Abs(sim.ToSeconds(t2)-2.0) > 1e-6 {
		t.Fatalf("PS finish times = %v, %v; want both ~2s", t1, t2)
	}
}

func TestProcessorSharingShortJobOverlap(t *testing.T) {
	eng := sim.NewEngine(1)
	s := bootServer(t, eng, 0)
	var shortDone, longDone sim.Time
	s.Submit(3.0, func() { longDone = eng.Now() })
	eng.Schedule(time.Second, "short", func() {
		s.Submit(0.5, func() { shortDone = eng.Now() })
	})
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	// Long job runs alone 0..1s (1s of work done), then shares.
	// Short job: needs 0.5s of work at half speed = 1s wall -> done at 2s.
	// Long job: remaining 2.0 at t=1; shares until t=2 (does 0.5), then
	// alone for 1.5 -> done at 3.5s.
	if got := sim.ToSeconds(shortDone); math.Abs(got-2.0) > 1e-6 {
		t.Fatalf("short done at %v, want 2.0", got)
	}
	if got := sim.ToSeconds(longDone); math.Abs(got-3.5) > 1e-6 {
		t.Fatalf("long done at %v, want 3.5", got)
	}
}

func TestAdmissionLimitRejects(t *testing.T) {
	eng := sim.NewEngine(1)
	s := bootServer(t, eng, 2)
	if !s.Submit(10, nil) || !s.Submit(10, nil) {
		t.Fatal("first two jobs rejected")
	}
	if s.Submit(10, nil) {
		t.Fatal("third job admitted past limit")
	}
	if s.Rejected() != 1 {
		t.Fatalf("Rejected = %d", s.Rejected())
	}
	if s.Active() != 2 {
		t.Fatalf("Active = %d", s.Active())
	}
}

func TestRetireDrainsThenSignalsIdle(t *testing.T) {
	eng := sim.NewEngine(1)
	s := bootServer(t, eng, 0)
	s.Submit(1.0, nil)
	idleAt := sim.Time(-1)
	s.Retire(func() { idleAt = eng.Now() })
	if s.Submit(1.0, nil) {
		t.Fatal("retired server admitted a job")
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := sim.ToSeconds(idleAt); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("idle at %v, want 1s", got)
	}
}

func TestRetireIdleServerSignalsImmediately(t *testing.T) {
	eng := sim.NewEngine(1)
	s := bootServer(t, eng, 0)
	called := false
	s.Retire(func() { called = true })
	if !called {
		t.Fatal("idle retire did not signal immediately")
	}
}

func TestKillAbortsJobs(t *testing.T) {
	eng := sim.NewEngine(1)
	s := bootServer(t, eng, 0)
	completed := false
	s.Submit(1.0, func() { completed = true })
	s.Submit(1.0, nil)
	if n := s.Kill(); n != 2 {
		t.Fatalf("Kill aborted %d, want 2", n)
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if completed {
		t.Fatal("killed job still completed")
	}
	if s.Active() != 0 || s.Accepting() {
		t.Fatal("killed server still active/accepting")
	}
}

func TestInterferenceSlowsService(t *testing.T) {
	eng := sim.NewEngine(21)
	dc := cloud.NewDatacenter(eng, cloud.Config{
		Name:         "pub",
		Hosts:        1,
		HostCapacity: cloud.Resources{CPU: 16, Mem: 64, Disk: 500},
		MultiTenant:  true,
		// High, constant interference so the effect is unambiguous.
		InterferenceDist:  sim.Constant(0.5),
		InterferenceEvery: time.Hour * 24 * 365,
	})
	vm, err := dc.Provision(cloud.InstanceSpec{
		Name: "m", Res: cloud.Resources{CPU: 2, Mem: 4, Disk: 10},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Step() {
		t.Fatal("no boot event")
	}
	// Force interference before submitting (resampler has long period, so
	// set directly via the boot-time sample: boot already sampled 0.5).
	if vm.SpeedFactor() != 0.5 {
		t.Fatalf("SpeedFactor = %v, want 0.5", vm.SpeedFactor())
	}
	s := NewAppServer(eng, vm, 0)
	var doneAt sim.Time
	s.Submit(1.0, func() { doneAt = eng.Now() })
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := sim.ToSeconds(doneAt); math.Abs(got-2.0) > 1e-6 {
		t.Fatalf("job on half-speed VM finished at %v, want 2s", got)
	}
}

// Property: jobs are conserved — everything submitted is eventually
// either served, still active, or aborted by Kill; nothing is lost or
// double-counted.
func TestServerJobConservationProperty(t *testing.T) {
	f := func(demands []uint8, killAfter uint8) bool {
		eng := sim.NewEngine(uint64(killAfter) + 1)
		dc := cloud.NewDatacenter(eng, cloud.Config{
			Name: "p", Hosts: 1,
			HostCapacity: cloud.Resources{CPU: 16, Mem: 64, Disk: 500},
		})
		vm, err := dc.Provision(cloud.InstanceSpec{
			Name: "m", Res: cloud.Resources{CPU: 2, Mem: 4, Disk: 10},
		}, nil)
		if err != nil {
			return false
		}
		eng.Step() // boot
		s := NewAppServer(eng, vm, 8)
		accepted, rejected := 0, 0
		for _, d := range demands {
			if s.Submit(float64(d%50)/100+0.01, nil) {
				accepted++
			} else {
				rejected++
			}
			// Let some work drain between submissions.
			if eng.Pending() > 0 && d%3 == 0 {
				eng.Step()
			}
		}
		killed := 0
		if killAfter%2 == 0 {
			killed = s.Kill()
		} else {
			if err := eng.Run(time.Hour); err != nil {
				return false
			}
		}
		return uint64(accepted) == s.Served()+uint64(s.Active())+uint64(killed) &&
			uint64(rejected) == s.Rejected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitToUnbootedVMRejected(t *testing.T) {
	eng := sim.NewEngine(1)
	dc := cloud.NewDatacenter(eng, cloud.Config{
		Name:         "t",
		Hosts:        1,
		HostCapacity: cloud.Resources{CPU: 16, Mem: 64, Disk: 500},
	})
	vm, err := dc.Provision(cloud.InstanceSpec{
		Name: "m", Res: cloud.Resources{CPU: 2, Mem: 4, Disk: 10},
		BootDelay: sim.Constant(120),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewAppServer(eng, vm, 0)
	if s.Submit(1, nil) {
		t.Fatal("job admitted to provisioning VM")
	}
}
