package lms

import (
	"elearncloud/internal/sim"
)

// Cluster is a load-balanced pool of application servers fronted by a
// least-connections balancer. The autoscaler grows and shrinks it; the
// scenario submits requests to it.
type Cluster struct {
	name    string
	servers []*AppServer

	arrivals uint64
	served   uint64
	rejected uint64
}

// NewCluster returns an empty cluster.
func NewCluster(name string) *Cluster {
	return &Cluster{name: name}
}

// Name returns the cluster's label.
func (c *Cluster) Name() string { return c.name }

// Add registers a server with the balancer.
func (c *Cluster) Add(s *AppServer) {
	if s == nil {
		panic("lms: Cluster.Add nil server")
	}
	c.servers = append(c.servers, s)
}

// Remove unregisters a server (it stops receiving new work; in-flight
// jobs are unaffected). Removing an unknown server is a no-op.
func (c *Cluster) Remove(s *AppServer) {
	for i, have := range c.servers {
		if have == s {
			c.servers = append(c.servers[:i], c.servers[i+1:]...)
			return
		}
	}
}

// Servers returns the current pool (shared slice; do not mutate).
func (c *Cluster) Servers() []*AppServer { return c.servers }

// Size returns the number of registered servers.
func (c *Cluster) Size() int { return len(c.servers) }

// AcceptingSize returns how many servers are currently accepting work.
func (c *Cluster) AcceptingSize() int {
	n := 0
	for _, s := range c.servers {
		if s.Accepting() {
			n++
		}
	}
	return n
}

// Active returns total in-flight jobs across servers.
func (c *Cluster) Active() int {
	n := 0
	for _, s := range c.servers {
		n += s.Active()
	}
	return n
}

// Load returns mean in-flight jobs per accepting server, the signal the
// reactive autoscaler consumes. An empty cluster reports +Inf-free 0.
func (c *Cluster) Load() float64 {
	accepting := 0
	active := 0
	for _, s := range c.servers {
		if s.Accepting() {
			accepting++
			active += s.Active()
		}
	}
	if accepting == 0 {
		return 0
	}
	return float64(active) / float64(accepting)
}

// Arrivals returns the cluster-wide submission count: every Submit call,
// accepted or rejected, increments it exactly once. Unlike the derived
// sum Served()+Rejected()+Active(), it is monotone by construction —
// gracefully draining servers leave Active() while their jobs are still
// unfinished, and killed jobs never reach Served() — which is the
// contract scale.ArrivalMeter consumers difference against.
func (c *Cluster) Arrivals() uint64 { return c.arrivals }

// Served returns the cluster-wide completed-job count.
func (c *Cluster) Served() uint64 { return c.served }

// Rejected returns the cluster-wide rejected-job count (no server could
// admit the request).
func (c *Cluster) Rejected() uint64 { return c.rejected }

// Submit routes a job to the accepting server with the fewest in-flight
// jobs (ties to the earliest-added server). It returns false if no server
// can take the job — the client sees an overload error.
func (c *Cluster) Submit(service float64, done func()) bool {
	c.arrivals++
	var best *AppServer
	for _, s := range c.servers {
		if !s.Accepting() {
			continue
		}
		if best == nil || s.Active() < best.Active() {
			best = s
		}
	}
	if best == nil {
		c.rejected++
		return false
	}
	wrapped := func() {
		c.served++
		if done != nil {
			done()
		}
	}
	if !best.Submit(service, wrapped) {
		c.rejected++
		return false
	}
	return true
}

// SubmitTimed routes a job like Submit and reports the sojourn time to
// done via the engine clock.
func (c *Cluster) SubmitTimed(eng *sim.Engine, service float64, done func(sojourn float64)) bool {
	start := eng.Now()
	return c.Submit(service, func() {
		if done != nil {
			done(sim.ToSeconds(eng.Now() - start))
		}
	})
}
