package lms

import (
	"math"
	"testing"
)

func TestAssetKindSensitivity(t *testing.T) {
	if !ExamQuestions.Sensitive() || !Grades.Sensitive() {
		t.Fatal("exam questions and grades must be sensitive")
	}
	if CourseContent.Sensitive() || Submissions.Sensitive() {
		t.Fatal("content and submissions must not be sensitive")
	}
}

func TestAssetStoreInventory(t *testing.T) {
	st := NewAssetStore(10, 100)
	// 10 courses * 2 assets + 100 students * 2 assets.
	if st.Len() != 220 {
		t.Fatalf("Len = %d, want 220", st.Len())
	}
	// Everything starts private.
	if st.Count(OnPrivate) != 220 || st.Count(OnPublic) != 0 {
		t.Fatalf("initial placement wrong: private=%d public=%d",
			st.Count(OnPrivate), st.Count(OnPublic))
	}
}

func TestAssetStorePlacementPolicies(t *testing.T) {
	st := NewAssetStore(5, 50)
	st.PlaceAll(OnPublic)
	if st.Count(OnPublic) != st.Len() {
		t.Fatal("PlaceAll(OnPublic) incomplete")
	}
	if st.SensitiveShare(OnPublic) != 1 {
		t.Fatalf("SensitiveShare(public) = %v, want 1", st.SensitiveShare(OnPublic))
	}

	st.PlaceSensitive(OnPrivate, OnPublic)
	if st.SensitiveCount(OnPublic) != 0 {
		t.Fatal("PlaceSensitive left sensitive assets public")
	}
	// 5 exam bundles + 50 grade records pinned private.
	if got := st.SensitiveCount(OnPrivate); got != 55 {
		t.Fatalf("SensitiveCount(private) = %d, want 55", got)
	}
	if st.SensitiveShare(OnPrivate) != 1 {
		t.Fatal("SensitiveShare(private) != 1 after pinning")
	}
	// Bulk content is on the public side.
	if st.Count(OnPublic) != st.Len()-55 {
		t.Fatalf("public count = %d", st.Count(OnPublic))
	}
}

func TestAssetStoreBytes(t *testing.T) {
	st := NewAssetStore(1, 1)
	// 2e9 (content) + 20e6 (exam) + 1e6 (grade) + 50e6 (submissions).
	want := 2e9 + 20e6 + 1e6 + 50e6
	if got := st.BytesAt(OnPrivate); math.Abs(got-want) > 1 {
		t.Fatalf("BytesAt = %v, want %v", got, want)
	}
	if st.BytesAt(OnPublic) != 0 {
		t.Fatal("public bytes should be 0")
	}
}

func TestAssetStorePlaceSingle(t *testing.T) {
	st := NewAssetStore(1, 0)
	assets := st.Assets()
	st.Place(assets[0].ID, OnPublic)
	if st.LocationOf(assets[0].ID) != OnPublic {
		t.Fatal("Place did not move asset")
	}
	if st.Count(OnPublic) != 1 {
		t.Fatalf("Count(public) = %d", st.Count(OnPublic))
	}
}

func TestAssetStorePlaceUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewAssetStore(1, 1).Place(9999, OnPublic)
}

func TestAssetStoreNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewAssetStore(-1, 0)
}

func TestAssetStoreEmptySensitiveShare(t *testing.T) {
	st := NewAssetStore(0, 0)
	if st.SensitiveShare(OnPublic) != 0 {
		t.Fatal("empty store SensitiveShare != 0")
	}
}

func TestLocationAndKindStrings(t *testing.T) {
	if OnPublic.String() != "public" || OnPrivate.String() != "private" {
		t.Fatal("location strings wrong")
	}
	if Location(9).String() != "Location(9)" {
		t.Fatal("unknown location string wrong")
	}
	kinds := map[AssetKind]string{
		CourseContent: "course-content", ExamQuestions: "exam-questions",
		Grades: "grades", Submissions: "submissions",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
	if AssetKind(9).String() != "AssetKind(9)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestAssetsReturnsCopy(t *testing.T) {
	st := NewAssetStore(1, 1)
	a := st.Assets()
	a[0].Bytes = -1
	if st.Assets()[0].Bytes == -1 {
		t.Fatal("Assets exposed internal state")
	}
}
