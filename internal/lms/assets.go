package lms

import "fmt"

// AssetKind classifies the digital assets the paper names: "tests, exam
// questions, results" plus the bulk course content around them.
type AssetKind int

// Asset kinds.
const (
	CourseContent AssetKind = iota + 1 // slides, video, readings
	ExamQuestions                      // sensitive before the exam
	Grades                             // sensitive always
	Submissions                        // student work
)

// String returns the kind name.
func (k AssetKind) String() string {
	switch k {
	case CourseContent:
		return "course-content"
	case ExamQuestions:
		return "exam-questions"
	case Grades:
		return "grades"
	case Submissions:
		return "submissions"
	default:
		return fmt.Sprintf("AssetKind(%d)", int(k))
	}
}

// Sensitive reports whether assets of this kind are confidential.
func (k AssetKind) Sensitive() bool { return k == ExamQuestions || k == Grades }

// Location says which side of a deployment holds an asset.
type Location int

// Asset locations.
const (
	OnPublic  Location = iota + 1 // public-cloud storage
	OnPrivate                     // on-premise / private-cloud storage
)

// String returns the location name.
func (l Location) String() string {
	switch l {
	case OnPublic:
		return "public"
	case OnPrivate:
		return "private"
	default:
		return fmt.Sprintf("Location(%d)", int(l))
	}
}

// Asset is one stored object.
type Asset struct {
	ID    int
	Kind  AssetKind
	Bytes float64
}

// AssetStore is the institution's asset inventory with a placement map.
// The hybrid deployment policy decides placements; the security model
// scores sensitive exposure; the migration planner sums egress bytes.
type AssetStore struct {
	assets []Asset
	loc    map[int]Location
}

// NewAssetStore builds an inventory representative of an institution with
// the given number of courses and students: per course, bulk content and
// an exam bundle; per student, a grade record and submissions.
func NewAssetStore(courses, students int) *AssetStore {
	if courses < 0 || students < 0 {
		panic("lms: NewAssetStore with negative sizes")
	}
	st := &AssetStore{loc: make(map[int]Location)}
	id := 0
	add := func(kind AssetKind, bytes float64) {
		st.assets = append(st.assets, Asset{ID: id, Kind: kind, Bytes: bytes})
		st.loc[id] = OnPrivate // everything starts in-house
		id++
	}
	for c := 0; c < courses; c++ {
		add(CourseContent, 2e9)  // ~2 GB of video+slides per course
		add(ExamQuestions, 20e6) // exam bundle
	}
	for s := 0; s < students; s++ {
		add(Grades, 1e6)
		add(Submissions, 50e6)
	}
	return st
}

// Len returns the number of assets.
func (st *AssetStore) Len() int { return len(st.assets) }

// Assets returns a copy of the inventory.
func (st *AssetStore) Assets() []Asset {
	return append([]Asset(nil), st.assets...)
}

// Place moves an asset to a location. Unknown IDs panic: placement bugs
// must not silently drop assets.
func (st *AssetStore) Place(id int, loc Location) {
	if _, ok := st.loc[id]; !ok {
		panic(fmt.Sprintf("lms: Place of unknown asset %d", id))
	}
	st.loc[id] = loc
}

// LocationOf returns an asset's current location.
func (st *AssetStore) LocationOf(id int) Location { return st.loc[id] }

// PlaceAll moves every asset to one location (public-only or private-only
// deployments).
func (st *AssetStore) PlaceAll(loc Location) {
	for id := range st.loc {
		st.loc[id] = loc
	}
}

// PlaceSensitive pins all sensitive assets to pin and everything else to
// rest — the hybrid "distribution of units" policy.
func (st *AssetStore) PlaceSensitive(pin, rest Location) {
	for _, a := range st.assets {
		if a.Kind.Sensitive() {
			st.loc[a.ID] = pin
		} else {
			st.loc[a.ID] = rest
		}
	}
}

// Count returns how many assets are at loc.
func (st *AssetStore) Count(loc Location) int {
	n := 0
	for _, l := range st.loc {
		if l == loc {
			n++
		}
	}
	return n
}

// SensitiveCount returns how many sensitive assets are at loc.
func (st *AssetStore) SensitiveCount(loc Location) int {
	n := 0
	for _, a := range st.assets {
		if a.Kind.Sensitive() && st.loc[a.ID] == loc {
			n++
		}
	}
	return n
}

// BytesAt sums the stored bytes at loc.
func (st *AssetStore) BytesAt(loc Location) float64 {
	var sum float64
	for _, a := range st.assets {
		if st.loc[a.ID] == loc {
			sum += a.Bytes
		}
	}
	return sum
}

// SensitiveShare returns the fraction of sensitive assets located at loc
// (0 when there are no sensitive assets).
func (st *AssetStore) SensitiveShare(loc Location) float64 {
	var total, at int
	for _, a := range st.assets {
		if !a.Kind.Sensitive() {
			continue
		}
		total++
		if st.loc[a.ID] == loc {
			at++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(at) / float64(total)
}
