package lms

import (
	"math"
	"testing"
	"time"

	"elearncloud/internal/cloud"
	"elearncloud/internal/sim"
)

// bootCluster builds a cluster of n single-VM servers.
func bootCluster(t *testing.T, eng *sim.Engine, n, maxJobs int) (*Cluster, []*AppServer) {
	t.Helper()
	dc := cloud.NewDatacenter(eng, cloud.Config{
		Name:         "t",
		Hosts:        n,
		HostCapacity: cloud.Resources{CPU: 16, Mem: 64, Disk: 500},
	})
	c := NewCluster("web")
	var servers []*AppServer
	for i := 0; i < n; i++ {
		vm, err := dc.Provision(cloud.InstanceSpec{
			Name: "m", Res: cloud.Resources{CPU: 2, Mem: 4, Disk: 10},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		s := NewAppServer(eng, vm, maxJobs)
		servers = append(servers, s)
		c.Add(s)
	}
	for eng.Pending() > 0 && eng.Now() == 0 {
		eng.Step() // drain instant boots
	}
	return c, servers
}

func TestClusterRoutesToLeastLoaded(t *testing.T) {
	eng := sim.NewEngine(1)
	c, servers := bootCluster(t, eng, 2, 0)
	c.Submit(10, nil) // server 0
	c.Submit(10, nil) // server 1 (least-loaded)
	c.Submit(10, nil) // back to server 0 (tie -> earliest)
	if servers[0].Active() != 2 || servers[1].Active() != 1 {
		t.Fatalf("active = %d,%d; want 2,1", servers[0].Active(), servers[1].Active())
	}
}

func TestClusterRejectsWhenSaturated(t *testing.T) {
	eng := sim.NewEngine(1)
	c, _ := bootCluster(t, eng, 2, 1)
	if !c.Submit(10, nil) || !c.Submit(10, nil) {
		t.Fatal("cluster rejected within capacity")
	}
	if c.Submit(10, nil) {
		t.Fatal("cluster admitted past capacity")
	}
	if c.Rejected() != 1 {
		t.Fatalf("Rejected = %d", c.Rejected())
	}
}

func TestClusterServedCount(t *testing.T) {
	eng := sim.NewEngine(1)
	c, _ := bootCluster(t, eng, 2, 0)
	for i := 0; i < 6; i++ {
		if !c.Submit(0.01, nil) {
			t.Fatal("rejected")
		}
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if c.Served() != 6 {
		t.Fatalf("Served = %d", c.Served())
	}
	if c.Active() != 0 {
		t.Fatalf("Active = %d", c.Active())
	}
}

func TestClusterLoadSignal(t *testing.T) {
	eng := sim.NewEngine(1)
	c, _ := bootCluster(t, eng, 2, 0)
	if c.Load() != 0 {
		t.Fatalf("idle Load = %v", c.Load())
	}
	c.Submit(100, nil)
	c.Submit(100, nil)
	c.Submit(100, nil)
	if got := c.Load(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Load = %v, want 1.5", got)
	}
}

func TestClusterRemove(t *testing.T) {
	eng := sim.NewEngine(1)
	c, servers := bootCluster(t, eng, 2, 0)
	c.Remove(servers[0])
	if c.Size() != 1 {
		t.Fatalf("Size = %d", c.Size())
	}
	c.Remove(servers[0]) // no-op
	if c.Size() != 1 {
		t.Fatal("double remove changed size")
	}
	c.Submit(10, nil)
	if servers[0].Active() != 0 {
		t.Fatal("removed server received work")
	}
}

func TestClusterSkipsRetiredServers(t *testing.T) {
	eng := sim.NewEngine(1)
	c, servers := bootCluster(t, eng, 2, 0)
	servers[0].Retire(nil)
	if got := c.AcceptingSize(); got != 1 {
		t.Fatalf("AcceptingSize = %d", got)
	}
	c.Submit(10, nil)
	if servers[0].Active() != 0 {
		t.Fatal("retired server received work")
	}
	if servers[1].Active() != 1 {
		t.Fatal("healthy server did not receive work")
	}
}

func TestClusterEmptyRejects(t *testing.T) {
	c := NewCluster("empty")
	if c.Submit(1, nil) {
		t.Fatal("empty cluster admitted a job")
	}
	if c.Load() != 0 {
		t.Fatal("empty cluster Load != 0")
	}
}

func TestSubmitTimedReportsSojourn(t *testing.T) {
	eng := sim.NewEngine(1)
	c, _ := bootCluster(t, eng, 1, 0)
	var sojourn float64
	c.SubmitTimed(eng, 2.0, func(s float64) { sojourn = s })
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sojourn-2.0) > 1e-9 {
		t.Fatalf("sojourn = %v, want 2", sojourn)
	}
}

// TestClusterArrivalsMonotoneAcrossDrain pins the ArrivalMeter contract:
// Arrivals counts every Submit exactly once, and stays correct where the
// derived Served()+Rejected()+Active() sum dips — a server removed from
// the cluster while draining takes its in-flight jobs out of Active()
// before they reach Served().
func TestClusterArrivalsMonotoneAcrossDrain(t *testing.T) {
	eng := sim.NewEngine(1)
	c, servers := bootCluster(t, eng, 2, 1)
	for i := 0; i < 3; i++ {
		c.Submit(10, nil) // 2 accepted (capacity 1 each), 1 rejected
	}
	if c.Arrivals() != 3 {
		t.Fatalf("Arrivals = %d, want 3 (accepted and rejected both count)", c.Arrivals())
	}
	// Graceful drain: the server leaves the cluster with a job in flight.
	c.Remove(servers[0])
	derived := c.Served() + c.Rejected() + uint64(c.Active())
	if derived >= c.Arrivals() {
		t.Fatalf("derived sum = %d did not dip below Arrivals = %d; the drain regression this test pins is gone",
			derived, c.Arrivals())
	}
	if c.Arrivals() != 3 {
		t.Fatalf("Arrivals = %d after drain, want 3 (monotone)", c.Arrivals())
	}
}

func TestClusterAddNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCluster("x").Add(nil)
}
