// Package lms models the e-learning application layer: the request mix
// a learning-management system serves (content pages, video, quizzes,
// uploads), processor-sharing application servers running on cloud
// VMs, a load-balanced cluster, user sessions with autosave, and the
// digital assets ("tests, exam questions, results") whose safety the
// paper worries about (§III).
//
// Entry points:
//
//   - Class / ClassSpec / Mix describe the traffic: DefaultCatalog
//     carries the per-class service demands, TeachingMix and ExamMix
//     are the two canonical blends (the workload package draws
//     arrivals from a Mix).
//   - NewAppServer binds a processor-sharing server to a cloud.VM;
//     NewCluster load-balances a fleet of them. Together they are the
//     serving path every request-level scenario run measures latency
//     through.
//   - NewSession models one student's stateful session with periodic
//     autosave — the unit of "lost work" when the network drops
//     (figure5's §III risk).
//   - NewAssetStore tracks where the institution's digital assets live
//     (OnPublic/on-premise Locations), which is what the security
//     package threatens and the migrate package has to move.
package lms
