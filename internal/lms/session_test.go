package lms

import (
	"testing"
	"time"
)

func TestSessionAutosaveAndLostWork(t *testing.T) {
	s := NewSession(1, 0)
	if !s.Connected() {
		t.Fatal("new session must be connected")
	}
	if !s.Autosave(10 * time.Minute) {
		t.Fatal("autosave failed while connected")
	}
	if s.Saves() != 1 {
		t.Fatalf("Saves = %d", s.Saves())
	}
	// Disconnect 7 minutes after the save: 7 minutes lost.
	lost := s.Disconnect(17 * time.Minute)
	if lost != 7*time.Minute {
		t.Fatalf("lost = %v, want 7m", lost)
	}
	if s.LostWork() != 7*time.Minute {
		t.Fatalf("LostWork = %v", s.LostWork())
	}
}

func TestSessionAutosaveWhileDisconnectedFails(t *testing.T) {
	s := NewSession(1, 0)
	s.Disconnect(time.Minute)
	if s.Autosave(2 * time.Minute) {
		t.Fatal("autosave succeeded while disconnected")
	}
	if s.Saves() != 0 {
		t.Fatalf("Saves = %d", s.Saves())
	}
}

func TestSessionReconnectResetsSavepoint(t *testing.T) {
	s := NewSession(1, 0)
	s.Disconnect(10 * time.Minute) // loses 10m
	s.Reconnect(12 * time.Minute)
	if !s.Connected() {
		t.Fatal("not reconnected")
	}
	// Unsaved work counts from the reconnect, not from session start.
	if got := s.UnsavedWork(15 * time.Minute); got != 3*time.Minute {
		t.Fatalf("UnsavedWork = %v, want 3m", got)
	}
	// A second disconnect loses only post-reconnect work.
	if lost := s.Disconnect(15 * time.Minute); lost != 3*time.Minute {
		t.Fatalf("second lost = %v, want 3m", lost)
	}
	if s.LostWork() != 13*time.Minute {
		t.Fatalf("cumulative LostWork = %v, want 13m", s.LostWork())
	}
}

func TestSessionDoubleTransitionsAreNoOps(t *testing.T) {
	s := NewSession(1, 0)
	s.Disconnect(time.Minute)
	if lost := s.Disconnect(2 * time.Minute); lost != 0 {
		t.Fatalf("double disconnect lost %v", lost)
	}
	s.Reconnect(3 * time.Minute)
	s.Reconnect(4 * time.Minute) // no-op
	if got := s.UnsavedWork(5 * time.Minute); got != 2*time.Minute {
		t.Fatalf("UnsavedWork = %v, want 2m (from first reconnect)", got)
	}
}

func TestSessionUnsavedWorkNeverNegative(t *testing.T) {
	s := NewSession(1, 10*time.Minute)
	if got := s.UnsavedWork(5 * time.Minute); got != 0 {
		t.Fatalf("UnsavedWork before start = %v", got)
	}
}
