package benchrec

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testSHA builds a valid-shaped (64 lowercase hex) fake digest from one
// byte, so tests can make two artifacts differ by construction.
func testSHA(b byte) string { return strings.Repeat(fmt.Sprintf("%02x", b), 32) }

// testRecord is a minimal valid suite record tests mutate per case.
func testRecord(exps ...ExperimentRecord) *SuiteRecord {
	if len(exps) == 0 {
		exps = []ExperimentRecord{
			{ID: "table1", Title: "t1", WallMS: 700, Jobs: 4, Bytes: 10, SHA256: testSHA(0x11)},
			{ID: "figure3", Title: "f3", WallMS: 400, Jobs: 32, Bytes: 20, SHA256: testSHA(0x22)},
		}
	}
	return &SuiteRecord{
		Schema:         Schema,
		Seed:           1,
		Parallel:       4,
		GOMAXPROCS:     1,
		GoVersion:      "go1.24.0",
		SuiteWallMS:    1100,
		ArtifactSHA256: testSHA(0xaa),
		Experiments:    exps,
		Pool: PoolRecord{
			Workers: 4, JobsRun: 40, HelperRecruits: 4, Handoffs: 4,
			Donations: 2, PeakConcurrent: 4, TokenIdleMS: 330,
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rec := testRecord()
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := got.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Errorf("round trip not byte-stable:\n%s\nvs\n%s", buf.Bytes(), again.Bytes())
	}
}

func TestLoadRejectsMalformedJSON(t *testing.T) {
	dir := t.TempDir()
	// A truncated record: valid prefix of real output, cut mid-object.
	var buf bytes.Buffer
	if err := testRecord().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string]string{
		"garbage.json":   "not json at all {",
		"truncated.json": buf.String()[:buf.Len()/2],
		"empty.json":     "",
		"wrongtop.json":  `["a", "list"]`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("%s: malformed record accepted", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "nonexistent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*SuiteRecord)
		wantErr string // substring; "" means valid
	}{
		{"valid", func(r *SuiteRecord) {}, ""},
		{"wrong schema", func(r *SuiteRecord) { r.Schema = "elearncloud/bench/v2" }, "schema"},
		{"empty schema", func(r *SuiteRecord) { r.Schema = "" }, "schema"},
		{"no experiments", func(r *SuiteRecord) { r.Experiments = nil }, "no experiments"},
		{"empty id", func(r *SuiteRecord) { r.Experiments[0].ID = "" }, "has no id"},
		{"duplicate id", func(r *SuiteRecord) { r.Experiments[1].ID = r.Experiments[0].ID }, "duplicate"},
		{"short sha", func(r *SuiteRecord) { r.Experiments[0].SHA256 = "abc123" }, "SHA-256"},
		{"uppercase sha", func(r *SuiteRecord) {
			r.Experiments[0].SHA256 = strings.Repeat("AB", 32)
		}, "SHA-256"},
		{"nonhex suite sha", func(r *SuiteRecord) {
			r.ArtifactSHA256 = strings.Repeat("zz", 32)
		}, "SHA-256"},
		{"negative wall", func(r *SuiteRecord) { r.Experiments[0].WallMS = -1 }, "negative"},
		{"negative suite wall", func(r *SuiteRecord) { r.SuiteWallMS = -1 }, "negative"},
		{"zero workers", func(r *SuiteRecord) { r.Pool.Workers = 0 }, "workers"},
		{"sharded pool", func(r *SuiteRecord) {
			r.Pool.Shards = 2
			r.Pool.ShardEvents = []uint64{100, 200}
		}, ""},
		{"shards without events", func(r *SuiteRecord) { r.Pool.Shards = 8 }, ""},
		{"negative shards", func(r *SuiteRecord) { r.Pool.Shards = -1 }, "negative"},
		{"shard events mismatch", func(r *SuiteRecord) {
			r.Pool.Shards = 2
			r.Pool.ShardEvents = []uint64{100}
		}, "shard_events"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := testRecord()
			tc.mutate(rec)
			err := rec.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid record rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestIdleFraction(t *testing.T) {
	rec := testRecord()
	// 330 ms idle over (4−1 workers) × 1100 ms wall = 0.1.
	if got := rec.IdleFraction(); got < 0.0999 || got > 0.1001 {
		t.Errorf("IdleFraction = %v, want 0.1", got)
	}
	rec.Pool.Workers = 1
	if got := rec.IdleFraction(); got != 0 {
		t.Errorf("1-worker IdleFraction = %v, want 0 (no helper tokens exist)", got)
	}
	rec.Pool.Workers = 4
	rec.SuiteWallMS = 0
	if got := rec.IdleFraction(); got != 0 {
		t.Errorf("zero-wall IdleFraction = %v, want 0", got)
	}
}

// TestLoadBaseline: the committed repo baselines must always satisfy
// the validator the comparator applies to them — if this fails, the
// bench-compare CI job is comparing against a record it would reject.
func TestLoadBaseline(t *testing.T) {
	for name, want := range map[string]int{
		"BENCH_PR3.json": 17,
		"BENCH_PR4.json": 17,
		"BENCH_PR5.json": 19, // + table9, figure10 (the MOOC experiments)
		"BENCH_PR8.json": 20, // + table10 (the sharded DES scale experiment)
		"BENCH_PR9.json": 21, // + table11 (the auto-fidelity hybrid experiment)
	} {
		rec, err := Load(filepath.Join("..", "..", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rec.Experiments) != want {
			t.Errorf("%s: %d experiments, want %d", name, len(rec.Experiments), want)
		}
	}
}
