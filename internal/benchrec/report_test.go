package benchrec

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update-report-golden regenerates the committed renderer fixtures
// from the current code; commit the diff only when a rendering change
// is intentional.
var updateReportGolden = flag.Bool("update-report-golden", false,
	"rewrite testdata/report.golden.* from the current renderers")

// fixtureReport compares the two committed fixture records, which
// between them exercise every classification: unchanged (table1),
// regression (table2), faster (figure5), under-the-floor jitter plus
// output drift (figure7), removed (table9), added (figure10), suite
// SHA drift, and utilization drift.
func fixtureReport(t *testing.T) *Report {
	t.Helper()
	old, err := Load(filepath.Join("testdata", "old.json"))
	if err != nil {
		t.Fatal(err)
	}
	new, err := Load(filepath.Join("testdata", "new.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	rep.OldLabel, rep.NewLabel = "testdata/old.json", "testdata/new.json"
	return rep
}

// checkGolden compares got against the committed fixture (or rewrites
// it under -update-report-golden).
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateReportGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/benchrec -update-report-golden)", err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from the committed fixture.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestReportGoldenMarkdown pins the PR-comment renderer byte-for-byte:
// comparisons are pure functions of the records, so the fixture pair
// must always render identically.
func TestReportGoldenMarkdown(t *testing.T) {
	checkGolden(t, "report.golden.md", fixtureReport(t).Markdown())
}

// TestReportGoldenText pins the CLI's default aligned-text renderer.
func TestReportGoldenText(t *testing.T) {
	checkGolden(t, "report.golden.txt", fixtureReport(t).Text())
}

// TestReportFixtureClassification double-checks the fixture exercises
// what its comment claims, so a fixture edit cannot silently hollow
// out the golden tests.
func TestReportFixtureClassification(t *testing.T) {
	rep := fixtureReport(t)
	want := map[string]Class{
		"table1":   Unchanged,
		"table2":   Regression,
		"figure5":  Faster,
		"figure7":  Unchanged,
		"table9":   Removed,
		"figure10": Added,
	}
	if len(rep.Experiments) != len(want) {
		t.Fatalf("fixture rows = %d, want %d", len(rep.Experiments), len(want))
	}
	for _, e := range rep.Experiments {
		if e.Class != want[e.ID] {
			t.Errorf("%s = %s, want %s", e.ID, e.Class, want[e.ID])
		}
	}
	if row := rep.Experiments[3]; row.ID != "figure7" || !row.OutputDrift {
		t.Errorf("figure7 should carry output drift: %+v", row)
	}
	if !rep.Pool.Drift || !rep.SuiteSHADrift || !rep.HasRegression() || !rep.HasOutputDrift() {
		t.Errorf("fixture lost a flag: %s", rep.Summary())
	}
}

// TestReportJSON: the JSON rendering round-trips and spells classes as
// strings.
func TestReportJSON(t *testing.T) {
	rep := fixtureReport(t)
	out, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(out), "\n") {
		t.Error("JSON report should end in a newline")
	}
	var back Report
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Experiments) != len(rep.Experiments) {
		t.Fatalf("round trip lost rows: %d vs %d", len(back.Experiments), len(rep.Experiments))
	}
	if back.Experiments[1].Class != Regression {
		t.Errorf("class round trip = %q", back.Experiments[1].Class)
	}
	if !strings.Contains(string(out), `"class": "regression"`) {
		t.Error("classes should marshal as strings")
	}
}

// TestSummaryGrepStable: zero counts still print, so CI logs can grep
// for the fields unconditionally.
func TestSummaryGrepStable(t *testing.T) {
	rec := testRecord()
	rep, err := Compare(rec, rec, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	for _, want := range []string{"0 regressions", "0 faster", "2 unchanged",
		"0 added", "0 removed", "0 output drifts"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}
