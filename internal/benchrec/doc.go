// Package benchrec reads, validates and compares the machine-readable
// perf records `elbench -json` emits (schema "elearncloud/bench/v1",
// committed baselines BENCH_PR3.json through BENCH_PR9.json at the repo
// root). It is the runner-side analogue of the paper's §IV
// cost/performance comparison across deployment models: measure two
// configurations the same way, then diff the measurements instead of
// trusting impressions.
//
// Entry points:
//
//   - SuiteRecord / ExperimentRecord / PoolRecord — the typed schema.
//     SuiteRecord.Encode writes the exact bytes `elbench -json` prints;
//     Load / Decode read them back, rejecting malformed JSON and any
//     record Validate refuses (wrong schema string, duplicate or empty
//     experiment ids, non-SHA-256 hashes, negative wall-clocks).
//   - Compare(old, new, Thresholds) — classifies every per-experiment
//     wall-clock delta (Regression / Faster / Unchanged under a ratio
//     threshold with an absolute noise floor, strictly-above semantics
//     on both), experiments Added / Removed between the records (a
//     rename is one of each; ids are identity), per-experiment and
//     suite-level artifact-hash changes (OutputDrift — a correctness
//     signal for the golden store, deliberately never part of the perf
//     verdict), and suite-level pool-utilization drift via
//     SuiteRecord.IdleFraction (advisory only).
//   - Report — the classification, rendered three ways: Text (aligned
//     table, the CLI default), Markdown (PR comments, CI step
//     summaries), JSON (tooling). HasRegression is the exit-code gate
//     `elbench -compare` uses; HasOutputDrift backs -compare-strict.
//
// Comparisons are pure functions of the two records — no clocks, no
// filesystem — so the same pair of records always yields the same
// report bytes, which is what lets a golden fixture pin the renderers.
package benchrec
