package benchrec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Schema is the perf-record schema this package reads, writes and
// compares. Records carrying any other schema string are rejected by
// Validate: cross-version comparisons would silently mix fields with
// different meanings.
const Schema = "elearncloud/bench/v1"

// SuiteRecord is the schema-stable machine-readable output of
// `elbench -json`: one benchmark run of the artifact suite.
//
// Field order is emission order; additions must append, never reorder
// or rename, so committed records (BENCH_PR3.json through BENCH_PR9.json)
// stay comparable across PRs. Decoding tolerates unknown fields for
// the same reason: an old comparator must still read a newer record's
// common prefix.
type SuiteRecord struct {
	Schema         string             `json:"schema"`
	Seed           uint64             `json:"seed"`
	Parallel       int                `json:"parallel"`
	GOMAXPROCS     int                `json:"gomaxprocs"`
	GoVersion      string             `json:"go_version"`
	SuiteWallMS    float64            `json:"suite_wall_ms"`
	ArtifactSHA256 string             `json:"artifact_sha256"`
	Experiments    []ExperimentRecord `json:"experiments"`
	Pool           PoolRecord         `json:"pool"`
}

// ExperimentRecord is one experiment's accounting inside a suite run:
// wall-clock, jobs attributed through the metered pool view, and the
// identity (size + SHA-256) of the artifact text it rendered.
type ExperimentRecord struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	WallMS float64 `json:"wall_ms"`
	Jobs   uint64  `json:"jobs"`
	Bytes  int     `json:"bytes"`
	SHA256 string  `json:"sha256"`
}

// PoolRecord is the shared scenario.Pool's realized-execution telemetry
// for the whole suite (see ARCHITECTURE.md's Telemetry section for
// counter semantics).
type PoolRecord struct {
	Workers        int     `json:"workers"`
	JobsRun        uint64  `json:"jobs_run"`
	HelperRecruits uint64  `json:"helper_recruits"`
	Handoffs       uint64  `json:"handoffs"`
	Donations      uint64  `json:"donations"`
	PeakConcurrent int     `json:"peak_concurrent"`
	TokenIdleMS    float64 `json:"token_idle_ms"`
	// Shards and ShardEvents describe the most recent merged sharded run
	// on the pool (scenario.ShardedRun): shard count and per-shard DES
	// event totals in shard-index order. Appended in bench/v1 without a
	// version bump — omitted when the suite ran no multi-shard scenario,
	// so pre-sharding records round-trip byte-identically.
	Shards      int      `json:"shards,omitempty"`
	ShardEvents []uint64 `json:"shard_events,omitempty"`
	// HybridFluidHours and HybridDESHours describe the most recent
	// hybrid run on the pool (scenario.HybridRun): simulated hours
	// integrated by the fluid model versus simulated at request level.
	// Appended in bench/v1 without a version bump — omitted when the
	// suite ran no hybrid scenario, so earlier records round-trip
	// byte-identically.
	HybridFluidHours float64 `json:"hybrid_fluid_hours,omitempty"`
	HybridDESHours   float64 `json:"hybrid_des_hours,omitempty"`
}

// Encode writes the record as indented JSON plus a trailing newline —
// byte-identical to what `elbench -json` has emitted since PR 3, so
// committed baselines stay stable under round-trips.
func (r *SuiteRecord) Encode(w io.Writer) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", out)
	return err
}

// Decode reads one JSON suite record and validates it. Malformed or
// truncated JSON is an error, as is any record Validate rejects.
func Decode(r io.Reader) (*SuiteRecord, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var rec SuiteRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("malformed perf record: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return &rec, nil
}

// Load reads and validates the suite record at path.
func Load(path string) (*SuiteRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rec, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// validSHA reports whether s has the shape of a lowercase hex SHA-256.
func validSHA(s string) bool {
	if len(s) != 64 {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Validate checks the structural invariants a comparable record must
// hold: the known schema string, at least one experiment, unique
// non-empty experiment ids, SHA-256 shaped hashes, non-negative
// wall-clocks, and a pool sized for at least one worker.
func (r *SuiteRecord) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("unsupported record schema %q (this comparator reads %q)", r.Schema, Schema)
	}
	if len(r.Experiments) == 0 {
		return fmt.Errorf("record has no experiments")
	}
	if r.SuiteWallMS < 0 {
		return fmt.Errorf("negative suite_wall_ms %v", r.SuiteWallMS)
	}
	if !validSHA(r.ArtifactSHA256) {
		return fmt.Errorf("artifact_sha256 %q is not a lowercase hex SHA-256", r.ArtifactSHA256)
	}
	seen := make(map[string]bool, len(r.Experiments))
	for i, e := range r.Experiments {
		if e.ID == "" {
			return fmt.Errorf("experiment %d has no id", i)
		}
		if seen[e.ID] {
			return fmt.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.WallMS < 0 {
			return fmt.Errorf("%s: negative wall_ms %v", e.ID, e.WallMS)
		}
		if !validSHA(e.SHA256) {
			return fmt.Errorf("%s: sha256 %q is not a lowercase hex SHA-256", e.ID, e.SHA256)
		}
	}
	if r.Pool.Workers < 1 {
		return fmt.Errorf("pool workers %d (a run always has at least the root caller)", r.Pool.Workers)
	}
	if r.Pool.Shards < 0 {
		return fmt.Errorf("pool shards %d is negative", r.Pool.Shards)
	}
	if n := len(r.Pool.ShardEvents); n != 0 && n != r.Pool.Shards {
		return fmt.Errorf("pool shard_events has %d entries for %d shards (want none or one per shard)",
			n, r.Pool.Shards)
	}
	if r.Pool.HybridFluidHours < 0 || r.Pool.HybridDESHours < 0 {
		return fmt.Errorf("pool hybrid fidelity split %.3f/%.3f has a negative side",
			r.Pool.HybridFluidHours, r.Pool.HybridDESHours)
	}
	return nil
}

// IdleFraction is the suite's pool-underutilization number: the
// fraction of available helper-token time that sat parked, computed as
// TokenIdleMS / ((Workers−1) × SuiteWallMS). A 1-worker pool has no
// helper tokens, so its idle fraction is defined as 0. This is the
// runner-side analogue of the paper's Figure 4 private-fleet
// utilization argument (see ARCHITECTURE.md's Telemetry section).
func (r *SuiteRecord) IdleFraction() float64 {
	if r.Pool.Workers <= 1 || r.SuiteWallMS <= 0 {
		return 0
	}
	return r.Pool.TokenIdleMS / (float64(r.Pool.Workers-1) * r.SuiteWallMS)
}
