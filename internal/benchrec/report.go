package benchrec

import (
	"encoding/json"
	"fmt"
	"strings"

	"elearncloud/internal/metrics"
)

// ms formats a wall-clock for the human renderers: one decimal is
// plenty next to a 250 ms noise floor.
func ms(v float64) string { return fmt.Sprintf("%.1f", v) }

// ratioCell formats an experiment row's ratio column; Added/Removed
// rows have no ratio. Cells stay ASCII because the aligned-text
// renderer measures widths in bytes.
func ratioCell(e ExperimentDelta) string {
	if e.Class == Added || e.Class == Removed || e.Ratio == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", e.Ratio)
}

// jobsCell renders the jobs-attributed column.
func jobsCell(e ExperimentDelta) string {
	return fmt.Sprintf("%d->%d", e.OldJobs, e.NewJobs)
}

// verdictCell renders the class, upper-casing the one that fails the
// gate so it jumps out of a 17-row table.
func verdictCell(e ExperimentDelta) string {
	if e.Class == Regression {
		return "REGRESSION"
	}
	return string(e.Class)
}

// outputCell renders the output-drift column.
func outputCell(e ExperimentDelta) string {
	if e.OutputDrift {
		return "drift"
	}
	if e.Class == Added || e.Class == Removed {
		return "-"
	}
	return "same"
}

// header is the one-line comparison context shared by the text and
// markdown renderers.
func (r *Report) header() string {
	from, to := r.OldLabel, r.NewLabel
	if from == "" {
		from = "old"
	}
	if to == "" {
		to = "new"
	}
	return fmt.Sprintf("%s → %s (regression above %.2fx over a %g ms floor)",
		from, to, r.Thresholds.Ratio, r.Thresholds.FloorMS)
}

// poolLine summarizes the suite-level pool telemetry comparison.
func (r *Report) poolLine() string {
	p := r.Pool
	line := fmt.Sprintf(
		"pool: workers %d→%d, idle fraction %.3f→%.3f, recruits %d→%d, handoffs %d→%d, donations %d→%d, peak %d→%d",
		p.Old.Workers, p.New.Workers, p.OldIdleFrac, p.NewIdleFrac,
		p.Old.HelperRecruits, p.New.HelperRecruits,
		p.Old.Handoffs, p.New.Handoffs,
		p.Old.Donations, p.New.Donations,
		p.Old.PeakConcurrent, p.New.PeakConcurrent)
	if p.Drift {
		line += fmt.Sprintf(" — UTILIZATION DRIFT (|Δ idle| > %.2f, advisory)", r.Thresholds.IdleFrac)
	}
	return line
}

// suiteLine summarizes the whole-suite wall-clock movement.
func (r *Report) suiteLine() string {
	line := fmt.Sprintf("suite wall: %s ms → %s ms", ms(r.SuiteOldMS), ms(r.SuiteNewMS))
	if r.SuiteOldMS > 0 {
		line += fmt.Sprintf(" (%.2fx)", r.SuiteNewMS/r.SuiteOldMS)
	}
	if r.SuiteSHADrift {
		line += ", suite artifact sha CHANGED"
	}
	return line
}

// Text renders the report as an aligned plain-text table (the same
// renderer the artifacts use) followed by the suite, pool and summary
// lines. This is elbench -compare's default format.
func (r *Report) Text() string {
	tbl := metrics.NewTable("perf compare: "+r.header(),
		"experiment", "old ms", "new ms", "ratio", "jobs", "verdict", "output")
	for _, e := range r.Experiments {
		tbl.AddRow(e.ID, ms(e.OldMS), ms(e.NewMS), ratioCell(e),
			jobsCell(e), verdictCell(e), outputCell(e))
	}
	tbl.AddNote("%s", r.suiteLine())
	tbl.AddNote("%s", r.poolLine())
	tbl.AddNote("result: %s", r.Summary())
	return tbl.String()
}

// Markdown renders the report as a GitHub-flavored table plus summary
// bullets — the shape meant for PR comments and CI step summaries.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### elbench perf compare\n\n")
	fmt.Fprintf(&b, "%s\n\n", r.header())
	b.WriteString("| experiment | old ms | new ms | ratio | jobs | verdict | output |\n")
	b.WriteString("|---|---:|---:|---:|---:|---|---|\n")
	for _, e := range r.Experiments {
		verdict := verdictCell(e)
		if e.Class == Regression {
			verdict = "**REGRESSION**"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s |\n",
			e.ID, ms(e.OldMS), ms(e.NewMS), ratioCell(e),
			jobsCell(e), verdict, outputCell(e))
	}
	fmt.Fprintf(&b, "\n- %s\n- %s\n- **result:** %s\n",
		r.suiteLine(), r.poolLine(), r.Summary())
	return b.String()
}

// JSON renders the report as indented JSON with a trailing newline,
// for tooling that wants the classification without re-deriving it.
func (r *Report) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
