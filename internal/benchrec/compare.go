package benchrec

import (
	"fmt"
)

// Thresholds configures what Compare counts as a wall-clock regression
// and as utilization drift. The zero value is invalid; start from
// DefaultThresholds.
type Thresholds struct {
	// Ratio is the wall-clock regression multiplier: an experiment
	// regresses only when its new wall-clock is *strictly more* than
	// Ratio × old (so a delta landing exactly on the ratio is still
	// within threshold). Must be ≥ 1.
	Ratio float64 `json:"ratio"`
	// FloorMS is the noise floor: however bad the ratio, a delta is
	// ignored unless the absolute wall-clock change also exceeds
	// FloorMS. Sub-millisecond experiments (figure7, table7) routinely
	// double from scheduler jitter alone; the floor keeps them from
	// crying wolf. Must be ≥ 0.
	FloorMS float64 `json:"floor_ms"`
	// IdleFrac is the absolute pool idle-fraction change (see
	// SuiteRecord.IdleFraction) flagged as utilization drift.
	// Utilization drift is advisory — it annotates the report but never
	// makes HasRegression true, because idle time measures the runner's
	// provisioning, not the workload's speed. Must be ≥ 0.
	IdleFrac float64 `json:"idle_frac"`
}

// DefaultThresholds matches the elbench CLI defaults: regression above
// 1.25× over a 250 ms noise floor, utilization drift above a 0.10
// absolute idle-fraction change.
func DefaultThresholds() Thresholds {
	return Thresholds{Ratio: 1.25, FloorMS: 250, IdleFrac: 0.10}
}

// Class is the verdict Compare assigns to one experiment's wall-clock
// delta. It marshals as its string form in the JSON report.
type Class string

const (
	// Unchanged: the delta stayed inside the ratio threshold or under
	// the noise floor.
	Unchanged Class = "unchanged"
	// Faster: the symmetric opposite of Regression — old wall-clock
	// strictly exceeds Ratio × new, by more than the floor.
	Faster Class = "faster"
	// Regression: new wall-clock strictly exceeds Ratio × old, by more
	// than the floor. The only class that makes HasRegression true.
	Regression Class = "regression"
	// Added: the experiment exists only in the new record. A rename
	// shows up as one Added plus one Removed — ids are identity, there
	// is no fuzzy matching.
	Added Class = "added"
	// Removed: the experiment exists only in the old record.
	Removed Class = "removed"
)

// ExperimentDelta is one experiment's comparison row. For Added rows
// the Old* fields are zero; for Removed rows the New* fields are.
type ExperimentDelta struct {
	ID    string `json:"id"`
	Class Class  `json:"class"`
	// OldMS and NewMS are the wall-clocks being compared; Ratio is
	// NewMS/OldMS (0 when the experiment is Added/Removed or OldMS is 0).
	OldMS float64 `json:"old_ms"`
	NewMS float64 `json:"new_ms"`
	Ratio float64 `json:"ratio"`
	// OutputDrift reports that the artifact's SHA-256 changed between
	// the records. It is deliberately separate from Class: different
	// bytes mean the experiment computed something else, which is a
	// correctness question for the golden store — not evidence the
	// runner got slower — so it never feeds the perf verdict.
	OutputDrift bool   `json:"output_drift,omitempty"`
	OldJobs     uint64 `json:"old_jobs"`
	NewJobs     uint64 `json:"new_jobs"`
}

// PoolDelta compares the two records' suite-level pool telemetry.
type PoolDelta struct {
	Old         PoolRecord `json:"old"`
	New         PoolRecord `json:"new"`
	OldIdleFrac float64    `json:"old_idle_frac"`
	NewIdleFrac float64    `json:"new_idle_frac"`
	// Drift is true when the absolute idle-fraction change exceeds
	// Thresholds.IdleFrac. Advisory only; see Thresholds.IdleFrac.
	Drift bool `json:"drift"`
}

// Report is the full result of comparing two suite records. OldLabel
// and NewLabel are display names (typically the record file paths) the
// renderers print; Compare leaves them empty for the caller to fill.
type Report struct {
	OldLabel   string     `json:"old_label,omitempty"`
	NewLabel   string     `json:"new_label,omitempty"`
	Thresholds Thresholds `json:"thresholds"`
	SuiteOldMS float64    `json:"suite_old_ms"`
	SuiteNewMS float64    `json:"suite_new_ms"`
	// SuiteSHADrift reports that the two records' concatenated-artifact
	// hashes differ. It is the raw artifact_sha256 comparison, not a
	// rollup of the per-row OutputDrift flags: it is order-sensitive
	// and can stay false when individual drifts cancel out in the
	// concatenation (HasOutputDrift checks both levels).
	SuiteSHADrift bool `json:"suite_sha_drift"`
	// Experiments lists every id from either record: the old record's
	// order first (shared and removed ids), then ids new to the new
	// record in its order.
	Experiments []ExperimentDelta `json:"experiments"`
	Pool        PoolDelta         `json:"pool"`
}

// Compare validates both records and classifies every per-experiment
// wall-clock delta, artifact-hash change, and the suite-level pool
// utilization drift under the given thresholds. It never consults the
// host clock: everything comes from the two records, so comparing the
// same pair twice yields byte-identical reports.
func Compare(old, new *SuiteRecord, t Thresholds) (*Report, error) {
	if t.Ratio < 1 {
		return nil, fmt.Errorf("threshold ratio %v must be ≥ 1 (1 flags any above-floor slowdown)", t.Ratio)
	}
	if t.FloorMS < 0 {
		return nil, fmt.Errorf("noise floor %v ms must be ≥ 0", t.FloorMS)
	}
	if t.IdleFrac < 0 {
		return nil, fmt.Errorf("idle-fraction drift threshold %v must be ≥ 0", t.IdleFrac)
	}
	if err := old.Validate(); err != nil {
		return nil, fmt.Errorf("old record: %w", err)
	}
	if err := new.Validate(); err != nil {
		return nil, fmt.Errorf("new record: %w", err)
	}

	rep := &Report{
		Thresholds:    t,
		SuiteOldMS:    old.SuiteWallMS,
		SuiteNewMS:    new.SuiteWallMS,
		SuiteSHADrift: old.ArtifactSHA256 != new.ArtifactSHA256,
		Pool: PoolDelta{
			Old:         old.Pool,
			New:         new.Pool,
			OldIdleFrac: old.IdleFraction(),
			NewIdleFrac: new.IdleFraction(),
		},
	}
	d := rep.Pool.NewIdleFrac - rep.Pool.OldIdleFrac
	if d < 0 {
		d = -d
	}
	rep.Pool.Drift = d > t.IdleFrac

	byID := make(map[string]ExperimentRecord, len(new.Experiments))
	for _, e := range new.Experiments {
		byID[e.ID] = e
	}
	for _, o := range old.Experiments {
		n, ok := byID[o.ID]
		if !ok {
			rep.Experiments = append(rep.Experiments, ExperimentDelta{
				ID: o.ID, Class: Removed, OldMS: o.WallMS, OldJobs: o.Jobs,
			})
			continue
		}
		delete(byID, o.ID)
		ed := ExperimentDelta{
			ID: o.ID, Class: Unchanged,
			OldMS: o.WallMS, NewMS: n.WallMS,
			OldJobs: o.Jobs, NewJobs: n.Jobs,
			OutputDrift: o.SHA256 != n.SHA256,
		}
		if o.WallMS > 0 {
			ed.Ratio = n.WallMS / o.WallMS
		}
		switch {
		case n.WallMS > o.WallMS*t.Ratio && n.WallMS-o.WallMS > t.FloorMS:
			ed.Class = Regression
		case o.WallMS > n.WallMS*t.Ratio && o.WallMS-n.WallMS > t.FloorMS:
			ed.Class = Faster
		}
		rep.Experiments = append(rep.Experiments, ed)
	}
	for _, n := range new.Experiments {
		if _, ok := byID[n.ID]; ok {
			rep.Experiments = append(rep.Experiments, ExperimentDelta{
				ID: n.ID, Class: Added, NewMS: n.WallMS, NewJobs: n.Jobs,
			})
		}
	}
	return rep, nil
}

// Count returns how many experiment rows carry the given class.
func (r *Report) Count(c Class) int {
	n := 0
	for _, e := range r.Experiments {
		if e.Class == c {
			n++
		}
	}
	return n
}

// HasRegression reports whether any experiment's wall-clock regressed.
// This is the gate `elbench -compare` fails on; output drift and
// utilization drift are reported but do not trip it (see -compare-strict
// for making output drift fatal).
func (r *Report) HasRegression() bool {
	return r.Count(Regression) > 0
}

// HasOutputDrift reports whether any artifact hash changed between the
// records — per experiment or at the suite level (the latter also
// catches a changed experiment set).
func (r *Report) HasOutputDrift() bool {
	if r.SuiteSHADrift {
		return true
	}
	for _, e := range r.Experiments {
		if e.OutputDrift {
			return true
		}
	}
	return false
}

// Summary is the one-line verdict every renderer ends with, e.g.
// "1 regression, 2 faster, 14 unchanged, 1 added, 0 removed, 3 output
// drifts, suite sha drift, utilization drift" (the last two terms
// appear only when flagged). Counts of zero are still printed: the
// line is meant to be grep-stable.
func (r *Report) Summary() string {
	plural := func(n int, word string) string {
		if n == 1 {
			return fmt.Sprintf("%d %s", n, word)
		}
		return fmt.Sprintf("%d %ss", n, word)
	}
	drifts := 0
	for _, e := range r.Experiments {
		if e.OutputDrift {
			drifts++
		}
	}
	s := fmt.Sprintf("%s, %d faster, %d unchanged, %d added, %d removed, %s",
		plural(r.Count(Regression), "regression"),
		r.Count(Faster), r.Count(Unchanged), r.Count(Added), r.Count(Removed),
		plural(drifts, "output drift"))
	// Suite-level drift is called out separately: it can be true with
	// zero per-experiment drifts (an added, removed or reordered
	// experiment changes the concatenation), and the strict gate fails
	// on it — the verdict line must not deny what the gate trips on.
	if r.SuiteSHADrift {
		s += ", suite sha drift"
	}
	if r.Pool.Drift {
		s += ", utilization drift"
	}
	return s
}
