package benchrec

import (
	"strings"
	"testing"
)

// classOf finds one experiment's delta row in a report.
func classOf(t *testing.T, rep *Report, id string) ExperimentDelta {
	t.Helper()
	for _, e := range rep.Experiments {
		if e.ID == id {
			return e
		}
	}
	t.Fatalf("report has no row for %q: %+v", id, rep.Experiments)
	return ExperimentDelta{}
}

// TestCompareSelf: comparing a record against itself is the identity
// case the CLI's exit-0 path rests on — everything unchanged, nothing
// drifted, no regression.
func TestCompareSelf(t *testing.T) {
	rec := testRecord()
	rep, err := Compare(rec, rec, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasRegression() || rep.HasOutputDrift() || rep.Pool.Drift {
		t.Errorf("self-compare flagged something: %s", rep.Summary())
	}
	if n := rep.Count(Unchanged); n != len(rec.Experiments) {
		t.Errorf("unchanged = %d, want %d", n, len(rec.Experiments))
	}
	for _, c := range []Class{Regression, Faster, Added, Removed} {
		if n := rep.Count(c); n != 0 {
			t.Errorf("self-compare produced %d %s rows", n, c)
		}
	}
}

func TestCompareRejectsSchemaMismatch(t *testing.T) {
	old, new := testRecord(), testRecord()
	new.Schema = "elearncloud/bench/v2"
	if _, err := Compare(old, new, DefaultThresholds()); err == nil ||
		!strings.Contains(err.Error(), "new record") {
		t.Fatalf("v2 new record accepted: %v", err)
	}
	old.Schema = "something/else"
	new.Schema = Schema
	if _, err := Compare(old, new, DefaultThresholds()); err == nil ||
		!strings.Contains(err.Error(), "old record") {
		t.Fatalf("bad old record accepted: %v", err)
	}
}

func TestCompareRejectsBadThresholds(t *testing.T) {
	rec := testRecord()
	if _, err := Compare(rec, rec, Thresholds{Ratio: 0.8, FloorMS: 250}); err == nil {
		t.Error("ratio < 1 accepted")
	}
	if _, err := Compare(rec, rec, Thresholds{Ratio: 1.25, FloorMS: -1}); err == nil {
		t.Error("negative floor accepted")
	}
	if _, err := Compare(rec, rec, Thresholds{Ratio: 1.25, FloorMS: 250, IdleFrac: -0.1}); err == nil {
		t.Error("negative idle-fraction threshold accepted (would flag drift on every compare)")
	}
}

// TestCompareClassification sweeps the regression boundary: the ratio
// must be strictly exceeded AND the absolute delta must strictly
// exceed the noise floor.
func TestCompareClassification(t *testing.T) {
	th := Thresholds{Ratio: 1.25, FloorMS: 250, IdleFrac: 0.10}
	cases := []struct {
		name         string
		oldMS, newMS float64
		want         Class
	}{
		{"identical", 1000, 1000, Unchanged},
		{"exactly at ratio", 1000, 1250, Unchanged}, // boundary: strictly-above semantics
		{"just above ratio", 1000, 1250.001, Regression},
		{"big ratio under floor", 100, 300, Unchanged}, // 3x, but Δ=200 ms ≤ 250 ms floor
		{"above ratio, delta exactly at floor", 200, 450, Unchanged},
		{"above ratio and floor", 1000, 1300, Regression},
		{"huge slow micro-experiment", 0.5, 200, Unchanged}, // figure7-style jitter
		{"faster symmetric", 1300, 1000, Faster},
		{"exactly at inverse ratio", 1250, 1000, Unchanged},
		{"old zero new large", 0, 300, Regression},
		{"old zero new tiny", 0, 100, Unchanged},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old := testRecord(ExperimentRecord{
				ID: "x", Title: "x", WallMS: tc.oldMS, SHA256: testSHA(0x11)})
			new := testRecord(ExperimentRecord{
				ID: "x", Title: "x", WallMS: tc.newMS, SHA256: testSHA(0x11)})
			rep, err := Compare(old, new, th)
			if err != nil {
				t.Fatal(err)
			}
			if got := classOf(t, rep, "x").Class; got != tc.want {
				t.Errorf("%g → %g ms classified %s, want %s", tc.oldMS, tc.newMS, got, tc.want)
			}
			if (tc.want == Regression) != rep.HasRegression() {
				t.Errorf("HasRegression = %v for class %s", rep.HasRegression(), tc.want)
			}
		})
	}
}

// TestCompareRename: ids are identity — a renamed experiment is one
// Removed plus one Added, never a matched pair.
func TestCompareRename(t *testing.T) {
	old := testRecord(
		ExperimentRecord{ID: "table1", Title: "t", WallMS: 700, SHA256: testSHA(0x11)},
		ExperimentRecord{ID: "figure_old", Title: "f", WallMS: 400, SHA256: testSHA(0x22)},
	)
	new := testRecord(
		ExperimentRecord{ID: "table1", Title: "t", WallMS: 700, SHA256: testSHA(0x11)},
		ExperimentRecord{ID: "figure_new", Title: "f", WallMS: 400, SHA256: testSHA(0x22)},
	)
	rep, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if got := classOf(t, rep, "figure_old").Class; got != Removed {
		t.Errorf("figure_old = %s, want removed", got)
	}
	if got := classOf(t, rep, "figure_new").Class; got != Added {
		t.Errorf("figure_new = %s, want added", got)
	}
	if rep.Count(Added) != 1 || rep.Count(Removed) != 1 || rep.Count(Unchanged) != 1 {
		t.Errorf("counts wrong: %s", rep.Summary())
	}
	// A rename alone is not a perf regression.
	if rep.HasRegression() {
		t.Error("rename flagged as regression")
	}
	// Row order: old-record order first, added rows last.
	ids := make([]string, len(rep.Experiments))
	for i, e := range rep.Experiments {
		ids[i] = e.ID
	}
	if want := "table1,figure_old,figure_new"; strings.Join(ids, ",") != want {
		t.Errorf("row order %v, want %s", ids, want)
	}
}

// TestCompareOutputDrift: a changed artifact hash is reported as
// output drift, orthogonal to the perf verdict.
func TestCompareOutputDrift(t *testing.T) {
	old := testRecord(ExperimentRecord{ID: "x", Title: "x", WallMS: 700, SHA256: testSHA(0x11)})
	new := testRecord(ExperimentRecord{ID: "x", Title: "x", WallMS: 700, SHA256: testSHA(0x33)})
	new.ArtifactSHA256 = testSHA(0xbb)
	rep, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	row := classOf(t, rep, "x")
	if !row.OutputDrift || row.Class != Unchanged {
		t.Errorf("row = %+v, want unchanged with output drift", row)
	}
	if !rep.HasOutputDrift() || !rep.SuiteSHADrift {
		t.Error("suite-level drift not reported")
	}
	if rep.HasRegression() {
		t.Error("output drift counted as perf regression")
	}
	if !strings.Contains(rep.Summary(), "suite sha drift") {
		t.Errorf("summary omits suite sha drift: %s", rep.Summary())
	}
	// Suite-level-only drift (same per-experiment hashes, different
	// concatenation hash — e.g. a reorder) must still reach the
	// summary line the strict gate's error message is built from.
	suiteOnly := testRecord(ExperimentRecord{ID: "x", Title: "x", WallMS: 700, SHA256: testSHA(0x11)})
	suiteOnly.ArtifactSHA256 = testSHA(0xcc)
	rep2, err := Compare(old, suiteOnly, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.HasOutputDrift() || !strings.Contains(rep2.Summary(), "0 output drifts, suite sha drift") {
		t.Errorf("suite-only drift misreported: %s", rep2.Summary())
	}
}

// TestComparePoolDrift: utilization drift is advisory — flagged in the
// report, never part of HasRegression.
func TestComparePoolDrift(t *testing.T) {
	old, new := testRecord(), testRecord()
	// Old idle fraction is 330/(3×1100) = 0.1; push new far above it.
	new.Pool.TokenIdleMS = 1200 // 1200/(3×1100) ≈ 0.364
	rep, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pool.Drift {
		t.Errorf("idle fraction %.3f → %.3f not flagged", rep.Pool.OldIdleFrac, rep.Pool.NewIdleFrac)
	}
	if rep.HasRegression() {
		t.Error("utilization drift counted as regression")
	}
	if !strings.Contains(rep.Summary(), "utilization drift") {
		t.Errorf("summary omits utilization drift: %s", rep.Summary())
	}
}
