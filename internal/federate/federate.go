package federate

import (
	"fmt"
	"math"
	"time"

	"elearncloud/internal/cloud"
	"elearncloud/internal/cost"
	"elearncloud/internal/deploy"
	"elearncloud/internal/lms"
	"elearncloud/internal/metrics"
	"elearncloud/internal/workload"
)

// Member is one participating institution.
type Member struct {
	// Name labels the institution.
	Name string
	// Students is its population.
	Students int
	// CalendarShiftWeeks staggers the member's semester relative to the
	// federation baseline (different regions schedule exams in
	// different weeks).
	CalendarShiftWeeks int
}

// Validate rejects unusable members.
func (m Member) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("federate: member without a name")
	}
	if m.Students <= 0 {
		return fmt.Errorf("federate: member %q has %d students", m.Name, m.Students)
	}
	if m.CalendarShiftWeeks < 0 {
		return fmt.Errorf("federate: member %q has negative calendar shift", m.Name)
	}
	return nil
}

// Config parameterizes a federation study.
type Config struct {
	// Members are the participating institutions.
	Members []Member
	// ReqPerStudentHour is the shared workload intensity (default 50).
	ReqPerStudentHour float64
	// TargetUtil is the sizing headroom (default 0.6).
	TargetUtil float64
}

// MemberOutcome compares one member's standalone cost to its federated
// share.
type MemberOutcome struct {
	Member Member
	// StandaloneHosts and StandaloneMonthly price a go-it-alone private
	// cloud sized for the member's own peak.
	StandaloneHosts   int
	StandaloneMonthly float64
	// FederatedMonthly is the member's usage-proportional share of the
	// shared datacenter.
	FederatedMonthly float64
}

// Saving returns the member's monthly saving from federating.
func (o MemberOutcome) Saving() float64 { return o.StandaloneMonthly - o.FederatedMonthly }

// Result is a federation study's output.
type Result struct {
	// Outcomes has one entry per member, in input order.
	Outcomes []MemberOutcome
	// SharedHosts is the federation datacenter size; SumStandaloneHosts
	// is what the members would deploy separately.
	SharedHosts        int
	SumStandaloneHosts int
	// SharedPeakServers and SumMemberPeaks expose the multiplexing gain.
	SharedPeakServers int
	SumMemberPeaks    int
	// SharedMonthly is the total federation bill per month.
	SharedMonthly float64
}

// MultiplexingGain returns sum-of-peaks over blended peak (≥ 1; higher
// means staggering helped more).
func (r *Result) MultiplexingGain() float64 {
	if r.SharedPeakServers == 0 {
		return 1
	}
	return float64(r.SumMemberPeaks) / float64(r.SharedPeakServers)
}

// Study sizes and prices the federation against standalone deployments.
// Deterministic and analytic (fluid fidelity).
func Study(cfg Config) (*Result, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("federate: no members")
	}
	for _, m := range cfg.Members {
		if err := m.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.ReqPerStudentHour <= 0 {
		cfg.ReqPerStudentHour = 50
	}
	if cfg.TargetUtil <= 0 || cfg.TargetUtil > 1 {
		cfg.TargetUtil = 0.6
	}

	cat := lms.DefaultCatalog()
	meanSvc := lms.TeachingMix().MeanService(cat)
	sem := workload.StandardSemester()
	week := 7 * 24 * time.Hour
	horizon := sem.Duration() + week*maxShift(cfg.Members)

	// Per-member generators with shifted calendars.
	gens := make([]*workload.Generator, len(cfg.Members))
	for i, m := range cfg.Members {
		gen, err := workload.NewGenerator(workload.Config{
			Students:          m.Students,
			ReqPerStudentHour: cfg.ReqPerStudentHour,
			Calendar:          shiftedCalendar(sem, m.CalendarShiftWeeks),
		})
		if err != nil {
			return nil, err
		}
		gens[i] = gen
	}

	// Blend the load curves to find peaks and per-member usage.
	step := 30 * time.Minute
	memberWork := make([]float64, len(cfg.Members)) // integrated server-hours
	var sharedPeakRPS float64
	memberPeakRPS := make([]float64, len(cfg.Members))
	for t := time.Duration(0); t < horizon; t += step {
		var total float64
		for i, gen := range gens {
			r := gen.Rate(t)
			total += r
			if r > memberPeakRPS[i] {
				memberPeakRPS[i] = r
			}
			memberWork[i] += r * meanSvc / cfg.TargetUtil * step.Hours()
		}
		if total > sharedPeakRPS {
			sharedPeakRPS = total
		}
	}

	res := &Result{}
	// Same host and flavor shapes deploy.Build uses for private sizing.
	hostCap := deploy.VMsPerHost(
		cloud.Resources{CPU: 16, Mem: 64, Disk: 8000},
		cloud.Resources{CPU: 4, Mem: 7.5, Disk: 850})
	rates := cost.DefaultRates()
	months := horizon.Hours() / 730

	res.SharedPeakServers = deploy.ServersForPeak(sharedPeakRPS, meanSvc, cfg.TargetUtil)
	res.SharedHosts = hostsFor(res.SharedPeakServers, hostCap)
	sharedBill, err := cost.Bill(cost.Usage{Months: months, PrivateHosts: res.SharedHosts}, rates)
	if err != nil {
		return nil, err
	}
	res.SharedMonthly = sharedBill.Total() / months

	var totalWork float64
	for _, w := range memberWork {
		totalWork += w
	}
	for i, m := range cfg.Members {
		peak := deploy.ServersForPeak(memberPeakRPS[i], meanSvc, cfg.TargetUtil)
		res.SumMemberPeaks += peak
		hosts := hostsFor(peak, hostCap)
		res.SumStandaloneHosts += hosts
		standalone, err := cost.Bill(cost.Usage{Months: months, PrivateHosts: hosts}, rates)
		if err != nil {
			return nil, err
		}
		share := 0.0
		if totalWork > 0 {
			share = memberWork[i] / totalWork
		}
		res.Outcomes = append(res.Outcomes, MemberOutcome{
			Member:            m,
			StandaloneHosts:   hosts,
			StandaloneMonthly: standalone.Total() / months,
			FederatedMonthly:  res.SharedMonthly * share,
		})
	}
	return res, nil
}

// Table renders the study for reports.
func (r *Result) Table(title string) *metrics.Table {
	t := metrics.NewTable(title,
		"member", "students", "standalone hosts", "standalone $/mo", "federated $/mo", "saving")
	for _, o := range r.Outcomes {
		t.AddRow(o.Member.Name, o.Member.Students,
			o.StandaloneHosts,
			metrics.FmtDollars(o.StandaloneMonthly),
			metrics.FmtDollars(o.FederatedMonthly),
			metrics.FmtDollars(o.Saving()))
	}
	t.AddNote("shared datacenter: %d hosts vs %d standalone; peak multiplexing gain %.2fx",
		r.SharedHosts, r.SumStandaloneHosts, r.MultiplexingGain())
	return t
}

func maxShift(members []Member) time.Duration {
	max := 0
	for _, m := range members {
		if m.CalendarShiftWeeks > max {
			max = m.CalendarShiftWeeks
		}
	}
	return time.Duration(max)
}

// shiftedCalendar rotates the semester by n weeks (prepending vacation
// weeks so member terms start at different times).
func shiftedCalendar(base *workload.Calendar, shiftWeeks int) *workload.Calendar {
	if shiftWeeks == 0 {
		return base
	}
	weeks := make([]workload.Week, 0, base.Len()+shiftWeeks)
	for i := 0; i < shiftWeeks; i++ {
		weeks = append(weeks, workload.Week{Kind: workload.Vacation, Mult: 0.05})
	}
	week := 7 * 24 * time.Hour
	for i := 0; i < base.Len(); i++ {
		weeks = append(weeks, base.WeekAt(time.Duration(i)*week))
	}
	return workload.NewCalendar(weeks)
}

func hostsFor(servers int, perHost int) int {
	if perHost < 1 {
		perHost = 1
	}
	h := int(math.Ceil(float64(servers) / float64(perHost)))
	if h < 1 {
		h = 1
	}
	return h
}
