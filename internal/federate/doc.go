// Package federate models a national shared private cloud: several
// institutions pooling one government-operated datacenter instead of
// each running its own. The paper's §IV.C notes the hybrid model
// "provides an environment to build a national private cloud system",
// and §V predicts "governments will eventually start installing and
// using such systems in schools and colleges". table7 and
// examples/federation are this package's artifacts.
//
// The economics come from two effects this package quantifies:
//
//  1. Statistical multiplexing — exam peaks do not coincide, so the
//     peak of the summed load is far below the sum of individual peaks.
//     Members stagger exam calendars; the federation sizes hardware for
//     the blended peak.
//  2. Operational pooling — one professional operations team amortizes
//     across every member, replacing N × minimum-admin floors.
//
// The single entry point is Study(Config): describe the Members (name,
// student population, calendar shift in weeks) and it returns a Result
// — federated vs. standalone hardware peaks, cost per member
// (MemberOutcome, billed by usage share), and the savings each effect
// contributes. Study is deterministic and analytic over the workload
// calendar; it needs no discrete-event run.
package federate
