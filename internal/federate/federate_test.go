package federate

import (
	"strings"
	"testing"
)

func threeColleges() Config {
	return Config{Members: []Member{
		{Name: "coastal", Students: 3000, CalendarShiftWeeks: 0},
		{Name: "inland", Students: 2000, CalendarShiftWeeks: 2},
		{Name: "mountain", Students: 1500, CalendarShiftWeeks: 4},
	}}
}

func TestStudyBasics(t *testing.T) {
	res, err := Study(threeColleges())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 3 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	if res.SharedHosts <= 0 || res.SumStandaloneHosts <= 0 {
		t.Fatal("host counts missing")
	}
	// Pooling never needs more hardware than going alone.
	if res.SharedHosts > res.SumStandaloneHosts {
		t.Fatalf("federation needs %d hosts, standalone only %d",
			res.SharedHosts, res.SumStandaloneHosts)
	}
	// Staggered exams: blended peak strictly below sum of peaks.
	if res.MultiplexingGain() <= 1 {
		t.Fatalf("multiplexing gain = %v, want > 1 with staggered calendars",
			res.MultiplexingGain())
	}
}

func TestEveryMemberSaves(t *testing.T) {
	res, err := Study(threeColleges())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if o.Saving() <= 0 {
			t.Errorf("member %s loses money federating: standalone %v federated %v",
				o.Member.Name, o.StandaloneMonthly, o.FederatedMonthly)
		}
	}
	// Shares sum to the shared bill.
	var shares float64
	for _, o := range res.Outcomes {
		shares += o.FederatedMonthly
	}
	if diff := shares - res.SharedMonthly; diff > 1 || diff < -1 {
		t.Fatalf("shares %v do not sum to shared bill %v", shares, res.SharedMonthly)
	}
}

func TestCoincidentCalendarsMultiplexLess(t *testing.T) {
	staggered, err := Study(threeColleges())
	if err != nil {
		t.Fatal(err)
	}
	cfg := threeColleges()
	for i := range cfg.Members {
		cfg.Members[i].CalendarShiftWeeks = 0 // everyone sits finals together
	}
	coincident, err := Study(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if coincident.MultiplexingGain() >= staggered.MultiplexingGain() {
		t.Fatalf("coincident gain %v >= staggered %v — staggering should matter",
			coincident.MultiplexingGain(), staggered.MultiplexingGain())
	}
}

func TestStudyValidation(t *testing.T) {
	if _, err := Study(Config{}); err == nil {
		t.Fatal("empty federation accepted")
	}
	bad := []Config{
		{Members: []Member{{Name: "", Students: 100}}},
		{Members: []Member{{Name: "x", Students: 0}}},
		{Members: []Member{{Name: "x", Students: 10, CalendarShiftWeeks: -1}}},
	}
	for i, cfg := range bad {
		if _, err := Study(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTableRendering(t *testing.T) {
	res, err := Study(threeColleges())
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table("Table 7: federation")
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	s := tbl.String()
	for _, want := range []string{"coastal", "inland", "mountain", "multiplexing"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}

func TestStudyDeterminism(t *testing.T) {
	a, err := Study(threeColleges())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Study(threeColleges())
	if err != nil {
		t.Fatal(err)
	}
	if a.SharedMonthly != b.SharedMonthly || a.SharedHosts != b.SharedHosts {
		t.Fatal("study not deterministic")
	}
}
