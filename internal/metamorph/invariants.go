package metamorph

import (
	"fmt"
	"math"
	"sort"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/lms"
	"elearncloud/internal/scenario"
	"elearncloud/internal/sim"
	"elearncloud/internal/workload"
)

// Violation is one metamorphic property failure.
type Violation struct {
	// Invariant names the property that failed.
	Invariant string
	// Detail explains the failing relation with the observed numbers.
	Detail string
}

// CheckResult is one invariant's outcome on one case.
type CheckResult struct {
	// Name is the invariant's name.
	Name string
	// Skipped, when non-empty, says why the invariant did not apply to
	// this case (e.g. the config is too large for request-level runs).
	Skipped string
	// V is the violation, nil when the property held or was skipped.
	V *Violation
}

// Report is a full case verdict: the case plus each invariant's result.
type Report struct {
	Case
	Results []CheckResult
}

// Violations returns the subset of results that actually failed.
func (r Report) Violations() []CheckResult {
	var out []CheckResult
	for _, cr := range r.Results {
		if cr.V != nil {
			out = append(out, cr)
		}
	}
	return out
}

// Options tunes a CheckCase pass.
type Options struct {
	// Lite restricts the suite to the generator-level invariants (no
	// scenario.Run calls) — the budget the native fuzz target uses.
	Lite bool
	// Band additionally enables the cross-seed statistical invariants
	// (bandSeeds scenario runs per case) — the nightly chaos lane's
	// budget, far too heavy for the interactive default.
	Band bool
}

// Invariant is one metamorphic property. Check returns (violation,
// skipReason): a nil violation with an empty skip means the property
// held; a non-empty skip means it did not apply.
type Invariant struct {
	// Name identifies the property in reports and repro lines.
	Name string
	// Lite marks generator-level checks cheap enough for fuzzing.
	Lite bool
	// Band marks cross-seed statistical checks that run a whole seed
	// population per case; CheckCase skips them unless Options.Band.
	Band bool
	// Check evaluates the property on a generated config. caseSeed
	// roots any extra randomness the check itself needs, so the whole
	// verdict stays a pure function of (family, case seed).
	Check func(cfg scenario.Config, caseSeed uint64) (*Violation, string)
}

// Invariants returns the metamorphic property suite in a fixed order.
func Invariants() []Invariant {
	return []Invariant{
		{Name: "growth-monotone", Lite: true, Check: checkGrowthMonotone},
		{Name: "envelope-bound", Lite: true, Check: checkEnvelopeBound},
		{Name: "superpose-bound", Lite: true, Check: checkSuperposeBound},
		{Name: "parallel-determinism", Check: checkParallelDeterminism},
		{Name: "capacity-monotone", Check: checkCapacityMonotone},
		{Name: "cross-fidelity", Check: checkCrossFidelity},
		{Name: "shard-determinism", Check: checkShardDeterminism},
		{Name: "hybrid-determinism", Check: checkHybridDeterminism},
		{Name: "hybrid-agreement", Check: checkHybridAgreement},
		{Name: "advisor", Check: checkAdvisor},
		{Name: "seed-band", Band: true, Check: checkSeedBand},
	}
}

// FindInvariant returns the named invariant.
func FindInvariant(name string) (Invariant, error) {
	for _, inv := range Invariants() {
		if inv.Name == name {
			return inv, nil
		}
	}
	return Invariant{}, fmt.Errorf("metamorph: unknown invariant %q", name)
}

// CheckCase runs the invariant suite over one generated case.
func CheckCase(c Case, opt Options) Report {
	rep := Report{Case: c}
	for _, inv := range Invariants() {
		if opt.Lite && !inv.Lite {
			continue
		}
		if inv.Band && !opt.Band {
			continue
		}
		v, skip := inv.Check(c.Cfg, c.Seed)
		rep.Results = append(rep.Results, CheckResult{Name: inv.Name, Skipped: skip, V: v})
	}
	return rep
}

// workloadConfig projects the scenario's load shape into a standalone
// workload.Config, the same projection the runner makes internally.
func workloadConfig(cfg scenario.Config) workload.Config {
	students := cfg.Students
	if cfg.Growth != nil && students == 0 {
		students = int(math.Ceil(cfg.Growth.Max()))
	}
	req := cfg.ReqPerStudentHour
	if req == 0 {
		req = 50
	}
	return workload.Config{
		Students:          students,
		Growth:            cfg.Growth,
		ReqPerStudentHour: req,
		Diurnal:           cfg.Diurnal,
		Calendar:          cfg.Calendar,
		Crowds:            cfg.Crowds,
		Storms:            cfg.Storms,
		Joins:             cfg.Joins,
	}
}

// desFeasible bounds the configs the request-level invariants run:
// expected arrivals must fit an interactive fuzz budget.
func desFeasible(cfg scenario.Config) bool {
	if horizonOf(cfg) > 8*time.Hour {
		return false
	}
	pop := float64(cfg.Students)
	if cfg.Growth != nil {
		pop = cfg.Growth.Max()
	}
	req := cfg.ReqPerStudentHour
	if req == 0 {
		req = 50
	}
	return pop*req*horizonOf(cfg).Hours() <= 1.5e6
}

// --- generator-level (Lite) invariants --------------------------------

// checkGrowthMonotone: an enrollment curve never shrinks and never
// exceeds its own declared capacity — the monotonicity the piecewise
// envelope derivation depends on.
func checkGrowthMonotone(cfg scenario.Config, _ uint64) (*Violation, string) {
	if cfg.Growth == nil {
		return nil, "no growth curve"
	}
	h := horizonOf(cfg)
	max := cfg.Growth.Max()
	prev := cfg.Growth.At(0)
	for step := 0; step <= 400; step++ {
		t := h * time.Duration(step) / 400
		v := cfg.Growth.At(t)
		if v < prev-1e-9 {
			return &Violation{"growth-monotone",
				fmt.Sprintf("Growth.At(%v)=%.4f < At(prev)=%.4f", t, v, prev)}, ""
		}
		if v > max*(1+1e-9) {
			return &Violation{"growth-monotone",
				fmt.Sprintf("Growth.At(%v)=%.4f exceeds Max()=%.4f", t, v, max)}, ""
		}
		prev = v
	}
	return nil, ""
}

// checkEnvelopeBound: the instantaneous rate never exceeds the global
// MaxRate bound or the piecewise Envelope segment bound, and the
// thinning sampler never emits arrivals past the horizon. This is the
// contract that makes NHPP thinning statistically exact: a rate above
// its own envelope silently under-samples the peak.
func checkEnvelopeBound(cfg scenario.Config, caseSeed uint64) (*Violation, string) {
	gen, err := workload.NewGenerator(workloadConfig(cfg))
	if err != nil {
		return &Violation{"envelope-bound", "generator rejected config: " + err.Error()}, ""
	}
	h := horizonOf(cfg)
	maxRate := gen.MaxRate()

	// Grid pass: Rate ≤ MaxRate everywhere.
	for step := 0; step <= 600; step++ {
		t := h * time.Duration(step) / 600
		if r := gen.Rate(t); r > maxRate*(1+1e-9) {
			return &Violation{"envelope-bound",
				fmt.Sprintf("Rate(%v)=%.3f exceeds MaxRate()=%.3f", t, r, maxRate)}, ""
		}
	}

	// Segment walk: inside each envelope segment, the rate sampled at
	// several offsets must stay under that segment's bound.
	env := gen.Envelope()
	for t := time.Duration(0); t < h; {
		bound, until := env(t)
		if until <= t {
			return &Violation{"envelope-bound",
				fmt.Sprintf("envelope segment at %v does not advance (until=%v)", t, until)}, ""
		}
		if until > h {
			until = h
		}
		seg := until - t
		for _, frac := range []time.Duration{0, seg / 3, 2 * seg / 3, seg - 1} {
			if frac < 0 {
				continue
			}
			if r := gen.Rate(t + frac); r > bound*(1+1e-9) {
				return &Violation{"envelope-bound",
					fmt.Sprintf("Rate(%v)=%.3f exceeds envelope bound %.3f on [%v,%v)",
						t+frac, r, bound, t, until)}, ""
			}
		}
		t = until
	}

	// Sampling pass: generated arrivals are ordered, in-horizon, and
	// their count is plausible under the rate integral. Cap the horizon
	// so a full-scale MOOC case stays within the fuzz budget.
	sampleH := h
	if maxRate > 0 {
		if budget := time.Duration(2e5 / maxRate * float64(time.Second)); budget < sampleH {
			sampleH = budget
		}
	}
	rng := sim.NewRNG(sim.SeedFor(caseSeed, "metamorph/envelope"))
	var bad *Violation
	prevAt := time.Duration(-1)
	n := gen.Generate(rng, 0, sampleH, func(a workload.Arrival) {
		if bad != nil {
			return
		}
		if a.At < 0 || a.At >= sampleH {
			bad = &Violation{"envelope-bound",
				fmt.Sprintf("arrival at %v outside horizon [0,%v)", a.At, sampleH)}
		}
		if a.At < prevAt {
			bad = &Violation{"envelope-bound",
				fmt.Sprintf("arrival at %v precedes previous at %v", a.At, prevAt)}
		}
		prevAt = a.At
	})
	if bad != nil {
		return bad, ""
	}
	// The count is Poisson with mean ∫rate ≤ MaxRate·horizon, so allow
	// a 6-sigma one-sided tail (~1e-9) above the bound — a systematic
	// envelope breach overshoots far beyond that.
	mean := maxRate * sampleH.Seconds()
	if float64(n) > mean+6*math.Sqrt(mean)+10 {
		return &Violation{"envelope-bound",
			fmt.Sprintf("%d arrivals exceed the MaxRate·horizon bound %.1f beyond Poisson noise",
				n, mean)}, ""
	}
	return nil, ""
}

// checkSuperposeBound: a timezone superposition is a weighted mean, so
// at every instant it must lie within [min component, max component] of
// its waves' local values, and its peak can never exceed the largest
// component peak. Fresh random waves are drawn per case so the property
// is fuzzed beyond the configs the families happen to generate.
func checkSuperposeBound(_ scenario.Config, caseSeed uint64) (*Violation, string) {
	r := sim.NewRNG(sim.SeedFor(caseSeed, "metamorph/superpose"))
	waves := make([]workload.TimezoneWave, 2+r.Intn(3))
	for i := range waves {
		waves[i] = workload.TimezoneWave{
			Shift:  time.Duration(r.Intn(48)-24) * 30 * time.Minute,
			Weight: 0.25 + r.Float64(),
		}
	}
	blend := workload.SuperposeTimezones(waves)

	local := workload.CampusDiurnal()
	maxPeak := local.Peak()
	if p := blend.Peak(); p > maxPeak*(1+1e-9) {
		return &Violation{"superpose-bound",
			fmt.Sprintf("superposition peak %.4f exceeds max component peak %.4f", p, maxPeak)}, ""
	}
	for step := 0; step < 24*12; step++ {
		t := time.Duration(step) * 5 * time.Minute
		// The blend is tabulated at whole hours and interpolated, so
		// blend.At(t) is a convex combination of component values at
		// the two surrounding hour anchors — bound against exactly
		// those.
		tA := t.Truncate(time.Hour)
		tB := tA + time.Hour
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, w := range waves {
			for _, anchor := range []time.Duration{tA, tB} {
				v := local.At(anchor + w.Shift)
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
		}
		got := blend.At(t)
		if got < lo-1e-9 || got > hi+1e-9 {
			return &Violation{"superpose-bound",
				fmt.Sprintf("blend.At(%v)=%.4f outside component anchor range [%.4f,%.4f]", t, got, lo, hi)}, ""
		}
	}
	return nil, ""
}

// --- request-level invariants -----------------------------------------

// checkParallelDeterminism: the same config run directly, and run as a
// batch job on a 4-worker shared pool racing filler jobs, must produce
// byte-identical results — the repo's central determinism contract,
// here enforced on configs nobody hand-wrote.
func checkParallelDeterminism(cfg scenario.Config, caseSeed uint64) (*Violation, string) {
	if !desFeasible(cfg) {
		return nil, "config above the request-level budget"
	}
	direct, err := scenario.Run(cfg)
	if err != nil {
		return &Violation{"parallel-determinism", "direct run failed: " + err.Error()}, ""
	}

	// Filler jobs create real pool contention so worker hand-offs and
	// completion-order effects would surface if any existed.
	filler := scenario.Config{
		Kind: deploy.Public, Students: 60, Duration: 30 * time.Minute,
		Diurnal: workload.FlatDiurnal(),
	}
	batch := scenario.NewBatch(sim.SeedFor(caseSeed, "metamorph/batch")).
		Add("case", cfg).
		Add("filler-a", filler).
		Add("filler-b", filler)
	res, err := batch.RunOn(scenario.NewPool(4))
	if err != nil {
		return &Violation{"parallel-determinism", "pooled run failed: " + err.Error()}, ""
	}
	got, want := Fingerprint(res.Result("case")), Fingerprint(direct)
	if got != want {
		return &Violation{"parallel-determinism",
			"pooled result differs from direct run:\n" + diffLine(want, got)}, ""
	}
	return nil, ""
}

// diffLine returns the first line where two fingerprints diverge.
func diffLine(a, b string) string {
	al, bl := splitLines(a), splitLines(b)
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("direct: %s\npooled: %s", al[i], bl[i])
		}
	}
	return fmt.Sprintf("fingerprint lengths differ: %d vs %d lines", len(al), len(bl))
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out = append(out, s[:i])
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}

// checkCapacityMonotone: raising the elastic fleet cap from "tight"
// (a third of the peak-sized need) to "roomy" (four times it) must not
// make P95 latency meaningfully worse. More capacity never hurts. The
// comparison carries a small tolerance because the two runs consume
// their service/transfer streams in different completion orders, which
// legitimately moves the quantile by a few percent.
func checkCapacityMonotone(cfg scenario.Config, _ uint64) (*Violation, string) {
	if cfg.Kind != deploy.Public && cfg.Kind != deploy.Hybrid {
		return nil, "no elastic side to cap"
	}
	if !desFeasible(cfg) {
		return nil, "config above the request-level budget"
	}
	gen, err := workload.NewGenerator(workloadConfig(cfg))
	if err != nil {
		return &Violation{"capacity-monotone", "generator rejected config: " + err.Error()}, ""
	}
	util := cfg.TargetUtil
	if util == 0 {
		util = 0.6
	}
	need := deploy.ServersForPeak(gen.MaxRate(),
		lms.TeachingMix().MeanService(lms.DefaultCatalog()), util)

	tight := cfg
	tight.MaxPublicServers = max(2, need/3)
	roomy := cfg
	roomy.MaxPublicServers = max(tight.MaxPublicServers+1, need*4)

	rTight, err := scenario.Run(tight)
	if err != nil {
		return &Violation{"capacity-monotone", "tight run failed: " + err.Error()}, ""
	}
	rRoomy, err := scenario.Run(roomy)
	if err != nil {
		return &Violation{"capacity-monotone", "roomy run failed: " + err.Error()}, ""
	}

	pTight, pRoomy := rTight.Latency.P95(), rRoomy.Latency.P95()
	if pRoomy > pTight*1.15+0.05 {
		return &Violation{"capacity-monotone",
			fmt.Sprintf("P95 rose from %.3fs (cap %d) to %.3fs (cap %d): more capacity made latency worse",
				pTight, tight.MaxPublicServers, pRoomy, roomy.MaxPublicServers)}, ""
	}
	// The roomy fleet must also never reject more than the tight one:
	// rejections are a pure function of saturation.
	if rRoomy.Rejected > rTight.Rejected {
		return &Violation{"capacity-monotone",
			fmt.Sprintf("rejections rose from %d (cap %d) to %d (cap %d)",
				rTight.Rejected, tight.MaxPublicServers, rRoomy.Rejected, roomy.MaxPublicServers)}, ""
	}
	return nil, ""
}

// checkCrossFidelity: on regimes both fidelities model — steady mixes,
// no outages, horizons long enough for the fluid 5-minute step — the
// request-level and flow-level runs must agree within tolerance on
// egress volume and compute consumption, and exactly on the capex-side
// facts (host count). The brackets mirror crossfidelity_test.go's
// hand-picked cases, so a fuzzed divergence means a real regime gap.
func checkCrossFidelity(cfg scenario.Config, _ uint64) (*Violation, string) {
	if cfg.Kind == deploy.Desktop {
		return nil, "desktop has no fleet to cross-check"
	}
	if !desFeasible(cfg) {
		return nil, "config above the request-level budget"
	}
	if horizonOf(cfg) < 3*time.Hour {
		return nil, "horizon too short for the fluid integration step"
	}
	if cfg.HostFailureAt > 0 {
		return nil, "fluid model does not inject host failures"
	}
	for _, c := range cfg.Crowds {
		if c.ExamTraffic {
			return nil, "fluid model holds the teaching mix through exam windows"
		}
	}
	for _, s := range cfg.Storms {
		if s.ExamTraffic {
			return nil, "fluid model holds the teaching mix through exam windows"
		}
	}
	for _, j := range cfg.Joins {
		if j.ExamTraffic {
			return nil, "fluid model holds the teaching mix through exam windows"
		}
	}

	des, err := scenario.Run(cfg)
	if err != nil {
		return &Violation{"cross-fidelity", "request-level run failed: " + err.Error()}, ""
	}
	fluid, err := scenario.FluidRun(cfg)
	if err != nil {
		return &Violation{"cross-fidelity", "fluid run failed: " + err.Error()}, ""
	}

	if des.PrivateHosts != fluid.PrivateHosts {
		return &Violation{"cross-fidelity",
			fmt.Sprintf("private hosts differ: DES %d vs fluid %d", des.PrivateHosts, fluid.PrivateHosts)}, ""
	}
	if math.Abs(des.Cost.Capex-fluid.Cost.Capex) > 1e-6 {
		return &Violation{"cross-fidelity",
			fmt.Sprintf("capex differs: DES %.4f vs fluid %.4f", des.Cost.Capex, fluid.Cost.Capex)}, ""
	}
	// With the CDN on, the fluid model prices misses at the steady-state
	// analytic Zipf hit ratio while the request-level LRU starts cold —
	// on short horizons the realized hit ratio sits below steady state
	// and DES egress legitimately runs high (seed 0xe7d7a42389866a63
	// minimizes to a 56-student hybrid+CDN case at ratio 1.34), so the
	// egress-volume clause only applies to CDN-off configs. It also
	// needs the last mile up: the fluid model has no network-failure
	// process, while the request-level runner counts every arrival
	// during an access outage as Offline and serves it zero bytes —
	// on a flaky link the DES legitimately delivers less (seed
	// 0x743912ad8faad72c minimizes to a 54-student rural-DSL hybrid at
	// ratio 0.65), so the clause only applies when the offline share of
	// arrivals is negligible.
	offlineShare := 0.0
	if total := float64(des.Served + des.Offline); total > 0 {
		offlineShare = float64(des.Offline) / total
	}
	if !cfg.EnableCDN && fluid.EgressGB > 0.02 && offlineShare <= 0.01 {
		ratio := des.EgressGB / fluid.EgressGB
		if ratio < 0.75 || ratio > 1.30 {
			return &Violation{"cross-fidelity",
				fmt.Sprintf("egress ratio DES/fluid = %.3f (DES %.3f GB, fluid %.3f GB) outside [0.75,1.30]",
					ratio, des.EgressGB, fluid.EgressGB)}, ""
		}
	}
	// The VM-hours clause needs a spikiness gate: the fluid fleet is
	// memoryless (it sheds servers the instant the 5-minute-step rate
	// drops) while the request-level reactive scaler holds capacity
	// through and after a spike, so on stacked storm peaks the DES/fluid
	// ratio grows without bound — seed 0x28f0f41a83af80e7 (storm)
	// minimizes to a 215-student double-storm ratio of 20x, and seeds
	// 0xd0ada100cde3ab03, 0xfb3abd4466c9728c show the same shape. The
	// clause therefore only applies when peak rate is within 6x of the
	// mean, where scale-down lag amortizes — and when the fluid public
	// fleet is at least 5 VM-hours, because below that the DES's
	// whole-server quantization dominates (a hybrid whose private side
	// absorbs the base load runs its public side as pure spike: seed
	// 0xfb3abd4466c9728c has fluid 0.58 VM-hours vs DES 8).
	// The same outage caveat applies: a dead last mile starves the
	// reactive scaler of load the fluid model still integrates.
	if gen, err := workload.NewGenerator(workloadConfig(cfg)); err == nil &&
		(cfg.Kind == deploy.Public || cfg.Kind == deploy.Hybrid) &&
		cfg.Scaler != scenario.ScalerFixed && fluid.VMHoursPublic > 5 &&
		offlineShare <= 0.01 &&
		gen.MaxRate() <= 6*meanRate(gen, horizonOf(cfg)) {
		ratio := des.VMHoursPublic / fluid.VMHoursPublic
		if ratio < 0.95 || ratio > 8 {
			return &Violation{"cross-fidelity",
				fmt.Sprintf("public VM-hours ratio DES/fluid = %.3f (DES %.2f, fluid %.2f) outside [0.95,8]",
					ratio, des.VMHoursPublic, fluid.VMHoursPublic)}, ""
		}
	}
	return nil, ""
}

// checkShardDeterminism: the sharded execution path must preserve both
// the determinism contract and the physics. For single-shard configs,
// ShardedRun is byte-identical to the direct run — the full sharding
// machinery executes with every share multiplier exactly 1.0. For
// multi-shard configs, the merged result is a pure function of
// (config, seed, K): byte-identical whatever the pool width; and the
// documented fleet-split approximation must stay within tolerance of
// the unsharded engine on delivered volume and tail latency.
func checkShardDeterminism(cfg scenario.Config, _ uint64) (*Violation, string) {
	if !desFeasible(cfg) {
		return nil, "config above the request-level budget"
	}
	if cfg.Shards < 2 {
		one := cfg
		one.Shards = 1
		direct, err := scenario.Run(cfg)
		if err != nil {
			return &Violation{"shard-determinism", "direct run failed: " + err.Error()}, ""
		}
		sharded, err := scenario.ShardedRun(one, scenario.NewPool(2))
		if err != nil {
			return &Violation{"shard-determinism", "single-shard run failed: " + err.Error()}, ""
		}
		if got, want := Fingerprint(sharded), Fingerprint(direct); got != want {
			return &Violation{"shard-determinism",
				"single-shard result differs from direct run:\n" + diffLine(want, got)}, ""
		}
		return nil, ""
	}

	serial, err := scenario.ShardedRun(cfg, scenario.NewPool(1))
	if err != nil {
		return &Violation{"shard-determinism", "sharded run failed: " + err.Error()}, ""
	}
	pooled, err := scenario.ShardedRun(cfg, scenario.NewPool(4))
	if err != nil {
		return &Violation{"shard-determinism", "pooled sharded run failed: " + err.Error()}, ""
	}
	if got, want := Fingerprint(pooled), Fingerprint(serial); got != want {
		return &Violation{"shard-determinism",
			fmt.Sprintf("shards=%d merged result depends on worker count:\n%s",
				cfg.Shards, diffLine(want, got))}, ""
	}

	// Physics clause: compare against the unsharded engine. Outage and
	// threat scenarios are exempt — their singleton processes run on
	// shard 0 only (the scenario models one institution), so their blast
	// radius is deliberately 1/K of the unsharded run's.
	if cfg.HostFailureAt > 0 || cfg.EnableThreats {
		return nil, ""
	}
	un := cfg
	un.Shards = 0
	direct, err := scenario.Run(un)
	if err != nil {
		return &Violation{"shard-determinism", "unsharded run failed: " + err.Error()}, ""
	}
	// Poisson splitting makes the superposed arrival process identical
	// in distribution, so delivered volume must land close; the split
	// fleet's Erlang penalty (and its per-shard scale-up floors) may
	// legitimately move the tail, so P95 gets a generous one-sided band —
	// table10 measures ~3x drift at 10^5 students on saturated reactive
	// fleets.
	dServed, sServed := float64(direct.Served), float64(serial.Served)
	if dServed > 0 && (sServed < 0.6*dServed || sServed > 1.4*dServed) {
		return &Violation{"shard-determinism",
			fmt.Sprintf("shards=%d served %d vs unsharded %d: outside [0.6,1.4]x",
				cfg.Shards, serial.Served, direct.Served)}, ""
	}
	if p, q := serial.Latency.P95(), direct.Latency.P95(); p > q*6+0.5 {
		return &Violation{"shard-determinism",
			fmt.Sprintf("shards=%d P95 %.3fs vs unsharded %.3fs: split-fleet drift beyond 6x+0.5s",
				cfg.Shards, p, q)}, ""
	}
	return nil, ""
}

// --- hybrid-fidelity invariants ---------------------------------------

// checkHybridDeterminism: HybridRun's stitched result is a pure
// function of (config, seed, plan) — byte-identical whatever the pool
// width, for any generated config, windows sharded or not. This is the
// hybrid analogue of shard-determinism's worker-independence clause;
// the empty-plan == FluidRun identity and the per-window conservation
// law are pinned by internal/scenario's property tests.
func checkHybridDeterminism(cfg scenario.Config, _ uint64) (*Violation, string) {
	if !desFeasible(cfg) {
		return nil, "config above the request-level budget"
	}
	serial, err := scenario.HybridRun(cfg, scenario.NewPool(1))
	if err != nil {
		return &Violation{"hybrid-determinism", "serial hybrid run failed: " + err.Error()}, ""
	}
	pooled, err := scenario.HybridRun(cfg, scenario.NewPool(4))
	if err != nil {
		return &Violation{"hybrid-determinism", "pooled hybrid run failed: " + err.Error()}, ""
	}
	if got, want := Fingerprint(pooled), Fingerprint(serial); got != want {
		return &Violation{"hybrid-determinism",
			"hybrid result depends on worker count:\n" + diffLine(want, got)}, ""
	}
	return nil, ""
}

// checkHybridAgreement: on regimes where the fidelity seams are the
// only approximation — no outages, no threat model, no exam mix shifts
// in fluid time — HybridRun must track the whole-horizon request-level
// run within documented bands: exactly on the capex-side facts, within
// tolerance on served mass, egress and public compute. Shards are
// zeroed on both sides so the comparison isolates the seam error from
// the sharded engine's separately-bounded split-fleet drift
// (shard-determinism owns that band).
func checkHybridAgreement(cfg scenario.Config, _ uint64) (*Violation, string) {
	if cfg.Kind == deploy.Desktop {
		return nil, "desktop has no fleet to cross-check"
	}
	if !desFeasible(cfg) {
		return nil, "config above the request-level budget"
	}
	if horizonOf(cfg) < 3*time.Hour {
		return nil, "horizon too short for the fluid integration step"
	}
	if cfg.HostFailureAt > 0 {
		return nil, "a host failure's blast radius would span fidelity seams"
	}
	if cfg.EnableThreats {
		return nil, "the threat model is whole-horizon in DES but window-local in hybrid"
	}
	for _, c := range cfg.Crowds {
		if c.ExamTraffic {
			return nil, "fluid stretches hold the teaching mix through exam windows"
		}
	}
	for _, s := range cfg.Storms {
		if s.ExamTraffic {
			return nil, "fluid stretches hold the teaching mix through exam windows"
		}
	}
	for _, j := range cfg.Joins {
		if j.ExamTraffic {
			return nil, "fluid stretches hold the teaching mix through exam windows"
		}
	}

	un := cfg
	un.Shards = 0
	plan, err := scenario.PlanFidelity(un)
	if err != nil {
		return &Violation{"hybrid-agreement", "planner failed: " + err.Error()}, ""
	}
	if len(plan.Windows) == 0 {
		return nil, "planner opened no DES windows (cross-fidelity owns the all-fluid regime)"
	}

	des, err := scenario.Run(un)
	if err != nil {
		return &Violation{"hybrid-agreement", "request-level run failed: " + err.Error()}, ""
	}
	hyb, err := scenario.HybridRun(un, scenario.NewPool(2))
	if err != nil {
		return &Violation{"hybrid-agreement", "hybrid run failed: " + err.Error()}, ""
	}

	// Capex-side facts are seed-free deterministic functions of the
	// config, so they must agree exactly.
	if hyb.PrivateHosts != des.PrivateHosts {
		return &Violation{"hybrid-agreement",
			fmt.Sprintf("private hosts differ: hybrid %d vs DES %d", hyb.PrivateHosts, des.PrivateHosts)}, ""
	}
	if math.Abs(hyb.Cost.Capex-des.Cost.Capex) > 1e-6 {
		return &Violation{"hybrid-agreement",
			fmt.Sprintf("capex differs: hybrid %.4f vs DES %.4f", hyb.Cost.Capex, des.Cost.Capex)}, ""
	}

	// The fluid stretches assume the last mile is up, so the volume
	// clauses need the DES's offline share negligible — same caveat as
	// cross-fidelity (seed 0x743912ad8faad72c's rural-DSL lineage).
	offlineShare := 0.0
	if total := float64(des.Served + des.Offline); total > 0 {
		offlineShare = float64(des.Offline) / total
	}
	if offlineShare <= 0.01 && des.Served > 0 {
		// Served mass: the seams lose at most the bootGrace gaps and the
		// backlog/carry approximations, and the fluid stretches assume all
		// offered load completes where the DES rejects at saturation.
		ratio := float64(hyb.Served) / float64(des.Served)
		if ratio < 0.85 || ratio > 1.15 {
			return &Violation{"hybrid-agreement",
				fmt.Sprintf("served ratio hybrid/DES = %.3f (hybrid %d, DES %d) outside [0.85,1.15]",
					ratio, hyb.Served, des.Served)}, ""
		}
	}
	if !cfg.EnableCDN && des.EgressGB > 0.02 && offlineShare <= 0.01 {
		ratio := hyb.EgressGB / des.EgressGB
		if ratio < 0.80 || ratio > 1.25 {
			return &Violation{"hybrid-agreement",
				fmt.Sprintf("egress ratio hybrid/DES = %.3f (hybrid %.3f GB, DES %.3f GB) outside [0.80,1.25]",
					ratio, hyb.EgressGB, des.EgressGB)}, ""
		}
	}
	// Public compute: the hybrid's fluid stretches shed servers
	// memorylessly where the DES's scaler holds capacity after a burst,
	// so the hybrid legitimately runs lean — but the DES windows cover
	// the storms themselves, so the gap is bounded by the quiet-time
	// retention, not the spike (no spikiness gate needed, unlike
	// cross-fidelity's unbounded storm ratios). Both sides must clear 5
	// VM-hours: when the hybrid's public compute is almost all window
	// time (a hybrid deployment whose private side absorbs the base
	// load), whole-server quantization and the scaler's held floor
	// dominate the ratio — seeds 0xc699da707374f890 (96-student hybrid,
	// ratio 0.20) and 0x57e3ea30f79965d6 (ratio 0.27) minimize to
	// exactly that shape, the hybrid analogue of cross-fidelity's seed
	// 0xfb3abd4466c9728c.
	if (cfg.Kind == deploy.Public || cfg.Kind == deploy.Hybrid) &&
		cfg.Scaler != scenario.ScalerFixed &&
		des.VMHoursPublic > 5 && hyb.VMHoursPublic > 5 &&
		offlineShare <= 0.01 {
		ratio := hyb.VMHoursPublic / des.VMHoursPublic
		if ratio < 0.30 || ratio > 1.50 {
			return &Violation{"hybrid-agreement",
				fmt.Sprintf("public VM-hours ratio hybrid/DES = %.3f (hybrid %.2f, DES %.2f) outside [0.30,1.50]",
					ratio, hyb.VMHoursPublic, des.VMHoursPublic)}, ""
		}
	}
	return nil, ""
}

// --- cross-seed statistical invariants --------------------------------

// bandSeeds is the seed-population size of the cross-seed statistical
// invariant: large enough that a physics regression shows up as an
// outlier against a stable median, small enough for a nightly lane.
const bandSeeds = 50

// Band tolerances: the served fraction is an absolute band around the
// population median (admission is a ratio of large Poisson counts, so
// honest seed noise is small); P95 latency gets a multiplicative band
// with an absolute floor, because quantiles near saturation swing with
// which seed's storm peak lands on a scale-up boundary.
const (
	bandFracTol  = 0.08
	bandP95Mult  = 4.0
	bandP95Slack = 0.25
)

// Stable-regime gates: the band tolerances describe seed concentration
// of *healthy* service, so populations sitting in a threshold regime —
// where a seed either tips over an edge or doesn't — are exempt rather
// than forced into a band wide enough to catch nothing. Each gate is a
// regime the first -band sweeps actually found (see bandRegime).
const (
	bandOfflineMax = 0.01
	bandStableFrac = 0.95
	bandStableP95  = 1.0
)

// Resource bands: VM-hours and egress joined the banded metrics so a
// seed-chaotic scaler or transfer path shows up even when service
// stays healthy. Both are relative bands around the population median
// with an absolute slack, and each has a floor below which the metric
// is dominated by quantization rather than physics: a fleet under
// bandVMFloor VM-hours moves in whole-server steps that are a large
// fraction of the total (scale-up timing shifts one server for a few
// minutes and the ratio swings), and egress under bandEgressFloor GB is
// a handful of Pareto-tailed video objects whose sizes honestly swing
// across seeds. The tolerances are data-driven from the widening
// sweeps (run seeds 1 and 3): across every population the service
// gates admit, VM-hours deviation from the median peaked at 0.118
// (a mooc reactive fleet) and egress at 0.171 (storm seed
// 0xc64b3058f820bb6b, the widest in-band population — pinned passing
// in TestSeedBandRegimeGates), so each band sits at roughly twice the
// worst honest dispersion observed. The big egress swings the sweeps
// found (0.57 at storm seed 0x80f7a36ce9c50d64, 0.30 at
// 0x922cac3419b47d77) all rode last-mile outages — zero-byte Offline
// arrivals gut the transfer volume — and the existing offline-share
// regime gate already exempts exactly those populations.
const (
	bandVMFloor     = 2.0
	bandVMTol       = 0.25
	bandVMSlack     = 0.25
	bandEgressFloor = 0.05
	bandEgressTol   = 0.30
	bandEgressSlack = 0.02
)

// bandFeasible bounds the configs the cross-seed invariant runs: it
// executes bandSeeds full request-level runs (twice when the hybrid
// path applies), so the per-run budget sits an order of magnitude
// below desFeasible's.
func bandFeasible(cfg scenario.Config) bool {
	if horizonOf(cfg) > 4*time.Hour {
		return false
	}
	pop := float64(cfg.Students)
	if cfg.Growth != nil {
		pop = cfg.Growth.Max()
	}
	req := cfg.ReqPerStudentHour
	if req == 0 {
		req = 50
	}
	return pop*req*horizonOf(cfg).Hours() <= 1.2e5
}

// checkSeedBand: the physics must be statistically stable in the seed.
// Across bandSeeds independent seeds of the same config, the served
// fraction of arrivals stays inside an absolute band around the
// population median, P95 latency inside a multiplicative band, and the
// resource metrics — total VM-hours and egress volume — inside relative
// bands (bandResourceViolation) — for the pure-DES path, and for the
// hybrid path when the planner opens windows. A single excursion means
// seed-chaotic physics (a rare-branch bug), which golden tests at one
// pinned seed can never see.
func checkSeedBand(cfg scenario.Config, caseSeed uint64) (*Violation, string) {
	if !bandFeasible(cfg) {
		return nil, "config above the cross-seed statistical budget"
	}

	fracs := make([]float64, 0, bandSeeds)
	p95s := make([]float64, 0, bandSeeds)
	vmhs := make([]float64, 0, bandSeeds)
	egs := make([]float64, 0, bandSeeds)
	maxOffline := 0.0
	for i := 0; i < bandSeeds; i++ {
		sub := cfg
		sub.Seed = sim.SeedFor(caseSeed, fmt.Sprintf("metamorph/band/%d", i))
		r, err := scenario.Run(sub)
		if err != nil {
			return &Violation{"seed-band", fmt.Sprintf("des run at band seed %d failed: %v", i, err)}, ""
		}
		total := r.Served + r.Rejected + r.Offline
		if total == 0 {
			return nil, "no arrivals to measure"
		}
		fracs = append(fracs, float64(r.Served)/float64(total))
		p95s = append(p95s, r.Latency.P95())
		vmhs = append(vmhs, r.VMHoursPublic+r.VMHoursPrivate)
		egs = append(egs, r.EgressGB)
		maxOffline = math.Max(maxOffline, float64(r.Offline)/float64(total))
	}
	if reason := bandRegime("des", fracs, p95s, maxOffline); reason != "" {
		return nil, reason
	}
	if v := bandViolation("des", fracs, p95s); v != nil {
		return v, ""
	}
	if v := bandResourceViolation("des", vmhs, egs); v != nil {
		return v, ""
	}

	// Hybrid path: same statistic through HybridRun, when the planner
	// opens windows (an empty plan is the FluidRun identity — nothing
	// request-level left to band).
	if cfg.Kind == deploy.Desktop {
		return nil, ""
	}
	plan, err := scenario.PlanFidelity(cfg)
	if err != nil || len(plan.Windows) == 0 {
		return nil, ""
	}
	pool := scenario.NewPool(2)
	fracs, p95s = fracs[:0], p95s[:0]
	vmhs, egs = vmhs[:0], egs[:0]
	maxOffline = 0
	for i := 0; i < bandSeeds; i++ {
		sub := cfg
		sub.Seed = sim.SeedFor(caseSeed, fmt.Sprintf("metamorph/band/%d", i))
		r, err := scenario.HybridRun(sub, pool)
		if err != nil {
			return &Violation{"seed-band", fmt.Sprintf("hybrid run at band seed %d failed: %v", i, err)}, ""
		}
		total := r.Served + r.Rejected + r.Offline
		if total == 0 {
			return nil, "no arrivals to measure"
		}
		fracs = append(fracs, float64(r.Served)/float64(total))
		p95s = append(p95s, r.Latency.P95())
		vmhs = append(vmhs, r.VMHoursPublic+r.VMHoursPrivate)
		egs = append(egs, r.EgressGB)
		maxOffline = math.Max(maxOffline, float64(r.Offline)/float64(total))
	}
	if reason := bandRegime("hybrid", fracs, p95s, maxOffline); reason != "" {
		return nil, reason
	}
	if v := bandViolation("hybrid", fracs, p95s); v != nil {
		return v, ""
	}
	if v := bandResourceViolation("hybrid", vmhs, egs); v != nil {
		return v, ""
	}
	return nil, ""
}

// bandResourceViolation checks the resource metrics' seed populations:
// total VM-hours and egress volume each stay inside a relative band
// around the population median, gated by the quantization floors
// (bandVMFloor, bandEgressFloor) documented with the constants.
func bandResourceViolation(path string, vmhs, egs []float64) *Violation {
	if vm := median(vmhs); vm >= bandVMFloor {
		for i, v := range vmhs {
			if math.Abs(v-vm) > bandVMTol*vm+bandVMSlack {
				return &Violation{"seed-band",
					fmt.Sprintf("%s path: VM-hours %.2f at band seed %d strays from the %d-seed median %.2f beyond ±(%.0f%%+%.2fh)",
						path, v, i, len(vmhs), vm, bandVMTol*100, bandVMSlack)}
			}
		}
	}
	if em := median(egs); em >= bandEgressFloor {
		for i, e := range egs {
			if math.Abs(e-em) > bandEgressTol*em+bandEgressSlack {
				return &Violation{"seed-band",
					fmt.Sprintf("%s path: egress %.3f GB at band seed %d strays from the %d-seed median %.3f GB beyond ±(%.0f%%+%.2fGB)",
						path, e, i, len(egs), em, bandEgressTol*100, bandEgressSlack)}
			}
		}
	}
	return nil
}

// bandRegime reports why a seed population sits outside the stable
// service regime the band tolerances describe, or "" when the bands
// apply. Three regimes are exempt, each discovered by the first -band
// sweeps and each a legitimate threshold effect rather than a physics
// bug. Last-mile outages: an access outage either lands inside a
// seed's horizon or it doesn't, so served mass is bimodal across seeds
// — chaos seed 0x7a4bb6d0a24761f2 minimizes to a 63-student rural-DSL
// case where one seed in fifty catches an outage and serves 0.82 of
// arrivals against a median of 1.0 (chaos seed 0xd1aa00f4044537ab is
// the same shape deeper in). Saturation rejection: how far a reactive
// fleet collapses under a 10x exam storm is a knife-edge in the
// arrival stream, so rejection depth disperses — storm seed
// 0x70606318406a2908 runs at median served 0.84 with an excursion to
// 0.74. Queueing collapse of the tail: once the median P95 sits in
// whole seconds the quantile measures queue depth at the storm peak,
// which swings an order of magnitude with whether a given seed's peak
// tips the scaler — storm seeds 0xe381ddf4f0539593 and
// 0x14c14eb477a93de7 run at median P95 2.1s and 5.4s while their
// unsaturated seeds sit at 0.4–0.5s. The discovered seeds are pinned
// in TestSeedBandRegimeGates.
func bandRegime(path string, fracs, p95s []float64, maxOffline float64) string {
	if maxOffline > bandOfflineMax {
		return fmt.Sprintf("%s path: offline share up to %.3f across band seeds — outage bimodality, not seed noise", path, maxOffline)
	}
	if fm := median(fracs); fm < bandStableFrac {
		return fmt.Sprintf("%s path: median served fraction %.3f — saturation depth is a threshold effect", path, fm)
	}
	if pm := median(p95s); pm > bandStableP95 {
		return fmt.Sprintf("%s path: median P95 %.2fs — tail in queueing collapse", path, pm)
	}
	return ""
}

// bandViolation checks one path's seed population against the band
// tolerances, naming the first offending seed index.
func bandViolation(path string, fracs, p95s []float64) *Violation {
	fm := median(fracs)
	for i, f := range fracs {
		if math.Abs(f-fm) > bandFracTol {
			return &Violation{"seed-band",
				fmt.Sprintf("%s path: served fraction %.4f at band seed %d strays %.4f from the %d-seed median %.4f (tol %.2f)",
					path, f, i, math.Abs(f-fm), len(fracs), fm, bandFracTol)}
		}
	}
	pm := median(p95s)
	for i, p := range p95s {
		if p > pm*bandP95Mult+bandP95Slack || pm > p*bandP95Mult+bandP95Slack {
			return &Violation{"seed-band",
				fmt.Sprintf("%s path: P95 %.3fs at band seed %d outside the %d-seed median %.3fs band [/%g,x%g]+%.2fs",
					path, p, i, len(p95s), pm, bandP95Mult, bandP95Mult, bandP95Slack)}
		}
	}
	return nil
}

// median returns the population median (mean of the middle pair for
// even sizes). The input is not modified.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// meanRate samples the generator's average arrival rate over a horizon.
func meanRate(gen *workload.Generator, h time.Duration) float64 {
	const steps = 200
	sum := 0.0
	for i := 0; i < steps; i++ {
		sum += gen.Rate(h * time.Duration(i) / steps)
	}
	return sum / steps
}
