package metamorph

import (
	"math"
	"strings"
	"testing"
	"time"

	"elearncloud/internal/cost"
	"elearncloud/internal/scenario"
	"elearncloud/internal/workload"
)

// TestAdvisorForecastDerivation: the scaled-down question preserves the
// case's growth shape and CDN posture while clamping scale to the fuzz
// budget.
func TestAdvisorForecastDerivation(t *testing.T) {
	mooc := scenario.Config{
		Growth:            workload.LogisticGrowth(2000, 50000, time.Hour),
		ReqPerStudentHour: 80,
		EnableCDN:         true,
	}
	fc := advisorForecast(mooc, 7)
	if !strings.HasPrefix(fc.Growth.String(), "logistic") {
		t.Errorf("logistic case derived %s", fc.Growth.String())
	}
	if fc.Growth.Max() != advisorMaxStudents {
		t.Errorf("MOOC population clamped to %.0f, want %d", fc.Growth.Max(), advisorMaxStudents)
	}
	if fc.ReqPerStudentHour != advisorMaxReq {
		t.Errorf("req clamped to %.0f, want %d", fc.ReqPerStudentHour, advisorMaxReq)
	}
	if !fc.EnableCDN {
		t.Error("CDN posture not carried into the question")
	}

	tiny := scenario.Config{Students: 30, ReqPerStudentHour: 5}
	fc = advisorForecast(tiny, 7)
	if !strings.HasPrefix(fc.Growth.String(), "linear") {
		t.Errorf("growth-free case derived %s, want linear", fc.Growth.String())
	}
	if fc.Growth.Max() != advisorMinStudents {
		t.Errorf("tiny population clamped to %.0f, want %d", fc.Growth.Max(), advisorMinStudents)
	}
	if fc.ReqPerStudentHour != advisorMinReq {
		t.Errorf("req clamped to %.0f, want %d", fc.ReqPerStudentHour, advisorMinReq)
	}
	if fc.Seed == advisorForecast(tiny, 8).Seed {
		t.Error("case seeds 7 and 8 derived the same grid seed")
	}
}

// TestAdvisorHelpers pins the selection arithmetic on synthetic points.
func TestAdvisorHelpers(t *testing.T) {
	points := []cost.PlanPoint{
		{Model: "private", Scaler: "fixed", Mix: "on-demand", USD: 10, P95: 0.8},
		{Model: "public", Scaler: "growth-fit", Mix: "reserved-mix", USD: 20, P95: 0.5},
		{Model: "hybrid", Scaler: "reactive", Mix: "on-demand", USD: 40, P95: 1.5},
	}
	if got := minP95(points); got != 0.5 {
		t.Errorf("minP95 = %v, want 0.5", got)
	}
	rec, _ := cost.CheapestCompliant(points, 1.0)
	if m := runnerUpMargin(points, rec, 1.0); m != 2.0 {
		t.Errorf("runnerUpMargin = %v, want 2.0 (the $20 rival over the $10 winner)", m)
	}
	// With every rival excluded by the SLO, the winner stands alone.
	if m := runnerUpMargin(points, rec, 0.4); !math.IsInf(m, 1) {
		t.Errorf("sole-compliant margin = %v, want +Inf", m)
	}
	// The first advisor sweeps found every case skipping at margin
	// exactly 1.000: a reserved mix that optimized to zero slots prices
	// identically to on-demand, and the twin label masqueraded as a
	// rival. An exact (USD, P95) tie must not count as a runner-up.
	twin := append([]cost.PlanPoint{
		{Model: "private", Scaler: "fixed", Mix: "all-reserved", USD: 10, P95: 0.8},
	}, points...)
	if m := runnerUpMargin(twin, rec, 1.0); m != 2.0 {
		t.Errorf("margin with an exact-tie twin = %v, want 2.0 (the twin is not a rival)", m)
	}
	if v := checkBudgetLadder(points); v != nil {
		t.Errorf("budget ladder on a healthy grid: %s", v.Detail)
	}

	moved := []cost.PlanPoint{
		{Model: "private", Scaler: "fixed", Mix: "on-demand", USD: 10.1, P95: 0.8},
		{Model: "public", Scaler: "growth-fit", Mix: "reserved-mix", USD: 26, P95: 0.5},
	}
	if got := maxUSDShift(points, moved); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("maxUSDShift = %v, want 0.3 (the 20→26 plan)", got)
	}
}

// TestAdvisorHolds: the full four-grid check passes on a generated
// campus case — the shape the fuzz lane runs it on.
func TestAdvisorHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 28 request-level scenarios")
	}
	t.Parallel()
	c := FindFamilyOrDie(t, "campus").Case(CaseSeed(9, "campus", 0))
	v, skip := checkAdvisor(c.Cfg, c.Seed)
	if v != nil {
		t.Errorf("advisor: %s", v.Detail)
	}
	// A margin skip is legitimate; anything else here means the derived
	// grid stopped producing a decisive recommendation.
	if skip != "" && !strings.Contains(skip, "margin") {
		t.Errorf("unexpected skip: %q", skip)
	}
}

// TestBandResourceViolation pins the resource bands and their
// quantization floors on synthetic populations.
func TestBandResourceViolation(t *testing.T) {
	healthyVM := []float64{8.0, 8.5, 9.0, 8.2}
	healthyEg := []float64{1.0, 1.1, 0.9, 1.05}
	if v := bandResourceViolation("des", healthyVM, healthyEg); v != nil {
		t.Errorf("healthy population flagged: %s", v.Detail)
	}
	// A VM-hours excursion beyond 40%+0.25h fires.
	if v := bandResourceViolation("des", []float64{8.0, 8.5, 14.0, 8.2}, healthyEg); v == nil {
		t.Error("VM-hours excursion 14 vs median ~8.2 not flagged")
	} else if !strings.Contains(v.Detail, "VM-hours") {
		t.Errorf("wrong metric named: %s", v.Detail)
	}
	// An egress excursion beyond 30%+0.02GB fires.
	if v := bandResourceViolation("hybrid", healthyVM, []float64{1.0, 1.1, 2.0, 1.05}); v == nil {
		t.Error("egress excursion 2.0 vs median ~1.05 not flagged")
	} else if !strings.Contains(v.Detail, "egress") {
		t.Errorf("wrong metric named: %s", v.Detail)
	}
	// Below the floors the same relative spread is quantization, not
	// physics: a 1-server fleet blinking for 20 minutes, one video.
	if v := bandResourceViolation("des", []float64{0.3, 0.8, 0.3}, []float64{0.01, 0.03, 0.01}); v != nil {
		t.Errorf("sub-floor spread flagged: %s", v.Detail)
	}
}
