package metamorph

import (
	"strings"
	"testing"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/scenario"
	"elearncloud/internal/workload"
)

// TestInvariantsRegistry: the suite has stable names, FindInvariant
// round-trips, and the Lite subset is exactly the generator-level
// checks the fuzz target runs.
func TestInvariantsRegistry(t *testing.T) {
	want := []string{
		"growth-monotone", "envelope-bound", "superpose-bound",
		"parallel-determinism", "capacity-monotone", "cross-fidelity",
		"shard-determinism",
	}
	invs := Invariants()
	if len(invs) != len(want) {
		t.Fatalf("Invariants() = %d entries, want %d", len(invs), len(want))
	}
	lite := 0
	for i, inv := range invs {
		if inv.Name != want[i] {
			t.Errorf("invariant %d = %s, want %s", i, inv.Name, want[i])
		}
		if inv.Lite {
			lite++
		}
		got, err := FindInvariant(inv.Name)
		if err != nil || got.Name != inv.Name {
			t.Errorf("FindInvariant(%s) = %v, %v", inv.Name, got.Name, err)
		}
	}
	if lite != 3 {
		t.Errorf("Lite invariants = %d, want 3 (the generator-level checks)", lite)
	}
	if _, err := FindInvariant("nope"); err == nil {
		t.Error("FindInvariant(nope) did not error")
	}
}

// TestCheckCaseLite: Lite mode runs only generator-level invariants —
// no scenario.Run — and a healthy generated case passes them all.
func TestCheckCaseLite(t *testing.T) {
	for _, f := range Families() {
		c := f.Case(CaseSeed(3, f.Name, 0))
		rep := CheckCase(c, Options{Lite: true})
		if len(rep.Results) != 3 {
			t.Fatalf("%s: Lite CheckCase ran %d checks, want 3", f.Name, len(rep.Results))
		}
		for _, cr := range rep.Results {
			if cr.V != nil {
				t.Errorf("%s %s: %s", f.Name, cr.Name, cr.V.Detail)
			}
		}
	}
}

// TestGrowthMonotoneHolds: both growth constructors satisfy the
// monotone invariant on a MOOC-shaped config.
func TestGrowthMonotoneHolds(t *testing.T) {
	for _, g := range []*workload.Growth{
		workload.LinearGrowth(500, 4000, 2*time.Hour),
		workload.LogisticGrowth(500, 4000, 90*time.Minute),
	} {
		cfg := scenario.Config{Growth: g, Duration: 4 * time.Hour}
		if v, skip := checkGrowthMonotone(cfg, 1); skip != "" || v != nil {
			t.Errorf("growth %v: violation %v skip %q", g, v, skip)
		}
	}
	if _, skip := checkGrowthMonotone(scenario.Config{Students: 100}, 1); skip == "" {
		t.Error("growth-monotone did not skip a growth-free config")
	}
}

// TestEnvelopeBoundHolds: a storm-heavy config samples under its own
// envelope.
func TestEnvelopeBoundHolds(t *testing.T) {
	cfg := scenario.Config{
		Students:          400,
		ReqPerStudentHour: 40,
		Duration:          2 * time.Hour,
		Storms: []workload.DeadlineStorm{
			{Deadline: 90 * time.Minute, Ramp: time.Hour, PeakMult: 8},
		},
	}
	if v, skip := checkEnvelopeBound(cfg, 5); skip != "" || v != nil {
		t.Errorf("envelope-bound: violation %v skip %q", v, skip)
	}
}

// TestSuperposeBoundHolds across a seed spread: the weighted-mean bound
// is exact at hour anchors, whatever waves are drawn.
func TestSuperposeBoundHolds(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		if v, skip := checkSuperposeBound(scenario.Config{}, seed); skip != "" || v != nil {
			t.Errorf("seed %d: violation %v skip %q", seed, v, skip)
		}
	}
}

// TestParallelDeterminismHolds on one real generated case per family
// (the full pooled comparison; the fuzz lane covers breadth).
func TestParallelDeterminismHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs request-level scenarios")
	}
	c := FindFamilyOrDie(t, "campus").Case(CaseSeed(9, "campus", 1))
	if v, skip := checkParallelDeterminism(c.Cfg, c.Seed); skip != "" || v != nil {
		t.Errorf("parallel-determinism: violation %v skip %q", v, skip)
	}
}

// TestShardDeterminismHolds exercises both branches of the invariant on
// generated cases: single-shard identity on a campus case, and the
// worker-independence + physics clause on a case forced to 3 shards.
func TestShardDeterminismHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs request-level scenarios")
	}
	c := FindFamilyOrDie(t, "campus").Case(CaseSeed(9, "campus", 2))
	c.Cfg.Shards = 0
	if v, skip := checkShardDeterminism(c.Cfg, c.Seed); skip != "" || v != nil {
		t.Errorf("single-shard identity: violation %v skip %q", v, skip)
	}
	c.Cfg.Shards = 3
	if v, skip := checkShardDeterminism(c.Cfg, c.Seed); skip != "" || v != nil {
		t.Errorf("multi-shard: violation %v skip %q", v, skip)
	}
}

// FindFamilyOrDie is a test helper.
func FindFamilyOrDie(t *testing.T, name string) Family {
	t.Helper()
	f, err := FindFamily(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestDesFeasible: the request-level budget excludes MOOC-scale and
// week-long configs and admits campus-scale ones.
func TestDesFeasible(t *testing.T) {
	small := scenario.Config{Students: 500, ReqPerStudentHour: 40, Duration: 3 * time.Hour}
	if !desFeasible(small) {
		t.Error("campus-scale config rejected")
	}
	big := scenario.Config{Students: 80000, ReqPerStudentHour: 10, Duration: 6 * time.Hour}
	if desFeasible(big) {
		t.Error("MOOC-scale config admitted")
	}
	long := scenario.Config{Students: 100, ReqPerStudentHour: 10, Duration: 7 * 24 * time.Hour}
	if desFeasible(long) {
		t.Error("week-long config admitted")
	}
}

// TestCrossFidelitySkips: the regimes the fluid model does not cover
// are skipped with a stated reason, not silently passed.
func TestCrossFidelitySkips(t *testing.T) {
	base := scenario.Config{Students: 400, Duration: 4 * time.Hour}
	for name, mutate := range map[string]func(*scenario.Config){
		"desktop":      func(c *scenario.Config) { c.Kind = deploy.Desktop },
		"short":        func(c *scenario.Config) { c.Duration = time.Hour },
		"host-failure": func(c *scenario.Config) { c.HostFailureAt = time.Hour },
		"exam-crowd": func(c *scenario.Config) {
			c.Crowds = []workload.FlashCrowd{{Start: time.Hour, End: 2 * time.Hour, Mult: 3, ExamTraffic: true}}
		},
	} {
		cfg := base
		mutate(&cfg)
		v, skip := checkCrossFidelity(cfg, 1)
		if v != nil {
			t.Errorf("%s: unexpected violation %v", name, v)
		}
		if skip == "" {
			t.Errorf("%s: expected a skip reason", name)
		}
	}
}

// TestCrossFidelitySpikeRegression pins the seeds the first fuzz sweep
// (run seed 2) minimized: small stacked-storm configs where the
// memoryless fluid fleet undercounts the reactive scaler's held
// capacity by 9-20x. The spikiness gate must classify them as
// explained (no violation) without skipping the whole invariant's
// capex/host clauses.
func TestCrossFidelitySpikeRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs request-level scenarios")
	}
	for fam, seed := range map[string]uint64{
		"storm":  0x28f0f41a83af80e7, // 215-student double storm, ratio was 20.4x
		"campus": 0xfb3abd4466c9728c, // 351-student hybrid crowd, ratio was 13.7x
		// Run-seed-3 find: rural-DSL hybrid whose last-mile outages
		// starve the DES of arrivals the fluid model still integrates
		// (egress ratio was 0.65); the offline-share gate explains it.
		"chaos": 0x743912ad8faad72c,
	} {
		c := FindFamilyOrDie(t, fam).Case(seed)
		if v, _ := checkCrossFidelity(c.Cfg, c.Seed); v != nil {
			t.Errorf("%s seed=%#x: %s", fam, seed, v.Detail)
		}
	}
}

// TestViolationsFilter: Report.Violations returns exactly the failed
// checks.
func TestViolationsFilter(t *testing.T) {
	rep := Report{Results: []CheckResult{
		{Name: "a"},
		{Name: "b", V: &Violation{Invariant: "b", Detail: "boom"}},
		{Name: "c", Skipped: "because"},
	}}
	got := rep.Violations()
	if len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("Violations() = %+v, want just b", got)
	}
}

// TestFingerprintDiffLine: the determinism violation message names the
// first drifting field.
func TestFingerprintDiffLine(t *testing.T) {
	d := diffLine("a=1\nb=2\n", "a=1\nb=3\n")
	if !strings.Contains(d, "b=2") || !strings.Contains(d, "b=3") {
		t.Fatalf("diffLine = %q, want both b lines", d)
	}
}
