package metamorph

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/network"
	"elearncloud/internal/scenario"
	"elearncloud/internal/workload"
)

// TestInvariantsRegistry: the suite has stable names, FindInvariant
// round-trips, and the Lite subset is exactly the generator-level
// checks the fuzz target runs.
func TestInvariantsRegistry(t *testing.T) {
	want := []string{
		"growth-monotone", "envelope-bound", "superpose-bound",
		"parallel-determinism", "capacity-monotone", "cross-fidelity",
		"shard-determinism", "hybrid-determinism", "hybrid-agreement",
		"advisor", "seed-band",
	}
	invs := Invariants()
	if len(invs) != len(want) {
		t.Fatalf("Invariants() = %d entries, want %d", len(invs), len(want))
	}
	lite, band := 0, 0
	for i, inv := range invs {
		if inv.Name != want[i] {
			t.Errorf("invariant %d = %s, want %s", i, inv.Name, want[i])
		}
		if inv.Lite {
			lite++
		}
		if inv.Band {
			band++
		}
		if inv.Lite && inv.Band {
			t.Errorf("invariant %s is both Lite and Band", inv.Name)
		}
		got, err := FindInvariant(inv.Name)
		if err != nil || got.Name != inv.Name {
			t.Errorf("FindInvariant(%s) = %v, %v", inv.Name, got.Name, err)
		}
	}
	if lite != 3 {
		t.Errorf("Lite invariants = %d, want 3 (the generator-level checks)", lite)
	}
	if band != 1 {
		t.Errorf("Band invariants = %d, want 1 (the cross-seed statistical check)", band)
	}
	if _, err := FindInvariant("nope"); err == nil {
		t.Error("FindInvariant(nope) did not error")
	}
}

// TestCheckCaseLite: Lite mode runs only generator-level invariants —
// no scenario.Run — and a healthy generated case passes them all.
func TestCheckCaseLite(t *testing.T) {
	for _, f := range Families() {
		c := f.Case(CaseSeed(3, f.Name, 0))
		rep := CheckCase(c, Options{Lite: true})
		if len(rep.Results) != 3 {
			t.Fatalf("%s: Lite CheckCase ran %d checks, want 3", f.Name, len(rep.Results))
		}
		for _, cr := range rep.Results {
			if cr.V != nil {
				t.Errorf("%s %s: %s", f.Name, cr.Name, cr.V.Detail)
			}
		}
	}
}

// TestGrowthMonotoneHolds: both growth constructors satisfy the
// monotone invariant on a MOOC-shaped config.
func TestGrowthMonotoneHolds(t *testing.T) {
	for _, g := range []*workload.Growth{
		workload.LinearGrowth(500, 4000, 2*time.Hour),
		workload.LogisticGrowth(500, 4000, 90*time.Minute),
	} {
		cfg := scenario.Config{Growth: g, Duration: 4 * time.Hour}
		if v, skip := checkGrowthMonotone(cfg, 1); skip != "" || v != nil {
			t.Errorf("growth %v: violation %v skip %q", g, v, skip)
		}
	}
	if _, skip := checkGrowthMonotone(scenario.Config{Students: 100}, 1); skip == "" {
		t.Error("growth-monotone did not skip a growth-free config")
	}
}

// TestEnvelopeBoundHolds: a storm-heavy config samples under its own
// envelope.
func TestEnvelopeBoundHolds(t *testing.T) {
	cfg := scenario.Config{
		Students:          400,
		ReqPerStudentHour: 40,
		Duration:          2 * time.Hour,
		Storms: []workload.DeadlineStorm{
			{Deadline: 90 * time.Minute, Ramp: time.Hour, PeakMult: 8},
		},
	}
	if v, skip := checkEnvelopeBound(cfg, 5); skip != "" || v != nil {
		t.Errorf("envelope-bound: violation %v skip %q", v, skip)
	}
}

// TestSuperposeBoundHolds across a seed spread: the weighted-mean bound
// is exact at hour anchors, whatever waves are drawn.
func TestSuperposeBoundHolds(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		if v, skip := checkSuperposeBound(scenario.Config{}, seed); skip != "" || v != nil {
			t.Errorf("seed %d: violation %v skip %q", seed, v, skip)
		}
	}
}

// TestParallelDeterminismHolds on one real generated case per family
// (the full pooled comparison; the fuzz lane covers breadth).
func TestParallelDeterminismHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs request-level scenarios")
	}
	c := FindFamilyOrDie(t, "campus").Case(CaseSeed(9, "campus", 1))
	if v, skip := checkParallelDeterminism(c.Cfg, c.Seed); skip != "" || v != nil {
		t.Errorf("parallel-determinism: violation %v skip %q", v, skip)
	}
}

// TestShardDeterminismHolds exercises both branches of the invariant on
// generated cases: single-shard identity on a campus case, and the
// worker-independence + physics clause on a case forced to 3 shards.
func TestShardDeterminismHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs request-level scenarios")
	}
	c := FindFamilyOrDie(t, "campus").Case(CaseSeed(9, "campus", 2))
	c.Cfg.Shards = 0
	if v, skip := checkShardDeterminism(c.Cfg, c.Seed); skip != "" || v != nil {
		t.Errorf("single-shard identity: violation %v skip %q", v, skip)
	}
	c.Cfg.Shards = 3
	if v, skip := checkShardDeterminism(c.Cfg, c.Seed); skip != "" || v != nil {
		t.Errorf("multi-shard: violation %v skip %q", v, skip)
	}
}

// TestHybridDeterminismHolds: the hybrid runner's worker-independence
// on a generated storm-laden case, sharded and not.
func TestHybridDeterminismHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs request-level scenarios")
	}
	c := FindFamilyOrDie(t, "hybrid").Case(CaseSeed(9, "hybrid", 0))
	c.Cfg.Shards = 0
	if v, skip := checkHybridDeterminism(c.Cfg, c.Seed); skip != "" || v != nil {
		t.Errorf("unsharded: violation %v skip %q", v, skip)
	}
	c.Cfg.Shards = 3
	if v, skip := checkHybridDeterminism(c.Cfg, c.Seed); skip != "" || v != nil {
		t.Errorf("sharded windows: violation %v skip %q", v, skip)
	}
}

// TestHybridAgreementSkips: the regimes the seam comparison does not
// cover are skipped with a stated reason, not silently passed.
func TestHybridAgreementSkips(t *testing.T) {
	base := scenario.Config{
		Students: 400, Duration: 4 * time.Hour,
		Storms: []workload.DeadlineStorm{
			{Deadline: 2 * time.Hour, Ramp: time.Hour, PeakMult: 6},
		},
	}
	for name, mutate := range map[string]func(*scenario.Config){
		"desktop":      func(c *scenario.Config) { c.Kind = deploy.Desktop },
		"short":        func(c *scenario.Config) { c.Duration = time.Hour },
		"host-failure": func(c *scenario.Config) { c.HostFailureAt = time.Hour },
		"threats":      func(c *scenario.Config) { c.EnableThreats = true },
		"exam-storm":   func(c *scenario.Config) { c.Storms[0].ExamTraffic = true },
		"empty-plan":   func(c *scenario.Config) { c.Storms = nil },
	} {
		cfg := base
		cfg.Storms = append([]workload.DeadlineStorm(nil), base.Storms...)
		mutate(&cfg)
		v, skip := checkHybridAgreement(cfg, 1)
		if v != nil {
			t.Errorf("%s: unexpected violation %v", name, v)
		}
		if skip == "" {
			t.Errorf("%s: expected a skip reason", name)
		}
	}
}

// TestHybridAgreementHolds: a generated hybrid-family case inside the
// covered regime tracks the whole-horizon DES within the bands.
func TestHybridAgreementHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs request-level scenarios")
	}
	cfg := scenario.Config{
		Kind: deploy.Public, Students: 500, ReqPerStudentHour: 30,
		Duration: 4 * time.Hour, Diurnal: workload.FlatDiurnal(),
		Scaler: scenario.ScalerReactive,
		Storms: []workload.DeadlineStorm{
			{Deadline: 150 * time.Minute, Ramp: 80 * time.Minute, PeakMult: 6},
		},
		Seed: 0x5eed,
	}
	if v, skip := checkHybridAgreement(cfg, 0x5eed); skip != "" || v != nil {
		t.Errorf("hybrid-agreement: violation %v skip %q", v, skip)
	}
}

// TestHybridAgreementRetentionRegression pins the seeds this PR's
// first hybrid-family sweep (run seed 1) minimized: small hybrid
// deployments whose private side absorbs the base load, leaving a
// public fleet of 1-2 servers that the DES's reactive scaler holds for
// the whole horizon while the hybrid's fluid stretches run it at zero —
// VM-hours ratios of 0.20-0.27 from whole-server quantization, not a
// stitching bug. The both-sides-over-5-VM-hours gate must classify
// them as explained without skipping the exact capex/host clauses.
func TestHybridAgreementRetentionRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs request-level scenarios")
	}
	for _, seed := range []uint64{0xc699da707374f890, 0x57e3ea30f79965d6} {
		c := FindFamilyOrDie(t, "hybrid").Case(seed)
		if v, _ := checkHybridAgreement(c.Cfg, c.Seed); v != nil {
			t.Errorf("hybrid seed=%#x: %s", seed, v.Detail)
		}
	}
}

// TestSeedBandGating: the Band invariant only runs when Options.Band
// asks for it — the interactive default must never pay for a 50-seed
// population.
func TestSeedBandGating(t *testing.T) {
	c := FindFamilyOrDie(t, "campus").Case(CaseSeed(9, "campus", 0))
	// An infeasibly huge config makes both passes cheap: the Band run
	// skips on budget, proving it was reached at all.
	c.Cfg.Students = 10_000_000
	names := func(rep Report) map[string]bool {
		out := map[string]bool{}
		for _, cr := range rep.Results {
			out[cr.Name] = true
		}
		return out
	}
	if got := names(CheckCase(c, Options{})); got["seed-band"] {
		t.Error("default CheckCase ran the seed-band invariant")
	}
	got := names(CheckCase(c, Options{Band: true}))
	if !got["seed-band"] {
		t.Error("Options{Band} did not run the seed-band invariant")
	}
	if got := names(CheckCase(c, Options{Lite: true, Band: true})); got["seed-band"] {
		t.Error("Lite mode ran the seed-band invariant (it is not generator-level)")
	}
}

// TestSeedBandHolds: a small storm config's 50-seed populations stay in
// band on both the pure-DES and hybrid paths. This is the cross-seed
// statistical harness the nightly lane runs, pinned here on one case.
func TestSeedBandHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 100 request-level scenarios")
	}
	// CampusLAN keeps the last mile outage-free: the default
	// UrbanBroadband profile fails every ~14 days, which across 50
	// seeds means roughly one seed catches an outage and trips the
	// bandRegime outage gate instead of exercising the band itself.
	cfg := scenario.Config{
		Kind: deploy.Public, Students: 150, ReqPerStudentHour: 20,
		Duration: 3 * time.Hour, Diurnal: workload.FlatDiurnal(),
		Scaler: scenario.ScalerReactive,
		Access: network.CampusLAN,
		Storms: []workload.DeadlineStorm{
			{Deadline: 100 * time.Minute, Ramp: time.Hour, PeakMult: 6},
		},
	}
	if !bandFeasible(cfg) {
		t.Fatal("test config exceeds the band budget — shrink it")
	}
	// The config must actually exercise the hybrid path.
	plan, err := scenario.PlanFidelity(cfg)
	if err != nil || len(plan.Windows) == 0 {
		t.Fatalf("test config planned no DES windows (err=%v)", err)
	}
	if v, skip := checkSeedBand(cfg, 0xba17d); skip != "" || v != nil {
		t.Errorf("seed-band: violation %v skip %q", v, skip)
	}
}

// TestSeedBandRegimeGates pins the cases the first -band sweeps
// flagged: threshold regimes (outage bimodality, saturation rejection,
// tail collapse — see bandRegime) where across-seed dispersion is the
// system's honest behavior. Each must now skip via a regime gate, not
// fire the band — and never report a violation again.
func TestSeedBandRegimeGates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 50-seed populations")
	}
	// One cheap representative per regime shape keeps the test inside
	// the tier-1 budget; the nightly -band sweep regenerates the same
	// early case seeds and so still covers the rest (0xe54cadbd79fe224a,
	// 0x70606318406a2908 — a 50-seed population of its 524-student case
	// alone costs ~50s — 0x14c14eb477a93de7, 0xd1aa00f4044537ab), and
	// TestBandRegime pins every gate threshold synthetically.
	for _, tc := range []struct {
		family string
		seed   uint64
	}{
		{"storm", 0xe381ddf4f0539593}, // tail collapse, median P95 2.1s
		{"chaos", 0x7a4bb6d0a24761f2}, // rural-DSL outage bimodality
		// PR 10's resource-band sweep: egress deviation 0.57 around a
		// 1.4 GB median — heavy-tailed video objects on a flaky last
		// mile. The offline-share gate must keep classifying it as
		// outage bimodality now that egress itself is banded (seed
		// 0x922cac3419b47d77 is the same shape at 82 GB).
		{"storm", 0x80f7a36ce9c50d64},
	} {
		t.Run(fmt.Sprintf("%s-%#x", tc.family, tc.seed), func(t *testing.T) {
			c := FindFamilyOrDie(t, tc.family).Case(tc.seed)
			v, skip := checkSeedBand(c.Cfg, c.Seed)
			if v != nil {
				t.Errorf("violation resurfaced: %s", v.Detail)
			}
			if skip == "" {
				t.Error("expected a regime-gate skip, got a clean band pass")
			}
		})
	}
	// The widest population the resource bands must accommodate, not
	// exempt: storm seed 0xc64b3058f820bb6b runs stable service with
	// egress deviation 0.171 and VM-hours deviation 0.087 — an honest
	// in-band pass that would flag first if the tolerances over-tighten.
	t.Run("widest-in-band", func(t *testing.T) {
		c := FindFamilyOrDie(t, "storm").Case(0xc64b3058f820bb6b)
		v, skip := checkSeedBand(c.Cfg, c.Seed)
		if v != nil {
			t.Errorf("widest in-band population now violates: %s", v.Detail)
		}
		if skip != "" {
			t.Errorf("widest in-band population now gated: %s", skip)
		}
	})
}

// TestBandRegime pins the gate thresholds on synthetic populations.
func TestBandRegime(t *testing.T) {
	healthyF := []float64{0.99, 0.98, 1.0}
	healthyP := []float64{0.3, 0.35, 0.4}
	if got := bandRegime("des", healthyF, healthyP, 0); got != "" {
		t.Errorf("healthy population gated: %q", got)
	}
	if got := bandRegime("des", healthyF, healthyP, 0.05); got == "" {
		t.Error("offline share 0.05 not gated")
	}
	if got := bandRegime("des", []float64{0.8, 0.85, 0.9}, healthyP, 0); got == "" {
		t.Error("median served 0.85 not gated")
	}
	if got := bandRegime("des", healthyF, []float64{1.8, 2.1, 5.4}, 0); got == "" {
		t.Error("median P95 2.1s not gated")
	}
}

// TestMedian pins the statistic the band check centers on.
func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
}

// FindFamilyOrDie is a test helper.
func FindFamilyOrDie(t *testing.T, name string) Family {
	t.Helper()
	f, err := FindFamily(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestDesFeasible: the request-level budget excludes MOOC-scale and
// week-long configs and admits campus-scale ones.
func TestDesFeasible(t *testing.T) {
	small := scenario.Config{Students: 500, ReqPerStudentHour: 40, Duration: 3 * time.Hour}
	if !desFeasible(small) {
		t.Error("campus-scale config rejected")
	}
	big := scenario.Config{Students: 80000, ReqPerStudentHour: 10, Duration: 6 * time.Hour}
	if desFeasible(big) {
		t.Error("MOOC-scale config admitted")
	}
	long := scenario.Config{Students: 100, ReqPerStudentHour: 10, Duration: 7 * 24 * time.Hour}
	if desFeasible(long) {
		t.Error("week-long config admitted")
	}
}

// TestCrossFidelitySkips: the regimes the fluid model does not cover
// are skipped with a stated reason, not silently passed.
func TestCrossFidelitySkips(t *testing.T) {
	base := scenario.Config{Students: 400, Duration: 4 * time.Hour}
	for name, mutate := range map[string]func(*scenario.Config){
		"desktop":      func(c *scenario.Config) { c.Kind = deploy.Desktop },
		"short":        func(c *scenario.Config) { c.Duration = time.Hour },
		"host-failure": func(c *scenario.Config) { c.HostFailureAt = time.Hour },
		"exam-crowd": func(c *scenario.Config) {
			c.Crowds = []workload.FlashCrowd{{Start: time.Hour, End: 2 * time.Hour, Mult: 3, ExamTraffic: true}}
		},
	} {
		cfg := base
		mutate(&cfg)
		v, skip := checkCrossFidelity(cfg, 1)
		if v != nil {
			t.Errorf("%s: unexpected violation %v", name, v)
		}
		if skip == "" {
			t.Errorf("%s: expected a skip reason", name)
		}
	}
}

// TestCrossFidelitySpikeRegression pins the seeds the first fuzz sweep
// (run seed 2) minimized: small stacked-storm configs where the
// memoryless fluid fleet undercounts the reactive scaler's held
// capacity by 9-20x. The spikiness gate must classify them as
// explained (no violation) without skipping the whole invariant's
// capex/host clauses.
func TestCrossFidelitySpikeRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs request-level scenarios")
	}
	for fam, seed := range map[string]uint64{
		"storm":  0x28f0f41a83af80e7, // 215-student double storm, ratio was 20.4x
		"campus": 0xfb3abd4466c9728c, // 351-student hybrid crowd, ratio was 13.7x
		// Run-seed-3 find: rural-DSL hybrid whose last-mile outages
		// starve the DES of arrivals the fluid model still integrates
		// (egress ratio was 0.65); the offline-share gate explains it.
		"chaos": 0x743912ad8faad72c,
	} {
		c := FindFamilyOrDie(t, fam).Case(seed)
		if v, _ := checkCrossFidelity(c.Cfg, c.Seed); v != nil {
			t.Errorf("%s seed=%#x: %s", fam, seed, v.Detail)
		}
	}
}

// TestViolationsFilter: Report.Violations returns exactly the failed
// checks.
func TestViolationsFilter(t *testing.T) {
	rep := Report{Results: []CheckResult{
		{Name: "a"},
		{Name: "b", V: &Violation{Invariant: "b", Detail: "boom"}},
		{Name: "c", Skipped: "because"},
	}}
	got := rep.Violations()
	if len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("Violations() = %+v, want just b", got)
	}
}

// TestFingerprintDiffLine: the determinism violation message names the
// first drifting field.
func TestFingerprintDiffLine(t *testing.T) {
	d := diffLine("a=1\nb=2\n", "a=1\nb=3\n")
	if !strings.Contains(d, "b=2") || !strings.Contains(d, "b=3") {
		t.Fatalf("diffLine = %q, want both b lines", d)
	}
}
