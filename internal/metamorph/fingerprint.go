package metamorph

import (
	"crypto/sha256"
	"fmt"
	"strconv"
	"strings"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/metrics"
	"elearncloud/internal/scenario"
)

// Fingerprint renders every observable field of a result into a stable
// multi-line string. Two runs are "byte-identical" for the parallelism
// invariant exactly when their fingerprints are equal; on a mismatch
// the differing line names the field that drifted.
func Fingerprint(r *scenario.Result) string {
	var b strings.Builder
	line := func(name string, v float64) {
		fmt.Fprintf(&b, "%s=%s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
	}
	fmt.Fprintf(&b, "kind=%v scaler=%v duration=%v\n", r.Kind, r.Scaler, r.Duration)
	fmt.Fprintf(&b, "served=%d rejected=%d offline=%d violations=%d killed=%d\n",
		r.Served, r.Rejected, r.Offline, r.PolicyViolations, r.KilledJobs)
	fmt.Fprintf(&b, "latency.count=%d\n", r.Latency.Count())
	line("latency.sum", r.Latency.Sum())
	line("latency.p50", r.Latency.P50())
	line("latency.p95", r.Latency.P95())
	line("latency.max", r.Latency.Max())
	fmt.Fprintf(&b, "peakServers=%d privateHosts=%d\n", r.PeakServers, r.PrivateHosts)
	line("vmHoursPublic", r.VMHoursPublic)
	line("vmHoursPrivate", r.VMHoursPrivate)
	line("egressGB", r.EgressGB)
	line("cdnGB", r.CDNGB)
	line("cdnHitRatio", r.CDNHitRatio)
	fmt.Fprintf(&b, "lostWork=%v disconnects=%d\n", r.LostWork, r.Disconnects)
	line("netAvailability", r.NetAvailability)
	fmt.Fprintf(&b, "breaches=%d exposures=%d dataLoss=%d\n",
		r.Breaches, r.SensitiveExposures, r.DataLossEvents)
	line("bytesLost", r.BytesLost)
	fmt.Fprintf(&b, "events=%d shards=%d shardEvents=%v\n", r.Events, r.Shards, r.ShardEvents)
	fmt.Fprintf(&b, "cost=%+v\n", r.Cost)
	fmt.Fprintf(&b, "servers=%s\n", seriesSig(r.Servers))
	fmt.Fprintf(&b, "utilization=%s\n", seriesSig(r.Utilization))
	fmt.Fprintf(&b, "p95series=%s\n", seriesSig(r.P95Series))
	return b.String()
}

// seriesSig digests a time series into "len:sha256-prefix" so the
// fingerprint stays short while still pinning every sample.
func seriesSig(ts *metrics.TimeSeries) string {
	if ts == nil {
		return "nil"
	}
	h := sha256.New()
	for _, p := range ts.Points() {
		fmt.Fprintf(h, "%d %s\n", p.At, strconv.FormatFloat(p.Value, 'g', -1, 64))
	}
	return fmt.Sprintf("%d:%x", ts.Len(), h.Sum(nil)[:8])
}

// DescribeConfig renders a config as a handful of compact lines — the
// repro the minimizer prints. Defaults are omitted, so a shrunk config
// reads as just the load shape that still fails.
func DescribeConfig(cfg scenario.Config) []string {
	var lines []string
	head := fmt.Sprintf("kind=%v students=%d", cfg.Kind, cfg.Students)
	if cfg.Growth != nil {
		head = fmt.Sprintf("kind=%v growth=%v", cfg.Kind, cfg.Growth)
	}
	if cfg.ReqPerStudentHour != 0 {
		head += fmt.Sprintf(" req/h=%g", cfg.ReqPerStudentHour)
	}
	if cfg.Seed != 0 {
		head += fmt.Sprintf(" seed=%#x", cfg.Seed)
	}
	lines = append(lines, head)

	run := fmt.Sprintf("duration=%v scaler=%v", cfg.Duration, cfg.Scaler)
	if cfg.Diurnal != nil {
		run += fmt.Sprintf(" diurnal(peak=%.2f)", cfg.Diurnal.Peak())
	}
	if cfg.MaxPublicServers != 0 {
		run += fmt.Sprintf(" maxPublic=%d", cfg.MaxPublicServers)
	}
	if cfg.Shards > 1 {
		run += fmt.Sprintf(" shards=%d", cfg.Shards)
	}
	lines = append(lines, run)

	for _, s := range cfg.Storms {
		lines = append(lines, fmt.Sprintf("storm deadline=%v ramp=%v peak=%gx exam=%v",
			s.Deadline, s.Ramp, s.PeakMult, s.ExamTraffic))
	}
	for _, j := range cfg.Joins {
		lines = append(lines, fmt.Sprintf("join start=%v window=%v peak=%gx",
			j.Start, j.Window, j.PeakMult))
	}
	for _, c := range cfg.Crowds {
		lines = append(lines, fmt.Sprintf("crowd %v-%v %gx exam=%v",
			c.Start, c.End, c.Mult, c.ExamTraffic))
	}

	var opts []string
	if cfg.Kind != deploy.Public && cfg.HostFailureAt > 0 {
		opts = append(opts, fmt.Sprintf("hostFailure=%v+%v", cfg.HostFailureAt, cfg.HostRecoveryAfter))
	}
	if cfg.EnableThreats {
		opts = append(opts, "threats")
	}
	if cfg.EnableCDN {
		opts = append(opts, "cdn")
	}
	if cfg.Calendar != nil {
		opts = append(opts, "calendar")
	}
	if cfg.Access.Name != "" && cfg.Access.Name != "urban-broadband" {
		opts = append(opts, "access="+cfg.Access.Name)
	}
	if len(opts) > 0 {
		lines = append(lines, strings.Join(opts, " "))
	}
	return lines
}

// ReproCommand is the one-line command that regenerates caseSeed's
// config in its family and re-runs the shrink loop on it.
func ReproCommand(family string, caseSeed uint64) string {
	return fmt.Sprintf("go run ./cmd/elfuzz -family %s -case-seed %#x -minimize", family, caseSeed)
}

// horizonOf is shared by checks that need the effective run horizon.
func horizonOf(cfg scenario.Config) time.Duration {
	if cfg.Duration > 0 {
		return cfg.Duration
	}
	return 6 * time.Hour
}
