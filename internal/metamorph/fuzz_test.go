package metamorph

import (
	"strings"
	"testing"
)

// FuzzInvariants is the native fuzz entry: any (family index, case
// seed) pair must generate a valid config that passes the Lite
// (generator-level) invariant suite. `go test` runs the corpus seeds
// below on every tier-1 pass; `go test -fuzz=FuzzInvariants
// ./internal/metamorph` explores further. Request-level invariants stay
// in cmd/elfuzz, where the budget is explicit.
func FuzzInvariants(f *testing.F) {
	// One corpus seed per family, plus the elfuzz seed-1 case 0 of each
	// so the nightly lane's first cases are pinned into tier-1.
	for idx, fam := range Families() {
		f.Add(uint8(idx), uint64(1))
		f.Add(uint8(idx), CaseSeed(1, fam.Name, 0))
	}

	fams := Families()
	f.Fuzz(func(t *testing.T, familyIdx uint8, caseSeed uint64) {
		fam := fams[int(familyIdx)%len(fams)]
		c := fam.Case(caseSeed)
		rep := CheckCase(c, Options{Lite: true})
		for _, cr := range rep.Results {
			if cr.V != nil {
				t.Errorf("%s seed=%#x %s: %s\nconfig:\n%s\nrepro: %s",
					fam.Name, caseSeed, cr.Name, cr.V.Detail,
					strings.Join(DescribeConfig(c.Cfg), "\n"),
					ReproCommand(fam.Name, caseSeed))
			}
		}
	})
}
