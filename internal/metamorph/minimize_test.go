package metamorph

import (
	"strings"
	"testing"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/scenario"
	"elearncloud/internal/workload"
)

// plantedCase builds the documented planted-bug config: a storm-laden,
// crowd-laden public scenario whose "violation" is simulated by the
// predicate below, so the shrink loop can be tested deterministically
// without a real simulator bug to chase.
func plantedCase() scenario.Config {
	return scenario.Config{
		Seed:              0xfeed,
		Kind:              deploy.Public,
		Students:          1600,
		ReqPerStudentHour: 40,
		Duration:          8 * time.Hour,
		Diurnal:           workload.CampusDiurnal(),
		Scaler:            scenario.ScalerPredictive,
		EnableThreats:     true,
		EnableCDN:         true,
		Storms: []workload.DeadlineStorm{
			{Deadline: 2 * time.Hour, Ramp: time.Hour, PeakMult: 5},
			{Deadline: 5 * time.Hour, Ramp: 90 * time.Minute, PeakMult: 7},
			{Deadline: 7 * time.Hour, Ramp: time.Hour, PeakMult: 4},
		},
		Joins: []workload.JoinStorm{
			{Start: 3 * time.Hour, Window: 30 * time.Minute, PeakMult: 6},
		},
		Crowds: []workload.FlashCrowd{
			{Start: time.Hour, End: 90 * time.Minute, Mult: 3},
		},
	}
}

// plantedFailing simulates a capacity-monotonicity bug that needs at
// least 400 students and at least one deadline storm to trigger — the
// documented planted bug of the acceptance criteria. Everything else
// (joins, crowds, CDN, threats, the diurnal shape, the scaler, most of
// the horizon) is noise the minimizer must strip.
func plantedFailing(c scenario.Config) bool {
	return c.Students >= 400 && len(c.Storms) >= 1
}

// TestMinimizePlantedBug: the shrink loop reduces the planted case to
// <= 1 storm window and a stated student count, deterministically, and
// the repro describes in <= 5 lines.
func TestMinimizePlantedBug(t *testing.T) {
	res := Minimize(plantedCase(), plantedFailing, 0)

	if !plantedFailing(res.Cfg) {
		t.Fatal("minimized config no longer fails the predicate")
	}
	if len(res.Cfg.Storms) > 1 {
		t.Errorf("minimized config keeps %d storms, want <= 1", len(res.Cfg.Storms))
	}
	// 1600 halves to 800, then 400; halving again (200) passes the
	// predicate and is rejected, so the minimum is exactly 400.
	if res.Cfg.Students != 400 {
		t.Errorf("minimized Students = %d, want exactly 400", res.Cfg.Students)
	}
	if len(res.Cfg.Joins) != 0 || len(res.Cfg.Crowds) != 0 {
		t.Errorf("minimized config keeps joins=%d crowds=%d, want none",
			len(res.Cfg.Joins), len(res.Cfg.Crowds))
	}
	if res.Cfg.EnableCDN || res.Cfg.EnableThreats || res.Cfg.Diurnal != nil {
		t.Errorf("minimized config keeps cosmetic features: cdn=%v threats=%v diurnal=%v",
			res.Cfg.EnableCDN, res.Cfg.EnableThreats, res.Cfg.Diurnal != nil)
	}
	// 8h halves to 4h then 2h; halving again to 1h would clamp away the
	// surviving storm (its ramp starts exactly at 1h) and lose the
	// failure, so the loop settles at 2h.
	if res.Cfg.Duration != 2*time.Hour {
		t.Errorf("minimized Duration = %v, want exactly 2h", res.Cfg.Duration)
	}

	lines := DescribeConfig(res.Cfg)
	if len(lines) > 5 {
		t.Errorf("minimized repro is %d lines, want <= 5:\n%s",
			len(lines), strings.Join(lines, "\n"))
	}

	// Determinism: a second run takes the same steps to the same config.
	again := Minimize(plantedCase(), plantedFailing, 0)
	if strings.Join(again.Steps, ",") != strings.Join(res.Steps, ",") {
		t.Errorf("shrink steps differ between runs:\n%v\nvs\n%v", res.Steps, again.Steps)
	}
	if strings.Join(DescribeConfig(again.Cfg), "\n") != strings.Join(lines, "\n") {
		t.Error("minimized configs differ between runs")
	}
}

// TestMinimizeRespectsEvalBudget: the loop stops at maxEvals and still
// returns a failing config.
func TestMinimizeRespectsEvalBudget(t *testing.T) {
	res := Minimize(plantedCase(), plantedFailing, 3)
	if res.Evals > 3 {
		t.Fatalf("Evals = %d, want <= 3", res.Evals)
	}
	if !plantedFailing(res.Cfg) {
		t.Fatal("budget-limited minimize returned a passing config")
	}
}

// TestMinimizeNoShrinkPossible: a predicate that only fails on the
// exact starting config returns it unchanged.
func TestMinimizeNoShrinkPossible(t *testing.T) {
	cfg := scenario.Config{Students: 120, Duration: 30 * time.Minute}
	calls := 0
	res := Minimize(cfg, func(c scenario.Config) bool {
		calls++
		return c.Students == 120
	}, 0)
	if res.Cfg.Students != 120 || len(res.Steps) != 0 {
		t.Fatalf("config changed despite no acceptable shrink: %+v steps %v", res.Cfg, res.Steps)
	}
	if calls == 0 {
		t.Fatal("predicate never evaluated")
	}
}

// TestMinimizeDropsDeadWindows: halving the horizon also drops windows
// that land entirely past the new end, keeping the repro honest.
func TestMinimizeDropsDeadWindows(t *testing.T) {
	cfg := scenario.Config{
		Students: 200,
		Duration: 8 * time.Hour,
		Storms: []workload.DeadlineStorm{
			{Deadline: 7 * time.Hour, Ramp: 30 * time.Minute, PeakMult: 5},
		},
	}
	// Fails regardless of the storm, so the horizon shrinks under it.
	res := Minimize(cfg, func(c scenario.Config) bool { return c.Students >= 100 }, 0)
	if len(res.Cfg.Storms) != 0 {
		t.Errorf("storm at 7h survived a %v horizon", res.Cfg.Duration)
	}
	if res.Cfg.Duration >= 8*time.Hour {
		t.Errorf("Duration = %v, never shrank", res.Cfg.Duration)
	}
}
