// Package metamorph is the metamorphic chaos fuzzer behind cmd/elfuzz:
// it generates random-but-seeded scenario configurations and checks
// *relations* between runs instead of golden outputs, so the simulator
// can be stressed by load shapes nobody thought to hand-write.
//
// The pieces:
//
//   - Families() is a registry of scenario distributions ("campus",
//     "mooc", "storm", "chaos"), each composing random workload shapes —
//     growth curves, deadline/join storms, timezone superpositions,
//     flash crowds, outages — with random deployment models and scaler
//     policies. Every choice is derived from sim.SeedFor, so any
//     generated case is a reproducible (family, seed) pair: Family.Case
//     is a pure function of the case seed.
//   - Invariants() is the metamorphic property suite CheckCase runs each
//     generated config through: more capacity never raises P95;
//     generated arrivals never exceed the workload Envelope() bound;
//     results are byte-identical whatever pool parallelism ran them;
//     superposed timezones never exceed the bounds of their parts; and
//     the fluid and request-level fidelities agree within tolerance on
//     overlapping regimes.
//   - Minimize is the shrinker: on a violation it halves the horizon,
//     drops storm windows and reduces students — re-running the failing
//     invariant at every step — until no transformation keeps the
//     failure, leaving the smallest still-failing config. DescribeConfig
//     renders that config in a handful of lines and ReproCommand prints
//     the one-line command that regenerates and re-shrinks it.
//
// cmd/elfuzz is the CLI driver (fixed budget, one line per case,
// minimized repros); FuzzInvariants in this package is the native
// `go test` fuzz target seeded from the family corpus, giving tier-1
// runs smoke-depth coverage of the generator-level invariants.
package metamorph
