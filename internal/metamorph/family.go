package metamorph

import (
	"fmt"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/network"
	"elearncloud/internal/scenario"
	"elearncloud/internal/sim"
	"elearncloud/internal/workload"
)

// Family is one named distribution over scenario configurations. Its
// generator must be total: any case seed yields a valid config, with
// every random choice drawn from the RNG it is handed, so a case is a
// pure function of (family name, case seed).
type Family struct {
	// Name identifies the family ("campus", "mooc", ...).
	Name string
	// Desc is a one-line description for elfuzz -list.
	Desc string
	// Tags classify the family's cases, same vocabulary as the
	// experiment registry's tags (@mooc, @storm, @chaos, ...).
	Tags []string

	gen func(r *sim.RNG) scenario.Config
}

// Case is one generated scenario: a reproducible (Family, Seed) pair.
// Re-deriving the case from the same pair yields an identical Cfg.
type Case struct {
	// Family is the generating family's name.
	Family string
	// Seed is the case seed the config was derived from.
	Seed uint64
	// Tags echo the family's tags.
	Tags []string
	// Cfg is the generated scenario, with Cfg.Seed already set (derived
	// from the case seed, never zero).
	Cfg scenario.Config
}

// Families returns every registered scenario family.
func Families() []Family {
	return []Family{
		{
			Name: "campus",
			Desc: "campus-scale day: random model/scaler, diurnal shape, optional exam crowds",
			Tags: []string{"@des", "@crowd"},
			gen:  genCampus,
		},
		{
			Name: "mooc",
			Desc: "enrollment growth and timezone superpositions, DES-feasible and full MOOC scale",
			Tags: []string{"@mooc", "@growth", "@fluid", "@des"},
			gen:  genMOOC,
		},
		{
			Name: "storm",
			Desc: "deadline/join storms over a flat or campus day, public elastic fleet",
			Tags: []string{"@storm", "@des", "@scaling"},
			gen:  genStorm,
		},
		{
			Name: "chaos",
			Desc: "outages: flaky last miles, mid-run host failures, live threat model",
			Tags: []string{"@chaos", "@des", "@network"},
			gen:  genChaos,
		},
		{
			Name: "hybrid",
			Desc: "burst-laden courses through the auto-fidelity planner: fluid stretches, DES storm windows",
			Tags: []string{"@mooc", "@storm", "@fluid", "@des"},
			gen:  genHybrid,
		},
	}
}

// FindFamily returns the named family.
func FindFamily(name string) (Family, error) {
	for _, f := range Families() {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("metamorph: unknown family %q", name)
}

// CaseSeed derives case i's seed from a run seed, following the
// (seed, name) rule: the same (run seed, family, index) always names the
// same case, and distinct indices decorrelate.
func CaseSeed(runSeed uint64, family string, i int) uint64 {
	return sim.SeedFor(runSeed, fmt.Sprintf("metamorph/%s/case-%d", family, i))
}

// Case derives the family's scenario for caseSeed. The generator RNG
// and the scenario's own seed come from independent sim.SeedFor
// derivations, so shape choices never share a stream with run
// randomness.
func (f Family) Case(caseSeed uint64) Case {
	r := sim.NewRNG(sim.SeedFor(caseSeed, "metamorph/gen"))
	cfg := f.gen(r)
	cfg.Seed = sim.SeedFor(caseSeed, "metamorph/scenario")
	return Case{Family: f.Name, Seed: caseSeed, Tags: f.Tags, Cfg: cfg}
}

// --- shared random-choice helpers -------------------------------------

// between returns a uniform int in [lo, hi].
func between(r *sim.RNG, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// betweenMin returns a uniform whole-minute duration in [lo, hi] minutes.
func betweenMin(r *sim.RNG, lo, hi int) time.Duration {
	return time.Duration(between(r, lo, hi)) * time.Minute
}

// pickKind draws a deployment model; desktop is rare because it skips
// most queueing-level invariants.
func pickKind(r *sim.RNG) deploy.Kind {
	switch r.Pick([]float64{4, 3, 3, 1}) {
	case 0:
		return deploy.Public
	case 1:
		return deploy.Private
	case 2:
		return deploy.Hybrid
	default:
		return deploy.Desktop
	}
}

// pickScaler draws an elasticity policy.
func pickScaler(r *sim.RNG) scenario.ScalerKind {
	return []scenario.ScalerKind{
		scenario.ScalerFixed, scenario.ScalerReactive,
		scenario.ScalerScheduled, scenario.ScalerPredictive,
	}[r.Intn(4)]
}

// pickDiurnal draws a day shape: flat, campus, or a random multi-
// timezone superposition.
func pickDiurnal(r *sim.RNG) *workload.DiurnalProfile {
	switch r.Intn(3) {
	case 0:
		return workload.FlatDiurnal()
	case 1:
		return workload.CampusDiurnal()
	default:
		return randomSuperposition(r)
	}
}

// randomSuperposition builds a 2-4 wave timezone blend with random
// shifts and weights; waves use the campus day as their local shape.
func randomSuperposition(r *sim.RNG) *workload.DiurnalProfile {
	waves := make([]workload.TimezoneWave, between(r, 2, 4))
	for i := range waves {
		waves[i] = workload.TimezoneWave{
			// Shifts land on half hours in [-12h, +12h), like real zones.
			Shift:  time.Duration(between(r, -24, 23)) * 30 * time.Minute,
			Weight: 0.5 + r.Float64(),
		}
	}
	return workload.SuperposeTimezones(waves)
}

// pickShards draws the sharded-execution layout. Every family draws it
// LAST, after all other choices, so the field rides on top of
// previously minimized case seeds without disturbing their earlier
// draws: most cases stay single-engine (Shards=0 exercises the direct
// path and the ShardedRun identity), the rest split across 2-4 per-
// shard engines.
func pickShards(r *sim.RNG) int {
	if r.Bernoulli(0.3) {
		return between(r, 2, 4)
	}
	return 0
}

// randomCrowd draws an exam flash crowd inside the horizon.
func randomCrowd(r *sim.RNG, duration time.Duration) workload.FlashCrowd {
	durMin := int(duration / time.Minute)
	start := betweenMin(r, 10, durMin-50)
	return workload.FlashCrowd{
		Start:       start,
		End:         start + betweenMin(r, 20, 40),
		Mult:        float64(between(r, 2, 7)),
		ExamTraffic: r.Bernoulli(0.5),
	}
}

// randomDeadlineStorm draws a procrastination ramp whose cliff lands
// inside the horizon.
func randomDeadlineStorm(r *sim.RNG, duration time.Duration) workload.DeadlineStorm {
	durMin := int(duration / time.Minute)
	rampMin := between(r, 30, min(90, durMin-20))
	s := workload.DeadlineStorm{
		Ramp:        time.Duration(rampMin) * time.Minute,
		Deadline:    betweenMin(r, rampMin+10, durMin-5),
		PeakMult:    float64(between(r, 4, 10)),
		ExamTraffic: r.Bernoulli(0.6),
	}
	if r.Bernoulli(0.5) {
		s.Tau = s.Ramp / time.Duration(between(r, 3, 5))
	}
	return s
}

// randomJoinStorm draws a live-session join spike inside the horizon.
func randomJoinStorm(r *sim.RNG, duration time.Duration) workload.JoinStorm {
	durMin := int(duration / time.Minute)
	return workload.JoinStorm{
		Start:       betweenMin(r, 10, durMin-40),
		Window:      betweenMin(r, 15, 35),
		PeakMult:    float64(between(r, 4, 8)),
		ExamTraffic: r.Bernoulli(0.5),
	}
}

// --- the families -----------------------------------------------------

// genCampus composes an ordinary institution day: constant population,
// any deployment model and scaler, a random day shape, and up to two
// exam flash crowds.
func genCampus(r *sim.RNG) scenario.Config {
	cfg := scenario.Config{
		Kind:              pickKind(r),
		Students:          between(r, 300, 1100),
		ReqPerStudentHour: float64(between(r, 30, 60)),
		Duration:          time.Duration(between(r, 2, 4)) * time.Hour,
		Diurnal:           pickDiurnal(r),
		Scaler:            pickScaler(r),
		Access:            network.UrbanBroadband,
	}
	for n := r.Intn(3); n > 0; n-- {
		cfg.Crowds = append(cfg.Crowds, randomCrowd(r, cfg.Duration))
	}
	if cfg.Kind != deploy.Desktop && r.Bernoulli(0.25) {
		cfg.EnableCDN = true
	}
	cfg.Shards = pickShards(r)
	return cfg
}

// genMOOC composes a growing course. Three of four cases stay at a
// DES-feasible scale so the queueing invariants run; the fourth is a
// full MOOC-scale multi-week course that exercises the fluid model and
// the generator-level envelope bound at 10^4-10^5 students.
func genMOOC(r *sim.RNG) scenario.Config {
	fluidScale := r.Intn(4) == 0
	cfg := scenario.Config{
		Diurnal: pickDiurnal(r),
		Scaler:  pickScaler(r),
		Access:  network.UrbanBroadband,
	}
	if r.Bernoulli(0.3) {
		cfg.Diurnal = workload.GlobalCohort()
	}
	if fluidScale {
		weeks := between(r, 1, 3)
		cfg.Duration = time.Duration(weeks) * 7 * 24 * time.Hour
		cfg.ReqPerStudentHour = float64(between(r, 5, 10))
		cfg.Kind = []deploy.Kind{deploy.Public, deploy.Private, deploy.Hybrid}[r.Intn(3)]
		start := between(r, 5000, 10000)
		if r.Bernoulli(0.5) {
			cfg.Growth = workload.LogisticGrowth(start, start*between(r, 4, 10),
				cfg.Duration*time.Duration(between(r, 30, 50))/100)
		} else {
			cfg.Growth = workload.LinearGrowth(start, start*between(r, 3, 8),
				cfg.Duration*time.Duration(between(r, 40, 75))/100)
		}
		cfg.Shards = pickShards(r)
		return cfg
	}
	cfg.Duration = time.Duration(between(r, 2, 3)) * time.Hour
	cfg.ReqPerStudentHour = float64(between(r, 20, 40))
	cfg.Kind = []deploy.Kind{deploy.Public, deploy.Hybrid}[r.Intn(2)]
	start := between(r, 300, 600)
	if r.Bernoulli(0.5) {
		cfg.Growth = workload.LogisticGrowth(start, start*between(r, 3, 6),
			cfg.Duration*time.Duration(between(r, 30, 60))/100)
	} else {
		cfg.Growth = workload.LinearGrowth(start, start*between(r, 3, 6),
			cfg.Duration*time.Duration(between(r, 40, 75))/100)
	}
	if r.Bernoulli(0.3) {
		cfg.Storms = append(cfg.Storms, randomDeadlineStorm(r, cfg.Duration))
	}
	cfg.Shards = pickShards(r)
	return cfg
}

// genStorm composes figure10-class stress: one or two deadline storms,
// possibly a join spike, on a public elastic fleet.
func genStorm(r *sim.RNG) scenario.Config {
	cfg := scenario.Config{
		Kind:              deploy.Public,
		Students:          between(r, 400, 1000),
		ReqPerStudentHour: float64(between(r, 30, 50)),
		Duration:          time.Duration(between(r, 2, 4)) * time.Hour,
		Scaler: []scenario.ScalerKind{
			scenario.ScalerReactive, scenario.ScalerScheduled, scenario.ScalerPredictive,
		}[r.Intn(3)],
		Access: network.UrbanBroadband,
	}
	if r.Bernoulli(0.5) {
		cfg.Diurnal = workload.FlatDiurnal()
	} else {
		cfg.Diurnal = workload.CampusDiurnal()
	}
	for n := between(r, 1, 2); n > 0; n-- {
		cfg.Storms = append(cfg.Storms, randomDeadlineStorm(r, cfg.Duration))
	}
	if r.Bernoulli(0.5) {
		cfg.Joins = append(cfg.Joins, randomJoinStorm(r, cfg.Duration))
	}
	cfg.Shards = pickShards(r)
	return cfg
}

// genHybrid composes the auto-fidelity planner's home regime: a
// DES-feasible course whose deadline storms (and optional join spike or
// exam crowd) force the planner to open request-level windows inside an
// otherwise fluid horizon. Half the cases also perturb the planner
// knobs themselves, so the window/segment partition is fuzzed along
// with the load shape.
func genHybrid(r *sim.RNG) scenario.Config {
	cfg := scenario.Config{
		// Mostly elastic deployments: the seam stitching's interesting
		// state (warm fleet, backlog, CDN edge) lives on the public side.
		Kind:              []deploy.Kind{deploy.Public, deploy.Public, deploy.Hybrid, deploy.Private}[r.Intn(4)],
		Students:          between(r, 300, 800),
		ReqPerStudentHour: float64(between(r, 20, 40)),
		Duration:          time.Duration(between(r, 3, 6)) * time.Hour,
		Diurnal:           pickDiurnal(r),
		Scaler:            pickScaler(r),
		Access:            network.UrbanBroadband,
	}
	for n := between(r, 1, 2); n > 0; n-- {
		cfg.Storms = append(cfg.Storms, randomDeadlineStorm(r, cfg.Duration))
	}
	if r.Bernoulli(0.4) {
		cfg.Joins = append(cfg.Joins, randomJoinStorm(r, cfg.Duration))
	}
	if r.Bernoulli(0.25) {
		cfg.Crowds = append(cfg.Crowds, randomCrowd(r, cfg.Duration))
	}
	if r.Bernoulli(0.25) {
		cfg.EnableCDN = true
	}
	if r.Bernoulli(0.5) {
		// Perturb the planner: intensity in [1.2, 3.0], guard in [5, 20]
		// minutes. The plan must stay a pure function of the config for
		// any knob setting.
		cfg.HybridIntensity = 1.2 + float64(between(r, 0, 18))/10
		cfg.HybridGuard = betweenMin(r, 5, 20)
	}
	cfg.Shards = pickShards(r)
	return cfg
}

// genChaos composes outage scenarios: flaky rural last miles, a private
// host destroyed mid-run, and the live threat model — the §IV.B risks
// injected at random times.
func genChaos(r *sim.RNG) scenario.Config {
	cfg := scenario.Config{
		Kind:              []deploy.Kind{deploy.Public, deploy.Private, deploy.Hybrid}[r.Intn(3)],
		Students:          between(r, 300, 900),
		ReqPerStudentHour: float64(between(r, 30, 60)),
		Duration:          time.Duration(between(r, 2, 4)) * time.Hour,
		Diurnal:           pickDiurnal(r),
		Scaler:            scenario.ScalerReactive,
		Access:            network.UrbanBroadband,
	}
	if r.Bernoulli(0.5) {
		cfg.Access = network.RuralDSL
	}
	if cfg.Kind != deploy.Public && r.Bernoulli(0.7) {
		cfg.HostFailureAt = cfg.Duration * time.Duration(between(r, 25, 60)) / 100
		cfg.HostRecoveryAfter = betweenMin(r, 20, 60)
	}
	cfg.EnableThreats = r.Bernoulli(0.5)
	if r.Bernoulli(0.4) {
		cfg.Crowds = append(cfg.Crowds, randomCrowd(r, cfg.Duration))
	}
	cfg.Shards = pickShards(r)
	return cfg
}
