package metamorph

import (
	"strings"
	"testing"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/scenario"
	"elearncloud/internal/workload"
)

// TestFamiliesRegistry: every family has a name, a description, at
// least one tag, and a generator; names are unique; FindFamily round-
// trips and rejects unknowns.
func TestFamiliesRegistry(t *testing.T) {
	fams := Families()
	if len(fams) < 4 {
		t.Fatalf("Families() = %d entries, want >= 4", len(fams))
	}
	seen := map[string]bool{}
	for _, f := range fams {
		if f.Name == "" || f.Desc == "" || f.gen == nil {
			t.Errorf("family %+v missing name, description or generator", f)
		}
		if len(f.Tags) == 0 {
			t.Errorf("family %s has no tags", f.Name)
		}
		for _, tag := range f.Tags {
			if !strings.HasPrefix(tag, "@") {
				t.Errorf("family %s tag %q does not start with @", f.Name, tag)
			}
		}
		if seen[f.Name] {
			t.Errorf("duplicate family name %s", f.Name)
		}
		seen[f.Name] = true

		got, err := FindFamily(f.Name)
		if err != nil || got.Name != f.Name {
			t.Errorf("FindFamily(%s) = %v, %v", f.Name, got.Name, err)
		}
	}
	if _, err := FindFamily("nope"); err == nil {
		t.Error("FindFamily(nope) did not error")
	}
}

// TestCaseDeterminism: Family.Case is a pure function of the case seed —
// same seed, same config; distinct seeds, distinct configs (on a
// population-sized sample).
func TestCaseDeterminism(t *testing.T) {
	for _, f := range Families() {
		seed := CaseSeed(1, f.Name, 0)
		a, b := f.Case(seed), f.Case(seed)
		da, db := strings.Join(DescribeConfig(a.Cfg), "\n"), strings.Join(DescribeConfig(b.Cfg), "\n")
		if da != db {
			t.Errorf("%s: same case seed produced different configs:\n%s\nvs\n%s", f.Name, da, db)
		}
		if a.Cfg.Seed == 0 {
			t.Errorf("%s: generated config has zero scenario seed", f.Name)
		}
		if a.Cfg.Seed == seed {
			t.Errorf("%s: scenario seed equals the case seed — derivations must decorrelate", f.Name)
		}
		other := f.Case(CaseSeed(1, f.Name, 1))
		if strings.Join(DescribeConfig(other.Cfg), "\n") == da && other.Cfg.Seed == a.Cfg.Seed {
			t.Errorf("%s: distinct case seeds produced identical cases", f.Name)
		}
	}
}

// TestCaseSeedDerivation: case seeds decorrelate across run seeds,
// families, and indices.
func TestCaseSeedDerivation(t *testing.T) {
	seen := map[uint64]string{}
	for _, runSeed := range []uint64{1, 2} {
		for _, fam := range []string{"campus", "mooc", "storm", "chaos"} {
			for i := 0; i < 5; i++ {
				s := CaseSeed(runSeed, fam, i)
				if prev, dup := seen[s]; dup {
					t.Fatalf("CaseSeed collision: (%d,%s,%d) == %s", runSeed, fam, i, prev)
				}
				seen[s] = fam
			}
		}
	}
}

// TestGeneratedConfigsAreValid: every family's configs pass the
// workload generator's and the scenario runner's validation across a
// spread of seeds. Fluid-scale configs are validated via FluidRun;
// DES-scale ones must build a generator cleanly.
func TestGeneratedConfigsAreValid(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	for _, f := range Families() {
		for i := 0; i < n; i++ {
			c := f.Case(CaseSeed(7, f.Name, i))
			if _, err := workload.NewGenerator(workloadConfig(c.Cfg)); err != nil {
				t.Errorf("%s case %d: invalid workload config: %v\n%s",
					f.Name, i, err, strings.Join(DescribeConfig(c.Cfg), "\n"))
			}
			if c.Cfg.Kind != deploy.Desktop {
				if _, err := scenario.FluidRun(c.Cfg); err != nil {
					t.Errorf("%s case %d: FluidRun rejected config: %v", f.Name, i, err)
				}
			}
		}
	}
}

// TestDescribeConfigCompact: generated configs describe in few lines
// (the repro budget) and carry the load shape.
func TestDescribeConfigCompact(t *testing.T) {
	cfg := scenario.Config{
		Kind:     deploy.Private,
		Students: 500,
		Duration: 2 * time.Hour,
		Storms: []workload.DeadlineStorm{
			{Deadline: 90 * time.Minute, Ramp: time.Hour, PeakMult: 6},
		},
	}
	lines := DescribeConfig(cfg)
	if len(lines) < 2 || len(lines) > 5 {
		t.Fatalf("DescribeConfig = %d lines, want 2..5:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"students=500", "storm", "peak=6x"} {
		if !strings.Contains(joined, want) {
			t.Errorf("DescribeConfig missing %q:\n%s", want, joined)
		}
	}
}

// TestReproCommand pins the repro line format the nightly lane prints.
func TestReproCommand(t *testing.T) {
	got := ReproCommand("storm", 0xbeef)
	want := "go run ./cmd/elfuzz -family storm -case-seed 0xbeef -minimize"
	if got != want {
		t.Fatalf("ReproCommand = %q, want %q", got, want)
	}
}

// TestFingerprintDistinguishes: fingerprints are stable for a repeated
// run and differ across seeds.
func TestFingerprintDistinguishes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs request-level scenarios")
	}
	cfg := scenario.Config{Seed: 11, Students: 150, Duration: time.Hour, Diurnal: workload.FlatDiurnal()}
	a, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("same config+seed produced different fingerprints")
	}
	cfg.Seed = 12
	c, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("different seeds produced identical fingerprints")
	}
}
