package metamorph

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"elearncloud/internal/core"
	"elearncloud/internal/cost"
	"elearncloud/internal/scenario"
	"elearncloud/internal/sim"
	"elearncloud/internal/workload"
)

// This file is the advisor invariant: eladvisor's -forecast
// recommendation must be a function of the question, not of the
// incidental knobs used to ask it. The check evaluates a scaled-down
// plan grid (core.ForecastFrontier) through a growth curve derived
// from the generated case and asserts three metamorphic relations:
//
//   - stability under irrelevant perturbation — re-seeding the
//     simulation, shifting the diurnal phase by an hour, and toggling
//     the CDN when egress is not driving the bill must all leave the
//     recommended (model, scaler, mix) unchanged;
//   - weak budget monotonicity — walking BestUnderBudget up a budget
//     ladder over the same evaluated points must never recommend a
//     slower plan at a looser budget;
//   - the recommendation must sit on the Pareto frontier of its own
//     point set (a dominated recommendation means the selection and
//     the frontier disagree about the same data).
//
// Stability is only meaningful when the decision is not a coin flip:
// when the runner-up plan costs within advisorMargin of the winner,
// honest simulation noise can flip the argmin and the case is skipped
// as marginal, the same way the band invariants skip threshold
// regimes.

// Advisor grid scale-down: the fuzzed case supplies the question's
// shape (growth kind, demand intensity, CDN posture), but the grid
// itself runs at a fixed small scale so the 4 grid evaluations × 7
// simulations per case stay inside the interactive fuzz budget.
const (
	advisorMinStudents = 160
	advisorMaxStudents = 300
	advisorMinReq      = 20
	advisorMaxReq      = 30
	advisorHorizon     = 100 * time.Minute
	// advisorMargin is the decision-margin gate: the stability clauses
	// only apply when the runner-up costs at least 10% more than the
	// winner, so a legitimate near-tie is skipped rather than banded.
	advisorMargin = 1.10
	// advisorCDNDelta bounds "egress not binding": if toggling the CDN
	// moves any plan's bill by more than this fraction, the toggle is a
	// real cost knob for this case and the CDN clause does not apply.
	advisorCDNDelta = 0.02
	// advisorSLOMult derives the P95 SLO from the base evaluation (SLO
	// = multiple of the best observed P95), so every case has at least
	// one compliant plan to recommend.
	advisorSLOMult = 2.0
)

// advisorDay is the gentle day shape the advisor grid runs under:
// multipliers within ±12% of flat, so a one-hour phase shift moves the
// offered-load integral over the horizon by a few percent — enough to
// perturb the simulation, small against the advisorMargin gate.
func advisorDay() *workload.DiurnalProfile {
	return workload.NewDiurnalProfile([24]float64{
		1.00, 1.05, 1.10, 1.12, 1.10, 1.05,
		1.00, 0.95, 0.92, 0.90, 0.92, 0.95,
		1.00, 1.05, 1.10, 1.12, 1.10, 1.05,
		1.00, 0.95, 0.92, 0.90, 0.95, 1.00,
	})
}

// advisorForecast derives the scaled-down forecast question from a
// generated case: the growth shape and CDN posture come from the case,
// the scale is clamped to the fuzz budget.
func advisorForecast(cfg scenario.Config, caseSeed uint64) core.ForecastConfig {
	pop := float64(cfg.Students)
	if cfg.Growth != nil {
		pop = cfg.Growth.Max()
	}
	students := clampInt(int(pop), advisorMinStudents, advisorMaxStudents)
	req := cfg.ReqPerStudentHour
	if req == 0 {
		req = 50
	}
	req = math.Min(math.Max(req, advisorMinReq), advisorMaxReq)

	start := students / 4
	var growth *workload.Growth
	if cfg.Growth != nil && strings.HasPrefix(cfg.Growth.String(), "logistic") {
		growth = workload.LogisticGrowth(start, students, 40*time.Minute)
	} else {
		growth = workload.LinearGrowth(start, students, 50*time.Minute)
	}
	return core.ForecastConfig{
		Seed:              sim.SeedFor(caseSeed, "metamorph/advisor"),
		Growth:            growth,
		ReqPerStudentHour: req,
		Duration:          advisorHorizon,
		Diurnal:           advisorDay(),
		EnableCDN:         cfg.EnableCDN,
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// planKey identifies a plan across evaluations: the knob settings, not
// the simulated outcome.
func planKey(p cost.PlanPoint) string {
	return p.Model + "/" + p.Scaler + "/" + p.Mix
}

// checkAdvisor evaluates the forecast grid four times — base, re-seeded,
// phase-shifted, CDN-toggled — and checks the stability, monotonicity
// and frontier-membership relations described above.
func checkAdvisor(cfg scenario.Config, caseSeed uint64) (*Violation, string) {
	fc := advisorForecast(cfg, caseSeed)
	base, err := core.ForecastFrontier(fc)
	if err != nil {
		return &Violation{"advisor", "base grid failed: " + err.Error()}, ""
	}
	slo := minP95(base) * advisorSLOMult
	rec, ok := cost.CheapestCompliant(base, slo)
	if !ok {
		return &Violation{"advisor", fmt.Sprintf("no plan meets the derived SLO %.3fs — CheapestCompliant disagrees with minP95", slo)}, ""
	}

	// Frontier membership: the cheapest compliant plan is nondominated
	// by construction (anything dominating it would be a cheaper, at
	// least as fast, compliant plan), so it must appear on the frontier
	// of its own point set.
	onFrontier := false
	for _, p := range cost.ParetoSearch(base) {
		if planKey(p) == planKey(rec) {
			onFrontier = true
			break
		}
	}
	if !onFrontier {
		return &Violation{"advisor",
			fmt.Sprintf("recommended plan %s is not on the Pareto frontier of its own grid", planKey(rec))}, ""
	}

	// Budget monotonicity: walking the budget up through every evaluated
	// price, the recommended P95 must never get worse.
	if v := checkBudgetLadder(base); v != nil {
		return v, ""
	}

	// Decision-margin gate for the stability clauses.
	margin := runnerUpMargin(base, rec, slo)
	if margin < advisorMargin {
		return nil, fmt.Sprintf("decision margin %.3f below %.2f — a near-tie is legitimately perturbation-sensitive", margin, advisorMargin)
	}

	// Seed perturbation: a different simulation seed asks the same
	// question of the same physics.
	alt := fc
	alt.Seed = sim.SeedFor(caseSeed, "metamorph/advisor/alt")
	if v, err := stableUnder(alt, slo, rec, "re-seeding the simulation"); err != nil {
		return &Violation{"advisor", "re-seeded grid failed: " + err.Error()}, ""
	} else if v != nil {
		return v, ""
	}

	// Diurnal phase shift: the same day shape an hour later is the same
	// institution in a different timezone.
	shifted := fc
	shifted.Diurnal = workload.SuperposeTimezones([]workload.TimezoneWave{
		{Shift: time.Hour, Weight: 1, Profile: advisorDay()},
	})
	if v, err := stableUnder(shifted, slo, rec, "a one-hour diurnal phase shift"); err != nil {
		return &Violation{"advisor", "phase-shifted grid failed: " + err.Error()}, ""
	} else if v != nil {
		return v, ""
	}

	// CDN toggle, only where egress is not binding: if flipping the CDN
	// moves any plan's bill beyond advisorCDNDelta, the toggle is a real
	// knob for this case and stability is not owed.
	toggled := fc
	toggled.EnableCDN = !fc.EnableCDN
	tPoints, err := core.ForecastFrontier(toggled)
	if err != nil {
		return &Violation{"advisor", "CDN-toggled grid failed: " + err.Error()}, ""
	}
	if maxUSDShift(base, tPoints) <= advisorCDNDelta {
		tRec, ok := cost.CheapestCompliant(tPoints, slo)
		if !ok || planKey(tRec) != planKey(rec) {
			got := "no compliant plan"
			if ok {
				got = planKey(tRec)
			}
			return &Violation{"advisor",
				fmt.Sprintf("toggling the CDN (egress not binding, max bill shift ≤ %.1f%%) moved the recommendation from %s to %s",
					advisorCDNDelta*100, planKey(rec), got)}, ""
		}
	}
	return nil, ""
}

// stableUnder re-evaluates the grid under a perturbed config and
// reports a violation if the recommendation moved.
func stableUnder(fc core.ForecastConfig, slo float64, want cost.PlanPoint, perturbation string) (*Violation, error) {
	points, err := core.ForecastFrontier(fc)
	if err != nil {
		return nil, err
	}
	got, ok := cost.CheapestCompliant(points, slo)
	if !ok || planKey(got) != planKey(want) {
		gotKey := "no compliant plan"
		if ok {
			gotKey = planKey(got)
		}
		return &Violation{"advisor",
			fmt.Sprintf("%s moved the recommendation from %s to %s", perturbation, planKey(want), gotKey)}, nil
	}
	return nil, nil
}

// checkBudgetLadder: over one evaluated point set, raising the budget
// through every observed price must never recommend a slower plan.
func checkBudgetLadder(points []cost.PlanPoint) *Violation {
	budgets := make([]float64, 0, len(points))
	for _, p := range points {
		budgets = append(budgets, p.USD)
	}
	sort.Float64s(budgets)
	prev := math.Inf(-1)
	prevBudget := 0.0
	for _, b := range budgets {
		best, ok := cost.BestUnderBudget(points, b)
		if !ok {
			continue
		}
		if prev > math.Inf(-1) && best.P95 > prev {
			return &Violation{"advisor",
				fmt.Sprintf("budget $%.2f recommends P95 %.3fs, slower than the tighter budget $%.2f's %.3fs — BestUnderBudget is not weakly monotone",
					b, best.P95, prevBudget, prev)}
		}
		prev, prevBudget = best.P95, b
	}
	return nil
}

// runnerUpMargin returns how much more the cheapest rival compliant
// plan costs relative to the winner (+Inf when the winner is the only
// compliant plan). Rivals with exactly the winner's (USD, P95) are not
// rivals: a purchase mix that optimized to zero reserved slots prices
// identically to on-demand by construction, shifts identically under
// any perturbation, and the deterministic SortPlans tie-break always
// picks the same label among exact ties.
func runnerUpMargin(points []cost.PlanPoint, rec cost.PlanPoint, slo float64) float64 {
	best := math.Inf(1)
	for _, p := range points {
		if p.P95 <= slo && planKey(p) != planKey(rec) &&
			!(p.USD == rec.USD && p.P95 == rec.P95) && p.USD < best {
			best = p.USD
		}
	}
	if math.IsInf(best, 1) || rec.USD <= 0 {
		return math.Inf(1)
	}
	return best / rec.USD
}

// maxUSDShift returns the largest relative bill change between two
// evaluations of the same grid, matched by plan identity.
func maxUSDShift(a, b []cost.PlanPoint) float64 {
	byKey := make(map[string]float64, len(a))
	for _, p := range a {
		byKey[planKey(p)] = p.USD
	}
	shift := 0.0
	for _, p := range b {
		base, ok := byKey[planKey(p)]
		if !ok || base <= 0 {
			continue
		}
		shift = math.Max(shift, math.Abs(p.USD-base)/base)
	}
	return shift
}

// minP95 returns the fastest tail on the grid.
func minP95(points []cost.PlanPoint) float64 {
	best := math.Inf(1)
	for _, p := range points {
		best = math.Min(best, p.P95)
	}
	return best
}
