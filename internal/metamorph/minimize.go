package metamorph

import (
	"fmt"
	"math"
	"time"

	"elearncloud/internal/network"
	"elearncloud/internal/scenario"
	"elearncloud/internal/workload"
)

// MinimizeResult is the shrink loop's outcome.
type MinimizeResult struct {
	// Cfg is the smallest still-failing config found.
	Cfg scenario.Config
	// Evals counts how many times the failing predicate ran.
	Evals int
	// Steps names the transformations that were accepted, in order.
	Steps []string
}

// minTransform is one candidate shrink: apply returns the transformed
// config and whether the transformation changed anything (an unchanged
// config is not re-evaluated).
type minTransform struct {
	name  string
	apply func(scenario.Config) (scenario.Config, bool)
}

// transforms is the fixed shrink order: cheapest-to-verify and
// biggest-reduction first, cosmetic simplifications last. The loop
// restarts from the top after every accepted shrink, so e.g. the
// horizon keeps halving as long as the failure survives.
func transforms() []minTransform {
	out := []minTransform{
		{"halve-duration", func(c scenario.Config) (scenario.Config, bool) {
			if c.Duration < time.Hour {
				return c, false
			}
			c.Duration = (c.Duration / 2).Truncate(time.Minute)
			clampWindows(&c)
			return c, true
		}},
	}
	// Storm/join/crowd drops are generated for a fixed index range so
	// the transform list itself stays static; out-of-range indices
	// report "unchanged" and cost nothing.
	for i := 0; i < 4; i++ {
		i := i
		out = append(out, minTransform{fmt.Sprintf("drop-storm-%d", i),
			func(c scenario.Config) (scenario.Config, bool) {
				if i >= len(c.Storms) {
					return c, false
				}
				c.Storms = append(append([]workload.DeadlineStorm{}, c.Storms[:i]...), c.Storms[i+1:]...)
				return c, true
			}})
	}
	for i := 0; i < 4; i++ {
		i := i
		out = append(out, minTransform{fmt.Sprintf("drop-join-%d", i),
			func(c scenario.Config) (scenario.Config, bool) {
				if i >= len(c.Joins) {
					return c, false
				}
				c.Joins = append(append([]workload.JoinStorm{}, c.Joins[:i]...), c.Joins[i+1:]...)
				return c, true
			}})
		out = append(out, minTransform{fmt.Sprintf("drop-crowd-%d", i),
			func(c scenario.Config) (scenario.Config, bool) {
				if i >= len(c.Crowds) {
					return c, false
				}
				c.Crowds = append(append([]workload.FlashCrowd{}, c.Crowds[:i]...), c.Crowds[i+1:]...)
				return c, true
			}})
	}
	out = append(out,
		minTransform{"drop-growth", func(c scenario.Config) (scenario.Config, bool) {
			if c.Growth == nil {
				return c, false
			}
			if c.Students == 0 {
				c.Students = int(math.Ceil(c.Growth.Max()))
			}
			c.Growth = nil
			return c, true
		}},
		minTransform{"halve-students", func(c scenario.Config) (scenario.Config, bool) {
			if c.Growth != nil || c.Students < 100 {
				return c, false
			}
			c.Students /= 2
			return c, true
		}},
		minTransform{"flat-diurnal", func(c scenario.Config) (scenario.Config, bool) {
			if c.Diurnal == nil {
				return c, false
			}
			c.Diurnal = nil
			return c, true
		}},
		minTransform{"drop-calendar", func(c scenario.Config) (scenario.Config, bool) {
			if c.Calendar == nil {
				return c, false
			}
			c.Calendar = nil
			return c, true
		}},
		minTransform{"no-cdn", func(c scenario.Config) (scenario.Config, bool) {
			if !c.EnableCDN {
				return c, false
			}
			c.EnableCDN = false
			return c, true
		}},
		minTransform{"no-threats", func(c scenario.Config) (scenario.Config, bool) {
			if !c.EnableThreats {
				return c, false
			}
			c.EnableThreats = false
			return c, true
		}},
		minTransform{"no-host-failure", func(c scenario.Config) (scenario.Config, bool) {
			if c.HostFailureAt == 0 {
				return c, false
			}
			c.HostFailureAt, c.HostRecoveryAfter = 0, 0
			return c, true
		}},
		minTransform{"default-access", func(c scenario.Config) (scenario.Config, bool) {
			if c.Access.Name == "" || c.Access.Name == network.UrbanBroadband.Name {
				return c, false
			}
			c.Access = network.AccessProfile{}
			return c, true
		}},
		minTransform{"reactive-scaler", func(c scenario.Config) (scenario.Config, bool) {
			if c.Scaler == 0 || c.Scaler == scenario.ScalerReactive {
				return c, false
			}
			c.Scaler = scenario.ScalerReactive
			return c, true
		}},
	)
	return out
}

// clampWindows drops load windows a shrunk horizon no longer contains
// (a storm whose entire ramp is past the end exerts no load and would
// only clutter the repro).
func clampWindows(c *scenario.Config) {
	h := horizonOf(*c)
	var storms []workload.DeadlineStorm
	for _, s := range c.Storms {
		if s.Deadline-s.Ramp < h {
			storms = append(storms, s)
		}
	}
	c.Storms = storms
	var joins []workload.JoinStorm
	for _, j := range c.Joins {
		if j.Start < h {
			joins = append(joins, j)
		}
	}
	c.Joins = joins
	var crowds []workload.FlashCrowd
	for _, cr := range c.Crowds {
		if cr.Start < h {
			crowds = append(crowds, cr)
		}
	}
	c.Crowds = crowds
}

// Minimize greedily shrinks cfg while failing keeps returning true,
// restarting the transform list after every accepted step, and returns
// the smallest still-failing config. The loop is fully deterministic:
// fixed transform order, no randomness, so the same (config, predicate)
// always minimizes to the same repro. maxEvals bounds predicate runs
// (<= 0 means 80); on exhaustion the best config so far is returned.
func Minimize(cfg scenario.Config, failing func(scenario.Config) bool, maxEvals int) MinimizeResult {
	if maxEvals <= 0 {
		maxEvals = 80
	}
	res := MinimizeResult{Cfg: cfg}
	ts := transforms()
	for {
		shrunk := false
		for _, tr := range ts {
			cand, changed := tr.apply(res.Cfg)
			if !changed {
				continue
			}
			if res.Evals >= maxEvals {
				return res
			}
			res.Evals++
			if failing(cand) {
				res.Cfg = cand
				res.Steps = append(res.Steps, tr.name)
				shrunk = true
				break // restart from the top on the smaller config
			}
		}
		if !shrunk {
			return res
		}
	}
}
