// Package workload generates realistic e-learning traffic: diurnal
// day-shapes, a semester calendar with teaching/exam/vacation weeks,
// exam-day flash crowds, and a non-homogeneous Poisson arrival process
// over the lms request mix. Traces can be recorded and replayed as
// JSON for reproducible cross-model comparisons. figure1 plots the
// shapes; every scenario run consumes them.
//
// Entry points:
//
//   - NewGenerator(Config) is the main faucet: it drives a
//     sim NHPP whose rate is the product of the configured
//     DiurnalProfile (CampusDiurnal, FlatDiurnal, or a custom
//     NewDiurnalProfile), the Calendar week kind, and any FlashCrowd
//     windows, and yields an ArrivalStream of Arrivals classified by
//     the lms Mix.
//   - StandardSemester() is the 18-week Calendar (NewCalendar of Weeks
//     for custom terms) behind the semester-scale studies; WeekKind
//     distinguishes teaching, exam and vacation load.
//   - FlashCrowd describes an exam spike (start, end, multiplier,
//     exam-heavy traffic flag) — the §IV.A scalability stressor
//     table5, figure2 and examples/examday inject.
//   - Trace / ReadTrace record and replay a generated arrival sequence
//     as JSON, pinning one workload across deployment models.
package workload
