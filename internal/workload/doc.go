// Package workload generates realistic e-learning traffic: diurnal
// day-shapes, a semester calendar with teaching/exam/vacation weeks,
// exam-day flash crowds, and a non-homogeneous Poisson arrival process
// over the lms request mix. Traces can be recorded and replayed as
// JSON for reproducible cross-model comparisons. figure1 plots the
// shapes; every scenario run consumes them.
//
// Entry points:
//
//   - NewGenerator(Config) is the main faucet: it drives a
//     sim NHPP whose rate is the product of the configured
//     DiurnalProfile (CampusDiurnal, FlatDiurnal, or a custom
//     NewDiurnalProfile), the Calendar week kind, and any FlashCrowd
//     windows, and yields an ArrivalStream of Arrivals classified by
//     the lms Mix.
//   - StandardSemester() is the 18-week Calendar (NewCalendar of Weeks
//     for custom terms) behind the semester-scale studies; WeekKind
//     distinguishes teaching, exam and vacation load.
//   - FlashCrowd describes an exam spike (start, end, multiplier,
//     exam-heavy traffic flag) — the §IV.A scalability stressor
//     table5, figure2 and examples/examday inject.
//   - The MOOC-scale family (mooc.go) models courses that outgrow a
//     campus: LogisticGrowth / LinearGrowth make the active population
//     a curve instead of a constant (Config.Growth),
//     SuperposeTimezones / GlobalCohort build the flattened day shape
//     of a multi-timezone cohort (plugs into Config.Diurnal), and
//     DeadlineStorm / JoinStorm (Config.Storms, Config.Joins) are the
//     procrastination ramp with a submission cliff and the
//     near-simultaneous lecture join rush. Generator.Envelope exposes
//     the piecewise thinning bound that keeps generation O(arrivals)
//     on those nonstationary shapes (BenchmarkMOOCAcceptance pins the
//     acceptance rate at 10^5 students); table9, figure10 and
//     examples/mooc consume them.
//   - Trace / ReadTrace record and replay a generated arrival sequence
//     as JSON, pinning one workload across deployment models.
package workload
