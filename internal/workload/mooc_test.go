package workload

import (
	"bytes"
	"math"
	"testing"
	"time"

	"elearncloud/internal/sim"
)

func TestLogisticGrowthShape(t *testing.T) {
	g := LogisticGrowth(50000, 500000, 5*7*24*time.Hour)
	if got := g.At(0); math.Abs(got-50000) > 1 {
		t.Fatalf("At(0) = %v, want ~50000", got)
	}
	if got := g.At(5 * 7 * 24 * time.Hour); math.Abs(got-250000) > 1 {
		t.Fatalf("At(midpoint) = %v, want 250000", got)
	}
	if got := g.At(100 * 7 * 24 * time.Hour); math.Abs(got-500000) > 1 {
		t.Fatalf("At(far) = %v, want ~500000", got)
	}
	if g.Max() != 500000 {
		t.Fatalf("Max = %v", g.Max())
	}
	// Monotone nondecreasing, clamped below zero.
	last := g.At(-time.Hour)
	for d := time.Duration(0); d <= 10*7*24*time.Hour; d += 6 * time.Hour {
		v := g.At(d)
		if v < last {
			t.Fatalf("not monotone at %v: %v < %v", d, v, last)
		}
		last = v
	}
}

func TestLinearGrowthShape(t *testing.T) {
	g := LinearGrowth(500, 2000, 2*time.Hour)
	if got := g.At(0); got != 500 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := g.At(time.Hour); got != 1250 {
		t.Fatalf("At(1h) = %v, want 1250", got)
	}
	if got := g.At(3 * time.Hour); got != 2000 {
		t.Fatalf("At(3h) = %v, want 2000 (holds after ramp)", got)
	}
	if g.Max() != 2000 {
		t.Fatalf("Max = %v", g.Max())
	}
	if g.String() == "" || LogisticGrowth(1, 3, time.Hour).String() == "" {
		t.Fatal("empty String")
	}
}

func TestGrowthPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"logistic start>=cap": func() { LogisticGrowth(10, 10, time.Hour) },
		"logistic zero start": func() { LogisticGrowth(0, 10, time.Hour) },
		// start >= capacity/2 would derive k <= 0: a flat or DECAYING
		// curve masquerading as growth, violating monotonicity.
		"logistic start at half capacity":    func() { LogisticGrowth(5, 10, time.Hour) },
		"logistic start above half capacity": func() { LogisticGrowth(400, 500, time.Hour) },
		"logistic no midpoint":               func() { LogisticGrowth(1, 10, 0) },
		"linear final<start":                 func() { LinearGrowth(10, 5, time.Hour) },
		"linear zero ramp":                   func() { LinearGrowth(1, 10, 0) },
		"zero value":                         func() { (&Growth{}).At(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSuperposeTimezonesFlattensThePeak(t *testing.T) {
	global := GlobalCohort()
	campus := CampusDiurnal()
	if global.Peak() >= campus.Peak() {
		t.Fatalf("superposition did not flatten: global peak %v vs campus %v",
			global.Peak(), campus.Peak())
	}
	if global.Peak() >= 1.6 {
		t.Fatalf("global cohort peak = %v, want < 1.6 (the doc's claim)", global.Peak())
	}
	// ...and fills the overnight trough.
	if global.At(3*time.Hour) <= campus.At(3*time.Hour) {
		t.Fatal("superposition should raise the overnight floor")
	}
	// The load is redistributed, not destroyed: the daily mean is
	// preserved up to the hourly-anchor resampling.
	if math.Abs(global.Mean()-campus.Mean()) > 0.05 {
		t.Fatalf("mean drifted: %v vs %v", global.Mean(), campus.Mean())
	}
	// A single zero-shift wave reproduces its profile exactly.
	same := SuperposeTimezones([]TimezoneWave{{Shift: 0, Weight: 3, Profile: campus}})
	for h := 0; h < 24; h++ {
		d := time.Duration(h) * time.Hour
		if math.Abs(same.At(d)-campus.At(d)) > 1e-12 {
			t.Fatalf("identity superposition differs at hour %d", h)
		}
	}
}

func TestSuperposeTimezonesPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":           func() { SuperposeTimezones(nil) },
		"negative weight": func() { SuperposeTimezones([]TimezoneWave{{Weight: -1}}) },
		"zero total":      func() { SuperposeTimezones([]TimezoneWave{{Weight: 0}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDeadlineStormShape(t *testing.T) {
	s := DeadlineStorm{Deadline: 2 * time.Hour, Ramp: 90 * time.Minute, PeakMult: 10, Tau: 25 * time.Minute}
	if got := s.MultAt(20 * time.Minute); got != 1 {
		t.Fatalf("before ramp: mult = %v, want 1", got)
	}
	if got := s.MultAt(2 * time.Hour); got != 1 {
		t.Fatalf("at the deadline the cliff has passed: mult = %v, want 1", got)
	}
	// Monotone increasing inside the ramp, approaching PeakMult.
	last := 0.0
	for d := 31 * time.Minute; d < 2*time.Hour; d += time.Minute {
		m := s.MultAt(d)
		if m <= last {
			t.Fatalf("not increasing at %v", d)
		}
		last = m
	}
	if last < 9.5 || last > 10 {
		t.Fatalf("multiplier just before the deadline = %v, want ~10", last)
	}
	// MaxOn bounds MultAt on any window.
	for _, w := range [][2]time.Duration{
		{0, 40 * time.Minute}, {40 * time.Minute, 80 * time.Minute},
		{100 * time.Minute, 119 * time.Minute}, {2 * time.Hour, 3 * time.Hour},
	} {
		bound := s.MaxOn(w[0], w[1])
		for d := w[0]; d < w[1]; d += 17 * time.Second {
			if m := s.MultAt(d); m > bound+1e-12 {
				t.Fatalf("MultAt(%v) = %v exceeds MaxOn(%v,%v) = %v", d, m, w[0], w[1], bound)
			}
		}
	}
}

func TestJoinStormShape(t *testing.T) {
	j := JoinStorm{Start: 15 * time.Minute, Window: 30 * time.Minute, PeakMult: 6, Decay: 5 * time.Minute}
	if got := j.MultAt(10 * time.Minute); got != 1 {
		t.Fatalf("before start: %v", got)
	}
	if got := j.MultAt(15 * time.Minute); math.Abs(got-6) > 1e-12 {
		t.Fatalf("at start: %v, want 6", got)
	}
	if got := j.MultAt(45 * time.Minute); got != 1 {
		t.Fatalf("after window: %v", got)
	}
	// Decreasing inside the window.
	last := math.Inf(1)
	for d := 15 * time.Minute; d < 45*time.Minute; d += time.Minute {
		m := j.MultAt(d)
		if m >= last {
			t.Fatalf("not decreasing at %v", d)
		}
		last = m
	}
	for _, w := range [][2]time.Duration{
		{0, 20 * time.Minute}, {20 * time.Minute, 44 * time.Minute}, {50 * time.Minute, time.Hour},
	} {
		bound := j.MaxOn(w[0], w[1])
		for d := w[0]; d < w[1]; d += 13 * time.Second {
			if m := j.MultAt(d); m > bound+1e-12 {
				t.Fatalf("MultAt(%v) = %v exceeds MaxOn = %v", d, m, bound)
			}
		}
	}
}

func TestMOOCConfigValidation(t *testing.T) {
	// Storm and join sanity failures surface through NewGenerator.
	bad := []Config{
		{Students: 10, ReqPerStudentHour: 1, Storms: []DeadlineStorm{{Deadline: time.Hour, Ramp: 0, PeakMult: 2}}},
		{Students: 10, ReqPerStudentHour: 1, Storms: []DeadlineStorm{{Deadline: time.Minute, Ramp: time.Hour, PeakMult: 2}}},
		{Students: 10, ReqPerStudentHour: 1, Storms: []DeadlineStorm{{Deadline: 2 * time.Hour, Ramp: time.Hour, PeakMult: 0.5}}},
		{Students: 10, ReqPerStudentHour: 1, Joins: []JoinStorm{{Start: 0, Window: 0, PeakMult: 2}}},
		{Students: 10, ReqPerStudentHour: 1, Joins: []JoinStorm{{Start: -time.Minute, Window: time.Hour, PeakMult: 2}}},
		{Students: 10, ReqPerStudentHour: 1, Joins: []JoinStorm{{Start: 0, Window: time.Hour, PeakMult: 0.9}}},
		// Students below the growth capacity.
		{Students: 100, ReqPerStudentHour: 1, Growth: LinearGrowth(50, 500, time.Hour)},
	}
	for i, cfg := range bad {
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// Zero Students is derived from the growth capacity.
	g, err := NewGenerator(Config{ReqPerStudentHour: 1, Growth: LinearGrowth(50, 500, time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if g.Students() != 500 {
		t.Fatalf("derived Students = %d, want 500", g.Students())
	}
}

// moocConfigs are the family's representative shapes, shared by the
// envelope-correctness and determinism properties below (population
// scaled down so the tests stay fast; thinning acceptance is
// scale-invariant in the per-student rate).
func moocConfigs() map[string]Config {
	return map[string]Config{
		"viral-growth": {
			Growth:            LogisticGrowth(1000, 10000, 36*time.Hour),
			ReqPerStudentHour: 2,
		},
		"cohort-ramp": {
			Growth:            LinearGrowth(500, 5000, 8*time.Hour),
			ReqPerStudentHour: 2,
			Diurnal:           FlatDiurnal(),
		},
		"global-waves": {
			Students:          5000,
			ReqPerStudentHour: 2,
			Diurnal:           GlobalCohort(),
		},
		"deadline-storm": {
			Students:          5000,
			ReqPerStudentHour: 2,
			Diurnal:           FlatDiurnal(),
			Storms: []DeadlineStorm{{
				Deadline: 20 * time.Hour, Ramp: 6 * time.Hour, PeakMult: 10,
				Tau: 80 * time.Minute, ExamTraffic: true,
			}},
		},
		"join-storm": {
			Students:          5000,
			ReqPerStudentHour: 2,
			Diurnal:           FlatDiurnal(),
			Joins: []JoinStorm{{
				Start: 2 * time.Hour, Window: time.Hour, PeakMult: 8,
				Decay: 10 * time.Minute, ExamTraffic: true,
			}},
		},
		"everything-at-once": {
			Growth:            LogisticGrowth(1000, 10000, 20*time.Hour),
			ReqPerStudentHour: 2,
			Diurnal:           GlobalCohort(),
			Calendar:          NewCalendar([]Week{{Kind: Teaching, Mult: 1}, {Kind: Exams, Mult: 1.5}}),
			Storms: []DeadlineStorm{{
				Deadline: 30 * time.Hour, Ramp: 8 * time.Hour, PeakMult: 6, ExamTraffic: true,
			}},
			Joins: []JoinStorm{{Start: 10 * time.Hour, Window: time.Hour, PeakMult: 5}},
		},
	}
}

// moocHorizon covers every shape feature above (storm windows, a week
// boundary, most of the growth) while keeping the test fast.
const moocHorizon = 36 * time.Hour

// TestMOOCEnvelopeBoundsRate is the envelope-correctness property: at
// no instant — and in particular at no generated arrival — may the
// instantaneous rate outrun the piecewise thinning bound, and each
// envelope segment must advance.
func TestMOOCEnvelopeBoundsRate(t *testing.T) {
	for name, cfg := range moocConfigs() {
		t.Run(name, func(t *testing.T) {
			g, err := NewGenerator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			env := g.Envelope()
			check := func(at time.Duration) {
				max, until := env(at)
				if until <= at {
					t.Fatalf("envelope segment at %v does not advance (until %v)", at, until)
				}
				if r := g.Rate(at); r > max+1e-9 {
					t.Fatalf("rate %v at %v outruns the envelope bound %v", r, at, max)
				}
			}
			// Dense deterministic scan...
			for at := time.Duration(0); at < moocHorizon; at += 97 * time.Second {
				check(at)
			}
			// ...plus every actual arrival of a generated stream.
			n := g.Generate(sim.NewRNG(7), 0, moocHorizon, func(a Arrival) { check(a.At) })
			if n == 0 {
				t.Fatal("no arrivals generated")
			}
		})
	}
}

// TestMOOCThinningAcceptance pins the performance property the
// piecewise envelope exists for: on every MOOC shape the sampler must
// accept at least ~50% of its thinning candidates (a single global
// bound manages ~10% on a 10x growth curve). The committed
// BenchmarkMOOCAcceptance reports the same ratio at 10^5 students.
func TestMOOCThinningAcceptance(t *testing.T) {
	for name, cfg := range moocConfigs() {
		t.Run(name, func(t *testing.T) {
			g, err := NewGenerator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := g.Stream(sim.NewRNG(13), 0)
			for {
				if _, ok := s.Next(moocHorizon); !ok {
					break
				}
			}
			proposed, accepted := s.Thinning()
			if proposed == 0 {
				t.Fatal("no candidates proposed")
			}
			if rate := float64(accepted) / float64(proposed); rate < 0.5 {
				t.Errorf("thinning acceptance = %.1f%% (%d/%d), want >= 50%%",
					rate*100, accepted, proposed)
			}
		})
	}
}

// TestMaxRateBoundsOverlappingWindows: Rate multiplies every active
// window, so MaxRate must compound a join storm sitting inside a
// deadline ramp (figure10's shape) instead of taking the single
// largest multiplier — fleet sizing reads MaxRate, and an
// under-estimate would silently under-provision the peak.
func TestMaxRateBoundsOverlappingWindows(t *testing.T) {
	deadline := 3 * time.Hour
	g, err := NewGenerator(Config{
		Students:          1000,
		ReqPerStudentHour: 3.6, // base aggregate = 1 req/s
		Diurnal:           FlatDiurnal(),
		Storms: []DeadlineStorm{{
			Deadline: deadline, Ramp: 2 * time.Hour, PeakMult: 10, Tau: 30 * time.Minute,
		}},
		Joins: []JoinStorm{{
			Start: deadline - 10*time.Minute, Window: 30 * time.Minute,
			PeakMult: 6, Decay: 10 * time.Minute,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	bound := g.MaxRate()
	for at := time.Duration(0); at < 4*time.Hour; at += 13 * time.Second {
		if r := g.Rate(at); r > bound {
			t.Fatalf("Rate(%v) = %v exceeds MaxRate %v", at, r, bound)
		}
	}
	// The overlap really stacks: just before the deadline both windows
	// are active and the rate exceeds the larger single multiplier.
	if r := g.Rate(deadline - 9*time.Minute); r <= 10 {
		t.Fatalf("overlap rate = %v, want > 10 (the single largest multiplier)", r)
	}
}

// TestMOOCDeterminism: the (seed, job name) rule holds for every MOOC
// shape — the same seed reproduces the stream arrival for arrival, and
// seeds derived from distinct job names decorrelate it.
func TestMOOCDeterminism(t *testing.T) {
	for name, cfg := range moocConfigs() {
		t.Run(name, func(t *testing.T) {
			gen := func(seed uint64) []Arrival {
				g, err := NewGenerator(cfg)
				if err != nil {
					t.Fatal(err)
				}
				var out []Arrival
				g.Generate(sim.NewRNG(seed), 0, 12*time.Hour, func(a Arrival) { out = append(out, a) })
				return out
			}
			a, b := gen(sim.SeedFor(3, "job-a")), gen(sim.SeedFor(3, "job-a"))
			if len(a) == 0 || len(a) != len(b) {
				t.Fatalf("same (seed, name) diverged: %d vs %d arrivals", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("same (seed, name) diverged at arrival %d", i)
				}
			}
			c := gen(sim.SeedFor(3, "job-b"))
			same := len(a) == len(c)
			if same {
				for i := range a {
					if a[i] != c[i] {
						same = false
						break
					}
				}
			}
			if same {
				t.Fatal("distinct job names produced identical streams")
			}
		})
	}
}

// TestGrowthTraceRoundTrip: a recorded growth workload survives the
// JSON round trip, validates against the derived user-ID space, and
// never assigns a user ID beyond the population active at the arrival.
func TestGrowthTraceRoundTrip(t *testing.T) {
	growth := LinearGrowth(20, 200, 6*time.Hour)
	g, err := NewGenerator(Config{ReqPerStudentHour: 10, Growth: growth, Diurnal: FlatDiurnal()})
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Record(sim.NewRNG(17), 0, 8*time.Hour)
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	if tr.Students != 200 {
		t.Fatalf("trace Students = %d, want the growth capacity 200", tr.Students)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, a := range tr.Arrivals {
		if limit := int(math.Ceil(growth.At(a.At))); a.UserID >= limit {
			t.Fatalf("arrival %d at %v has user %d outside the active population %d",
				i, a.At, a.UserID, limit)
		}
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() || back.Students != tr.Students {
		t.Fatal("round trip changed the trace")
	}
	for i := range back.Arrivals {
		if back.Arrivals[i] != tr.Arrivals[i] {
			t.Fatalf("arrival %d differs after round trip", i)
		}
	}
}

// TestMOOCMixSwitches: exam-flagged storms and joins switch the request
// mix inside their windows, like exam crowds and exam weeks do.
func TestMOOCMixSwitches(t *testing.T) {
	g, err := NewGenerator(Config{
		Students:          100,
		ReqPerStudentHour: 10,
		Storms: []DeadlineStorm{{
			Deadline: 4 * time.Hour, Ramp: time.Hour, PeakMult: 5, ExamTraffic: true,
		}},
		Joins: []JoinStorm{{Start: time.Hour, Window: 30 * time.Minute, PeakMult: 5, ExamTraffic: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.MixAt(30*time.Minute) != g.teachingMix {
		t.Fatal("outside every window the teaching mix should rule")
	}
	if g.MixAt(70*time.Minute) != g.examMix {
		t.Fatal("join storm did not switch the mix")
	}
	if g.MixAt(3*time.Hour+30*time.Minute) != g.examMix {
		t.Fatal("deadline storm did not switch the mix")
	}
	if g.MixAt(4*time.Hour) != g.teachingMix {
		t.Fatal("past the deadline cliff the teaching mix should return")
	}
}
