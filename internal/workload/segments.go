package workload

// This file extracts the hybrid fidelity plan from a generator's
// envelope segments: which stretches of the horizon are quiet enough
// for flow-level integration, and which burst windows (deadline
// storms, join spikes, flash crowds) demand request-level DES. The
// envelope already re-bounds itself around every window edge, so the
// classification inherits its segmentation for free — a burst can
// never hide inside a segment, because no segment straddles a window
// boundary.

import "time"

// BurstWindow is one contiguous stretch of the horizon whose bounded
// arrival rate exceeds the quiet baseline by at least the planner's
// intensity factor — a candidate DES window in a hybrid run.
type BurstWindow struct {
	// Start and End delimit the window, [Start, End), guard margins
	// and grid alignment included.
	Start, End time.Duration
	// PeakBound is the maximum envelope rate bound (req/s) over the
	// window's classified segments — what a DES warm-start sizes its
	// fleet against.
	PeakBound float64
}

// Duration returns the window's length.
func (w BurstWindow) Duration() time.Duration { return w.End - w.Start }

// BurstWindows walks the envelope segmentation over [0, horizon) and
// returns the stretches where the crowd/storm/join multiplier bound
// reaches factor, each padded by guard on both sides, aligned outward
// to the grid (start floored, end ceiled), clamped to [0, horizon],
// and merged where padding makes neighbors touch. Windows come back
// sorted and disjoint. A config with no burst shapes — or a factor
// above every shape's peak — yields nil: the whole horizon is quiet.
//
// The classification is a pure function of (config, horizon, factor,
// guard, grid): no RNG is consulted, so the same plan is produced on
// every shard, at any -parallel, on every run.
func (g *Generator) BurstWindows(horizon time.Duration, factor float64, guard, grid time.Duration) []BurstWindow {
	if horizon <= 0 || factor <= 0 {
		return nil
	}
	if guard < 0 {
		guard = 0
	}
	var wins []BurstWindow
	for t := time.Duration(0); t < horizon; {
		until := g.segmentEnd(t)
		if until > horizon {
			until = horizon
		}
		if g.burstMult(t, until) >= factor {
			bound := g.segmentBound(t, until)
			start, end := t-guard, until+guard
			if n := len(wins); n > 0 && start <= wins[n-1].End {
				if end > wins[n-1].End {
					wins[n-1].End = end
				}
				if bound > wins[n-1].PeakBound {
					wins[n-1].PeakBound = bound
				}
			} else {
				wins = append(wins, BurstWindow{Start: start, End: end, PeakBound: bound})
			}
		}
		t = until
	}
	return mergeWindows(alignWindows(wins, grid, horizon))
}

// alignWindows snaps each window outward to the grid and clamps it to
// [0, horizon]. A non-positive grid skips alignment (clamping still
// applies).
func alignWindows(wins []BurstWindow, grid, horizon time.Duration) []BurstWindow {
	out := wins[:0]
	for _, w := range wins {
		if grid > 0 {
			w.Start -= ((w.Start % grid) + grid) % grid // floor, safe for negatives
			if rem := w.End % grid; rem != 0 {
				w.End += grid - rem
			}
		}
		if w.Start < 0 {
			w.Start = 0
		}
		if w.End > horizon {
			w.End = horizon
		}
		if w.End > w.Start {
			out = append(out, w)
		}
	}
	return out
}

// mergeWindows coalesces sorted windows that overlap or touch.
func mergeWindows(wins []BurstWindow) []BurstWindow {
	if len(wins) < 2 {
		return wins
	}
	out := wins[:1]
	for _, w := range wins[1:] {
		last := &out[len(out)-1]
		if w.Start <= last.End {
			if w.End > last.End {
				last.End = w.End
			}
			if w.PeakBound > last.PeakBound {
				last.PeakBound = w.PeakBound
			}
		} else {
			out = append(out, w)
		}
	}
	return out
}
