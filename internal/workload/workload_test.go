package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"elearncloud/internal/lms"
	"elearncloud/internal/sim"
)

func TestDiurnalInterpolation(t *testing.T) {
	p := CampusDiurnal()
	// Exactly at hour anchors.
	if got := p.At(10 * time.Hour); math.Abs(got-1.9) > 1e-12 {
		t.Fatalf("At(10h) = %v, want 1.9", got)
	}
	// Midway between hours interpolates.
	mid := p.At(10*time.Hour + 30*time.Minute)
	want := (1.9 + 1.8) / 2
	if math.Abs(mid-want) > 1e-12 {
		t.Fatalf("At(10:30) = %v, want %v", mid, want)
	}
	// Wraps past midnight.
	if got := p.At(25 * time.Hour); math.Abs(got-p.At(time.Hour)) > 1e-12 {
		t.Fatalf("wrap failed: %v vs %v", got, p.At(time.Hour))
	}
}

func TestDiurnalShapeSane(t *testing.T) {
	p := CampusDiurnal()
	if p.At(3*time.Hour) >= p.At(20*time.Hour) {
		t.Fatal("3am should be quieter than 8pm")
	}
	if math.Abs(p.Mean()-1.0) > 0.15 {
		t.Fatalf("diurnal mean = %v, want ~1.0", p.Mean())
	}
	if p.Peak() != 2.0 {
		t.Fatalf("peak = %v", p.Peak())
	}
}

func TestDiurnalNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var h [24]float64
	h[5] = -1
	NewDiurnalProfile(h)
}

func TestStandardSemesterStructure(t *testing.T) {
	c := StandardSemester()
	if c.Len() != 18 {
		t.Fatalf("semester weeks = %d, want 18", c.Len())
	}
	week := 7 * 24 * time.Hour
	if c.WeekAt(0).Kind != Teaching {
		t.Fatal("week 0 should be orientation teaching")
	}
	if c.WeekAt(7*week).Kind != Exams {
		t.Fatalf("week 7 should be midterms, got %v", c.WeekAt(7*week).Kind)
	}
	if c.WeekAt(16*week).Kind != Exams {
		t.Fatal("week 16 should be finals")
	}
	if c.WeekAt(17*week).Kind != Vacation {
		t.Fatal("week 17 should be vacation")
	}
	// Past the end, the last week repeats.
	if c.WeekAt(40*week).Kind != Vacation {
		t.Fatal("past-end week should repeat vacation")
	}
	if c.PeakMult() != 2.4 {
		t.Fatalf("PeakMult = %v", c.PeakMult())
	}
	if c.Duration() != 18*week {
		t.Fatalf("Duration = %v", c.Duration())
	}
}

func TestCalendarPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { NewCalendar(nil) },
		"negative": func() { NewCalendar([]Week{{Kind: Teaching, Mult: -1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWeekKindString(t *testing.T) {
	if Teaching.String() != "teaching" || Exams.String() != "exams" ||
		Vacation.String() != "vacation" || WeekKind(9).String() != "WeekKind(9)" {
		t.Fatal("week kind strings wrong")
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Config{Students: 0, ReqPerStudentHour: 60}); err == nil {
		t.Fatal("zero students accepted")
	}
	if _, err := NewGenerator(Config{Students: 10, ReqPerStudentHour: 0}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewGenerator(Config{
		Students: 10, ReqPerStudentHour: 60,
		Crowds: []FlashCrowd{{Start: time.Hour, End: time.Minute, Mult: 2}},
	}); err == nil {
		t.Fatal("inverted crowd window accepted")
	}
	if _, err := NewGenerator(Config{
		Students: 10, ReqPerStudentHour: 60,
		Crowds: []FlashCrowd{{Start: 0, End: time.Hour, Mult: 0}},
	}); err == nil {
		t.Fatal("zero crowd multiplier accepted")
	}
}

func TestGeneratorRateComposition(t *testing.T) {
	g, err := NewGenerator(Config{
		Students:          3600,
		ReqPerStudentHour: 1, // base aggregate = 1 req/s
		Diurnal:           FlatDiurnal(),
		Calendar:          NewCalendar([]Week{{Kind: Teaching, Mult: 2}}),
		Crowds:            []FlashCrowd{{Start: time.Hour, End: 2 * time.Hour, Mult: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Rate(30 * time.Minute); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("Rate outside crowd = %v, want 2", got)
	}
	if got := g.Rate(90 * time.Minute); math.Abs(got-10.0) > 1e-12 {
		t.Fatalf("Rate inside crowd = %v, want 10", got)
	}
	if got := g.MaxRate(); math.Abs(got-10.0) > 1e-12 {
		t.Fatalf("MaxRate = %v, want 10", got)
	}
}

func TestGeneratorArrivalVolume(t *testing.T) {
	g, err := NewGenerator(Config{
		Students:          1800,
		ReqPerStudentHour: 2, // aggregate 1 req/s at flat diurnal
		Diurnal:           FlatDiurnal(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(71)
	n := g.Generate(rng, 0, 10000*time.Second, func(Arrival) {})
	if math.Abs(float64(n)-10000) > 400 {
		t.Fatalf("arrivals = %d, want ~10000", n)
	}
}

func TestGeneratorMixSwitchesDuringExams(t *testing.T) {
	g, err := NewGenerator(Config{
		Students:          100,
		ReqPerStudentHour: 60,
		Calendar: NewCalendar([]Week{
			{Kind: Teaching, Mult: 1},
			{Kind: Exams, Mult: 2},
		}),
		Crowds: []FlashCrowd{{Start: time.Hour, End: 2 * time.Hour, Mult: 3, ExamTraffic: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cat := lms.DefaultCatalog()
	teach := g.MixAt(30 * time.Minute)
	exam := g.MixAt(8 * 24 * time.Hour) // week 1 = exams
	crowd := g.MixAt(90 * time.Minute)
	if teach.SensitiveShare(cat) >= exam.SensitiveShare(cat) {
		t.Fatal("exam week mix should be more sensitive than teaching")
	}
	if crowd.SensitiveShare(cat) != exam.SensitiveShare(cat) {
		t.Fatal("exam crowd should use the exam mix")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	gen := func() []Arrival {
		g, err := NewGenerator(Config{Students: 50, ReqPerStudentHour: 30})
		if err != nil {
			t.Fatal(err)
		}
		var out []Arrival
		g.Generate(sim.NewRNG(123), 0, 2*time.Hour, func(a Arrival) { out = append(out, a) })
		return out
	}
	a, b := gen(), gen()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	g, err := NewGenerator(Config{Students: 20, ReqPerStudentHour: 60})
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Record(sim.NewRNG(9), 0, time.Hour)
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() || back.Students != tr.Students {
		t.Fatal("round trip changed trace")
	}
	count := 0
	back.Replay(func(a Arrival) {
		if a != tr.Arrivals[count] {
			t.Fatalf("arrival %d differs", count)
		}
		count++
	})
	if count != tr.Len() {
		t.Fatal("replay count mismatch")
	}
	if back.MeanRate() <= 0 {
		t.Fatal("MeanRate should be positive")
	}
}

func TestReadTraceRejectsCorrupt(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{not json")); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
	// Valid JSON, invalid ordering.
	bad := `{"students":5,"arrivals":[{"at":100,"class":2,"user":0},{"at":50,"class":2,"user":0}]}`
	if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
	badUser := `{"students":5,"arrivals":[{"at":100,"class":2,"user":9}]}`
	if _, err := ReadTrace(strings.NewReader(badUser)); err == nil {
		t.Fatal("out-of-range user accepted")
	}
}

func TestTraceEmpty(t *testing.T) {
	tr := &Trace{Students: 5}
	if tr.Duration() != 0 || tr.MeanRate() != 0 {
		t.Fatal("empty trace stats wrong")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFlashCrowdActive(t *testing.T) {
	c := FlashCrowd{Start: time.Hour, End: 2 * time.Hour, Mult: 10}
	if c.Active(30*time.Minute) || c.Active(2*time.Hour) {
		t.Fatal("window edges wrong")
	}
	if !c.Active(time.Hour) || !c.Active(90*time.Minute) {
		t.Fatal("inside window not active")
	}
}
