package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Trace is a recorded arrival stream: the reproducibility artifact that
// lets every deployment model face byte-identical load.
type Trace struct {
	// Students is the population the trace was generated for.
	Students int `json:"students"`
	// Arrivals are in nondecreasing time order.
	Arrivals []Arrival `json:"arrivals"`
}

// Len returns the number of arrivals.
func (tr *Trace) Len() int { return len(tr.Arrivals) }

// Duration returns the time of the last arrival (0 for empty traces).
func (tr *Trace) Duration() time.Duration {
	if len(tr.Arrivals) == 0 {
		return 0
	}
	return tr.Arrivals[len(tr.Arrivals)-1].At
}

// Validate checks ordering and user-ID ranges.
func (tr *Trace) Validate() error {
	var last time.Duration
	for i, a := range tr.Arrivals {
		if a.At < last {
			return fmt.Errorf("workload: trace arrival %d at %v precedes %v", i, a.At, last)
		}
		if a.UserID < 0 || a.UserID >= tr.Students {
			return fmt.Errorf("workload: trace arrival %d has user %d outside [0,%d)", i, a.UserID, tr.Students)
		}
		last = a.At
	}
	return nil
}

// MeanRate returns the average arrival rate in req/s over the trace span.
func (tr *Trace) MeanRate() float64 {
	d := tr.Duration()
	if d <= 0 {
		return 0
	}
	return float64(len(tr.Arrivals)) / d.Seconds()
}

// WriteTo serializes the trace as JSON.
func (tr *Trace) WriteTo(w io.Writer) (int64, error) {
	data, err := json.Marshal(tr)
	if err != nil {
		return 0, fmt.Errorf("workload: encode trace: %w", err)
	}
	n, err := w.Write(data)
	return int64(n), err
}

// ReadTrace deserializes a JSON trace and validates it.
func ReadTrace(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	var tr Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("workload: decode trace: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// Replay invokes fn for each arrival in order.
func (tr *Trace) Replay(fn func(Arrival)) {
	for _, a := range tr.Arrivals {
		fn(a)
	}
}
