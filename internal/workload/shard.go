package workload

import (
	"fmt"
	"math"
	"sort"
	"time"

	"elearncloud/internal/sim"
)

// This file partitions a generator's student population into K shards
// so a DES run can execute as K independent engines (scenario.ShardedRun)
// whose superposed arrival process is distribution-identical to the
// unsharded one.
//
// The construction thins the NHPP: user u belongs to shard ShardOf(u, K)
// (a stable hash, so membership never depends on K ordering or run
// state), and shard k's rate is the full rate scaled by the fraction of
// currently-active users it owns. Splitting a Poisson process by
// independent coin flips yields independent Poisson processes whose
// rates sum to the original — so the shards together reproduce the
// unsharded arrival distribution exactly, while each shard samples its
// own (seed, "shard/<k>")-rooted streams.
//
// At K=1 the shard owns every user: every scale factor is exactly 1.0,
// so the thinning proposals, acceptances, and user picks consume the
// RNG identically to the unsharded path and the stream is byte-identical
// — the property TestShardOneIdentity pins and scenario's sharded=direct
// golden equivalence builds on.

// ShardOf maps a user ID to its shard in [0, shards). The hash is the
// splitmix64 finalizer: stable across runs, uncorrelated with the ID's
// low bits (which growth curves allocate sequentially).
func ShardOf(user, shards int) int {
	z := uint64(user) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(shards))
}

// Sharding is a partition of a generator's user-ID space into K member
// lists, each sorted ascending so the active-member count under a
// growing population is a binary search away.
type Sharding struct {
	gen     *Generator
	members [][]int
}

// ShardBy partitions the generator's population into shards. Panics if
// shards < 1.
func (g *Generator) ShardBy(shards int) *Sharding {
	if shards < 1 {
		panic(fmt.Sprintf("workload: ShardBy with shards = %d, need >= 1", shards))
	}
	members := make([][]int, shards)
	for u := 0; u < g.cfg.Students; u++ {
		k := ShardOf(u, shards)
		members[k] = append(members[k], u) // ascending by construction
	}
	return &Sharding{gen: g, members: members}
}

// Shards returns the number of shards K.
func (s *Sharding) Shards() int { return len(s.members) }

// Members returns shard k's user IDs in ascending order. The slice is
// shared, not copied.
func (s *Sharding) Members(k int) []int { return s.members[k] }

// CapShare returns shard k's share of the full population — the factor
// by which a per-shard fleet's peak capacity should be scaled.
func (s *Sharding) CapShare(k int) float64 {
	return float64(len(s.members[k])) / float64(s.gen.cfg.Students)
}

// Shard returns the per-shard generator view for shard k.
func (s *Sharding) Shard(k int) *ShardGen {
	return &ShardGen{g: s.gen, members: s.members[k]}
}

// ShardGen is one shard's view of a generator: the full config's rate
// shape, scaled by the shard's share of the currently-active users.
type ShardGen struct {
	g       *Generator
	members []int
}

// active returns the number of this shard's members with ID < n — the
// shard's share of an active population of n users.
func (sg *ShardGen) active(n int) int {
	return sort.SearchInts(sg.members, n)
}

// Rate returns the shard's instantaneous arrival rate at t: the full
// rate times the fraction of active users the shard owns.
func (sg *ShardGen) Rate(t time.Duration) float64 {
	n := sg.g.users(t)
	return sg.g.Rate(t) * (float64(sg.active(n)) / float64(n))
}

// MaxRate bounds the shard's rate over any horizon: the full bound
// scaled by the shard's full-population share (active share never
// exceeds it at the population peak that realizes MaxRate).
func (sg *ShardGen) MaxRate() float64 {
	return sg.g.MaxRate() * (float64(len(sg.members)) / float64(sg.g.cfg.Students))
}

// Envelope returns the shard's piecewise thinning bound: the full
// envelope times an upper bound on the shard's active share over the
// segment. With n growing monotonically from n(t) to n(until), the
// share c(n)/n is bounded by c(n(until))/n(t) — c is nondecreasing and
// 1/n nonincreasing — clamped to 1 since a share never exceeds one.
// The clamp also makes K=1 exact: there c(n)=n, the ratio is >= 1, and
// the factor is exactly 1.0, leaving the base bound bit-identical.
func (sg *ShardGen) Envelope() sim.EnvelopeFunc {
	base := sg.g.Envelope()
	return func(t sim.Time) (float64, sim.Time) {
		max, until := base(t)
		share := float64(sg.active(sg.g.users(until))) / float64(sg.g.users(t))
		return max * math.Min(1, share), until
	}
}

// pickUser draws an arrival's user uniformly from the shard's active
// members. At K=1 members[i] == i, so the draw consumes the RNG and
// yields the same value as the unsharded Intn(n) path.
func (sg *ShardGen) pickUser(userRNG *sim.RNG) func(t time.Duration) int {
	return func(t time.Duration) int {
		return sg.members[userRNG.Intn(sg.active(sg.g.users(t)))]
	}
}

// Stream returns the shard's lazy arrival stream starting at start,
// mirroring Generator.Stream with the shard's rate, envelope, and user
// pool.
func (sg *ShardGen) Stream(rng *sim.RNG, start time.Duration) *ArrivalStream {
	userRNG := rng.Stream("users")
	return &ArrivalStream{
		gen: sg.g,
		proc: sim.NewNHPPEnvelope(rng.Stream("arrivals"), func(t sim.Time) float64 {
			return sg.Rate(t)
		}, sg.Envelope(), start),
		classRNG: rng.Stream("classes"),
		userRNG:  userRNG,
		pickUser: sg.pickUser(userRNG),
	}
}

// Generate produces the shard's arrivals on [start, horizon) in time
// order, invoking fn for each, and returns the count.
func (sg *ShardGen) Generate(rng *sim.RNG, start, horizon time.Duration, fn func(Arrival)) int {
	s := sg.Stream(rng, start)
	n := 0
	for {
		a, ok := s.Next(horizon)
		if !ok {
			return n
		}
		n++
		fn(a)
	}
}
