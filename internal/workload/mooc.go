package workload

// This file holds the MOOC-scale workload family: nonstationary shapes
// for courses whose population, daily rhythm and stress events do not
// fit a single campus — enrollment growth curves, timezone-superposed
// diurnal waves, and deadline/join storms. They compose with the
// existing NHPP machinery through Generator.Envelope's piecewise
// thinning bound, which is what keeps generation O(arrivals) when the
// final population is 10x the first week's.

import (
	"fmt"
	"math"
	"time"
)

// Growth is a monotone nondecreasing active-population curve: the
// number of enrolled-and-active students at each virtual time. It
// replaces the constant Config.Students for courses that grow —
// monotonicity is what lets the piecewise thinning envelope bound a
// segment by its endpoint instead of scanning it.
type Growth struct {
	kind  growthKind
	start float64 // population at t = 0
	final float64 // population approached (logistic) or reached (linear)
	mid   time.Duration
	k     float64 // logistic steepness, 1/seconds
	ramp  time.Duration
}

type growthKind int

const (
	logisticGrowth growthKind = iota + 1
	linearGrowth
)

// LogisticGrowth models a "viral course": enrollment starts at start,
// accelerates through the inflection at midpoint, and saturates at
// capacity. The steepness is derived from requiring the curve to pass
// through start at t = 0, so the two populations and the midpoint fully
// determine the shape. The midpoint is where enrollment crosses half
// the capacity, so a monotone-increasing curve needs
// start < capacity/2 — LogisticGrowth panics otherwise (a start at or
// above capacity/2 would make the derived steepness zero or negative
// and the curve flat or decaying, silently breaking the monotonicity
// the piecewise envelope depends on). Panics unless
// 0 < start < capacity/2 and midpoint > 0.
func LogisticGrowth(start, capacity int, midpoint time.Duration) *Growth {
	if start <= 0 || 2*start >= capacity {
		panic(fmt.Sprintf("workload: LogisticGrowth needs 0 < start < capacity/2 (the midpoint is the half-capacity crossing), got %d, %d", start, capacity))
	}
	if midpoint <= 0 {
		panic("workload: LogisticGrowth needs a positive midpoint")
	}
	// Solve capacity/(1+exp(k·mid)) = start for k.
	k := math.Log(float64(capacity)/float64(start)-1) / midpoint.Seconds()
	return &Growth{kind: logisticGrowth, start: float64(start), final: float64(capacity), mid: midpoint, k: k}
}

// LinearGrowth models a cohort ramp: enrollment climbs linearly from
// start to final over ramp, then holds. Panics unless
// 0 < start <= final and ramp > 0.
func LinearGrowth(start, final int, ramp time.Duration) *Growth {
	if start <= 0 || final < start {
		panic(fmt.Sprintf("workload: LinearGrowth needs 0 < start <= final, got %d, %d", start, final))
	}
	if ramp <= 0 {
		panic("workload: LinearGrowth needs a positive ramp")
	}
	return &Growth{kind: linearGrowth, start: float64(start), final: float64(final), ramp: ramp}
}

// At returns the active population at t. The curve is monotone
// nondecreasing; t < 0 is clamped to the initial population.
func (g *Growth) At(t time.Duration) float64 {
	if t < 0 {
		t = 0
	}
	switch g.kind {
	case logisticGrowth:
		return g.final / (1 + math.Exp(-g.k*(t-g.mid).Seconds()))
	case linearGrowth:
		if t >= g.ramp {
			return g.final
		}
		return g.start + (g.final-g.start)*float64(t)/float64(g.ramp)
	default:
		panic("workload: zero-value Growth; use LogisticGrowth or LinearGrowth")
	}
}

// Max returns the curve's supremum — the capacity (logistic) or final
// (linear) population. It bounds every At value and sizes the user-ID
// space when Config.Students is derived.
func (g *Growth) Max() float64 { return g.final }

// String renders the curve for experiment notes.
func (g *Growth) String() string {
	switch g.kind {
	case logisticGrowth:
		return fmt.Sprintf("logistic %.0f→%.0f (midpoint %v)", g.start, g.final, g.mid)
	case linearGrowth:
		return fmt.Sprintf("linear %.0f→%.0f over %v", g.start, g.final, g.ramp)
	default:
		return "Growth(zero)"
	}
}

// TimezoneWave is one regional cohort of a global course: a fraction of
// the population whose local day is shifted against the simulation
// clock.
type TimezoneWave struct {
	// Shift is how far east of the reference clock the cohort lives:
	// its local time of day is the simulation time of day plus Shift.
	Shift time.Duration
	// Weight is the cohort's share of the population; weights are
	// normalized over the superposition, so any positive scale works.
	Weight float64
	// Profile is the cohort's local day shape (nil = CampusDiurnal).
	Profile *DiurnalProfile
}

// SuperposeTimezones builds the day shape of a multi-timezone cohort:
// the weight-normalized sum of each wave's profile evaluated at its
// local time. The result is an ordinary DiurnalProfile — it plugs into
// Config.Diurnal and composes with calendars, crowds and storms — whose
// peak is flatter and wider than any single region's, because the
// regions' evening peaks do not line up. Panics on an empty wave list,
// a negative weight, or a non-positive total weight.
func SuperposeTimezones(waves []TimezoneWave) *DiurnalProfile {
	if len(waves) == 0 {
		panic("workload: SuperposeTimezones with no waves")
	}
	total := 0.0
	for i, w := range waves {
		if w.Weight < 0 {
			panic(fmt.Sprintf("workload: timezone wave %d has negative weight", i))
		}
		total += w.Weight
	}
	if total <= 0 {
		panic("workload: timezone waves have non-positive total weight")
	}
	var hours [24]float64
	for h := 0; h < 24; h++ {
		sum := 0.0
		for _, w := range waves {
			p := w.Profile
			if p == nil {
				p = CampusDiurnal()
			}
			sum += w.Weight * p.At(time.Duration(h)*time.Hour+w.Shift)
		}
		hours[h] = sum / total
	}
	return NewDiurnalProfile(hours)
}

// GlobalCohort is the default worldwide MOOC day: four regional bands
// (Americas, Europe/Africa, South Asia, East Asia/Pacific) each living
// a CampusDiurnal day in their own timezone, weighted by typical MOOC
// enrollment shares. The superposition flattens the campus profile's
// 2.0x evening peak to under 1.6x and fills the overnight trough — the
// reason a global course loads its fleet around the clock rather than
// in one evening wave.
func GlobalCohort() *DiurnalProfile {
	return SuperposeTimezones([]TimezoneWave{
		{Shift: -5 * time.Hour, Weight: 0.30},               // Americas
		{Shift: 1 * time.Hour, Weight: 0.30},                // Europe/Africa
		{Shift: 5*time.Hour + 30*time.Minute, Weight: 0.20}, // South Asia
		{Shift: 8 * time.Hour, Weight: 0.20},                // East Asia/Pacific
	})
}

// DeadlineStorm is the procrastination shape of a graded deadline: load
// builds up exponentially as the deadline approaches — slowly at first,
// steeply in the final hours — and falls off a cliff the moment it
// passes. It multiplies the base rate inside [Deadline-Ramp, Deadline).
type DeadlineStorm struct {
	// Deadline is the submission cutoff (the cliff).
	Deadline time.Duration
	// Ramp is how long before the deadline the build-up is felt.
	Ramp time.Duration
	// PeakMult is the rate multiplier approached at the deadline.
	PeakMult float64
	// Tau is the e-folding time of the build-up: the multiplier excess
	// halves every ~0.69·Tau walking back from the deadline. Zero
	// defaults to Ramp/3.
	Tau time.Duration
	// ExamTraffic switches the request mix to ExamMix inside the ramp —
	// deadline traffic is submissions and graded quizzes, not browsing.
	ExamTraffic bool
}

// tau returns the effective e-folding time.
func (s DeadlineStorm) tau() time.Duration {
	if s.Tau > 0 {
		return s.Tau
	}
	return s.Ramp / 3
}

// Active reports whether t is inside the build-up window.
func (s DeadlineStorm) Active(t time.Duration) bool {
	return t >= s.Deadline-s.Ramp && t < s.Deadline
}

// MultAt returns the rate multiplier at t: 1 outside the window,
// 1 + (PeakMult-1)·exp(-(Deadline-t)/Tau) inside.
func (s DeadlineStorm) MultAt(t time.Duration) float64 {
	if !s.Active(t) {
		return 1
	}
	return 1 + (s.PeakMult-1)*math.Exp(-(s.Deadline-t).Seconds()/s.tau().Seconds())
}

// MaxOn returns an upper bound on MultAt over [t0, t1). The build-up is
// monotone increasing toward the deadline, so the bound is the value at
// the overlap's end.
func (s DeadlineStorm) MaxOn(t0, t1 time.Duration) float64 {
	lo, hi := s.Deadline-s.Ramp, s.Deadline
	if t0 > lo {
		lo = t0
	}
	if t1 < hi {
		hi = t1
	}
	if hi <= lo {
		return 1
	}
	// Limit value approaching hi from below; at hi == Deadline this is
	// PeakMult, a valid (if momentarily loose) bound across the cliff.
	return 1 + (s.PeakMult-1)*math.Exp(-(s.Deadline-hi).Seconds()/s.tau().Seconds())
}

// sanity validates a storm definition.
func (s DeadlineStorm) sanity() error {
	if s.Ramp <= 0 {
		return fmt.Errorf("workload: deadline storm ramp %v must be positive", s.Ramp)
	}
	if s.Deadline < s.Ramp {
		return fmt.Errorf("workload: deadline storm at %v starts before t=0 (ramp %v)", s.Deadline, s.Ramp)
	}
	if s.PeakMult < 1 {
		return fmt.Errorf("workload: deadline storm peak multiplier %v must be >= 1", s.PeakMult)
	}
	if s.Tau < 0 {
		return fmt.Errorf("workload: deadline storm tau %v must not be negative", s.Tau)
	}
	return nil
}

// JoinStorm is the live-session shape: a cohort joins a scheduled
// lecture nearly simultaneously, so the rate spikes at Start and decays
// exponentially as stragglers trickle in. It multiplies the base rate
// inside [Start, Start+Window).
type JoinStorm struct {
	// Start is the lecture start, where the spike peaks.
	Start time.Duration
	// Window is how long the join wave lasts.
	Window time.Duration
	// PeakMult is the rate multiplier at Start.
	PeakMult float64
	// Decay is the e-folding time of the rush (zero defaults to
	// Window/4).
	Decay time.Duration
	// ExamTraffic switches the request mix to ExamMix inside the
	// window — live sessions are auth-heavy, graded-interaction
	// traffic, not casual browsing.
	ExamTraffic bool
}

// decay returns the effective e-folding time.
func (j JoinStorm) decay() time.Duration {
	if j.Decay > 0 {
		return j.Decay
	}
	return j.Window / 4
}

// Active reports whether t is inside the join window.
func (j JoinStorm) Active(t time.Duration) bool {
	return t >= j.Start && t < j.Start+j.Window
}

// MultAt returns the rate multiplier at t: 1 outside the window,
// 1 + (PeakMult-1)·exp(-(t-Start)/Decay) inside.
func (j JoinStorm) MultAt(t time.Duration) float64 {
	if !j.Active(t) {
		return 1
	}
	return 1 + (j.PeakMult-1)*math.Exp(-(t-j.Start).Seconds()/j.decay().Seconds())
}

// MaxOn returns an upper bound on MultAt over [t0, t1). The spike is
// monotone decreasing after Start, so the bound is the value at the
// overlap's beginning.
func (j JoinStorm) MaxOn(t0, t1 time.Duration) float64 {
	lo, hi := j.Start, j.Start+j.Window
	if t0 > lo {
		lo = t0
	}
	if t1 < hi {
		hi = t1
	}
	if hi <= lo {
		return 1
	}
	return 1 + (j.PeakMult-1)*math.Exp(-(lo-j.Start).Seconds()/j.decay().Seconds())
}

// sanity validates a join storm definition.
func (j JoinStorm) sanity() error {
	if j.Window <= 0 {
		return fmt.Errorf("workload: join storm window %v must be positive", j.Window)
	}
	if j.Start < 0 {
		return fmt.Errorf("workload: join storm start %v must not be negative", j.Start)
	}
	if j.PeakMult < 1 {
		return fmt.Errorf("workload: join storm peak multiplier %v must be >= 1", j.PeakMult)
	}
	if j.Decay < 0 {
		return fmt.Errorf("workload: join storm decay %v must not be negative", j.Decay)
	}
	return nil
}
