package workload

import (
	"fmt"
	"math"
	"time"

	"elearncloud/internal/lms"
	"elearncloud/internal/sim"
)

// Arrival is one generated request arrival.
type Arrival struct {
	// At is the arrival's virtual time.
	At time.Duration `json:"at"`
	// Class is the LMS request class.
	Class lms.Class `json:"class"`
	// UserID identifies the issuing student in [0, Students).
	UserID int `json:"user"`
}

// Config parameterizes a Generator.
type Config struct {
	// Students is the active population size. With Growth set it is the
	// user-ID space instead: zero derives it from Growth.Max(), and an
	// explicit value must be at least that capacity.
	Students int
	// Growth optionally makes the active population a curve (MOOC
	// enrollment): the instantaneous rate scales with Growth.At(t)
	// instead of the constant Students.
	Growth *Growth
	// ReqPerStudentHour is the mean request rate per student during an
	// average hour (the diurnal profile redistributes it within a day).
	// Typical interactive LMS usage is 40-80 requests/student-hour.
	ReqPerStudentHour float64
	// Diurnal shapes the day; defaults to CampusDiurnal.
	Diurnal *DiurnalProfile
	// Calendar shapes the term; nil means every week is Teaching at 1.0.
	Calendar *Calendar
	// Crowds adds exam flash-crowd windows.
	Crowds []FlashCrowd
	// Storms adds deadline storms: asymmetric procrastination ramps
	// that build exponentially toward a submission cliff.
	Storms []DeadlineStorm
	// Joins adds live-session join storms: near-simultaneous arrivals
	// at a lecture start, decaying as stragglers trickle in.
	Joins []JoinStorm
	// TeachingMix and ExamMix override the request mixes; nil uses the
	// lms defaults.
	TeachingMix *lms.Mix
	ExamMix     *lms.Mix
}

// Generator produces a non-homogeneous Poisson stream of LMS arrivals.
type Generator struct {
	cfg         Config
	teachingMix *lms.Mix
	examMix     *lms.Mix
}

// NewGenerator validates cfg and builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.Growth != nil {
		capacity := int(math.Ceil(cfg.Growth.Max()))
		if cfg.Students == 0 {
			cfg.Students = capacity
		} else if cfg.Students < capacity {
			return nil, fmt.Errorf("workload: Students = %d is below the growth capacity %d", cfg.Students, capacity)
		}
	}
	if cfg.Students <= 0 {
		return nil, fmt.Errorf("workload: Students = %d, need > 0", cfg.Students)
	}
	if cfg.ReqPerStudentHour <= 0 {
		return nil, fmt.Errorf("workload: ReqPerStudentHour = %v, need > 0", cfg.ReqPerStudentHour)
	}
	for _, c := range cfg.Crowds {
		if err := c.sanity(); err != nil {
			return nil, err
		}
	}
	for _, s := range cfg.Storms {
		if err := s.sanity(); err != nil {
			return nil, err
		}
	}
	for _, j := range cfg.Joins {
		if err := j.sanity(); err != nil {
			return nil, err
		}
	}
	if cfg.Diurnal == nil {
		cfg.Diurnal = CampusDiurnal()
	}
	g := &Generator{cfg: cfg, teachingMix: cfg.TeachingMix, examMix: cfg.ExamMix}
	if g.teachingMix == nil {
		g.teachingMix = lms.TeachingMix()
	}
	if g.examMix == nil {
		g.examMix = lms.ExamMix()
	}
	return g, nil
}

// Students returns the configured population size (with Growth, the
// user-ID space: at least the growth capacity).
func (g *Generator) Students() int { return g.cfg.Students }

// Population returns the active population at t: Growth.At(t) when a
// growth curve is set, the constant Students otherwise.
func (g *Generator) Population(t time.Duration) float64 {
	if g.cfg.Growth != nil {
		return g.cfg.Growth.At(t)
	}
	return float64(g.cfg.Students)
}

// users returns the user-ID range active at t, at least 1.
func (g *Generator) users(t time.Duration) int {
	if g.cfg.Growth == nil {
		return g.cfg.Students
	}
	n := int(math.Ceil(g.cfg.Growth.At(t)))
	if n < 1 {
		n = 1
	}
	if n > g.cfg.Students {
		n = g.cfg.Students
	}
	return n
}

// Rate returns the instantaneous aggregate arrival rate (req/s) at t.
func (g *Generator) Rate(t time.Duration) float64 {
	base := g.Population(t) * g.cfg.ReqPerStudentHour / 3600
	rate := base * g.cfg.Diurnal.At(t)
	if g.cfg.Calendar != nil {
		rate *= g.cfg.Calendar.WeekAt(t).Mult
	}
	for _, c := range g.cfg.Crowds {
		if c.Active(t) {
			rate *= c.Mult
		}
	}
	for _, s := range g.cfg.Storms {
		rate *= s.MultAt(t)
	}
	for _, j := range g.cfg.Joins {
		rate *= j.MultAt(t)
	}
	return rate
}

// MaxRate returns a global upper bound on Rate over any horizon. It
// sizes peak fleets; the thinning sampler uses the tighter piecewise
// Envelope instead, because on growth curves the global bound is far
// above the early rate. Rate multiplies every simultaneously-active
// window, so the bound compounds the peaks of windows that actually
// overlap — a join storm inside a deadline ramp really does stack —
// while disjoint windows contribute only the largest single peak.
func (g *Generator) MaxRate() float64 {
	pop := float64(g.cfg.Students)
	if g.cfg.Growth != nil {
		pop = g.cfg.Growth.Max()
	}
	base := pop * g.cfg.ReqPerStudentHour / 3600
	max := base * g.cfg.Diurnal.Peak()
	if g.cfg.Calendar != nil {
		max *= g.cfg.Calendar.PeakMult()
	}
	return max * g.windowPeakBound()
}

// windowPeakBound bounds the product of simultaneously-active window
// multipliers (crowds, storms, joins) over all time. The active set
// only changes at window edges, and every maximal active set is live
// just inside some window's start — so evaluating the product of the
// peaks of the windows active at each start covers every combination
// that can occur, without compounding windows that never overlap.
func (g *Generator) windowPeakBound() float64 {
	type window struct {
		start, end time.Duration
		peak       float64
	}
	var wins []window
	for _, c := range g.cfg.Crowds {
		if c.Mult > 1 {
			wins = append(wins, window{c.Start, c.End, c.Mult})
		}
	}
	for _, s := range g.cfg.Storms {
		if s.PeakMult > 1 {
			wins = append(wins, window{s.Deadline - s.Ramp, s.Deadline, s.PeakMult})
		}
	}
	for _, j := range g.cfg.Joins {
		if j.PeakMult > 1 {
			wins = append(wins, window{j.Start, j.Start + j.Window, j.PeakMult})
		}
	}
	best := 1.0
	for _, w := range wins {
		product := 1.0
		for _, o := range wins {
			if w.start >= o.start && w.start < o.end {
				product *= o.peak
			}
		}
		if product > best {
			best = product
		}
	}
	return best
}

// MixAt returns the request mix in force at time t: the exam mix inside
// exam weeks, exam flash crowds and exam-flagged storms, the teaching
// mix otherwise.
func (g *Generator) MixAt(t time.Duration) *lms.Mix {
	for _, c := range g.cfg.Crowds {
		if c.Active(t) && c.ExamTraffic {
			return g.examMix
		}
	}
	for _, s := range g.cfg.Storms {
		if s.Active(t) && s.ExamTraffic {
			return g.examMix
		}
	}
	for _, j := range g.cfg.Joins {
		if j.Active(t) && j.ExamTraffic {
			return g.examMix
		}
	}
	if g.cfg.Calendar != nil && g.cfg.Calendar.WeekAt(t).Kind == Exams {
		return g.examMix
	}
	return g.teachingMix
}

// Envelope returns the piecewise-constant thinning bound the generator
// samples under. For stationary-bound configs (no growth, no storms)
// it is a single segment at MaxRate — byte-identical behavior to the
// flat sampler. For MOOC shapes it re-bounds every hour (every minute
// inside an active storm window, where the multiplier moves on minute
// scales), using monotonicity of the growth curve and the storm shapes,
// so thinning acceptance stays high while the population grows 10x.
func (g *Generator) Envelope() sim.EnvelopeFunc {
	if g.cfg.Growth == nil && len(g.cfg.Storms) == 0 && len(g.cfg.Joins) == 0 {
		return sim.ConstantEnvelope(g.MaxRate())
	}
	return func(t sim.Time) (float64, sim.Time) {
		until := g.segmentEnd(t)
		return g.segmentBound(t, until), until
	}
}

// segmentEnd returns the end of the envelope segment starting at t:
// the next hour mark, tightened around shape edges so a bound never
// straddles a window boundary loosely, and re-bounded minute-by-minute
// while an exponential storm shape is actually moving.
func (g *Generator) segmentEnd(t time.Duration) time.Duration {
	until := t - t%time.Hour + time.Hour
	clampEdge := func(edge time.Duration) {
		if edge > t && edge < until {
			until = edge
		}
	}
	storming := false
	for _, c := range g.cfg.Crowds {
		clampEdge(c.Start)
		clampEdge(c.End)
	}
	for _, s := range g.cfg.Storms {
		clampEdge(s.Deadline - s.Ramp)
		clampEdge(s.Deadline)
		storming = storming || s.Active(t)
	}
	for _, j := range g.cfg.Joins {
		clampEdge(j.Start)
		clampEdge(j.Start + j.Window)
		storming = storming || j.Active(t)
	}
	if storming {
		if minuteEnd := t - t%time.Minute + time.Minute; minuteEnd < until {
			until = minuteEnd
		}
	}
	return until
}

// segmentBound returns the envelope's rate bound over [t, until):
// the quiet bound scaled by the burst multiplier bound.
func (g *Generator) segmentBound(t, until time.Duration) float64 {
	return g.quietBound(t, until) * g.burstMult(t, until)
}

// quietBound bounds the rate over [t, until) ignoring crowd, storm and
// join windows: population, diurnal shape and calendar only.
func (g *Generator) quietBound(t, until time.Duration) float64 {
	pop := float64(g.cfg.Students)
	if g.cfg.Growth != nil {
		pop = g.cfg.Growth.At(until) // monotone: segment max at the end
	}
	max := pop * g.cfg.ReqPerStudentHour / 3600
	// Diurnal is linear between hour anchors and [t, until) never
	// crosses one, so the endpoints bound the segment.
	max *= math.Max(g.cfg.Diurnal.At(t), g.cfg.Diurnal.At(until))
	if g.cfg.Calendar != nil {
		// Week boundaries fall on hour marks, never inside [t, until).
		max *= g.cfg.Calendar.WeekAt(t).Mult
	}
	return max
}

// burstMult bounds the product of crowd/storm/join multipliers over
// [t, until) — the factor by which the segment's bound exceeds its
// quiet baseline. This is the quantity the hybrid fidelity planner
// classifies on: a segment is "bursty" exactly when burstMult clears
// the intensity threshold.
func (g *Generator) burstMult(t, until time.Duration) float64 {
	mult := 1.0
	for _, c := range g.cfg.Crowds {
		if c.Active(t) && c.Mult > 1 {
			mult *= c.Mult
		}
	}
	for _, s := range g.cfg.Storms {
		mult *= s.MaxOn(t, until)
	}
	for _, j := range g.cfg.Joins {
		mult *= j.MaxOn(t, until)
	}
	return mult
}

// Generate produces arrivals on [start, horizon) in time order, invoking
// fn for each, and returns the count. Identical (rng state, config)
// produce identical streams.
func (g *Generator) Generate(rng *sim.RNG, start, horizon time.Duration, fn func(Arrival)) int {
	proc := sim.NewNHPPEnvelope(rng.Stream("arrivals"), func(t sim.Time) float64 {
		return g.Rate(t)
	}, g.Envelope(), start)
	classRNG := rng.Stream("classes")
	userRNG := rng.Stream("users")
	return proc.GenerateInto(horizon, func(t sim.Time) {
		fn(Arrival{
			At:     t,
			Class:  g.MixAt(t).Sample(classRNG),
			UserID: userRNG.Intn(g.users(t)),
		})
	})
}

// ArrivalStream produces arrivals one at a time, so simulations can
// schedule lazily instead of materializing millions of events up front.
type ArrivalStream struct {
	gen      *Generator
	proc     *sim.NHPP
	classRNG *sim.RNG
	userRNG  *sim.RNG
	// pickUser draws the arrival's user; the default draws uniformly
	// from the active population, a ShardGen stream from its members.
	pickUser func(t time.Duration) int
}

// Stream returns a lazy arrival stream starting at start.
func (g *Generator) Stream(rng *sim.RNG, start time.Duration) *ArrivalStream {
	s := &ArrivalStream{
		gen: g,
		proc: sim.NewNHPPEnvelope(rng.Stream("arrivals"), func(t sim.Time) float64 {
			return g.Rate(t)
		}, g.Envelope(), start),
		classRNG: rng.Stream("classes"),
		userRNG:  rng.Stream("users"),
	}
	s.pickUser = func(t time.Duration) int { return s.userRNG.Intn(s.gen.users(t)) }
	return s
}

// Next returns the next arrival strictly before horizon, or ok=false.
func (s *ArrivalStream) Next(horizon time.Duration) (Arrival, bool) {
	t, ok := s.proc.Next(horizon)
	if !ok {
		return Arrival{}, false
	}
	return Arrival{
		At:     t,
		Class:  s.gen.MixAt(t).Sample(s.classRNG),
		UserID: s.pickUser(t),
	}, true
}

// Thinning reports the stream's sampler efficiency so far: candidate
// arrivals proposed and accepted. Accepted/proposed near 1 means the
// piecewise envelope hugs the rate; the MOOC shapes are benchmarked to
// stay at or above ~50% (see BenchmarkMOOCAcceptance).
func (s *ArrivalStream) Thinning() (proposed, accepted uint64) {
	return s.proc.Proposed(), s.proc.Accepted()
}

// Record captures the arrivals on [start, horizon) as a Trace.
func (g *Generator) Record(rng *sim.RNG, start, horizon time.Duration) *Trace {
	tr := &Trace{Students: g.cfg.Students}
	g.Generate(rng, start, horizon, func(a Arrival) {
		tr.Arrivals = append(tr.Arrivals, a)
	})
	return tr
}
