package workload

import (
	"fmt"
	"time"

	"elearncloud/internal/lms"
	"elearncloud/internal/sim"
)

// Arrival is one generated request arrival.
type Arrival struct {
	// At is the arrival's virtual time.
	At time.Duration `json:"at"`
	// Class is the LMS request class.
	Class lms.Class `json:"class"`
	// UserID identifies the issuing student in [0, Students).
	UserID int `json:"user"`
}

// Config parameterizes a Generator.
type Config struct {
	// Students is the active population size.
	Students int
	// ReqPerStudentHour is the mean request rate per student during an
	// average hour (the diurnal profile redistributes it within a day).
	// Typical interactive LMS usage is 40-80 requests/student-hour.
	ReqPerStudentHour float64
	// Diurnal shapes the day; defaults to CampusDiurnal.
	Diurnal *DiurnalProfile
	// Calendar shapes the term; nil means every week is Teaching at 1.0.
	Calendar *Calendar
	// Crowds adds exam flash-crowd windows.
	Crowds []FlashCrowd
	// TeachingMix and ExamMix override the request mixes; nil uses the
	// lms defaults.
	TeachingMix *lms.Mix
	ExamMix     *lms.Mix
}

// Generator produces a non-homogeneous Poisson stream of LMS arrivals.
type Generator struct {
	cfg         Config
	teachingMix *lms.Mix
	examMix     *lms.Mix
}

// NewGenerator validates cfg and builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.Students <= 0 {
		return nil, fmt.Errorf("workload: Students = %d, need > 0", cfg.Students)
	}
	if cfg.ReqPerStudentHour <= 0 {
		return nil, fmt.Errorf("workload: ReqPerStudentHour = %v, need > 0", cfg.ReqPerStudentHour)
	}
	for _, c := range cfg.Crowds {
		if err := c.sanity(); err != nil {
			return nil, err
		}
	}
	if cfg.Diurnal == nil {
		cfg.Diurnal = CampusDiurnal()
	}
	g := &Generator{cfg: cfg, teachingMix: cfg.TeachingMix, examMix: cfg.ExamMix}
	if g.teachingMix == nil {
		g.teachingMix = lms.TeachingMix()
	}
	if g.examMix == nil {
		g.examMix = lms.ExamMix()
	}
	return g, nil
}

// Students returns the configured population size.
func (g *Generator) Students() int { return g.cfg.Students }

// Rate returns the instantaneous aggregate arrival rate (req/s) at t.
func (g *Generator) Rate(t time.Duration) float64 {
	base := float64(g.cfg.Students) * g.cfg.ReqPerStudentHour / 3600
	rate := base * g.cfg.Diurnal.At(t)
	if g.cfg.Calendar != nil {
		rate *= g.cfg.Calendar.WeekAt(t).Mult
	}
	for _, c := range g.cfg.Crowds {
		if c.Active(t) {
			rate *= c.Mult
		}
	}
	return rate
}

// MaxRate returns an upper bound on Rate over any horizon, used to drive
// the thinning sampler.
func (g *Generator) MaxRate() float64 {
	base := float64(g.cfg.Students) * g.cfg.ReqPerStudentHour / 3600
	max := base * g.cfg.Diurnal.Peak()
	if g.cfg.Calendar != nil {
		max *= g.cfg.Calendar.PeakMult()
	}
	crowdMax := 1.0
	for _, c := range g.cfg.Crowds {
		if c.Mult > crowdMax {
			crowdMax = c.Mult
		}
	}
	return max * crowdMax
}

// MixAt returns the request mix in force at time t: the exam mix inside
// exam weeks and exam flash crowds, the teaching mix otherwise.
func (g *Generator) MixAt(t time.Duration) *lms.Mix {
	for _, c := range g.cfg.Crowds {
		if c.Active(t) && c.ExamTraffic {
			return g.examMix
		}
	}
	if g.cfg.Calendar != nil && g.cfg.Calendar.WeekAt(t).Kind == Exams {
		return g.examMix
	}
	return g.teachingMix
}

// Generate produces arrivals on [start, horizon) in time order, invoking
// fn for each, and returns the count. Identical (rng state, config)
// produce identical streams.
func (g *Generator) Generate(rng *sim.RNG, start, horizon time.Duration, fn func(Arrival)) int {
	proc := sim.NewNHPP(rng.Stream("arrivals"), func(t sim.Time) float64 {
		return g.Rate(t)
	}, g.MaxRate(), start)
	classRNG := rng.Stream("classes")
	userRNG := rng.Stream("users")
	return proc.GenerateInto(horizon, func(t sim.Time) {
		fn(Arrival{
			At:     t,
			Class:  g.MixAt(t).Sample(classRNG),
			UserID: userRNG.Intn(g.cfg.Students),
		})
	})
}

// ArrivalStream produces arrivals one at a time, so simulations can
// schedule lazily instead of materializing millions of events up front.
type ArrivalStream struct {
	gen      *Generator
	proc     *sim.NHPP
	classRNG *sim.RNG
	userRNG  *sim.RNG
}

// Stream returns a lazy arrival stream starting at start.
func (g *Generator) Stream(rng *sim.RNG, start time.Duration) *ArrivalStream {
	return &ArrivalStream{
		gen: g,
		proc: sim.NewNHPP(rng.Stream("arrivals"), func(t sim.Time) float64 {
			return g.Rate(t)
		}, g.MaxRate(), start),
		classRNG: rng.Stream("classes"),
		userRNG:  rng.Stream("users"),
	}
}

// Next returns the next arrival strictly before horizon, or ok=false.
func (s *ArrivalStream) Next(horizon time.Duration) (Arrival, bool) {
	t, ok := s.proc.Next(horizon)
	if !ok {
		return Arrival{}, false
	}
	return Arrival{
		At:     t,
		Class:  s.gen.MixAt(t).Sample(s.classRNG),
		UserID: s.userRNG.Intn(s.gen.cfg.Students),
	}, true
}

// Record captures the arrivals on [start, horizon) as a Trace.
func (g *Generator) Record(rng *sim.RNG, start, horizon time.Duration) *Trace {
	tr := &Trace{Students: g.cfg.Students}
	g.Generate(rng, start, horizon, func(a Arrival) {
		tr.Arrivals = append(tr.Arrivals, a)
	})
	return tr
}
