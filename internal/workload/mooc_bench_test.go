package workload

import (
	"testing"
	"time"

	"elearncloud/internal/sim"
)

// moocScaleCases are the MOOC shapes at 10^5 students — the scale the
// piecewise envelope exists for. The per-student rate is turned down so
// one benchmark iteration generates a few hundred thousand arrivals
// instead of tens of millions; thinning acceptance does not depend on
// the absolute rate, only on how tightly the envelope hugs the shape.
func moocScaleCases() []struct {
	name string
	cfg  Config
} {
	const students = 100000
	return []struct {
		name string
		cfg  Config
	}{
		{"logistic-growth-10x", Config{
			Growth:            LogisticGrowth(students/10, students, 24*time.Hour),
			ReqPerStudentHour: 0.1,
		}},
		{"cohort-ramp", Config{
			Growth:            LinearGrowth(students/4, students, 12*time.Hour),
			ReqPerStudentHour: 0.1,
			Diurnal:           FlatDiurnal(),
		}},
		{"timezone-waves", Config{
			Students:          students,
			ReqPerStudentHour: 0.1,
			Diurnal:           GlobalCohort(),
		}},
		{"deadline-storm", Config{
			Students:          students,
			ReqPerStudentHour: 0.1,
			Diurnal:           FlatDiurnal(),
			Storms: []DeadlineStorm{{
				Deadline: 24 * time.Hour, Ramp: 8 * time.Hour, PeakMult: 10,
				Tau: 2 * time.Hour, ExamTraffic: true,
			}},
		}},
		{"join-storm", Config{
			Students:          students,
			ReqPerStudentHour: 0.1,
			Diurnal:           FlatDiurnal(),
			Joins: []JoinStorm{{
				Start: 12 * time.Hour, Window: time.Hour, PeakMult: 8,
				Decay: 10 * time.Minute, ExamTraffic: true,
			}},
		}},
	}
}

// BenchmarkMOOCAcceptance measures arrival generation on each MOOC
// shape at 10^5 students and reports the thinning acceptance rate as
// the accept/proposed metric. The piecewise envelope must keep it at or
// above 0.5 on every shape (a single global bound manages ~0.1 on the
// 10x growth curve); the benchmark fails outright if it sinks below,
// so the committed number cannot rot silently.
func BenchmarkMOOCAcceptance(b *testing.B) {
	const horizon = 36 * time.Hour
	for _, c := range moocScaleCases() {
		b.Run(c.name, func(b *testing.B) {
			g, err := NewGenerator(c.cfg)
			if err != nil {
				b.Fatal(err)
			}
			var proposed, accepted uint64
			arrivals := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := g.Stream(sim.NewRNG(uint64(i)+1), 0)
				for {
					if _, ok := s.Next(horizon); !ok {
						break
					}
					arrivals++
				}
				p, a := s.Thinning()
				proposed += p
				accepted += a
			}
			b.StopTimer()
			if arrivals == 0 || proposed == 0 {
				b.Fatal("no arrivals generated")
			}
			rate := float64(accepted) / float64(proposed)
			b.ReportMetric(rate, "accept/proposed")
			b.ReportMetric(float64(arrivals)/float64(b.N), "arrivals/op")
			if rate < 0.5 {
				b.Fatalf("%s: thinning acceptance %.1f%% (%d/%d), want >= 50%%",
					c.name, rate*100, accepted, proposed)
			}
		})
	}
}
