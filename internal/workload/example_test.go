package workload_test

import (
	"fmt"
	"time"

	"elearncloud/internal/sim"
	"elearncloud/internal/workload"
)

// ExampleGenerator builds a MOOC-scale workload — a viral course
// growing 2k→20k students, a global multi-timezone cohort, and a
// deadline storm on day two — and shows how the three shapes compose
// into the arrival-rate curve the NHPP samples under.
func ExampleGenerator() {
	gen, err := workload.NewGenerator(workload.Config{
		Growth:            workload.LogisticGrowth(2000, 20000, 24*time.Hour),
		ReqPerStudentHour: 0.5,
		Diurnal:           workload.GlobalCohort(),
		Storms: []workload.DeadlineStorm{{
			Deadline: 42 * time.Hour, Ramp: 6 * time.Hour, PeakMult: 8,
			Tau: 90 * time.Minute, ExamTraffic: true,
		}},
	})
	if err != nil {
		panic(err)
	}
	for _, at := range []time.Duration{
		0,                             // launch: 2k students
		24 * time.Hour,                // growth midpoint: 10k students
		40 * time.Hour,                // deadline storm building
		41*time.Hour + 50*time.Minute, // minutes before the cliff
		42 * time.Hour,                // past the deadline
	} {
		fmt.Printf("t=%-7v students=%-6.0f rate=%6.1f req/s\n",
			at, gen.Population(at), gen.Rate(at))
	}
	// The stream is deterministic per seed, and the piecewise envelope
	// keeps thinning efficient while the population grows 10x.
	s := gen.Stream(sim.NewRNG(1), 0)
	n := 0
	for {
		if _, ok := s.Next(48 * time.Hour); !ok {
			break
		}
		n++
	}
	proposed, accepted := s.Thinning()
	fmt.Printf("arrivals=%d acceptance=%.0f%%\n", n, float64(accepted)/float64(proposed)*100)
	// Output:
	// t=0s      students=2000   rate=   0.2 req/s
	// t=24h0m0s students=10000  rate=   1.1 req/s
	// t=40h0m0s students=16245  rate=   7.9 req/s
	// t=41h50m0s students=16731  rate=  16.7 req/s
	// t=42h0m0s students=16772  rate=   2.3 req/s
	// arrivals=341933 acceptance=97%
}
