package workload

import (
	"testing"
	"time"
)

func mustGen(t *testing.T, cfg Config) *Generator {
	t.Helper()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

const testGrid = 5 * time.Minute

func TestBurstWindowsQuietConfigIsEmpty(t *testing.T) {
	g := mustGen(t, Config{Students: 1000, ReqPerStudentHour: 50})
	if wins := g.BurstWindows(6*time.Hour, 1.5, 10*time.Minute, testGrid); wins != nil {
		t.Fatalf("quiet config produced windows: %v", wins)
	}
	grow := mustGen(t, Config{
		Growth:            LinearGrowth(1000, 8000, 90*time.Minute),
		ReqPerStudentHour: 50,
	})
	if wins := grow.BurstWindows(6*time.Hour, 1.5, 10*time.Minute, testGrid); wins != nil {
		t.Fatalf("growth-only config produced windows: %v", wins)
	}
}

func TestBurstWindowsCoverDeadlineStorm(t *testing.T) {
	storm := DeadlineStorm{Deadline: 3 * time.Hour, Ramp: 90 * time.Minute, PeakMult: 10}
	g := mustGen(t, Config{
		Students:          1000,
		ReqPerStudentHour: 50,
		Storms:            []DeadlineStorm{storm},
	})
	guard := 10 * time.Minute
	wins := g.BurstWindows(6*time.Hour, 1.5, guard, testGrid)
	if len(wins) != 1 {
		t.Fatalf("want one window, got %v", wins)
	}
	w := wins[0]
	// The exponential build-up only clears the 1.5x threshold near the
	// deadline: the window must contain the cliff plus the guard, but
	// not the whole ramp (that is the planner's whole point).
	if w.End < storm.Deadline+guard {
		t.Fatalf("window %v..%v ends before guarded deadline %v", w.Start, w.End, storm.Deadline+guard)
	}
	raw := g.BurstWindows(6*time.Hour, 1.5, 0, 0)
	if len(raw) != 1 || raw[0].Start <= storm.Deadline-storm.Ramp {
		t.Fatalf("raw windows %v swallowed the entire ramp from %v", raw, storm.Deadline-storm.Ramp)
	}
	if w.Start%testGrid != 0 || w.End%testGrid != 0 {
		t.Fatalf("window %v..%v not grid-aligned", w.Start, w.End)
	}
	if w.PeakBound <= 0 {
		t.Fatalf("PeakBound = %v", w.PeakBound)
	}
}

func TestBurstWindowsClampToHorizon(t *testing.T) {
	g := mustGen(t, Config{
		Students:          1000,
		ReqPerStudentHour: 50,
		Joins:             []JoinStorm{{Start: 0, Window: 30 * time.Minute, PeakMult: 8}},
	})
	horizon := 2 * time.Hour
	wins := g.BurstWindows(horizon, 1.5, 15*time.Minute, testGrid)
	if len(wins) != 1 {
		t.Fatalf("want one window, got %v", wins)
	}
	if wins[0].Start != 0 {
		t.Fatalf("window start %v, want clamp to 0", wins[0].Start)
	}
	if wins[0].End > horizon {
		t.Fatalf("window end %v past horizon %v", wins[0].End, horizon)
	}
}

func TestBurstWindowsMergeOverlap(t *testing.T) {
	g := mustGen(t, Config{
		Students:          1000,
		ReqPerStudentHour: 50,
		Storms:            []DeadlineStorm{{Deadline: 150 * time.Minute, Ramp: 60 * time.Minute, PeakMult: 10}},
		Joins:             []JoinStorm{{Start: 100 * time.Minute, Window: 30 * time.Minute, PeakMult: 6}},
	})
	wins := g.BurstWindows(5*time.Hour, 1.5, 10*time.Minute, testGrid)
	if len(wins) != 1 {
		t.Fatalf("overlapping shapes should merge to one window, got %v", wins)
	}
	for i := 1; i < len(wins); i++ {
		if wins[i].Start <= wins[i-1].End {
			t.Fatalf("windows %d and %d not disjoint: %v", i-1, i, wins)
		}
	}
}

func TestBurstWindowsFactorAboveEveryPeakIsEmpty(t *testing.T) {
	g := mustGen(t, Config{
		Students:          1000,
		ReqPerStudentHour: 50,
		Joins:             []JoinStorm{{Start: time.Hour, Window: 30 * time.Minute, PeakMult: 4}},
	})
	if wins := g.BurstWindows(4*time.Hour, 100, 10*time.Minute, testGrid); wins != nil {
		t.Fatalf("factor above every peak produced windows: %v", wins)
	}
}

// TestBurstWindowsHonest is the planner's core promise: every instant
// where the realized rate multiplier reaches the factor lies inside
// some returned window — a burst can never hide in a "quiet" stretch.
func TestBurstWindowsHonest(t *testing.T) {
	cfg := Config{
		Students:          2000,
		ReqPerStudentHour: 40,
		Diurnal:           CampusDiurnal(),
		Crowds:            []FlashCrowd{{Start: 90 * time.Minute, End: 2 * time.Hour, Mult: 10}},
		Storms:            []DeadlineStorm{{Deadline: 5 * time.Hour, Ramp: 2 * time.Hour, PeakMult: 8}},
		Joins:             []JoinStorm{{Start: 6 * time.Hour, Window: 40 * time.Minute, PeakMult: 6}},
	}
	g := mustGen(t, cfg)
	quietCfg := cfg
	quietCfg.Crowds, quietCfg.Storms, quietCfg.Joins = nil, nil, nil
	quiet := mustGen(t, quietCfg)

	const factor = 1.5
	horizon := 8 * time.Hour
	wins := g.BurstWindows(horizon, factor, 0, 0) // no guard, no grid: the raw classification
	inWindow := func(at time.Duration) bool {
		for _, w := range wins {
			if at >= w.Start && at < w.End {
				return true
			}
		}
		return false
	}
	for at := time.Duration(0); at < horizon; at += 30 * time.Second {
		mult := g.Rate(at) / quiet.Rate(at)
		if mult >= factor && !inWindow(at) {
			t.Fatalf("t=%v has multiplier %.2f >= %v but is outside every window %v", at, mult, factor, wins)
		}
	}
}
