package workload

import (
	"math"
	"testing"
	"time"

	"elearncloud/internal/sim"
)

func shardTestConfig(t *testing.T) *Generator {
	t.Helper()
	g, err := NewGenerator(Config{
		Growth:            LinearGrowth(500, 5000, 2*time.Hour),
		ReqPerStudentHour: 40,
		Storms: []DeadlineStorm{{
			Deadline: 3 * time.Hour,
			Ramp:     time.Hour,
			PeakMult: 4,
		}},
	})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

// TestShardPartition checks the hash partition is a partition: every
// user lands in exactly one shard, lists are ascending, and membership
// is stable (pure function of ID and K).
func TestShardPartition(t *testing.T) {
	g := shardTestConfig(t)
	const K = 7
	sh := g.ShardBy(K)
	seen := make([]int, g.Students())
	for i := range seen {
		seen[i] = -1
	}
	total := 0
	for k := 0; k < K; k++ {
		prev := -1
		for _, u := range sh.Members(k) {
			if u <= prev {
				t.Fatalf("shard %d members not strictly ascending at %d", k, u)
			}
			prev = u
			if seen[u] != -1 {
				t.Fatalf("user %d in shards %d and %d", u, seen[u], k)
			}
			seen[u] = k
			total++
			if got := ShardOf(u, K); got != k {
				t.Fatalf("ShardOf(%d, %d) = %d, but member of shard %d", u, K, got, k)
			}
		}
	}
	if total != g.Students() {
		t.Fatalf("partition covers %d of %d users", total, g.Students())
	}
	var share float64
	for k := 0; k < K; k++ {
		share += sh.CapShare(k)
	}
	if math.Abs(share-1) > 1e-12 {
		t.Fatalf("CapShare sums to %v, want 1", share)
	}
}

// TestShardOneIdentity pins the K=1 exactness property: a single shard
// owns every user, all scale factors are exactly 1.0, and the stream is
// byte-identical to the unsharded one — same times, classes, and users,
// from the same RNG consumption.
func TestShardOneIdentity(t *testing.T) {
	g := shardTestConfig(t)
	horizon := 4 * time.Hour
	var direct []Arrival
	g.Generate(sim.NewRNG(42), 0, horizon, func(a Arrival) { direct = append(direct, a) })

	sg := g.ShardBy(1).Shard(0)
	var sharded []Arrival
	sg.Generate(sim.NewRNG(42), 0, horizon, func(a Arrival) { sharded = append(sharded, a) })

	if len(direct) != len(sharded) {
		t.Fatalf("arrival counts: direct %d, sharded %d", len(direct), len(sharded))
	}
	if len(direct) < 1000 {
		t.Fatalf("workload too small to be meaningful: %d arrivals", len(direct))
	}
	for i := range direct {
		if direct[i] != sharded[i] {
			t.Fatalf("arrival %d: direct %+v, sharded %+v", i, direct[i], sharded[i])
		}
	}
}

// TestShardRateSuperposition checks the thinning identity: at any time,
// the per-shard rates sum to the full rate, and the shard envelopes are
// valid bounds on the shard rates while never exceeding the full bound.
func TestShardRateSuperposition(t *testing.T) {
	g := shardTestConfig(t)
	const K = 5
	sh := g.ShardBy(K)
	gens := make([]*ShardGen, K)
	envs := make([]sim.EnvelopeFunc, K)
	for k := range gens {
		gens[k] = sh.Shard(k)
		envs[k] = gens[k].Envelope()
	}
	base := g.Envelope()
	for _, tm := range []time.Duration{0, 17 * time.Minute, time.Hour, 2*time.Hour + 31*time.Minute, 3 * time.Hour} {
		full := g.Rate(tm)
		sum := 0.0
		for k := range gens {
			r := gens[k].Rate(tm)
			sum += r
			max, until := envs[k](tm)
			if r > max*(1+1e-12) {
				t.Fatalf("t=%v shard %d rate %v exceeds its envelope %v", tm, k, r, max)
			}
			baseMax, baseUntil := base(tm)
			if max > baseMax*(1+1e-12) || until != baseUntil {
				t.Fatalf("t=%v shard %d envelope (%v,%v) outside base (%v,%v)", tm, k, max, until, baseMax, baseUntil)
			}
			// The bound must hold across the whole segment, not just at t.
			for probe := tm; probe < until; probe += (until - tm) / 4 {
				if pr := gens[k].Rate(probe); pr > max*(1+1e-12) {
					t.Fatalf("shard %d rate %v at %v exceeds segment bound %v from t=%v", k, pr, probe, max, tm)
				}
			}
		}
		if math.Abs(sum-full) > 1e-9*full {
			t.Fatalf("t=%v shard rates sum to %v, full rate %v", tm, sum, full)
		}
	}
	var peak float64
	for k := range gens {
		peak += gens[k].MaxRate()
	}
	if math.Abs(peak-g.MaxRate()) > 1e-9*g.MaxRate() {
		t.Fatalf("shard MaxRates sum to %v, full %v", peak, g.MaxRate())
	}
}

// TestShardArrivalsStayHome checks every generated arrival belongs to
// the generating shard's member set and the active population at its
// arrival time.
func TestShardArrivalsStayHome(t *testing.T) {
	g := shardTestConfig(t)
	const K = 4
	sh := g.ShardBy(K)
	total := 0
	for k := 0; k < K; k++ {
		sg := sh.Shard(k)
		members := sh.Members(k)
		own := make(map[int]bool, len(members))
		for _, u := range members {
			own[u] = true
		}
		sg.Generate(sim.NewRNG(7).Stream("shard-test"), 0, 90*time.Minute, func(a Arrival) {
			total++
			if !own[a.UserID] {
				t.Fatalf("shard %d produced foreign user %d", k, a.UserID)
			}
			if n := g.users(a.At); a.UserID >= n {
				t.Fatalf("shard %d produced user %d before activation (active %d at %v)", k, a.UserID, n, a.At)
			}
		})
	}
	if total < 1000 {
		t.Fatalf("workload too small to be meaningful: %d arrivals", total)
	}
}
