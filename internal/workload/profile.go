package workload

import (
	"fmt"
	"time"
)

// DiurnalProfile holds 24 hourly load multipliers (relative to the daily
// mean) and interpolates linearly between hour marks.
type DiurnalProfile struct {
	hours [24]float64
}

// NewDiurnalProfile validates and wraps 24 hourly multipliers.
func NewDiurnalProfile(hours [24]float64) *DiurnalProfile {
	for i, h := range hours {
		if h < 0 {
			panic(fmt.Sprintf("workload: negative multiplier %v at hour %d", h, i))
		}
	}
	return &DiurnalProfile{hours: hours}
}

// CampusDiurnal is the default academic day: near-silence overnight, a
// morning ramp, a late-morning lecture peak, an after-dinner homework
// peak, tapering toward midnight. Multipliers average ~1.0.
func CampusDiurnal() *DiurnalProfile {
	return NewDiurnalProfile([24]float64{
		0.15, 0.08, 0.05, 0.04, 0.05, 0.10, // 00-05
		0.30, 0.60, 1.10, 1.60, 1.90, 1.80, // 06-11
		1.40, 1.30, 1.50, 1.60, 1.40, 1.20, // 12-17
		1.30, 1.70, 2.00, 1.80, 1.20, 0.60, // 18-23
	})
}

// FlatDiurnal returns an always-1.0 profile for analytic tests.
func FlatDiurnal() *DiurnalProfile {
	var h [24]float64
	for i := range h {
		h[i] = 1
	}
	return NewDiurnalProfile(h)
}

// At returns the multiplier at a time of day, interpolating linearly
// between hourly anchors (wrapping midnight).
func (p *DiurnalProfile) At(sinceMidnight time.Duration) float64 {
	const day = 24 * time.Hour
	t := sinceMidnight % day
	if t < 0 {
		t += day
	}
	hour := int(t / time.Hour)
	frac := float64(t%time.Hour) / float64(time.Hour)
	next := (hour + 1) % 24
	return p.hours[hour]*(1-frac) + p.hours[next]*frac
}

// Peak returns the largest hourly multiplier.
func (p *DiurnalProfile) Peak() float64 {
	max := 0.0
	for _, h := range p.hours {
		if h > max {
			max = h
		}
	}
	return max
}

// Mean returns the average hourly multiplier.
func (p *DiurnalProfile) Mean() float64 {
	sum := 0.0
	for _, h := range p.hours {
		sum += h
	}
	return sum / 24
}

// WeekKind classifies a semester week.
type WeekKind int

// Week kinds.
const (
	Teaching WeekKind = iota + 1
	Exams
	Vacation
)

// String returns the kind name.
func (k WeekKind) String() string {
	switch k {
	case Teaching:
		return "teaching"
	case Exams:
		return "exams"
	case Vacation:
		return "vacation"
	default:
		return fmt.Sprintf("WeekKind(%d)", int(k))
	}
}

// Week is one calendar week with a load multiplier on top of the diurnal
// shape.
type Week struct {
	Kind WeekKind
	// Mult scales the base load for the whole week (exam crunch > 1,
	// vacation << 1).
	Mult float64
}

// Calendar is a sequence of weeks starting at simulation time zero.
type Calendar struct {
	weeks []Week
}

// NewCalendar wraps a week sequence; at least one week is required.
func NewCalendar(weeks []Week) *Calendar {
	if len(weeks) == 0 {
		panic("workload: NewCalendar with no weeks")
	}
	for i, w := range weeks {
		if w.Mult < 0 {
			panic(fmt.Sprintf("workload: week %d has negative multiplier", i))
		}
	}
	return &Calendar{weeks: append([]Week(nil), weeks...)}
}

// StandardSemester is an 18-week term: orientation, 6 teaching weeks, a
// midterm exam week, 6 more teaching weeks, a revision week, two final
// exam weeks ramping to the semester's peak load, then vacation.
func StandardSemester() *Calendar {
	weeks := []Week{{Kind: Teaching, Mult: 0.6}} // orientation
	for i := 0; i < 6; i++ {
		weeks = append(weeks, Week{Kind: Teaching, Mult: 1.0})
	}
	weeks = append(weeks, Week{Kind: Exams, Mult: 1.8}) // midterms
	for i := 0; i < 6; i++ {
		weeks = append(weeks, Week{Kind: Teaching, Mult: 1.0})
	}
	weeks = append(weeks,
		Week{Kind: Teaching, Mult: 1.3},  // revision
		Week{Kind: Exams, Mult: 2.0},     // finals 1
		Week{Kind: Exams, Mult: 2.4},     // finals 2 (peak)
		Week{Kind: Vacation, Mult: 0.05}, // term break
	)
	return NewCalendar(weeks)
}

// Len returns the number of weeks.
func (c *Calendar) Len() int { return len(c.weeks) }

// Duration returns the calendar's total span.
func (c *Calendar) Duration() time.Duration {
	return time.Duration(len(c.weeks)) * 7 * 24 * time.Hour
}

// WeekAt returns the week covering virtual time t; past the end, the last
// week repeats (steady state).
func (c *Calendar) WeekAt(t time.Duration) Week {
	idx := int(t / (7 * 24 * time.Hour))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.weeks) {
		idx = len(c.weeks) - 1
	}
	return c.weeks[idx]
}

// PeakMult returns the largest weekly multiplier.
func (c *Calendar) PeakMult() float64 {
	max := 0.0
	for _, w := range c.weeks {
		if w.Mult > max {
			max = w.Mult
		}
	}
	return max
}

// FlashCrowd is a bounded window with an extra load multiplier, modeling
// a scheduled online exam where the whole cohort arrives at once.
type FlashCrowd struct {
	Start time.Duration
	End   time.Duration
	// Mult multiplies the base rate inside the window (e.g. 10).
	Mult float64
	// ExamTraffic switches the request mix to ExamMix inside the window.
	ExamTraffic bool
}

// Active reports whether t falls inside the window.
func (f FlashCrowd) Active(t time.Duration) bool {
	return t >= f.Start && t < f.End
}

// sanity validates a crowd definition.
func (f FlashCrowd) sanity() error {
	if f.End <= f.Start {
		return fmt.Errorf("workload: flash crowd ends (%v) before it starts (%v)", f.End, f.Start)
	}
	if f.Mult <= 0 {
		return fmt.Errorf("workload: flash crowd multiplier %v must be positive", f.Mult)
	}
	return nil
}
