package security

import (
	"fmt"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/lms"
	"elearncloud/internal/sim"
)

// IncidentKind classifies a security event.
type IncidentKind int

// Incident kinds.
const (
	// Breach is a successful unauthorized remote access.
	Breach IncidentKind = iota + 1
	// DataLoss is destruction of locally stored data by physical damage.
	DataLoss
)

// String returns the kind name.
func (k IncidentKind) String() string {
	switch k {
	case Breach:
		return "breach"
	case DataLoss:
		return "data-loss"
	default:
		return fmt.Sprintf("IncidentKind(%d)", int(k))
	}
}

// Incident is one realized security event.
type Incident struct {
	// At is when the incident occurred.
	At time.Duration
	// Kind is what happened.
	Kind IncidentKind
	// Location is which side was hit.
	Location lms.Location
	// SensitiveAssets is how many sensitive assets were exposed or
	// destroyed.
	SensitiveAssets int
	// BytesLost is destroyed data (DataLoss only).
	BytesLost float64
}

// Config parameterizes the threat model.
type Config struct {
	// AttackRatePerMonth is the Poisson rate of serious remote attack
	// attempts against the institution's systems.
	AttackRatePerMonth float64
	// PublicBreachProb is an attack's success probability against
	// public-cloud-hosted assets (shared infrastructure: larger attack
	// surface, co-tenancy, credential sprawl).
	PublicBreachProb float64
	// PrivateBreachProb is the success probability against on-premise
	// assets reachable only through the campus perimeter.
	PrivateBreachProb float64
	// PhysicalMTBFYears is the mean time between physically destructive
	// events (fire, flood, theft, disk-array loss) for the on-premise
	// unit.
	PhysicalMTBFYears float64
	// DamageLossFraction is the fraction of locally stored bytes a
	// physical event destroys.
	DamageLossFraction float64
	// OffsiteBackup eliminates data loss (but not the incident itself).
	OffsiteBackup bool
}

// DefaultConfig returns the baseline threat environment used by the
// experiments.
func DefaultConfig() Config {
	return Config{
		AttackRatePerMonth: 30,
		PublicBreachProb:   0.020,
		PrivateBreachProb:  0.004,
		PhysicalMTBFYears:  15,
		DamageLossFraction: 0.3,
	}
}

// Validate rejects out-of-range parameters.
func (c Config) Validate() error {
	if c.AttackRatePerMonth < 0 {
		return fmt.Errorf("security: negative attack rate")
	}
	if c.PublicBreachProb < 0 || c.PublicBreachProb > 1 ||
		c.PrivateBreachProb < 0 || c.PrivateBreachProb > 1 {
		return fmt.Errorf("security: breach probabilities outside [0,1]")
	}
	if c.PhysicalMTBFYears < 0 || c.DamageLossFraction < 0 || c.DamageLossFraction > 1 {
		return fmt.Errorf("security: bad physical damage parameters")
	}
	return nil
}

// ConfigFor adapts the default threat environment to a deployment model.
// The desktop baseline keeps assets on lab PCs: the remote surface is
// small but local mishandling ("finding out digital assets", §III.6) is
// far more likely, and lab hardware is at least as fragile as a server
// room.
func ConfigFor(kind deploy.Kind) Config {
	c := DefaultConfig()
	if kind == deploy.Desktop {
		// Local storage on shared lab PCs: high local-theft probability
		// modeled as a "private" breach probability well above the
		// datacenter's, and more frequent physical loss (no RAID, no
		// controlled room).
		c.PrivateBreachProb = 0.05
		c.PhysicalMTBFYears = 5
	}
	return c
}

// ThreatModel drives attacks and physical damage against a deployment's
// asset placement on the simulation engine.
type ThreatModel struct {
	eng    *sim.Engine
	rng    *sim.RNG
	cfg    Config
	assets *lms.AssetStore

	incidents []Incident
	stops     []func()
}

// NewThreatModel validates cfg and builds a model over the assets.
func NewThreatModel(eng *sim.Engine, rng *sim.RNG, cfg Config, assets *lms.AssetStore) (*ThreatModel, error) {
	if eng == nil || rng == nil || assets == nil {
		return nil, fmt.Errorf("security: nil engine, rng or assets")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ThreatModel{eng: eng, rng: rng, cfg: cfg, assets: assets}, nil
}

// Start schedules the attack and damage processes; the returned stop
// cancels future events.
func (m *ThreatModel) Start() (stop func()) {
	if m.cfg.AttackRatePerMonth > 0 {
		meanGap := secondsPerMonth / m.cfg.AttackRatePerMonth
		m.scheduleNext("security/attack", meanGap, m.attack)
	}
	if m.cfg.PhysicalMTBFYears > 0 {
		meanGap := m.cfg.PhysicalMTBFYears * 12 * secondsPerMonth
		m.scheduleNext("security/damage", meanGap, m.physicalDamage)
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		for _, s := range m.stops {
			s()
		}
	}
}

const secondsPerMonth = 730 * 3600

// scheduleNext arms a self-rescheduling exponential event stream.
func (m *ThreatModel) scheduleNext(name string, meanGapSec float64, fire func()) {
	var ev *sim.Event
	var arm func()
	canceled := false
	arm = func() {
		ev = m.eng.Schedule(sim.Seconds(m.rng.Exp(meanGapSec)), name, func() {
			if canceled {
				return
			}
			fire()
			arm()
		})
	}
	arm()
	m.stops = append(m.stops, func() {
		canceled = true
		m.eng.Cancel(ev)
	})
}

// attack resolves one remote attack attempt: each populated location is
// probed, succeeding with its location-specific probability.
func (m *ThreatModel) attack() {
	for _, loc := range []lms.Location{lms.OnPublic, lms.OnPrivate} {
		if m.assets.Count(loc) == 0 {
			continue
		}
		p := m.cfg.PrivateBreachProb
		if loc == lms.OnPublic {
			p = m.cfg.PublicBreachProb
		}
		if !m.rng.Bernoulli(p) {
			continue
		}
		m.incidents = append(m.incidents, Incident{
			At:              m.eng.Now(),
			Kind:            Breach,
			Location:        loc,
			SensitiveAssets: m.assets.SensitiveCount(loc),
		})
	}
}

// physicalDamage resolves one destructive event against on-premise
// storage.
func (m *ThreatModel) physicalDamage() {
	if m.assets.Count(lms.OnPrivate) == 0 {
		return
	}
	lost := 0.0
	sensitive := m.assets.SensitiveCount(lms.OnPrivate)
	if !m.cfg.OffsiteBackup {
		lost = m.assets.BytesAt(lms.OnPrivate) * m.cfg.DamageLossFraction
	} else {
		sensitive = 0 // backed up: nothing is gone
	}
	m.incidents = append(m.incidents, Incident{
		At:              m.eng.Now(),
		Kind:            DataLoss,
		Location:        lms.OnPrivate,
		SensitiveAssets: sensitive,
		BytesLost:       lost,
	})
}

// Incidents returns a copy of all realized incidents.
func (m *ThreatModel) Incidents() []Incident {
	return append([]Incident(nil), m.incidents...)
}

// Breaches counts successful remote accesses.
func (m *ThreatModel) Breaches() int { return m.countKind(Breach) }

// DataLossEvents counts physical-damage incidents.
func (m *ThreatModel) DataLossEvents() int { return m.countKind(DataLoss) }

func (m *ThreatModel) countKind(k IncidentKind) int {
	n := 0
	for _, in := range m.incidents {
		if in.Kind == k {
			n++
		}
	}
	return n
}

// SensitiveExposures sums sensitive assets across breach incidents: the
// "digital assets (tests, exam questions, results)" exposure the paper
// highlights.
func (m *ThreatModel) SensitiveExposures() int {
	n := 0
	for _, in := range m.incidents {
		if in.Kind == Breach {
			n += in.SensitiveAssets
		}
	}
	return n
}

// BytesLost sums destroyed data.
func (m *ThreatModel) BytesLost() float64 {
	var sum float64
	for _, in := range m.incidents {
		sum += in.BytesLost
	}
	return sum
}

// ExpectedBreachesPerMonth returns the analytic breach rate for the
// current asset placement: attacks/month × Σ per-location success.
func (m *ThreatModel) ExpectedBreachesPerMonth() float64 {
	rate := 0.0
	if m.assets.Count(lms.OnPublic) > 0 {
		rate += m.cfg.AttackRatePerMonth * m.cfg.PublicBreachProb
	}
	if m.assets.Count(lms.OnPrivate) > 0 {
		rate += m.cfg.AttackRatePerMonth * m.cfg.PrivateBreachProb
	}
	return rate
}

// ExpectedDataLossPerYear returns the analytic physical-loss event rate.
func (m *ThreatModel) ExpectedDataLossPerYear() float64 {
	if m.cfg.PhysicalMTBFYears <= 0 || m.assets.Count(lms.OnPrivate) == 0 {
		return 0
	}
	return 1 / m.cfg.PhysicalMTBFYears
}

// AnnualSensitiveRisk returns the analytic expected number of
// sensitive-asset compromise events per year for an asset placement
// under this threat environment: remote breaches weighted by the share
// of sensitive assets at each location, plus unrecoverable physical loss
// of in-house sensitive data. It is the deterministic risk index the
// advisor's security scores are built from.
func (c Config) AnnualSensitiveRisk(assets *lms.AssetStore) float64 {
	attacksPerYear := c.AttackRatePerMonth * 12
	risk := attacksPerYear * (c.PublicBreachProb*assets.SensitiveShare(lms.OnPublic) +
		c.PrivateBreachProb*assets.SensitiveShare(lms.OnPrivate))
	if c.PhysicalMTBFYears > 0 && !c.OffsiteBackup {
		risk += (1 / c.PhysicalMTBFYears) * assets.SensitiveShare(lms.OnPrivate) * c.DamageLossFraction
	}
	return risk
}
