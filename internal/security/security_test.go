package security

import (
	"math"
	"testing"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/lms"
	"elearncloud/internal/sim"
)

const simYears = 40 // long horizon to tighten stochastic estimates

func runThreat(t *testing.T, cfg Config, place func(*lms.AssetStore)) *ThreatModel {
	t.Helper()
	eng := sim.NewEngine(77)
	assets := lms.NewAssetStore(20, 500)
	place(assets)
	m, err := NewThreatModel(eng, eng.Stream("threat"), cfg, assets)
	if err != nil {
		t.Fatal(err)
	}
	stop := m.Start()
	defer stop()
	if err := eng.Run(simYears * 365 * 24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBreachRateMatchesAnalytic(t *testing.T) {
	cfg := DefaultConfig()
	m := runThreat(t, cfg, func(a *lms.AssetStore) { a.PlaceAll(lms.OnPublic) })
	months := float64(simYears * 12)
	want := m.ExpectedBreachesPerMonth() * months
	got := float64(m.Breaches())
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("breaches = %v, want ~%v", got, want)
	}
	if m.DataLossEvents() > 0 {
		t.Fatal("all-public placement suffered on-prem data loss")
	}
}

func TestPublicPlacementBreachesMoreThanPrivate(t *testing.T) {
	cfg := DefaultConfig()
	pub := runThreat(t, cfg, func(a *lms.AssetStore) { a.PlaceAll(lms.OnPublic) })
	priv := runThreat(t, cfg, func(a *lms.AssetStore) { a.PlaceAll(lms.OnPrivate) })
	if pub.Breaches() <= priv.Breaches() {
		t.Fatalf("public breaches (%d) should exceed private (%d) — paper §IV.A",
			pub.Breaches(), priv.Breaches())
	}
	// But only private placements lose data to physical damage.
	if priv.DataLossEvents() == 0 {
		t.Fatal("private placement never suffered physical damage in 40y at MTBF 15y")
	}
	if priv.BytesLost() <= 0 {
		t.Fatal("physical damage lost no bytes without backup")
	}
}

func TestHybridPinningLimitsSensitiveExposure(t *testing.T) {
	cfg := DefaultConfig()
	allPub := runThreat(t, cfg, func(a *lms.AssetStore) { a.PlaceAll(lms.OnPublic) })
	pinned := runThreat(t, cfg, func(a *lms.AssetStore) { a.PlaceSensitive(lms.OnPrivate, lms.OnPublic) })
	// With sensitive assets pinned private, public breaches expose zero
	// sensitive assets; exposures come only from rarer private breaches.
	if pinned.SensitiveExposures() >= allPub.SensitiveExposures() {
		t.Fatalf("pinned exposures (%d) should be far below all-public (%d)",
			pinned.SensitiveExposures(), allPub.SensitiveExposures())
	}
}

func TestOffsiteBackupPreventsByteLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OffsiteBackup = true
	m := runThreat(t, cfg, func(a *lms.AssetStore) { a.PlaceAll(lms.OnPrivate) })
	if m.BytesLost() != 0 {
		t.Fatalf("BytesLost = %v with offsite backup", m.BytesLost())
	}
	if m.DataLossEvents() == 0 {
		t.Fatal("incidents should still be recorded with backup")
	}
}

func TestDataLossRateMatchesAnalytic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AttackRatePerMonth = 0 // isolate the damage process
	m := runThreat(t, cfg, func(a *lms.AssetStore) { a.PlaceAll(lms.OnPrivate) })
	want := m.ExpectedDataLossPerYear() * simYears
	got := float64(m.DataLossEvents())
	if math.Abs(got-want)/want > 0.8 { // few events: loose bound
		t.Fatalf("data-loss events = %v, want ~%v", got, want)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{AttackRatePerMonth: -1},
		{PublicBreachProb: 2},
		{PrivateBreachProb: -0.1},
		{PhysicalMTBFYears: -1},
		{DamageLossFraction: 1.5},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("case %d: bad config validated", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewThreatModelNilArgs(t *testing.T) {
	eng := sim.NewEngine(1)
	assets := lms.NewAssetStore(1, 1)
	if _, err := NewThreatModel(nil, eng.Stream("x"), DefaultConfig(), assets); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewThreatModel(eng, nil, DefaultConfig(), assets); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := NewThreatModel(eng, eng.Stream("x"), DefaultConfig(), nil); err == nil {
		t.Fatal("nil assets accepted")
	}
}

func TestConfigForDesktopIsRiskier(t *testing.T) {
	d := ConfigFor(deploy.Desktop)
	c := ConfigFor(deploy.Public)
	if d.PrivateBreachProb <= c.PrivateBreachProb {
		t.Fatal("desktop local exposure should exceed datacenter")
	}
	if d.PhysicalMTBFYears >= c.PhysicalMTBFYears {
		t.Fatal("lab PCs should fail more often than a server room")
	}
}

func TestStopHaltsProcesses(t *testing.T) {
	eng := sim.NewEngine(5)
	assets := lms.NewAssetStore(5, 50)
	assets.PlaceAll(lms.OnPublic)
	m, err := NewThreatModel(eng, eng.Stream("threat"), DefaultConfig(), assets)
	if err != nil {
		t.Fatal(err)
	}
	stop := m.Start()
	stop()
	stop() // double-stop is safe
	if err := eng.Run(365 * 24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if len(m.Incidents()) != 0 {
		t.Fatalf("stopped model still produced %d incidents", len(m.Incidents()))
	}
}

func TestIncidentKindString(t *testing.T) {
	if Breach.String() != "breach" || DataLoss.String() != "data-loss" {
		t.Fatal("kind strings wrong")
	}
	if IncidentKind(9).String() != "IncidentKind(9)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestIncidentsReturnsCopy(t *testing.T) {
	m := runThreat(t, DefaultConfig(), func(a *lms.AssetStore) { a.PlaceAll(lms.OnPublic) })
	ins := m.Incidents()
	if len(ins) == 0 {
		t.Skip("no incidents this seed")
	}
	ins[0].SensitiveAssets = -99
	if m.Incidents()[0].SensitiveAssets == -99 {
		t.Fatal("Incidents exposed internal state")
	}
}
