// Package security models the threat side of the paper's comparison:
// the §III risk that "many organizations feel insecure ... storing
// their data and applications on systems that they do not have full
// control", §IV.A's "migrating workloads to a shared infrastructure
// increases the potential for unauthorized access and exposure", and
// §IV.B's "risk of data loss due to physical damage of the unit" for
// on-premise hardware. figure6 (incidents over ten years) and figure9
// (physical damage to the on-premise unit) are its artifacts.
//
// The model is stochastic but simple by design: remote attacks arrive
// as a Poisson process and succeed with a per-location probability;
// physical damage to owned hardware arrives with a configured MTBF and
// destroys a fraction of locally stored data unless an off-site backup
// exists. What the experiments compare is the *ordering and scaling*
// of incident counts across deployment models, which is exactly the
// argument the paper makes qualitatively.
//
// Entry points: ConfigFor(kind) yields the per-deployment-model threat
// Config (attack surface and backup posture differ by model;
// DefaultConfig is the neutral base). NewThreatModel(engine, rng,
// config, assets) arms the model against an lms.AssetStore on the
// simulation clock; it emits Incidents (IncidentKind: breach,
// exposure, data loss) that the scenario run counts and the artifacts
// aggregate. scenario.Config.EnableThreats is the usual switch.
package security
