package scenario

import (
	"elearncloud/internal/cloud"
	"elearncloud/internal/lms"
	"elearncloud/internal/scale"
	"elearncloud/internal/sim"
)

// serverEntry pairs a VM with the app server running on it.
type serverEntry struct {
	vm  *cloud.VM
	srv *lms.AppServer
}

// fleet manages a pool of (VM, app server) pairs on one datacenter and
// implements scale.Target so autoscalers can drive it. The app server is
// registered with the cluster immediately on provisioning; the cluster's
// balancer skips it until the VM finishes booting.
type fleet struct {
	eng     *sim.Engine
	dc      *cloud.Datacenter
	cluster *lms.Cluster
	spec    cloud.InstanceSpec
	maxJobs int
	max     int // 0 = unbounded

	entries []*serverEntry
	peak    int
}

var _ scale.Target = (*fleet)(nil)

// newFleet wires a fleet; max bounds ScaleTo (0 = unbounded).
func newFleet(eng *sim.Engine, dc *cloud.Datacenter, cluster *lms.Cluster, spec cloud.InstanceSpec, max int) *fleet {
	if eng == nil || dc == nil || cluster == nil {
		panic("scenario: newFleet with nil dependency")
	}
	return &fleet{eng: eng, dc: dc, cluster: cluster, spec: spec, max: max}
}

// Desired implements scale.Target: current fleet size including booting
// servers.
func (f *fleet) Desired() int { return len(f.entries) }

// Peak returns the largest fleet size reached.
func (f *fleet) Peak() int { return f.peak }

// Load implements scale.Target.
func (f *fleet) Load() float64 { return f.cluster.Load() }

// Arrivals implements scale.ArrivalMeter: the cluster's dedicated
// submission counter. A derived Served()+Rejected()+Active() sum is NOT
// monotone — retireOne drains servers gracefully, so Active() drops
// before the drained jobs reach Served() — and a dip would wrap the
// fitter's unsigned delta into an astronomical rate observation.
func (f *fleet) Arrivals() uint64 {
	return f.cluster.Arrivals()
}

// ScaleTo implements scale.Target: grows by provisioning, shrinks by
// gracefully retiring the least-loaded newest servers. Growth stops
// silently at datacenter capacity (the private-cloud reality).
func (f *fleet) ScaleTo(n int) {
	if n < 0 {
		n = 0
	}
	if f.max > 0 && n > f.max {
		n = f.max
	}
	for len(f.entries) < n {
		vm, err := f.dc.Provision(f.spec, nil)
		if err != nil {
			return // datacenter full: fixed capacity reached
		}
		srv := lms.NewAppServer(f.eng, vm, f.maxJobs)
		f.cluster.Add(srv)
		f.entries = append(f.entries, &serverEntry{vm: vm, srv: srv})
		if len(f.entries) > f.peak {
			f.peak = len(f.entries)
		}
	}
	for len(f.entries) > n {
		f.retireOne()
	}
}

// retireOne removes the best scale-in candidate: among the newest
// servers, the one with the fewest in-flight jobs (booting servers are
// ideal victims — zero jobs).
func (f *fleet) retireOne() {
	if len(f.entries) == 0 {
		return
	}
	best := len(f.entries) - 1
	for i := len(f.entries) - 1; i >= 0; i-- {
		if f.entries[i].srv.Active() < f.entries[best].srv.Active() {
			best = i
		}
		if f.entries[best].srv.Active() == 0 {
			break
		}
	}
	e := f.entries[best]
	f.entries = append(f.entries[:best], f.entries[best+1:]...)
	f.cluster.Remove(e.srv)
	vm := e.vm
	e.srv.Retire(func() { f.dc.Terminate(vm) })
}

// FailHost destroys every server on the given host: in-flight jobs are
// aborted without callbacks (clients see them vanish), the servers leave
// the cluster, and the VMs terminate. It returns the aborted job count.
// Callers mark the host failed on the datacenter afterward.
func (f *fleet) FailHost(hostID int) int {
	killed := 0
	kept := f.entries[:0]
	for _, e := range f.entries {
		if h := e.vm.Host(); h != nil && h.ID == hostID {
			killed += e.srv.Kill()
			f.cluster.Remove(e.srv)
			f.dc.Terminate(e.vm)
			continue
		}
		kept = append(kept, e)
	}
	f.entries = kept
	return killed
}

// Shutdown retires everything immediately (end of run).
func (f *fleet) Shutdown() {
	f.ScaleTo(0)
}
