package scenario_test

import (
	"fmt"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/scenario"
	"elearncloud/internal/workload"
)

// ExampleBatch declares two independent scenario runs as named jobs and
// executes them on a worker pool. The jobs are added with a zero
// Config.Seed, so each gets its own seed derived from (batch seed, job
// name) — worker count changes only how fast the results arrive, never
// what they are, and All() reports them in submission order.
func ExampleBatch() {
	cfg := func(kind deploy.Kind) scenario.Config {
		return scenario.Config{
			Kind:              kind, // Seed left zero: derived per job name
			Students:          50,
			ReqPerStudentHour: 20,
			Duration:          20 * time.Minute,
			Diurnal:           workload.FlatDiurnal(),
		}
	}
	runs, err := scenario.NewBatch(7).
		Add("public", cfg(deploy.Public)).
		Add("private", cfg(deploy.Private)).
		Run(2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, r := range runs.All() {
		fmt.Printf("%s served requests: %v\n", r.Name, r.Res.Served > 0)
	}
	// Output:
	// public served requests: true
	// private served requests: true
}

// ExamplePool shares one work-conserving pool across two nesting
// levels, the way cmd/elbench shares its -parallel budget between the
// across-experiments loop and each experiment's internal batch. The
// pool caps global concurrency at its worker count; results land in
// their own slots, so the output is deterministic for any cap.
func ExamplePool() {
	pool := scenario.NewPool(4)
	sums := make([]int, 3)
	err := pool.ForEach(3, func(group int) error {
		// Each outer task fans out an inner level on the same pool:
		// tokens freed by a drained group flow to the others.
		parts := make([]int, 4)
		if err := pool.ForEach(4, func(i int) error {
			parts[i] = (group + 1) * (i + 1)
			return nil
		}); err != nil {
			return err
		}
		for _, p := range parts {
			sums[group] += p
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(sums)
	// Output:
	// [10 20 30]
}

// ExamplePool_stats reads the pool's realized-utilization telemetry.
// A one-worker pool is the serial reference path, so its counters are
// deterministic: every job ran on the calling goroutine, nothing was
// recruited or handed off, and concurrency peaked at one. WithMeter
// carves a per-scope job count out of the shared pool — this is how
// cmd/elbench attributes jobs to each experiment in its -json record.
func ExamplePool_stats() {
	pool := scenario.NewPool(1)
	var exp1, exp2 scenario.Meter
	_ = pool.WithMeter(&exp1).ForEach(3, func(int) error { return nil })
	_ = pool.WithMeter(&exp2).ForEach(5, func(int) error { return nil })
	s := pool.Stats()
	fmt.Printf("jobs=%d recruits=%d handoffs=%d peak=%d\n",
		s.JobsRun, s.HelperRecruits, s.Handoffs, s.PeakConcurrent)
	fmt.Printf("exp1=%d exp2=%d\n", exp1.Jobs(), exp2.Jobs())
	// Output:
	// jobs=8 recruits=0 handoffs=0 peak=1
	// exp1=3 exp2=5
}
