package scenario

// This file is the auto-fidelity hybrid runner: the fluid model
// integrates the quiet stretches of the horizon, request-level DES
// simulates the bursty windows, and the seams are stitched under
// documented rules. The construction:
//
//   - The planner asks the workload for its burst windows
//     (workload.BurstWindows): envelope segments whose crowd/storm/join
//     multiplier bound reaches Config.HybridIntensity, padded by
//     Config.HybridGuard on each side and aligned to the fluid
//     integration grid (fluidStep), so fluid segments accumulate floats
//     in exactly FluidRun's order. The plan is a pure function of the
//     config — no RNG — so every worker count produces the same plan.
//   - Each DES window runs as an ordinary pool job with RNG streams
//     rooted at SeedFor(seed, "hybrid/<window>"), riding the sharded
//     engine (shardedRun) so Config.Shards applies inside windows; the
//     merged output is a pure function of (config, seed, plan) at any
//     -parallel.
//   - Stitching, fluid→DES: the engine clock warps to the window start
//     (sim.Import), the elastic fleet warm-starts at the fluid model's
//     server count, the queue is seeded with round(rate·meanService)
//     synthetic in-flight jobs (Little's law), and the CDN edge is
//     pre-warmed with popularity-sampled objects. Arrivals begin after
//     bootGrace, inside the guard margin, exactly like a direct run's
//     opening.
//   - Stitching, DES→fluid: requests still in flight at the window's
//     close (CarriedOut) are handed back as served mass — the fluid
//     model assumes all offered load completes — and capacity
//     integration resumes on the next grid instant.
//
// Error sources at a seam, each bounded and tested: the bootGrace
// arrival gap at a window opening (≤ bootGrace × quiet rate requests,
// guard-protected so the gap is quiet); the synthetic backlog's mean
// service approximation; and the in-flight handoff at close (≈ rate ×
// meanService requests counted served without latency samples). The
// boundary property tests in hybrid_test.go pin the conservation
// identity Arrivals == Served + Rejected + Offline + CarriedOut inside
// every window, VM-hour additivity across seams, the exact-FluidRun
// identity for empty plans, and the cross-fidelity band for all-DES
// plans; the hybrid metamorph family fuzzes the agreement against Run.

import (
	"fmt"
	"math"
	"time"

	"elearncloud/internal/cdn"
	"elearncloud/internal/metrics"
	"elearncloud/internal/workload"
)

// desWindow is one planned DES window with its warm-start state: what
// runShard needs to open the window as if the simulation had been
// running since t=0.
type desWindow struct {
	index      int
	start, end time.Duration
	// initServers is the public fleet the fluid model runs at the
	// window's opening instant (pre-share; shards scale it down).
	initServers int
	// backlog is the in-flight request count to seed (Little's law at
	// the opening instant, pre-share).
	backlog int
	// cdnWarm is how many popularity-sampled objects to pre-load into
	// the edge cache (zero when the CDN is off).
	cdnWarm int
}

// FidelityPlan is the hybrid planner's partition of the horizon: the
// DES windows, with everything outside them integrated by the fluid
// model. It is exported for tests, table11's plan report and elbench.
type FidelityPlan struct {
	// Horizon is the planned span.
	Horizon time.Duration
	// Windows are the DES windows, sorted and disjoint.
	Windows []workload.BurstWindow
}

// DESHours returns the request-level share of the horizon in hours.
func (p *FidelityPlan) DESHours() float64 {
	var h float64
	for _, w := range p.Windows {
		h += w.Duration().Hours()
	}
	return h
}

// FluidHours returns the flow-level share of the horizon in hours.
func (p *FidelityPlan) FluidHours() float64 {
	return p.Horizon.Hours() - p.DESHours()
}

// desWindows runs the planner and derives each window's warm-start
// state from the fluid model at the window's opening instant.
func (m *fluidModel) desWindows() []desWindow {
	cfg := m.cfg
	wins := m.gen.BurstWindows(cfg.Duration, cfg.HybridIntensity, cfg.HybridGuard, fluidStep)
	cdnWarm := 0
	if cfg.EnableCDN {
		cdnWarm = 3 * cdn.DefaultConfig(cfg.Courses).CacheObjects
	}
	des := make([]desWindow, len(wins))
	for i, w := range wins {
		pub, _ := m.split(m.neededAt(w.Start))
		des[i] = desWindow{
			index:       i,
			start:       w.Start,
			end:         w.End,
			initServers: pub,
			backlog:     int(math.Round(m.gen.Rate(w.Start) * m.meanSvc)),
			cdnWarm:     cdnWarm,
		}
	}
	return des
}

// PlanFidelity runs only the planner: the partition HybridRun would
// execute for cfg. Deterministic — no RNG is consulted.
func PlanFidelity(cfg Config) (*FidelityPlan, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	gen, err := genFor(cfg)
	if err != nil {
		return nil, err
	}
	return &FidelityPlan{
		Horizon: cfg.Duration,
		Windows: gen.BurstWindows(cfg.Duration, cfg.HybridIntensity, cfg.HybridGuard, fluidStep),
	}, nil
}

// HybridRun executes cfg at automatic fidelity: fluid integration
// through quiet stretches, request-level DES (honoring Config.Shards)
// inside burst windows, state stitched across each boundary. The
// result is a pure function of (config, seed, plan) at any -parallel.
// A nil pool runs windows on a one-off DefaultWorkers pool.
//
// Compared to Run, the Result's Latency, P95Series and Utilization
// cover only the DES windows — the storm regimes, which are the ones
// with latency worth measuring — while Served, VM-hours, egress and
// Cost cover the whole horizon. Shards/ShardEvents stay zero (window
// shard layouts are per-window; the pool telemetry records the
// fidelity split instead).
func HybridRun(cfg Config, pool *Pool) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	m, err := newFluidModel(cfg)
	if err != nil {
		return nil, err
	}
	des := m.desWindows()

	// Fluid integration over the quiet segments, in time order — the
	// same instants a full FluidRun visits, minus the windows.
	acc := m.newAccum()
	cursor := time.Duration(0)
	for i := range des {
		m.integrate(acc, cursor, des[i].start)
		cursor = des[i].end
	}
	m.integrate(acc, cursor, cfg.Duration)

	// DES windows as ordinary pool jobs, seeded per window.
	results := make([]*Result, len(des))
	if len(des) > 0 {
		if err := pool.ForEach(len(des), func(i int) error {
			r, err := runHybridWindow(cfg, pool, des[i])
			if err != nil {
				return fmt.Errorf("hybrid window %d: %w", i, err)
			}
			results[i] = r
			return nil
		}); err != nil {
			return nil, err
		}
	}

	res, err := stitchHybrid(cfg, m, acc, des, results)
	if err != nil {
		return nil, err
	}
	if pool != nil {
		pool.stats.noteHybrid(res.FluidSimHours, res.DESSimHours)
	}
	return res, nil
}

// runHybridWindow executes one planned DES window with the seed and
// host-failure gating HybridRun applies, honoring cfg.Shards.
func runHybridWindow(cfg Config, pool *Pool, w desWindow) (*Result, error) {
	sub := cfg
	sub.Seed = SeedFor(cfg.Seed, fmt.Sprintf("hybrid/%d", w.index))
	if sub.HostFailureAt > 0 &&
		(sub.HostFailureAt < w.start || sub.HostFailureAt >= w.end) {
		sub.HostFailureAt = 0 // failure falls in fluid time, not this window
	}
	return shardedRun(sub, pool, &w)
}

// HybridSpotCheck runs window i of cfg's fidelity plan alone, exactly
// as HybridRun would run it — same seed, same warm-start state, same
// shard layout — and returns its standalone Result. It is the honesty
// probe: a pure request-level measurement of one burst window that the
// hybrid artifact can be checked against (table11's spot-check row).
func HybridSpotCheck(cfg Config, pool *Pool, i int) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	m, err := newFluidModel(cfg)
	if err != nil {
		return nil, err
	}
	des := m.desWindows()
	if i < 0 || i >= len(des) {
		return nil, fmt.Errorf("scenario: spot-check window %d of a %d-window plan", i, len(des))
	}
	return runHybridWindow(cfg, pool, des[i])
}

// stitchHybrid assembles the fluid accumulators and the window results
// into one whole-horizon Result, folding in window-index order so
// every float reduction has one fixed evaluation order.
func stitchHybrid(cfg Config, m *fluidModel, acc *fluidAccum, des []desWindow, wins []*Result) (*Result, error) {
	f := acc.res
	res := &Result{
		Kind:          cfg.Kind,
		Scaler:        cfg.Scaler,
		Duration:      cfg.Duration,
		Latency:       metrics.DefaultLatency(),
		PrivateHosts:  m.privateHosts(),
		FluidSimHours: acc.hours,
		// Fluid-side totals first; windows fold in below.
		VMHoursPublic:  f.VMHoursPublic,
		VMHoursPrivate: f.VMHoursPrivate,
		PeakServers:    f.PeakServers,
		EgressGB:       acc.egressBytes / 1e9,
		CDNGB:          acc.cdnBytes / 1e9,
		Served:         uint64(math.Round(f.OfferedRequests)),
	}
	fluidCDNGB := res.CDNGB

	for i, r := range wins {
		res.Latency.Merge(r.Latency)
		res.Arrivals += r.Arrivals
		// A window's in-flight handoff joins the served mass: the fluid
		// side it returns to assumes all offered load completes.
		res.Served += r.Served + uint64(r.CarriedOut)
		res.Rejected += r.Rejected
		res.Offline += r.Offline
		res.PolicyViolations += r.PolicyViolations
		res.VMHoursPublic += r.VMHoursPublic
		res.VMHoursPrivate += r.VMHoursPrivate
		res.EgressGB += r.EgressGB
		res.CDNGB += r.CDNGB
		res.KilledJobs += r.KilledJobs
		res.LostWork += r.LostWork
		res.Disconnects += r.Disconnects
		res.Breaches += r.Breaches
		res.SensitiveExposures += r.SensitiveExposures
		res.DataLossEvents += r.DataLossEvents
		res.BytesLost += r.BytesLost
		res.CarriedIn += r.CarriedIn
		res.CarriedOut += r.CarriedOut
		res.Events += r.Events
		if r.PeakServers > res.PeakServers {
			res.PeakServers = r.PeakServers
		}
		res.DESSimHours += (des[i].end - des[i].start).Hours()
	}

	// Edge hit ratio: byte-weighted blend of the fluid segments'
	// analytic ratio and the windows' realized ratios.
	if res.CDNGB > 0 {
		hitW := m.cdnHit * fluidCDNGB
		for _, r := range wins {
			hitW += r.CDNHitRatio * r.CDNGB
		}
		res.CDNHitRatio = hitW / res.CDNGB
	} else if cfg.EnableCDN {
		res.CDNHitRatio = m.cdnHit
	}

	// Last-mile availability is only simulated inside windows; the
	// fluid model assumes the line is up.
	res.NetAvailability = 1
	if len(wins) > 0 {
		var avail float64
		for _, r := range wins {
			avail += r.NetAvailability
		}
		res.NetAvailability = avail / float64(len(wins))
	}

	// Fleet-size series: fluid grid samples merged with the windows'
	// minute samples, in time order (spans are disjoint by plan).
	// Utilization and the P95 window series exist only at request
	// level, so they concatenate the windows' samples.
	winServers := make([]*metrics.TimeSeries, 0, len(wins))
	winUtil := make([]*metrics.TimeSeries, 0, len(wins))
	winP95 := make([]*metrics.TimeSeries, 0, len(wins))
	for _, r := range wins {
		winServers = append(winServers, r.Servers)
		winUtil = append(winUtil, r.Utilization)
		winP95 = append(winP95, r.P95Series)
	}
	res.Servers = mergeByTime("servers", append([]*metrics.TimeSeries{f.Servers}, winServers...))
	res.Utilization = mergeByTime("load-per-server", winUtil)
	res.P95Series = mergeByTime("p95-window", winP95)

	var err error
	res.Cost, err = billRun(cfg, fluidAssets(cfg), res.PrivateHosts, res)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// mergeByTime k-way-merges time-ordered series into one, preserving
// each source's internal order and breaking At ties by source order —
// a fixed, scheduling-independent result.
func mergeByTime(name string, parts []*metrics.TimeSeries) *metrics.TimeSeries {
	out := metrics.NewTimeSeries(name)
	pts := make([][]metrics.Point, len(parts))
	for i, p := range parts {
		if p != nil {
			pts[i] = p.Points()
		}
	}
	idx := make([]int, len(parts))
	for {
		best := -1
		for i := range pts {
			if idx[i] >= len(pts[i]) {
				continue
			}
			if best < 0 || pts[i][idx[i]].At < pts[best][idx[best]].At {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		p := pts[best][idx[best]]
		out.Add(p.At, p.Value)
		idx[best]++
	}
}
