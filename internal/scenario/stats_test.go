package scenario

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolStatsSerialBaseline: a one-worker pool is the serial reference
// path, and its telemetry must say so — every job ran, nothing was
// recruited, handed off, or donated, and realized concurrency peaked at
// exactly the calling goroutine.
func TestPoolStatsSerialBaseline(t *testing.T) {
	t.Parallel()
	p := NewPool(1)
	if err := p.ForEach(5, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Workers != 1 {
		t.Errorf("Workers = %d, want 1", s.Workers)
	}
	if s.JobsRun != 5 {
		t.Errorf("JobsRun = %d, want 5", s.JobsRun)
	}
	if s.HelperRecruits != 0 || s.Handoffs != 0 || s.Donations != 0 {
		t.Errorf("serial pool recruited/handed off/donated: %+v", s)
	}
	if s.PeakConcurrent != 1 {
		t.Errorf("PeakConcurrent = %d, want 1", s.PeakConcurrent)
	}
	if s.TokenIdle != 0 {
		t.Errorf("TokenIdle = %v on a pool with no tokens", s.TokenIdle)
	}
}

// TestPoolStatsNestedHandoff re-runs the starvation scenario from
// TestPoolWorkConservingHandoff and checks the telemetry recorded the
// rescue: the inner batch's second job can only run on a helper
// recruited while both nesting levels were in flight, so the hand-off
// counter must be nonzero — and peak concurrency must be exactly the
// two workers the pool allows, never more (the nesting parent's
// goroutine is not double-counted while it runs inner jobs inline).
func TestPoolStatsNestedHandoff(t *testing.T) {
	t.Parallel()
	p := NewPool(2)
	bothRunning := make(chan struct{})
	var running atomic.Int64
	err := p.ForEach(2, func(i int) error {
		if i == 0 {
			return nil
		}
		return p.ForEach(2, func(j int) error {
			if running.Add(1) == 2 {
				close(bothRunning)
			}
			select {
			case <-bothRunning:
				return nil
			case <-time.After(10 * time.Second):
				return fmt.Errorf("inner job %d starved", j)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.JobsRun != 4 {
		t.Errorf("JobsRun = %d, want 4 (2 outer + 2 inner)", s.JobsRun)
	}
	if s.HelperRecruits < 1 {
		t.Errorf("HelperRecruits = %d, want >= 1", s.HelperRecruits)
	}
	if s.Handoffs < 1 {
		t.Errorf("Handoffs = %d, want >= 1 (the freed slot reached the inner batch)", s.Handoffs)
	}
	if s.PeakConcurrent != 2 {
		t.Errorf("PeakConcurrent = %d, want exactly the worker cap 2", s.PeakConcurrent)
	}
}

// TestPoolStatsSnapshotWhileRunning hammers Stats from a side goroutine
// while a batch executes — the snapshot API must be safe (the -race CI
// job is the real check here) and monotone in JobsRun. The batch gates
// on two jobs running concurrently, so a helper recruitment, a token
// acquisition (hence nonzero token-idle credit), and a peak of at least
// two are all guaranteed, not schedule-dependent.
func TestPoolStatsSnapshotWhileRunning(t *testing.T) {
	t.Parallel()
	p := NewPool(4)
	stop := make(chan struct{})
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		var last uint64
		for {
			s := p.Stats()
			if s.JobsRun < last {
				t.Error("JobsRun went backwards")
				return
			}
			last = s.JobsRun
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	pairRunning := make(chan struct{})
	var running atomic.Int64
	err := p.ForEach(4, func(i int) error {
		if running.Add(1) == 2 {
			close(pairRunning)
		}
		select {
		case <-pairRunning:
			return nil
		case <-time.After(10 * time.Second):
			return fmt.Errorf("job %d never saw a concurrent peer", i)
		}
	})
	close(stop)
	poller.Wait()
	if err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.JobsRun != 4 {
		t.Errorf("JobsRun = %d, want 4", s.JobsRun)
	}
	if s.HelperRecruits < 1 {
		t.Errorf("HelperRecruits = %d, want >= 1", s.HelperRecruits)
	}
	if s.PeakConcurrent < 2 || s.PeakConcurrent > 4 {
		t.Errorf("PeakConcurrent = %d, want within [2, 4]", s.PeakConcurrent)
	}
	if s.TokenIdle <= 0 {
		t.Errorf("TokenIdle = %v, want > 0 after a token was parked then acquired", s.TokenIdle)
	}
}

// TestPoolMeterAttribution: meters carve per-scope job counts out of a
// shared pool — each view attributes exactly its own jobs (including
// nested ForEach calls made through the view), the unmetered pool
// attributes nothing, and the global JobsRun sees everything.
func TestPoolMeterAttribution(t *testing.T) {
	t.Parallel()
	p := NewPool(2)
	var a, b Meter
	if err := p.WithMeter(&a).ForEach(3, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	vb := p.WithMeter(&b)
	err := vb.ForEach(2, func(int) error {
		return vb.ForEach(2, func(int) error { return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ForEach(4, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if a.Jobs() != 3 {
		t.Errorf("meter a = %d jobs, want 3", a.Jobs())
	}
	if b.Jobs() != 6 {
		t.Errorf("meter b = %d jobs, want 6 (2 outer + 4 nested)", b.Jobs())
	}
	if got := p.Stats().JobsRun; got != 13 {
		t.Errorf("global JobsRun = %d, want 13", got)
	}

	// A nil pool yields a usable metered one-off pool.
	var nilPool *Pool
	var c Meter
	if err := nilPool.WithMeter(&c).ForEach(2, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if c.Jobs() != 2 {
		t.Errorf("meter on nil pool = %d jobs, want 2", c.Jobs())
	}
}
