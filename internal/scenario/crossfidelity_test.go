package scenario

import (
	"fmt"
	"testing"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/sim"
	"elearncloud/internal/workload"
)

// The two fidelities must agree where their domains overlap: the fluid
// approximation's consumption estimates should track the request-level
// simulation on the same config. This guards against the two models
// silently drifting apart as either evolves.
func TestFluidTracksDESConsumption(t *testing.T) {
	cfg := Config{
		Seed:              21,
		Kind:              deploy.Public,
		Students:          800,
		ReqPerStudentHour: 50,
		Duration:          8 * time.Hour,
		Diurnal:           workload.FlatDiurnal(),
	}
	des, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fluid, err := FluidRun(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Egress: both integrate rate x mean payload; the DES adds sampling
	// noise and the boot-grace gap. Agreement within 20%.
	ratio := des.EgressGB / fluid.EgressGB
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("egress diverged: DES %.2f GB vs fluid %.2f GB (ratio %.2f)",
			des.EgressGB, fluid.EgressGB, ratio)
	}

	// VM-hours: the fluid model sizes to instantaneous need; the DES
	// carries a reactive floor and booting VMs, so it consumes more but
	// within a small factor.
	if des.VMHoursPublic < fluid.VMHoursPublic {
		t.Fatalf("DES VM-hours %.1f below idealized fluid %.1f",
			des.VMHoursPublic, fluid.VMHoursPublic)
	}
	if des.VMHoursPublic > fluid.VMHoursPublic*6 {
		t.Fatalf("DES VM-hours %.1f more than 6x fluid %.1f — fidelities drifted",
			des.VMHoursPublic, fluid.VMHoursPublic)
	}
}

// TestFluidTracksDESRandomConfigs is the property-test form of the two
// pinned checks above: three configs whose every knob is derived from a
// named seed stream (so the sample is reproducible but not hand-picked)
// must stay inside the same agreement brackets wherever the fidelities'
// domains overlap. The configs deliberately stay in the overlap regime —
// flat diurnal, no storms, reliable access — where divergence would mean
// the models drifted, not that a documented divergence regime fired
// (internal/metamorph's cross-fidelity invariant handles those).
func TestFluidTracksDESRandomConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three request-level scenarios")
	}
	kinds := []deploy.Kind{deploy.Public, deploy.Hybrid, deploy.Private}
	for i := 0; i < 3; i++ {
		seed := sim.SeedFor(7, fmt.Sprintf("crossfidelity/property-%d", i))
		r := sim.NewRNG(seed)
		cfg := Config{
			Seed:              seed,
			Kind:              kinds[i%len(kinds)],
			Students:          400 + int(r.Uint64()%601),   // 400..1000
			ReqPerStudentHour: float64(30 + r.Uint64()%21), // 30..50
			Duration:          time.Duration(4+r.Uint64()%3) * time.Hour,
			Diurnal:           workload.FlatDiurnal(),
		}
		des, err := Run(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		fluid, err := FluidRun(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		// Fixed-fleet sizing and its capex must agree exactly for any
		// config, not just the pinned one.
		if des.PrivateHosts != fluid.PrivateHosts {
			t.Errorf("config %d (%v): host sizing diverged: DES %d vs fluid %d",
				i, cfg.Kind, des.PrivateHosts, fluid.PrivateHosts)
		}
		if des.Cost.Capex != fluid.Cost.Capex {
			t.Errorf("config %d (%v): capex diverged: DES %v vs fluid %v",
				i, cfg.Kind, des.Cost.Capex, fluid.Cost.Capex)
		}
		// Egress integrates the same rate x payload in both models; the
		// DES adds sampling noise and the boot-grace gap.
		if fluid.EgressGB > 0.02 {
			ratio := des.EgressGB / fluid.EgressGB
			if ratio < 0.75 || ratio > 1.3 {
				t.Errorf("config %d (%v, %d students): egress ratio %.3f outside [0.75,1.3] (DES %.2f GB, fluid %.2f GB)",
					i, cfg.Kind, cfg.Students, ratio, des.EgressGB, fluid.EgressGB)
			}
		}
		// Elastic consumption: idealized fluid is a floor, reactive
		// retention and booting VMs a bounded ceiling.
		if fluid.VMHoursPublic > 1 {
			if des.VMHoursPublic < fluid.VMHoursPublic*0.95 {
				t.Errorf("config %d (%v): DES VM-hours %.1f below idealized fluid %.1f",
					i, cfg.Kind, des.VMHoursPublic, fluid.VMHoursPublic)
			}
			if des.VMHoursPublic > fluid.VMHoursPublic*6 {
				t.Errorf("config %d (%v): DES VM-hours %.1f more than 6x fluid %.1f — fidelities drifted",
					i, cfg.Kind, des.VMHoursPublic, fluid.VMHoursPublic)
			}
		}
	}
}

// Same check for the private model, where both fidelities should agree
// on the fixed fleet's host count exactly.
func TestFluidTracksDESPrivateSizing(t *testing.T) {
	cfg := Config{
		Seed:              22,
		Kind:              deploy.Private,
		Students:          2000,
		ReqPerStudentHour: 50,
		Duration:          6 * time.Hour,
		Diurnal:           workload.FlatDiurnal(),
	}
	des, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fluid, err := FluidRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if des.PrivateHosts != fluid.PrivateHosts {
		t.Fatalf("host sizing diverged: DES %d vs fluid %d",
			des.PrivateHosts, fluid.PrivateHosts)
	}
	// Identical fixed capacity means identical capex bills.
	if des.Cost.Capex != fluid.Cost.Capex {
		t.Fatalf("capex diverged: DES %v vs fluid %v", des.Cost.Capex, fluid.Cost.Capex)
	}
}
