package scenario

import (
	"testing"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/workload"
)

// The two fidelities must agree where their domains overlap: the fluid
// approximation's consumption estimates should track the request-level
// simulation on the same config. This guards against the two models
// silently drifting apart as either evolves.
func TestFluidTracksDESConsumption(t *testing.T) {
	cfg := Config{
		Seed:              21,
		Kind:              deploy.Public,
		Students:          800,
		ReqPerStudentHour: 50,
		Duration:          8 * time.Hour,
		Diurnal:           workload.FlatDiurnal(),
	}
	des, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fluid, err := FluidRun(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Egress: both integrate rate x mean payload; the DES adds sampling
	// noise and the boot-grace gap. Agreement within 20%.
	ratio := des.EgressGB / fluid.EgressGB
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("egress diverged: DES %.2f GB vs fluid %.2f GB (ratio %.2f)",
			des.EgressGB, fluid.EgressGB, ratio)
	}

	// VM-hours: the fluid model sizes to instantaneous need; the DES
	// carries a reactive floor and booting VMs, so it consumes more but
	// within a small factor.
	if des.VMHoursPublic < fluid.VMHoursPublic {
		t.Fatalf("DES VM-hours %.1f below idealized fluid %.1f",
			des.VMHoursPublic, fluid.VMHoursPublic)
	}
	if des.VMHoursPublic > fluid.VMHoursPublic*6 {
		t.Fatalf("DES VM-hours %.1f more than 6x fluid %.1f — fidelities drifted",
			des.VMHoursPublic, fluid.VMHoursPublic)
	}
}

// Same check for the private model, where both fidelities should agree
// on the fixed fleet's host count exactly.
func TestFluidTracksDESPrivateSizing(t *testing.T) {
	cfg := Config{
		Seed:              22,
		Kind:              deploy.Private,
		Students:          2000,
		ReqPerStudentHour: 50,
		Duration:          6 * time.Hour,
		Diurnal:           workload.FlatDiurnal(),
	}
	des, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fluid, err := FluidRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if des.PrivateHosts != fluid.PrivateHosts {
		t.Fatalf("host sizing diverged: DES %d vs fluid %d",
			des.PrivateHosts, fluid.PrivateHosts)
	}
	// Identical fixed capacity means identical capex bills.
	if des.Cost.Capex != fluid.Cost.Capex {
		t.Fatalf("capex diverged: DES %v vs fluid %v", des.Cost.Capex, fluid.Cost.Capex)
	}
}
