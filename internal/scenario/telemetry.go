package scenario

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the pool's telemetry: lock-free counters the batch
// runner updates as it schedules work, snapshotted by Pool.Stats. The
// paper's quantitative argument is about realized utilization of
// deployment models; these counters let the runner report its *own*
// realized utilization — how busy the -parallel tokens actually were —
// alongside every regenerated artifact (cmd/elbench -json).
//
// Two rules keep the telemetry honest and cheap:
//
//   - Every update is a single atomic add or CAS-max on a counter that
//     lives for the pool's lifetime. Nothing here takes a lock, and
//     nothing here runs per simulated event — only per scheduled job,
//     per recruited helper, or per token hand-off, all of which are
//     rare next to the DES hot path.
//   - Telemetry never feeds back into scheduling or randomness, so the
//     determinism contract (see batch.go) is untouched: two runs that
//     differ only in their stats are byte-identical in their artifacts.

// poolStats is the internal collector, shared by every metered view of
// a pool (see Pool.WithMeter).
type poolStats struct {
	jobs      atomic.Uint64
	recruits  atomic.Uint64
	handoffs  atomic.Uint64
	donations atomic.Uint64
	// inFlight counts ForEach calls currently executing on the pool, at
	// every nesting level (a nested call and its ancestor both count).
	// A helper recruited while inFlight > 1 is a shared-capacity
	// recruit — see PoolStats.Handoffs for the exact semantics.
	inFlight atomic.Int64
	// netActive approximates concurrently *working* goroutines beyond
	// the root caller: live helpers minus callers currently donating
	// their slot while they block on their own helpers.
	netActive atomic.Int64
	peak      atomic.Int64
	idleNanos atomic.Int64

	// mu guards the sharded-run layout below — written once per
	// ShardedRun merge, far off the hot path, so a mutex is fine where
	// the per-job counters above must stay atomic.
	mu          sync.Mutex
	shards      int
	shardEvents []uint64
	// hybridFluidHours / hybridDESHours record the most recent
	// HybridRun's fidelity split — written once per hybrid run, same
	// off-hot-path regime as the shard layout.
	hybridFluidHours float64
	hybridDESHours   float64
}

// noteShards records the layout of the most recent merged sharded run:
// its shard count and per-shard event totals in shard-index order.
func (s *poolStats) noteShards(shards int, events []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shards = shards
	s.shardEvents = append([]uint64(nil), events...)
}

// noteHybrid records the fidelity split of the most recent HybridRun:
// simulated hours integrated by the fluid model versus simulated at
// request level.
func (s *poolStats) noteHybrid(fluidHours, desHours float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hybridFluidHours = fluidHours
	s.hybridDESHours = desHours
}

// notePeak folds the current concurrency estimate (netActive plus one
// for the root caller) into the peak watermark.
func (s *poolStats) notePeak() {
	cur := s.netActive.Load() + 1
	for {
		old := s.peak.Load()
		if cur <= old || s.peak.CompareAndSwap(old, cur) {
			return
		}
	}
}

// noteIdle credits a token's parked time when it is taken from the
// pool. releasedAt is the timestamp the token carried into the channel.
func (s *poolStats) noteIdle(releasedAt time.Time) {
	if d := time.Since(releasedAt); d > 0 {
		s.idleNanos.Add(int64(d))
	}
}

// PoolStats is a point-in-time snapshot of a pool's realized-execution
// counters, safe to take while batches are running (every field is read
// atomically; the fields are individually exact but not mutually
// consistent to a single instant).
type PoolStats struct {
	// Workers is the pool's global concurrency cap (the -parallel
	// value).
	Workers int
	// JobsRun counts every job the pool executed, at every nesting
	// level: scenario jobs inside experiment batches, but also the
	// experiment-level and profile-level ForEach bodies that fan them
	// out.
	JobsRun uint64
	// HelperRecruits counts helper goroutines spawned — each one is a
	// free token converted into parallel execution.
	HelperRecruits uint64
	// Handoffs counts shared-capacity recruits: helpers recruited while
	// more than one batch was in flight on the pool, nesting levels
	// included. A flat single batch records zero; in a fully nested
	// run (the elbench topology, where the suite-level ForEach spans
	// the whole run) most recruits are handoffs by construction. The
	// counter deliberately does not track token identity, so it cannot
	// say whether a given token came from the initial fill or from a
	// drained batch — it measures how often the pool granted capacity
	// across batch boundaries at all, which is the grant a statically
	// partitioned per-level budget could not have made.
	Handoffs uint64
	// Donations counts callers that finished dispatching their own
	// indices and lent their slot to still-running batches while they
	// waited (reclaiming it before returning).
	Donations uint64
	// PeakConcurrent is the high-water estimate of simultaneously
	// working goroutines: live helpers, minus donors parked in waits,
	// plus one for the root caller. With a single root goroutine (the
	// elbench topology) it never exceeds Workers; concurrent root
	// callers on one pool are each assumed to be the same "plus one".
	PeakConcurrent int
	// TokenIdle is cumulative time tokens spent parked in the pool
	// between a release and the next acquisition (including the initial
	// fill). workers-1 tokens idling for a whole run means the cap was
	// never the bottleneck — the analogue of the paper's underutilized
	// private fleet.
	TokenIdle time.Duration
	// Shards and ShardEvents describe the most recent merged ShardedRun
	// on this pool: its shard count and per-shard DES event totals in
	// shard-index order. Both are zero/nil when no multi-shard run has
	// completed.
	Shards      int
	ShardEvents []uint64
	// HybridFluidHours and HybridDESHours describe the most recent
	// HybridRun on this pool: simulated hours integrated by the fluid
	// model versus simulated at request level. Both are zero when no
	// hybrid run has completed.
	HybridFluidHours float64
	HybridDESHours   float64
}

// Stats snapshots the pool's telemetry. Safe to call at any time, from
// any goroutine, including while batches are running.
func (p *Pool) Stats() PoolStats {
	s := p.stats
	out := PoolStats{
		Workers:        p.workers,
		JobsRun:        s.jobs.Load(),
		HelperRecruits: s.recruits.Load(),
		Handoffs:       s.handoffs.Load(),
		Donations:      s.donations.Load(),
		PeakConcurrent: int(s.peak.Load()),
		TokenIdle:      time.Duration(s.idleNanos.Load()),
	}
	s.mu.Lock()
	out.Shards = s.shards
	out.ShardEvents = append([]uint64(nil), s.shardEvents...)
	out.HybridFluidHours = s.hybridFluidHours
	out.HybridDESHours = s.hybridDESHours
	s.mu.Unlock()
	return out
}

// Meter attributes jobs to one caller-defined unit of work — typically
// one experiment — while it executes on a shared pool. The pool's own
// counters are global; a meter carves out a per-scope job count without
// the scope needing its own pool. The zero value is ready to use.
type Meter struct {
	jobs atomic.Uint64
}

// Jobs reports how many jobs ran through views carrying this meter.
func (m *Meter) Jobs() uint64 { return m.jobs.Load() }

// add is nil-safe so the batch runner can call it unconditionally.
func (m *Meter) add() {
	if m != nil {
		m.jobs.Add(1)
	}
}

// WithMeter returns a view of the pool that attributes every job run
// through it (including nested batches handed the view) to m. The view
// shares the pool's tokens and global stats — it is the same pool for
// scheduling purposes — so cmd/elbench hands each experiment a metered
// view of the one suite-wide pool and reads per-experiment job counts
// off the meters afterwards. A nil receiver yields a metered one-off
// DefaultWorkers pool.
func (p *Pool) WithMeter(m *Meter) *Pool {
	if p == nil {
		p = NewPool(0)
	}
	view := *p
	view.meter = m
	return &view
}
