package scenario

import (
	"fmt"
	"math"
	"time"

	"elearncloud/internal/cdn"
	"elearncloud/internal/cost"
	"elearncloud/internal/deploy"
	"elearncloud/internal/lms"
	"elearncloud/internal/metrics"
	"elearncloud/internal/network"
	"elearncloud/internal/scale"
	"elearncloud/internal/security"
	"elearncloud/internal/sim"
	"elearncloud/internal/workload"
)

// bootGrace delays the first arrivals so bootstrap fleets finish booting;
// it is charged to the horizon like any quiet period.
const bootGrace = 3 * time.Minute

// desktopSlowdown models aging lab PCs versus a provisioned server core.
const desktopSlowdown = 1.4

// Run executes a full request-level simulation of cfg and returns the
// measured Result.
func Run(cfg Config) (*Result, error) {
	return runShard(cfg, nil)
}

// shardCtx tells runShard which slice of a sharded run it is: the
// partition built from the parent config, and this run's shard index.
// A nil shardCtx is the direct, unsharded path. win, when non-nil,
// restricts the engine to one hybrid DES window: the clock is warped
// to the window's start, the fleet warm-started at the fluid model's
// size, the queue seeded with synthetic backlog, and the run cut off
// at the window's end (see hybrid.go for the stitching rules).
type shardCtx struct {
	sh  *workload.Sharding
	k   int
	win *desWindow
}

// genFor builds the workload generator for a defaulted config.
func genFor(cfg Config) (*workload.Generator, error) {
	return workload.NewGenerator(workload.Config{
		Students:          cfg.Students,
		Growth:            cfg.Growth,
		ReqPerStudentHour: cfg.ReqPerStudentHour,
		Diurnal:           cfg.Diurnal,
		Calendar:          cfg.Calendar,
		Crowds:            cfg.Crowds,
		Storms:            cfg.Storms,
		Joins:             cfg.Joins,
	})
}

// runShard executes one simulation engine: the whole scenario when sc is
// nil, or one shard's slice of it. A single-shard shardCtx multiplies
// every rate and sizing input by a share of exactly 1.0 and draws users
// from an identity member list, so its result is byte-identical to the
// direct path — the property the sharded tests and the CI scale lane pin.
func runShard(cfg Config, sc *shardCtx) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine(cfg.Seed)
	var win *desWindow
	if sc != nil {
		win = sc.win
	}
	// startAt/endAt delimit this engine's slice of the horizon: the
	// whole run on the direct path, one DES window under HybridRun. The
	// clock warp makes every absolute-time consumer (calendar lookups,
	// diurnal shapes, scheduled scalers, the sampler) see true virtual
	// time without knowing about windows.
	startAt, endAt := time.Duration(0), cfg.Duration
	if win != nil {
		startAt, endAt = win.start, win.end
		if err := eng.Import(sim.State{Now: startAt}); err != nil {
			return nil, err
		}
	}
	cat, teaching := mixFor()

	gen, err := genFor(cfg)
	if err != nil {
		return nil, err
	}
	// The shard's fleet absorbs only its share of the peak; capacity is
	// split proportionally to shard population (the documented
	// approximation — see ShardedRun).
	share := 1.0
	peakRPS := gen.MaxRate()
	if sc != nil {
		share = sc.sh.CapShare(sc.k)
		peakRPS = gen.MaxRate() * share
	}
	meanSvc := teaching.MeanService(cat)
	dep, err := deploy.Build(eng, deploy.Spec{
		Kind:            cfg.Kind,
		Students:        cfg.Students,
		Courses:         cfg.Courses,
		ExpectedPeakRPS: peakRPS,
		MeanServiceSec:  meanSvc,
		TargetUtil:      cfg.TargetUtil,
		Policy:          cfg.HybridPolicy,
	})
	if err != nil {
		return nil, err
	}
	topo := network.BuildTopology(eng, cfg.Access)

	res := &Result{
		Kind:         cfg.Kind,
		Scaler:       cfg.Scaler,
		Duration:     cfg.Duration,
		Latency:      metrics.DefaultLatency(),
		Servers:      metrics.NewTimeSeries("servers"),
		Utilization:  metrics.NewTimeSeries("load-per-server"),
		P95Series:    metrics.NewTimeSeries("p95-window"),
		PrivateHosts: dep.PrivateHosts,
	}
	windowHist := metrics.DefaultLatency()

	// --- fleets ---------------------------------------------------------
	pubCluster := lms.NewCluster("public")
	privCluster := lms.NewCluster("private")
	var pubFleet, privFleet *fleet
	var growthFit *scale.GrowthFit
	var stops []func()

	maxPublic := cfg.MaxPublicServers
	if maxPublic <= 0 {
		maxPublic = dep.ServersAtPeak * 4
	}
	privServers := dep.ServersAtPeak
	if cfg.Kind == deploy.Hybrid {
		privServers = int(math.Ceil(float64(dep.ServersAtPeak) * cfg.HybridPolicy.PrivateBaseShare))
		if privServers < 1 {
			privServers = 1
		}
	}

	if dep.PublicDC != nil {
		pubFleet = newFleet(eng, dep.PublicDC, pubCluster, dep.InstanceType.Spec(), maxPublic)
		pubTarget := dep.ServersAtPeak
		if cfg.Kind == deploy.Hybrid {
			pubTarget = dep.ServersAtPeak - privServers
			if pubTarget < 1 {
				pubTarget = 1
			}
		}
		initial := pubTarget
		if cfg.Scaler != ScalerFixed {
			initial = (pubTarget + 3) / 4
			if initial < 2 {
				initial = 2
			}
		}
		// A hybrid DES window warm-starts at the fleet the fluid model
		// was running when the window opened (its share of it, under
		// sharding) — the boundary-stitch that spares the scaler from
		// re-climbing out of the bootstrap floor mid-horizon. The floor
		// itself is unchanged: the scaler may still scale in to it.
		warm := initial
		if win != nil && cfg.Scaler != ScalerFixed {
			warm = int(math.Ceil(float64(win.initServers) * share))
			if warm < initial {
				warm = initial
			}
			if warm > maxPublic {
				warm = maxPublic
			}
		}
		pubFleet.ScaleTo(warm)
		// The bootstrap size is also the scale-in floor: production
		// fleets never drain below their baseline, or the first spike
		// after a quiet night pays the full boot lag.
		scaler, stop := startScaler(eng, cfg, meanSvc, pubFleet, initial, maxPublic, share)
		if stop != nil {
			stops = append(stops, stop)
		}
		growthFit, _ = scaler.(*scale.GrowthFit)
	}
	if dep.PrivateDC != nil {
		privFleet = newFleet(eng, dep.PrivateDC, privCluster, dep.PrivateSpec, 0)
		privFleet.ScaleTo(privServers) // fixed fleet, sized up front
	}

	// --- CDN ---------------------------------------------------------------
	var edge *cdn.Edge
	if cfg.EnableCDN && dep.PublicDC != nil {
		edge, err = cdn.NewEdge(cdn.DefaultConfig(cfg.Courses), eng.Stream("cdn"))
		if err != nil {
			return nil, err
		}
		if win != nil {
			// Mid-horizon windows see the cache warmth the fluid model's
			// analytic hit ratio assumed, not a cold (all-miss) edge —
			// the cold-CDN divergence regime PR 7's fuzzer pinned.
			edge.Warm(win.cdnWarm)
		}
	}

	// --- request handling ------------------------------------------------
	var (
		svcRNG      = eng.Stream("service")
		payRNG      = eng.Stream("payload")
		netRNG      = eng.Stream("net")
		egressBytes float64
		// liveReqs counts real requests admitted to a cluster whose
		// transfer has not yet completed — the queue mass a hybrid
		// window hands back across its closing seam (CarriedOut). It is
		// maintained independently of the outcome counters so the seam
		// conservation identity is a genuine cross-check, not an echo.
		liveReqs int
	)
	finish := func(path *network.Path, billEgress bool, payload float64, start sim.Time) func() {
		return func() {
			tt := path.TransferTime(netRNG, payload)
			release := path.BeginTransfer()
			eng.Schedule(sim.Seconds(tt), "transfer", func() {
				release()
				lat := sim.ToSeconds(eng.Now() - start)
				res.Latency.Observe(lat)
				windowHist.Observe(lat)
				res.Served++
				liveReqs--
				if billEgress {
					egressBytes += payload
				}
			})
		}
	}
	// admit wraps Cluster.Submit for real (non-backlog) requests so
	// liveReqs tracks every admission that finish will later settle.
	admit := func(cluster *lms.Cluster, service float64, done func()) bool {
		if cluster.Submit(service, done) {
			liveReqs++
			return true
		}
		return false
	}
	handle := func(a workload.Arrival) {
		spec := cat.Spec(a.Class)
		service := spec.Service.Sample(svcRNG)
		payload := spec.Payload.Sample(payRNG)

		if cfg.Kind == deploy.Desktop {
			// Locally installed application: no network, no queueing
			// across users, just a slower machine.
			res.Latency.Observe(service * desktopSlowdown)
			windowHist.Observe(service * desktopSlowdown)
			res.Served++
			return
		}

		path, cluster, public := topo.ToCloud, pubCluster, true
		if cfg.Kind == deploy.Private || (cfg.Kind == deploy.Hybrid && spec.Sensitive) {
			path, cluster, public = topo.ToCampus, privCluster, false
		}
		// Video served through the CDN: edge hits skip the backbone and
		// bill at CDN rates; misses pay the origin trip. The edge does
		// its own byte accounting either way.
		if edge != nil && public && a.Class == lms.VideoChunk {
			if !topo.ToEdge.Up() {
				res.Offline++
				return
			}
			hit := edge.Serve(payload)
			videoPath := topo.ToEdge
			if !hit {
				videoPath = topo.ToCloud
			}
			if admit(cluster, service, finish(videoPath, false, payload, eng.Now())) {
				return
			}
			res.Rejected++
			return
		}
		// Relaxed hybrids divert sensitive work to the public side as
		// soon as the private side runs hot (per-server pressure above
		// the burst threshold), not only when admission fails — waiting
		// for the 256-job wall would mean minutes of queueing first.
		const burstLoad = 8
		if cfg.Kind == deploy.Hybrid && spec.Sensitive && !cfg.StrictPinning &&
			privCluster.Load() > burstLoad && topo.ToCloud.Up() {
			if admit(pubCluster, service, finish(topo.ToCloud, true, payload, eng.Now())) {
				res.PolicyViolations++
				return
			}
		}
		if !path.Up() {
			res.Offline++
			return
		}
		if admit(cluster, service, finish(path, public, payload, eng.Now())) {
			return
		}
		// Admission failed. Hybrids may still burst sensitive work
		// publicly unless pinning is strict (Table 4's policy knob).
		if cfg.Kind == deploy.Hybrid && spec.Sensitive && !cfg.StrictPinning && topo.ToCloud.Up() {
			if admit(pubCluster, service, finish(topo.ToCloud, true, payload, eng.Now())) {
				res.PolicyViolations++
				return
			}
		}
		res.Rejected++
	}

	streamStart := startAt + bootGrace
	var stream *workload.ArrivalStream
	if sc != nil && sc.sh != nil {
		stream = sc.sh.Shard(sc.k).Stream(eng.Stream("workload"), streamStart)
	} else {
		stream = gen.Stream(eng.Stream("workload"), streamStart)
	}
	var pump func()
	pump = func() {
		a, ok := stream.Next(endAt)
		if !ok {
			return
		}
		eng.ScheduleAt(a.At, "arrival", func() {
			res.Arrivals++
			handle(a)
			pump()
		})
	}
	pump()

	// --- hybrid window backlog seeding -------------------------------------
	// The queue mass the fluid model says is in flight when the window
	// opens re-materializes as synthetic mean-service jobs, injected
	// once the warm fleet has booted. They settle liveness only — no
	// latency observation, no Served count, no egress — so the window's
	// statistics describe real requests, while its queues start at the
	// fluid state instead of empty.
	backlogDone := func() {} // shared no-op completion for synthetic jobs
	if win != nil && cfg.Kind != deploy.Desktop {
		n := int(math.Round(float64(win.backlog) * share))
		backlogCluster := pubCluster
		if cfg.Kind == deploy.Private || dep.PublicDC == nil {
			backlogCluster = privCluster
		}
		eng.ScheduleAt(startAt+bootGrace, "hybrid-backlog", func() {
			for i := 0; i < n; i++ {
				if backlogCluster.Submit(meanSvc, backlogDone) {
					res.CarriedIn++
				}
			}
		})
	}

	// --- sessions and lost work ------------------------------------------
	var sessions []*lms.Session
	if cfg.Kind != deploy.Desktop {
		sessions = make([]*lms.Session, cfg.TrackedSessions)
		for i := range sessions {
			sessions[i] = lms.NewSession(i, 0)
		}
		stops = append(stops, eng.Every(cfg.AutosaveEvery, "autosave", func() {
			for _, s := range sessions {
				s.Autosave(eng.Now())
			}
		}))
		if fp := topo.LastMile.Failure(); fp != nil {
			fp.OnChange(func(up bool) {
				now := eng.Now()
				if up {
					for _, s := range sessions {
						s.Reconnect(now)
					}
					return
				}
				res.Disconnects++
				for _, s := range sessions {
					s.Disconnect(now)
				}
			})
		}
	}

	// --- host failure injection --------------------------------------------
	// Outside this engine's slice the failure never fires: a window
	// opening after the failure instant must not see the event clamp to
	// its warped clock and destroy a host that (per the plan) failed
	// and recovered in fluid time.
	if cfg.HostFailureAt > 0 && privFleet != nil && cfg.HostFailureAt >= startAt && cfg.HostFailureAt < endAt {
		eng.ScheduleAt(cfg.HostFailureAt, "host-failure", func() {
			res.KilledJobs += privFleet.FailHost(0)
			dep.PrivateDC.FailHost(0)
			eng.Schedule(cfg.HostRecoveryAfter, "host-repair", func() {
				dep.PrivateDC.RepairHost(0)
				privFleet.ScaleTo(privServers)
			})
		})
	}

	// --- threats ----------------------------------------------------------
	var threat *security.ThreatModel
	if cfg.EnableThreats {
		threat, err = security.NewThreatModel(eng, eng.Stream("threat"), threatConfig(cfg.Kind), dep.Assets)
		if err != nil {
			return nil, err
		}
		stops = append(stops, threat.Start())
	}

	// --- periodic sampling -------------------------------------------------
	stops = append(stops, eng.Every(time.Minute, "sample", func() {
		servers := 0
		load := 0.0
		if pubFleet != nil {
			servers += pubFleet.Desired()
		}
		if privFleet != nil {
			servers += privFleet.Desired()
		}
		active := pubCluster.Active() + privCluster.Active()
		if servers > 0 {
			load = float64(active) / float64(servers)
		}
		res.Servers.Add(eng.Now(), float64(servers))
		res.Utilization.Add(eng.Now(), load)
		res.P95Series.Add(eng.Now(), windowHist.P95())
		windowHist.Reset()
	}))

	// --- run ---------------------------------------------------------------
	if err := eng.RunUntil(endAt); err != nil {
		return nil, fmt.Errorf("scenario: engine: %w", err)
	}
	for _, stop := range stops {
		stop()
	}

	// --- finalize ------------------------------------------------------------
	if dep.PublicDC != nil {
		res.VMHoursPublic = dep.PublicDC.VMHours()
	}
	if dep.PrivateDC != nil {
		res.VMHoursPrivate = dep.PrivateDC.VMHours()
	}
	if pubFleet != nil {
		res.PeakServers += pubFleet.Peak()
	}
	if privFleet != nil {
		res.PeakServers += privFleet.Peak()
	}
	res.EgressGB = egressBytes / 1e9
	if edge != nil {
		res.EgressGB += edge.OriginGB()
		res.CDNGB = edge.ServedGB()
		res.CDNHitRatio = edge.Cache().HitRatio()
	}
	for _, s := range sessions {
		res.LostWork += s.LostWork()
	}
	res.NetAvailability = 1
	if fp := topo.LastMile.Failure(); fp != nil {
		res.NetAvailability = fp.Availability().Ratio()
	}
	if threat != nil {
		res.Breaches = threat.Breaches()
		res.SensitiveExposures = threat.SensitiveExposures()
		res.DataLossEvents = threat.DataLossEvents()
		res.BytesLost = threat.BytesLost()
	}

	res.Events = eng.Fired()
	if growthFit != nil {
		// Prefer the last stable fit: a storm's decay phase destabilizes
		// the trailing window, so the end-of-run Fit() rarely describes
		// what the policy actually provisioned from.
		fit := growthFit.LastStable()
		if !fit.Stable {
			fit = growthFit.Fit()
		}
		res.Fit = &fit
	}

	if win != nil {
		// The requests still in flight at the closing seam are handed
		// back to the fluid side; billing happens once at the hybrid
		// level, over the whole horizon, not per window.
		res.CarriedOut = liveReqs
		if res.CarriedOut < 0 {
			res.CarriedOut = 0
		}
		return res, nil
	}

	res.Cost, err = billRun(cfg, dep.Assets, dep.PrivateHosts, res)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// startScaler attaches the configured autoscaler to the elastic fleet
// and returns it plus its stop function (both nil for the fixed
// policy). min is the scale-in floor (the bootstrap size); share scales
// the scheduled/oracle plan's rate down to this shard's slice of the
// population (exactly 1.0 for unsharded runs).
func startScaler(eng *sim.Engine, cfg Config, meanSvc float64, target scale.Target, min, maxPublic int, share float64) (scale.Autoscaler, func()) {
	switch cfg.Scaler {
	case ScalerReactive:
		s := scale.NewReactive(target, scale.ReactiveConfig{
			Interval:      time.Minute,
			UpThreshold:   6,
			DownThreshold: 1.5,
			Step:          4,
			Min:           min,
			Max:           maxPublic,
			Cooldown:      2 * time.Minute,
		})
		return s, s.Start(eng)
	case ScalerScheduled:
		// The timetable knows the diurnal/calendar shape but not flash
		// crowds, enrollment growth or deadline storms — a scheduled
		// exam surprise or a course going viral is exactly what it
		// misses (table9's scheduled row shows the consequence).
		planGen, err := workload.NewGenerator(workload.Config{
			Students:          cfg.Students,
			ReqPerStudentHour: cfg.ReqPerStudentHour,
			Diurnal:           cfg.Diurnal,
			Calendar:          cfg.Calendar,
		})
		if err != nil {
			return nil, nil
		}
		plan := func(tod time.Duration) int {
			return deploy.ServersForPeak(planGen.Rate(tod)*share, meanSvc, cfg.TargetUtil) + 1
		}
		s := scale.NewScheduled(target, plan, 5*time.Minute, 1, maxPublic)
		return s, s.Start(eng)
	case ScalerPredictive:
		s := scale.NewPredictive(target, scale.PredictiveConfig{
			Interval:  time.Minute,
			Lead:      5 * time.Minute,
			PerServer: 4,
			Min:       min,
			Max:       maxPublic,
		})
		return s, s.Start(eng)
	case ScalerGrowthFit:
		// Lead = one VM boot (bootGrace covers the fleet's boot
		// distribution) plus a 5-minute guard, so projected capacity is
		// accepting before the projected demand lands.
		s := scale.NewGrowthFit(target, scale.GrowthFitConfig{
			Interval:    time.Minute,
			Lead:        bootGrace + 5*time.Minute,
			MeanService: meanSvc,
			Util:        cfg.TargetUtil,
			Min:         min,
			Max:         maxPublic,
			Fallback: scale.ReactiveConfig{
				UpThreshold:   6,
				DownThreshold: 1.5,
				Step:          4,
				Cooldown:      2 * time.Minute,
			},
		})
		return s, s.Start(eng)
	case ScalerOracle:
		// The oracle is scheduled from the true curve: the full
		// generator, growth and storms included — everything the
		// scheduled policy's timetable deliberately cannot see.
		planGen, err := genFor(cfg)
		if err != nil {
			return nil, nil
		}
		plan := func(at time.Duration) int {
			return deploy.ServersForPeak(planGen.Rate(at)*share, meanSvc, cfg.TargetUtil) + 1
		}
		s := scale.NewOracle(target, plan, time.Minute, bootGrace+5*time.Minute, min, maxPublic)
		return s, s.Start(eng)
	default:
		return nil, nil
	}
}

// billRun converts measured consumption into the itemized bill. assets
// and privateHosts come from the run's deployment on the direct path;
// a sharded merge instead rebills against the full-scenario asset store
// and the summed host count, because per-shard deployments each hold a
// full asset copy that must be billed once, not K times.
func billRun(cfg Config, assets *lms.AssetStore, privateHosts int, res *Result) (cost.Report, error) {
	months := cfg.Duration.Hours() / 730
	u := cost.Usage{Months: months}
	switch cfg.Kind {
	case deploy.Public:
		u.VMHoursOnDemand = res.VMHoursPublic
		u.EgressGB = res.EgressGB
		u.CDNGB = res.CDNGB
		u.StorageGBMonths = assets.BytesAt(lms.OnPublic) / 1e9 * months
	case deploy.Private:
		u.PrivateHosts = privateHosts
	case deploy.Hybrid:
		u.VMHoursOnDemand = res.VMHoursPublic
		u.EgressGB = res.EgressGB
		u.CDNGB = res.CDNGB
		u.StorageGBMonths = assets.BytesAt(lms.OnPublic) / 1e9 * months
		u.PrivateHosts = privateHosts
		u.HybridMonths = months
	case deploy.Desktop:
		u.DesktopStudents = cfg.Students
	}
	return cost.Bill(u, cost.DefaultRates())
}
