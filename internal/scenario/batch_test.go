package scenario

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/workload"
)

// smallCfg is a fast request-level scenario for batch tests.
func smallCfg(seed uint64, kind deploy.Kind) Config {
	return Config{
		Seed:              seed,
		Kind:              kind,
		Students:          60,
		ReqPerStudentHour: 20,
		Duration:          30 * time.Minute,
		Diurnal:           workload.FlatDiurnal(),
	}
}

// fingerprint reduces a Result to a string that captures every field an
// experiment renders, so byte-equality of fingerprints means
// byte-equality of any table built from the result.
func fingerprint(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kind=%v scaler=%v served=%d rejected=%d offline=%d viol=%d",
		r.Kind, r.Scaler, r.Served, r.Rejected, r.Offline, r.PolicyViolations)
	fmt.Fprintf(&b, " p50=%v p95=%v p99=%v", r.Latency.P50(), r.Latency.P95(), r.Latency.P99())
	fmt.Fprintf(&b, " peak=%d vmpub=%v vmpriv=%v egress=%v cost=%v",
		r.PeakServers, r.VMHoursPublic, r.VMHoursPrivate, r.EgressGB, r.Cost.Total())
	for _, p := range r.Servers.Points() {
		fmt.Fprintf(&b, " s(%v)=%v", p.At, p.Value)
	}
	for _, p := range r.P95Series.Points() {
		fmt.Fprintf(&b, " p(%v)=%v", p.At, p.Value)
	}
	return b.String()
}

// TestRunAllWorkerCountInvariant is the heart of the determinism
// contract: the same jobs produce byte-identical results whether run
// serially or on a pool, in every collection slot.
func TestRunAllWorkerCountInvariant(t *testing.T) {
	t.Parallel()
	jobs := []Job{
		{Name: "public", Cfg: smallCfg(11, deploy.Public)},
		{Name: "private", Cfg: smallCfg(11, deploy.Private)},
		{Name: "hybrid", Cfg: smallCfg(11, deploy.Hybrid)},
		{Name: "public-fluid", Cfg: smallCfg(11, deploy.Public), Fluid: true},
		{Name: "desktop", Cfg: smallCfg(11, deploy.Desktop)},
	}
	serial, err := RunAll(jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := RunAll(jobs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i].Name != serial[i].Name {
				t.Fatalf("workers=%d: slot %d holds %q, want %q (submission order broken)",
					workers, i, par[i].Name, serial[i].Name)
			}
			if serial[i].Res != nil {
				got, want := fingerprint(par[i].Res), fingerprint(serial[i].Res)
				if got != want {
					t.Fatalf("workers=%d job %q diverged:\n got %s\nwant %s",
						workers, serial[i].Name, got, want)
				}
			}
			if serial[i].Fluid != nil {
				got := fmt.Sprintf("%v %v %v", par[i].Fluid.VMHoursPublic,
					par[i].Fluid.Cost.Total(), par[i].Fluid.PeakServers)
				want := fmt.Sprintf("%v %v %v", serial[i].Fluid.VMHoursPublic,
					serial[i].Fluid.Cost.Total(), serial[i].Fluid.PeakServers)
				if got != want {
					t.Fatalf("workers=%d fluid job %q diverged: %s vs %s",
						workers, serial[i].Name, got, want)
				}
			}
		}
	}
}

// TestRunAllFirstErrorWins: the reported error is the first-submitted
// failure, not whichever worker failed first.
func TestRunAllFirstErrorWins(t *testing.T) {
	t.Parallel()
	bad := smallCfg(11, deploy.Public)
	bad.Students = 0 // invalid: Run rejects it
	jobs := []Job{
		{Name: "ok-0", Cfg: smallCfg(11, deploy.Public)},
		{Name: "bad-1", Cfg: bad},
		{Name: "ok-2", Cfg: smallCfg(11, deploy.Private)},
		{Name: "bad-3", Cfg: bad},
	}
	for _, workers := range []int{1, 4} {
		_, err := RunAll(jobs, workers)
		if err == nil {
			t.Fatalf("workers=%d: invalid job accepted", workers)
		}
		if !strings.Contains(err.Error(), `"bad-1"`) {
			t.Fatalf("workers=%d: err = %v, want first-submitted job bad-1", workers, err)
		}
	}
}

// TestRunAllRejectsBadNames: empty and duplicate names break result
// addressing and seed derivation, so the batch refuses them up front.
func TestRunAllRejectsBadNames(t *testing.T) {
	t.Parallel()
	if _, err := RunAll([]Job{{Name: "", Cfg: smallCfg(1, deploy.Public)}}, 1); err == nil {
		t.Fatal("empty job name accepted")
	}
	dup := []Job{
		{Name: "x", Cfg: smallCfg(1, deploy.Public)},
		{Name: "x", Cfg: smallCfg(1, deploy.Private)},
	}
	if _, err := RunAll(dup, 4); err == nil {
		t.Fatal("duplicate job name accepted")
	}
}

// TestBatchSeedDerivation: jobs added without a seed get one derived
// from (batch seed, job name); explicit seeds are left alone.
func TestBatchSeedDerivation(t *testing.T) {
	t.Parallel()
	cfg := smallCfg(0, deploy.Public) // zero seed: derive
	b := NewBatch(7).Add("a", cfg).Add("b", cfg)
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	if got, want := b.jobs[0].Cfg.Seed, SeedFor(7, "a"); got != want {
		t.Fatalf("derived seed = %d, want SeedFor(7, a) = %d", got, want)
	}
	if b.jobs[0].Cfg.Seed == b.jobs[1].Cfg.Seed {
		t.Fatal("distinct job names derived the same seed")
	}
	explicit := smallCfg(42, deploy.Public)
	b2 := NewBatch(7).Add("a", explicit)
	if b2.jobs[0].Cfg.Seed != 42 {
		t.Fatalf("explicit seed overwritten: %d", b2.jobs[0].Cfg.Seed)
	}
}

// TestBatchResultLookup: results are reachable by name with the right
// fidelity, and misuse panics loudly.
func TestBatchResultLookup(t *testing.T) {
	t.Parallel()
	b := NewBatch(11).
		Add("des", smallCfg(11, deploy.Public)).
		AddFluid("fluid", smallCfg(11, deploy.Public))
	res, err := b.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result("des").Served == 0 {
		t.Fatal("DES job served nothing")
	}
	if res.Fluid("fluid").Cost.Total() <= 0 {
		t.Fatal("fluid job billed nothing")
	}
	if len(res.All()) != 2 || res.All()[0].Name != "des" {
		t.Fatalf("All() order wrong: %+v", res.All())
	}
	expectPanic(t, func() { res.Result("missing") })
	expectPanic(t, func() { res.Result("fluid") })
	expectPanic(t, func() { res.Fluid("des") })
}

// TestPoolSerializesNestedBatches: a one-worker pool has no helper
// tokens, so nested ForEach levels all run inline on the calling
// goroutine — strictly one job at a time, with no deadlock. This is the
// property that makes nesting on a shared pool safe at all: a level
// that finds no free token degrades to the serial path instead of
// blocking on capacity it can never get.
func TestPoolSerializesNestedBatches(t *testing.T) {
	t.Parallel()
	p := NewPool(1)
	var active, maxActive, ran atomic.Int64
	err := p.ForEach(3, func(i int) error {
		return p.ForEach(4, func(j int) error {
			a := active.Add(1)
			defer active.Add(-1)
			for {
				m := maxActive.Load()
				if a <= m || maxActive.CompareAndSwap(m, a) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			ran.Add(1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 12 {
		t.Fatalf("ran %d of 12 nested jobs", ran.Load())
	}
	if maxActive.Load() != 1 {
		t.Fatalf("1-worker pool ran %d jobs concurrently", maxActive.Load())
	}
}

// TestPoolWorkConservingHandoff is the starvation/fairness test for the
// shared pool: when the outer level drains, its freed slot must reach a
// still-running inner batch. A two-worker pool runs two outer jobs; one
// returns immediately, the other nests a two-job batch whose jobs each
// block until both are running. Only a pool that hands the drained
// outer slot to the inner level can satisfy that barrier — a static
// outer/inner split (the old SplitBudget) would starve the second inner
// job forever.
func TestPoolWorkConservingHandoff(t *testing.T) {
	t.Parallel()
	p := NewPool(2)
	bothRunning := make(chan struct{})
	var running atomic.Int64
	err := p.ForEach(2, func(i int) error {
		if i == 0 {
			return nil // drains immediately, freeing an outer slot
		}
		return p.ForEach(2, func(j int) error {
			if running.Add(1) == 2 {
				close(bothRunning)
			}
			select {
			case <-bothRunning:
				return nil
			case <-time.After(10 * time.Second):
				return fmt.Errorf("inner job %d starved: the freed outer slot never reached the inner batch", j)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPoolNestedBatchDeterminism: sharing one pool across nesting
// levels — the elbench topology — must not change a single byte of any
// result relative to the fully serial path, for any worker count.
func TestPoolNestedBatchDeterminism(t *testing.T) {
	t.Parallel()
	groups := [][]Job{
		{
			{Name: "public", Cfg: smallCfg(11, deploy.Public)},
			{Name: "private", Cfg: smallCfg(11, deploy.Private)},
		},
		{
			{Name: "hybrid", Cfg: smallCfg(11, deploy.Hybrid)},
			{Name: "desktop", Cfg: smallCfg(11, deploy.Desktop)},
			{Name: "public-fluid", Cfg: smallCfg(11, deploy.Public), Fluid: true},
		},
	}
	render := func(workers int) []string {
		t.Helper()
		p := NewPool(workers)
		out := make([]string, len(groups))
		err := p.ForEach(len(groups), func(g int) error {
			res, err := p.RunAll(groups[g]) // nested on the same pool
			if err != nil {
				return err
			}
			var b strings.Builder
			for _, r := range res {
				if r.Res != nil {
					fmt.Fprintf(&b, "%s: %s\n", r.Name, fingerprint(r.Res))
				} else {
					fmt.Fprintf(&b, "%s: fluid %v %v %v\n", r.Name,
						r.Fluid.VMHoursPublic, r.Fluid.Cost.Total(), r.Fluid.PeakServers)
				}
			}
			out[g] = b.String()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	serial := render(1)
	for _, workers := range []int{2, 4, 16} {
		got := render(workers)
		for g := range groups {
			if got[g] != serial[g] {
				t.Fatalf("workers=%d group %d diverged from serial:\n got %s\nwant %s",
					workers, g, got[g], serial[g])
			}
		}
	}
}

// TestPoolAcquireRelease: the exported semaphore surface — context
// cancellation unblocks Acquire, TryAcquire never blocks, and tokens
// round-trip.
func TestPoolAcquireRelease(t *testing.T) {
	t.Parallel()
	p := NewPool(3) // two helper tokens
	ctx := context.Background()
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if !p.TryAcquire() {
		t.Fatal("second helper token not available")
	}
	if p.TryAcquire() {
		t.Fatal("acquired more helper tokens than workers-1")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := p.Acquire(cancelled); err == nil {
		t.Fatal("Acquire on an empty pool ignored context cancellation")
	}
	p.Release()
	p.Release()
	if p.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", p.Workers())
	}
	if got := NewPool(0).Workers(); got != DefaultWorkers() {
		t.Fatalf("NewPool(0).Workers() = %d, want DefaultWorkers() = %d", got, DefaultWorkers())
	}
}

func expectPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

// TestForEachSkipsAfterFailure: remaining indices are abandoned once a
// job fails, but the first error by index still wins.
func TestForEachSkipsAfterFailure(t *testing.T) {
	t.Parallel()
	var ran [8]bool
	err := ForEach(8, 1, func(i int) error {
		ran[i] = true
		if i == 2 {
			return fmt.Errorf("boom at %d", i)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom at 2") {
		t.Fatalf("err = %v", err)
	}
	if ran[3] || ran[7] {
		t.Fatal("serial ForEach kept running after a failure")
	}
	if err := ForEach(0, 4, func(int) error { return fmt.Errorf("never") }); err != nil {
		t.Fatalf("empty ForEach returned %v", err)
	}
}
