package scenario

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/workload"
)

// smallCfg is a fast request-level scenario for batch tests.
func smallCfg(seed uint64, kind deploy.Kind) Config {
	return Config{
		Seed:              seed,
		Kind:              kind,
		Students:          60,
		ReqPerStudentHour: 20,
		Duration:          30 * time.Minute,
		Diurnal:           workload.FlatDiurnal(),
	}
}

// fingerprint reduces a Result to a string that captures every field an
// experiment renders, so byte-equality of fingerprints means
// byte-equality of any table built from the result.
func fingerprint(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kind=%v scaler=%v served=%d rejected=%d offline=%d viol=%d",
		r.Kind, r.Scaler, r.Served, r.Rejected, r.Offline, r.PolicyViolations)
	fmt.Fprintf(&b, " p50=%v p95=%v p99=%v", r.Latency.P50(), r.Latency.P95(), r.Latency.P99())
	fmt.Fprintf(&b, " peak=%d vmpub=%v vmpriv=%v egress=%v cost=%v",
		r.PeakServers, r.VMHoursPublic, r.VMHoursPrivate, r.EgressGB, r.Cost.Total())
	for _, p := range r.Servers.Points() {
		fmt.Fprintf(&b, " s(%v)=%v", p.At, p.Value)
	}
	for _, p := range r.P95Series.Points() {
		fmt.Fprintf(&b, " p(%v)=%v", p.At, p.Value)
	}
	return b.String()
}

// TestRunAllWorkerCountInvariant is the heart of the determinism
// contract: the same jobs produce byte-identical results whether run
// serially or on a pool, in every collection slot.
func TestRunAllWorkerCountInvariant(t *testing.T) {
	t.Parallel()
	jobs := []Job{
		{Name: "public", Cfg: smallCfg(11, deploy.Public)},
		{Name: "private", Cfg: smallCfg(11, deploy.Private)},
		{Name: "hybrid", Cfg: smallCfg(11, deploy.Hybrid)},
		{Name: "public-fluid", Cfg: smallCfg(11, deploy.Public), Fluid: true},
		{Name: "desktop", Cfg: smallCfg(11, deploy.Desktop)},
	}
	serial, err := RunAll(jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := RunAll(jobs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i].Name != serial[i].Name {
				t.Fatalf("workers=%d: slot %d holds %q, want %q (submission order broken)",
					workers, i, par[i].Name, serial[i].Name)
			}
			if serial[i].Res != nil {
				got, want := fingerprint(par[i].Res), fingerprint(serial[i].Res)
				if got != want {
					t.Fatalf("workers=%d job %q diverged:\n got %s\nwant %s",
						workers, serial[i].Name, got, want)
				}
			}
			if serial[i].Fluid != nil {
				got := fmt.Sprintf("%v %v %v", par[i].Fluid.VMHoursPublic,
					par[i].Fluid.Cost.Total(), par[i].Fluid.PeakServers)
				want := fmt.Sprintf("%v %v %v", serial[i].Fluid.VMHoursPublic,
					serial[i].Fluid.Cost.Total(), serial[i].Fluid.PeakServers)
				if got != want {
					t.Fatalf("workers=%d fluid job %q diverged: %s vs %s",
						workers, serial[i].Name, got, want)
				}
			}
		}
	}
}

// TestRunAllFirstErrorWins: the reported error is the first-submitted
// failure, not whichever worker failed first.
func TestRunAllFirstErrorWins(t *testing.T) {
	t.Parallel()
	bad := smallCfg(11, deploy.Public)
	bad.Students = 0 // invalid: Run rejects it
	jobs := []Job{
		{Name: "ok-0", Cfg: smallCfg(11, deploy.Public)},
		{Name: "bad-1", Cfg: bad},
		{Name: "ok-2", Cfg: smallCfg(11, deploy.Private)},
		{Name: "bad-3", Cfg: bad},
	}
	for _, workers := range []int{1, 4} {
		_, err := RunAll(jobs, workers)
		if err == nil {
			t.Fatalf("workers=%d: invalid job accepted", workers)
		}
		if !strings.Contains(err.Error(), `"bad-1"`) {
			t.Fatalf("workers=%d: err = %v, want first-submitted job bad-1", workers, err)
		}
	}
}

// TestRunAllRejectsBadNames: empty and duplicate names break result
// addressing and seed derivation, so the batch refuses them up front.
func TestRunAllRejectsBadNames(t *testing.T) {
	t.Parallel()
	if _, err := RunAll([]Job{{Name: "", Cfg: smallCfg(1, deploy.Public)}}, 1); err == nil {
		t.Fatal("empty job name accepted")
	}
	dup := []Job{
		{Name: "x", Cfg: smallCfg(1, deploy.Public)},
		{Name: "x", Cfg: smallCfg(1, deploy.Private)},
	}
	if _, err := RunAll(dup, 4); err == nil {
		t.Fatal("duplicate job name accepted")
	}
}

// TestBatchSeedDerivation: jobs added without a seed get one derived
// from (batch seed, job name); explicit seeds are left alone.
func TestBatchSeedDerivation(t *testing.T) {
	t.Parallel()
	cfg := smallCfg(0, deploy.Public) // zero seed: derive
	b := NewBatch(7).Add("a", cfg).Add("b", cfg)
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	if got, want := b.jobs[0].Cfg.Seed, SeedFor(7, "a"); got != want {
		t.Fatalf("derived seed = %d, want SeedFor(7, a) = %d", got, want)
	}
	if b.jobs[0].Cfg.Seed == b.jobs[1].Cfg.Seed {
		t.Fatal("distinct job names derived the same seed")
	}
	explicit := smallCfg(42, deploy.Public)
	b2 := NewBatch(7).Add("a", explicit)
	if b2.jobs[0].Cfg.Seed != 42 {
		t.Fatalf("explicit seed overwritten: %d", b2.jobs[0].Cfg.Seed)
	}
}

// TestBatchResultLookup: results are reachable by name with the right
// fidelity, and misuse panics loudly.
func TestBatchResultLookup(t *testing.T) {
	t.Parallel()
	b := NewBatch(11).
		Add("des", smallCfg(11, deploy.Public)).
		AddFluid("fluid", smallCfg(11, deploy.Public))
	res, err := b.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result("des").Served == 0 {
		t.Fatal("DES job served nothing")
	}
	if res.Fluid("fluid").Cost.Total() <= 0 {
		t.Fatal("fluid job billed nothing")
	}
	if len(res.All()) != 2 || res.All()[0].Name != "des" {
		t.Fatalf("All() order wrong: %+v", res.All())
	}
	expectPanic(t, func() { res.Result("missing") })
	expectPanic(t, func() { res.Result("fluid") })
	expectPanic(t, func() { res.Fluid("des") })
}

// TestSplitBudget: the two pool levels share the budget instead of
// multiplying it, and degenerate inputs stay sane.
func TestSplitBudget(t *testing.T) {
	t.Parallel()
	cases := []struct {
		workers, n, outer, inner int
	}{
		{1, 17, 1, 1},
		{4, 17, 4, 1},
		{64, 17, 17, 4}, // ceil(64/17): don't strand budget on uneven splits
		{32, 17, 17, 2}, // floor would leave 15 of 32 workers idle
		{4, 3, 3, 2},
		{8, 1, 1, 8},
		{3, 0, 1, 3},
	}
	for _, c := range cases {
		outer, inner := SplitBudget(c.workers, c.n)
		if outer != c.outer || inner != c.inner {
			t.Errorf("SplitBudget(%d, %d) = (%d, %d), want (%d, %d)",
				c.workers, c.n, outer, inner, c.outer, c.inner)
		}
	}
	// workers <= 0 falls back to DefaultWorkers.
	outer, inner := SplitBudget(0, 2)
	if outer < 1 || inner < 1 {
		t.Fatalf("SplitBudget(0, 2) = (%d, %d)", outer, inner)
	}
}

func expectPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

// TestForEachSkipsAfterFailure: remaining indices are abandoned once a
// job fails, but the first error by index still wins.
func TestForEachSkipsAfterFailure(t *testing.T) {
	t.Parallel()
	var ran [8]bool
	err := ForEach(8, 1, func(i int) error {
		ran[i] = true
		if i == 2 {
			return fmt.Errorf("boom at %d", i)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom at 2") {
		t.Fatalf("err = %v", err)
	}
	if ran[3] || ran[7] {
		t.Fatal("serial ForEach kept running after a failure")
	}
	if err := ForEach(0, 4, func(int) error { return fmt.Errorf("never") }); err != nil {
		t.Fatalf("empty ForEach returned %v", err)
	}
}
