// Package scenario binds every substrate into end-to-end experiments: a
// deployment model serving the e-learning workload over a network, with
// autoscaling, sessions, threats and cost accounting. It offers two
// fidelities:
//
//   - Run: full request-level discrete-event simulation, for experiments
//     where latency distributions and overload behavior matter (exam
//     spikes, network outages). Horizons of hours to a few days.
//   - FluidRun: a flow-level approximation that steps the arrival-rate
//     curve and integrates capacity, utilization and cost, for
//     semester-scale TCO and utilization studies where per-request
//     queueing is irrelevant.
//
// Both are deterministic given (seed, config).
//
// The package also hosts the deterministic parallel batch runner
// (batch.go): experiments declare independent scenario executions as
// named jobs on a Batch, and a shared, work-conserving Pool fans them
// out across goroutines. A job's randomness is fixed when it is
// declared — its RNG streams root at its own Config.Seed, derived via
// SeedFor(batch seed, job name) when left zero — so worker count, pool
// sharing and completion order can never change a result, only how fast
// it arrives. One Pool may span arbitrarily nested batches (the
// cmd/elbench suite loop and every experiment's internal batch share
// one); tokens freed by a drained level are immediately claimed by any
// other. See ARCHITECTURE.md for the token-flow diagram.
//
// The pool keeps lock-free telemetry of its own realized utilization —
// jobs run, helpers recruited, cross-batch handoffs, peak concurrency,
// token-idle time — snapshotted with Pool.Stats and attributable to a
// scope (one experiment) via Pool.WithMeter; see telemetry.go and
// ARCHITECTURE.md's Telemetry section. Telemetry never feeds back into
// scheduling, so it cannot perturb determinism.
package scenario
