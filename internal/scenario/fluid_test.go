package scenario

import (
	"testing"

	"elearncloud/internal/deploy"
	"elearncloud/internal/workload"
)

func fluidCfg(kind deploy.Kind, students int) Config {
	return Config{
		Seed:              1,
		Kind:              kind,
		Students:          students,
		ReqPerStudentHour: 50,
		Duration:          workload.StandardSemester().Duration(),
		Calendar:          workload.StandardSemester(),
	}
}

func TestFluidSemesterShapes(t *testing.T) {
	pub, err := FluidRun(fluidCfg(deploy.Public, 2000))
	if err != nil {
		t.Fatal(err)
	}
	priv, err := FluidRun(fluidCfg(deploy.Private, 2000))
	if err != nil {
		t.Fatal(err)
	}

	// Elastic fleet consumes far fewer VM-hours than an always-on fleet
	// sized for the finals peak.
	if pub.VMHoursPublic >= priv.VMHoursPrivate {
		t.Fatalf("elastic VM-hours %v >= always-on %v", pub.VMHoursPublic, priv.VMHoursPrivate)
	}
	// The private fleet idles most of the semester: the paper's
	// underutilization argument.
	if priv.MeanPrivateUtil > 0.6 {
		t.Fatalf("private utilization %v suspiciously high", priv.MeanPrivateUtil)
	}
	if priv.MeanPrivateUtil <= 0 {
		t.Fatal("private utilization not measured")
	}
	// Peak fleet sizes should be comparable (both must absorb finals).
	if pub.PeakServers < priv.PeakServers/2 {
		t.Fatalf("public peak %d far below private fixed %d", pub.PeakServers, priv.PeakServers)
	}
	if pub.EgressGB <= 0 {
		t.Fatal("no egress estimated for public")
	}
	if priv.EgressGB != 0 {
		t.Fatal("private estimated public egress")
	}
	if pub.Rate.Len() == 0 || pub.Servers.Len() == 0 {
		t.Fatal("figure series missing")
	}
}

func TestFluidHybridBetween(t *testing.T) {
	pub, err := FluidRun(fluidCfg(deploy.Public, 2000))
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := FluidRun(fluidCfg(deploy.Hybrid, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if hyb.VMHoursPrivate <= 0 || hyb.VMHoursPublic <= 0 {
		t.Fatal("hybrid should use both sides across a semester")
	}
	if hyb.EgressGB >= pub.EgressGB {
		t.Fatal("hybrid egress should be below all-public")
	}
	if hyb.Cost.Integration <= 0 {
		t.Fatal("hybrid missing integration overhead")
	}
}

func TestFluidCostCrossover(t *testing.T) {
	// Small school: public wins. Big university: private wins. This is
	// the Figure 3 crossover in miniature.
	smallPub, err := FluidRun(fluidCfg(deploy.Public, 200))
	if err != nil {
		t.Fatal(err)
	}
	smallPriv, err := FluidRun(fluidCfg(deploy.Private, 200))
	if err != nil {
		t.Fatal(err)
	}
	if smallPub.Cost.Total() >= smallPriv.Cost.Total() {
		t.Fatalf("small scale: public %v >= private %v",
			smallPub.Cost.Total(), smallPriv.Cost.Total())
	}
	bigPub, err := FluidRun(fluidCfg(deploy.Public, 20000))
	if err != nil {
		t.Fatal(err)
	}
	bigPriv, err := FluidRun(fluidCfg(deploy.Private, 20000))
	if err != nil {
		t.Fatal(err)
	}
	if bigPub.Cost.Total() <= bigPriv.Cost.Total() {
		t.Fatalf("large scale: public %v <= private %v",
			bigPub.Cost.Total(), bigPriv.Cost.Total())
	}
}

func TestFluidDesktop(t *testing.T) {
	res, err := FluidRun(fluidCfg(deploy.Desktop, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if res.VMHoursPublic != 0 || res.VMHoursPrivate != 0 {
		t.Fatal("desktop consumed VM-hours")
	}
	if res.Cost.Desktop <= 0 {
		t.Fatal("desktop bill empty")
	}
}

func TestFluidCostPerStudentScaleEconomies(t *testing.T) {
	small, err := FluidRun(fluidCfg(deploy.Private, 500))
	if err != nil {
		t.Fatal(err)
	}
	big, err := FluidRun(fluidCfg(deploy.Private, 10000))
	if err != nil {
		t.Fatal(err)
	}
	if big.CostPerStudentMonth(10000) >= small.CostPerStudentMonth(500) {
		t.Fatalf("no economies of scale: big %v >= small %v",
			big.CostPerStudentMonth(10000), small.CostPerStudentMonth(500))
	}
}

func TestFluidValidation(t *testing.T) {
	if _, err := FluidRun(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestFluidDeterminism(t *testing.T) {
	a, err := FluidRun(fluidCfg(deploy.Hybrid, 1500))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FluidRun(fluidCfg(deploy.Hybrid, 1500))
	if err != nil {
		t.Fatal(err)
	}
	if a.VMHoursPublic != b.VMHoursPublic || a.Cost.Total() != b.Cost.Total() {
		t.Fatal("fluid run not deterministic")
	}
}
