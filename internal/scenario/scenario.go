package scenario

import (
	"fmt"
	"math"
	"time"

	"elearncloud/internal/cost"
	"elearncloud/internal/deploy"
	"elearncloud/internal/lms"
	"elearncloud/internal/metrics"
	"elearncloud/internal/network"
	"elearncloud/internal/scale"
	"elearncloud/internal/security"
	"elearncloud/internal/workload"
)

// ScalerKind selects the elasticity policy for the elastic (public) side.
type ScalerKind int

// Scaler kinds.
const (
	ScalerFixed ScalerKind = iota + 1
	ScalerReactive
	ScalerScheduled
	ScalerPredictive
	// ScalerGrowthFit fits the demand curve online (scale.GrowthFit) and
	// provisions ahead of the projected cliff, reactive until the fit
	// stabilizes.
	ScalerGrowthFit
	// ScalerOracle provisions from the true workload curve, storms
	// included (scale.Oracle) — the yardstick forecasting policies are
	// judged against.
	ScalerOracle
)

// String returns the policy name.
func (k ScalerKind) String() string {
	switch k {
	case ScalerFixed:
		return "fixed"
	case ScalerReactive:
		return "reactive"
	case ScalerScheduled:
		return "scheduled"
	case ScalerPredictive:
		return "predictive"
	case ScalerGrowthFit:
		return "growth-fit"
	case ScalerOracle:
		return "oracle"
	default:
		return fmt.Sprintf("ScalerKind(%d)", int(k))
	}
}

// Config describes one experiment.
type Config struct {
	// Seed drives all randomness; same seed + config = same result.
	Seed uint64
	// Kind is the deployment model under test.
	Kind deploy.Kind
	// Students and Courses size the institution. With Growth set,
	// Students may be zero (derived from the growth capacity).
	Students int
	Courses  int
	// Growth makes the active population a curve instead of a constant
	// — MOOC enrollment growth (workload.LogisticGrowth for a viral
	// course, workload.LinearGrowth for a cohort ramp).
	Growth *workload.Growth
	// ReqPerStudentHour is mean per-student demand (default 50).
	ReqPerStudentHour float64
	// Access is the user population's connectivity profile (default
	// UrbanBroadband; the paper's rural learners use RuralDSL).
	Access network.AccessProfile
	// Duration is the simulated horizon (default 6h for Run).
	Duration time.Duration
	// Diurnal shapes the day (default CampusDiurnal; experiments that
	// want analytic load use FlatDiurnal).
	Diurnal *workload.DiurnalProfile
	// Calendar optionally shapes a multi-week run.
	Calendar *workload.Calendar
	// Crowds adds exam flash-crowd windows.
	Crowds []workload.FlashCrowd
	// Storms adds deadline storms (procrastination ramp, submission
	// cliff) and Joins adds live-session join storms — the MOOC
	// stressors of figure10.
	Storms []workload.DeadlineStorm
	Joins  []workload.JoinStorm
	// Scaler picks the elasticity policy for the elastic side (default
	// reactive for public/hybrid; private is always a fixed fleet).
	Scaler ScalerKind
	// HybridPolicy configures the hybrid split (default: sensitive
	// pinned private, half the steady capacity in-house).
	HybridPolicy deploy.HybridPolicy
	// StrictPinning keeps sensitive requests on the private side even
	// when it saturates; relaxed pinning bursts them to public and
	// counts the policy violations (Table 4 ablation).
	StrictPinning bool
	// EnableThreats runs the security model during the scenario.
	EnableThreats bool
	// EnableCDN serves video through an edge CDN on deployments with a
	// public side: hits take the short edge path and bill at CDN rates;
	// misses fetch from the origin and pay egress.
	EnableCDN bool
	// HostFailureAt, when positive, destroys private host 0 at that
	// time, killing its VMs — §IV.B's "physical damage of the unit",
	// injected live. HostRecoveryAfter restores it (default 4h).
	HostFailureAt     time.Duration
	HostRecoveryAfter time.Duration
	// AutosaveEvery is the cloud LMS autosave interval (default 5m).
	AutosaveEvery time.Duration
	// TrackedSessions is how many user sessions to follow for lost-work
	// accounting (default 50).
	TrackedSessions int
	// TargetUtil sizes fleets (default 0.6).
	TargetUtil float64
	// MaxPublicServers caps elastic growth (default 0: derived from peak
	// sizing × 4).
	MaxPublicServers int
	// Shards splits a ShardedRun into this many per-shard engines
	// (default 0 and 1 both mean a single shard). Run ignores it; see
	// ShardedRun for the partitioning and merge semantics. HybridRun's
	// DES windows honor it too: each window runs as a K-shard merge.
	Shards int
	// HybridIntensity is the fidelity planner's burst threshold: an
	// envelope segment whose crowd/storm/join multiplier bound reaches
	// this factor drops into request-level DES under HybridRun (default
	// 1.5). Run, ShardedRun and FluidRun ignore it.
	HybridIntensity float64
	// HybridGuard pads each DES window by this margin on both sides, so
	// warm-started fleets boot and settle on quiet traffic before the
	// burst hits (default 10m). Only HybridRun reads it.
	HybridGuard time.Duration
}

func (c *Config) defaults() error {
	if c.Kind == 0 {
		c.Kind = deploy.Public
	}
	if c.Growth != nil && c.Students <= 0 {
		c.Students = int(math.Ceil(c.Growth.Max()))
	}
	if c.Students <= 0 {
		return fmt.Errorf("scenario: Students = %d, need > 0", c.Students)
	}
	if c.Courses <= 0 {
		c.Courses = c.Students/25 + 1
	}
	if c.ReqPerStudentHour == 0 {
		c.ReqPerStudentHour = 50
	}
	if c.ReqPerStudentHour < 0 {
		return fmt.Errorf("scenario: negative ReqPerStudentHour")
	}
	if c.Access.Name == "" {
		c.Access = network.UrbanBroadband
	}
	if c.Duration <= 0 {
		c.Duration = 6 * time.Hour
	}
	if c.Scaler == 0 {
		c.Scaler = ScalerReactive
	}
	if c.Kind == deploy.Hybrid && c.HybridPolicy == (deploy.HybridPolicy{}) {
		c.HybridPolicy = deploy.DefaultHybridPolicy()
	}
	if c.AutosaveEvery <= 0 {
		c.AutosaveEvery = 5 * time.Minute
	}
	if c.TrackedSessions <= 0 {
		c.TrackedSessions = 50
	}
	if c.TrackedSessions > c.Students {
		c.TrackedSessions = c.Students
	}
	if c.TargetUtil <= 0 || c.TargetUtil > 1 {
		c.TargetUtil = 0.6
	}
	if c.HostFailureAt > 0 && c.HostRecoveryAfter <= 0 {
		c.HostRecoveryAfter = 4 * time.Hour
	}
	if c.HybridIntensity <= 0 {
		c.HybridIntensity = 1.5
	}
	if c.HybridGuard <= 0 {
		c.HybridGuard = 10 * time.Minute
	}
	return nil
}

// Result is what one scenario run measured.
type Result struct {
	// Kind echoes the model under test.
	Kind deploy.Kind
	// Scaler echoes the elasticity policy.
	Scaler ScalerKind
	// Duration is the simulated horizon.
	Duration time.Duration

	// Latency is the end-to-end response-time distribution (seconds).
	Latency *metrics.Histogram
	// Served, Rejected and Offline count request outcomes: completed,
	// refused by a saturated fleet, and lost to a down network path.
	Served, Rejected, Offline uint64
	// PolicyViolations counts sensitive requests served on the public
	// side under relaxed pinning.
	PolicyViolations uint64

	// Servers tracks fleet size over time; Utilization tracks offered
	// load over capacity; P95Series tracks the rolling per-minute P95
	// latency (Figure 2's y-axis).
	Servers     *metrics.TimeSeries
	Utilization *metrics.TimeSeries
	P95Series   *metrics.TimeSeries
	// PeakServers is the largest fleet observed.
	PeakServers int

	// VMHoursPublic / VMHoursPrivate are compute consumption by side.
	VMHoursPublic  float64
	VMHoursPrivate float64
	// PrivateHosts is the owned fleet size.
	PrivateHosts int
	// EgressGB is data served out of the public cloud.
	EgressGB float64
	// CDNGB is data delivered via the edge CDN; CDNHitRatio is the edge
	// cache's realized hit ratio (both zero when the CDN is disabled).
	CDNGB       float64
	CDNHitRatio float64
	// KilledJobs counts in-flight requests destroyed by host failure.
	KilledJobs int

	// LostWork is cumulative unsaved work destroyed by disconnects
	// across tracked sessions; Disconnects counts outage-driven drops.
	LostWork    time.Duration
	Disconnects int
	// NetAvailability is the last-mile availability observed.
	NetAvailability float64

	// Breaches, SensitiveExposures, DataLossEvents and BytesLost come
	// from the threat model (zero when threats are disabled).
	Breaches           int
	SensitiveExposures int
	DataLossEvents     int
	BytesLost          float64

	// Arrivals counts generated request arrivals before routing — the
	// left-hand side of the seam conservation identity
	// Arrivals == Served + Rejected + Offline + CarriedOut.
	Arrivals uint64
	// CarriedIn and CarriedOut are a hybrid DES window's seam state:
	// synthetic backlog requests injected at the window's opening
	// boundary (the queue mass the fluid model predicts is in flight),
	// and real requests still in flight when the window closes (handed
	// back to the fluid side as served mass). Both stay zero outside
	// HybridRun windows.
	CarriedIn, CarriedOut int

	// Events counts DES events the engine executed (summed across
	// shards for a merged sharded run).
	Events uint64
	// Shards is the shard count of a ShardedRun merge; it stays zero
	// for direct runs and single-shard runs, whose results are
	// byte-identical to the direct path. ShardEvents, set only when
	// Shards >= 2, holds per-shard event counts in shard-index order.
	Shards      int
	ShardEvents []uint64

	// FluidSimHours and DESSimHours split a HybridRun's simulated
	// horizon by fidelity: hours integrated by the fluid model versus
	// hours simulated at request level. Both stay zero outside
	// HybridRun; their sum there is the full horizon.
	FluidSimHours float64
	DESSimHours   float64

	// Fit is the growth-fitting scaler's final fit report (nil unless
	// the run used ScalerGrowthFit) — the shape, parameters and residual
	// the policy was acting on when the horizon ended, surfaced for
	// experiment notes and tests.
	Fit *scale.FitReport

	// Cost is the itemized bill for the run.
	Cost cost.Report
}

// ErrorRate returns the fraction of request attempts the user perceived
// as failed: rejected, offline, or killed by a host failure.
func (r *Result) ErrorRate() float64 {
	failed := r.Rejected + r.Offline + uint64(r.KilledJobs)
	total := r.Served + failed
	if total == 0 {
		return 0
	}
	return float64(failed) / float64(total)
}

// CostPerStudentMonth normalizes cost to USD/student/month.
func (r *Result) CostPerStudentMonth(students int) float64 {
	months := r.Duration.Hours() / 730
	return cost.PerStudentMonth(r.Cost, students, months)
}

// mixFor returns the catalog and steady mix used across runs.
func mixFor() (*lms.Catalog, *lms.Mix) {
	return lms.DefaultCatalog(), lms.TeachingMix()
}

// threatConfig builds the per-model threat environment.
func threatConfig(kind deploy.Kind) security.Config {
	return security.ConfigFor(kind)
}
