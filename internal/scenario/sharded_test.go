package scenario

import (
	"reflect"
	"testing"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/workload"
)

// shardedTestConfigs mirrors the shapes the experiment suite exercises:
// an elastic public MOOC ramp, a hybrid with CDN + threats, and a
// private deployment with a host failure.
func shardedTestConfigs() map[string]Config {
	return map[string]Config{
		"public-growth": {
			Seed:              101,
			Kind:              deploy.Public,
			Growth:            workload.LinearGrowth(200, 1500, time.Hour),
			ReqPerStudentHour: 30,
			Duration:          2 * time.Hour,
			Diurnal:           workload.FlatDiurnal(),
			Scaler:            ScalerReactive,
		},
		"hybrid-cdn": {
			Seed:              102,
			Kind:              deploy.Hybrid,
			Students:          800,
			ReqPerStudentHour: 25,
			Duration:          2 * time.Hour,
			Scaler:            ScalerPredictive,
			EnableCDN:         true,
			EnableThreats:     true,
		},
		"private-failure": {
			Seed:              103,
			Kind:              deploy.Private,
			Students:          600,
			ReqPerStudentHour: 25,
			Duration:          2 * time.Hour,
			Scaler:            ScalerFixed,
			HostFailureAt:     30 * time.Minute,
		},
	}
}

// TestShardedOneEqualsRun pins the non-tautological identity at the
// heart of the sharded path: a single-shard ShardedRun executes the
// full sharding machinery — shard context, share-scaled sizing, member
// user picks — and must still be byte-identical to the direct Run,
// because every share multiplier is exactly 1.0 and the member list is
// the identity.
func TestShardedOneEqualsRun(t *testing.T) {
	for name, cfg := range shardedTestConfigs() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			direct, err := Run(cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, shards := range []int{0, 1} {
				scfg := cfg
				scfg.Shards = shards
				sharded, err := ShardedRun(scfg, NewPool(2))
				if err != nil {
					t.Fatalf("ShardedRun(shards=%d): %v", shards, err)
				}
				if !reflect.DeepEqual(direct, sharded) {
					t.Fatalf("ShardedRun(shards=%d) differs from Run:\ndirect:  %+v\nsharded: %+v",
						shards, direct, sharded)
				}
			}
			if direct.Served < 500 {
				t.Fatalf("workload too small to be meaningful: %d served", direct.Served)
			}
		})
	}
}

// TestShardedWorkerIndependent pins that a multi-shard merged result is
// a pure function of (config, seed, K): identical for any worker count,
// serial reference included.
func TestShardedWorkerIndependent(t *testing.T) {
	cfg := shardedTestConfigs()["public-growth"]
	cfg.Shards = 4
	ref, err := ShardedRun(cfg, NewPool(1))
	if err != nil {
		t.Fatalf("ShardedRun(workers=1): %v", err)
	}
	for _, workers := range []int{2, 4, 7} {
		got, err := ShardedRun(cfg, NewPool(workers))
		if err != nil {
			t.Fatalf("ShardedRun(workers=%d): %v", workers, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d merged result differs from serial reference", workers)
		}
	}
	if ref.Shards != 4 || len(ref.ShardEvents) != 4 {
		t.Fatalf("merge metadata: Shards=%d ShardEvents=%v", ref.Shards, ref.ShardEvents)
	}
	var sum uint64
	for _, e := range ref.ShardEvents {
		sum += e
	}
	if sum != ref.Events {
		t.Fatalf("Events %d != sum of ShardEvents %d", ref.Events, sum)
	}
	if ref.Served < 1000 {
		t.Fatalf("workload too small to be meaningful: %d served", ref.Served)
	}
}

// TestShardedMergeSanity checks the merged aggregates stay in the same
// regime as the unsharded run: shards split load, so total served and
// total VM-hours must land close, not at K× or 1/K.
func TestShardedMergeSanity(t *testing.T) {
	cfg := shardedTestConfigs()["public-growth"]
	direct, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg.Shards = 4
	sharded, err := ShardedRun(cfg, NewPool(2))
	if err != nil {
		t.Fatalf("ShardedRun: %v", err)
	}
	dServed, sServed := float64(direct.Served), float64(sharded.Served)
	if sServed < 0.8*dServed || sServed > 1.25*dServed {
		t.Fatalf("served diverged: direct %d, sharded %d", direct.Served, sharded.Served)
	}
	if sharded.Servers.Len() != direct.Servers.Len() {
		t.Fatalf("series length: direct %d, sharded %d", direct.Servers.Len(), sharded.Servers.Len())
	}
	if sharded.Cost.Total() <= 0 {
		t.Fatalf("merged bill is empty: %+v", sharded.Cost)
	}
	// Storage must be billed once, not K times: the merged bill's
	// storage line matches the unsharded one (same assets, same months).
	if sharded.Cost.Storage != direct.Cost.Storage {
		t.Fatalf("storage billed per shard: direct %v, sharded %v",
			direct.Cost.Storage, sharded.Cost.Storage)
	}
}
