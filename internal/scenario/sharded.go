package scenario

import (
	"fmt"
	"math"

	"elearncloud/internal/deploy"
	"elearncloud/internal/metrics"
	"elearncloud/internal/sim"
)

// This file shards a DES run into K per-shard engines so runs at
// 10^5–10^6 students execute as K ordinary pool jobs instead of one
// serial event loop.
//
// The construction:
//
//   - Students are partitioned by a stable hash of user ID
//     (workload.ShardOf), so membership is a pure function of (user, K).
//   - Shard k's RNG streams are rooted at SeedFor(seed, "shard/<k>") —
//     the same (seed, job name) rule every batch job follows — so the
//     merged output is a pure function of (config, seed, K), independent
//     of worker count and scheduling.
//   - Each shard draws arrivals from the full NHPP envelope thinned by
//     its share of the active population; superposing the shard
//     processes reproduces the unsharded arrival distribution exactly
//     (Poisson splitting).
//   - Shards execute as ordinary Pool jobs, so -parallel remains the
//     one global concurrency cap: K=8 with -parallel 2 runs two shard
//     engines at a time on the same tokens every batch shares.
//
// The approximation: fleet and autoscaler state stays per-shard, with
// capacity split proportionally to shard population (CapShare). The
// merged run therefore models K fleets of ~N/K servers instead of one
// fleet of N. Pooling effects make the split fleet slightly worse at
// absorbing load imbalance between shards — by Erlang-C reasoning the
// error shrinks as per-shard fleets grow, and the shard-determinism
// metamorph invariant bounds the realized P95 drift against the
// unsharded engine on overlap-regime configs. Scalar consumption
// (VM-hours, egress, served counts) is unaffected by the split beyond
// that queueing drift; storage and per-host billing are rebilled once
// at merge so per-shard asset copies are not double-counted.
//
// At K=1 every share is exactly 1.0, the member list is the identity,
// and the seed is left untouched: the single "shard" consumes its RNG
// streams identically to the direct path and ShardedRun returns its
// result unmerged — byte-identical to Run. The CI scale lane and
// TestShardedOneEqualsRun pin this.

// ShardedRun executes cfg as cfg.Shards per-shard engines on the pool
// and merges the results deterministically in shard-index order. Shards
// of 0 or 1 runs a single shard and returns its result directly (byte-
// identical to Run). A nil pool runs on a one-off DefaultWorkers pool.
func ShardedRun(cfg Config, pool *Pool) (*Result, error) {
	return shardedRun(cfg, pool, nil)
}

// shardedRun is ShardedRun with an optional hybrid DES window: every
// shard engine is confined to the window's span, so HybridRun's
// windows honor Config.Shards with the same partition, seeds and merge
// as a whole-horizon sharded run.
func shardedRun(cfg Config, pool *Pool, win *desWindow) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	gen, err := genFor(cfg)
	if err != nil {
		return nil, err
	}
	sh := gen.ShardBy(shards)

	subs := make([]Config, shards)
	for k := range subs {
		sub := cfg
		sub.Shards = 0 // each shard is a plain single-engine run
		if shards > 1 {
			sub.Seed = SeedFor(cfg.Seed, fmt.Sprintf("shard/%d", k))
			sub.TrackedSessions = shardSlice(cfg.TrackedSessions, k, shards)
			if cfg.MaxPublicServers > 0 {
				m := int(math.Ceil(sh.CapShare(k) * float64(cfg.MaxPublicServers)))
				if m < 1 {
					m = 1
				}
				sub.MaxPublicServers = m
			}
			// Singleton processes — the threat environment and the
			// injected host failure — run on shard 0 only, not once per
			// shard: the scenario models one institution, not K.
			if k > 0 {
				sub.EnableThreats = false
				sub.HostFailureAt = 0
			}
		}
		subs[k] = sub
	}

	results := make([]*Result, shards)
	if err := pool.ForEach(shards, func(k int) error {
		r, err := runShard(subs[k], &shardCtx{sh: sh, k: k, win: win})
		if err != nil {
			return fmt.Errorf("shard %d: %w", k, err)
		}
		results[k] = r
		return nil
	}); err != nil {
		return nil, err
	}
	if shards == 1 {
		return results[0], nil
	}
	merged, err := mergeShards(cfg, results, win != nil)
	if err != nil {
		return nil, err
	}
	if pool != nil {
		pool.stats.noteShards(shards, merged.ShardEvents)
	}
	return merged, nil
}

// shardSlice splits a tracked-resource count of total across K shards:
// shard k gets its contiguous slice, every shard at least one.
func shardSlice(total, k, shards int) int {
	n := total*(k+1)/shards - total*k/shards
	if n < 1 {
		n = 1
	}
	return n
}

// mergeShards folds per-shard results into one Result, iterating in
// shard-index order everywhere so every float reduction has one fixed
// evaluation order — the VMHours lesson: sums over shards must never
// depend on completion order. window marks a hybrid DES-window merge,
// which skips billing (the hybrid stitcher bills once over the whole
// horizon).
func mergeShards(cfg Config, shards []*Result, window bool) (*Result, error) {
	base := shards[0]
	res := &Result{
		Kind:     base.Kind,
		Scaler:   base.Scaler,
		Duration: base.Duration,
		Latency:  metrics.DefaultLatency(),
		Shards:   len(shards),
	}
	for _, r := range shards {
		res.Latency.Merge(r.Latency)
		res.Served += r.Served
		res.Rejected += r.Rejected
		res.Offline += r.Offline
		res.PolicyViolations += r.PolicyViolations
		res.PeakServers += r.PeakServers
		res.VMHoursPublic += r.VMHoursPublic
		res.VMHoursPrivate += r.VMHoursPrivate
		res.PrivateHosts += r.PrivateHosts
		res.EgressGB += r.EgressGB
		res.CDNGB += r.CDNGB
		res.KilledJobs += r.KilledJobs
		res.LostWork += r.LostWork
		res.Disconnects += r.Disconnects
		res.Breaches += r.Breaches
		res.SensitiveExposures += r.SensitiveExposures
		res.DataLossEvents += r.DataLossEvents
		res.BytesLost += r.BytesLost
		res.Arrivals += r.Arrivals
		res.CarriedIn += r.CarriedIn
		res.CarriedOut += r.CarriedOut
		res.Events += r.Events
		res.ShardEvents = append(res.ShardEvents, r.Events)
	}
	// Hit ratio weighted by delivered bytes; availability as the mean of
	// the shards' independent last-mile processes.
	if res.CDNGB > 0 {
		var hitW float64
		for _, r := range shards {
			hitW += r.CDNHitRatio * r.CDNGB
		}
		res.CDNHitRatio = hitW / res.CDNGB
	}
	var avail float64
	for _, r := range shards {
		avail += r.NetAvailability
	}
	res.NetAvailability = avail / float64(len(shards))

	// Series sample on the same minute cadence over the same horizon in
	// every shard, so they align point-wise: fleet sizes add, utilization
	// is the capacity-weighted mean, and the P95 window series is the
	// plain mean of the shard windows (an estimator — order statistics
	// don't merge exactly — consistent with the fleet-split
	// approximation this file documents).
	srv := make([]*metrics.TimeSeries, len(shards))
	for k, r := range shards {
		srv[k] = r.Servers
	}
	res.Servers = metrics.MergeSeries("servers", func(vals []float64) float64 {
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return sum
	}, srv...)

	res.Utilization = metrics.NewTimeSeries("load-per-server")
	srvPts := make([][]metrics.Point, len(shards))
	utilPts := make([][]metrics.Point, len(shards))
	for k, r := range shards {
		srvPts[k] = r.Servers.Points()
		utilPts[k] = r.Utilization.Points()
		if len(utilPts[k]) != len(srvPts[k]) {
			return nil, fmt.Errorf("scenario: shard %d series misaligned: %d utilization vs %d server samples",
				k, len(utilPts[k]), len(srvPts[k]))
		}
	}
	for i := range srvPts[0] {
		var load, cap float64
		for k := range shards {
			load += utilPts[k][i].Value * srvPts[k][i].Value
			cap += srvPts[k][i].Value
		}
		v := 0.0
		if cap > 0 {
			v = load / cap
		}
		res.Utilization.Add(srvPts[0][i].At, v)
	}

	p95 := make([]*metrics.TimeSeries, len(shards))
	for k, r := range shards {
		p95[k] = r.P95Series
	}
	res.P95Series = metrics.MergeSeries("p95-window", func(vals []float64) float64 {
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return sum / float64(len(vals))
	}, p95...)

	// A hybrid window merge stops here: no bill, no reference
	// deployment — the stitcher bills the assembled horizon once.
	if window {
		return res, nil
	}

	// Rebill at the merged level. Each shard billed a deployment holding
	// a full copy of the asset store (shards split load, not content),
	// so summing shard bills would charge storage — and desktop seats —
	// K times. Build the full scenario's reference deployment once for
	// its asset placement, then bill the merged consumption against it.
	gen, err := genFor(cfg)
	if err != nil {
		return nil, err
	}
	cat, teaching := mixFor()
	dep, err := deploy.Build(sim.NewEngine(sim.SeedFor(cfg.Seed, "shard/bill")), deploy.Spec{
		Kind:            cfg.Kind,
		Students:        cfg.Students,
		Courses:         cfg.Courses,
		ExpectedPeakRPS: gen.MaxRate(),
		MeanServiceSec:  teaching.MeanService(cat),
		TargetUtil:      cfg.TargetUtil,
		Policy:          cfg.HybridPolicy,
	})
	if err != nil {
		return nil, err
	}
	res.Cost, err = billRun(cfg, dep.Assets, res.PrivateHosts, res)
	if err != nil {
		return nil, err
	}
	return res, nil
}
