package scenario

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"elearncloud/internal/sim"
)

// This file is the deterministic parallel batch runner. Experiments
// declare their scenario sets as named jobs and a shared worker pool
// fans them out across goroutines. Determinism contract:
//
//   - A job's randomness is fixed when the job is declared: its RNG
//     streams are rooted at its own Config.Seed, which the caller sets
//     explicitly or, when left zero, is derived from the batch seed and
//     the job name via sim.SeedFor. Nothing about scheduling — worker
//     identity, worker count, completion order, which pool ran the job
//     — ever reaches a job's RNG. (Two jobs given identical configs and
//     the same explicit seed are identical runs; distinct names
//     decorrelate only derived seeds.)
//   - Jobs share no mutable state: every Run/FluidRun builds its own
//     engine, fleets, topology and metrics.
//   - Results are collected in submission order and errors propagate
//     first-submitted-first, regardless of which worker ran a job or in
//     what order jobs finished.
//
// Together these make the batch output byte-identical to the serial path
// for any worker count and any pool sharing. Pool tokens gate only WHEN
// a job starts, never its RNG or its result slot.

// DefaultWorkers is the worker count used when a caller passes
// workers <= 0: one per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// SeedFor derives the RNG seed for a named job from a batch seed; see
// sim.SeedFor for the derivation rule.
func SeedFor(seed uint64, name string) uint64 { return sim.SeedFor(seed, name) }

// Pool is a shared, work-conserving worker pool: a weighted semaphore
// whose tokens span every batch and ForEach that runs on it, however
// deeply they nest. The goroutine that calls ForEach (or RunAll /
// Batch.RunOn) is itself the first worker and needs no token; each
// helper goroutine is recruited with one token, and a pool of workers
// holds workers-1 helper tokens, so global concurrency never exceeds
// workers no matter how many levels share the pool.
//
// Two properties follow from "callers always run their own jobs
// inline":
//
//   - Nesting cannot deadlock. A nested ForEach that finds every token
//     taken simply degrades to the serial path on its caller's
//     goroutine; it never blocks waiting for capacity.
//   - The pool is work-conserving. Tokens are not partitioned between
//     nesting levels: the moment any batch anywhere drains and releases
//     a token, any other batch with queued jobs recruits on it. A
//     caller that has dispatched all its indices and is merely waiting
//     for its helpers donates a token for the duration of the wait, so
//     even the waiting goroutine's core stays busy (see ForEach).
//
// Acquire/Release are exported so side tasks can share the same global
// concurrency cap; ForEach callers never need them.
//
// The pool also keeps lock-free execution telemetry — jobs run, helpers
// recruited, cross-batch hand-offs, peak concurrency, token-idle time —
// snapshotted by Stats and attributable per scope via WithMeter (see
// telemetry.go). Telemetry never feeds back into scheduling, so it
// cannot perturb the determinism contract above.
type Pool struct {
	// tokens carries free helper tokens, each stamped with the time it
	// was parked so Stats can report cumulative token-idle time.
	// Capacity exceeds the steady count (workers-1) so waiting callers
	// can transiently donate their own slot without blocking.
	tokens  chan time.Time
	workers int
	// stats is shared by every WithMeter view of the pool; meter, when
	// non-nil, additionally attributes jobs run through this view.
	stats *poolStats
	meter *Meter
}

// NewPool returns a pool enforcing a global concurrency cap of workers
// (<= 0 means DefaultWorkers). A one-worker pool has no helper tokens:
// everything on it runs serially on the calling goroutine, which is the
// reference path the determinism tests compare against.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool{
		tokens:  make(chan time.Time, 2*workers),
		workers: workers,
		stats:   &poolStats{},
	}
	//detlint:allow seedrule token-idle telemetry stamp; never reaches job results or RNG state
	now := time.Now()
	for i := 0; i < workers-1; i++ {
		p.tokens <- now
	}
	return p
}

// Workers reports the pool's global concurrency cap.
func (p *Pool) Workers() int { return p.workers }

// Acquire blocks until a helper token is free or ctx is done, and
// returns ctx.Err in the latter case. Every successful Acquire must be
// paired with exactly one Release.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case parked := <-p.tokens:
		p.stats.noteIdle(parked)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a helper token if one is free right now.
func (p *Pool) TryAcquire() bool {
	select {
	case parked := <-p.tokens:
		p.stats.noteIdle(parked)
		return true
	default:
		return false
	}
}

// Release returns a token taken by Acquire or TryAcquire. Releasing
// more tokens than were acquired corrupts the concurrency cap, so an
// overfull pool panics.
func (p *Pool) Release() {
	select {
	case p.tokens <- time.Now(): //detlint:allow seedrule token-idle telemetry stamp; never reaches job results or RNG state
	default:
		panic("scenario: Pool.Release without matching Acquire")
	}
}

// donate parks one transient token for helpers to claim while the donor
// blocks. It is best-effort: a full pool means nobody is starved, so
// skipping the donation is fine.
func (p *Pool) donate() bool {
	// Park the donor in netActive BEFORE the token becomes visible: a
	// racing recruiter can convert the token into a helper immediately,
	// and that helper's peak sample must already see the donor's -1 or
	// PeakConcurrent could read above the worker cap.
	p.stats.netActive.Add(-1)
	select {
	case p.tokens <- time.Now(): //detlint:allow seedrule token-idle telemetry stamp; never reaches job results or RNG state
		p.stats.donations.Add(1)
		return true
	default:
		p.stats.netActive.Add(1)
		return false
	}
}

// ForEach runs fn(i) for every i in [0, n) on the pool and returns the
// first error in index order (not completion order). The calling
// goroutine always participates, pulling indices inline; a recruiter
// turns every token that frees up — here or in any other batch sharing
// the pool — into one more helper, up to n-1 of them. A nil pool runs
// on a one-off DefaultWorkers pool.
//
// After a failure at index i, only indices greater than i may be
// skipped — lower indices always run — so the reported error is the
// same one the serial path stops at, for every worker count. fn must
// confine its writes to per-index state (typically slot i of a results
// slice).
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if p == nil {
		p = NewPool(0)
	}
	if n <= 0 {
		return nil
	}
	p.stats.inFlight.Add(1)
	defer p.stats.inFlight.Add(-1)
	errs := make([]error, n)
	var minFailed atomic.Int64
	minFailed.Store(int64(n)) // sentinel: nothing failed yet
	run := func(i int) {
		// minFailed only ever decreases, so a skipped index is always
		// above the final minimum: the first-by-index failure is
		// guaranteed to have actually run.
		if int64(i) > minFailed.Load() {
			return
		}
		p.stats.jobs.Add(1)
		p.meter.add()
		p.stats.notePeak()
		if err := fn(i); err != nil {
			errs[i] = err
			for {
				cur := minFailed.Load()
				if int64(i) >= cur || minFailed.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
		}
	}

	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)

	var (
		helpers   sync.WaitGroup
		recruiter sync.WaitGroup
		spawned   atomic.Int64
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if p.workers > 1 && n > 1 {
		// Recruiter: converts freed tokens into helpers while indices
		// remain. It never gates the caller — with no token ever free,
		// the caller alone drains idx, which is the serial path.
		recruiter.Add(1)
		go func() {
			defer recruiter.Done()
			for spawned.Load() < int64(n-1) && len(idx) > 0 {
				if p.Acquire(ctx) != nil {
					return
				}
				if ctx.Err() != nil || len(idx) == 0 {
					p.Release() // token acquired after the work was gone
					return
				}
				spawned.Add(1)
				helpers.Add(1)
				p.stats.recruits.Add(1)
				// A recruit while another batch shares the pool is a
				// shared-capacity grant a static per-level budget could
				// not have made; see PoolStats.Handoffs for semantics.
				if p.stats.inFlight.Load() > 1 {
					p.stats.handoffs.Add(1)
				}
				go func() {
					defer helpers.Done()
					defer p.Release()
					p.stats.netActive.Add(1)
					defer p.stats.netActive.Add(-1)
					p.stats.notePeak()
					for i := range idx {
						run(i)
					}
				}()
			}
		}()
	}

	for i := range idx {
		run(i)
	}
	// All indices are dispatched. Stop recruiting first — otherwise our
	// own recruiter would grab the token we are about to donate — then
	// lend our slot to whoever still has work (an inner batch of one of
	// our helpers, or a sibling sharing the pool) while we block, and
	// reclaim it before returning so the cap stays exact.
	cancel()
	recruiter.Wait()
	donated := false
	if spawned.Load() > 0 {
		donated = p.donate()
	}
	helpers.Wait()
	if donated {
		_ = p.Acquire(context.Background())
		p.stats.netActive.Add(1)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEach runs fn(i) for every i in [0, n) on a one-off pool of workers
// goroutines (<= 0 means DefaultWorkers); workers == 1 is the reference
// serial path. See Pool.ForEach for the error contract.
func ForEach(n, workers int, fn func(i int) error) error {
	return NewPool(workers).ForEach(n, fn)
}

// Job is one named, independent scenario execution within a batch.
type Job struct {
	// Name identifies the job; names must be unique within a batch
	// because they key result lookup and seed derivation.
	Name string
	// Cfg is the scenario under test. A zero Cfg.Seed is replaced by
	// SeedFor(batch seed, Name) when the job runs through a Batch.
	Cfg Config
	// Fluid selects the flow-level FluidRun instead of the request-level
	// Run.
	Fluid bool
}

// JobResult pairs a job name with its outcome. Exactly one of Res and
// Fluid is non-nil, matching the job's fidelity.
type JobResult struct {
	Name  string
	Res   *Result
	Fluid *FluidResult
}

// RunAll executes jobs on the pool and returns their results in
// submission order. If any job fails, the error of the first-submitted
// failing job is returned (wrapped with its name) and the results are
// discarded. The pool never affects the results — only how fast they
// arrive.
func (p *Pool) RunAll(jobs []Job) ([]JobResult, error) {
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if j.Name == "" {
			return nil, fmt.Errorf("scenario: batch job with empty name")
		}
		if seen[j.Name] {
			return nil, fmt.Errorf("scenario: duplicate batch job %q", j.Name)
		}
		seen[j.Name] = true
	}
	out := make([]JobResult, len(jobs))
	err := p.ForEach(len(jobs), func(i int) error {
		j := jobs[i]
		out[i].Name = j.Name
		if j.Fluid {
			r, err := FluidRun(j.Cfg)
			if err != nil {
				return fmt.Errorf("job %q: %w", j.Name, err)
			}
			out[i].Fluid = r
			return nil
		}
		r, err := Run(j.Cfg)
		if err != nil {
			return fmt.Errorf("job %q: %w", j.Name, err)
		}
		out[i].Res = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunAll executes jobs on a one-off pool of workers goroutines; see
// Pool.RunAll.
func RunAll(jobs []Job, workers int) ([]JobResult, error) {
	return NewPool(workers).RunAll(jobs)
}

// Batch accumulates named jobs and runs them through RunAll. The zero
// value is not usable; construct with NewBatch.
type Batch struct {
	seed uint64
	jobs []Job
}

// NewBatch returns an empty batch. seed is the root for derived job
// seeds: jobs added with a zero Config.Seed run with
// SeedFor(seed, job name).
func NewBatch(seed uint64) *Batch { return &Batch{seed: seed} }

// Add queues a request-level (DES) job and returns the batch for
// chaining.
func (b *Batch) Add(name string, cfg Config) *Batch {
	return b.add(name, cfg, false)
}

// AddFluid queues a flow-level job and returns the batch for chaining.
func (b *Batch) AddFluid(name string, cfg Config) *Batch {
	return b.add(name, cfg, true)
}

func (b *Batch) add(name string, cfg Config, fluid bool) *Batch {
	if cfg.Seed == 0 {
		cfg.Seed = SeedFor(b.seed, name)
	}
	b.jobs = append(b.jobs, Job{Name: name, Cfg: cfg, Fluid: fluid})
	return b
}

// Len returns the number of queued jobs.
func (b *Batch) Len() int { return len(b.jobs) }

// RunOn executes every queued job on the shared pool and returns the
// collected results. This is how nested batches stay work-conserving:
// an experiment handed the suite-wide pool runs its jobs on the same
// tokens the across-experiments loop uses, so a core freed by any level
// is claimed by any other. A nil pool means a one-off DefaultWorkers
// pool.
func (b *Batch) RunOn(p *Pool) (*BatchResults, error) {
	ordered, err := p.RunAll(b.jobs)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]int, len(ordered))
	for i, r := range ordered {
		byName[r.Name] = i
	}
	return &BatchResults{ordered: ordered, byName: byName}, nil
}

// Run executes every queued job on a one-off pool of workers goroutines
// (<= 0 means DefaultWorkers) and returns the collected results.
func (b *Batch) Run(workers int) (*BatchResults, error) {
	return b.RunOn(NewPool(workers))
}

// BatchResults holds a batch's outcomes, addressable by submission order
// or by job name.
type BatchResults struct {
	ordered []JobResult
	byName  map[string]int
}

// All returns every result in submission order.
func (r *BatchResults) All() []JobResult { return r.ordered }

// Result returns the request-level result of the named job. It panics if
// the job does not exist or was a fluid job — both are programming
// errors in the experiment declaring the batch.
func (r *BatchResults) Result(name string) *Result {
	res := r.lookup(name)
	if res.Res == nil {
		panic(fmt.Sprintf("scenario: batch job %q is fluid, not request-level", name))
	}
	return res.Res
}

// Fluid returns the flow-level result of the named job. It panics if the
// job does not exist or was a request-level job.
func (r *BatchResults) Fluid(name string) *FluidResult {
	res := r.lookup(name)
	if res.Fluid == nil {
		panic(fmt.Sprintf("scenario: batch job %q is request-level, not fluid", name))
	}
	return res.Fluid
}

func (r *BatchResults) lookup(name string) *JobResult {
	i, ok := r.byName[name]
	if !ok {
		panic(fmt.Sprintf("scenario: no batch job named %q", name))
	}
	return &r.ordered[i]
}
