package scenario

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"elearncloud/internal/sim"
)

// This file is the deterministic parallel batch runner. Experiments
// declare their scenario sets as named jobs and a worker pool fans them
// out across goroutines. Determinism contract:
//
//   - A job's randomness is fixed when the job is declared: its RNG
//     streams are rooted at its own Config.Seed, which the caller sets
//     explicitly or, when left zero, is derived from the batch seed and
//     the job name via sim.SeedFor. Nothing about scheduling — worker
//     identity, worker count, completion order — ever reaches a job's
//     RNG. (Two jobs given identical configs and the same explicit seed
//     are identical runs; distinct names decorrelate only derived
//     seeds.)
//   - Jobs share no mutable state: every Run/FluidRun builds its own
//     engine, fleets, topology and metrics.
//   - Results are collected in submission order and errors propagate
//     first-submitted-first, regardless of which worker ran a job or in
//     what order jobs finished.
//
// Together these make the batch output byte-identical to the serial path
// for any worker count.

// DefaultWorkers is the worker count used when a caller passes
// workers <= 0: one per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// SeedFor derives the RNG seed for a named job from a batch seed; see
// sim.SeedFor for the derivation rule.
func SeedFor(seed uint64, name string) uint64 { return sim.SeedFor(seed, name) }

// SplitBudget divides a total worker budget between an outer pool over n
// tasks and the inner pool each task runs on, so nested fan-out keeps
// total concurrency near workers instead of multiplying the two levels.
// workers <= 0 means DefaultWorkers. Both returns are at least 1 and
// outer never exceeds n. inner uses ceiling division so no part of the
// budget is stranded when workers doesn't divide evenly; total
// concurrency may overshoot workers by at most outer-1.
func SplitBudget(workers, n int) (outer, inner int) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	outer = workers
	if outer > n {
		outer = n
	}
	if outer < 1 {
		outer = 1
	}
	inner = (workers + outer - 1) / outer
	return outer, inner
}

// ForEach runs fn(i) for every i in [0, n) on a pool of workers
// goroutines and returns the first error in index order (not completion
// order). With workers <= 0 it uses DefaultWorkers; with workers == 1 it
// runs inline, which is the reference serial path. After a failure at
// index i, only indices greater than i may be skipped — lower indices
// always run — so the reported error is the same one the serial path
// stops at, for every worker count. fn must confine its writes to
// per-index state (typically slot i of a results slice).
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if errs[i] = fn(i); errs[i] != nil {
				return errs[i]
			}
		}
		return nil
	}
	var (
		wg        sync.WaitGroup
		minFailed atomic.Int64
		idx       = make(chan int)
	)
	minFailed.Store(int64(n)) // sentinel: nothing failed yet
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// minFailed only ever decreases, so a skipped index is
				// always above the final minimum: the first-by-index
				// failure is guaranteed to have actually run.
				if int64(i) > minFailed.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					for {
						cur := minFailed.Load()
						if int64(i) >= cur || minFailed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Job is one named, independent scenario execution within a batch.
type Job struct {
	// Name identifies the job; names must be unique within a batch
	// because they key result lookup and seed derivation.
	Name string
	// Cfg is the scenario under test. A zero Cfg.Seed is replaced by
	// SeedFor(batch seed, Name) when the job runs through a Batch.
	Cfg Config
	// Fluid selects the flow-level FluidRun instead of the request-level
	// Run.
	Fluid bool
}

// JobResult pairs a job name with its outcome. Exactly one of Res and
// Fluid is non-nil, matching the job's fidelity.
type JobResult struct {
	Name  string
	Res   *Result
	Fluid *FluidResult
}

// RunAll executes jobs on a pool of workers goroutines and returns their
// results in submission order. If any job fails, the error of the
// first-submitted failing job is returned (wrapped with its name) and the
// results are discarded. Worker count never affects the results — only
// how fast they arrive.
func RunAll(jobs []Job, workers int) ([]JobResult, error) {
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if j.Name == "" {
			return nil, fmt.Errorf("scenario: batch job with empty name")
		}
		if seen[j.Name] {
			return nil, fmt.Errorf("scenario: duplicate batch job %q", j.Name)
		}
		seen[j.Name] = true
	}
	out := make([]JobResult, len(jobs))
	err := ForEach(len(jobs), workers, func(i int) error {
		j := jobs[i]
		out[i].Name = j.Name
		if j.Fluid {
			r, err := FluidRun(j.Cfg)
			if err != nil {
				return fmt.Errorf("job %q: %w", j.Name, err)
			}
			out[i].Fluid = r
			return nil
		}
		r, err := Run(j.Cfg)
		if err != nil {
			return fmt.Errorf("job %q: %w", j.Name, err)
		}
		out[i].Res = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Batch accumulates named jobs and runs them through RunAll. The zero
// value is not usable; construct with NewBatch.
type Batch struct {
	seed uint64
	jobs []Job
}

// NewBatch returns an empty batch. seed is the root for derived job
// seeds: jobs added with a zero Config.Seed run with
// SeedFor(seed, job name).
func NewBatch(seed uint64) *Batch { return &Batch{seed: seed} }

// Add queues a request-level (DES) job and returns the batch for
// chaining.
func (b *Batch) Add(name string, cfg Config) *Batch {
	return b.add(name, cfg, false)
}

// AddFluid queues a flow-level job and returns the batch for chaining.
func (b *Batch) AddFluid(name string, cfg Config) *Batch {
	return b.add(name, cfg, true)
}

func (b *Batch) add(name string, cfg Config, fluid bool) *Batch {
	if cfg.Seed == 0 {
		cfg.Seed = SeedFor(b.seed, name)
	}
	b.jobs = append(b.jobs, Job{Name: name, Cfg: cfg, Fluid: fluid})
	return b
}

// Len returns the number of queued jobs.
func (b *Batch) Len() int { return len(b.jobs) }

// Run executes every queued job on workers goroutines (<= 0 means
// DefaultWorkers) and returns the collected results.
func (b *Batch) Run(workers int) (*BatchResults, error) {
	ordered, err := RunAll(b.jobs, workers)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]int, len(ordered))
	for i, r := range ordered {
		byName[r.Name] = i
	}
	return &BatchResults{ordered: ordered, byName: byName}, nil
}

// BatchResults holds a batch's outcomes, addressable by submission order
// or by job name.
type BatchResults struct {
	ordered []JobResult
	byName  map[string]int
}

// All returns every result in submission order.
func (r *BatchResults) All() []JobResult { return r.ordered }

// Result returns the request-level result of the named job. It panics if
// the job does not exist or was a fluid job — both are programming
// errors in the experiment declaring the batch.
func (r *BatchResults) Result(name string) *Result {
	res := r.lookup(name)
	if res.Res == nil {
		panic(fmt.Sprintf("scenario: batch job %q is fluid, not request-level", name))
	}
	return res.Res
}

// Fluid returns the flow-level result of the named job. It panics if the
// job does not exist or was a request-level job.
func (r *BatchResults) Fluid(name string) *FluidResult {
	res := r.lookup(name)
	if res.Fluid == nil {
		panic(fmt.Sprintf("scenario: batch job %q is request-level, not fluid", name))
	}
	return res.Fluid
}

func (r *BatchResults) lookup(name string) *JobResult {
	i, ok := r.byName[name]
	if !ok {
		panic(fmt.Sprintf("scenario: no batch job named %q", name))
	}
	return &r.ordered[i]
}
