package scenario

import (
	"testing"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/network"
	"elearncloud/internal/workload"
)

// quickCfg is a small, fast scenario: 200 students for 30 minutes.
func quickCfg(kind deploy.Kind) Config {
	return Config{
		Seed:              42,
		Kind:              kind,
		Students:          200,
		ReqPerStudentHour: 40,
		Duration:          30 * time.Minute,
		Access:            network.UrbanBroadband,
	}
}

func TestRunPublicBasics(t *testing.T) {
	res, err := Run(quickCfg(deploy.Public))
	if err != nil {
		t.Fatal(err)
	}
	if res.Served == 0 {
		t.Fatal("no requests served")
	}
	if res.Latency.Count() != res.Served {
		t.Fatalf("latency samples %d != served %d", res.Latency.Count(), res.Served)
	}
	// End-to-end latency must include WAN time: p50 well above pure
	// service time (~25ms) but sane (< 5s) at this load.
	if p50 := res.Latency.P50(); p50 < 0.03 || p50 > 5 {
		t.Fatalf("p50 = %v s, implausible", p50)
	}
	if res.VMHoursPublic <= 0 {
		t.Fatal("no public VM-hours accrued")
	}
	if res.VMHoursPrivate != 0 || res.PrivateHosts != 0 {
		t.Fatal("public run touched private infrastructure")
	}
	if res.EgressGB <= 0 {
		t.Fatal("no egress recorded")
	}
	if res.Cost.Total() <= 0 {
		t.Fatal("no cost billed")
	}
	if res.Cost.Capex != 0 {
		t.Fatal("public run billed capex")
	}
	if res.Servers.Len() == 0 {
		t.Fatal("no fleet samples recorded")
	}
}

func TestRunPrivateBasics(t *testing.T) {
	cfg := quickCfg(deploy.Private)
	cfg.Access = network.CampusLAN
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served == 0 {
		t.Fatal("no requests served")
	}
	if res.VMHoursPublic != 0 {
		t.Fatal("private run used public cloud")
	}
	if res.PrivateHosts <= 0 {
		t.Fatal("no private hosts")
	}
	if res.EgressGB != 0 {
		t.Fatal("private run recorded public egress")
	}
	if res.Cost.Compute != 0 {
		t.Fatal("private run billed rented compute")
	}
	if res.Cost.Capex <= 0 || res.Cost.Staff <= 0 {
		t.Fatalf("private bill missing ownership costs: %v", res.Cost)
	}
	// Campus LAN: no failure process, so full availability and no
	// offline requests.
	if res.NetAvailability != 1 || res.Offline != 0 {
		t.Fatalf("LAN availability = %v, offline = %d", res.NetAvailability, res.Offline)
	}
	// LAN latency beats WAN latency.
	pub, err := Run(quickCfg(deploy.Public))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.P50() >= pub.Latency.P50() {
		t.Fatalf("campus LAN p50 %v >= public WAN p50 %v",
			res.Latency.P50(), pub.Latency.P50())
	}
}

func TestRunHybridSplitsTraffic(t *testing.T) {
	cfg := quickCfg(deploy.Hybrid)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served == 0 {
		t.Fatal("no requests served")
	}
	if res.VMHoursPublic <= 0 || res.VMHoursPrivate <= 0 {
		t.Fatalf("hybrid must use both sides: pub=%v priv=%v",
			res.VMHoursPublic, res.VMHoursPrivate)
	}
	if res.Cost.Integration <= 0 {
		t.Fatal("hybrid bill missing integration overhead")
	}
	// Egress exists but is smaller than an all-public run (sensitive
	// traffic stays home).
	pub, err := Run(quickCfg(deploy.Public))
	if err != nil {
		t.Fatal(err)
	}
	if res.EgressGB <= 0 || res.EgressGB >= pub.EgressGB {
		t.Fatalf("hybrid egress %v should be positive and below public %v",
			res.EgressGB, pub.EgressGB)
	}
}

func TestRunDesktopBaseline(t *testing.T) {
	res, err := Run(quickCfg(deploy.Desktop))
	if err != nil {
		t.Fatal(err)
	}
	if res.Served == 0 {
		t.Fatal("no requests served")
	}
	if res.VMHoursPublic != 0 || res.VMHoursPrivate != 0 {
		t.Fatal("desktop used datacenters")
	}
	if res.Cost.Desktop <= 0 {
		t.Fatal("desktop bill missing lab PCs")
	}
	if res.Offline != 0 || res.Rejected != 0 {
		t.Fatal("local software cannot be offline or saturated")
	}
	if res.LostWork != 0 || res.Disconnects != 0 {
		t.Fatal("desktop sessions are not network-bound")
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(quickCfg(deploy.Hybrid))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg(deploy.Hybrid))
	if err != nil {
		t.Fatal(err)
	}
	if a.Served != b.Served || a.Rejected != b.Rejected || a.Offline != b.Offline {
		t.Fatalf("outcome counts diverged: %+v vs %+v",
			[3]uint64{a.Served, a.Rejected, a.Offline},
			[3]uint64{b.Served, b.Rejected, b.Offline})
	}
	if a.Latency.Mean() != b.Latency.Mean() || a.Latency.P99() != b.Latency.P99() {
		t.Fatal("latency distributions diverged")
	}
	if a.VMHoursPublic != b.VMHoursPublic || a.EgressGB != b.EgressGB {
		t.Fatal("consumption diverged")
	}
	c := quickCfg(deploy.Hybrid)
	c.Seed = 43
	other, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if other.Served == a.Served && other.Latency.Mean() == a.Latency.Mean() {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestRunExamSpikeDegradesFixedFleet(t *testing.T) {
	// A 12x exam crowd: the reactive public fleet absorbs it; a public
	// fleet pinned to a deliberately undersized fixed fleet suffers.
	// Flat diurnal keeps the load analytic regardless of time of day.
	base := Config{
		Seed:              7,
		Kind:              deploy.Public,
		Students:          1000,
		ReqPerStudentHour: 60,
		Duration:          2 * time.Hour,
		Diurnal:           workload.FlatDiurnal(),
		Crowds: []workload.FlashCrowd{{
			Start: 30 * time.Minute, End: 90 * time.Minute, Mult: 12, ExamTraffic: true,
		}},
	}
	reactive := base
	reactive.Scaler = ScalerReactive
	r1, err := Run(reactive)
	if err != nil {
		t.Fatal(err)
	}
	fixedSmall := base
	fixedSmall.Scaler = ScalerFixed
	fixedSmall.MaxPublicServers = 2 // deliberately undersized
	r2, err := Run(fixedSmall)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PeakServers <= 2 {
		t.Fatalf("reactive fleet never scaled (peak=%d)", r1.PeakServers)
	}
	// The undersized fixed fleet must show strictly worse tail latency
	// or rejections.
	if r2.Rejected == 0 && r2.Latency.P99() <= r1.Latency.P99() {
		t.Fatalf("undersized fixed fleet showed no distress: p99 %v vs %v, rejected %d",
			r2.Latency.P99(), r1.Latency.P99(), r2.Rejected)
	}
}

func TestRunRuralOutagesLoseWork(t *testing.T) {
	cfg := quickCfg(deploy.Public)
	cfg.Duration = 12 * time.Hour
	cfg.Students = 50
	cfg.ReqPerStudentHour = 10
	// Very flaky access: failures every ~2h, 30 min repairs.
	cfg.Access = network.AccessProfile{
		Name: "awful", LatencyMean: 0.05, LatencySigma: 0.4, Mbps: 3,
		MTBF: 2 * 3600, MTTR: 1800,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disconnects == 0 {
		t.Fatal("no disconnects in 12h at 2h MTBF")
	}
	if res.LostWork <= 0 {
		t.Fatal("disconnects destroyed no work")
	}
	if res.Offline == 0 {
		t.Fatal("no offline requests during outages")
	}
	if res.NetAvailability >= 1 {
		t.Fatalf("availability = %v, want < 1", res.NetAvailability)
	}
}

func TestRunWithCDN(t *testing.T) {
	// Long enough for the edge cache to warm: a cold cache pays CDN
	// price plus origin egress and loses to raw egress, which is the
	// realistic short-run behavior but not what this test checks.
	base := quickCfg(deploy.Public)
	base.Duration = 4 * time.Hour
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withCDN := base
	withCDN.EnableCDN = true
	cdnRes, err := Run(withCDN)
	if err != nil {
		t.Fatal(err)
	}
	if cdnRes.CDNGB <= 0 {
		t.Fatal("CDN served nothing")
	}
	if cdnRes.CDNHitRatio <= 0.3 {
		t.Fatalf("CDN hit ratio = %v, implausibly low", cdnRes.CDNHitRatio)
	}
	// Raw egress shrinks: video moved to the CDN (only misses remain).
	if cdnRes.EgressGB >= plain.EgressGB {
		t.Fatalf("CDN egress %v >= plain %v", cdnRes.EgressGB, plain.EgressGB)
	}
	// And delivery gets cheaper in total.
	if cdnRes.Cost.Egress+cdnRes.Cost.CDN >= plain.Cost.Egress {
		t.Fatalf("CDN delivery $%v >= raw egress $%v",
			cdnRes.Cost.Egress+cdnRes.Cost.CDN, plain.Cost.Egress)
	}
	// Private deployments have no public side: the CDN flag is a no-op.
	priv := quickCfg(deploy.Private)
	priv.EnableCDN = true
	privRes, err := Run(priv)
	if err != nil {
		t.Fatal(err)
	}
	if privRes.CDNGB != 0 {
		t.Fatal("private run used a CDN")
	}
}

func TestRunHostFailureInjection(t *testing.T) {
	cfg := Config{
		Seed:              5,
		Kind:              deploy.Private,
		Students:          800,
		ReqPerStudentHour: 60,
		Duration:          2 * time.Hour,
		Diurnal:           workload.FlatDiurnal(),
		Crowds: []workload.FlashCrowd{{
			Start: 20 * time.Minute, End: 100 * time.Minute, Mult: 10, ExamTraffic: true,
		}},
		HostFailureAt:     40 * time.Minute,
		HostRecoveryAfter: 30 * time.Minute,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.KilledJobs <= 0 {
		t.Fatal("host failure mid-crowd killed no jobs")
	}
	if res.ErrorRate() <= 0 {
		t.Fatal("host failure produced no user-visible errors")
	}
	// The undisturbed twin must be strictly healthier.
	clean := cfg
	clean.HostFailureAt = 0
	ref, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if ref.KilledJobs != 0 {
		t.Fatal("reference run killed jobs")
	}
	if ref.ErrorRate() >= res.ErrorRate() {
		t.Fatalf("reference error rate %v >= damaged %v", ref.ErrorRate(), res.ErrorRate())
	}
	// Recovery works: after repair the fleet serves again, so the run
	// still completes a majority of requests.
	if res.Served == 0 || float64(res.Served) < 0.5*float64(ref.Served) {
		t.Fatalf("served %d vs reference %d — recovery failed", res.Served, ref.Served)
	}
}

func TestRunWithThreats(t *testing.T) {
	cfg := quickCfg(deploy.Public)
	cfg.EnableThreats = true
	cfg.Duration = 48 * time.Hour
	cfg.Students = 50
	cfg.ReqPerStudentHour = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 48h at 30 attacks/month ~ 2 attacks; breaches are rare — just
	// confirm the plumbing reports consistent numbers.
	if res.Breaches < 0 || res.SensitiveExposures < 0 {
		t.Fatal("negative threat counts")
	}
	if res.Breaches == 0 && res.SensitiveExposures > 0 {
		t.Fatal("exposures without breaches")
	}
}

func TestRunScheduledAndPredictiveScalers(t *testing.T) {
	// Exercise the two remaining scaler integrations end to end: both
	// must produce a live fleet that serves the bulk of the load.
	for _, sk := range []ScalerKind{ScalerScheduled, ScalerPredictive} {
		cfg := Config{
			Seed:              9,
			Kind:              deploy.Public,
			Students:          300,
			ReqPerStudentHour: 40,
			Duration:          2 * time.Hour,
			Scaler:            sk,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", sk, err)
		}
		if res.Served == 0 {
			t.Fatalf("%v: nothing served", sk)
		}
		if res.ErrorRate() > 0.2 {
			t.Fatalf("%v: error rate %v under steady load", sk, res.ErrorRate())
		}
		if res.PeakServers < 1 {
			t.Fatalf("%v: no servers", sk)
		}
	}
}

func TestRunStrictVsRelaxedPinning(t *testing.T) {
	base := Config{
		Seed:              13,
		Kind:              deploy.Hybrid,
		Students:          800,
		ReqPerStudentHour: 50,
		Duration:          2 * time.Hour,
		Diurnal:           workload.FlatDiurnal(),
		HybridPolicy:      deploy.HybridPolicy{SensitivePrivate: true, PrivateBaseShare: 0.25},
		Crowds: []workload.FlashCrowd{{
			Start: 30 * time.Minute, End: 90 * time.Minute, Mult: 10, ExamTraffic: true,
		}},
	}
	strict := base
	strict.StrictPinning = true
	sRes, err := Run(strict)
	if err != nil {
		t.Fatal(err)
	}
	relaxed := base
	relaxed.StrictPinning = false
	rRes, err := Run(relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if sRes.PolicyViolations != 0 {
		t.Fatalf("strict pinning burst %d sensitive requests", sRes.PolicyViolations)
	}
	if rRes.PolicyViolations == 0 {
		t.Fatal("relaxed pinning never burst under an undersized private share")
	}
	// Relaxed trades confidentiality for availability: strictly fewer
	// user-visible errors.
	if rRes.ErrorRate() >= sRes.ErrorRate() {
		t.Fatalf("relaxed errors %v >= strict %v", rRes.ErrorRate(), sRes.ErrorRate())
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	bad := quickCfg(deploy.Public)
	bad.ReqPerStudentHour = -5
	if _, err := Run(bad); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestScalerKindString(t *testing.T) {
	names := map[ScalerKind]string{
		ScalerFixed: "fixed", ScalerReactive: "reactive",
		ScalerScheduled: "scheduled", ScalerPredictive: "predictive",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if ScalerKind(9).String() != "ScalerKind(9)" {
		t.Error("unknown scaler string wrong")
	}
}

func TestErrorRate(t *testing.T) {
	r := &Result{Served: 90, Rejected: 5, Offline: 5}
	if got := r.ErrorRate(); got != 0.1 {
		t.Fatalf("ErrorRate = %v", got)
	}
	if (&Result{}).ErrorRate() != 0 {
		t.Fatal("empty ErrorRate != 0")
	}
}
