package scenario

import (
	"math"
	"time"

	"elearncloud/internal/cdn"
	"elearncloud/internal/cost"
	"elearncloud/internal/deploy"
	"elearncloud/internal/lms"
	"elearncloud/internal/metrics"
	"elearncloud/internal/workload"
)

// fluidStep is the integration step for FluidRun.
const fluidStep = 5 * time.Minute

// FluidResult is the flow-level approximation's output: capacity, cost
// and utilization over long horizons, without per-request latency.
type FluidResult struct {
	// Kind echoes the deployment model.
	Kind deploy.Kind
	// Duration is the simulated horizon.
	Duration time.Duration

	// VMHoursPublic integrates elastic fleet size over time.
	VMHoursPublic float64
	// VMHoursPrivate integrates the fixed private fleet (always on).
	VMHoursPrivate float64
	// PrivateHosts is the owned hardware count.
	PrivateHosts int
	// PeakServers is the largest instantaneous fleet.
	PeakServers int
	// MeanPrivateUtil is the average fraction of the private fleet doing
	// useful work — §IV.B's underutilization argument made measurable.
	MeanPrivateUtil float64
	// Rate and Servers are downsampled series for figures.
	Rate    *metrics.TimeSeries
	Servers *metrics.TimeSeries
	// ServerRankHours is the fleet's utilization duration curve:
	// element k holds how many hours the (k+1)-th public server was
	// running over the horizon. It feeds the reserved-instance
	// purchase-mix optimization (Table 8).
	ServerRankHours []float64
	// EgressGB estimates data served out of the public cloud.
	EgressGB float64
	// CDNGB estimates edge-delivered data (zero when the CDN is off).
	CDNGB float64
	// CDNHitRatio is the analytic edge hit ratio used.
	CDNHitRatio float64
	// Cost is the itemized bill.
	Cost cost.Report
}

// CostPerStudentMonth normalizes to USD/student/month.
func (r *FluidResult) CostPerStudentMonth(students int) float64 {
	months := r.Duration.Hours() / 730
	return cost.PerStudentMonth(r.Cost, students, months)
}

// FluidRun integrates the arrival-rate curve into capacity, utilization
// and cost. Use it for semester- and year-scale questions (Figures 3-4);
// use Run when latency distributions matter.
func FluidRun(cfg Config) (*FluidResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	cat, teaching := mixFor()
	gen, err := workload.NewGenerator(workload.Config{
		Students:          cfg.Students,
		Growth:            cfg.Growth,
		ReqPerStudentHour: cfg.ReqPerStudentHour,
		Diurnal:           cfg.Diurnal,
		Calendar:          cfg.Calendar,
		Crowds:            cfg.Crowds,
		Storms:            cfg.Storms,
		Joins:             cfg.Joins,
	})
	if err != nil {
		return nil, err
	}
	meanSvc := teaching.MeanService(cat)
	meanPayload := teaching.MeanPayload(cat)
	peakServers := deploy.ServersForPeak(gen.MaxRate(), meanSvc, cfg.TargetUtil)

	privServers := 0
	pubShare := 1.0 // fraction of served bytes leaving the public cloud
	switch cfg.Kind {
	case deploy.Private:
		privServers = peakServers
		pubShare = 0
	case deploy.Hybrid:
		privServers = int(math.Ceil(float64(peakServers) * cfg.HybridPolicy.PrivateBaseShare))
		if privServers < 1 {
			privServers = 1
		}
		// Sensitive traffic stays in-house; the rest serves publicly.
		pubShare = 1 - teaching.SensitiveShare(cat)
	case deploy.Desktop:
		pubShare = 0
	}

	res := &FluidResult{
		Kind:     cfg.Kind,
		Duration: cfg.Duration,
		Rate:     metrics.NewTimeSeries("rate-rps"),
		Servers:  metrics.NewTimeSeries("servers"),
	}

	// CDN split: video bytes ride the edge, the rest stays raw egress.
	videoByteShare := 0.0
	cdnHit := 0.0
	if cfg.EnableCDN {
		videoByteShare = teaching.PayloadShare(cat, lms.VideoChunk)
		cdnCfg := cdn.DefaultConfig(cfg.Courses)
		cdnHit = cdn.AnalyticHitRatio(cdnCfg.CatalogObjects, cdnCfg.CacheObjects, cdnCfg.ZipfS)
	}

	var (
		egressBytes  float64
		cdnBytes     float64
		utilAccum    float64
		steps        int
		downsampleTo = cfg.Duration / 500 // keep figure series plottable
	)
	if downsampleTo < fluidStep {
		downsampleTo = fluidStep
	}
	stepHours := fluidStep.Hours()
	for t := time.Duration(0); t < cfg.Duration; t += fluidStep {
		rate := gen.Rate(t)
		needed := int(math.Ceil(rate * meanSvc / cfg.TargetUtil))
		if needed < 1 {
			needed = 1
		}

		pub, priv := 0, 0
		switch cfg.Kind {
		case deploy.Public:
			pub = needed
		case deploy.Private:
			priv = privServers // always on
		case deploy.Hybrid:
			priv = privServers
			if needed > privServers {
				pub = needed - privServers
			}
		case deploy.Desktop:
			// no servers at all
		}
		res.VMHoursPublic += float64(pub) * stepHours
		res.VMHoursPrivate += float64(priv) * stepHours
		for k := 0; k < pub; k++ {
			if k >= len(res.ServerRankHours) {
				res.ServerRankHours = append(res.ServerRankHours, 0)
			}
			res.ServerRankHours[k] += stepHours
		}
		if total := pub + priv; total > res.PeakServers {
			res.PeakServers = total
		}
		if privServers > 0 {
			busyPriv := math.Min(float64(needed), float64(privServers))
			utilAccum += busyPriv / float64(privServers)
			steps++
		}
		publicBytes := rate * fluidStep.Seconds() * meanPayload * pubShare
		if cfg.EnableCDN {
			video := publicBytes * videoByteShare
			cdnBytes += video
			egressBytes += (publicBytes - video) + video*(1-cdnHit)
		} else {
			egressBytes += publicBytes
		}

		res.Rate.Add(t, rate)
		res.Servers.Add(t, float64(pub+priv))
	}
	if steps > 0 {
		res.MeanPrivateUtil = utilAccum / float64(steps)
	}
	res.EgressGB = egressBytes / 1e9
	res.CDNGB = cdnBytes / 1e9
	res.CDNHitRatio = cdnHit
	res.Rate = res.Rate.Downsample(downsampleTo)
	res.Servers = res.Servers.Downsample(downsampleTo)

	// Private hosts sized exactly as deploy.Build would size them.
	if privServers > 0 {
		hostCPU := 16.0
		perHost := int(hostCPU / 4) // m.large-shaped VMs on 16-core hosts
		if perHost < 1 {
			perHost = 1
		}
		res.PrivateHosts = (privServers + perHost - 1) / perHost
	}

	months := cfg.Duration.Hours() / 730
	u := cost.Usage{Months: months}
	assets := lms.NewAssetStore(cfg.Courses, cfg.Students)
	switch cfg.Kind {
	case deploy.Public:
		assets.PlaceAll(lms.OnPublic)
		u.VMHoursOnDemand = res.VMHoursPublic
		u.EgressGB = res.EgressGB
		u.CDNGB = res.CDNGB
		u.StorageGBMonths = assets.BytesAt(lms.OnPublic) / 1e9 * months
	case deploy.Private:
		u.PrivateHosts = res.PrivateHosts
	case deploy.Hybrid:
		assets.PlaceSensitive(lms.OnPrivate, lms.OnPublic)
		u.VMHoursOnDemand = res.VMHoursPublic
		u.EgressGB = res.EgressGB
		u.CDNGB = res.CDNGB
		u.StorageGBMonths = assets.BytesAt(lms.OnPublic) / 1e9 * months
		u.PrivateHosts = res.PrivateHosts
		u.HybridMonths = months
	case deploy.Desktop:
		u.DesktopStudents = cfg.Students
	}
	res.Cost, err = cost.Bill(u, cost.DefaultRates())
	if err != nil {
		return nil, err
	}
	return res, nil
}
