package scenario

import (
	"math"
	"time"

	"elearncloud/internal/cdn"
	"elearncloud/internal/cost"
	"elearncloud/internal/deploy"
	"elearncloud/internal/lms"
	"elearncloud/internal/metrics"
	"elearncloud/internal/workload"
)

// fluidStep is the integration step for FluidRun — and the grid the
// hybrid fidelity planner aligns its DES windows to, so a hybrid run's
// fluid segments step through exactly the instants a full FluidRun
// would, in the same order, accumulating the same floats.
const fluidStep = 5 * time.Minute

// FluidResult is the flow-level approximation's output: capacity, cost
// and utilization over long horizons, without per-request latency.
type FluidResult struct {
	// Kind echoes the deployment model.
	Kind deploy.Kind
	// Duration is the simulated horizon.
	Duration time.Duration

	// VMHoursPublic integrates elastic fleet size over time.
	VMHoursPublic float64
	// VMHoursPrivate integrates the fixed private fleet (always on).
	VMHoursPrivate float64
	// PrivateHosts is the owned hardware count.
	PrivateHosts int
	// PeakServers is the largest instantaneous fleet.
	PeakServers int
	// MeanPrivateUtil is the average fraction of the private fleet doing
	// useful work — §IV.B's underutilization argument made measurable.
	MeanPrivateUtil float64
	// OfferedRequests is the integrated arrival mass ∫rate·dt over the
	// horizon — the requests the flow model assumes are all served. The
	// hybrid stitcher uses the per-segment version of this integral as
	// the fluid side's served count.
	OfferedRequests float64
	// Rate and Servers are downsampled series for figures.
	Rate    *metrics.TimeSeries
	Servers *metrics.TimeSeries
	// ServerRankHours is the fleet's utilization duration curve:
	// element k holds how many hours the (k+1)-th public server was
	// running over the horizon. It feeds the reserved-instance
	// purchase-mix optimization (Table 8).
	ServerRankHours []float64
	// EgressGB estimates data served out of the public cloud.
	EgressGB float64
	// CDNGB estimates edge-delivered data (zero when the CDN is off).
	CDNGB float64
	// CDNHitRatio is the analytic edge hit ratio used.
	CDNHitRatio float64
	// Cost is the itemized bill.
	Cost cost.Report
}

// CostPerStudentMonth normalizes to USD/student/month.
func (r *FluidResult) CostPerStudentMonth(students int) float64 {
	months := r.Duration.Hours() / 730
	return cost.PerStudentMonth(r.Cost, students, months)
}

// fluidModel is the flow-level integrator's fixed state: everything
// derived from the config once, so integration can be applied to the
// whole horizon (FluidRun) or resumed segment by segment around DES
// windows (HybridRun) with identical arithmetic.
type fluidModel struct {
	cfg         Config // defaulted
	gen         *workload.Generator
	meanSvc     float64
	meanPayload float64
	// privServers is the fixed private fleet; pubShare is the fraction
	// of served bytes leaving the public cloud.
	privServers int
	pubShare    float64
	// videoByteShare and cdnHit parameterize the analytic CDN split.
	videoByteShare float64
	cdnHit         float64
}

// newFluidModel derives the integrator's fixed state from a defaulted
// config.
func newFluidModel(cfg Config) (*fluidModel, error) {
	cat, teaching := mixFor()
	gen, err := genFor(cfg)
	if err != nil {
		return nil, err
	}
	m := &fluidModel{
		cfg:         cfg,
		gen:         gen,
		meanSvc:     teaching.MeanService(cat),
		meanPayload: teaching.MeanPayload(cat),
		pubShare:    1.0,
	}
	peakServers := deploy.ServersForPeak(gen.MaxRate(), m.meanSvc, cfg.TargetUtil)
	switch cfg.Kind {
	case deploy.Private:
		m.privServers = peakServers
		m.pubShare = 0
	case deploy.Hybrid:
		m.privServers = int(math.Ceil(float64(peakServers) * cfg.HybridPolicy.PrivateBaseShare))
		if m.privServers < 1 {
			m.privServers = 1
		}
		// Sensitive traffic stays in-house; the rest serves publicly.
		m.pubShare = 1 - teaching.SensitiveShare(cat)
	case deploy.Desktop:
		m.pubShare = 0
	}
	if cfg.EnableCDN {
		m.videoByteShare = teaching.PayloadShare(cat, lms.VideoChunk)
		cdnCfg := cdn.DefaultConfig(cfg.Courses)
		m.cdnHit = cdn.AnalyticHitRatio(cdnCfg.CatalogObjects, cdnCfg.CacheObjects, cdnCfg.ZipfS)
	}
	return m, nil
}

// neededAt returns the total servers the flow model wants at t.
func (m *fluidModel) neededAt(t time.Duration) int {
	needed := int(math.Ceil(m.gen.Rate(t) * m.meanSvc / m.cfg.TargetUtil))
	if needed < 1 {
		needed = 1
	}
	return needed
}

// split divides a server need between the public and private sides by
// deployment kind.
func (m *fluidModel) split(needed int) (pub, priv int) {
	switch m.cfg.Kind {
	case deploy.Public:
		pub = needed
	case deploy.Private:
		priv = m.privServers // always on
	case deploy.Hybrid:
		priv = m.privServers
		if needed > m.privServers {
			pub = needed - m.privServers
		}
	case deploy.Desktop:
		// no servers at all
	}
	return pub, priv
}

// fluidAccum carries the integration state across segments: the result
// being built plus the scalar accumulators that only finalize once the
// whole horizon is covered.
type fluidAccum struct {
	res         *FluidResult
	egressBytes float64
	cdnBytes    float64
	utilAccum   float64
	steps       int
	// hours is the total span integrated so far (the fluid side of a
	// hybrid run's fidelity split).
	hours float64
}

// newAccum starts an empty accumulator for one integration pass.
func (m *fluidModel) newAccum() *fluidAccum {
	return &fluidAccum{res: &FluidResult{
		Kind:     m.cfg.Kind,
		Duration: m.cfg.Duration,
		Rate:     metrics.NewTimeSeries("rate-rps"),
		Servers:  metrics.NewTimeSeries("servers"),
	}}
}

// integrate steps the flow model over [from, to), accumulating into
// acc. Calling it once over the whole horizon, or repeatedly over the
// horizon's quiet segments in time order with fluidStep-aligned
// boundaries, visits the same instants with the same accumulation
// order — the float-determinism property the empty-plan hybrid test
// pins against FluidRun.
func (m *fluidModel) integrate(acc *fluidAccum, from, to time.Duration) {
	res := acc.res
	stepHours := fluidStep.Hours()
	for t := from; t < to; t += fluidStep {
		rate := m.gen.Rate(t)
		needed := m.neededAt(t)

		pub, priv := m.split(needed)
		res.VMHoursPublic += float64(pub) * stepHours
		res.VMHoursPrivate += float64(priv) * stepHours
		for k := 0; k < pub; k++ {
			if k >= len(res.ServerRankHours) {
				res.ServerRankHours = append(res.ServerRankHours, 0)
			}
			res.ServerRankHours[k] += stepHours
		}
		if total := pub + priv; total > res.PeakServers {
			res.PeakServers = total
		}
		if m.privServers > 0 {
			busyPriv := math.Min(float64(needed), float64(m.privServers))
			acc.utilAccum += busyPriv / float64(m.privServers)
			acc.steps++
		}
		res.OfferedRequests += rate * fluidStep.Seconds()
		publicBytes := rate * fluidStep.Seconds() * m.meanPayload * m.pubShare
		if m.cfg.EnableCDN {
			video := publicBytes * m.videoByteShare
			acc.cdnBytes += video
			acc.egressBytes += (publicBytes - video) + video*(1-m.cdnHit)
		} else {
			acc.egressBytes += publicBytes
		}

		res.Rate.Add(t, rate)
		res.Servers.Add(t, float64(pub+priv))
		acc.hours += stepHours
	}
}

// privateHosts sizes the owned hardware exactly as deploy.Build would.
func (m *fluidModel) privateHosts() int {
	if m.privServers <= 0 {
		return 0
	}
	hostCPU := 16.0
	perHost := int(hostCPU / 4) // m.large-shaped VMs on 16-core hosts
	if perHost < 1 {
		perHost = 1
	}
	return (m.privServers + perHost - 1) / perHost
}

// fluidAssets builds the asset store with the placement the flow model
// bills against (shared by FluidRun and the hybrid stitcher).
func fluidAssets(cfg Config) *lms.AssetStore {
	assets := lms.NewAssetStore(cfg.Courses, cfg.Students)
	switch cfg.Kind {
	case deploy.Public:
		assets.PlaceAll(lms.OnPublic)
	case deploy.Hybrid:
		assets.PlaceSensitive(lms.OnPrivate, lms.OnPublic)
	}
	return assets
}

// finish seals an accumulator into the final FluidResult: derived
// scalars, downsampled series, host sizing and the bill.
func (m *fluidModel) finish(acc *fluidAccum) (*FluidResult, error) {
	cfg := m.cfg
	res := acc.res
	if acc.steps > 0 {
		res.MeanPrivateUtil = acc.utilAccum / float64(acc.steps)
	}
	res.EgressGB = acc.egressBytes / 1e9
	res.CDNGB = acc.cdnBytes / 1e9
	res.CDNHitRatio = m.cdnHit
	downsampleTo := cfg.Duration / 500 // keep figure series plottable
	if downsampleTo < fluidStep {
		downsampleTo = fluidStep
	}
	res.Rate = res.Rate.Downsample(downsampleTo)
	res.Servers = res.Servers.Downsample(downsampleTo)

	// Private hosts sized exactly as deploy.Build would size them.
	res.PrivateHosts = m.privateHosts()

	months := cfg.Duration.Hours() / 730
	u := cost.Usage{Months: months}
	assets := fluidAssets(cfg)
	switch cfg.Kind {
	case deploy.Public:
		u.VMHoursOnDemand = res.VMHoursPublic
		u.EgressGB = res.EgressGB
		u.CDNGB = res.CDNGB
		u.StorageGBMonths = assets.BytesAt(lms.OnPublic) / 1e9 * months
	case deploy.Private:
		u.PrivateHosts = res.PrivateHosts
	case deploy.Hybrid:
		u.VMHoursOnDemand = res.VMHoursPublic
		u.EgressGB = res.EgressGB
		u.CDNGB = res.CDNGB
		u.StorageGBMonths = assets.BytesAt(lms.OnPublic) / 1e9 * months
		u.PrivateHosts = res.PrivateHosts
		u.HybridMonths = months
	case deploy.Desktop:
		u.DesktopStudents = cfg.Students
	}
	var err error
	res.Cost, err = cost.Bill(u, cost.DefaultRates())
	if err != nil {
		return nil, err
	}
	return res, nil
}

// FluidRun integrates the arrival-rate curve into capacity, utilization
// and cost. Use it for semester- and year-scale questions (Figures 3-4);
// use Run when latency distributions matter, and HybridRun when only
// the bursty windows do.
func FluidRun(cfg Config) (*FluidResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	m, err := newFluidModel(cfg)
	if err != nil {
		return nil, err
	}
	acc := m.newAccum()
	m.integrate(acc, 0, cfg.Duration)
	return m.finish(acc)
}
