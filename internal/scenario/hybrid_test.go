package scenario

import (
	"fmt"
	"math"
	"testing"
	"time"

	"elearncloud/internal/deploy"
	"elearncloud/internal/workload"
)

// stormyCfg is the shared fixture for the stitching tests: a public
// deployment with one live-session join storm and one deadline storm,
// so the planner emits two disjoint DES windows with quiet fluid
// stretches before, between and after them.
func stormyCfg(seed uint64) Config {
	return Config{
		Seed:              seed,
		Kind:              deploy.Public,
		Students:          1500,
		ReqPerStudentHour: 40,
		Duration:          8 * time.Hour,
		Diurnal:           workload.FlatDiurnal(),
		Joins: []workload.JoinStorm{
			{Start: 2 * time.Hour, Window: 30 * time.Minute, PeakMult: 3},
		},
		Storms: []workload.DeadlineStorm{
			{Deadline: 6 * time.Hour, Ramp: 90 * time.Minute, PeakMult: 4},
		},
	}
}

func TestHybridPlanIsPureAndAligned(t *testing.T) {
	cfg := stormyCfg(1)
	a, err := PlanFidelity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanFidelity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Windows) == 0 {
		t.Fatal("stormy config planned no DES windows")
	}
	if len(a.Windows) != len(b.Windows) {
		t.Fatalf("plan not deterministic: %d vs %d windows", len(a.Windows), len(b.Windows))
	}
	prevEnd := time.Duration(-1)
	for i, w := range a.Windows {
		if b.Windows[i] != w {
			t.Fatalf("plan not deterministic: window %d %+v vs %+v", i, w, b.Windows[i])
		}
		if w.Start%fluidStep != 0 || w.End%fluidStep != 0 {
			t.Errorf("window %d [%v,%v) not aligned to the %v fluid grid", i, w.Start, w.End, fluidStep)
		}
		if w.Start < 0 || w.End > cfg.Duration || w.End <= w.Start {
			t.Errorf("window %d [%v,%v) outside horizon or empty", i, w.Start, w.End)
		}
		if w.Start <= prevEnd {
			t.Errorf("window %d starts at %v, before previous end %v", i, w.Start, prevEnd)
		}
		prevEnd = w.End
	}
	if got := a.DESHours() + a.FluidHours(); math.Abs(got-cfg.Duration.Hours()) > 1e-9 {
		t.Errorf("plan hours don't partition the horizon: %v vs %v", got, cfg.Duration.Hours())
	}
}

// Every DES window must conserve requests across its seams: nothing is
// created or destroyed at a boundary, so arrivals inside the window
// are exactly the requests that completed, were rejected, were lost
// offline, or were carried out still in flight. The identity is a
// genuine cross-check because CarriedOut comes from an independent
// in-flight counter (admissions minus completions), not from
// rearranging the same tallies.
func TestHybridWindowSeamConservation(t *testing.T) {
	cfg := stormyCfg(3)
	if err := cfg.defaults(); err != nil {
		t.Fatal(err)
	}
	m, err := newFluidModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3} {
		for _, w := range m.desWindows() {
			w := w
			sub := cfg
			sub.Shards = shards
			sub.Seed = SeedFor(cfg.Seed, fmt.Sprintf("hybrid/%d", w.index))
			r, err := shardedRun(sub, nil, &w)
			if err != nil {
				t.Fatal(err)
			}
			if r.Arrivals == 0 {
				t.Fatalf("shards=%d window %d: no arrivals", shards, w.index)
			}
			got := r.Served + r.Rejected + r.Offline + uint64(r.CarriedOut)
			if got != r.Arrivals {
				t.Errorf("shards=%d window %d: conservation broken: %d arrivals vs %d served + %d rejected + %d offline + %d carried-out = %d",
					shards, w.index, r.Arrivals, r.Served, r.Rejected, r.Offline, r.CarriedOut, got)
			}
			if r.CarriedIn == 0 && w.backlog > 0 {
				t.Errorf("shards=%d window %d: backlog of %d planned but no CarriedIn recorded", shards, w.index, w.backlog)
			}
		}
	}
}

// The stitched whole must equal the sum of its parts: the merged
// VM-hours are exactly the fluid segments' integral plus each window's
// metered consumption, and the fidelity split partitions the horizon.
func TestHybridStitchIsAdditive(t *testing.T) {
	cfg := stormyCfg(5)
	res, err := HybridRun(cfg, NewPool(2))
	if err != nil {
		t.Fatal(err)
	}

	if err := cfg.defaults(); err != nil {
		t.Fatal(err)
	}
	m, err := newFluidModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	des := m.desWindows()

	// Recompute the fluid side alone over the quiet segments.
	acc := m.newAccum()
	cursor := time.Duration(0)
	for _, w := range des {
		m.integrate(acc, cursor, w.start)
		cursor = w.end
	}
	m.integrate(acc, cursor, cfg.Duration)

	// Re-run each window alone.
	var winPub, winPriv, winEgress float64
	var desHours float64
	for _, w := range des {
		w := w
		sub := cfg
		sub.Seed = SeedFor(cfg.Seed, fmt.Sprintf("hybrid/%d", w.index))
		r, err := shardedRun(sub, nil, &w)
		if err != nil {
			t.Fatal(err)
		}
		winPub += r.VMHoursPublic
		winPriv += r.VMHoursPrivate
		winEgress += r.EgressGB
		desHours += (w.end - w.start).Hours()
	}

	if got, want := res.VMHoursPublic, acc.res.VMHoursPublic+winPub; math.Abs(got-want) > 1e-6 {
		t.Errorf("public VM-hours not additive across seams: stitched %.6f vs fluid %.6f + windows %.6f", got, acc.res.VMHoursPublic, winPub)
	}
	if got, want := res.VMHoursPrivate, acc.res.VMHoursPrivate+winPriv; math.Abs(got-want) > 1e-6 {
		t.Errorf("private VM-hours not additive: stitched %.6f vs %.6f", got, want)
	}
	if got, want := res.EgressGB, acc.egressBytes/1e9+winEgress; math.Abs(got-want) > 1e-9 {
		t.Errorf("egress not additive: stitched %.6f vs %.6f", got, want)
	}
	if math.Abs(res.FluidSimHours+res.DESSimHours-cfg.Duration.Hours()) > 1e-9 {
		t.Errorf("fidelity split %.4f + %.4f doesn't partition the %.4f h horizon",
			res.FluidSimHours, res.DESSimHours, cfg.Duration.Hours())
	}
	if math.Abs(res.DESSimHours-desHours) > 1e-9 {
		t.Errorf("DES hours %.4f != planned window hours %.4f", res.DESSimHours, desHours)
	}
}

// A config with no storms, joins or crowds plans zero DES windows, and
// the hybrid path must then equal FluidRun exactly — same floats, same
// bill — because the fluid segments step through the same instants in
// the same order.
func TestHybridEmptyPlanMatchesFluidExactly(t *testing.T) {
	for _, kind := range []deploy.Kind{deploy.Public, deploy.Hybrid, deploy.Private} {
		cfg := Config{
			Seed:              9,
			Kind:              kind,
			Students:          1200,
			ReqPerStudentHour: 40,
			Duration:          12 * time.Hour,
			EnableCDN:         kind != deploy.Private,
		}
		plan, err := PlanFidelity(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Windows) != 0 {
			t.Fatalf("%v: quiet config planned %d DES windows", kind, len(plan.Windows))
		}
		h, err := HybridRun(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		f, err := FluidRun(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if h.VMHoursPublic != f.VMHoursPublic || h.VMHoursPrivate != f.VMHoursPrivate {
			t.Errorf("%v: VM-hours diverged: hybrid %.6f/%.6f vs fluid %.6f/%.6f",
				kind, h.VMHoursPublic, h.VMHoursPrivate, f.VMHoursPublic, f.VMHoursPrivate)
		}
		if h.EgressGB != f.EgressGB || h.CDNGB != f.CDNGB {
			t.Errorf("%v: bytes diverged: hybrid %.6f/%.6f vs fluid %.6f/%.6f",
				kind, h.EgressGB, h.CDNGB, f.EgressGB, f.CDNGB)
		}
		if h.PeakServers != f.PeakServers || h.PrivateHosts != f.PrivateHosts {
			t.Errorf("%v: sizing diverged: hybrid %d/%d vs fluid %d/%d",
				kind, h.PeakServers, h.PrivateHosts, f.PeakServers, f.PrivateHosts)
		}
		if h.Cost != f.Cost {
			t.Errorf("%v: bill diverged: hybrid %+v vs fluid %+v", kind, h.Cost, f.Cost)
		}
		if want := uint64(math.Round(f.OfferedRequests)); h.Served != want {
			t.Errorf("%v: served %d != rounded fluid offered mass %d", kind, h.Served, want)
		}
		if h.Events != 0 || h.DESSimHours != 0 {
			t.Errorf("%v: empty plan ran DES anyway: %d events, %.2f DES hours", kind, h.Events, h.DESSimHours)
		}
	}
}

// The degenerate plan at the other extreme — an intensity threshold of
// 1 classifies every segment as a burst, so one DES window covers the
// whole horizon — must agree with plain Run within the cross-fidelity
// band: the only seams left are the horizon's own edges, so the hybrid
// path is a request-level simulation with a warm-started fleet and a
// bootGrace arrival gap.
func TestHybridAllDESPlanTracksRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two request-level scenarios over 8h")
	}
	cfg := stormyCfg(11)
	cfg.HybridIntensity = 1 // every segment's multiplier bound is >= 1

	plan, err := PlanFidelity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Windows) != 1 || plan.Windows[0].Start != 0 || plan.Windows[0].End != cfg.Duration {
		t.Fatalf("intensity 1 should plan one horizon-wide window, got %+v", plan.Windows)
	}

	h, err := HybridRun(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.FluidSimHours != 0 {
		t.Errorf("all-DES plan still integrated %.2f fluid hours", h.FluidSimHours)
	}

	// Served mass: the window drops ~bootGrace of arrivals at the
	// opening seam and counts its carried-out tail as served, both
	// small against an 8h horizon.
	servedRatio := float64(h.Served) / float64(d.Served)
	if servedRatio < 0.97 || servedRatio > 1.03 {
		t.Errorf("served ratio %.4f outside [0.97,1.03]: hybrid %d vs run %d", servedRatio, h.Served, d.Served)
	}
	// Elastic consumption: same scaler, same horizon; the warm start
	// can only shift the opening minutes.
	vmRatio := h.VMHoursPublic / d.VMHoursPublic
	if vmRatio < 0.85 || vmRatio > 1.15 {
		t.Errorf("VM-hours ratio %.4f outside [0.85,1.15]: hybrid %.1f vs run %.1f", vmRatio, h.VMHoursPublic, d.VMHoursPublic)
	}
	egressRatio := h.EgressGB / d.EgressGB
	if egressRatio < 0.95 || egressRatio > 1.05 {
		t.Errorf("egress ratio %.4f outside [0.95,1.05]: hybrid %.2f vs run %.2f", egressRatio, h.EgressGB, d.EgressGB)
	}
}

// The stitched fleet-size series must be continuous at every fluid→DES
// seam: the window's first sample starts from the warm-started fleet,
// not from a cold bootstrap, so it stays within a small band of the
// fluid level just before the boundary.
func TestHybridWarmFleetContinuity(t *testing.T) {
	cfg := stormyCfg(13)
	res, err := HybridRun(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFidelity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Servers.Points()
	for _, w := range plan.Windows {
		if w.Start == 0 {
			continue // no fluid side before a window at the origin
		}
		var before, first float64
		var haveFirst bool
		for _, p := range pts {
			if p.At < w.Start {
				before = p.Value
			} else if !haveFirst {
				first = p.Value
				haveFirst = true
				break
			}
		}
		if !haveFirst {
			t.Fatalf("no samples inside window starting %v", w.Start)
		}
		if before <= 0 {
			t.Fatalf("no fluid level before window at %v", w.Start)
		}
		if first < 0.5*before || first > 3*before {
			t.Errorf("fleet discontinuous at %v seam: fluid %.0f servers, window opens at %.0f", w.Start, before, first)
		}
	}
}

// HybridRun's output must be a pure function of (config, seed, plan):
// identical at any pool parallelism and with sharded windows.
func TestHybridDeterminismAcrossParallel(t *testing.T) {
	cfg := stormyCfg(17)
	cfg.Shards = 2 // windows honor Config.Shards

	a, err := HybridRun(cfg, NewPool(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := HybridRun(cfg, NewPool(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Served != b.Served || a.Rejected != b.Rejected || a.Offline != b.Offline ||
		a.Arrivals != b.Arrivals || a.Events != b.Events ||
		a.CarriedIn != b.CarriedIn || a.CarriedOut != b.CarriedOut {
		t.Fatalf("counters diverged across parallelism: %+v vs %+v", a, b)
	}
	for _, pair := range [][2]float64{
		{a.VMHoursPublic, b.VMHoursPublic},
		{a.EgressGB, b.EgressGB},
		{a.CDNHitRatio, b.CDNHitRatio},
		{a.Latency.Sum(), b.Latency.Sum()},
		{a.Cost.Total(), b.Cost.Total()},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Fatalf("float diverged across parallelism: %v vs %v", pair[0], pair[1])
		}
	}
	ap, bp := a.Servers.Points(), b.Servers.Points()
	if len(ap) != len(bp) {
		t.Fatalf("server series length diverged: %d vs %d", len(ap), len(bp))
	}
	for i := range ap {
		if ap[i] != bp[i] {
			t.Fatalf("server series diverged at %d: %+v vs %+v", i, ap[i], bp[i])
		}
	}
}

// The pool telemetry must report the fidelity split of the most recent
// hybrid run.
func TestHybridTelemetrySplit(t *testing.T) {
	cfg := stormyCfg(19)
	pool := NewPool(2)
	if _, err := HybridRun(cfg, pool); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.HybridDESHours <= 0 || st.HybridFluidHours <= 0 {
		t.Fatalf("fidelity split not recorded: fluid %.2f, DES %.2f", st.HybridFluidHours, st.HybridDESHours)
	}
	if math.Abs(st.HybridFluidHours+st.HybridDESHours-cfg.Duration.Hours()) > 1e-9 {
		t.Fatalf("telemetry split %.4f + %.4f doesn't partition the horizon %.4f",
			st.HybridFluidHours, st.HybridDESHours, cfg.Duration.Hours())
	}
}
