package sim

import (
	"fmt"
	"math"
)

// Dist is a one-dimensional probability distribution from which float64
// samples are drawn using a caller-supplied RNG. Distributions themselves
// are immutable and safe to share.
type Dist interface {
	// Sample draws one value.
	Sample(r *RNG) float64
	// Mean returns the distribution's expected value (for sizing and
	// validation; may be approximate for heavy-tailed distributions).
	Mean() float64
	// String describes the distribution for logs and reports.
	String() string
}

type constDist struct{ v float64 }

// Constant returns a degenerate distribution that always yields v.
func Constant(v float64) Dist { return constDist{v} }

func (d constDist) Sample(*RNG) float64 { return d.v }
func (d constDist) Mean() float64       { return d.v }
func (d constDist) String() string      { return fmt.Sprintf("Const(%g)", d.v) }

type uniformDist struct{ lo, hi float64 }

// Uniform returns a uniform distribution on [lo, hi). It panics if hi < lo.
func Uniform(lo, hi float64) Dist {
	if hi < lo {
		panic("sim: Uniform with hi < lo")
	}
	return uniformDist{lo, hi}
}

func (d uniformDist) Sample(r *RNG) float64 { return d.lo + (d.hi-d.lo)*r.Float64() }
func (d uniformDist) Mean() float64         { return (d.lo + d.hi) / 2 }
func (d uniformDist) String() string        { return fmt.Sprintf("Uniform(%g,%g)", d.lo, d.hi) }

type expDist struct{ mean float64 }

// Exponential returns an exponential distribution with the given mean.
func Exponential(mean float64) Dist {
	if mean <= 0 {
		panic("sim: Exponential with non-positive mean")
	}
	return expDist{mean}
}

func (d expDist) Sample(r *RNG) float64 { return r.Exp(d.mean) }
func (d expDist) Mean() float64         { return d.mean }
func (d expDist) String() string        { return fmt.Sprintf("Exp(mean=%g)", d.mean) }

type lognormDist struct{ mu, sigma, mean float64 }

// LogNormal returns a log-normal distribution parameterized directly by
// its mean and the sigma of the underlying normal. This parameterization
// keeps service-demand configuration intuitive ("mean 80 ms, sigma 0.5").
func LogNormal(mean, sigma float64) Dist {
	if mean <= 0 || sigma < 0 {
		panic("sim: LogNormal with non-positive mean or negative sigma")
	}
	// mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
	mu := math.Log(mean) - sigma*sigma/2
	return lognormDist{mu: mu, sigma: sigma, mean: mean}
}

func (d lognormDist) Sample(r *RNG) float64 { return r.LogNormal(d.mu, d.sigma) }
func (d lognormDist) Mean() float64         { return d.mean }
func (d lognormDist) String() string {
	return fmt.Sprintf("LogNormal(mean=%g,sigma=%g)", d.mean, d.sigma)
}

type paretoDist struct{ alpha, xm float64 }

// Pareto returns a Pareto distribution with shape alpha and scale xm.
// For alpha <= 1 the theoretical mean diverges; Mean reports xm*10 as a
// pragmatic sizing proxy in that regime.
func Pareto(alpha, xm float64) Dist {
	if alpha <= 0 || xm <= 0 {
		panic("sim: Pareto with non-positive parameter")
	}
	return paretoDist{alpha, xm}
}

func (d paretoDist) Sample(r *RNG) float64 { return r.Pareto(d.alpha, d.xm) }

func (d paretoDist) Mean() float64 {
	if d.alpha <= 1 {
		return d.xm * 10
	}
	return d.alpha * d.xm / (d.alpha - 1)
}

func (d paretoDist) String() string { return fmt.Sprintf("Pareto(alpha=%g,xm=%g)", d.alpha, d.xm) }
