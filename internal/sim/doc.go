// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate every other elearncloud package runs on. It
// offers a virtual clock, an event queue with stable FIFO ordering among
// simultaneous events, seeded and splittable random-number streams, a small
// library of probability distributions, and a non-homogeneous Poisson
// process generator used by the workload package.
//
// Determinism contract: two Engines constructed with the same seed and fed
// the same schedule of events produce byte-identical event orderings and
// random draws. All randomness used in a simulation must flow through
// RNG streams obtained from the engine (or from an explicit seed) for this
// contract to hold.
//
// SeedFor(seed, name) is the root of the repository-wide (seed, job name)
// rule: independent simulations launched in parallel derive their seeds
// from a parent seed and a unique name, so scheduling can never leak into
// their randomness. See ARCHITECTURE.md for how the scenario batch runner
// builds on it.
package sim
