package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured as a duration since the start
// of the simulation. Using time.Duration keeps unit errors out of client
// code while remaining a plain int64 internally.
type Time = time.Duration

// Event is a scheduled callback. Fn runs when the virtual clock reaches At.
//
// Event structs are pooled: once an event has fired or been canceled, the
// engine may reuse its struct for a later ScheduleAt. A holder that keeps
// an *Event across the fire (the Every ticker, a self-rescheduling
// process) must therefore clear or reassign its pointer inside the
// callback, before control returns to the engine loop, and must never
// Cancel a pointer whose event already fired or was already canceled once
// any new event has been scheduled since — the struct may by then be a
// different live event.
type Event struct {
	// At is the virtual time at which the event fires.
	At Time
	// Fn is the callback invoked when the event fires. It must not be nil.
	Fn func()
	// Name optionally labels the event for tracing and test output.
	Name string

	seq   uint64 // insertion order, for stable FIFO among equal times
	index int    // queue position; -1 once popped or canceled
}

// Canceled reports whether the event was canceled or has already fired.
func (e *Event) Canceled() bool { return e.index < 0 }

// eventHeap orders events by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// ErrStopped is returned by Run when the simulation was halted with Stop
// before the event queue drained or the horizon was reached.
var ErrStopped = errors.New("sim: engine stopped")

// eventQueue is the engine's pending-event store. Both implementations —
// the binary heap and the bucketed timer wheel (wheel.go) — pop events in
// identical (At, seq) order, so swapping one for the other never changes
// a run's results, only its speed.
type eventQueue interface {
	push(*Event)
	// peek returns the earliest pending event without removing it, or
	// nil when the queue is empty.
	peek() *Event
	// pop removes and returns the earliest pending event (nil if empty),
	// setting its index to -1.
	pop() *Event
	// remove cancels a queued event and reports whether the caller may
	// recycle the struct immediately (the wheel keeps lazily-canceled
	// ring entries referenced until their bucket is swept).
	remove(*Event) bool
	size() int
}

// heapQueue adapts eventHeap to the eventQueue interface — the reference
// implementation the timer wheel is differentially tested against.
type heapQueue struct{ h eventHeap }

func (q *heapQueue) push(ev *Event) { heap.Push(&q.h, ev) }

func (q *heapQueue) peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *heapQueue) pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

func (q *heapQueue) remove(ev *Event) bool {
	heap.Remove(&q.h, ev.index)
	ev.index = -1
	return true
}

func (q *heapQueue) size() int { return len(q.h) }

// QueueKind selects the engine's pending-event store.
type QueueKind int

// Queue kinds. The wheel is the default: on DES-dense workloads it pops
// in near-O(1) where the heap pays O(log n) per operation (see
// BenchmarkEngineStep); the heap is kept as the reference fallback.
const (
	QueueWheel QueueKind = iota
	QueueHeap
)

// maxFreeEvents caps the engine's event free list. The list only grows
// to the peak number of concurrently pending events, but a cap keeps a
// pathological burst from pinning memory for the rest of a run.
const maxFreeEvents = 1 << 16

// Engine is a single-threaded discrete-event simulator.
//
// Engines are not safe for concurrent use; a simulation is a single logical
// thread of control in which event callbacks schedule further events.
type Engine struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	rng     *RNG
	stopped bool
	drained bool
	fired   uint64
	// free recycles fired and canceled Event structs (see the Event
	// pooling contract). Events are freed only after their callback
	// returns, so pointers retained across the fire stay valid for the
	// duration of the callback that must clear them.
	free []*Event
}

// NewEngine returns an engine whose root random stream is seeded with
// seed, using the default timer-wheel event queue.
func NewEngine(seed uint64) *Engine {
	return NewEngineWithQueue(seed, QueueWheel)
}

// NewEngineWithQueue returns an engine with an explicit event-queue
// implementation. Results are byte-identical across queue kinds; the
// choice only affects speed.
func NewEngineWithQueue(seed uint64, kind QueueKind) *Engine {
	e := &Engine{rng: NewRNG(seed)}
	switch kind {
	case QueueHeap:
		e.queue = &heapQueue{}
	default:
		e.queue = &timerWheel{recycle: e.freeEvent}
	}
	return e
}

// freeEvent returns a fired or canceled event struct to the free list.
func (e *Engine) freeEvent(ev *Event) {
	ev.Fn = nil // release the closure for GC even while pooled
	ev.Name = ""
	if len(e.free) < maxFreeEvents {
		e.free = append(e.free, ev)
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.queue.size() }

// RNG returns the engine's root random stream.
func (e *Engine) RNG() *RNG { return e.rng }

// Stream derives a named, independent random stream from the engine seed.
// The same (seed, name) pair always yields the same stream.
func (e *Engine) Stream(name string) *RNG { return e.rng.Stream(name) }

// Schedule enqueues fn to run after delay d from the current virtual time.
// A negative delay is treated as zero. The returned Event may be passed to
// Cancel.
func (e *Engine) Schedule(d Time, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now+d, name, fn)
}

// ScheduleAt enqueues fn to run at absolute virtual time at. Times in the
// past are clamped to the current time (the event fires next, after already
// queued events at the current instant).
func (e *Engine) ScheduleAt(at Time, name string, fn func()) *Event {
	if fn == nil {
		panic("sim: ScheduleAt with nil Fn")
	}
	if at < e.now {
		at = e.now
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	*ev = Event{At: at, Fn: fn, Name: name, seq: e.nextSeq}
	e.nextSeq++
	e.queue.push(ev)
	return ev
}

// Cancel removes a pending event from the queue. Canceling an event that
// already fired (or was already canceled) is a no-op — but see Event's
// pooling contract: a pointer held past its event's fire or cancel must
// not be Canceled again once any newer event has been scheduled.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	if e.queue.remove(ev) {
		e.freeEvent(ev)
	}
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event, advancing the clock.
// It reports false when the queue is empty. The event struct is recycled
// after its callback returns, so any retained pointer to it must be
// cleared or reassigned inside the callback (see Event).
func (e *Engine) Step() bool {
	ev := e.queue.pop()
	if ev == nil {
		return false
	}
	if ev.At > e.now {
		e.now = ev.At
	}
	e.fired++
	ev.Fn()
	e.freeEvent(ev)
	return true
}

// Run executes events until the queue drains, the virtual clock passes
// horizon, or Stop is called. A zero horizon means "no horizon" (run until
// the queue drains). It returns ErrStopped if halted by Stop.
//
// When Run returns nil the simulation either drained its queue or hit the
// horizon with future-dated events still pending; Drained distinguishes
// the two.
func (e *Engine) Run(horizon Time) error {
	e.stopped = false
	e.drained = false
	for {
		next := e.queue.peek()
		if next == nil {
			break
		}
		if e.stopped {
			return ErrStopped
		}
		if horizon > 0 && next.At > horizon {
			e.now = horizon
			return nil
		}
		e.Step()
	}
	e.drained = true
	if horizon > 0 && e.now < horizon {
		e.now = horizon
	}
	return nil
}

// Drained reports whether the most recent Run (or RunUntil) returned
// because the event queue emptied, as opposed to stopping at the horizon
// with future-dated events still queued or being halted by Stop. It is
// false before the first Run. Note that Pending alone cannot distinguish
// the cases: a periodic Every ticker keeps the queue non-empty forever,
// and a queue may also drain exactly at the horizon.
func (e *Engine) Drained() bool { return e.drained }

// RunUntil is shorthand for Run with an absolute horizon; it always leaves
// the clock at exactly horizon unless stopped early.
func (e *Engine) RunUntil(horizon Time) error { return e.Run(horizon) }

// Every schedules fn to run periodically, first after period, then every
// period thereafter, until the returned stop function is called or the
// simulation ends. Periods must be positive.
func (e *Engine) Every(period Time, name string, fn func()) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every with non-positive period %v", period))
	}
	stopped := false
	var tick func()
	var pending *Event
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			pending = e.Schedule(period, name, tick)
		}
	}
	pending = e.Schedule(period, name, tick)
	return func() {
		if stopped {
			return // idempotent: pending may have been recycled since
		}
		stopped = true
		e.Cancel(pending)
	}
}

// State is a portable engine snapshot for warm-starting: the minimal
// kernel state a hybrid-fidelity run must carry across a fluid⇄DES
// boundary. Domain state (fleets, queues, caches) lives above the
// kernel and is re-materialized by the scenario layer; the kernel's
// only contribution to the stitch is the virtual clock, so State is
// deliberately small and copyable.
type State struct {
	// Now is the virtual clock position the importing engine starts at.
	Now Time
}

// Export snapshots the engine's warm-start state at the current instant.
func (e *Engine) Export() State { return State{Now: e.now} }

// Import warps a fresh engine to a previously exported (or constructed)
// state, so a DES window opening mid-horizon sees the true virtual time
// — absolute-time schedules (ScheduleAt, calendar lookups) then land
// where the fluid model left off instead of being clamped to zero.
//
// Import is only valid on a pristine engine: nothing scheduled, nothing
// fired, clock at zero. Importing into an engine that already has
// history would silently reorder its (At, seq) stream, so that is an
// error rather than a best-effort warp.
func (e *Engine) Import(s State) error {
	if s.Now < 0 {
		return fmt.Errorf("sim: Import with negative clock %v", s.Now)
	}
	if e.now != 0 || e.nextSeq != 0 || e.fired != 0 || e.queue.size() != 0 {
		return errors.New("sim: Import into a non-fresh engine (events scheduled, fired, or clock moved)")
	}
	e.now = s.Now
	return nil
}

// Seconds converts a float64 second count to virtual Time.
func Seconds(s float64) Time {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		panic("sim: Seconds of NaN or Inf")
	}
	return Time(s * float64(time.Second))
}

// ToSeconds converts virtual Time to float64 seconds.
func ToSeconds(t Time) float64 { return float64(t) / float64(time.Second) }
