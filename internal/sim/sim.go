package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured as a duration since the start
// of the simulation. Using time.Duration keeps unit errors out of client
// code while remaining a plain int64 internally.
type Time = time.Duration

// Event is a scheduled callback. Fn runs when the virtual clock reaches At.
type Event struct {
	// At is the virtual time at which the event fires.
	At Time
	// Fn is the callback invoked when the event fires. It must not be nil.
	Fn func()
	// Name optionally labels the event for tracing and test output.
	Name string

	seq   uint64 // insertion order, for stable FIFO among equal times
	index int    // heap index; -1 once popped or canceled
}

// Canceled reports whether the event was canceled or has already fired.
func (e *Event) Canceled() bool { return e.index < 0 }

// eventHeap orders events by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// ErrStopped is returned by Run when the simulation was halted with Stop
// before the event queue drained or the horizon was reached.
var ErrStopped = errors.New("sim: engine stopped")

// Engine is a single-threaded discrete-event simulator.
//
// Engines are not safe for concurrent use; a simulation is a single logical
// thread of control in which event callbacks schedule further events.
type Engine struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	rng     *RNG
	stopped bool
	drained bool
	fired   uint64
}

// NewEngine returns an engine whose root random stream is seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// RNG returns the engine's root random stream.
func (e *Engine) RNG() *RNG { return e.rng }

// Stream derives a named, independent random stream from the engine seed.
// The same (seed, name) pair always yields the same stream.
func (e *Engine) Stream(name string) *RNG { return e.rng.Stream(name) }

// Schedule enqueues fn to run after delay d from the current virtual time.
// A negative delay is treated as zero. The returned Event may be passed to
// Cancel.
func (e *Engine) Schedule(d Time, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now+d, name, fn)
}

// ScheduleAt enqueues fn to run at absolute virtual time at. Times in the
// past are clamped to the current time (the event fires next, after already
// queued events at the current instant).
func (e *Engine) ScheduleAt(at Time, name string, fn func()) *Event {
	if fn == nil {
		panic("sim: ScheduleAt with nil Fn")
	}
	if at < e.now {
		at = e.now
	}
	ev := &Event{At: at, Fn: fn, Name: name, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a pending event from the queue. Canceling an event that
// already fired (or was already canceled) is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event, advancing the clock.
// It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	if ev.At > e.now {
		e.now = ev.At
	}
	e.fired++
	ev.Fn()
	return true
}

// Run executes events until the queue drains, the virtual clock passes
// horizon, or Stop is called. A zero horizon means "no horizon" (run until
// the queue drains). It returns ErrStopped if halted by Stop.
//
// When Run returns nil the simulation either drained its queue or hit the
// horizon with future-dated events still pending; Drained distinguishes
// the two.
func (e *Engine) Run(horizon Time) error {
	e.stopped = false
	e.drained = false
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue[0].At
		if horizon > 0 && next > horizon {
			e.now = horizon
			return nil
		}
		e.Step()
	}
	e.drained = true
	if horizon > 0 && e.now < horizon {
		e.now = horizon
	}
	return nil
}

// Drained reports whether the most recent Run (or RunUntil) returned
// because the event queue emptied, as opposed to stopping at the horizon
// with future-dated events still queued or being halted by Stop. It is
// false before the first Run. Note that Pending alone cannot distinguish
// the cases: a periodic Every ticker keeps the queue non-empty forever,
// and a queue may also drain exactly at the horizon.
func (e *Engine) Drained() bool { return e.drained }

// RunUntil is shorthand for Run with an absolute horizon; it always leaves
// the clock at exactly horizon unless stopped early.
func (e *Engine) RunUntil(horizon Time) error { return e.Run(horizon) }

// Every schedules fn to run periodically, first after period, then every
// period thereafter, until the returned stop function is called or the
// simulation ends. Periods must be positive.
func (e *Engine) Every(period Time, name string, fn func()) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every with non-positive period %v", period))
	}
	stopped := false
	var tick func()
	var pending *Event
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			pending = e.Schedule(period, name, tick)
		}
	}
	pending = e.Schedule(period, name, tick)
	return func() {
		stopped = true
		e.Cancel(pending)
	}
}

// Seconds converts a float64 second count to virtual Time.
func Seconds(s float64) Time {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		panic("sim: Seconds of NaN or Inf")
	}
	return Time(s * float64(time.Second))
}

// ToSeconds converts virtual Time to float64 seconds.
func ToSeconds(t Time) float64 { return float64(t) / float64(time.Second) }
