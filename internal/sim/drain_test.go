package sim

import (
	"testing"
	"time"
)

// TestDrainedDistinguishesHorizonStop is the regression test for the
// drained-vs-horizon ambiguity: a Run that stops at the horizon with
// future-dated events queued must not report Drained, while a Run that
// empties its queue must — even when the clock lands on the horizon in
// both cases.
func TestDrainedDistinguishesHorizonStop(t *testing.T) {
	eng := NewEngine(1)
	if eng.Drained() {
		t.Fatal("Drained() true before the first Run")
	}

	eng.Schedule(2*time.Hour, "future", func() {})
	if err := eng.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if eng.Drained() {
		t.Fatal("Drained() true after horizon stop with a pending event")
	}
	if eng.Pending() != 1 {
		t.Fatalf("Pending() = %d after horizon stop, want 1", eng.Pending())
	}
	if eng.Now() != time.Hour {
		t.Fatalf("Now() = %v, want horizon", eng.Now())
	}

	// Resuming with no horizon drains the leftover event.
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if !eng.Drained() {
		t.Fatal("Drained() false after the queue emptied")
	}
	if eng.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", eng.Pending())
	}
}

// TestDrainedAtExactHorizon: draining exactly at the horizon still counts
// as drained — Pending() is 0 in both that case and a pure horizon run
// past an empty tail, so only Drained() can tell callers the queue ran
// dry rather than the clock running out.
func TestDrainedAtExactHorizon(t *testing.T) {
	eng := NewEngine(1)
	eng.Schedule(time.Hour, "at-horizon", func() {})
	if err := eng.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if !eng.Drained() {
		t.Fatal("event at the horizon should fire and drain the queue")
	}
}

// TestDrainedFalseAfterStop: halting with Stop is neither draining nor a
// horizon stop.
func TestDrainedFalseAfterStop(t *testing.T) {
	eng := NewEngine(1)
	eng.Schedule(time.Minute, "a", func() { eng.Stop() })
	eng.Schedule(2*time.Minute, "b", func() {})
	if err := eng.Run(time.Hour); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if eng.Drained() {
		t.Fatal("Drained() true after Stop")
	}
}

// TestSeedForStability pins the derivation rule: same (seed, name) always
// agrees, different names or seeds decorrelate, and the derived seed
// matches across call sites so parallel batch runners reproduce the
// serial path exactly.
func TestSeedForStability(t *testing.T) {
	if SeedFor(7, "table1") != SeedFor(7, "table1") {
		t.Fatal("SeedFor not deterministic")
	}
	if SeedFor(7, "table1") == SeedFor(7, "table2") {
		t.Fatal("distinct names collide")
	}
	if SeedFor(7, "table1") == SeedFor(8, "table1") {
		t.Fatal("distinct seeds collide")
	}
	// Streams rooted at derived seeds must not track each other.
	a := NewRNG(SeedFor(1, "a"))
	b := NewRNG(SeedFor(1, "b"))
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("derived streams agree on %d/64 draws", same)
	}
}
