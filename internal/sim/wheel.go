package sim

import (
	"container/heap"
	"sort"
)

// This file is the bucketed timer wheel — the engine's default event
// queue. A DES at MOOC scale pops millions of events whose firing times
// cluster tightly around "now" (arrivals, service completions, transfer
// finishes all land within seconds); a binary heap pays O(log n) pointer
// chasing per operation over the whole pending set, while the wheel
// files near-future events into fixed-width time buckets and only sorts
// one small bucket at a time.
//
// Layout: a ring of wheelBuckets buckets, each wheelWidth of virtual
// time wide, covering a rotating window [floor, floor+wheelSpan). Events
// inside the window append unsorted to their bucket; events beyond it
// wait in an overflow heap and migrate in as the window advances. The
// bucket under the cursor is sorted by (At, seq) lazily when it becomes
// current, and drained front-first through a head index; events pushed
// into the current bucket mid-drain binary-insert into the sorted
// remainder, so intra-bucket FIFO among equal times is preserved
// exactly. Both queue implementations therefore pop in identical
// (At, seq) order — the property TestWheelMatchesHeap pins — which is
// what lets the wheel be the default without moving a single golden
// byte.
//
// Cancels are lazy for ring entries: the event is marked dead
// (index = -1) and skipped — and recycled to the engine's free list —
// when the sweep reaches it. Overflow entries cancel eagerly through
// heap.Remove. Pending() stays exact either way because the wheel keeps
// its own live count.

const (
	// wheelWidthBits sets the bucket width to 2^24 ns ≈ 16.8 ms: wide
	// enough that sparse phases cross few empty buckets, narrow enough
	// that a dense bucket at MOOC arrival rates stays a few hundred
	// events (see BenchmarkEngineStep).
	wheelWidthBits  = 24
	wheelBucketBits = 10
	wheelBuckets    = 1 << wheelBucketBits
	wheelMask       = wheelBuckets - 1
	wheelWidth      = Time(1) << wheelWidthBits
	wheelSpan       = Time(1) << (wheelWidthBits + wheelBucketBits)

	// ringIndex marks an event filed in the ring (as opposed to a heap
	// position in the overflow). It only needs to be non-negative and
	// beyond any plausible overflow size.
	ringIndex = 1 << 30
)

// eventBefore is the queue's total order: (At, seq) ascending. seq is
// unique per engine, so the order is strict and deterministic.
func eventBefore(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

type timerWheel struct {
	buckets [wheelBuckets][]*Event
	// cur is the cursor's ring slot; floor is the start of its time
	// interval; head indexes the next un-popped entry in buckets[cur]
	// (earlier entries have been popped or swept and nil'd).
	cur   int
	floor Time
	head  int
	// live counts non-canceled events filed in the ring; n counts all
	// non-canceled events (ring + overflow) and backs size().
	live     int
	n        int
	overflow eventHeap
	// recycle receives lazily-canceled ring entries when the sweep
	// reaches them, returning their structs to the engine's free list.
	recycle func(*Event)
}

func (w *timerWheel) size() int { return w.n }

func (w *timerWheel) push(ev *Event) {
	w.n++
	if ev.At >= w.floor+wheelSpan {
		heap.Push(&w.overflow, ev) // sets ev.index to its heap position
		return
	}
	// The engine clamps At to now ≥ floor, so every in-window time maps
	// to a unique slot.
	slot := int(ev.At>>wheelWidthBits) & wheelMask
	ev.index = ringIndex
	w.live++
	if slot == w.cur {
		w.insertCurrent(ev)
		return
	}
	w.buckets[slot] = append(w.buckets[slot], ev)
}

// insertCurrent files ev into the sorted remainder of the current
// bucket, preserving (At, seq) order mid-drain.
func (w *timerWheel) insertCurrent(ev *Event) {
	b := w.buckets[w.cur]
	lo, hi := w.head, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventBefore(b[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b = append(b, nil)
	copy(b[lo+1:], b[lo:])
	b[lo] = ev
	w.buckets[w.cur] = b
}

func (w *timerWheel) remove(ev *Event) bool {
	if ev.index == ringIndex {
		// Lazy: the bucket still references the struct; the sweep
		// recycles it when the cursor gets there.
		ev.index = -1
		w.live--
		w.n--
		return false
	}
	heap.Remove(&w.overflow, ev.index) // eager; sets ev.index to -1
	w.n--
	return true
}

func (w *timerWheel) peek() *Event { return w.settle() }

func (w *timerWheel) pop() *Event {
	ev := w.settle()
	if ev == nil {
		return nil
	}
	w.buckets[w.cur][w.head] = nil
	w.head++
	ev.index = -1
	w.live--
	w.n--
	return ev
}

// settle advances the cursor until the next live event is at the front
// of the current bucket (sweeping canceled leftovers along the way) and
// returns it, or nil when the queue is empty.
func (w *timerWheel) settle() *Event {
	for {
		b := w.buckets[w.cur]
		for w.head < len(b) {
			ev := b[w.head]
			if ev.index >= 0 {
				return ev
			}
			// Canceled entry: sweep it and recycle the struct.
			b[w.head] = nil
			w.head++
			w.recycle(ev)
		}
		w.buckets[w.cur] = b[:0]
		w.head = 0
		if w.n == 0 {
			return nil
		}
		if w.live > 0 {
			w.cur = (w.cur + 1) & wheelMask
			w.floor += wheelWidth
		} else {
			// Ring empty: jump the window straight to the overflow top
			// instead of crawling bucket by bucket through a quiet gap.
			top := w.overflow[0]
			w.floor = top.At >> wheelWidthBits << wheelWidthBits
			w.cur = int(top.At>>wheelWidthBits) & wheelMask
		}
		w.migrate()
		w.sortCurrent()
	}
}

// migrate moves overflow events that now fall inside the window into
// their ring buckets.
func (w *timerWheel) migrate() {
	limit := w.floor + wheelSpan
	for len(w.overflow) > 0 && w.overflow[0].At < limit {
		ev := heap.Pop(&w.overflow).(*Event)
		ev.index = ringIndex
		slot := int(ev.At>>wheelWidthBits) & wheelMask
		w.buckets[slot] = append(w.buckets[slot], ev)
		w.live++
	}
}

// sortCurrent orders the freshly-current bucket by (At, seq). Canceled
// leftovers from earlier rotations sort wherever their stale times put
// them and are swept on contact; live entries come out in exact queue
// order.
func (w *timerWheel) sortCurrent() {
	b := w.buckets[w.cur]
	if len(b) > 1 {
		sort.Slice(b, func(i, j int) bool { return eventBefore(b[i], b[j]) })
	}
}
