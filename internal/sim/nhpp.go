package sim

import "math"

// RateFunc gives an instantaneous arrival rate (events per second) at a
// virtual time. Rates must be non-negative and bounded by the envelope
// passed to the generator.
type RateFunc func(t Time) float64

// MaxTime is the largest representable virtual time; an envelope segment
// reaching MaxTime holds for the rest of the run.
const MaxTime = Time(math.MaxInt64)

// EnvelopeFunc reports the thinning bound in force at t: max is an upper
// bound on the rate over [t, until), and until (> t) is where the bound
// may change. A segment with max = 0 is silent — no arrivals can occur
// in it — and is skipped without consuming randomness. Returning
// until = MaxTime means the bound holds forever, which is the
// homogeneous (single-segment) case.
//
// A piecewise envelope is what keeps thinning O(arrivals) on
// nonstationary workloads: a single global bound over, say, an
// enrollment-growth curve would be sized for the final population and
// reject almost every early candidate, while a piecewise bound stays
// close to the local rate everywhere.
type EnvelopeFunc func(t Time) (max float64, until Time)

// ConstantEnvelope wraps a single global bound as an EnvelopeFunc.
func ConstantEnvelope(max float64) EnvelopeFunc {
	return func(Time) (float64, Time) { return max, MaxTime }
}

// NHPP generates arrival times from a non-homogeneous Poisson process by
// Lewis–Shedler thinning: candidate arrivals are drawn from a Poisson
// process at the envelope bound and accepted with probability
// rate(t)/bound. With a piecewise envelope the candidate process
// restarts at each segment boundary (valid by memorylessness), so the
// bound tracks the local rate instead of the global peak.
type NHPP struct {
	rng  *RNG
	rate RateFunc
	env  EnvelopeFunc
	now  Time

	proposed uint64
	accepted uint64
}

// NewNHPP builds a generator with a single global bound, starting at
// virtual time start. maxRate must be a true upper bound on rate over
// the generation horizon; violations silently under-generate, so callers
// should size it generously. For nonstationary shapes whose peak is far
// above the typical rate, prefer NewNHPPEnvelope.
func NewNHPP(rng *RNG, rate RateFunc, maxRate float64, start Time) *NHPP {
	if maxRate <= 0 {
		panic("sim: NewNHPP with non-positive maxRate")
	}
	return NewNHPPEnvelope(rng, rate, ConstantEnvelope(maxRate), start)
}

// NewNHPPEnvelope builds a generator whose thinning bound is the
// piecewise-constant envelope env. Each env segment's max must be a true
// upper bound on rate over that segment (violations silently
// under-generate); segments must advance (until > t) or Next panics.
func NewNHPPEnvelope(rng *RNG, rate RateFunc, env EnvelopeFunc, start Time) *NHPP {
	if rng == nil {
		panic("sim: NewNHPPEnvelope with nil rng")
	}
	if rate == nil {
		panic("sim: NewNHPPEnvelope with nil rate function")
	}
	if env == nil {
		panic("sim: NewNHPPEnvelope with nil envelope")
	}
	return &NHPP{rng: rng, rate: rate, env: env, now: start}
}

// Next returns the next arrival time strictly after the previous one, or
// ok=false if no arrival occurs before horizon.
func (p *NHPP) Next(horizon Time) (t Time, ok bool) {
	for {
		max, until := p.env(p.now)
		if until <= p.now {
			panic("sim: envelope segment does not advance past its query time")
		}
		if max <= 0 {
			// Silent segment: skip it whole, consuming no randomness.
			if until > horizon {
				return 0, false
			}
			p.now = until
			continue
		}
		cand := p.now + Seconds(p.rng.Exp(1/max))
		if cand >= until {
			// The candidate crossed into the next segment, where the
			// bound differs. By memorylessness the candidate process can
			// simply restart at the boundary under the new bound.
			if until > horizon {
				return 0, false
			}
			p.now = until
			continue
		}
		p.now = cand
		if p.now > horizon {
			return 0, false
		}
		p.proposed++
		r := p.rate(p.now)
		if r < 0 {
			r = 0
		}
		if r > max {
			r = max
		}
		if p.rng.Float64() < r/max {
			p.accepted++
			return p.now, true
		}
	}
}

// Proposed returns how many candidate arrivals have been drawn (thinning
// attempts, boundary restarts excluded).
func (p *NHPP) Proposed() uint64 { return p.proposed }

// Accepted returns how many candidates survived thinning — the arrivals
// actually emitted. Accepted/Proposed is the thinning acceptance rate;
// a low rate means the envelope is far above the typical rate and the
// generator burns candidates.
func (p *NHPP) Accepted() uint64 { return p.accepted }

// GenerateInto repeatedly calls Next until horizon and invokes arrive for
// each accepted arrival time. It returns the number of arrivals.
func (p *NHPP) GenerateInto(horizon Time, arrive func(t Time)) int {
	n := 0
	for {
		t, ok := p.Next(horizon)
		if !ok {
			return n
		}
		arrive(t)
		n++
	}
}
