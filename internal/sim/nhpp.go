package sim

// RateFunc gives an instantaneous arrival rate (events per second) at a
// virtual time. Rates must be non-negative and bounded by the MaxRate
// passed to NewNHPP.
type RateFunc func(t Time) float64

// NHPP generates arrival times from a non-homogeneous Poisson process by
// Lewis–Shedler thinning: candidate arrivals are drawn from a homogeneous
// process at maxRate and accepted with probability rate(t)/maxRate.
type NHPP struct {
	rng     *RNG
	rate    RateFunc
	maxRate float64
	now     Time
}

// NewNHPP builds a generator starting at virtual time start. maxRate must
// be a true upper bound on rate over the generation horizon; violations
// silently under-generate, so callers should size it generously.
func NewNHPP(rng *RNG, rate RateFunc, maxRate float64, start Time) *NHPP {
	if rng == nil {
		panic("sim: NewNHPP with nil rng")
	}
	if maxRate <= 0 {
		panic("sim: NewNHPP with non-positive maxRate")
	}
	if rate == nil {
		panic("sim: NewNHPP with nil rate function")
	}
	return &NHPP{rng: rng, rate: rate, maxRate: maxRate, now: start}
}

// Next returns the next arrival time strictly after the previous one, or
// ok=false if no arrival occurs before horizon.
func (p *NHPP) Next(horizon Time) (t Time, ok bool) {
	for {
		p.now += Seconds(p.rng.Exp(1 / p.maxRate))
		if p.now > horizon {
			return 0, false
		}
		r := p.rate(p.now)
		if r < 0 {
			r = 0
		}
		if r > p.maxRate {
			r = p.maxRate
		}
		if p.rng.Float64() < r/p.maxRate {
			return p.now, true
		}
	}
}

// GenerateInto repeatedly calls Next until horizon and invokes arrive for
// each accepted arrival time. It returns the number of arrivals.
func (p *NHPP) GenerateInto(horizon Time, arrive func(t Time)) int {
	n := 0
	for {
		t, ok := p.Next(horizon)
		if !ok {
			return n
		}
		arrive(t)
		n++
	}
}
