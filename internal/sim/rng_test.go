package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminismAndStreamIndependence(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	// Streams with the same name match; different names differ.
	r := NewRNG(5)
	s1, s2 := r.Stream("net"), r.Stream("net")
	d := r.Stream("cpu")
	same, diff := true, true
	for i := 0; i < 100; i++ {
		v1, v2, v3 := s1.Uint64(), s2.Uint64(), d.Uint64()
		if v1 != v2 {
			same = false
		}
		if v1 != v3 {
			diff = false
		}
	}
	if !same {
		t.Fatal("identical stream names diverged")
	}
	if diff {
		t.Fatal("distinct stream names produced identical output")
	}
}

func TestStreamOrderIndependent(t *testing.T) {
	r1 := NewRNG(7)
	a := r1.Stream("a").Uint64()
	b := r1.Stream("b").Uint64()

	r2 := NewRNG(7)
	b2 := r2.Stream("b").Uint64()
	a2 := r2.Stream("a").Uint64()

	if a != a2 || b != b2 {
		t.Fatal("stream derivation depends on creation order")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64MeanNearHalf(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(13)
	const want = 2.5
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(want)
	}
	mean := sum / n
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("exp mean = %v, want ~%v", mean, want)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(17)
	const (
		wantMean = 10.0
		wantSD   = 3.0
		n        = 200000
	)
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(wantMean, wantSD)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-wantMean) > 0.05 {
		t.Fatalf("norm mean = %v", mean)
	}
	if math.Abs(sd-wantSD) > 0.05 {
		t.Fatalf("norm sd = %v", sd)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(19)
	for _, lambda := range []float64{0.5, 4, 25, 100} {
		sum := 0.0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda)/lambda > 0.05 {
			t.Fatalf("poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonZeroAndNegative(t *testing.T) {
	r := NewRNG(23)
	if r.Poisson(0) != 0 || r.Poisson(-5) != 0 {
		t.Fatal("Poisson of non-positive lambda must be 0")
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(29)
	if r.Bernoulli(0) || r.Bernoulli(-1) {
		t.Fatal("Bernoulli(<=0) must be false")
	}
	if !r.Bernoulli(1) || !r.Bernoulli(2) {
		t.Fatal("Bernoulli(>=1) must be true")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", p)
	}
}

func TestParetoTailAndMin(t *testing.T) {
	r := NewRNG(31)
	const alpha, xm = 2.5, 10.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Pareto(alpha, xm)
		if v < xm {
			t.Fatalf("Pareto sample %v below scale %v", v, xm)
		}
		sum += v
	}
	mean := sum / n
	want := alpha * xm / (alpha - 1)
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("pareto mean = %v, want ~%v", mean, want)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := NewRNG(37)
	g := NewZipfGen(r, 100, 1.0)
	counts := make([]int, 101)
	const n = 100000
	for i := 0; i < n; i++ {
		v := g.Sample()
		if v < 1 || v > 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[50] {
		t.Fatalf("Zipf not skewed: rank1=%d rank50=%d", counts[1], counts[50])
	}
	// Rank 1 should get roughly 1/H(100) of the mass (~19%).
	p1 := float64(counts[1]) / n
	if p1 < 0.15 || p1 > 0.25 {
		t.Fatalf("Zipf rank-1 share = %v, want ~0.19", p1)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(41)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) did not cover range: %v", seen)
	}
}

func TestPickWeighted(t *testing.T) {
	r := NewRNG(43)
	counts := [3]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick([]float64{1, 2, 7})]++
	}
	p2 := float64(counts[2]) / n
	if math.Abs(p2-0.7) > 0.01 {
		t.Fatalf("Pick weight-7 share = %v, want ~0.7", p2)
	}
}

func TestPickPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRNG(1).Pick([]float64{0, 0})
}

func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := 20
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i
		}
		r := NewRNG(seed)
		r.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		seen := make([]bool, n)
		for _, v := range vals {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributionInterfaces(t *testing.T) {
	r := NewRNG(47)
	tests := []struct {
		d       Dist
		wantStr string
	}{
		{Constant(5), "Const(5)"},
		{Uniform(1, 3), "Uniform(1,3)"},
		{Exponential(2), "Exp(mean=2)"},
		{LogNormal(4, 0.5), "LogNormal(mean=4,sigma=0.5)"},
		{Pareto(2, 1), "Pareto(alpha=2,xm=1)"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.wantStr {
			t.Errorf("String = %q, want %q", got, tt.wantStr)
		}
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += tt.d.Sample(r)
		}
		mean := sum / n
		if tt.d.Mean() > 0 && math.Abs(mean-tt.d.Mean())/tt.d.Mean() > 0.05 {
			t.Errorf("%v empirical mean %v vs declared %v", tt.d, mean, tt.d.Mean())
		}
	}
}

func TestConstantDist(t *testing.T) {
	d := Constant(3.5)
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 3.5 {
			t.Fatal("Constant varied")
		}
	}
}

func TestParetoMeanInfiniteRegime(t *testing.T) {
	d := Pareto(0.9, 2)
	if d.Mean() != 20 {
		t.Fatalf("heavy-tail Mean proxy = %v, want 20", d.Mean())
	}
}

func TestUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for hi < lo")
		}
	}()
	Uniform(2, 1)
}
