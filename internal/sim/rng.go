package sim

import (
	"math"
)

// RNG is a deterministic pseudo-random number generator with support for
// deriving independent named sub-streams. The core generator is
// splitmix64, which is small, fast, passes BigCrush when used this way,
// and — critically for reproducibility — has no global state.
//
// RNG is not safe for concurrent use; simulations are single-threaded.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	// Avoid the all-zero fixed point and decorrelate small seeds.
	r := &RNG{state: seed ^ 0x9e3779b97f4a7c15}
	r.Uint64()
	return r
}

// Stream derives an independent generator identified by name. The same
// (parent seed, name) always yields the same stream, and distinct names
// yield decorrelated streams. The parent's state is not consumed, so the
// order in which streams are created does not matter.
func (r *RNG) Stream(name string) *RNG {
	h := fnv64(name)
	//detlint:allow seedrule Stream IS the (seed, name) derivation rule the analyzer roots everything else in
	return NewRNG(r.state ^ h ^ 0x2545f4914f6cdd1d)
}

// SeedFor derives an independent seed from a parent seed and a name. It
// is the standalone form of the (seed, name) stream-derivation rule that
// RNG.Stream applies inside an engine: the same (seed, name) pair always
// yields the same derived seed, and distinct names yield decorrelated
// seeds. Batch runners use it to give each named job its own RNG root so
// results depend only on (seed, job name) — never on worker count,
// scheduling, or completion order.
func SeedFor(seed uint64, name string) uint64 {
	// xor the name hash into the seed, then run one splitmix64 round so
	// related (seed, name) pairs land far apart.
	z := seed ^ fnv64(name) ^ 0x2545f4914f6cdd1d
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fnv64 is the FNV-1a hash, inlined to avoid an import cycle with hash/fnv
// allocations in hot paths.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed sample with the given mean.
// It panics if mean is not positive.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("sim: Exp with non-positive mean")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed sample with the given mean and
// standard deviation, using the polar Box–Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNormal returns a sample whose logarithm is Normal(mu, sigma).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Pareto returns a Pareto(shape alpha, scale xm) sample: heavy-tailed
// sizes such as uploaded files and video segments. Panics if alpha or xm
// is not positive.
func (r *RNG) Pareto(alpha, xm float64) float64 {
	if alpha <= 0 || xm <= 0 {
		panic("sim: Pareto with non-positive parameter")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a Poisson(lambda) sample. For small lambda it uses
// Knuth's product method; for large lambda a normal approximation with
// continuity correction, which is ample for workload counts.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := r.Norm(lambda, math.Sqrt(lambda))
	if n < 0 {
		return 0
	}
	return int(n + 0.5)
}

// Zipf returns a sample in [1, n] following a Zipf distribution with
// exponent s (s > 0, typically near 1). Implemented by inverse-CDF over a
// cached harmonic table would be faster, but workloads draw from modest n,
// so rejection-free linear search on the CDF is acceptable and allocation
// free when used through ZipfGen.
func (r *RNG) Zipf(n int, s float64) int {
	g := NewZipfGen(r, n, s)
	return g.Sample()
}

// ZipfGen samples from a Zipf distribution over [1, n] with exponent s,
// precomputing the normalization so repeated draws are O(log n).
type ZipfGen struct {
	rng *RNG
	cdf []float64
}

// NewZipfGen builds a Zipf sampler. It panics if n <= 0 or s <= 0.
func NewZipfGen(rng *RNG, n int, s float64) *ZipfGen {
	if n <= 0 || s <= 0 {
		panic("sim: NewZipfGen with non-positive parameter")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &ZipfGen{rng: rng, cdf: cdf}
}

// Sample draws one value in [1, n].
func (z *ZipfGen) Sample() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Shuffle permutes the order of n elements using the Fisher–Yates
// algorithm, invoking swap(i, j) for each exchange.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen index weighted by weights. Zero or
// negative total weight panics.
func (r *RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("sim: Pick with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("sim: Pick with non-positive total weight")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
