package sim

import (
	"testing"
	"time"
)

func TestImportWarpsFreshEngineClock(t *testing.T) {
	e := NewEngine(1)
	if err := e.Import(State{Now: 90 * time.Minute}); err != nil {
		t.Fatalf("Import: %v", err)
	}
	if e.Now() != 90*time.Minute {
		t.Fatalf("Now = %v, want 90m", e.Now())
	}
	// Absolute schedules land relative to the warped clock: a past
	// ScheduleAt clamps to the imported time, not to zero.
	var firedAt Time
	e.ScheduleAt(10*time.Minute, "past", func() { firedAt = e.Now() })
	if err := e.Run(2 * time.Hour); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if firedAt != 90*time.Minute {
		t.Fatalf("past event fired at %v, want clamp to 90m", firedAt)
	}
	if e.Now() != 2*time.Hour {
		t.Fatalf("clock at %v after Run, want horizon", e.Now())
	}
}

func TestExportRoundTrip(t *testing.T) {
	src := NewEngine(7)
	src.Schedule(42*time.Second, "tick", func() {})
	if err := src.Run(42 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := src.Export()
	if st.Now != 42*time.Second {
		t.Fatalf("Export.Now = %v, want 42s", st.Now)
	}
	dst := NewEngine(7)
	if err := dst.Import(st); err != nil {
		t.Fatalf("Import: %v", err)
	}
	if dst.Now() != src.Now() {
		t.Fatalf("imported clock %v != exported %v", dst.Now(), src.Now())
	}
}

func TestImportRejectsNonFreshEngine(t *testing.T) {
	st := State{Now: time.Hour}

	scheduled := NewEngine(1)
	scheduled.Schedule(time.Second, "pending", func() {})
	if err := scheduled.Import(st); err == nil {
		t.Fatal("Import into engine with pending events succeeded")
	}

	ran := NewEngine(1)
	ran.Schedule(time.Second, "fired", func() {})
	if err := ran.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := ran.Import(st); err == nil {
		t.Fatal("Import into engine with history succeeded")
	}

	warped := NewEngine(1)
	if err := warped.Import(st); err != nil {
		t.Fatalf("first Import: %v", err)
	}
	if err := warped.Import(st); err == nil {
		t.Fatal("second Import into already-warped engine succeeded")
	}
}

func TestImportRejectsNegativeClock(t *testing.T) {
	e := NewEngine(1)
	if err := e.Import(State{Now: -time.Second}); err == nil {
		t.Fatal("Import with negative clock succeeded")
	}
}

func TestImportDeterminismMatchesOffsetRun(t *testing.T) {
	// A warped engine behaves exactly like a zero-based engine whose
	// schedule is shifted: same seed, same relative delays, same
	// event count, clocks offset by the import.
	const offset = 3 * time.Hour
	run := func(base Time) (fired uint64, last Time) {
		e := NewEngine(99)
		if base > 0 {
			if err := e.Import(State{Now: base}); err != nil {
				t.Fatalf("Import: %v", err)
			}
		}
		var step func()
		n := 0
		step = func() {
			n++
			last = e.Now()
			if n < 50 {
				d := Seconds(e.Stream("gaps").Exp(1.0))
				e.Schedule(d, "step", step)
			}
		}
		e.Schedule(time.Second, "step", step)
		if err := e.Run(0); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return e.Fired(), last
	}
	f0, l0 := run(0)
	f1, l1 := run(offset)
	if f0 != f1 {
		t.Fatalf("fired %d vs %d across warp", f0, f1)
	}
	if l1-l0 != offset {
		t.Fatalf("last event at %v vs %v: offset %v, want %v", l0, l1, l1-l0, offset)
	}
}
