package sim

import (
	"fmt"
	"testing"
	"time"
)

// queueDriver runs a randomized schedule/cancel workload against one
// engine and records the exact fire/cancel sequence. Two drivers with
// the same seeds must produce identical logs regardless of queue kind.
// It honors the Event pooling contract: the driver forgets a handle the
// moment its event fires or is canceled, so it never Cancels a pointer
// that may have been recycled.
type queueDriver struct {
	eng     *Engine
	rng     *RNG
	log     []string
	pending []*Event
	next    int
}

func newQueueDriver(kind QueueKind) *queueDriver {
	return &queueDriver{eng: NewEngineWithQueue(7, kind), rng: NewRNG(99)}
}

func (d *queueDriver) forget(ev *Event) {
	for i, p := range d.pending {
		if p == ev {
			d.pending = append(d.pending[:i], d.pending[i+1:]...)
			return
		}
	}
}

// randomDelay mixes the regimes the wheel has to get right: zero delay
// (insert into the draining bucket), near delays (ring), and delays
// past wheelSpan (overflow heap, including deep overflow).
func (d *queueDriver) randomDelay() Time {
	switch d.rng.Intn(10) {
	case 0:
		return 0
	case 1, 2, 3:
		return Time(d.rng.Intn(int(50 * time.Millisecond)))
	case 4, 5, 6, 7:
		return Time(d.rng.Intn(int(2 * time.Second)))
	case 8:
		return Time(d.rng.Intn(int(40 * time.Second)))
	default:
		return Time(d.rng.Intn(int(5 * time.Minute)))
	}
}

func (d *queueDriver) schedule() {
	d.next++
	name := fmt.Sprintf("ev%d", d.next)
	var ev *Event
	ev = d.eng.Schedule(d.randomDelay(), name, func() {
		d.forget(ev)
		d.log = append(d.log, fmt.Sprintf("%s@%d", name, d.eng.Now()))
		if d.eng.Fired() < 20000 {
			for i, n := 0, d.rng.Intn(4); i < n; i++ {
				d.schedule()
			}
		}
		if len(d.pending) > 0 && d.rng.Float64() < 0.25 {
			victim := d.pending[d.rng.Intn(len(d.pending))]
			d.log = append(d.log, "cancel:"+victim.Name)
			d.forget(victim)
			d.eng.Cancel(victim)
		}
	})
	d.pending = append(d.pending, ev)
}

// TestWheelMatchesHeap is the differential determinism test: the wheel
// and the heap must fire the same randomized workload in the exact same
// order — the property that makes the queue kind invisible to results.
func TestWheelMatchesHeap(t *testing.T) {
	run := func(kind QueueKind) *queueDriver {
		d := newQueueDriver(kind)
		for i := 0; i < 64; i++ {
			d.schedule()
		}
		if err := d.eng.Run(0); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return d
	}
	wheel, heap := run(QueueWheel), run(QueueHeap)
	if len(wheel.log) != len(heap.log) {
		t.Fatalf("log length: wheel %d, heap %d", len(wheel.log), len(heap.log))
	}
	for i := range wheel.log {
		if wheel.log[i] != heap.log[i] {
			t.Fatalf("logs diverge at %d: wheel %q, heap %q", i, wheel.log[i], heap.log[i])
		}
	}
	if len(wheel.log) < 20000 {
		t.Fatalf("workload too small to be meaningful: %d entries", len(wheel.log))
	}
	if wheel.eng.Fired() != heap.eng.Fired() {
		t.Fatalf("fired: wheel %d, heap %d", wheel.eng.Fired(), heap.eng.Fired())
	}
	if wheel.eng.Now() != heap.eng.Now() {
		t.Fatalf("final clock: wheel %v, heap %v", wheel.eng.Now(), heap.eng.Now())
	}
}

// TestWheelOverflowOrder pins the ring/overflow boundary: events beyond
// the wheel's span live in the overflow heap and must still fire in
// global (At, seq) order as the window advances to them.
func TestWheelOverflowOrder(t *testing.T) {
	e := NewEngine(1)
	var got []string
	add := func(at Time, name string) {
		e.ScheduleAt(at, name, func() { got = append(got, name) })
	}
	add(30*time.Second, "d") // deep overflow at schedule time
	add(0, "a")
	add(18*time.Second, "c") // just past wheelSpan (~17.2s)
	add(time.Millisecond, "b")
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "c", "d"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("fire order = %v, want %v", got, want)
	}
}

// TestWheelEqualTimeFIFO pins intra-bucket FIFO: events at the same
// instant fire in scheduling order even when pushed into the bucket
// currently being drained.
func TestWheelEqualTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []string
	at := 5 * time.Millisecond
	for _, name := range []string{"first", "second", "third"} {
		name := name
		e.ScheduleAt(at, name, func() {
			got = append(got, name)
			if name == "first" {
				// Lands in the bucket mid-drain, at the same instant.
				e.ScheduleAt(at, "nested", func() { got = append(got, "nested") })
			}
		})
	}
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"first", "second", "third", "nested"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("fire order = %v, want %v", got, want)
	}
}

// TestWheelPendingExact checks that lazy cancels don't smear Pending:
// the count must be exact immediately, not after the sweep catches up.
func TestWheelPendingExact(t *testing.T) {
	e := NewEngine(3)
	rng := NewRNG(17)
	events := make([]*Event, 100)
	for i := range events {
		at := Time(rng.Intn(int(40 * time.Second)))
		events[i] = e.ScheduleAt(at, "x", func() {})
	}
	for i := 0; i < 37; i++ {
		e.Cancel(events[i])
	}
	if got := e.Pending(); got != 63 {
		t.Fatalf("Pending after cancels = %d, want 63", got)
	}
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := e.Fired(); got != 63 {
		t.Fatalf("Fired = %d, want 63", got)
	}
}

// TestWheelHorizon checks the peek path: Run must stop at the horizon
// without firing future-dated events, on the wheel as on the heap.
func TestWheelHorizon(t *testing.T) {
	for _, kind := range []QueueKind{QueueWheel, QueueHeap} {
		e := NewEngineWithQueue(1, kind)
		fired := 0
		e.Schedule(time.Second, "near", func() { fired++ })
		e.Schedule(10*time.Second, "far", func() { fired++ })
		if err := e.Run(5 * time.Second); err != nil {
			t.Fatalf("kind %d Run: %v", kind, err)
		}
		if fired != 1 || e.Pending() != 1 || e.Now() != 5*time.Second {
			t.Fatalf("kind %d: fired=%d pending=%d now=%v", kind, fired, e.Pending(), e.Now())
		}
	}
}

// TestEventFreeList pins struct reuse: a fired event's struct must come
// back from the free list for the next schedule.
func TestEventFreeList(t *testing.T) {
	e := NewEngine(1)
	ev1 := e.Schedule(time.Millisecond, "a", func() {})
	if !e.Step() {
		t.Fatal("Step returned false")
	}
	ev2 := e.Schedule(time.Millisecond, "b", func() {})
	if ev1 != ev2 {
		t.Fatal("fired event struct was not reused from the free list")
	}
	// Eager cancel on the heap queue recycles immediately too.
	h := NewEngineWithQueue(1, QueueHeap)
	c1 := h.Schedule(time.Millisecond, "a", func() {})
	h.Cancel(c1)
	c2 := h.Schedule(time.Millisecond, "b", func() {})
	if c1 != c2 {
		t.Fatal("canceled event struct was not reused from the free list")
	}
}

// BenchmarkEngineStep measures the event hot loop on both queue kinds:
// 4096 self-rescheduling chains with random 1–100ms delays, the density
// regime of a large MOOC run. Results are quoted in ARCHITECTURE.md.
func BenchmarkEngineStep(b *testing.B) {
	for _, bc := range []struct {
		name string
		kind QueueKind
	}{{"wheel", QueueWheel}, {"heap", QueueHeap}} {
		b.Run(bc.name, func(b *testing.B) {
			e := NewEngineWithQueue(1, bc.kind)
			rng := NewRNG(2)
			delay := func() Time {
				return Time(time.Millisecond) + Time(rng.Intn(int(99*time.Millisecond)))
			}
			for i := 0; i < 4096; i++ {
				var fn func()
				fn = func() { e.Schedule(delay(), "tick", fn) }
				e.Schedule(delay(), "tick", fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}
