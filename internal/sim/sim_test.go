package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*time.Second, "c", func() { got = append(got, 3) })
	e.Schedule(1*time.Second, "a", func() { got = append(got, 1) })
	e.Schedule(2*time.Second, "b", func() { got = append(got, 2) })
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineFIFOAmongSimultaneousEvents(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, "same", func() { got = append(got, i) })
	}
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated: got %v", got)
		}
	}
}

func TestEngineClockAdvances(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Schedule(5*time.Second, "probe", func() { at = e.Now() })
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 5*time.Second {
		t.Fatalf("Now at event = %v, want 5s", at)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("final Now = %v, want 5s", e.Now())
	}
}

func TestEngineHorizonStopsAndAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(10*time.Second, "late", func() { fired = true })
	if err := e.Run(4 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if e.Now() != 4*time.Second {
		t.Fatalf("Now = %v, want horizon 4s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestEngineScheduleInPastClamps(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Schedule(2*time.Second, "outer", func() {
		e.ScheduleAt(0, "past", func() { order = append(order, "past") })
		e.Schedule(0, "now", func() { order = append(order, "now") })
	})
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "past" || order[1] != "now" {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(time.Second, "x", func() { fired = true })
	e.Cancel(ev)
	if !ev.Canceled() {
		t.Fatal("event not marked canceled")
	}
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
	// Double-cancel and cancel-after-fire must be no-ops.
	e.Cancel(ev)
	ev2 := e.Schedule(time.Second, "y", func() {})
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	e.Cancel(ev2)
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i)*time.Second, "n", func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	if err := e.Run(0); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine(1)
	ticks := 0
	stop := e.Every(time.Second, "tick", func() { ticks++ })
	e.Schedule(5500*time.Millisecond, "stop", func() { stop() })
	if err := e.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
}

func TestEngineEveryPanicsOnNonPositivePeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive period")
		}
	}()
	NewEngine(1).Every(0, "bad", func() {})
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed uint64) []float64 {
		e := NewEngine(seed)
		var out []float64
		r := e.Stream("load")
		for i := 0; i < 50; i++ {
			d := Seconds(r.Exp(1.0))
			e.Schedule(d*Time(i+1), "ev", func() {
				out = append(out, ToSeconds(e.Now()))
			})
		}
		if err := e.Run(0); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same && len(a) == len(c) {
		t.Fatal("different seeds produced identical runs")
	}
}

// Property: for any batch of delays, events fire in nondecreasing time
// order and the count matches.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(7)
		var times []Time
		for _, d := range delays {
			d := Time(d) * time.Millisecond
			e.Schedule(d, "p", func() { times = append(times, e.Now()) })
		}
		if err := e.Run(0); err != nil {
			return false
		}
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleNilFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil Fn")
		}
	}()
	NewEngine(1).Schedule(time.Second, "nil", nil)
}

func TestSecondsRoundTrip(t *testing.T) {
	for _, s := range []float64{0, 0.001, 1, 3600, 86400} {
		if got := ToSeconds(Seconds(s)); got != s {
			t.Fatalf("round trip %g -> %g", s, got)
		}
	}
}

func TestFiredCounts(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i)*time.Millisecond, "n", func() {})
	}
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", e.Fired())
	}
}
