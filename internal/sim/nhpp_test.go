package sim

import (
	"math"
	"testing"
	"time"
)

func TestNHPPHomogeneousRateMatchesExpectation(t *testing.T) {
	r := NewRNG(51)
	const rate = 10.0 // arrivals/s
	p := NewNHPP(r, func(Time) float64 { return rate }, rate, 0)
	horizon := 1000 * time.Second
	n := p.GenerateInto(horizon, func(Time) {})
	want := rate * ToSeconds(horizon)
	if math.Abs(float64(n)-want)/want > 0.05 {
		t.Fatalf("arrivals = %d, want ~%v", n, want)
	}
}

func TestNHPPArrivalsStrictlyIncreaseAndRespectHorizon(t *testing.T) {
	r := NewRNG(53)
	p := NewNHPP(r, func(t Time) float64 { return 5 + 4*math.Sin(ToSeconds(t)/100) }, 10, 0)
	horizon := 500 * time.Second
	last := Time(-1)
	p.GenerateInto(horizon, func(at Time) {
		if at <= last {
			t.Fatalf("non-increasing arrival: %v after %v", at, last)
		}
		if at > horizon {
			t.Fatalf("arrival %v beyond horizon %v", at, horizon)
		}
		last = at
	})
}

func TestNHPPTracksTimeVaryingRate(t *testing.T) {
	// Rate is 20/s in the first half, 2/s in the second half. The ratio of
	// arrivals must be ~10:1.
	r := NewRNG(57)
	half := 500 * time.Second
	rate := func(t Time) float64 {
		if t < half {
			return 20
		}
		return 2
	}
	p := NewNHPP(r, rate, 20, 0)
	var first, second int
	p.GenerateInto(2*half, func(at Time) {
		if at < half {
			first++
		} else {
			second++
		}
	})
	ratio := float64(first) / float64(second)
	if ratio < 8 || ratio > 12 {
		t.Fatalf("ratio = %v, want ~10 (first=%d second=%d)", ratio, first, second)
	}
}

func TestNHPPZeroRatePeriodsProduceNoArrivals(t *testing.T) {
	r := NewRNG(59)
	// Zero rate everywhere except an active window.
	active := func(t Time) bool { return t >= 100*time.Second && t < 200*time.Second }
	p := NewNHPP(r, func(t Time) float64 {
		if active(t) {
			return 10
		}
		return 0
	}, 10, 0)
	p.GenerateInto(300*time.Second, func(at Time) {
		if !active(at) {
			t.Fatalf("arrival at %v outside active window", at)
		}
	})
}

func TestNHPPDeterminism(t *testing.T) {
	gen := func() []Time {
		r := NewRNG(61)
		p := NewNHPP(r, func(Time) float64 { return 3 }, 3, 0)
		var out []Time
		p.GenerateInto(100*time.Second, func(at Time) { out = append(out, at) })
		return out
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestNHPPPanics(t *testing.T) {
	r := NewRNG(1)
	rate := func(Time) float64 { return 1 }
	for name, fn := range map[string]func(){
		"nil rng":      func() { NewNHPP(nil, rate, 1, 0) },
		"zero maxRate": func() { NewNHPP(r, rate, 0, 0) },
		"nil rate":     func() { NewNHPP(r, nil, 1, 0) },
		"nil envelope": func() { NewNHPPEnvelope(r, rate, nil, 0) },
		"stuck envelope": func() {
			p := NewNHPPEnvelope(NewRNG(1), rate, func(t Time) (float64, Time) { return 1, t }, 0)
			p.Next(time.Second)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// stepEnvelope bounds a 20-then-2 step rate tightly: segment one ends at
// the step, segment two never ends.
func stepEnvelope(step Time) EnvelopeFunc {
	return func(t Time) (float64, Time) {
		if t < step {
			return 20, step
		}
		return 2, MaxTime
	}
}

func TestNHPPEnvelopeTracksPiecewiseRate(t *testing.T) {
	// Same step rate as TestNHPPTracksTimeVaryingRate, but bounded by a
	// tight piecewise envelope instead of the global max. The arrival
	// ratio must still be ~10:1, and — the point of the envelope —
	// thinning must accept essentially every candidate, where the flat
	// bound rejects ~90% of them in the quiet half.
	r := NewRNG(57)
	half := 500 * time.Second
	rate := func(t Time) float64 {
		if t < half {
			return 20
		}
		return 2
	}
	p := NewNHPPEnvelope(r, rate, stepEnvelope(half), 0)
	var first, second int
	p.GenerateInto(2*half, func(at Time) {
		if at < half {
			first++
		} else {
			second++
		}
	})
	ratio := float64(first) / float64(second)
	if ratio < 8 || ratio > 12 {
		t.Fatalf("ratio = %v, want ~10 (first=%d second=%d)", ratio, first, second)
	}
	if p.Proposed() == 0 || p.Accepted() != p.Proposed() {
		t.Fatalf("tight envelope should accept every candidate: accepted %d of %d",
			p.Accepted(), p.Proposed())
	}
}

func TestNHPPEnvelopeSilentSegmentsSkipWithoutRandomness(t *testing.T) {
	// A zero-max leading segment must produce no arrivals and consume no
	// randomness: the stream started after the silent window must be
	// identical to the stream that skipped it.
	gen := func(env EnvelopeFunc, start Time) []Time {
		r := NewRNG(59)
		p := NewNHPPEnvelope(r, func(Time) float64 { return 5 }, env, start)
		var out []Time
		p.GenerateInto(200*time.Second, func(at Time) { out = append(out, at) })
		return out
	}
	silent := func(t Time) (float64, Time) {
		if t < 100*time.Second {
			return 0, 100 * time.Second
		}
		return 5, MaxTime
	}
	skipped := gen(silent, 0)
	direct := gen(ConstantEnvelope(5), 100*time.Second)
	if len(skipped) == 0 {
		t.Fatal("no arrivals after the silent window")
	}
	if len(skipped) != len(direct) {
		t.Fatalf("silent segment consumed randomness: %d vs %d arrivals", len(skipped), len(direct))
	}
	for i := range skipped {
		if skipped[i] != direct[i] {
			t.Fatalf("diverged at %d: %v vs %v", i, skipped[i], direct[i])
		}
		if skipped[i] < 100*time.Second {
			t.Fatalf("arrival %v inside the silent window", skipped[i])
		}
	}
}

func TestNHPPEnvelopeDeterminism(t *testing.T) {
	gen := func() []Time {
		r := NewRNG(61)
		p := NewNHPPEnvelope(r, func(t Time) float64 {
			if t < 500*time.Second {
				return 18
			}
			return 1.5
		}, stepEnvelope(500*time.Second), 0)
		var out []Time
		p.GenerateInto(1000*time.Second, func(at Time) { out = append(out, at) })
		return out
	}
	a, b := gen(), gen()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}
