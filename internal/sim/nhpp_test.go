package sim

import (
	"math"
	"testing"
	"time"
)

func TestNHPPHomogeneousRateMatchesExpectation(t *testing.T) {
	r := NewRNG(51)
	const rate = 10.0 // arrivals/s
	p := NewNHPP(r, func(Time) float64 { return rate }, rate, 0)
	horizon := 1000 * time.Second
	n := p.GenerateInto(horizon, func(Time) {})
	want := rate * ToSeconds(horizon)
	if math.Abs(float64(n)-want)/want > 0.05 {
		t.Fatalf("arrivals = %d, want ~%v", n, want)
	}
}

func TestNHPPArrivalsStrictlyIncreaseAndRespectHorizon(t *testing.T) {
	r := NewRNG(53)
	p := NewNHPP(r, func(t Time) float64 { return 5 + 4*math.Sin(ToSeconds(t)/100) }, 10, 0)
	horizon := 500 * time.Second
	last := Time(-1)
	p.GenerateInto(horizon, func(at Time) {
		if at <= last {
			t.Fatalf("non-increasing arrival: %v after %v", at, last)
		}
		if at > horizon {
			t.Fatalf("arrival %v beyond horizon %v", at, horizon)
		}
		last = at
	})
}

func TestNHPPTracksTimeVaryingRate(t *testing.T) {
	// Rate is 20/s in the first half, 2/s in the second half. The ratio of
	// arrivals must be ~10:1.
	r := NewRNG(57)
	half := 500 * time.Second
	rate := func(t Time) float64 {
		if t < half {
			return 20
		}
		return 2
	}
	p := NewNHPP(r, rate, 20, 0)
	var first, second int
	p.GenerateInto(2*half, func(at Time) {
		if at < half {
			first++
		} else {
			second++
		}
	})
	ratio := float64(first) / float64(second)
	if ratio < 8 || ratio > 12 {
		t.Fatalf("ratio = %v, want ~10 (first=%d second=%d)", ratio, first, second)
	}
}

func TestNHPPZeroRatePeriodsProduceNoArrivals(t *testing.T) {
	r := NewRNG(59)
	// Zero rate everywhere except an active window.
	active := func(t Time) bool { return t >= 100*time.Second && t < 200*time.Second }
	p := NewNHPP(r, func(t Time) float64 {
		if active(t) {
			return 10
		}
		return 0
	}, 10, 0)
	p.GenerateInto(300*time.Second, func(at Time) {
		if !active(at) {
			t.Fatalf("arrival at %v outside active window", at)
		}
	})
}

func TestNHPPDeterminism(t *testing.T) {
	gen := func() []Time {
		r := NewRNG(61)
		p := NewNHPP(r, func(Time) float64 { return 3 }, 3, 0)
		var out []Time
		p.GenerateInto(100*time.Second, func(at Time) { out = append(out, at) })
		return out
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestNHPPPanics(t *testing.T) {
	r := NewRNG(1)
	for name, fn := range map[string]func(){
		"nil rng":      func() { NewNHPP(nil, func(Time) float64 { return 1 }, 1, 0) },
		"zero maxRate": func() { NewNHPP(r, func(Time) float64 { return 1 }, 0, 0) },
		"nil rate":     func() { NewNHPP(r, nil, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
